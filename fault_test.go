package fortd

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// dgefaFaultPlan is the seeded plan the acceptance criterion runs
// twice: delivery delays, a straggler, and duplicated messages.
func dgefaFaultPlan() *FaultPlan {
	return &FaultPlan{
		Seed:       1234,
		DelayProb:  0.25,
		DelayMax:   120,
		DupProb:    0.1,
		Stragglers: map[int]float64{2: 2.0},
	}
}

// faultedDgefaExports compiles and runs dgefa under the fault plan and
// returns the sorted text and JSONL trace exports.
func faultedDgefaExports(t *testing.T) (string, string) {
	t.Helper()
	prog, err := Compile(DgefaSrc(32, 4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	r := NewRunner(
		WithInit(map[string][]float64{"a": DgefaMatrix(32)}),
		WithTrace(tr), WithFaults(dgefaFaultPlan()),
	)
	if _, err := r.Run(prog); err != nil {
		t.Fatal(err)
	}
	var text, jsonl bytes.Buffer
	if err := tr.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	return text.String(), jsonl.String()
}

// TestFaultInjectionDeterministicExport is the ISSUE's acceptance
// criterion: two fault-injected dgefa runs with the same seed produce
// byte-identical trace exports, and the injected faults are attributed
// in the summary.
func TestFaultInjectionDeterministicExport(t *testing.T) {
	text1, jsonl1 := faultedDgefaExports(t)
	text2, jsonl2 := faultedDgefaExports(t)
	if text1 != text2 {
		t.Error("seeded fault runs produced different WriteText output")
	}
	if jsonl1 != jsonl2 {
		t.Error("seeded fault runs produced different WriteJSONL output")
	}
	if !strings.Contains(jsonl1, `"kind":"fault"`) {
		t.Error("JSONL export has no fault events")
	}
	if !strings.Contains(text1, "injected faults") {
		t.Errorf("text summary does not attribute injected faults:\n%s", text1)
	}
	if !strings.Contains(text1, "straggler") {
		t.Error("text summary does not announce the straggler")
	}
}

// TestFaultedRunStillCorrect: injected faults perturb virtual time
// only; the faulted run's arrays still match the sequential reference.
func TestFaultedRunStillCorrect(t *testing.T) {
	prog, err := Compile(DgefaSrc(16, 4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	init := map[string][]float64{"a": DgefaMatrix(16)}
	faulted, err := NewRunner(WithInit(init), WithFaults(dgefaFaultPlan())).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewRunner(WithInit(init)).RunReference(prog)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range ref.Arrays {
		got := faulted.Arrays[name]
		for i := range want {
			if d := got[i] - want[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("%s[%d] = %v, want %v (faults changed results)", name, i, got[i], want[i])
			}
		}
	}
	clean, err := NewRunner(WithInit(init)).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Stats.Time <= clean.Stats.Time {
		t.Errorf("faulted time %.1f <= clean time %.1f (faults should cost time)",
			faulted.Stats.Time, clean.Stats.Time)
	}
}

// TestRunnerDeadlineAndDeadlockReport: a one-proc-errors run and a
// mismatched hand-SPMD run both terminate with structured diagnostics
// through the public API.
func TestRunnerDeadlineAndDeadlockReport(t *testing.T) {
	src := `
      PROGRAM MISMATCH
      PARAMETER (n$proc = 2)
      REAL a(8)
      my$p = myproc()
      if (my$p .EQ. 0) then
        recv a(1:4) from 1
      endif
      if (my$p .EQ. 1) then
        recv a(5:8) from 0
      endif
      END
`
	done := make(chan error, 1)
	go func() {
		_, err := NewRunner(WithDeadline(5*time.Second)).RunSPMD(src, 0)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("mismatched SPMD run hung")
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("RunSPMD = %v, want *DeadlockError", err)
	}
	if len(dl.Blocked) != 2 {
		t.Errorf("report = %+v, want 2 blocked processors", dl)
	}
	// nproc 0 read the n$proc PARAMETER (a 2-proc report proves it)
	for _, b := range dl.Blocked {
		if b.Proc != "MISMATCH" {
			t.Errorf("blocked proc attribution = %q", b.Proc)
		}
	}
}
