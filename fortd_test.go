package fortd

import (
	"math"
	"strings"
	"testing"
)

func TestCompileAndRunQuickstart(t *testing.T) {
	prog, err := Compile(Fig1Src(100, 4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if prog.P() != 4 {
		t.Errorf("P = %d", prog.P())
	}
	res, err := NewRunner(WithInit(map[string][]float64{"X": Ramp(100)})).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewRunner(WithInit(map[string][]float64{"X": Ramp(100)})).RunReference(prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Arrays["X"] {
		if math.Abs(res.Arrays["X"][i]-ref.Arrays["X"][i]) > 1e-9 {
			t.Fatalf("X[%d] = %v, want %v", i, res.Arrays["X"][i], ref.Arrays["X"][i])
		}
	}
	if res.Stats.Messages != 3 {
		t.Errorf("messages = %d", res.Stats.Messages)
	}
}

func TestListingAndReport(t *testing.T) {
	prog, err := Compile(Fig4Src(100, 4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := prog.Listing()
	if !strings.Contains(text, "F1$row") {
		t.Error("listing missing clone")
	}
	src := prog.SourceListing()
	if strings.Contains(src, "my$p") {
		t.Error("source listing contains generated code")
	}
	r := prog.Report()
	if r.Cloned == 0 || r.Messages == 0 {
		t.Errorf("report = %+v", r)
	}
	clones := prog.Clones()
	if clones["F1$row"] != "F1" {
		t.Errorf("clones = %v", clones)
	}
}

func TestOverlapExtentAPI(t *testing.T) {
	prog, err := Compile(Fig1Src(100, 4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := prog.OverlapExtent("F1", "X", 0, 25)
	if lo != 1 || hi != 30 {
		t.Errorf("extent = [%d:%d], want [1:30]", lo, hi)
	}
}

func TestCustomMachineConfig(t *testing.T) {
	prog, err := Compile(Fig1Src(100, 4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cheap := MachineConfig{P: 4, Latency: 1, PerWord: 0.01, FlopCost: 0.1}
	expensive := MachineConfig{P: 4, Latency: 10000, PerWord: 10, FlopCost: 0.1}
	init := map[string][]float64{"X": Ramp(100)}
	r1, err := NewRunner(WithInit(init), WithMachine(cheap)).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(WithInit(init), WithMachine(expensive)).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Time <= r1.Stats.Time {
		t.Errorf("expensive machine not slower: %.1f vs %.1f", r2.Stats.Time, r1.Stats.Time)
	}
}

func TestTable1Coverage(t *testing.T) {
	rows := Table1()
	if len(rows) != 12 {
		t.Fatalf("Table 1 has %d rows, want 12", len(rows))
	}
	// the paper's directions
	want := map[string]string{
		"Reaching decompositions": "↓",
		"Local iteration sets":    "↑",
		"Nonlocal index sets":     "↑",
		"Overlaps":                "l",
		"Live decompositions":     "↑",
		"Loop structure":          "↓",
	}
	for _, row := range rows {
		if dir, ok := want[row.Name]; ok && row.Direction.String() != dir {
			t.Errorf("%s direction = %s, want %s", row.Name, row.Direction, dir)
		}
		if row.Package == "" {
			t.Errorf("%s has no implementing package", row.Name)
		}
	}
}

func TestStrategiesAgreeOnResults(t *testing.T) {
	init := map[string][]float64{"X": Ramp(100)}
	var want []float64
	for _, s := range []Strategy{Interprocedural, Immediate, RuntimeResolution} {
		opts := DefaultOptions()
		opts.Strategy = s
		prog, err := Compile(Fig1Src(100, 4), opts)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		res, err := NewRunner(WithInit(init)).Run(prog)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if want == nil {
			want = res.Arrays["X"]
			continue
		}
		for i := range want {
			if math.Abs(res.Arrays["X"][i]-want[i]) > 1e-9 {
				t.Fatalf("%v: X[%d] = %v, want %v", s, i, res.Arrays["X"][i], want[i])
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",                        // empty
		"PROGRAM P\nfoo bar\nEND", // parse error
		"PROGRAM P\ncall P\nEND",  // self-recursion
	}
	for _, src := range bad {
		if _, err := Compile(src, DefaultOptions()); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestWorkloadGeneratorsParse(t *testing.T) {
	for name, src := range map[string]string{
		"fig1":  Fig1Src(200, 8),
		"fig4":  Fig4Src(60, 2),
		"fig15": Fig15Src(5, 4),
		"dgefa": DgefaSrc(32, 4),
		"jac1d": Jacobi1DSrc(64, 3, 4),
		"jac2d": Jacobi2DSrc(16, 2, 4),
	} {
		if _, err := Compile(src, DefaultOptions()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestCompileDeterminism: compiling the same source repeatedly yields
// byte-identical SPMD listings (no map-iteration order leaks).
func TestCompileDeterminism(t *testing.T) {
	for name, src := range map[string]string{
		"fig4":  Fig4Src(100, 4),
		"dgefa": DgefaSrc(32, 4),
		"fig15": Fig15Src(5, 4),
		"adi":   ADISrc(16, 2, 4, true),
	} {
		var first string
		for trial := 0; trial < 10; trial++ {
			prog, err := Compile(src, DefaultOptions())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			text := prog.Listing()
			if trial == 0 {
				first = text
				continue
			}
			if text != first {
				t.Fatalf("%s: listing differs between compiles", name)
			}
		}
	}
}

// TestDgefaApproachesHandWritten reproduces the paper's headline §9
// claim: the interprocedurally compiled dgefa approaches hand-written
// message-passing code, while the baselines are far away.
func TestDgefaApproachesHandWritten(t *testing.T) {
	const n, p = 64, 4
	init := map[string][]float64{"a": DgefaMatrix(n)}

	// the hand-written program is plain SPMD text executed directly
	handRes, err := NewRunner(WithInit(init)).RunSPMD(DgefaHandSrc(n, p), p)
	if err != nil {
		t.Fatal(err)
	}

	compiled, err := Compile(DgefaSrc(n, p), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	compRes, err := NewRunner(WithInit(init)).Run(compiled)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewRunner(WithInit(init)).RunReference(compiled)
	if err != nil {
		t.Fatal(err)
	}

	// both must be correct
	for i, want := range ref.Arrays["a"] {
		if d := compRes.Arrays["a"][i] - want; d > 1e-6 || d < -1e-6 {
			t.Fatalf("compiled a[%d] = %v, want %v", i, compRes.Arrays["a"][i], want)
		}
		if d := handRes.Arrays["a"][i] - want; d > 1e-6 || d < -1e-6 {
			t.Fatalf("hand a[%d] = %v, want %v", i, handRes.Arrays["a"][i], want)
		}
	}

	ratio := compRes.Stats.Time / handRes.Stats.Time
	if ratio > 2.0 {
		t.Errorf("compiled/hand = %.2f (compiled %.0fµs, hand %.0fµs): not 'closely approaching'",
			ratio, compRes.Stats.Time, handRes.Stats.Time)
	}
	t.Logf("hand=%.0fµs compiled=%.0fµs ratio=%.2f", handRes.Stats.Time, compRes.Stats.Time, ratio)
}
