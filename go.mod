module fortd

go 1.22
