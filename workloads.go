package fortd

import (
	"fmt"
	"math"
	"strings"

	"fortd/internal/ast"
	"fortd/internal/parser"
)

// This file provides the paper's workloads as parameterized Fortran D
// source generators, shared by the examples, the benchmark harness and
// the experiment driver (cmd/fdpaper).

// Fig1Src generates the paper's Figure 1 program: a shifted
// assignment in a subroutine whose decomposition is only known
// interprocedurally. n is the array size, p the processor count.
func Fig1Src(n, p int) string {
	return fmt.Sprintf(`
      PROGRAM P1
      REAL X(%d)
      PARAMETER (n$proc = %d)
      DISTRIBUTE X(BLOCK)
      call F1(X)
      END
      SUBROUTINE F1(X)
      REAL X(%d)
      do i = 1,%d
        X(i) = F(X(i+5))
      enddo
      END
`, n, p, n, n-5)
}

// Fig4Src generates the paper's Figure 4 program: two call sites
// passing differently-distributed arrays to the same procedure chain,
// requiring cloning (Figure 8), delayed computation partitioning and
// delayed vectorized communication (Figure 10).
func Fig4Src(n, p int) string {
	return fmt.Sprintf(`
      PROGRAM P1
      REAL X(%d,%d),Y(%d,%d)
      PARAMETER (n$proc = %d)
      ALIGN Y(i,j) with X(j,i)
      DISTRIBUTE X(BLOCK,:)
      do i = 1,%d
S1      call F1(X,i)
      enddo
      do j = 1,%d
S2      call F1(Y,j)
      enddo
      END
      SUBROUTINE F1(Z,i)
      REAL Z(%d,%d)
S3    call F2(Z,i)
      END
      SUBROUTINE F2(Z,i)
      REAL Z(%d,%d)
      do k = 1,%d
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`, n, n, n, n, p, n, n, n, n, n, n, n-5)
}

// Fig15Src generates the paper's Figure 15 dynamic-data-decomposition
// program: X is block-distributed, cyclically redistributed inside F1
// (called twice per iteration of a T-trip loop), then fully overwritten
// by F2.
func Fig15Src(T, p int) string {
	return Fig15ScaledSrc(100, T, p)
}

// Fig15ScaledSrc generates the Figure 15 dynamic-distribution pattern
// at an arbitrary array size (Fig15Src pins the paper's X(100)). The
// scaled fdbench workloads redistribute a larger X across hundreds of
// processors, where every BLOCK↔CYCLIC remap is a full P×(P-1)
// message exchange — the stress case for the machine's link state.
func Fig15ScaledSrc(n, T, p int) string {
	return fmt.Sprintf(`
      PROGRAM P1
      REAL X(%d)
      PARAMETER (n$proc = %d)
      DISTRIBUTE X(BLOCK)
      do k = 1,%d
S1      call F1(X)
S2      call F1(X)
      enddo
      call F2(X)
      END
      SUBROUTINE F1(X)
      REAL X(%d)
      DISTRIBUTE X(CYCLIC)
      do i = 1,%d
        y = y + X(i)
      enddo
      END
      SUBROUTINE F2(X)
      REAL X(%d)
      do i = 1,%d
        X(i) = 1.0
      enddo
      END
`, n, p, T, n, n, n, n)
}

// DgefaSrc generates the §9 case study: LU factorization on a
// column-cyclic matrix, with the BLAS-1 kernels (idamax, dscal, daxpy)
// in separate procedures. The idamax pivot scan computes the column
// maximum but no rows are swapped — the test matrix (DgefaMatrix) is
// diagonally dominant, so the pivot is always the diagonal and the
// numeric results match pivot-free elimination.
func DgefaSrc(n, p int) string {
	return fmt.Sprintf(`
      PROGRAM MAIN
      PARAMETER (n$proc = %d)
      REAL a(%d,%d)
      DISTRIBUTE a(:,CYCLIC)
      call dgefa(a, %d)
      END
      SUBROUTINE dgefa(a, n)
      REAL a(%d,%d)
      do k = 1, n-1
        call idamax(a, n, k)
        t = 1.0 / a(k,k)
        call dscal(a, n, k, t)
        do j = k+1, n
          call daxpy(a, n, k, j)
        enddo
      enddo
      END
      SUBROUTINE idamax(a, n, k)
      REAL a(%d,%d)
      s = 0.0
      do i = k, n
        s = MAX(s, ABS(a(i,k)))
      enddo
      END
      SUBROUTINE dscal(a, n, k, t)
      REAL a(%d,%d)
      do i = k+1, n
        a(i,k) = a(i,k) * t
      enddo
      END
      SUBROUTINE daxpy(a, n, k, j)
      REAL a(%d,%d)
      do i = k+1, n
        a(i,j) = a(i,j) - a(i,k) * a(k,j)
      enddo
      END
`, p, n, n, n, n, n, n, n, n, n, n, n)
}

// DgefaMatrix builds the deterministic diagonally dominant test matrix
// used with DgefaSrc (row-major).
func DgefaMatrix(n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := math.Sin(float64(i*7+j*13)) * 0.5
			if i == j {
				v = float64(n) + 1.0
			}
			a[i*n+j] = v
		}
	}
	return a
}

// DgefaHandSrc is hand-written SPMD message-passing code for the same
// factorization — the comparison point the paper's §9 uses ("the
// Fortran D compiler produces programs that closely approach the
// quality of hand-written code"). It is written directly in the output
// language (my$p, first$, broadcast) the way an iPSC programmer would:
// the pivot column is scaled by its owner and broadcast once per step,
// and each processor updates only its own columns.
func DgefaHandSrc(n, p int) string {
	return fmt.Sprintf(`
      PROGRAM HAND
      PARAMETER (n$proc = %d)
      REAL a(%d,%d)
      DISTRIBUTE a(:,CYCLIC)
      my$p = myproc()
      do k = 1, %d
        if (MOD(k-1, %d) .EQ. my$p) then
          t = 1.0 / a(k,k)
          do i = k+1, %d
            a(i,k) = a(i,k) * t
          enddo
        endif
        broadcast a(k:%d,k) from MOD(k-1, %d)
        do j = first$(my$p+1, k+1, %d), %d, %d
          do i = k+1, %d
            a(i,j) = a(i,j) - a(i,k) * a(k,j)
          enddo
        enddo
      enddo
      END
`, p, n, n, n-1, p, n, n, p, p, n, p, n)
}

// Jacobi1DSrc generates a 1-D Jacobi relaxation with a time loop.
func Jacobi1DSrc(n, steps, p int) string {
	return fmt.Sprintf(`
      PROGRAM JAC
      PARAMETER (n$proc = %d)
      REAL a(%d), b(%d)
      DISTRIBUTE a(BLOCK)
      DISTRIBUTE b(BLOCK)
      do t = 1, %d
        do i = 2, %d
          b(i) = 0.5 * (a(i-1) + a(i+1))
        enddo
        do i = 2, %d
          a(i) = b(i)
        enddo
      enddo
      END
`, p, n, n, steps, n-1, n-1)
}

// Jacobi2DSrc generates the 2-D five-point stencil on a row-block
// distribution.
func Jacobi2DSrc(n, steps, p int) string {
	return fmt.Sprintf(`
      PROGRAM JAC2
      PARAMETER (n$proc = %d)
      REAL a(%d,%d), b(%d,%d)
      DISTRIBUTE a(BLOCK,:)
      DISTRIBUTE b(BLOCK,:)
      do t = 1, %d
        do i = 2, %d
          do j = 2, %d
            b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
          enddo
        enddo
        do i = 2, %d
          do j = 2, %d
            a(i,j) = b(i,j)
          enddo
        enddo
      enddo
      END
`, p, n, n, n, n, steps, n-1, n-1, n-1, n-1)
}

// ADISrc generates an ADI-style alternating-sweep program, the
// motivating case for dynamic data decomposition (§6): a row
// recurrence phase (perfectly parallel when rows are distributed)
// followed by a column recurrence phase (perfectly parallel when
// columns are distributed). With dynamic=true the array is
// redistributed between the phases — one remap instead of a pipelined
// per-iteration boundary exchange through the second phase.
func ADISrc(n, steps, p int, dynamic bool) string {
	remap := ""
	if dynamic {
		remap = "        DISTRIBUTE a(:,BLOCK)\n"
	}
	restore := ""
	if dynamic {
		restore = "        DISTRIBUTE a(BLOCK,:)\n"
	}
	return fmt.Sprintf(`
      PROGRAM ADI
      PARAMETER (n$proc = %d)
      REAL a(%d,%d)
      DISTRIBUTE a(BLOCK,:)
      do t = 1, %d
        do i = 1, %d
          do j = 2, %d
            a(i,j) = a(i,j) + 0.5 * a(i,j-1)
          enddo
        enddo
%s        do j = 1, %d
          do i = 2, %d
            a(i,j) = a(i,j) + 0.5 * a(i-1,j)
          enddo
        enddo
%s      enddo
      END
`, p, n, n, steps, n, n, remap, n, n, restore)
}

// SyntheticProcsSrc generates a compile-time benchmark workload: nsubs
// independent stencil subroutines, each owning a BLOCK-distributed
// array of n elements and containing loops sweep loops, all called in
// sequence from the main program. The subroutines do not call each
// other, so the phase-3 scheduler can compile all of them concurrently;
// raising loops raises the per-procedure analysis cost.
func SyntheticProcsSrc(nsubs, loops, n, p int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "      PROGRAM MAIN\n      PARAMETER (n$proc = %d)\n", p)
	for i := 1; i <= nsubs; i++ {
		fmt.Fprintf(&b, "      REAL a%d(%d)\n", i, n)
	}
	for i := 1; i <= nsubs; i++ {
		fmt.Fprintf(&b, "      DISTRIBUTE a%d(BLOCK)\n", i)
	}
	for i := 1; i <= nsubs; i++ {
		fmt.Fprintf(&b, "      call s%d(a%d)\n", i, i)
	}
	b.WriteString("      END\n")
	for i := 1; i <= nsubs; i++ {
		fmt.Fprintf(&b, "      SUBROUTINE s%d(x)\n      REAL x(%d)\n", i, n)
		for l := 0; l < loops; l++ {
			// alternate shift directions so successive loops carry
			// different communication patterns
			sh := 1 + l%3
			fmt.Fprintf(&b, `      do i = %d, %d
        x(i) = 0.5 * x(i-%d) + 0.25 * x(i+%d) + %d.0
      enddo
`, sh+1, n-sh, sh, sh, i+l)
		}
		b.WriteString("      END\n")
	}
	return b.String()
}

// ReductionSrc generates a global-reduction workload over a cyclic
// distribution: a sum and a max over the whole array, each lowered to
// a binomial combining tree (globalsum/globalmax) followed by the
// result broadcast. It exercises the tree reduce on every processor
// count, including P that are not powers of two.
func ReductionSrc(n, p int) string {
	return fmt.Sprintf(`
      PROGRAM RED
      PARAMETER (n$proc = %d)
      REAL X(%d)
      DISTRIBUTE X(CYCLIC)
      do i = 1, %d
        X(i) = MOD(i * 7, 13)
      enddo
      s = 0.0
      do i = 1, %d
        s = s + X(i)
      enddo
      emax = 0.0
      do i = 1, %d
        emax = MAX(emax, X(i))
      enddo
      X(1) = s
      X(2) = emax
      END
`, p, n, n, n, n)
}

// Ramp returns [1, 2, ..., n] as float64 — a convenient array seed.
func Ramp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// RampInit seeds every constant-sized array of src's main program with
// a Ramp — the default initialization fdrun and fdreport use for
// arbitrary input files. Arrays whose dimensions are not compile-time
// constants (and programs that fail to parse) are simply skipped; the
// compiler proper reports those errors.
func RampInit(src string) map[string][]float64 {
	init := map[string][]float64{}
	parsed, err := parser.Parse(src)
	if err != nil || parsed.Main() == nil {
		return init
	}
	for _, sym := range parsed.Main().Symbols.Symbols() {
		if sym.Kind != ast.SymArray {
			continue
		}
		size := 1
		okAll := true
		for _, d := range sym.Dims {
			lo, okLo := ast.EvalInt(d.Lo, nil)
			hi, okHi := ast.EvalInt(d.Hi, nil)
			if !okLo || !okHi {
				okAll = false
				break
			}
			size *= hi - lo + 1
		}
		if okAll {
			init[sym.Name] = Ramp(size)
		}
	}
	return init
}
