package fortd

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestTestdataPrograms compiles every sample program under testdata/
// with all three strategies and validates the parallel execution
// against the sequential reference — the same check cmd/fdrun applies.
// These are the files shipped as user-facing samples for fdc/fdrun.
func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/*.f")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("expected sample programs, found %v", files)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			srcBytes, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(srcBytes)
			for _, strategy := range []Strategy{Interprocedural, Immediate, RuntimeResolution} {
				opts := DefaultOptions()
				opts.Strategy = strategy
				prog, err := Compile(src, opts)
				if err != nil {
					t.Fatalf("%v: compile: %v", strategy, err)
				}
				res, err := NewRunner().Run(prog)
				if filepath.Base(file) == "deadlock.f" {
					// the shipped deadlock sample must terminate with a
					// structured report, not hang or succeed
					var dl *DeadlockError
					if !errors.As(err, &dl) || len(dl.Blocked) != 2 {
						t.Fatalf("%v: run = %v, want 2-proc DeadlockError", strategy, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%v: run: %v", strategy, err)
				}
				ref, err := NewRunner().RunReference(prog)
				if err != nil {
					t.Fatalf("%v: reference: %v", strategy, err)
				}
				for name, want := range ref.Arrays {
					got := res.Arrays[name]
					for i := range want {
						if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
							t.Fatalf("%v: %s[%d] = %v, want %v", strategy, name, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}
