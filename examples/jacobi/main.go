// Command jacobi compiles and simulates a 2-D Jacobi relaxation — the
// canonical regular data-parallel workload Fortran D was designed for.
// The compiler turns the row-block distribution into per-time-step
// ghost-row exchanges, vectorized across the sweep loops.
//
// Run with:
//
//	go run ./examples/jacobi [-n 64] [-steps 20] [-p 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"fortd"
)

func src(n, steps, p int) string {
	return fmt.Sprintf(`
      PROGRAM JAC2
      PARAMETER (n$proc = %d)
      REAL a(%d,%d), b(%d,%d)
      DISTRIBUTE a(BLOCK,:)
      DISTRIBUTE b(BLOCK,:)
      do t = 1, %d
        do i = 2, %d
          do j = 2, %d
            b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
          enddo
        enddo
        do i = 2, %d
          do j = 2, %d
            a(i,j) = b(i,j)
          enddo
        enddo
      enddo
      END
`, p, n, n, n, n, steps, n-1, n-1, n-1, n-1)
}

func main() {
	n := flag.Int("n", 64, "grid order")
	steps := flag.Int("steps", 20, "time steps")
	p := flag.Int("p", 4, "processors")
	flag.Parse()

	opts := fortd.DefaultOptions()
	opts.P = *p
	prog, err := fortd.Compile(src(*n, *steps, *p), opts)
	if err != nil {
		log.Fatal(err)
	}

	// hot top and bottom boundary rows
	grid := make([]float64, (*n)*(*n))
	for j := 0; j < *n; j++ {
		grid[j] = 100
		grid[(*n-1)*(*n)+j] = 100
	}
	res, err := fortd.NewRunner(fortd.WithInit(map[string][]float64{"a": grid})).Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := fortd.NewRunner(fortd.WithInit(map[string][]float64{"a": grid})).RunReference(prog)
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	for i := range ref.Arrays["a"] {
		if d := math.Abs(res.Arrays["a"][i] - ref.Arrays["a"][i]); d > maxErr {
			maxErr = d
		}
	}

	fmt.Printf("2-D Jacobi %dx%d, %d steps, %d processors (row-block)\n", *n, *n, *steps, *p)
	fmt.Printf("parallel:   %s\n", res.Stats)
	fmt.Printf("max |err| vs sequential: %g\n", maxErr)
	fmt.Printf("messages per step: %d (ghost-row exchanges)\n", res.Stats.Messages/int64(*steps))

	fmt.Println("\nscaling:")
	var t1 float64
	for _, procs := range []int{1, 2, 4, 8} {
		o := fortd.DefaultOptions()
		o.P = procs
		pr, err := fortd.Compile(src(*n, *steps, procs), o)
		if err != nil {
			log.Fatal(err)
		}
		r, err := fortd.NewRunner(fortd.WithInit(map[string][]float64{"a": grid})).Run(pr)
		if err != nil {
			log.Fatal(err)
		}
		if procs == 1 {
			t1 = r.Stats.Time
		}
		fmt.Printf("  P=%-2d time=%9.0fµs  speedup=%.2f  msgs=%d\n",
			procs, r.Stats.Time, t1/r.Stats.Time, r.Stats.Messages)
	}
}
