// Command dgefa reproduces the paper's §9 case study: LINPACK LU
// factorization with the BLAS-1 kernels in separate procedures, so
// interprocedural analysis is essential for acceptable performance.
// It compiles dgefa three ways — interprocedural (the paper),
// immediate instantiation, and run-time resolution — and reports
// simulated execution time, messages, and data volume for each.
//
// Run with:
//
//	go run ./examples/dgefa [-n 96] [-p 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"fortd"
)

func dgefaSrc(n, p int) string {
	return fmt.Sprintf(`
      PROGRAM MAIN
      PARAMETER (n$proc = %d)
      REAL a(%d,%d)
      DISTRIBUTE a(:,CYCLIC)
      call dgefa(a, %d)
      END
      SUBROUTINE dgefa(a, n)
      REAL a(%d,%d)
      do k = 1, n-1
        t = 1.0 / a(k,k)
        call dscal(a, n, k, t)
        do j = k+1, n
          call daxpy(a, n, k, j)
        enddo
      enddo
      END
      SUBROUTINE dscal(a, n, k, t)
      REAL a(%d,%d)
      do i = k+1, n
        a(i,k) = a(i,k) * t
      enddo
      END
      SUBROUTINE daxpy(a, n, k, j)
      REAL a(%d,%d)
      do i = k+1, n
        a(i,j) = a(i,j) - a(i,k) * a(k,j)
      enddo
      END
`, p, n, n, n, n, n, n, n, n, n)
}

func matrix(n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := math.Sin(float64(i*7+j*13)) * 0.5
			if i == j {
				v = float64(n) + 1.0
			}
			a[i*n+j] = v
		}
	}
	return a
}

func main() {
	n := flag.Int("n", 96, "matrix order")
	p := flag.Int("p", 4, "processors")
	flag.Parse()

	variants := []struct {
		name     string
		strategy fortd.Strategy
	}{
		{"interprocedural", fortd.Interprocedural},
		{"immediate", fortd.Immediate},
		{"runtime-resolution", fortd.RuntimeResolution},
	}

	fmt.Printf("dgefa n=%d on %d processors (column-cyclic)\n\n", *n, *p)
	fmt.Printf("%-20s %12s %10s %12s %8s\n", "strategy", "time(µs)", "messages", "words", "flops")
	var base float64
	for _, v := range variants {
		opts := fortd.DefaultOptions()
		opts.P = *p
		opts.Strategy = v.strategy
		prog, err := fortd.Compile(dgefaSrc(*n, *p), opts)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		res, err := fortd.NewRunner(fortd.WithInit(map[string][]float64{"a": matrix(*n)})).Run(prog)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		// sanity: compare against the sequential reference
		ref, err := fortd.NewRunner(fortd.WithInit(map[string][]float64{"a": matrix(*n)})).RunReference(prog)
		if err != nil {
			log.Fatal(err)
		}
		for i := range ref.Arrays["a"] {
			if math.Abs(res.Arrays["a"][i]-ref.Arrays["a"][i]) > 1e-6 {
				log.Fatalf("%s: wrong answer at %d", v.name, i)
			}
		}
		if base == 0 {
			base = res.Stats.Time
		}
		fmt.Printf("%-20s %12.0f %10d %12d %8d   (%.1fx)\n",
			v.name, res.Stats.Time, res.Stats.Messages, res.Stats.Words,
			res.Stats.Flops, res.Stats.Time/base)
	}

	fmt.Println("\nspeedup of the interprocedural version vs processors:")
	var t1 float64
	for _, procs := range []int{1, 2, 4, 8, 16} {
		opts := fortd.DefaultOptions()
		opts.P = procs
		prog, err := fortd.Compile(dgefaSrc(*n, procs), opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fortd.NewRunner(fortd.WithInit(map[string][]float64{"a": matrix(*n)})).Run(prog)
		if err != nil {
			log.Fatal(err)
		}
		if procs == 1 {
			t1 = res.Stats.Time
		}
		fmt.Printf("  P=%-3d time=%10.0fµs  speedup=%.2f\n", procs, res.Stats.Time, t1/res.Stats.Time)
	}
}
