// Command dyndist demonstrates dynamic data decomposition (§6): a
// program whose phases want different distributions, compiled at each
// level of the paper's Figure 16 optimization ladder. The remap count
// drops from 4T to 2T to 2 to 1 physical remap as live-decomposition
// analysis, loop-invariant hoisting, and array-kill analysis kick in.
//
// Run with:
//
//	go run ./examples/dyndist [-t 25]
package main

import (
	"flag"
	"fmt"
	"log"

	"fortd"
)

func src(T int) string {
	return fmt.Sprintf(`
      PROGRAM P1
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      do k = 1,%d
S1      call F1(X)
S2      call F1(X)
      enddo
      call F2(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      DISTRIBUTE X(CYCLIC)
      do i = 1,100
        y = y + X(i)
      enddo
      END
      SUBROUTINE F2(X)
      REAL X(100)
      do i = 1,100
        X(i) = 1.0
      enddo
      END
`, T)
}

func main() {
	T := flag.Int("t", 25, "outer loop trip count")
	flag.Parse()

	levels := []struct {
		name  string
		level fortd.RemapLevel
		fig   string
	}{
		{"none (naive placement)", fortd.RemapNone, "16a"},
		{"live decompositions", fortd.RemapLive, "16b"},
		{"loop-invariant hoisting", fortd.RemapHoist, "16c"},
		{"array kills (in place)", fortd.RemapKills, "16d"},
	}

	x0 := make([]float64, 100)
	for i := range x0 {
		x0[i] = float64(i)
	}

	fmt.Printf("dynamic data decomposition, T=%d (Figure 16 ladder)\n\n", *T)
	fmt.Printf("%-28s %8s %12s %10s %12s\n", "optimization level", "fig", "time(µs)", "remaps", "words moved")
	for _, l := range levels {
		opts := fortd.DefaultOptions()
		opts.RemapOpt = l.level
		prog, err := fortd.Compile(src(*T), opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fortd.NewRunner(fortd.WithInit(map[string][]float64{"X": x0})).Run(prog)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := fortd.NewRunner(fortd.WithInit(map[string][]float64{"X": x0})).RunReference(prog)
		if err != nil {
			log.Fatal(err)
		}
		for i := range ref.Arrays["X"] {
			if res.Arrays["X"][i] != ref.Arrays["X"][i] {
				log.Fatalf("%s: wrong answer", l.name)
			}
		}
		fmt.Printf("%-28s %8s %12.0f %10d %12d\n",
			l.name, l.fig, res.Stats.Time, res.Stats.Remaps, res.Stats.Words)
	}
	fmt.Println("\nexpected remap counts: 4T, 2T, 2, 1 —")
	fmt.Printf("with T=%d: %d, %d, 2, 1\n", *T, 4**T, 2**T)
}
