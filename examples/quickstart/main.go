// Command quickstart compiles and runs the paper's Figure 1 program —
// the smallest Fortran D example that needs interprocedural analysis:
// the main program declares X block-distributed, and subroutine F1
// computes on it without any local decomposition information.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fortd"
)

const src = `
      PROGRAM P1
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      call F1(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
        X(i) = F(X(i+5))
      enddo
      END
`

func main() {
	prog, err := fortd.Compile(src, fortd.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Generated SPMD node program ===")
	fmt.Println(prog.Listing())

	// seed X with a ramp and execute on the simulated 4-processor
	// distributed-memory machine
	x0 := make([]float64, 100)
	for i := range x0 {
		x0[i] = float64(i + 1)
	}
	res, err := fortd.NewRunner(fortd.WithInit(map[string][]float64{"X": x0})).Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Simulated execution ===")
	fmt.Printf("processors: %d\n", prog.P())
	fmt.Printf("stats:      %s\n", res.Stats)
	fmt.Printf("X(1:5):     %v\n", res.Arrays["X"][:5])

	// verify against the sequential reference
	ref, err := fortd.NewRunner(fortd.WithInit(map[string][]float64{"X": x0})).RunReference(prog)
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range ref.Arrays["X"] {
		if res.Arrays["X"][i] != ref.Arrays["X"][i] {
			same = false
			break
		}
	}
	fmt.Printf("matches sequential reference: %v\n", same)

	// contrast with run-time resolution (Figure 3)
	opts := fortd.DefaultOptions()
	opts.Strategy = fortd.RuntimeResolution
	slow, err := fortd.Compile(src, opts)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := fortd.NewRunner(fortd.WithInit(map[string][]float64{"X": x0})).Run(slow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Run-time resolution baseline (Figure 3) ===")
	fmt.Printf("stats:      %s\n", sres.Stats)
	fmt.Printf("slowdown:   %.1fx, %dx more messages\n",
		sres.Stats.Time/res.Stats.Time, sres.Stats.Messages/res.Stats.Messages)
}
