GO ?= go

.PHONY: check test race bench golden fuzz report serve load

check: ## build + vet + race tests + fuzz smoke + trace-overhead guard
	./ci.sh

test:
	$(GO) test ./...

race: ## tests under the race detector (the parallel compile lane)
	$(GO) test -race ./...

bench: ## go benchmarks + the BENCH_<yyyymmdd>.json snapshot
	$(GO) test -run '^$$' -bench . -benchtime 10x .
	$(GO) run ./cmd/fdbench

golden: ## regenerate the trace-summary, analysis and optimization-report goldens
	$(GO) test -run TestGolden -update .

report: ## render the dgefa HTML performance report to report.html
	$(GO) run ./cmd/fdreport -o report.html testdata/dgefa.f

FUZZTIME ?= 30s
fuzz: ## fuzz the parser and the whole compile pipeline
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/parser
	$(GO) test -run '^$$' -fuzz FuzzCompile -fuzztime $(FUZZTIME) .

FDD_ADDR ?= localhost:8700
FDD_CACHE ?= .fddcache
serve: ## run the compile daemon with a disk-persisted summary cache
	$(GO) run ./cmd/fdd -addr $(FDD_ADDR) -cache-dir $(FDD_CACHE)

SESSIONS ?= 500
load: ## drive 500 concurrent sessions against a running daemon (make serve first)
	$(GO) run ./cmd/fdload -addr http://$(FDD_ADDR) -sessions $(SESSIONS)
