GO ?= go

.PHONY: check test race bench golden overlap fuzz report serve load

check: ## build + vet + race tests + fuzz smoke + trace-overhead guard
	./ci.sh

test:
	$(GO) test ./...

race: ## tests under the race detector (the parallel compile lane)
	$(GO) test -race ./...

bench: ## go benchmarks + the BENCH_<yyyymmdd>.json snapshot
	$(GO) test -run '^$$' -bench . -benchtime 10x .
	$(GO) run ./cmd/fdbench

golden: ## regenerate the trace-summary, analysis, optimization-report and metrics goldens
	$(GO) test -run TestGolden -update . ./internal/metrics

overlap: ## profile jacobi with the blocking vs overlap schedule and diff the artifacts
	$(GO) build -o /tmp/fdprof_overlap ./cmd/fdprof
	$(GO) run ./cmd/fdrun -overlap=false -check=false -profile /tmp/overlap_off.json testdata/jacobi2d.f
	$(GO) run ./cmd/fdrun -overlap -check=false -profile /tmp/overlap_on.json testdata/jacobi2d.f
	/tmp/fdprof_overlap diff /tmp/overlap_off.json /tmp/overlap_on.json
	rm -f /tmp/fdprof_overlap /tmp/overlap_off.json /tmp/overlap_on.json

report: ## render the dgefa HTML performance report to report.html
	$(GO) run ./cmd/fdreport -o report.html testdata/dgefa.f

FUZZTIME ?= 30s
fuzz: ## fuzz the parser and the whole compile pipeline
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/parser
	$(GO) test -run '^$$' -fuzz FuzzCompile -fuzztime $(FUZZTIME) .

FDD_ADDR ?= localhost:8700
FDD_CACHE ?= .fddcache
PPROF ?= 0
serve: ## run the compile daemon with a disk-persisted summary cache (PPROF=1 mounts /debug/pprof)
	$(GO) run ./cmd/fdd -addr $(FDD_ADDR) -cache-dir $(FDD_CACHE) $(if $(filter 1,$(PPROF)),-pprof)

SESSIONS ?= 500
load: ## drive 500 concurrent sessions against a running daemon (make serve first), auditing /metrics consistency
	$(GO) run ./cmd/fdload -addr http://$(FDD_ADDR) -sessions $(SESSIONS) -scrape
