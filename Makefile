GO ?= go

.PHONY: check test bench golden

check: ## build + vet + race tests + trace-overhead guard
	./ci.sh

test:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 10x .

golden: ## regenerate the trace-summary golden files
	$(GO) test -run TestGolden -update .
