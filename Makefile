GO ?= go

.PHONY: check test bench golden

check: ## build + vet + race tests + trace-overhead guard
	./ci.sh

test:
	$(GO) test ./...

bench: ## go benchmarks + the BENCH_<yyyymmdd>.json snapshot
	$(GO) test -run '^$$' -bench . -benchtime 10x .
	$(GO) run ./cmd/fdbench

golden: ## regenerate the trace-summary and optimization-report goldens
	$(GO) test -run TestGolden -update .
