package fortd

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fortd/internal/machine"
	"fortd/internal/trace"
)

// This file promotes the deterministic fault-injection scenarios into a
// cross-backend regression suite: every scenario runs on both machine
// engines, the two runs must agree byte-for-byte (trace exports, error
// strings, per-processor errors, statistics), and the DES bytes are
// pinned against goldens in testdata/faults so a change in fault
// semantics — on either backend — shows up as a diff, not a surprise.
// Regenerate the goldens with `go test -run TestFaultRegression -update`.

type faultScenario struct {
	name string
	cfg  machine.Config
	plan *machine.FaultPlan
	node func(m *machine.Machine, p *machine.Proc)
	// wantErr marks scenarios that must fail (abort, deadlock,
	// congestion); clean scenarios must return nil from Wait.
	wantErr bool
}

// iPSC-flavored cost model shared by all scenarios.
func faultCfg(p int) machine.Config {
	return machine.Config{P: p, Latency: 70, PerWord: 0.4, FlopCost: 0.1}
}

// ringNode is a 12-iteration ring exchange: compute, send to the right
// neighbor, receive from the left. Sends never block (links are deep),
// so the dataflow is deterministic under any fault plan.
func ringNode(m *machine.Machine, p *machine.Proc) {
	id := p.ID()
	for it := 0; it < 12; it++ {
		p.SetContext("RING", it+1, "")
		p.Compute(3 + id)
		buf := make([]float64, 1+(id+it)%4)
		for j := range buf {
			buf[j] = float64(id*100 + it)
		}
		p.Send((id+1)%3, buf)
		p.Recv((id + 2) % 3)
	}
}

func faultScenarios() []faultScenario {
	var scs []faultScenario
	// delays, duplication and a straggler, pinned per seed: each seed
	// has its own golden file, so the per-seed export bytes are part of
	// the contract (FaultPlan docs promise seed-stable schedules)
	for _, seed := range []int64{1, 7, 1234} {
		scs = append(scs, faultScenario{
			name: fmt.Sprintf("ring_seed%d", seed),
			cfg:  faultCfg(3),
			plan: &machine.FaultPlan{
				Seed: seed, DelayProb: 0.3, DelayMax: 50,
				DupProb: 0.2, Stragglers: map[int]float64{1: 2.5},
			},
			node: ringNode,
		})
	}
	// split-phase ring under faults: every processor posts its receive
	// before computing and waits after, so a straggler plus random
	// delays decide how much of each flight the compute hides — the
	// KindWait residuals must come out identical on both backends
	for _, seed := range []int64{2, 42} {
		scs = append(scs, faultScenario{
			name: fmt.Sprintf("overlap_ring_seed%d", seed),
			cfg:  faultCfg(3),
			plan: &machine.FaultPlan{
				Seed: seed, DelayProb: 0.3, DelayMax: 50,
				Stragglers: map[int]float64{1: 2.5},
			},
			node: func(m *machine.Machine, p *machine.Proc) {
				id := p.ID()
				for it := 0; it < 12; it++ {
					p.SetContext("ORING", it+1, "")
					h := p.IRecv((id + 2) % 3)
					buf := make([]float64, 1+(id+it)%4)
					for j := range buf {
						buf[j] = float64(id*100 + it)
					}
					p.Send((id+1)%3, buf)
					p.Compute(3 + id)
					p.WaitHandle(h)
				}
			},
		})
	}
	// binomial combining tree at a non-power-of-two P with a slow leaf:
	// the straggler sits mid-tree, so its delay propagates through the
	// combine rounds; clocks, message counts and the golden trace pin
	// the tree schedule on both backends
	scs = append(scs, faultScenario{
		name: "reduce_tree_straggler",
		cfg:  faultCfg(6),
		plan: &machine.FaultPlan{Seed: 3, Stragglers: map[int]float64{3: 2.0}},
		node: func(m *machine.Machine, p *machine.Proc) {
			id := p.ID()
			p.SetContext("REDUCE", 1, "")
			p.Compute(5 * (id + 1))
			p.Reduce(0, float64(id+1), func(a, b float64) float64 { return a + b })
		},
	})
	// cooperative abort: the origin computes and aborts without sending,
	// so its peers block on links with nothing in flight — on both
	// backends the only possible outcome is an abort-unblock, making the
	// cross-backend comparison race-free
	scs = append(scs, faultScenario{
		name: "abort_straggler",
		cfg:  faultCfg(3),
		plan: &machine.FaultPlan{Seed: 9, Stragglers: map[int]float64{0: 2.0}},
		node: func(m *machine.Machine, p *machine.Proc) {
			switch p.ID() {
			case 0:
				p.SetContext("ORIGIN", 1, "")
				p.Compute(5)
				m.Abort(0, errors.New("injected node failure"))
			case 1:
				p.SetContext("WORK", 7, "")
				p.Recv(0)
			case 2:
				p.SetContext("WORK", 8, "")
				p.Recv(1)
			}
		},
		wantErr: true,
	})
	// deadlock: a four-processor wait cycle with distinct virtual clocks
	// (one straggler). The goroutine backend detects it by watchdog
	// sampling, the DES backend structurally (empty event queue); the
	// report must be identical — same BlockedProc attribution, same
	// clocks, same error text
	scs = append(scs, faultScenario{
		name: "deadlock_cycle",
		cfg:  faultCfg(4),
		plan: &machine.FaultPlan{Stragglers: map[int]float64{2: 3.0}},
		node: func(m *machine.Machine, p *machine.Proc) {
			id := p.ID()
			p.SetContext("STEP", 10+id, "")
			p.Compute((id + 1) * 10)
			p.Recv((id + 1) % 4)
		},
		wantErr: true,
	})
	// congestion: a sender overruns a LinkDepth-4 link whose receiver is
	// itself blocked on a third processor; the fifth send must fail with
	// the same CongestionError (src, dst, depth, site, clock) everywhere
	scs = append(scs, func() faultScenario {
		cfg := faultCfg(3)
		cfg.LinkDepth = 4
		return faultScenario{
			name: "congestion",
			cfg:  cfg,
			node: func(m *machine.Machine, p *machine.Proc) {
				switch p.ID() {
				case 0:
					p.SetContext("FLOOD", 3, "")
					for i := 0; i < 8; i++ {
						p.Send(1, []float64{float64(i), 2})
					}
				case 1:
					p.SetContext("SINK", 4, "")
					p.Recv(2)
				case 2:
					p.SetContext("SINK2", 5, "")
					p.Recv(1)
				}
			},
			wantErr: true,
		}
	}())
	return scs
}

// faultRun is one scenario execution's observable surface.
type faultRun struct {
	jsonl    []byte
	stats    machine.Stats
	err      string
	procErrs []string
}

func runFaultScenario(t *testing.T, sc faultScenario, b machine.Backend) faultRun {
	t.Helper()
	cfg := sc.cfg
	cfg.Backend = b
	m := machine.New(cfg)
	tr := trace.New()
	m.SetTracer(tr) // before SetFaultPlan: straggler events must be traced
	if sc.plan != nil {
		m.SetFaultPlan(sc.plan)
	}
	for pid := 0; pid < cfg.P; pid++ {
		m.Go(pid, func(p *machine.Proc) { sc.node(m, p) })
	}
	err := m.Wait()
	if sc.wantErr && err == nil {
		t.Fatalf("backend %v: Wait() = nil, want failure", b)
	}
	if !sc.wantErr && err != nil {
		t.Fatalf("backend %v: Wait() = %v, want clean run", b, err)
	}
	out := faultRun{stats: m.Stats()}
	if err != nil {
		out.err = err.Error()
	}
	for pid := 0; pid < cfg.P; pid++ {
		if pe := m.ProcErr(pid); pe != nil {
			out.procErrs = append(out.procErrs, fmt.Sprintf("p%d: %v", pid, pe))
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out.jsonl = buf.Bytes()
	return out
}

func TestFaultRegression(t *testing.T) {
	for _, sc := range faultScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			des := runFaultScenario(t, sc, machine.BackendDES)
			ref := runFaultScenario(t, sc, machine.BackendGoroutine)

			if !bytes.Equal(des.jsonl, ref.jsonl) {
				t.Errorf("trace exports differ across backends: %s", firstDiff(des.jsonl, ref.jsonl))
			}
			if des.err != ref.err {
				t.Errorf("Wait errors differ:\n des: %s\n ref: %s", des.err, ref.err)
			}
			if !reflect.DeepEqual(des.procErrs, ref.procErrs) {
				t.Errorf("per-processor errors differ:\n des: %q\n ref: %q", des.procErrs, ref.procErrs)
			}
			if !reflect.DeepEqual(des.stats, ref.stats) {
				t.Errorf("stats differ:\n des=%+v\n ref=%+v", des.stats, ref.stats)
			}

			path := filepath.Join("testdata", "faults", sc.name+".jsonl")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, des.jsonl, 0644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test -run TestFaultRegression -update` to create)", err)
			}
			if !bytes.Equal(des.jsonl, want) {
				t.Errorf("trace export differs from golden %s: %s", path, firstDiff(des.jsonl, want))
			}
		})
	}
}
