package fortd

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenExplain compiles src with a remark collector attached and
// compares the text report against the golden file. Remarks are fully
// deterministic (no wall-clock content), so the whole report is
// locked.
func goldenExplain(t *testing.T, name, src string, opts Options) *Explain {
	t.Helper()
	ex := NewExplain()
	opts.Explain = ex
	if _, err := Compile(src, opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ex.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0644); err != nil {
			t.Fatal(err)
		}
		return ex
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update` to create)", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("optimization report differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
	return ex
}

func TestGoldenExplainJacobi(t *testing.T) {
	goldenExplain(t, "jacobi_explain", Jacobi2DSrc(16, 3, 4), DefaultOptions())
}

// TestGoldenExplainDgefa locks the §9 acceptance story: under the
// interprocedural strategy the report shows idamax, dscal and daxpy
// compiled interprocedurally, with their communication vectorized at
// caller level in dgefa.
func TestGoldenExplainDgefa(t *testing.T) {
	ex := goldenExplain(t, "dgefa_explain", DgefaSrc(32, 4), DefaultOptions())

	var buf bytes.Buffer
	if err := ex.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, callee := range []string{"idamax", "dscal", "daxpy"} {
		if !strings.Contains(out, callee) {
			t.Errorf("interprocedural report does not mention %s", callee)
		}
	}
	if !strings.Contains(out, "vectorized at caller level") {
		t.Error("interprocedural report shows no caller-level vectorized message")
	}
	if strings.Contains(out, "runtime-resolution") {
		t.Error("interprocedural report claims run-time resolution")
	}
}

// TestGoldenExplainDgefaRuntime locks the other half of the story: the
// same program compiled under the run-time resolution baseline names
// each procedure and the reason it was resolved at run time.
func TestGoldenExplainDgefaRuntime(t *testing.T) {
	opts := DefaultOptions()
	opts.Strategy = RuntimeResolution
	ex := goldenExplain(t, "dgefa_explain_runtime", DgefaSrc(32, 4), opts)

	var buf bytes.Buffer
	if err := ex.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, proc := range []string{"dgefa", "idamax", "dscal", "daxpy"} {
		if !strings.Contains(out, proc+" compiled with run-time resolution") {
			t.Errorf("runtime report does not explain %s's run-time resolution", proc)
		}
	}
	if !strings.Contains(out, "baseline strategy") {
		t.Error("runtime report does not state the reason")
	}
}

// TestExplainJSONWellFormed checks the JSON-lines exporter on a real
// compile: every line parses and carries the required fields.
func TestExplainJSONWellFormed(t *testing.T) {
	ex := NewExplain()
	opts := DefaultOptions()
	opts.Explain = ex
	if _, err := Compile(DgefaSrc(32, 4), opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ex.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("only %d remark lines", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"kind":`) || !strings.Contains(line, `"msg":`) {
			t.Fatalf("malformed remark line: %s", line)
		}
	}
}

// TestExplainAnnotatedListing checks the annotated-source exporter
// interleaves remarks under their source lines.
func TestExplainAnnotatedListing(t *testing.T) {
	src := Jacobi2DSrc(16, 3, 4)
	ex := NewExplain()
	opts := DefaultOptions()
	opts.Explain = ex
	if _, err := Compile(src, opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ex.WriteAnnotated(&buf, src); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "!applied") && !strings.Contains(out, "!note") {
		t.Errorf("annotated listing carries no remarks:\n%s", out)
	}
	// the source must survive verbatim
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		if !strings.Contains(out, line) {
			t.Errorf("annotated listing lost source line %q", line)
		}
	}
}
