package fortd

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"fortd/internal/trace/analyze"
)

// backendRun is one (workload, P, backend) execution's full observable
// surface: the sorted trace exports, the analyze text, the machine
// statistics and the assembled arrays.
type backendRun struct {
	jsonl   []byte
	text    []byte
	analyze []byte
	stats   Stats
	arrays  map[string][]float64
}

func runOnBackend(t *testing.T, prog *Program, init map[string][]float64, cfg MachineConfig, plan *FaultPlan) backendRun {
	t.Helper()
	tr := NewTrace()
	res, err := NewRunner(WithMachine(cfg), WithInit(init), WithTrace(tr), WithFaults(plan)).Run(prog)
	if err != nil {
		t.Fatalf("backend %v: %v", cfg.Backend, err)
	}
	var out backendRun
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out.jsonl = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out.text = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := analyze.Analyze(tr.Events()).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out.analyze = append([]byte(nil), buf.Bytes()...)
	out.stats = res.Stats
	out.arrays = res.Arrays
	return out
}

// TestBackendDifferential is the equivalence harness for the
// discrete-event machine core: every workload × processor count runs
// once per backend from one compiled program, and the two runs must be
// indistinguishable — byte-identical sorted JSONL and text trace
// exports, byte-identical analyze output, deeply equal Stats
// (Messages/Received/Words and the full P×P traffic matrix), and equal
// final arrays. This is what licenses every other test in the
// repository to run on the DES default.
func TestBackendDifferential(t *testing.T) {
	workloads := []struct {
		name string
		src  func(p int) string
		init func(src string) map[string][]float64
		plan *FaultPlan
	}{
		// dgefa needs the diagonally dominant matrix: factoring a plain
		// ramp (singular) yields NaNs, and NaN != NaN breaks DeepEqual.
		// DefaultOptions compiles with the overlap schedule on, so jacobi
		// exercises split-phase postrecv/waitrecv and dgefa the pipelined
		// postbcast/waitbcast path on both backends at every P.
		{"jacobi", func(p int) string { return Jacobi2DSrc(64, 3, p) }, RampInit, nil},
		{"dgefa", func(p int) string { return DgefaSrc(64, p) },
			func(string) map[string][]float64 {
				return map[string][]float64{"a": DgefaMatrix(64)}
			}, nil},
		{"dyndist", func(p int) string { return Fig15Src(3, p) }, RampInit, nil},
		// reduction lowers globalsum/globalmax to the binomial combining
		// tree (machine.Reduce) plus the result broadcast
		{"reduction", func(p int) string { return ReductionSrc(128, p) }, RampInit, nil},
		// the straggler lane re-runs the overlapped stencil under a
		// deterministic fault plan: processor 0 runs 2x slow and random
		// delays perturb every flight, so the split-phase waits actually
		// stall — the two backends must still agree byte-for-byte
		{"jacobi_straggler", func(p int) string { return Jacobi2DSrc(64, 3, p) }, RampInit,
			&FaultPlan{Seed: 11, DelayProb: 0.2, DelayMax: 40, Stragglers: map[int]float64{0: 2.0}}},
	}
	for _, w := range workloads {
		for _, p := range []int{1, 3, 6, 16, 64} {
			t.Run(fmt.Sprintf("%s/p%d", w.name, p), func(t *testing.T) {
				src := w.src(p)
				prog, err := Compile(src, DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				init := w.init(src)
				// a modest LinkDepth keeps the goroutine backend's eager
				// P² channel buffers affordable at P=64 (the 8192 default
				// would cost ~1.6 GB there); semantics are identical on
				// both backends as long as no link fills, and 512 clears
				// dgefa's worst per-link backlog with room to spare
				cfg := DefaultMachine(p)
				cfg.LinkDepth = 512

				cfg.Backend = BackendDES
				des := runOnBackend(t, prog, init, cfg, w.plan)
				cfg.Backend = BackendGoroutine
				ref := runOnBackend(t, prog, init, cfg, w.plan)

				if !bytes.Equal(des.jsonl, ref.jsonl) {
					t.Errorf("JSONL trace exports differ (%d vs %d bytes): %s",
						len(des.jsonl), len(ref.jsonl), firstDiff(des.jsonl, ref.jsonl))
				}
				if !bytes.Equal(des.text, ref.text) {
					t.Errorf("text trace exports differ: %s", firstDiff(des.text, ref.text))
				}
				if !bytes.Equal(des.analyze, ref.analyze) {
					t.Errorf("analyze outputs differ: %s", firstDiff(des.analyze, ref.analyze))
				}
				if !reflect.DeepEqual(des.stats, ref.stats) {
					t.Errorf("stats differ:\n des=%+v\n ref=%+v", des.stats, ref.stats)
				}
				if !reflect.DeepEqual(des.arrays, ref.arrays) {
					t.Errorf("final arrays differ")
				}
			})
		}
	}
}

// firstDiff renders the first differing line of two byte streams.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  des: %s\n  ref: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: %d vs %d", len(al), len(bl))
}
