#!/bin/sh
# CI gate: build, vet, race-enabled tests (which exercise the parallel
# compile scheduler), a short fuzz smoke of the parser and compile
# pipeline, and the trace-overhead guard (the disabled-tracing fast path
# must stay cheap; compare the two sub-benchmarks by hand when touching
# the instrumentation).
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
# -timeout is the last-resort hang guard; the machine's own deadlock
# watchdog and deadline should fire long before it
go test -race -timeout 5m ./...
# second machine lane: the same race-enabled tests on the goroutine
# reference backend (the suite above runs the DES default), so both
# engines stay honest under the full test load
FORTD_MACHINE_BACKEND=goroutine go test -race -timeout 5m ./internal/machine ./internal/spmd .
go test -run '^$' -fuzz FuzzParse -fuzztime 10s ./internal/parser
go test -run '^$' -fuzz FuzzCompile -fuzztime 10s .
go test -run '^$' -bench BenchmarkTraceOverhead -benchtime 20x .

# deadlock smoke: a deliberately mismatched SPMD program must terminate
# within the deadline with a non-zero exit and the structured deadlock
# report — never hang
if go run ./cmd/fdrun -spmd -deadline 10s testdata/deadlock.f >/tmp/ci_deadlock.out 2>&1; then
	echo "FAIL: mismatched SPMD program exited zero"
	cat /tmp/ci_deadlock.out
	exit 1
fi
grep -q "deadlock" /tmp/ci_deadlock.out
grep -q "MISMATCH" /tmp/ci_deadlock.out
rm -f /tmp/ci_deadlock.out

# report smoke: the self-contained HTML report must render and be
# non-trivial for the dgefa case study
go run ./cmd/fdreport -sweep 1,2,4 -o /tmp/ci_report.html testdata/dgefa.f
test -s /tmp/ci_report.html
grep -q 'id="heatmap"' /tmp/ci_report.html
grep -q '</html>' /tmp/ci_report.html
rm -f /tmp/ci_report.html

# profile smoke: two equal seeded runs must write byte-identical
# artifacts, and fdprof must rank, diff, merge and annotate them. The
# self-diff must be clean (exit 0); the regression exit path is pinned
# by TestDiffExitCodes
go build -o /tmp/ci_fdprof ./cmd/fdprof
go run ./cmd/fdrun -fault-seed 7 -fault-delay 0.2 -check=false \
	-profile /tmp/ci_prof_a.json testdata/jacobi2d.f
go run ./cmd/fdrun -fault-seed 7 -fault-delay 0.2 -check=false \
	-profile /tmp/ci_prof_b.json testdata/jacobi2d.f
diff /tmp/ci_prof_a.json /tmp/ci_prof_b.json
/tmp/ci_fdprof top -n 5 /tmp/ci_prof_a.json | grep -q 'JAC2'
/tmp/ci_fdprof diff /tmp/ci_prof_a.json /tmp/ci_prof_b.json
/tmp/ci_fdprof merge -o /tmp/ci_prof_m.json '/tmp/ci_prof_[ab].json'
grep -q '"runs": 2' /tmp/ci_prof_m.json
/tmp/ci_fdprof annotate /tmp/ci_prof_a.json testdata/jacobi2d.f | grep -q '!prof'
rm -f /tmp/ci_prof_a.json /tmp/ci_prof_b.json /tmp/ci_prof_m.json

# overlap smoke: the communication-overlap schedule must actually buy
# blocked time on the jacobi stencil. Profile one run with the blocking
# schedule and one with overlap, then gate on the profile diff: blocking
# -> overlap must be regression-free (exit 0), and the reversed diff
# must trip fdprof's regression exit — if it doesn't, overlap stopped
# paying and this gate is the alarm
go run ./cmd/fdrun -overlap=false -check=false \
	-profile /tmp/ci_prof_off.json testdata/jacobi2d.f
go run ./cmd/fdrun -overlap -check=false \
	-profile /tmp/ci_prof_on.json testdata/jacobi2d.f
/tmp/ci_fdprof diff /tmp/ci_prof_off.json /tmp/ci_prof_on.json
if /tmp/ci_fdprof diff /tmp/ci_prof_on.json /tmp/ci_prof_off.json; then
	echo "FAIL: blocking schedule profiles no worse than overlap; the overlap win is gone"
	exit 1
fi
rm -f /tmp/ci_fdprof /tmp/ci_prof_off.json /tmp/ci_prof_on.json

# daemon smoke: start fdd on a random port, compile+run jacobi over
# HTTP, verify the returned SPMD listing is byte-identical to fdc's
# output, check /healthz, and exercise one per-session 429
FDD_PORT=$((20000 + $$ % 20000))
FDD_BIN=/tmp/ci_fdd.$$
go build -o "$FDD_BIN" ./cmd/fdd
"$FDD_BIN" -addr "localhost:$FDD_PORT" -rate 0.001 -burst 2 >/tmp/ci_fdd.log 2>&1 &
FDD_PID=$!
trap 'kill $FDD_PID 2>/dev/null || true; rm -f "$FDD_BIN" /tmp/ci_fdd.log /tmp/ci_fdd_*' EXIT
for i in $(seq 1 50); do
	curl -sf "http://localhost:$FDD_PORT/healthz" >/dev/null 2>&1 && break
	sleep 0.1
done
curl -sf "http://localhost:$FDD_PORT/healthz" | grep -q '"ok":true'
python3 - "$FDD_PORT" <<'EOF'
import json, sys, urllib.request
port = sys.argv[1]
def post(path, body, expect):
    req = urllib.request.Request(f"http://localhost:{port}{path}",
                                 data=json.dumps(body).encode(),
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req) as r:
            assert r.status == expect, (r.status, expect)
            return json.load(r)
    except urllib.error.HTTPError as e:
        assert e.code == expect, (e.code, expect)
        return json.load(e)
src = open("testdata/jacobi2d.f").read()
c = post("/compile", {"session": "ci-compile", "source": src}, 200)
assert c["id"] and c["listing"], "compile response incomplete"
open("/tmp/ci_fdd_listing", "w").write(c["listing"])
r = post("/run", {"session": "ci-run", "id": c["id"]}, 200)
assert r["stats"]["time"] > 0, r
rp = post("/run?profile=true", {"session": "ci-run", "id": c["id"], "workload": "jacobi2d"}, 200)
pid = rp["profileId"]
assert len(pid) == 64, rp
with urllib.request.urlopen(f"http://localhost:{port}/profile/{pid}") as pr:
    art = json.load(pr)
assert art["schema"] == 1 and art["meta"]["program_hash"] == c["id"], art
with urllib.request.urlopen(f"http://localhost:{port}/profiles") as lr:
    assert any(e["id"] == pid for e in json.load(lr)["profiles"])
print("fdd profile round-trip ok: id", pid[:12])
e1 = post("/compile", {"session": "ci-greedy", "source": src}, 200)
e2 = post("/compile", {"session": "ci-greedy", "source": src}, 200)
e3 = post("/compile", {"session": "ci-greedy", "source": src}, 429)
assert e3["error"]["kind"] == "rate-limit", e3
print("fdd smoke ok: id", c["id"][:12])
EOF
go run ./cmd/fdc -report=false testdata/jacobi2d.f >/tmp/ci_fdd_fdc_listing
diff /tmp/ci_fdd_listing /tmp/ci_fdd_fdc_listing

# telemetry smoke: after the traffic above /metrics must expose
# non-zero compile and memory-tier cache-hit counters plus the HTTP
# layer's request counts, /readyz must be green, and a forced 429
# (ci-greedy's bucket is empty) must carry a Retry-After header
curl -sf "http://localhost:$FDD_PORT/metrics" >/tmp/ci_fdd_metrics
grep -q 'fdd_compiles_total{outcome="ok"} [1-9]' /tmp/ci_fdd_metrics
grep -q 'fdd_cache_hits_total{tier="memory"} [1-9]' /tmp/ci_fdd_metrics
grep -q 'fdd_http_requests_total{route="/compile",method="POST",status="200"} [1-9]' /tmp/ci_fdd_metrics
grep -q 'fdd_compile_seconds_count [1-9]' /tmp/ci_fdd_metrics
grep -q 'fdd_profiles_stored_total [1-9]' /tmp/ci_fdd_metrics
grep -q 'fdd_run_blocked_share_count [1-9]' /tmp/ci_fdd_metrics
curl -sf "http://localhost:$FDD_PORT/readyz" | grep -q '"ready":true'
curl -s -D /tmp/ci_fdd_429hdr -o /dev/null \
	-H 'Content-Type: application/json' -d '{"session":"ci-greedy","source":"x"}' \
	"http://localhost:$FDD_PORT/compile"
grep -q '429' /tmp/ci_fdd_429hdr
grep -qi '^retry-after: [0-9]' /tmp/ci_fdd_429hdr

kill $FDD_PID 2>/dev/null || true
trap - EXIT
rm -f "$FDD_BIN" /tmp/ci_fdd.log /tmp/ci_fdd_*

# large-P smoke: the three scaled P=256 workloads must complete on the
# discrete-event backend (the P=1024 pair is covered by the committed
# benchmark snapshots; one run each keeps this lane cheap)
go run ./cmd/fdbench -runs 1 -only jacobi_p256,dgefa_p256,dyndist_p256 -o /tmp/ci_p256.json
test -s /tmp/ci_p256.json
rm -f /tmp/ci_p256.json

# benchmark regression soft gate: compare a fresh run against the most
# recent committed snapshot. Wall time is machine-dependent, so a
# regression here warns instead of failing the gate.
LATEST_BENCH=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
if [ -n "$LATEST_BENCH" ]; then
	go run ./cmd/fdbench -runs 1 -o /tmp/ci_bench.json -against "$LATEST_BENCH" ||
		echo "WARNING: benchmark regression vs $LATEST_BENCH (soft gate, not failing CI)"
	rm -f /tmp/ci_bench.json
fi
