#!/bin/sh
# CI gate: build, vet, race-enabled tests (which exercise the parallel
# compile scheduler), a short fuzz smoke of the parser and compile
# pipeline, and the trace-overhead guard (the disabled-tracing fast path
# must stay cheap; compare the two sub-benchmarks by hand when touching
# the instrumentation).
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go test -race ./...
go test -run '^$' -fuzz FuzzParse -fuzztime 10s ./internal/parser
go test -run '^$' -fuzz FuzzCompile -fuzztime 10s .
go test -run '^$' -bench BenchmarkTraceOverhead -benchtime 20x .
