#!/bin/sh
# CI gate: build, vet, race-enabled tests, and the trace-overhead guard
# (the disabled-tracing fast path must stay cheap; compare the two
# sub-benchmarks by hand when touching the instrumentation).
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go test -race ./...
go test -run '^$' -bench BenchmarkTraceOverhead -benchtime 20x .
