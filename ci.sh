#!/bin/sh
# CI gate: build, vet, race-enabled tests (which exercise the parallel
# compile scheduler), a short fuzz smoke of the parser and compile
# pipeline, and the trace-overhead guard (the disabled-tracing fast path
# must stay cheap; compare the two sub-benchmarks by hand when touching
# the instrumentation).
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
# -timeout is the last-resort hang guard; the machine's own deadlock
# watchdog and deadline should fire long before it
go test -race -timeout 5m ./...
go test -run '^$' -fuzz FuzzParse -fuzztime 10s ./internal/parser
go test -run '^$' -fuzz FuzzCompile -fuzztime 10s .
go test -run '^$' -bench BenchmarkTraceOverhead -benchtime 20x .

# deadlock smoke: a deliberately mismatched SPMD program must terminate
# within the deadline with a non-zero exit and the structured deadlock
# report — never hang
if go run ./cmd/fdrun -spmd -deadline 10s testdata/deadlock.f >/tmp/ci_deadlock.out 2>&1; then
	echo "FAIL: mismatched SPMD program exited zero"
	cat /tmp/ci_deadlock.out
	exit 1
fi
grep -q "deadlock" /tmp/ci_deadlock.out
grep -q "MISMATCH" /tmp/ci_deadlock.out
rm -f /tmp/ci_deadlock.out

# report smoke: the self-contained HTML report must render and be
# non-trivial for the dgefa case study
go run ./cmd/fdreport -sweep 1,2,4 -o /tmp/ci_report.html testdata/dgefa.f
test -s /tmp/ci_report.html
grep -q 'id="heatmap"' /tmp/ci_report.html
grep -q '</html>' /tmp/ci_report.html
rm -f /tmp/ci_report.html

# benchmark regression soft gate: compare a fresh run against the most
# recent committed snapshot. Wall time is machine-dependent, so a
# regression here warns instead of failing the gate.
LATEST_BENCH=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
if [ -n "$LATEST_BENCH" ]; then
	go run ./cmd/fdbench -runs 1 -o /tmp/ci_bench.json -against "$LATEST_BENCH" ||
		echo "WARNING: benchmark regression vs $LATEST_BENCH (soft gate, not failing CI)"
	rm -f /tmp/ci_bench.json
fi
