#!/bin/sh
# CI gate: build, vet, race-enabled tests (which exercise the parallel
# compile scheduler), a short fuzz smoke of the parser and compile
# pipeline, and the trace-overhead guard (the disabled-tracing fast path
# must stay cheap; compare the two sub-benchmarks by hand when touching
# the instrumentation).
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go test -race ./...
go test -run '^$' -fuzz FuzzParse -fuzztime 10s ./internal/parser
go test -run '^$' -fuzz FuzzCompile -fuzztime 10s .
go test -run '^$' -bench BenchmarkTraceOverhead -benchtime 20x .

# report smoke: the self-contained HTML report must render and be
# non-trivial for the dgefa case study
go run ./cmd/fdreport -sweep 1,2,4 -o /tmp/ci_report.html testdata/dgefa.f
test -s /tmp/ci_report.html
grep -q 'id="heatmap"' /tmp/ci_report.html
grep -q '</html>' /tmp/ci_report.html
rm -f /tmp/ci_report.html

# benchmark regression soft gate: compare a fresh run against the most
# recent committed snapshot. Wall time is machine-dependent, so a
# regression here warns instead of failing the gate.
LATEST_BENCH=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
if [ -n "$LATEST_BENCH" ]; then
	go run ./cmd/fdbench -runs 1 -o /tmp/ci_bench.json -against "$LATEST_BENCH" ||
		echo "WARNING: benchmark regression vs $LATEST_BENCH (soft gate, not failing CI)"
	rm -f /tmp/ci_bench.json
fi
