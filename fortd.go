// Package fortd is an interprocedural Fortran D compiler and
// distributed-memory machine simulator, reproducing
//
//	Hall, Hiranandani, Kennedy, Tseng:
//	"Interprocedural Compilation of Fortran D for MIMD
//	Distributed-Memory Machines", Supercomputing '92.
//
// The compiler translates sequential Fortran 77 programs annotated with
// Fortran D data-placement directives (DECOMPOSITION, ALIGN,
// DISTRIBUTE) into SPMD node programs with explicit message passing.
// Interprocedural analyses — reaching decompositions, procedure
// cloning, delayed instantiation of the computation partition,
// communication and dynamic data decomposition, interprocedural RSD
// summaries, overlap calculation, and live-decomposition optimization —
// let it compile each procedure in a single pass while generating
// caller-level vectorized communication.
//
// Basic usage:
//
//	prog, err := fortd.Compile(src, fortd.DefaultOptions())
//	res, err := fortd.NewRunner(fortd.WithInit(init)).Run(prog)
//	fmt.Println(res.Stats)
//
// Runs are configured through a Runner built from functional options.
// Every entry point has a context-aware form — CompileContext,
// Runner.RunContext, Runner.RunReferenceContext, Runner.RunSPMDContext
// — whose cancellation stops the phase-3 compile pipeline at the next
// task boundary and aborts a simulated run through the machine's
// cooperative-abort channel; the plain forms are thin wrappers over
// context.Background(). To observe a run (or a compilation), attach a
// Trace:
//
//	tr := fortd.NewTrace()
//	r := fortd.NewRunner(fortd.WithTrace(tr), fortd.WithInit(init))
//	res, err := r.RunContext(ctx, prog)
//	tr.WriteText(os.Stdout)         // human-readable summary
//	tr.WriteChrome(f)               // chrome://tracing / Perfetto JSON
//
// For serving many compilations from one process — a compile daemon —
// see Service, which owns a shared SummaryCache (optionally disk-
// persisted via NewDiskSummaryCache), a bounded worker pool and
// per-session rate limits; cmd/fdd exposes it over HTTP/JSON.
package fortd

import (
	"context"
	"fmt"
	"time"

	"fortd/internal/ast"
	"fortd/internal/codegen"
	"fortd/internal/core"
	"fortd/internal/decomp"
	"fortd/internal/explain"
	"fortd/internal/livedecomp"
	"fortd/internal/machine"
	"fortd/internal/parser"
	"fortd/internal/spmd"
	"fortd/internal/summarycache"
	"fortd/internal/trace"
)

// Strategy selects the compilation strategy: the paper's
// interprocedural compilation or one of its two baselines.
type Strategy = codegen.Strategy

// Compilation strategies.
const (
	// Interprocedural is the paper's contribution: single-pass
	// reverse-topological compilation with delayed instantiation.
	Interprocedural = codegen.StrategyInterproc
	// RuntimeResolution resolves ownership and communication per
	// element reference at run time (Figure 3 baseline).
	RuntimeResolution = codegen.StrategyRuntime
	// Immediate performs compile-time analysis but instantiates
	// partitions and communication inside each procedure, without
	// crossing procedure boundaries (Figure 12 baseline).
	Immediate = codegen.StrategyImmediate
)

// RemapLevel is the dynamic data decomposition optimization ladder of
// Figure 16.
type RemapLevel = livedecomp.Level

// Remap optimization levels.
const (
	RemapNone  = livedecomp.OptNone
	RemapLive  = livedecomp.OptLive
	RemapHoist = livedecomp.OptHoist
	RemapKills = livedecomp.OptKills
)

// MachineConfig is the simulated machine's size and cost model.
type MachineConfig = machine.Config

// Backend selects the simulated machine's execution engine.
type Backend = machine.Backend

const (
	// BackendDES is the discrete-event core (the default): a
	// single-threaded virtual-time scheduler with pooled message
	// buffers and O(active) link state. It scales to P=1024 and beyond.
	BackendDES = machine.BackendDES
	// BackendGoroutine is the goroutine-per-processor reference
	// implementation with buffered channels as links. It produces
	// identical results but its O(P²) link state tops out around
	// dozens of processors.
	BackendGoroutine = machine.BackendGoroutine
)

// ParseBackend parses a backend name ("des" or "goroutine") as
// accepted by the fdrun/fdbench -backend flags.
func ParseBackend(s string) (Backend, error) { return machine.ParseBackend(s) }

// Trace collects structured events from a compilation and/or a
// simulated run: compiler phase spans and counters, one event per
// message/broadcast-step/remap with source attribution, and
// per-processor virtual-time totals. Create with NewTrace, attach via
// Options.Trace or WithTrace, then export with WriteText (human
// summary) or WriteChrome (trace_event JSON). A nil *Trace disables
// tracing at near-zero cost.
//
// Concurrency: a Trace is safe for concurrent emission — the parallel
// compile pipeline and all simulated processors of one run feed one
// Trace. Do NOT share one Trace across concurrent compilations or
// runs, though: their events interleave into one stream and the
// exporters cannot split them apart again. Per-request observability
// wants one Trace per request (the compile daemon does exactly that).
type Trace = trace.Tracer

// NewTrace returns an enabled trace sink.
func NewTrace() *Trace { return trace.New() }

// Explain collects structured optimization remarks from every compiler
// pass: why a message was (or was not) vectorized and at which loop
// level, which remaps were eliminated by which Figure 16 rule, which
// procedures were cloned or left to run-time resolution, per-array
// overlap widths, and every rejection (aliasing, un-buildable
// DISTRIBUTE). Create with NewExplain, attach via Options.Explain or
// WithExplain, then export with WriteText (grouped by procedure),
// WriteJSON (one JSON object per line) or WriteAnnotated (source
// listing with interleaved remarks). A nil *Explain disables remark
// collection at zero cost.
//
// Concurrency: an Explain is safe for concurrent Add calls (the
// parallel compile pipeline relies on it), but like a Trace it is a
// single stream — attach one collector per compilation or run, not one
// per process.
type Explain = explain.Collector

// Remark is a single optimization remark.
type Remark = explain.Remark

// NewExplain returns an enabled remark collector.
func NewExplain() *Explain { return explain.New() }

// Stats reports a simulated run's communication and time statistics.
// Time is the parallel execution time (the maximum processor clock) in
// simulated microseconds.
type Stats machine.Stats

// String renders the headline numbers on one line.
func (s Stats) String() string { return machine.Stats(s).String() }

// DefaultMachine returns an iPSC/860-like cost model with p processors.
func DefaultMachine(p int) MachineConfig { return machine.DefaultConfig(p) }

// FaultPlan describes seeded, deterministic fault injection for a
// simulated run: per-message delivery delays, straggler processors,
// and bounded message duplication. The same seed reproduces the same
// faults. Attach with WithFaults or RunOptions.Faults.
type FaultPlan = machine.FaultPlan

// AbortError reports a processor unblocked by a machine-wide
// cooperative abort: when any processor fails, every peer blocked in a
// communication primitive returns one of these instead of hanging.
// Unwrap returns the originating cause.
type AbortError = machine.AbortError

// DeadlockError is the watchdog's structured report: every live
// processor blocked on a link with no progress (or the run exceeding
// its wall-clock deadline), with per-processor attribution.
type DeadlockError = machine.DeadlockError

// CongestionError reports a send into a full link buffer with no
// receiver draining it, naming the congested (src, dst) pair.
type CongestionError = machine.CongestionError

// Options configures compilation.
type Options struct {
	// P is the number of processors to compile for (0: read the main
	// program's n$proc PARAMETER, defaulting to 4).
	P int
	// Strategy selects interprocedural compilation or a baseline.
	Strategy Strategy
	// RemapOpt sets the dynamic-decomposition optimization level.
	RemapOpt RemapLevel
	// CloneLimit bounds procedure cloning; 0 disables cloning and
	// forces run-time resolution on decomposition conflicts.
	CloneLimit int
	// Trace, when non-nil, collects per-phase compile spans and code
	// generation counters.
	Trace *Trace
	// Explain, when non-nil, collects optimization remarks from every
	// compiler pass.
	Explain *Explain
	// Jobs is the number of concurrent workers for the per-procedure
	// code-generation phase, scheduled in topological waves over the
	// call graph (0 or 1: sequential). Output is byte-identical
	// regardless of Jobs.
	Jobs int
	// Cache, when non-nil, memoizes per-procedure compilation results
	// across Compile calls, keyed by a content hash of each procedure's
	// source and the interprocedural inputs it consumed. Re-compiling a
	// program after editing one procedure re-analyzes only that
	// procedure and the callers whose consumed summaries changed (the
	// paper's §8 recompilation analysis, run as a cache).
	Cache *SummaryCache
	// CacheDir, when non-empty, attaches a disk-persisted summary cache
	// rooted at this directory: entries written by earlier processes are
	// served warm (see NewDiskSummaryCache). Mutually exclusive with
	// Cache — to share one cache across compilations and keep the disk
	// tier, create it once with NewDiskSummaryCache and pass it as
	// Cache.
	CacheDir string
	// Deadline bounds the compilation's wall-clock time (0: none).
	// CompileContext derives a timeout context from it; a compilation
	// that exceeds it returns context.DeadlineExceeded.
	Deadline time.Duration
	// Overlap enables the computation/communication overlap schedule:
	// blocking halo exchanges are split into post-early/wait-late pairs
	// with the interior of the following loop hoisted between them, and
	// pipelined broadcasts are posted above independent predecessors.
	// The generated listing changes (postrecv/waitrecv statements and
	// peeled boundary loops appear) but the computed values do not.
	// DefaultOptions enables it.
	Overlap bool
}

// WithOverlap returns a copy of o with the overlap schedule switched
// on or off. It exists for call-site chaining:
//
//	fortd.DefaultOptions().WithOverlap(false)
func (o Options) WithOverlap(on bool) Options {
	o.Overlap = on
	return o
}

// DefaultOptions enables the full interprocedural pipeline.
func DefaultOptions() Options {
	d := core.DefaultOptions()
	return Options{Strategy: d.Strategy, RemapOpt: d.RemapOpt, CloneLimit: d.CloneLimit, Overlap: d.Overlap}
}

// Validate reports the first invalid field. Compile calls it, so
// malformed options fail loudly instead of being silently defaulted.
func (o Options) Validate() error {
	if o.P < 0 {
		return fmt.Errorf("fortd: Options.P = %d, must be >= 0 (0 reads n$proc)", o.P)
	}
	switch o.Strategy {
	case Interprocedural, RuntimeResolution, Immediate:
	default:
		return fmt.Errorf("fortd: unknown Options.Strategy %d", o.Strategy)
	}
	switch o.RemapOpt {
	case RemapNone, RemapLive, RemapHoist, RemapKills:
	default:
		return fmt.Errorf("fortd: unknown Options.RemapOpt %d", o.RemapOpt)
	}
	if o.CloneLimit < 0 {
		return fmt.Errorf("fortd: Options.CloneLimit = %d, must be >= 0 (0 disables cloning)", o.CloneLimit)
	}
	if o.Jobs < 0 {
		return fmt.Errorf("fortd: Options.Jobs = %d, must be >= 0 (0 or 1 compiles sequentially)", o.Jobs)
	}
	if o.Deadline < 0 {
		return fmt.Errorf("fortd: Options.Deadline = %v, must be >= 0 (0 disables the deadline)", o.Deadline)
	}
	if o.CacheDir != "" && o.Cache != nil {
		return fmt.Errorf("fortd: Options.CacheDir and Options.Cache are mutually exclusive; pass NewDiskSummaryCache(dir) as Cache to share a disk-backed cache")
	}
	return nil
}

// SummaryCache is a content-hashed cache of per-procedure compilation
// results, shared across Compile calls via Options.Cache. See
// Options.Cache for the invalidation contract.
//
// Concurrency: a SummaryCache is safe for concurrent use. Any number of
// goroutines may compile through one shared cache simultaneously (the
// compile daemon does exactly that); entries are immutable once stored
// and cloned before being spliced into a program. With a disk tier
// (NewDiskSummaryCache), separate processes may also share the same
// directory without coordination.
type SummaryCache = summarycache.Cache

// CacheStats reports a summary cache's hit/miss counters and size.
type CacheStats = summarycache.Stats

// NewSummaryCache returns an empty in-memory summary cache.
func NewSummaryCache() *SummaryCache { return summarycache.New() }

// NewDiskSummaryCache returns a summary cache backed by entry files
// under dir (created as needed): entries stored by earlier runs or by
// other processes sharing the directory are served as disk hits, with
// no phase-3 re-analysis, and fresh entries are written through. The
// content-hash keys already cover every compilation input, so the §8
// recompilation predicate doubles as the cross-process invalidation
// contract — an edited procedure hashes to a new key, and stale
// entries are simply never probed again.
func NewDiskSummaryCache(dir string) (*SummaryCache, error) {
	return summarycache.Open(dir)
}

// Report summarizes what code generation did: messages and ownership
// guards inserted, loop bounds reduced to local iterations, dynamic
// remaps placed, and procedures cloned.
type Report core.Report

// String renders the counters on one line, naming each procedure left
// to run-time resolution.
func (r Report) String() string { return core.Report(r).String() }

// Program is a compiled Fortran D program.
//
// Concurrency: a Program is immutable after Compile returns and safe
// for concurrent use — any number of goroutines may inspect it and run
// it (each Runner.Run builds a fresh simulated machine).
type Program struct {
	c *core.Compilation
}

// Compile compiles Fortran D source text. It is CompileContext with a
// background context.
func Compile(src string, opts Options) (*Program, error) {
	return CompileContext(context.Background(), src, opts)
}

// CompileContext compiles Fortran D source text under a cancellation
// context: when ctx is cancelled (a dropped client, a server shutting
// down) the phase-3 compile pipeline stops at the next procedure-task
// boundary and CompileContext returns ctx.Err(). A cancelled
// compilation never stores partial results into Options.Cache, so a
// shared cache stays byte-for-byte reproducible. Options.Deadline, when
// set, bounds the compilation's wall-clock time through the same
// mechanism.
func CompileContext(ctx context.Context, src string, opts Options) (*Program, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cache := opts.Cache
	if opts.CacheDir != "" {
		var err error
		if cache, err = summarycache.Open(opts.CacheDir); err != nil {
			return nil, err
		}
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	c, err := core.CompileContext(ctx, src, core.Options{
		P: opts.P, Strategy: opts.Strategy,
		RemapOpt: opts.RemapOpt, CloneLimit: opts.CloneLimit,
		Trace: opts.Trace, Explain: opts.Explain,
		Jobs: opts.Jobs, Cache: cache, Overlap: opts.Overlap,
	})
	if err != nil {
		return nil, err
	}
	return &Program{c: c}, nil
}

// P returns the processor count the program was compiled for.
func (p *Program) P() int { return p.c.P }

// Listing renders the generated SPMD program as source text.
func (p *Program) Listing() string { return ast.Print(p.c.Program) }

// SourceListing renders the original input program.
func (p *Program) SourceListing() string { return ast.Print(p.c.Source) }

// Report returns code generation statistics.
func (p *Program) Report() Report { return Report(p.c.Report) }

// Clones maps generated procedure clones to their originals.
func (p *Program) Clones() map[string]string { return p.c.Reach.ClonedFrom }

// CacheHits returns the sorted procedures served from Options.Cache
// during this compilation (nil when no cache was attached).
func (p *Program) CacheHits() []string { return p.c.CacheHits }

// CacheMisses returns the sorted procedures compiled fresh (and stored
// into Options.Cache) during this compilation (nil without a cache).
func (p *Program) CacheMisses() []string { return p.c.CacheMisses }

// OverlapExtent reports the overlap region estimated for (procedure,
// array) in the given dimension with the given local block size,
// e.g. (1, 30) for the paper's REAL X(30).
func (p *Program) OverlapExtent(proc, array string, dim, blockSize int) (lo, hi int) {
	return p.c.Overlaps.Extents(proc, array, dim, blockSize)
}

// Result is the outcome of a simulated run.
type Result struct {
	// Stats holds simulated time, message and word counts.
	Stats Stats
	// Arrays holds the main program's arrays, assembled from the
	// owning processors.
	Arrays map[string][]float64
}

// Runner executes programs on the simulated machine. The zero value
// (or NewRunner with no options) runs with the default machine, no
// initial data, and tracing disabled; configure it with functional
// options. A Runner is stateless across calls and may be reused.
type Runner struct {
	machine     MachineConfig
	init        map[string][]float64
	initScalars map[string]float64
	trace       *Trace
	explain     *Explain
	deadline    time.Duration
	faults      *FaultPlan
}

// RunOption configures a Runner.
type RunOption func(*Runner)

// WithMachine overrides the simulated machine's size and cost model.
// The zero Config means "DefaultMachine sized to the program".
func WithMachine(cfg MachineConfig) RunOption {
	return func(r *Runner) { r.machine = cfg }
}

// WithInit seeds main-program arrays (row-major global order).
func WithInit(arrays map[string][]float64) RunOption {
	return func(r *Runner) { r.init = arrays }
}

// WithInitScalars seeds main-program scalars.
func WithInitScalars(scalars map[string]float64) RunOption {
	return func(r *Runner) { r.initScalars = scalars }
}

// WithTrace attaches a trace sink: every send/recv/broadcast/remap of
// the run is recorded with its virtual time and source attribution,
// plus per-processor end-of-run totals. nil disables tracing.
func WithTrace(t *Trace) RunOption {
	return func(r *Runner) { r.trace = t }
}

// WithExplain attaches a remark collector to runs executed through
// this Runner; RunSPMD records which DISTRIBUTE directives produced
// distribution descriptors. (Compile-time remarks attach through
// Options.Explain.) nil disables collection.
func WithExplain(ex *Explain) RunOption {
	return func(r *Runner) { r.explain = ex }
}

// WithBackend selects the simulated machine's execution engine
// (default BackendDES). Both backends produce identical statistics and
// trace exports; the discrete-event engine is the one that scales.
// A full WithMachine config takes precedence (set its Backend field).
func WithBackend(b Backend) RunOption {
	return func(r *Runner) { r.machine.Backend = b }
}

// WithDeadline bounds a run's wall-clock time: when it expires the
// machine aborts and the run returns a *DeadlockError (Deadline: true)
// reporting where every processor was blocked. 0 means no deadline
// (the deadlock watchdog still catches true deadlocks).
func WithDeadline(d time.Duration) RunOption {
	return func(r *Runner) { r.deadline = d }
}

// WithFaults attaches a seeded fault-injection plan to runs executed
// through this Runner. nil disables injection.
func WithFaults(fp *FaultPlan) RunOption {
	return func(r *Runner) { r.faults = fp }
}

// NewRunner builds a Runner from functional options.
func NewRunner(opts ...RunOption) *Runner {
	r := &Runner{}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Run executes the compiled SPMD program on the simulated machine. It
// is RunContext with a background context.
func (r *Runner) Run(p *Program) (*Result, error) {
	return r.RunContext(context.Background(), p)
}

// RunContext executes the compiled SPMD program on the simulated
// machine under a cancellation context: when ctx is cancelled mid-run
// the machine's cooperative abort unblocks every simulated processor
// and RunContext returns ctx.Err(). The machine's own failure modes —
// deadlock watchdog, WithDeadline, congestion — are unchanged.
func (r *Runner) RunContext(ctx context.Context, p *Program) (*Result, error) {
	cfg := r.machine
	if cfg.P == 0 {
		// default the cost model to the compiled processor count, but
		// keep an explicitly selected backend (WithBackend)
		be := cfg.Backend
		cfg = machine.DefaultConfig(p.c.P)
		cfg.Backend = be
	}
	rr, err := spmd.RunContext(ctx, p.c.Program, cfg, spmd.Options{
		Dists: p.c.MainDists, Init: r.init, InitScalars: r.initScalars,
		Trace: r.trace, Faults: r.faults, Deadline: r.deadline,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Stats: Stats(rr.Stats), Arrays: rr.Arrays}, nil
}

// RunReference executes the original sequential program (one
// processor, no communication) and returns the reference result. It is
// RunReferenceContext with a background context.
func (r *Runner) RunReference(p *Program) (*Result, error) {
	return r.RunReferenceContext(context.Background(), p)
}

// RunReferenceContext is RunReference under a cancellation context
// (see RunContext).
func (r *Runner) RunReferenceContext(ctx context.Context, p *Program) (*Result, error) {
	rr, err := spmd.RunSequentialContext(ctx, p.c.Source, spmd.Options{
		Init: r.init, InitScalars: r.initScalars, Trace: r.trace,
		Deadline: r.deadline,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Stats: Stats(rr.Stats), Arrays: rr.Arrays}, nil
}

// RunSPMD executes hand-written SPMD node-program text directly on the
// simulated machine, without compiling it — the way the paper's
// hand-coded comparison points run. DISTRIBUTE directives in the main
// program supply the distribution descriptors used for allgather/remap
// semantics and result assembly; they generate no code. A DISTRIBUTE
// whose descriptor cannot be built (non-constant dimension bounds,
// rank mismatch, bad machine size) is a compile-time error.
// nproc <= 0 reads the main program's n$proc PARAMETER (default 4).
// It is RunSPMDContext with a background context.
func (r *Runner) RunSPMD(src string, nproc int) (*Result, error) {
	return r.RunSPMDContext(context.Background(), src, nproc)
}

// RunSPMDContext is RunSPMD under a cancellation context (see
// RunContext).
func (r *Runner) RunSPMDContext(ctx context.Context, src string, nproc int) (*Result, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	main := prog.Main()
	if main == nil {
		return nil, fmt.Errorf("fortd: SPMD text has no main program")
	}
	if nproc <= 0 {
		nproc = 4
		if s := main.Symbols.Lookup("n$proc"); s != nil && s.Kind == ast.SymConstant {
			nproc = s.ConstValue
		}
	}
	dists := map[string]*decomp.Dist{}
	env := ast.MapEnv{}
	for _, s := range main.Symbols.Symbols() {
		if s.Kind == ast.SymConstant {
			env[s.Name] = s.ConstValue
		}
	}
	// WalkStmts keeps visiting siblings after a false return, so the
	// first failure is latched in werr and checked on every visit.
	var werr error
	ast.WalkStmts(main.Body, func(s ast.Stmt) bool {
		if werr != nil {
			return false
		}
		d, ok := s.(*ast.Distribute)
		if !ok {
			return true
		}
		sym := main.Symbols.Lookup(d.Target)
		if sym == nil || sym.Kind != ast.SymArray {
			werr = fmt.Errorf("fortd: DISTRIBUTE %s: not a declared array", d.Target)
			return false
		}
		sizes := make([]int, len(sym.Dims))
		for i, dim := range sym.Dims {
			lo, okLo := ast.EvalInt(dim.Lo, env)
			hi, okHi := ast.EvalInt(dim.Hi, env)
			if !okLo || !okHi {
				werr = fmt.Errorf("fortd: DISTRIBUTE %s: dimension %d bounds are not compile-time constants", d.Target, i+1)
				return false
			}
			sizes[i] = hi - lo + 1
		}
		dist, err := decomp.NewDist(decomp.NewDecomp(d.Specs...), sizes, nproc)
		if err != nil {
			werr = fmt.Errorf("fortd: DISTRIBUTE %s: %v", d.Target, err)
			return false
		}
		dists[d.Target] = dist
		if ex := r.explain; ex.Enabled() {
			ex.Add(Remark{
				Kind: explain.Note, Pass: "spmd", Proc: main.Name,
				Line: d.Pos().Line, Name: "distribute",
				Msg: fmt.Sprintf("DISTRIBUTE %s: built descriptor %s", d.Target, dist),
			})
		}
		return true
	})
	if werr != nil {
		return nil, werr
	}
	cfg := r.machine
	if cfg.P == 0 {
		be := cfg.Backend
		cfg = machine.DefaultConfig(nproc)
		cfg.Backend = be
	}
	rr, err := spmd.RunContext(ctx, prog, cfg, spmd.Options{
		Dists: dists, Init: r.init, InitScalars: r.initScalars,
		Trace: r.trace, Faults: r.faults, Deadline: r.deadline,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Stats: Stats(rr.Stats), Arrays: rr.Arrays}, nil
}

// RunOptions configures a simulated execution (legacy form; the
// Runner's functional options are the primary API).
//
// Deprecated: build a Runner with functional options instead —
// NewRunner(WithInit(...), WithMachine(...), ...) — and call
// Runner.Run/RunContext. RunOptions predates the Runner and cannot
// express newer per-run settings (explain collection, context
// cancellation).
type RunOptions struct {
	// Init seeds main-program arrays (row-major global order).
	Init map[string][]float64
	// InitScalars seeds main-program scalars.
	InitScalars map[string]float64
	// Machine overrides the cost model (zero value: DefaultMachine(P)).
	Machine MachineConfig
	// Trace, when non-nil, records every message of the run.
	Trace *Trace
	// Deadline bounds the run's wall-clock time (0: no deadline).
	Deadline time.Duration
	// Faults, when non-nil, injects seeded deterministic faults.
	Faults *FaultPlan
}

func (o RunOptions) runner() *Runner {
	return NewRunner(
		WithMachine(o.Machine),
		WithInit(o.Init),
		WithInitScalars(o.InitScalars),
		WithTrace(o.Trace),
		WithDeadline(o.Deadline),
		WithFaults(o.Faults),
	)
}

// Run executes the compiled SPMD program on the simulated machine. It
// is shorthand for NewRunner(...).Run(p).
//
// Deprecated: use NewRunner(WithInit(...), ...).Run(p) — or
// Runner.RunContext for cancellation.
func (p *Program) Run(opts RunOptions) (*Result, error) {
	return opts.runner().Run(p)
}

// RunReference executes the original sequential program (one
// processor, no communication) and returns the reference result. It is
// shorthand for NewRunner(...).RunReference(p).
//
// Deprecated: use NewRunner(WithInit(...), ...).RunReference(p) — or
// Runner.RunReferenceContext for cancellation.
func (p *Program) RunReference(opts RunOptions) (*Result, error) {
	return opts.runner().RunReference(p)
}

// RunSPMD executes hand-written SPMD node-program text on a p-processor
// simulated machine. It is shorthand for NewRunner(...).RunSPMD(src, p).
//
// Deprecated: use NewRunner(WithInit(...), ...).RunSPMD(src, p) — or
// Runner.RunSPMDContext for cancellation.
func RunSPMD(src string, p int, opts RunOptions) (*Result, error) {
	return opts.runner().RunSPMD(src, p)
}

// DataflowProblem is one row of the paper's Table 1: an
// interprocedural data-flow problem, its propagation direction over
// the call graph, the compilation phase that solves it, and the
// package implementing it here.
type DataflowProblem = core.DataflowProblem

// Table1 returns the paper's Table 1 as implemented by this compiler.
func Table1() []DataflowProblem { return core.Table1() }
