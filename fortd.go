// Package fortd is an interprocedural Fortran D compiler and
// distributed-memory machine simulator, reproducing
//
//	Hall, Hiranandani, Kennedy, Tseng:
//	"Interprocedural Compilation of Fortran D for MIMD
//	Distributed-Memory Machines", Supercomputing '92.
//
// The compiler translates sequential Fortran 77 programs annotated with
// Fortran D data-placement directives (DECOMPOSITION, ALIGN,
// DISTRIBUTE) into SPMD node programs with explicit message passing.
// Interprocedural analyses — reaching decompositions, procedure
// cloning, delayed instantiation of the computation partition,
// communication and dynamic data decomposition, interprocedural RSD
// summaries, overlap calculation, and live-decomposition optimization —
// let it compile each procedure in a single pass while generating
// caller-level vectorized communication.
//
// Basic usage:
//
//	prog, err := fortd.Compile(src, fortd.DefaultOptions())
//	res, err := prog.Run(fortd.RunOptions{Init: map[string][]float64{"X": x0}})
//	fmt.Println(res.Stats)
package fortd

import (
	"fmt"

	"fortd/internal/ast"
	"fortd/internal/codegen"
	"fortd/internal/core"
	"fortd/internal/decomp"
	"fortd/internal/livedecomp"
	"fortd/internal/machine"
	"fortd/internal/parser"
	"fortd/internal/spmd"
)

// Strategy selects the compilation strategy: the paper's
// interprocedural compilation or one of its two baselines.
type Strategy = codegen.Strategy

// Compilation strategies.
const (
	// Interprocedural is the paper's contribution: single-pass
	// reverse-topological compilation with delayed instantiation.
	Interprocedural = codegen.StrategyInterproc
	// RuntimeResolution resolves ownership and communication per
	// element reference at run time (Figure 3 baseline).
	RuntimeResolution = codegen.StrategyRuntime
	// Immediate performs compile-time analysis but instantiates
	// partitions and communication inside each procedure, without
	// crossing procedure boundaries (Figure 12 baseline).
	Immediate = codegen.StrategyImmediate
)

// RemapLevel is the dynamic data decomposition optimization ladder of
// Figure 16.
type RemapLevel = livedecomp.Level

// Remap optimization levels.
const (
	RemapNone  = livedecomp.OptNone
	RemapLive  = livedecomp.OptLive
	RemapHoist = livedecomp.OptHoist
	RemapKills = livedecomp.OptKills
)

// MachineConfig is the simulated machine's size and cost model.
type MachineConfig = machine.Config

// Stats reports a simulated run's communication and time statistics.
type Stats = machine.Stats

// DefaultMachine returns an iPSC/860-like cost model with p processors.
func DefaultMachine(p int) MachineConfig { return machine.DefaultConfig(p) }

// Options configures compilation.
type Options struct {
	// P is the number of processors to compile for (0: read the main
	// program's n$proc PARAMETER, defaulting to 4).
	P int
	// Strategy selects interprocedural compilation or a baseline.
	Strategy Strategy
	// RemapOpt sets the dynamic-decomposition optimization level.
	RemapOpt RemapLevel
	// CloneLimit bounds procedure cloning; 0 disables cloning and
	// forces run-time resolution on decomposition conflicts.
	CloneLimit int
}

// DefaultOptions enables the full interprocedural pipeline.
func DefaultOptions() Options {
	d := core.DefaultOptions()
	return Options{Strategy: d.Strategy, RemapOpt: d.RemapOpt, CloneLimit: d.CloneLimit}
}

// Report summarizes what code generation did.
type Report = core.Report

// Program is a compiled Fortran D program.
type Program struct {
	c *core.Compilation
}

// Compile compiles Fortran D source text.
func Compile(src string, opts Options) (*Program, error) {
	c, err := core.Compile(src, core.Options{
		P: opts.P, Strategy: opts.Strategy,
		RemapOpt: opts.RemapOpt, CloneLimit: opts.CloneLimit,
	})
	if err != nil {
		return nil, err
	}
	return &Program{c: c}, nil
}

// P returns the processor count the program was compiled for.
func (p *Program) P() int { return p.c.P }

// Listing renders the generated SPMD program as source text.
func (p *Program) Listing() string { return ast.Print(p.c.Program) }

// SourceListing renders the original input program.
func (p *Program) SourceListing() string { return ast.Print(p.c.Source) }

// Report returns code generation statistics.
func (p *Program) Report() Report { return p.c.Report }

// Clones maps generated procedure clones to their originals.
func (p *Program) Clones() map[string]string { return p.c.Reach.ClonedFrom }

// OverlapExtent reports the overlap region estimated for (procedure,
// array) in the given dimension with the given local block size,
// e.g. (1, 30) for the paper's REAL X(30).
func (p *Program) OverlapExtent(proc, array string, dim, blockSize int) (lo, hi int) {
	return p.c.Overlaps.Extents(proc, array, dim, blockSize)
}

// RunOptions configures a simulated execution.
type RunOptions struct {
	// Init seeds main-program arrays (row-major global order).
	Init map[string][]float64
	// InitScalars seeds main-program scalars.
	InitScalars map[string]float64
	// Machine overrides the cost model (zero value: DefaultMachine(P)).
	Machine MachineConfig
}

// Result is the outcome of a simulated run.
type Result struct {
	// Stats holds simulated time, message and word counts.
	Stats Stats
	// Arrays holds the main program's arrays, assembled from the
	// owning processors.
	Arrays map[string][]float64
}

// Run executes the compiled SPMD program on the simulated machine.
func (p *Program) Run(opts RunOptions) (*Result, error) {
	cfg := opts.Machine
	if cfg.P == 0 {
		cfg = machine.DefaultConfig(p.c.P)
	}
	rr, err := spmd.Run(p.c.Program, cfg, spmd.Options{
		Dists: p.c.MainDists, Init: opts.Init, InitScalars: opts.InitScalars,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Stats: rr.Stats, Arrays: rr.Arrays}, nil
}

// DataflowProblem is one row of the paper's Table 1: an
// interprocedural data-flow problem, its propagation direction over
// the call graph, the compilation phase that solves it, and the
// package implementing it here.
type DataflowProblem = core.DataflowProblem

// Table1 returns the paper's Table 1 as implemented by this compiler.
func Table1() []DataflowProblem { return core.Table1() }

// RunSPMD executes hand-written SPMD node-program text directly on the
// simulated machine, without compiling it — the way the paper's
// hand-coded comparison points run. DISTRIBUTE directives in the main
// program supply the distribution descriptors used for allgather/remap
// semantics and result assembly; they generate no code.
func RunSPMD(src string, p int, opts RunOptions) (*Result, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	main := prog.Main()
	if main == nil {
		return nil, fmt.Errorf("fortd: SPMD text has no main program")
	}
	dists := map[string]*decomp.Dist{}
	env := ast.MapEnv{}
	for _, s := range main.Symbols.Symbols() {
		if s.Kind == ast.SymConstant {
			env[s.Name] = s.ConstValue
		}
	}
	ast.WalkStmts(main.Body, func(s ast.Stmt) bool {
		d, ok := s.(*ast.Distribute)
		if !ok {
			return true
		}
		sym := main.Symbols.Lookup(d.Target)
		if sym == nil || sym.Kind != ast.SymArray {
			return true
		}
		sizes := make([]int, len(sym.Dims))
		for i, dim := range sym.Dims {
			lo, okLo := ast.EvalInt(dim.Lo, env)
			hi, okHi := ast.EvalInt(dim.Hi, env)
			if !okLo || !okHi {
				return true
			}
			sizes[i] = hi - lo + 1
		}
		if dist, err := decomp.NewDist(decomp.NewDecomp(d.Specs...), sizes, p); err == nil {
			dists[d.Target] = dist
		}
		return true
	})
	cfg := opts.Machine
	if cfg.P == 0 {
		cfg = machine.DefaultConfig(p)
	}
	rr, err := spmd.Run(prog, cfg, spmd.Options{
		Dists: dists, Init: opts.Init, InitScalars: opts.InitScalars,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Stats: rr.Stats, Arrays: rr.Arrays}, nil
}

// RunReference executes the original sequential program (one
// processor, no communication) and returns the reference result.
func (p *Program) RunReference(opts RunOptions) (*Result, error) {
	rr, err := spmd.RunSequential(p.c.Source, spmd.Options{
		Init: opts.Init, InitScalars: opts.InitScalars,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Stats: rr.Stats, Arrays: rr.Arrays}, nil
}
