package spmd

import (
	"math"
	"testing"

	"fortd/internal/ast"
	"fortd/internal/decomp"
	"fortd/internal/machine"
	"fortd/internal/parser"
)

func parseProg(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSequentialArithmetic(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(10)
      do i = 1,10
        X(i) = i * 2 + 1
      enddo
      s = 0.0
      do i = 1,10
        s = s + X(i)
      enddo
      X(1) = s
      END
`)
	res, err := RunSequential(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// sum of 2i+1 for i=1..10 = 110 + 10 = 120
	if res.Arrays["X"][0] != 120 {
		t.Errorf("X(1) = %v, want 120", res.Arrays["X"][0])
	}
}

func TestCallByReference(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL A(5)
      call fill(A, 3)
      END
      SUBROUTINE fill(X, v)
      REAL X(5)
      do i = 1,5
        X(i) = v
      enddo
      END
`)
	res, err := RunSequential(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Arrays["A"] {
		if v != 3 {
			t.Fatalf("A[%d] = %v", i, v)
		}
	}
}

func TestScalarByReference(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL A(2)
      s = 0.0
      call bump(s)
      call bump(s)
      A(1) = s
      END
      SUBROUTINE bump(x)
      x = x + 1.0
      END
`)
	res, err := RunSequential(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrays["A"][0] != 2 {
		t.Errorf("s = %v, want 2 (scalar passed by reference)", res.Arrays["A"][0])
	}
}

func TestExpressionArgByValue(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL A(1)
      call f(A, 2+3)
      END
      SUBROUTINE f(X, v)
      REAL X(1)
      X(1) = v
      END
`)
	res, err := RunSequential(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrays["A"][0] != 5 {
		t.Errorf("A(1) = %v", res.Arrays["A"][0])
	}
}

func TestIntrinsics(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL A(8)
      A(1) = MOD(17, 5)
      A(2) = MIN(3, 7)
      A(3) = MAX(3, 7)
      A(4) = ABS(-4.5)
      A(5) = SQRT(16.0)
      A(6) = first$(2, 10, 4)
      A(7) = 7 / 2
      A(8) = 7.0 / 2.0
      END
`)
	res, err := RunSequential(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 7, 4.5, 4, 10, 3, 3.5}
	for i, w := range want {
		if math.Abs(res.Arrays["A"][i]-w) > 1e-12 {
			t.Errorf("A(%d) = %v, want %v", i+1, res.Arrays["A"][i], w)
		}
	}
}

func TestFirstDollarSemantics(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL A(3)
      A(1) = first$(3, 1, 4)
      A(2) = first$(3, 4, 4)
      A(3) = first$(1, 10, 4)
      END
`)
	res, err := RunSequential(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// smallest x >= min with x ≡ anchor (mod step)
	want := []float64{3, 7, 13}
	for i, w := range want {
		if res.Arrays["A"][i] != w {
			t.Errorf("A(%d) = %v, want %v", i+1, res.Arrays["A"][i], w)
		}
	}
}

func TestOutOfBoundsReported(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL A(5)
      A(9) = 1.0
      END
`)
	if _, err := RunSequential(prog, Options{}); err == nil {
		t.Error("out-of-bounds store must error")
	}
}

func TestGuardedSPMDExecution(t *testing.T) {
	// hand-written SPMD program: each processor writes its own block
	prog := parseProg(t, `
      PROGRAM P
      REAL X(8)
      my$p = myproc()
      do i = my$p * 2 + 1, my$p * 2 + 2
        X(i) = my$p
      enddo
      END
`)
	dist, _ := decomp.NewDist(decomp.NewDecomp(decomp.Block), []int{8}, 4)
	res, err := Run(prog, machine.DefaultConfig(4), Options{
		Dists: map[string]*decomp.Dist{"X": dist},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1, 1, 2, 2, 3, 3}
	for i, w := range want {
		if res.Arrays["X"][i] != w {
			t.Errorf("X[%d] = %v, want %v", i, res.Arrays["X"][i], w)
		}
	}
}

func TestSendRecvStatements(t *testing.T) {
	// proc 0 computes X(1:4), sends to proc 1 which copies to Y
	prog := parseProg(t, `
      PROGRAM P
      REAL X(4), Y(4)
      my$p = myproc()
      if (my$p .EQ. 0) then
        do i = 1,4
          X(i) = i * 10
        enddo
        send X(1:4) to 1
      endif
      if (my$p .EQ. 1) then
        recv X(1:4) from 0
        do i = 1,4
          Y(i) = X(i)
        enddo
      endif
      END
`)
	dist, _ := decomp.NewDist(decomp.Replicated, []int{4}, 2)
	yDist, _ := decomp.NewDist(decomp.NewDecomp(decomp.Block), []int{4}, 2)
	res, err := Run(prog, machine.DefaultConfig(2), Options{
		Dists: map[string]*decomp.Dist{"X": dist, "Y": yDist},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Y is block-distributed: elements 3,4 owned by proc 1 which wrote
	// them from the received X
	if res.Arrays["Y"][2] != 30 || res.Arrays["Y"][3] != 40 {
		t.Errorf("Y = %v", res.Arrays["Y"])
	}
	if res.Stats.Messages != 1 || res.Stats.Words != 4 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestBroadcastStatement(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(4), Y(4)
      my$p = myproc()
      if (my$p .EQ. 2) then
        do i = 1,4
          X(i) = 7
        enddo
      endif
      broadcast X(1:4) from 2
      Y(my$p + 1) = X(1)
      END
`)
	yDist, _ := decomp.NewDist(decomp.NewDecomp(decomp.Block), []int{4}, 4)
	res, err := Run(prog, machine.DefaultConfig(4), Options{
		Dists: map[string]*decomp.Dist{"Y": yDist},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if res.Arrays["Y"][i] != 7 {
			t.Errorf("Y[%d] = %v, want 7 (broadcast value)", i, res.Arrays["Y"][i])
		}
	}
}

func TestRemapStatement(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(8)
      my$p = myproc()
      do i = my$p * 4 + 1, my$p * 4 + 4
        X(i) = i
      enddo
      remap X(CYCLIC)
      END
`)
	dist, _ := decomp.NewDist(decomp.NewDecomp(decomp.Block), []int{8}, 2)
	res, err := Run(prog, machine.DefaultConfig(2), Options{
		Dists: map[string]*decomp.Dist{"X": dist},
	})
	if err != nil {
		t.Fatal(err)
	}
	// after the remap every element is valid at its cyclic owner
	for i := 0; i < 8; i++ {
		if res.Arrays["X"][i] != float64(i+1) {
			t.Errorf("X[%d] = %v", i, res.Arrays["X"][i])
		}
	}
	if res.Stats.Remaps != 1 {
		t.Errorf("remaps = %d", res.Stats.Remaps)
	}
	if res.Stats.Words == 0 {
		t.Error("physical remap moved no data")
	}
}

func TestCommonBlockSharing(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      COMMON /blk/ G(4)
      call setter
      call getter
      END
      SUBROUTINE setter
      COMMON /blk/ G(4)
      G(2) = 42
      END
      SUBROUTINE getter
      COMMON /blk/ G(4)
      G(1) = G(2) + 1
      END
`)
	res, err := RunSequential(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrays["G"][0] != 43 || res.Arrays["G"][1] != 42 {
		t.Errorf("G = %v", res.Arrays["G"])
	}
}

func TestAdjustableBounds(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(10)
      call f(X, 1, 10)
      END
      SUBROUTINE f(X, lo, hi)
      REAL X(lo:hi)
      do i = lo, hi
        X(i) = i
      enddo
      END
`)
	res, err := RunSequential(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrays["X"][9] != 10 {
		t.Errorf("X = %v", res.Arrays["X"])
	}
}

func TestDeterministicStats(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(100)
      my$p = myproc()
      if (my$p .GT. 0) then
        send X(1:5) to my$p - 1
      endif
      if (my$p .LT. 3) then
        recv X(6:10) from my$p + 1
      endif
      END
`)
	var last machine.Stats
	for trial := 0; trial < 5; trial++ {
		res, err := Run(prog, machine.DefaultConfig(4), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if trial > 0 {
			if res.Stats.Time != last.Time || res.Stats.Messages != last.Messages ||
				res.Stats.Words != last.Words || res.Stats.Flops != last.Flops {
				t.Fatalf("nondeterministic stats: %+v vs %+v", res.Stats, last)
			}
		}
		last = res.Stats
	}
}

func TestAllGatherStatement(t *testing.T) {
	// each proc owns a block of X; after allgather, everyone has all
	// values and writes its own block of Y from a remote element
	prog := parseProg(t, `
      PROGRAM P
      REAL X(8), Y(8)
      my$p = myproc()
      do i = my$p * 2 + 1, my$p * 2 + 2
        X(i) = i * 3
      enddo
      allgather X(1:8)
      do i = my$p * 2 + 1, my$p * 2 + 2
        Y(i) = X(9 - i)
      enddo
      END
`)
	xDist, _ := decomp.NewDist(decomp.NewDecomp(decomp.Block), []int{8}, 4)
	yDist, _ := decomp.NewDist(decomp.NewDecomp(decomp.Block), []int{8}, 4)
	res, err := Run(prog, machine.DefaultConfig(4), Options{
		Dists: map[string]*decomp.Dist{"X": xDist, "Y": yDist},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		want := float64((9 - i) * 3)
		if got := res.Arrays["Y"][i-1]; got != want {
			t.Errorf("Y(%d) = %v, want %v", i, got, want)
		}
	}
	// tree gather + tree broadcast: 2*(P-1) messages, where the old
	// all-to-all exchange cost P*(P-1) = 12
	if res.Stats.Messages != 6 {
		t.Errorf("messages = %d, want 6", res.Stats.Messages)
	}
}

func TestAllGatherReplicatedNoop(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(4)
      allgather X(1:4)
      END
`)
	res, err := Run(prog, machine.DefaultConfig(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages != 0 {
		t.Errorf("replicated allgather sent %d messages", res.Stats.Messages)
	}
}

func TestMarkAsInPlaceRemap(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(8)
      my$p = myproc()
      markas X(CYCLIC)
      do i = my$p + 1, 8, 2
        X(i) = i
      enddo
      END
`)
	dist, _ := decomp.NewDist(decomp.NewDecomp(decomp.Block), []int{8}, 2)
	res, err := Run(prog, machine.DefaultConfig(2), Options{
		Dists: map[string]*decomp.Dist{"X": dist},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Remaps != 0 || res.Stats.Messages != 0 {
		t.Errorf("in-place remap must move nothing: %+v", res.Stats)
	}
	// assembly uses the NEW (cyclic) descriptor
	for i := 1; i <= 8; i++ {
		if res.Arrays["X"][i-1] != float64(i) {
			t.Errorf("X(%d) = %v", i, res.Arrays["X"][i-1])
		}
	}
}

func TestNegativeStepLoop(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(5)
      k = 0
      do i = 5, 1, -1
        k = k + 1
        X(k) = i
      enddo
      END
`)
	res, err := RunSequential(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 4, 3, 2, 1}
	for i, w := range want {
		if res.Arrays["X"][i] != w {
			t.Errorf("X[%d] = %v, want %v", i, res.Arrays["X"][i], w)
		}
	}
}

func TestEmptyLoopBody(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(2)
      do i = 5, 1
        X(1) = 99
      enddo
      X(2) = 7
      END
`)
	res, err := RunSequential(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrays["X"][0] != 0 || res.Arrays["X"][1] != 7 {
		t.Errorf("X = %v (empty loop must not run)", res.Arrays["X"])
	}
}

func TestLogicalOperators(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(4)
      a = 3
      if (a .GT. 1 .AND. a .LT. 5) then
        X(1) = 1
      endif
      if (a .LT. 1 .OR. a .EQ. 3) then
        X(2) = 1
      endif
      if (.NOT. (a .EQ. 4)) then
        X(3) = 1
      endif
      if (a .NE. 3) then
        X(4) = 1
      else
        X(4) = 2
      endif
      END
`)
	res, err := RunSequential(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 1, 2}
	for i, w := range want {
		if res.Arrays["X"][i] != w {
			t.Errorf("X[%d] = %v, want %v", i, res.Arrays["X"][i], w)
		}
	}
}

func TestGlobalReduceStatement(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(4)
      my$p = myproc()
      s = my$p + 1.0
      globalsum s
      m = my$p + 1.0
      globalmax m
      l = my$p + 1.0
      globalmin l
      X(my$p + 1) = s * 100 + m * 10 + l
      END
`)
	xDist, _ := decomp.NewDist(decomp.NewDecomp(decomp.Block), []int{4}, 4)
	res, err := Run(prog, machine.DefaultConfig(4), Options{
		Dists: map[string]*decomp.Dist{"X": xDist},
	})
	if err != nil {
		t.Fatal(err)
	}
	// sum 1+2+3+4 = 10, max 4, min 1 → 1041 everywhere
	for i := 0; i < 4; i++ {
		if res.Arrays["X"][i] != 1041 {
			t.Errorf("X[%d] = %v, want 1041", i, res.Arrays["X"][i])
		}
	}
}

func TestUnknownFunctionErrors(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(2)
      X(1) = NOSUCH(3)
      END
`)
	if _, err := RunSequential(prog, Options{}); err == nil {
		t.Error("unknown function must error")
	}
}

func TestUnknownProcedureErrors(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      call nosuch(1)
      END
`)
	if _, err := RunSequential(prog, Options{}); err == nil {
		t.Error("unknown procedure must error")
	}
}
