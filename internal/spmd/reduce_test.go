package spmd

import (
	"errors"
	"strings"
	"testing"

	"fortd/internal/ast"
	"fortd/internal/machine"
)

// TestUnknownReduceOpError: a GlobalReduce whose op the interpreter
// does not implement fails loudly with the structured error, instead
// of silently reducing as a sum the way earlier versions did. The
// parser only produces "+", "MAX" and "MIN", so the broken op is
// planted in the AST directly — the error exists to catch compiler
// bugs, not user syntax.
func TestUnknownReduceOpError(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      s = 1.0
      globalsum s
      END
`)
	var red *ast.GlobalReduce
	for _, st := range prog.Units[0].Body {
		if r, ok := st.(*ast.GlobalReduce); ok {
			red = r
		}
	}
	if red == nil {
		t.Fatal("no GlobalReduce in parsed body")
	}
	red.Op = "XOR"
	_, err := Run(prog, machine.DefaultConfig(4), Options{})
	if err == nil {
		t.Fatal("unknown reduce op must fail the run")
	}
	var ue *UnknownReduceOpError
	if !errors.As(err, &ue) {
		t.Fatalf("error %T (%v) does not unwrap to *UnknownReduceOpError", err, err)
	}
	if ue.Var != "s" || ue.Op != "XOR" {
		t.Errorf("error fields = {Var:%q Op:%q}, want {s XOR}", ue.Var, ue.Op)
	}
	if msg := ue.Error(); !strings.Contains(msg, "XOR") || !strings.Contains(msg, "s") {
		t.Errorf("message %q does not name the op and variable", msg)
	}

	// P=1 takes the no-communication early return, but the op check
	// must still fire: a bad op is a bug at every processor count.
	if _, err := Run(prog, machine.DefaultConfig(1), Options{}); err == nil {
		t.Error("unknown reduce op must fail at P=1 too")
	}
}
