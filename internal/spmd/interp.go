// Package spmd interprets generated SPMD node programs on the simulated
// MIMD machine: every processor runs the same program text (a goroutine
// each), with my$p = myproc() selecting its behavior, exactly as the
// compiler's output would run on the nodes of a distributed-memory
// machine. The interpreter also runs original (sequential) Fortran D
// programs on one processor to produce reference results for
// correctness checks.
package spmd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"fortd/internal/ast"
	"fortd/internal/decomp"
	"fortd/internal/machine"
	"fortd/internal/trace"
)

// Array is one array's simulated storage: a full-size copy per
// processor (memory is not the simulated resource; messages and time
// are), plus the distribution descriptor used by allgather and remap.
type Array struct {
	Data []float64
	Lo   []int // per-dim declared lower bound
	Hi   []int
	Dist *decomp.Dist
}

// Size returns the total element count.
func (a *Array) Size() int {
	n := 1
	for i := range a.Lo {
		n *= a.Hi[i] - a.Lo[i] + 1
	}
	return n
}

func (a *Array) index(idx []int) (int, error) {
	off := 0
	for d := range idx {
		if idx[d] < a.Lo[d] || idx[d] > a.Hi[d] {
			return 0, fmt.Errorf("index %d out of bounds [%d:%d] in dim %d", idx[d], a.Lo[d], a.Hi[d], d)
		}
		off = off*(a.Hi[d]-a.Lo[d]+1) + (idx[d] - a.Lo[d])
	}
	return off, nil
}

// frame is one procedure activation.
type frame struct {
	unit    *ast.Procedure
	scalars map[string]*float64
	arrays  map[string]*Array
	consts  map[string]int
}

// interp executes one processor's node program.
type interp struct {
	prog    *ast.Program
	proc    *machine.Proc
	p       int
	nproc   int
	frames  []*frame
	verbose bool
	// initial distributions for main-program arrays
	dists map[string]*decomp.Dist
	ops   int
	// posted holds the outstanding split-phase operations by tag
	// (PostRecv/PostBcast executed, matching wait not yet reached).
	// Tags are unique program-wide, so a post can be completed by a
	// wait in another statement of the same body without collision.
	posted map[int]*postedOp
}

// postedOp is one in-flight split-phase operation: the machine handle
// plus where the payload lands when the wait completes. The array and
// offsets are captured at post time, so the wait stores into exactly
// the section the post named.
type postedOp struct {
	h      *machine.Handle
	arr    *Array
	offs   []int
	isRoot bool // bcast: this processor supplied the data; nothing to store
}

// setTraceCtx attributes the communication the statement is about to
// generate to its owning procedure and source line. The context is
// recorded unconditionally (it is three field writes): trace events
// and the deadlock watchdog's per-processor report both read it.
func (it *interp) setTraceCtx(f *frame, s ast.Stmt, op string) {
	it.proc.SetContext(f.unit.Name, s.Pos().Line, op)
}

// Options configures a run.
type Options struct {
	// Dists assigns initial distribution descriptors to the main
	// program's arrays (array name → dist). Arrays not listed are
	// replicated.
	Dists map[string]*decomp.Dist
	// Init seeds main-program arrays before execution (array → values
	// in row-major global order); every processor gets a copy.
	Init map[string][]float64
	// InitScalars seeds main-program scalars.
	InitScalars map[string]float64
	// Trace collects per-message events and per-processor timelines
	// (nil: tracing disabled, the zero-cost default).
	Trace *trace.Tracer
	// Faults injects seeded, deterministic faults into the machine
	// (nil: none). Validated before the run starts.
	Faults *machine.FaultPlan
	// Deadline bounds the run's wall-clock time (0: none). Deadlocked
	// schedules are detected and reported by the machine's watchdog
	// even without a deadline.
	Deadline time.Duration
}

// RunResult carries the outcome of a parallel run.
type RunResult struct {
	Stats machine.Stats
	// Arrays holds the main program's arrays assembled from the owning
	// processors (the logically-global result).
	Arrays map[string][]float64
}

// Run executes the program on p processors under the given machine
// configuration. A failing run cannot hang: when any processor's node
// program errors, every peer is unblocked with a machine.AbortError,
// and a mismatched communication schedule is detected by the machine's
// watchdog and returned as a machine.DeadlockError report. All
// per-processor errors are joined, so no failure is dropped.
func Run(prog *ast.Program, cfg machine.Config, opts Options) (*RunResult, error) {
	return RunContext(context.Background(), prog, cfg, opts)
}

// RunContext is Run under a cancellation context: when ctx is cancelled
// mid-run the machine's cooperative abort unblocks every processor and
// the run returns ctx.Err(). The machine's own failure modes (deadlock
// watchdog, wall-clock deadline, congestion) are unchanged.
func RunContext(ctx context.Context, prog *ast.Program, cfg machine.Config, opts Options) (*RunResult, error) {
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Deadline > 0 {
		cfg.Deadline = opts.Deadline
	}
	m := machine.New(cfg)
	if ctx.Done() != nil {
		// a dropped client aborts its simulated run: the watcher feeds
		// the context's cancellation into the PR-5 abort channel, and
		// closing stop retires it once the run is over
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				m.Abort(-1, ctx.Err())
			case <-stop:
			}
		}()
	}
	if opts.Trace != nil {
		m.SetTracer(opts.Trace)
	}
	m.SetFaultPlan(opts.Faults)
	mains := make([]*frame, cfg.P)
	errs := make([]error, cfg.P)
	for pid := 0; pid < cfg.P; pid++ {
		pid := pid
		m.Go(pid, func(proc *machine.Proc) {
			it := &interp{prog: prog, proc: proc, p: pid, nproc: cfg.P, dists: opts.Dists}
			f, err := it.newFrame(prog.Main(), nil, nil)
			if err != nil {
				errs[pid] = err
				m.Abort(pid, err)
				return
			}
			seed(f, opts)
			mains[pid] = f
			if err := it.execBody(f, prog.Main().Body); err != nil {
				errs[pid] = err
				// unblock every peer: they fail with an AbortError
				// naming this processor as the origin
				m.Abort(pid, err)
			}
		})
	}
	waitErr := m.Wait()
	if err := joinRunErrors(m, errs, waitErr); err != nil {
		return nil, err
	}
	res := &RunResult{Stats: m.Stats(), Arrays: map[string][]float64{}}
	if opts.Trace != nil {
		for pid, ps := range res.Stats.PerProc {
			opts.Trace.Emit(trace.Event{
				Kind: trace.KindProcSummary, PID: pid,
				Dur: ps.Clock, Wait: ps.Wait, Words: int(ps.Words),
				Sent: ps.Sent, Recvd: ps.Received, Flops: ps.Flops,
			})
		}
	}
	assemble(res, mains)
	return res, nil
}

// joinRunErrors combines a run's failures into one error: each
// processor's own (interpreter-level) error tagged with its pid, each
// aborted peer's AbortError, and the machine-level cause. A pure
// deadlock — no node program erred, the watchdog fired — returns the
// structured DeadlockError report itself rather than P redundant
// AbortError symptoms.
func joinRunErrors(m *machine.Machine, errs []error, waitErr error) error {
	anyInterp := false
	for _, err := range errs {
		if err != nil {
			anyInterp = true
			break
		}
	}
	var dl *machine.DeadlockError
	if errors.As(waitErr, &dl) && !anyInterp {
		return dl
	}
	// a pure external cancellation likewise returns the context error
	// itself (the per-processor AbortErrors are symptoms, not causes)
	if !anyInterp && (errors.Is(waitErr, context.Canceled) || errors.Is(waitErr, context.DeadlineExceeded)) {
		return waitErr
	}
	var all []error
	for pid, err := range errs {
		if err != nil {
			all = append(all, fmt.Errorf("p%d: %w", pid, err))
			continue
		}
		if perr := m.ProcErr(pid); perr != nil {
			all = append(all, perr)
		}
	}
	if joined := errors.Join(all...); joined != nil {
		return joined
	}
	return waitErr
}

// RunSequential interprets the original program on one processor with
// no distribution, returning the reference result.
func RunSequential(prog *ast.Program, opts Options) (*RunResult, error) {
	return RunSequentialContext(context.Background(), prog, opts)
}

// RunSequentialContext is RunSequential under a cancellation context.
func RunSequentialContext(ctx context.Context, prog *ast.Program, opts Options) (*RunResult, error) {
	return RunContext(ctx, prog, machine.Config{P: 1, FlopCost: 1},
		Options{Init: opts.Init, InitScalars: opts.InitScalars, Trace: opts.Trace,
			Deadline: opts.Deadline})
}

func seed(f *frame, opts Options) {
	for name, vals := range opts.Init {
		if arr, ok := f.arrays[name]; ok {
			copy(arr.Data, vals)
		}
	}
	for name, v := range opts.InitScalars {
		if s, ok := f.scalars[name]; ok {
			*s = v
		}
	}
}

// assemble merges per-processor copies: each element is taken from its
// owner under the array's final distribution.
func assemble(res *RunResult, mains []*frame) {
	if mains[0] == nil {
		return
	}
	for name, arr0 := range mains[0].arrays {
		out := make([]float64, len(arr0.Data))
		dist := arr0.Dist
		if dist == nil || dist.IsReplicated() || len(mains) == 1 {
			copy(out, arr0.Data)
			res.Arrays[name] = out
			continue
		}
		dim := dist.DistDim()
		// iterate all elements; owner by the distributed coordinate
		sizes := make([]int, len(arr0.Lo))
		for d := range sizes {
			sizes[d] = arr0.Hi[d] - arr0.Lo[d] + 1
		}
		idx := make([]int, len(sizes))
		for flat := 0; flat < len(out); flat++ {
			rem := flat
			for d := len(sizes) - 1; d >= 0; d-- {
				idx[d] = rem%sizes[d] + arr0.Lo[d]
				rem /= sizes[d]
			}
			owner := dist.OwnerIndex(idx[dim])
			if owner >= len(mains) || mains[owner] == nil {
				owner = 0
			}
			out[flat] = mains[owner].arrays[name].Data[flat]
		}
		res.Arrays[name] = out
	}
}

// ---------------------------------------------------------------------------
// Frames

func (it *interp) newFrame(unit *ast.Procedure, args []ast.Expr, caller *frame) (*frame, error) {
	f := &frame{
		unit:    unit,
		scalars: map[string]*float64{},
		arrays:  map[string]*Array{},
		consts:  map[string]int{},
	}
	// constants first (array bounds may use them)
	for _, sym := range unit.Symbols.Symbols() {
		if sym.Kind == ast.SymConstant {
			f.consts[sym.Name] = sym.ConstValue
		}
	}
	// bind formals
	bound := map[string]bool{}
	for i, name := range unit.Params {
		if i >= len(args) {
			break
		}
		bound[name] = true
		switch a := args[i].(type) {
		case *ast.Ident:
			if arr, ok := caller.arrays[a.Name]; ok {
				f.arrays[name] = arr
				continue
			}
			if sc, ok := caller.scalars[a.Name]; ok {
				f.scalars[name] = sc
				continue
			}
			v := 0.0
			f.scalars[name] = &v
		default:
			// expression argument: by value
			val, err := itEval(it, caller, args[i])
			if err != nil {
				return nil, err
			}
			v := val
			f.scalars[name] = &v
		}
	}
	// declare locals
	for _, sym := range unit.Symbols.Symbols() {
		switch sym.Kind {
		case ast.SymScalar:
			if f.scalars[sym.Name] == nil && f.arrays[sym.Name] == nil {
				v := 0.0
				f.scalars[sym.Name] = &v
			}
		case ast.SymArray:
			if f.arrays[sym.Name] != nil {
				continue // bound formal
			}
			if sym.Common != "" && caller != nil {
				// commons: share storage with the ancestor frame that
				// declares the same common variable
				if g := it.findCommon(caller, sym.Name); g != nil {
					f.arrays[sym.Name] = g
					continue
				}
			}
			arr, err := it.allocArray(f, sym)
			if err != nil {
				return nil, err
			}
			f.arrays[sym.Name] = arr
		}
	}
	return f, nil
}

func (it *interp) findCommon(caller *frame, name string) *Array {
	isCommon := func(fr *frame) bool {
		sym := fr.unit.Symbols.Lookup(name)
		return sym != nil && sym.Common != ""
	}
	if caller != nil && isCommon(caller) {
		if a, ok := caller.arrays[name]; ok {
			return a
		}
	}
	for i := len(it.frames) - 1; i >= 0; i-- {
		fr := it.frames[i]
		if !isCommon(fr) {
			continue
		}
		if a, ok := fr.arrays[name]; ok {
			return a
		}
	}
	return nil
}

func (it *interp) allocArray(f *frame, sym *ast.Symbol) (*Array, error) {
	arr := &Array{}
	size := 1
	for _, d := range sym.Dims {
		lo, err := it.evalInt(f, d.Lo)
		if err != nil {
			return nil, fmt.Errorf("array %s: %v", sym.Name, err)
		}
		hi, err := it.evalInt(f, d.Hi)
		if err != nil {
			return nil, fmt.Errorf("array %s: %v", sym.Name, err)
		}
		arr.Lo = append(arr.Lo, lo)
		arr.Hi = append(arr.Hi, hi)
		size *= hi - lo + 1
	}
	arr.Data = make([]float64, size)
	if it.dists != nil && len(it.frames) == 0 {
		arr.Dist = it.dists[sym.Name]
	}
	return arr, nil
}

// ---------------------------------------------------------------------------
// Execution

func (it *interp) execBody(f *frame, body []ast.Stmt) error {
	for _, s := range body {
		if err := it.exec(f, s); err != nil {
			return err
		}
	}
	return nil
}

func (it *interp) exec(f *frame, s ast.Stmt) error {
	switch st := s.(type) {
	case *ast.Assign:
		it.ops = 0
		val, err := it.eval(f, st.Rhs)
		if err != nil {
			return err
		}
		switch lhs := st.Lhs.(type) {
		case *ast.Ident:
			sc := f.scalars[lhs.Name]
			if sc == nil {
				v := 0.0
				sc = &v
				f.scalars[lhs.Name] = sc
			}
			*sc = val
		case *ast.ArrayRef:
			arr := f.arrays[lhs.Name]
			if arr == nil {
				return fmt.Errorf("%s: unknown array %s", f.unit.Name, lhs.Name)
			}
			idx, err := it.evalSubs(f, lhs.Subs)
			if err != nil {
				return err
			}
			off, err := arr.index(idx)
			if err != nil {
				return fmt.Errorf("%s: %s: %v", f.unit.Name, lhs.Name, err)
			}
			arr.Data[off] = val
		}
		it.proc.Compute(it.ops + 1)
		return nil

	case *ast.Do:
		lo, err := it.evalInt(f, st.Lo)
		if err != nil {
			return err
		}
		hi, err := it.evalInt(f, st.Hi)
		if err != nil {
			return err
		}
		step := 1
		if st.Step != nil {
			if step, err = it.evalInt(f, st.Step); err != nil {
				return err
			}
		}
		if step == 0 {
			return fmt.Errorf("%s: zero loop step", f.unit.Name)
		}
		v := f.scalars[st.Var]
		if v == nil {
			z := 0.0
			v = &z
			f.scalars[st.Var] = v
		}
		for i := lo; (step > 0 && i <= hi) || (step < 0 && i >= hi); i += step {
			*v = float64(i)
			if err := it.execBody(f, st.Body); err != nil {
				return err
			}
		}
		return nil

	case *ast.If:
		it.ops = 0
		c, err := it.eval(f, st.Cond)
		if err != nil {
			return err
		}
		it.proc.Compute(it.ops)
		if c != 0 {
			return it.execBody(f, st.Then)
		}
		return it.execBody(f, st.Else)

	case *ast.Call:
		callee := it.prog.Proc(st.Name)
		if callee == nil {
			return fmt.Errorf("%s: call to unknown procedure %s", f.unit.Name, st.Name)
		}
		nf, err := it.newFrame(callee, st.Args, f)
		if err != nil {
			return err
		}
		it.frames = append(it.frames, f)
		err = it.execBody(nf, callee.Body)
		it.frames = it.frames[:len(it.frames)-1]
		return err

	case *ast.Return:
		return nil // structured subset: RETURN only at tail positions

	case *ast.Send:
		it.setTraceCtx(f, st, "send")
		return it.execSend(f, st)
	case *ast.Recv:
		it.setTraceCtx(f, st, "recv")
		return it.execRecv(f, st)
	case *ast.Broadcast:
		it.setTraceCtx(f, st, "bcast")
		return it.execBroadcast(f, st)
	case *ast.AllGather:
		it.setTraceCtx(f, st, "allgather")
		return it.execAllGather(f, st)
	case *ast.Remap:
		it.setTraceCtx(f, st, "remap")
		return it.execRemap(f, st)
	case *ast.GlobalReduce:
		it.setTraceCtx(f, st, "reduce")
		return it.execGlobalReduce(f, st)
	case *ast.PostRecv:
		it.setTraceCtx(f, st, "post")
		return it.execPostRecv(f, st)
	case *ast.WaitRecv:
		it.setTraceCtx(f, st, "wait")
		return it.execWaitRecv(f, st)
	case *ast.PostBcast:
		it.setTraceCtx(f, st, "bcast")
		return it.execPostBcast(f, st)
	case *ast.WaitBcast:
		it.setTraceCtx(f, st, "bcast")
		return it.execWaitBcast(f, st)

	case *ast.Decomposition, *ast.Align, *ast.Distribute:
		return nil // directives are no-ops at run time
	}
	return fmt.Errorf("%s: cannot execute %T", f.unit.Name, s)
}

// evalSubs evaluates subscripts to integers.
func (it *interp) evalSubs(f *frame, subs []ast.Expr) ([]int, error) {
	idx := make([]int, len(subs))
	for i, s := range subs {
		v, err := it.evalInt(f, s)
		if err != nil {
			return nil, err
		}
		idx[i] = v
	}
	return idx, nil
}

func (it *interp) evalInt(f *frame, e ast.Expr) (int, error) {
	v, err := it.eval(f, e)
	if err != nil {
		return 0, err
	}
	return int(math.Round(v)), nil
}

func itEval(it *interp, f *frame, e ast.Expr) (float64, error) { return it.eval(f, e) }

func (it *interp) eval(f *frame, e ast.Expr) (float64, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return float64(x.Value), nil
	case *ast.RealLit:
		return x.Value, nil
	case *ast.Ident:
		if c, ok := f.consts[x.Name]; ok {
			return float64(c), nil
		}
		if s, ok := f.scalars[x.Name]; ok {
			return *s, nil
		}
		if x.Name == "n$proc" {
			return float64(it.nproc), nil
		}
		return 0, fmt.Errorf("%s: unknown variable %s", f.unit.Name, x.Name)
	case *ast.ArrayRef:
		arr := f.arrays[x.Name]
		if arr == nil {
			return 0, fmt.Errorf("%s: unknown array %s", f.unit.Name, x.Name)
		}
		idx, err := it.evalSubs(f, x.Subs)
		if err != nil {
			return 0, err
		}
		off, err := arr.index(idx)
		if err != nil {
			return 0, fmt.Errorf("%s: %s: %v", f.unit.Name, x.Name, err)
		}
		return arr.Data[off], nil
	case *ast.Unary:
		v, err := it.eval(f, x.X)
		if err != nil {
			return 0, err
		}
		it.ops++
		if x.Op == "-" {
			return -v, nil
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case *ast.Binary:
		a, err := it.eval(f, x.X)
		if err != nil {
			return 0, err
		}
		b, err := it.eval(f, x.Y)
		if err != nil {
			return 0, err
		}
		it.ops++
		switch x.Op {
		case ast.OpAdd:
			return a + b, nil
		case ast.OpSub:
			return a - b, nil
		case ast.OpMul:
			return a * b, nil
		case ast.OpDiv:
			if isIntExpr(x.X, f) && isIntExpr(x.Y, f) {
				if int(b) == 0 {
					return 0, fmt.Errorf("%s: integer division by zero", f.unit.Name)
				}
				return float64(int(a) / int(b)), nil
			}
			return a / b, nil
		case ast.OpPow:
			return math.Pow(a, b), nil
		case ast.OpEQ:
			return b2f(a == b), nil
		case ast.OpNE:
			return b2f(a != b), nil
		case ast.OpLT:
			return b2f(a < b), nil
		case ast.OpLE:
			return b2f(a <= b), nil
		case ast.OpGT:
			return b2f(a > b), nil
		case ast.OpGE:
			return b2f(a >= b), nil
		case ast.OpAnd:
			return b2f(a != 0 && b != 0), nil
		case ast.OpOr:
			return b2f(a != 0 || b != 0), nil
		}
		return 0, fmt.Errorf("bad operator %v", x.Op)
	case *ast.FuncCall:
		return it.evalIntrinsic(f, x)
	}
	return 0, fmt.Errorf("cannot evaluate %T", e)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// isIntExpr decides whether an operand is integer-typed (Fortran
// integer division truncates). Conservative: literals and variables of
// integer implicit type.
func isIntExpr(e ast.Expr, f *frame) bool {
	switch x := e.(type) {
	case *ast.IntLit:
		return true
	case *ast.RealLit:
		return false
	case *ast.Ident:
		if _, ok := f.consts[x.Name]; ok {
			return true
		}
		sym := f.unit.Symbols.Lookup(x.Name)
		if sym != nil {
			return sym.Type == ast.TypeInteger
		}
		c := x.Name[0]
		return (c >= 'i' && c <= 'n') || x.Name == "my$p"
	case *ast.Binary:
		switch x.Op {
		case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv:
			return isIntExpr(x.X, f) && isIntExpr(x.Y, f)
		}
		return false
	case *ast.Unary:
		return isIntExpr(x.X, f)
	case *ast.FuncCall:
		switch x.Name {
		case "MOD", "first$", "myproc":
			return true
		case "MIN", "MAX":
			for _, a := range x.Args {
				if !isIntExpr(a, f) {
					return false
				}
			}
			return true
		}
		return false
	}
	return false
}

func (it *interp) evalIntrinsic(f *frame, x *ast.FuncCall) (float64, error) {
	args := make([]float64, len(x.Args))
	for i, a := range x.Args {
		v, err := it.eval(f, a)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	it.ops++
	switch x.Name {
	case "myproc":
		return float64(it.p), nil
	case "MOD", "mod":
		if len(args) != 2 || args[1] == 0 {
			return 0, fmt.Errorf("bad MOD")
		}
		return float64(int(args[0]) % int(args[1])), nil
	case "MIN", "min":
		m := args[0]
		for _, v := range args[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case "MAX", "max":
		m := args[0]
		for _, v := range args[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	case "ABS", "abs":
		return math.Abs(args[0]), nil
	case "SQRT", "sqrt":
		return math.Sqrt(args[0]), nil
	case "first$":
		// smallest x >= min with x ≡ anchor (mod step)
		anchor, min, step := int(args[0]), int(args[1]), int(args[2])
		if step <= 0 {
			return 0, fmt.Errorf("first$: bad step %d", step)
		}
		r := ((anchor-min)%step + step) % step
		return float64(min + r), nil
	case "F", "f":
		// the paper's generic function F: an arbitrary arithmetic map
		return 0.5*args[0] + 1.0, nil
	case "G", "g":
		return 0.25*args[0] + 2.0, nil
	}
	return 0, fmt.Errorf("%s: unknown function %s", f.unit.Name, x.Name)
}
