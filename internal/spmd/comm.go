package spmd

import (
	"fmt"

	"fortd/internal/ast"
	"fortd/internal/decomp"
)

// secBounds evaluates a section's per-dimension bounds.
func (it *interp) secBounds(f *frame, sec []ast.SecDim) ([][2]int, bool, error) {
	out := make([][2]int, len(sec))
	empty := false
	for d, s := range sec {
		lo, err := it.evalInt(f, s.Lo)
		if err != nil {
			return nil, false, err
		}
		hi, err := it.evalInt(f, s.Hi)
		if err != nil {
			return nil, false, err
		}
		out[d] = [2]int{lo, hi}
		if hi < lo {
			empty = true
		}
	}
	return out, empty, nil
}

// enumerate lists the flat offsets of a section in deterministic
// (row-major) order, clipped to the array's declared bounds.
func enumerate(arr *Array, bounds [][2]int) []int {
	// clip
	cl := make([][2]int, len(bounds))
	for d, b := range bounds {
		lo, hi := b[0], b[1]
		if lo < arr.Lo[d] {
			lo = arr.Lo[d]
		}
		if hi > arr.Hi[d] {
			hi = arr.Hi[d]
		}
		if hi < lo {
			return nil
		}
		cl[d] = [2]int{lo, hi}
	}
	var out []int
	idx := make([]int, len(cl))
	for d := range cl {
		idx[d] = cl[d][0]
	}
	for {
		off, err := arr.index(idx)
		if err == nil {
			out = append(out, off)
		}
		d := len(cl) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= cl[d][1] {
				break
			}
			idx[d] = cl[d][0]
			d--
		}
		if d < 0 {
			return out
		}
	}
}

func (it *interp) execSend(f *frame, st *ast.Send) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("send: unknown array %s", st.Array)
	}
	bounds, empty, err := it.secBounds(f, st.Sec)
	if err != nil {
		return err
	}
	if empty {
		return nil
	}
	dest, err := it.evalInt(f, st.Dest)
	if err != nil {
		return err
	}
	if dest < 0 || dest >= it.nproc || dest == it.p {
		return nil
	}
	offs := enumerate(arr, bounds)
	if len(offs) == 0 {
		return nil
	}
	// stage the payload in the machine's scratch buffer: on the DES
	// backend this is a reused per-processor buffer, so generated sends
	// allocate nothing
	data := it.proc.Scratch(len(offs))
	for i, o := range offs {
		data[i] = arr.Data[o]
	}
	it.proc.Send(dest, data)
	return nil
}

func (it *interp) execRecv(f *frame, st *ast.Recv) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("recv: unknown array %s", st.Array)
	}
	bounds, empty, err := it.secBounds(f, st.Sec)
	if err != nil {
		return err
	}
	if empty {
		return nil
	}
	src, err := it.evalInt(f, st.Src)
	if err != nil {
		return err
	}
	if src < 0 || src >= it.nproc || src == it.p {
		return nil
	}
	offs := enumerate(arr, bounds)
	if len(offs) == 0 {
		return nil
	}
	data := it.proc.Recv(src)
	if len(data) != len(offs) {
		return fmt.Errorf("recv %s: message size %d != section size %d (proc %d from %d)",
			st.Array, len(data), len(offs), it.p, src)
	}
	for i, o := range offs {
		arr.Data[o] = data[i]
	}
	return nil
}

func (it *interp) execBroadcast(f *frame, st *ast.Broadcast) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("broadcast: unknown array %s", st.Array)
	}
	bounds, empty, err := it.secBounds(f, st.Sec)
	if err != nil {
		return err
	}
	if empty {
		return nil
	}
	root, err := it.evalInt(f, st.Root)
	if err != nil {
		return err
	}
	if root < 0 || root >= it.nproc {
		return fmt.Errorf("broadcast %s: bad root %d", st.Array, root)
	}
	offs := enumerate(arr, bounds)
	var data []float64
	if it.p == root {
		data = it.proc.Scratch(len(offs))
		for i, o := range offs {
			data[i] = arr.Data[o]
		}
	}
	data = it.proc.Broadcast(root, data)
	if it.p != root {
		if len(data) != len(offs) {
			return fmt.Errorf("broadcast %s: size mismatch %d != %d", st.Array, len(data), len(offs))
		}
		for i, o := range offs {
			arr.Data[o] = data[i]
		}
	}
	return nil
}

func (it *interp) execAllGather(f *frame, st *ast.AllGather) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("allgather: unknown array %s", st.Array)
	}
	if arr.Dist == nil || arr.Dist.IsReplicated() {
		return nil // data already everywhere
	}
	bounds, empty, err := it.secBounds(f, st.Sec)
	if err != nil {
		return err
	}
	if empty {
		return nil
	}
	parts := it.ownerParts(arr, bounds)
	// non-blocking sends first, then receives, in processor order; the
	// payload is this processor's part, identical to every destination,
	// so it is staged once (Send does not retain the slice)
	var data []float64
	if len(parts[it.p]) > 0 {
		data = it.proc.Scratch(len(parts[it.p]))
		for i, o := range parts[it.p] {
			data[i] = arr.Data[o]
		}
	}
	for q := 0; q < it.nproc; q++ {
		if q == it.p || len(parts[it.p]) == 0 {
			continue
		}
		it.proc.Send(q, data)
	}
	for q := 0; q < it.nproc; q++ {
		if q == it.p || len(parts[q]) == 0 {
			continue
		}
		data := it.proc.Recv(q)
		if len(data) != len(parts[q]) {
			return fmt.Errorf("allgather %s: size mismatch from %d", st.Array, q)
		}
		for i, o := range parts[q] {
			arr.Data[o] = data[i]
		}
	}
	return nil
}

// ownerParts splits a section's offsets by owning processor.
func (it *interp) ownerParts(arr *Array, bounds [][2]int) [][]int {
	parts := make([][]int, it.nproc)
	dim := arr.Dist.DistDim()
	// clip and enumerate with ownership by the distributed coordinate
	cl := make([][2]int, len(bounds))
	for d, b := range bounds {
		lo, hi := b[0], b[1]
		if lo < arr.Lo[d] {
			lo = arr.Lo[d]
		}
		if hi > arr.Hi[d] {
			hi = arr.Hi[d]
		}
		if hi < lo {
			return parts
		}
		cl[d] = [2]int{lo, hi}
	}
	idx := make([]int, len(cl))
	for d := range cl {
		idx[d] = cl[d][0]
	}
	for {
		off, err := arr.index(idx)
		if err == nil {
			owner := arr.Dist.OwnerIndex(idx[dim])
			if owner >= 0 && owner < it.nproc {
				parts[owner] = append(parts[owner], off)
			}
		}
		d := len(cl) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= cl[d][1] {
				break
			}
			idx[d] = cl[d][0]
			d--
		}
		if d < 0 {
			return parts
		}
	}
}

// execGlobalReduce combines every processor's private copy of a scalar
// (gather to processor 0, combine, broadcast back).
func (it *interp) execGlobalReduce(f *frame, st *ast.GlobalReduce) error {
	sc := f.scalars[st.Var]
	if sc == nil {
		v := 0.0
		sc = &v
		f.scalars[st.Var] = sc
	}
	if it.nproc == 1 {
		return nil
	}
	if it.p == 0 {
		acc := *sc
		for q := 1; q < it.nproc; q++ {
			v := it.proc.Recv(q)[0]
			switch st.Op {
			case "MAX":
				if v > acc {
					acc = v
				}
			case "MIN":
				if v < acc {
					acc = v
				}
			default:
				acc += v
			}
		}
		*sc = acc
		buf := it.proc.Scratch(1)
		buf[0] = acc
		*sc = it.proc.Broadcast(0, buf)[0]
		return nil
	}
	buf := it.proc.Scratch(1)
	buf[0] = *sc
	it.proc.Send(0, buf)
	*sc = it.proc.Broadcast(0, nil)[0]
	return nil
}

func (it *interp) execRemap(f *frame, st *ast.Remap) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("remap: unknown array %s", st.Array)
	}
	sizes := make([]int, len(arr.Lo))
	for d := range sizes {
		sizes[d] = arr.Hi[d] - arr.Lo[d] + 1
	}
	newDist, err := decomp.NewDist(decomp.NewDecomp(st.To...), sizes, it.nproc)
	if err != nil {
		return fmt.Errorf("remap %s: %v", st.Array, err)
	}
	old := arr.Dist
	if st.InPlace || old == nil || old.IsReplicated() {
		arr.Dist = newDist
		return nil
	}
	words := old.RemapWords(newDist)
	if words > 0 {
		// physical remap: exchange so every processor's copy is fully
		// valid (simulated as a full exchange of the owned regions,
		// charged at the true remap volume)
		fullSec := make([][2]int, len(arr.Lo))
		for d := range fullSec {
			fullSec[d] = [2]int{arr.Lo[d], arr.Hi[d]}
		}
		parts := it.ownerParts(arr, fullSec)
		var data []float64
		if len(parts[it.p]) > 0 {
			data = it.proc.Scratch(len(parts[it.p]))
			for i, o := range parts[it.p] {
				data[i] = arr.Data[o]
			}
		}
		for q := 0; q < it.nproc; q++ {
			if q == it.p || len(parts[it.p]) == 0 {
				continue
			}
			it.proc.Send(q, data)
		}
		for q := 0; q < it.nproc; q++ {
			if q == it.p || len(parts[q]) == 0 {
				continue
			}
			data := it.proc.Recv(q)
			for i, o := range parts[q] {
				arr.Data[o] = data[i]
			}
		}
		it.proc.CountRemap(words/it.nproc, it.nproc-1)
	}
	arr.Dist = newDist
	return nil
}
