package spmd

import (
	"fmt"

	"fortd/internal/ast"
	"fortd/internal/decomp"
)

// secBounds evaluates a section's per-dimension bounds.
func (it *interp) secBounds(f *frame, sec []ast.SecDim) ([][2]int, bool, error) {
	out := make([][2]int, len(sec))
	empty := false
	for d, s := range sec {
		lo, err := it.evalInt(f, s.Lo)
		if err != nil {
			return nil, false, err
		}
		hi, err := it.evalInt(f, s.Hi)
		if err != nil {
			return nil, false, err
		}
		out[d] = [2]int{lo, hi}
		if hi < lo {
			empty = true
		}
	}
	return out, empty, nil
}

// enumerate lists the flat offsets of a section in deterministic
// (row-major) order, clipped to the array's declared bounds.
func enumerate(arr *Array, bounds [][2]int) []int {
	// clip
	cl := make([][2]int, len(bounds))
	for d, b := range bounds {
		lo, hi := b[0], b[1]
		if lo < arr.Lo[d] {
			lo = arr.Lo[d]
		}
		if hi > arr.Hi[d] {
			hi = arr.Hi[d]
		}
		if hi < lo {
			return nil
		}
		cl[d] = [2]int{lo, hi}
	}
	var out []int
	idx := make([]int, len(cl))
	for d := range cl {
		idx[d] = cl[d][0]
	}
	for {
		off, err := arr.index(idx)
		if err == nil {
			out = append(out, off)
		}
		d := len(cl) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= cl[d][1] {
				break
			}
			idx[d] = cl[d][0]
			d--
		}
		if d < 0 {
			return out
		}
	}
}

func (it *interp) execSend(f *frame, st *ast.Send) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("send: unknown array %s", st.Array)
	}
	bounds, empty, err := it.secBounds(f, st.Sec)
	if err != nil {
		return err
	}
	if empty {
		return nil
	}
	dest, err := it.evalInt(f, st.Dest)
	if err != nil {
		return err
	}
	if dest < 0 || dest >= it.nproc || dest == it.p {
		return nil
	}
	offs := enumerate(arr, bounds)
	if len(offs) == 0 {
		return nil
	}
	// stage the payload in the machine's scratch buffer: on the DES
	// backend this is a reused per-processor buffer, so generated sends
	// allocate nothing
	data := it.proc.Scratch(len(offs))
	for i, o := range offs {
		data[i] = arr.Data[o]
	}
	it.proc.Send(dest, data)
	return nil
}

func (it *interp) execRecv(f *frame, st *ast.Recv) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("recv: unknown array %s", st.Array)
	}
	bounds, empty, err := it.secBounds(f, st.Sec)
	if err != nil {
		return err
	}
	if empty {
		return nil
	}
	src, err := it.evalInt(f, st.Src)
	if err != nil {
		return err
	}
	if src < 0 || src >= it.nproc || src == it.p {
		return nil
	}
	offs := enumerate(arr, bounds)
	if len(offs) == 0 {
		return nil
	}
	data := it.proc.Recv(src)
	if len(data) != len(offs) {
		return fmt.Errorf("recv %s: message size %d != section size %d (proc %d from %d)",
			st.Array, len(data), len(offs), it.p, src)
	}
	for i, o := range offs {
		arr.Data[o] = data[i]
	}
	return nil
}

func (it *interp) execBroadcast(f *frame, st *ast.Broadcast) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("broadcast: unknown array %s", st.Array)
	}
	bounds, empty, err := it.secBounds(f, st.Sec)
	if err != nil {
		return err
	}
	if empty {
		return nil
	}
	root, err := it.evalInt(f, st.Root)
	if err != nil {
		return err
	}
	if root < 0 || root >= it.nproc {
		return fmt.Errorf("broadcast %s: bad root %d", st.Array, root)
	}
	offs := enumerate(arr, bounds)
	var data []float64
	if it.p == root {
		data = it.proc.Scratch(len(offs))
		for i, o := range offs {
			data[i] = arr.Data[o]
		}
	}
	data = it.proc.Broadcast(root, data)
	if it.p != root {
		if len(data) != len(offs) {
			return fmt.Errorf("broadcast %s: size mismatch %d != %d", st.Array, len(data), len(offs))
		}
		for i, o := range offs {
			arr.Data[o] = data[i]
		}
	}
	return nil
}

// execAllGather makes a distributed section fully replicated. It is
// lowered as a binomial gather of owner blocks to processor 0 followed
// by a tree broadcast of the concatenation: 2(P-1) messages on
// 2·ceil(log2 P) critical-path steps. The previous lowering was an
// all-to-all exchange — P(P-1) messages with every processor
// serialized on P-1 receives in ascending pid order.
func (it *interp) execAllGather(f *frame, st *ast.AllGather) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("allgather: unknown array %s", st.Array)
	}
	if arr.Dist == nil || arr.Dist.IsReplicated() {
		return nil // data already everywhere
	}
	bounds, empty, err := it.secBounds(f, st.Sec)
	if err != nil {
		return err
	}
	if empty || it.nproc == 1 {
		return nil
	}
	parts := it.ownerParts(arr, bounds)
	// every processor computes the same parts sizes, so the
	// concatenation's layout (ascending owner) needs no headers and
	// both ends of every link agree on whether a block range is empty
	rangeWords := func(lo, hi int) int {
		if hi > it.nproc {
			hi = it.nproc
		}
		n := 0
		for q := lo; q < hi; q++ {
			n += len(parts[q])
		}
		return n
	}
	total := rangeWords(0, it.nproc)
	if total == 0 {
		return nil
	}
	// gather up the tree: before round k, processor p (a multiple of 2k)
	// holds the blocks of owners [p, min(p+k, nproc)); a processor with
	// bit k set sends its range to p-k and leaves
	buf := make([]float64, 0, total)
	for _, o := range parts[it.p] {
		buf = append(buf, arr.Data[o])
	}
	for k := 1; k < it.nproc; k <<= 1 {
		if it.p&k != 0 {
			if len(buf) > 0 {
				it.proc.Send(it.p-k, buf)
			}
			break
		}
		if it.p+k < it.nproc {
			want := rangeWords(it.p+k, it.p+2*k)
			if want == 0 {
				continue
			}
			data := it.proc.Recv(it.p + k)
			if len(data) != want {
				return fmt.Errorf("allgather %s: size mismatch from %d", st.Array, it.p+k)
			}
			buf = append(buf, data...)
		}
	}
	// processor 0 now holds the full concatenation; the tree broadcast
	// distributes it and every processor unpacks by the shared layout
	full := it.proc.Broadcast(0, buf)
	if len(full) != total {
		return fmt.Errorf("allgather %s: gathered %d words, want %d", st.Array, len(full), total)
	}
	pos := 0
	for q := 0; q < it.nproc; q++ {
		for _, o := range parts[q] {
			arr.Data[o] = full[pos]
			pos++
		}
	}
	return nil
}

// ownerParts splits a section's offsets by owning processor.
func (it *interp) ownerParts(arr *Array, bounds [][2]int) [][]int {
	parts := make([][]int, it.nproc)
	dim := arr.Dist.DistDim()
	// clip and enumerate with ownership by the distributed coordinate
	cl := make([][2]int, len(bounds))
	for d, b := range bounds {
		lo, hi := b[0], b[1]
		if lo < arr.Lo[d] {
			lo = arr.Lo[d]
		}
		if hi > arr.Hi[d] {
			hi = arr.Hi[d]
		}
		if hi < lo {
			return parts
		}
		cl[d] = [2]int{lo, hi}
	}
	idx := make([]int, len(cl))
	for d := range cl {
		idx[d] = cl[d][0]
	}
	for {
		off, err := arr.index(idx)
		if err == nil {
			owner := arr.Dist.OwnerIndex(idx[dim])
			if owner >= 0 && owner < it.nproc {
				parts[owner] = append(parts[owner], off)
			}
		}
		d := len(cl) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= cl[d][1] {
				break
			}
			idx[d] = cl[d][0]
			d--
		}
		if d < 0 {
			return parts
		}
	}
}

// UnknownReduceOpError reports a GlobalReduce whose operation the
// interpreter does not implement. Earlier versions silently treated
// any unrecognized op as a sum; an unknown op is a compiler bug and
// must fail loudly.
type UnknownReduceOpError struct {
	Var string // reduction variable
	Op  string // the unrecognized operation
}

func (e *UnknownReduceOpError) Error() string {
	return fmt.Sprintf("global reduce of %s: unknown operation %q (want \"+\", \"MAX\" or \"MIN\")", e.Var, e.Op)
}

// reduceCombine maps a GlobalReduce op to its combining function.
func reduceCombine(op string) (func(a, b float64) float64, bool) {
	switch op {
	case "+":
		return func(a, b float64) float64 { return a + b }, true
	case "MAX":
		return func(a, b float64) float64 {
			if b > a {
				return b
			}
			return a
		}, true
	case "MIN":
		return func(a, b float64) float64 {
			if b < a {
				return b
			}
			return a
		}, true
	}
	return nil, false
}

// execGlobalReduce combines every processor's private copy of a scalar
// and leaves the result everywhere: a binomial combining tree into
// processor 0 (machine.Reduce) followed by the tree broadcast back.
// The critical path is 2·ceil(log2 P) message steps. The previous
// lowering gathered flat — P-1 receives on the root, in fixed
// ascending pid order — which funnels every partial into one
// processor's queue; the tree bounds each in-degree by ceil(log2 P),
// the iPSC library's own gather shape. (On this machine model, where
// a receive costs the receiver nothing, the flat gather's last
// arrival is actually latency-optimal — the tree buys its scaling at
// up to log2(P) extra flights; machine.TestReduceTreeVsLinearGather
// pins both sides of that trade.)
func (it *interp) execGlobalReduce(f *frame, st *ast.GlobalReduce) error {
	combine, ok := reduceCombine(st.Op)
	if !ok {
		return &UnknownReduceOpError{Var: st.Var, Op: st.Op}
	}
	sc := f.scalars[st.Var]
	if sc == nil {
		v := 0.0
		sc = &v
		f.scalars[st.Var] = sc
	}
	if it.nproc == 1 {
		return nil
	}
	acc := it.proc.Reduce(0, *sc, combine)
	var buf []float64
	if it.p == 0 {
		buf = it.proc.Scratch(1)
		buf[0] = acc
	}
	*sc = it.proc.Broadcast(0, buf)[0]
	return nil
}

// execPostRecv posts the receive half of a split halo exchange. Like
// execRecv it is a no-op for out-of-range or self sources and empty
// sections — in those cases no entry is recorded and the matching
// WaitRecv is a no-op too, which is what makes the schedule pass's
// unguarded waits safe under the post's original guard.
func (it *interp) execPostRecv(f *frame, st *ast.PostRecv) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("postrecv: unknown array %s", st.Array)
	}
	bounds, empty, err := it.secBounds(f, st.Sec)
	if err != nil {
		return err
	}
	if empty {
		return nil
	}
	src, err := it.evalInt(f, st.Src)
	if err != nil {
		return err
	}
	if src < 0 || src >= it.nproc || src == it.p {
		return nil
	}
	offs := enumerate(arr, bounds)
	if len(offs) == 0 {
		return nil
	}
	if it.posted == nil {
		it.posted = map[int]*postedOp{}
	}
	it.posted[st.Tag] = &postedOp{h: it.proc.IRecv(src), arr: arr, offs: offs}
	return nil
}

// execWaitRecv completes the PostRecv with the same tag, storing the
// message into the section captured at post time.
func (it *interp) execWaitRecv(f *frame, st *ast.WaitRecv) error {
	po := it.posted[st.Tag]
	if po == nil {
		return nil // the post's guard was false: nothing in flight
	}
	delete(it.posted, st.Tag)
	data := it.proc.WaitHandle(po.h)
	if len(data) != len(po.offs) {
		return fmt.Errorf("waitrecv %s: message size %d != section size %d (proc %d)",
			st.Array, len(data), len(po.offs), it.p)
	}
	for i, o := range po.offs {
		po.arr.Data[o] = data[i]
	}
	return nil
}

// execPostBcast posts the send half of a split-phase broadcast: the
// root's tree sends happen now, every other processor records what to
// wait for.
func (it *interp) execPostBcast(f *frame, st *ast.PostBcast) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("postbcast: unknown array %s", st.Array)
	}
	bounds, empty, err := it.secBounds(f, st.Sec)
	if err != nil {
		return err
	}
	if empty {
		return nil
	}
	root, err := it.evalInt(f, st.Root)
	if err != nil {
		return err
	}
	if root < 0 || root >= it.nproc {
		return fmt.Errorf("postbcast %s: bad root %d", st.Array, root)
	}
	offs := enumerate(arr, bounds)
	var data []float64
	if it.p == root {
		data = it.proc.Scratch(len(offs))
		for i, o := range offs {
			data[i] = arr.Data[o]
		}
	}
	if it.posted == nil {
		it.posted = map[int]*postedOp{}
	}
	it.posted[st.Tag] = &postedOp{
		h: it.proc.PostBcast(root, data), arr: arr, offs: offs, isRoot: it.p == root,
	}
	return nil
}

// execWaitBcast completes the PostBcast with the same tag.
func (it *interp) execWaitBcast(f *frame, st *ast.WaitBcast) error {
	po := it.posted[st.Tag]
	if po == nil {
		return nil
	}
	delete(it.posted, st.Tag)
	data := it.proc.WaitBcast(po.h)
	if po.isRoot {
		return nil // the root supplied the data; its copy is current
	}
	if len(data) != len(po.offs) {
		return fmt.Errorf("waitbcast %s: size mismatch %d != %d", st.Array, len(data), len(po.offs))
	}
	for i, o := range po.offs {
		po.arr.Data[o] = data[i]
	}
	return nil
}

func (it *interp) execRemap(f *frame, st *ast.Remap) error {
	arr := f.arrays[st.Array]
	if arr == nil {
		return fmt.Errorf("remap: unknown array %s", st.Array)
	}
	sizes := make([]int, len(arr.Lo))
	for d := range sizes {
		sizes[d] = arr.Hi[d] - arr.Lo[d] + 1
	}
	newDist, err := decomp.NewDist(decomp.NewDecomp(st.To...), sizes, it.nproc)
	if err != nil {
		return fmt.Errorf("remap %s: %v", st.Array, err)
	}
	old := arr.Dist
	if st.InPlace || old == nil || old.IsReplicated() {
		arr.Dist = newDist
		return nil
	}
	words := old.RemapWords(newDist)
	if words > 0 {
		// physical remap: exchange so every processor's copy is fully
		// valid (simulated as a full exchange of the owned regions,
		// charged at the true remap volume)
		fullSec := make([][2]int, len(arr.Lo))
		for d := range fullSec {
			fullSec[d] = [2]int{arr.Lo[d], arr.Hi[d]}
		}
		parts := it.ownerParts(arr, fullSec)
		var data []float64
		if len(parts[it.p]) > 0 {
			data = it.proc.Scratch(len(parts[it.p]))
			for i, o := range parts[it.p] {
				data[i] = arr.Data[o]
			}
		}
		for q := 0; q < it.nproc; q++ {
			if q == it.p || len(parts[it.p]) == 0 {
				continue
			}
			it.proc.Send(q, data)
		}
		for q := 0; q < it.nproc; q++ {
			if q == it.p || len(parts[q]) == 0 {
				continue
			}
			data := it.proc.Recv(q)
			for i, o := range parts[q] {
				arr.Data[o] = data[i]
			}
		}
		it.proc.CountRemap(words/it.nproc, it.nproc-1)
	}
	arr.Dist = newDist
	return nil
}
