package spmd

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"fortd/internal/decomp"
	"fortd/internal/machine"
)

// TestRunJoinsAllErrors: when one processor's node program fails and a
// peer is blocked waiting on it, Run reports both — the failing pid's
// interpreter error and the peer's abort — not just the lowest pid's.
func TestRunJoinsAllErrors(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM P
      REAL X(4)
      my$p = myproc()
      if (my$p .EQ. 0) then
        X(99) = 1.0
      endif
      if (my$p .EQ. 1) then
        recv X(1:2) from 0
      endif
      END
`)
	_, err := Run(prog, machine.DefaultConfig(2), Options{})
	if err == nil {
		t.Fatal("run with a failing processor returned nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "p0:") || !strings.Contains(msg, "out of bounds") {
		t.Errorf("error does not name p0's failure: %v", msg)
	}
	var ae *machine.AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("error does not join p1's abort: %v", msg)
	}
	if ae.PID != 1 || ae.Origin != 0 {
		t.Errorf("abort = %+v, want p1 aborted by p0", ae)
	}
}

// TestMismatchedRecvDeadlock: two processors each receiving from the
// other with nobody sending is reported as a structured deadlock with
// source attribution, within the watchdog's detection window.
func TestMismatchedRecvDeadlock(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM MISMATCH
      REAL a(8)
      my$p = myproc()
      if (my$p .EQ. 0) then
        recv a(1:4) from 1
      endif
      if (my$p .EQ. 1) then
        recv a(5:8) from 0
      endif
      END
`)
	_, err := Run(prog, machine.DefaultConfig(2), Options{})
	var dl *machine.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want *DeadlockError", err)
	}
	if dl.Deadline || dl.Live != 2 || len(dl.Blocked) != 2 {
		t.Fatalf("report = %+v, want watchdog detection with 2 blocked", dl)
	}
	for i, want := range []struct {
		pid, peer int
	}{{0, 1}, {1, 0}} {
		b := dl.Blocked[i]
		if b.PID != want.pid || b.Peer != want.peer || b.Op != "recv" {
			t.Errorf("Blocked[%d] = %+v, want p%d recv from p%d", i, b, want.pid, want.peer)
		}
		if b.Proc != "MISMATCH" || b.Line == 0 {
			t.Errorf("Blocked[%d] unattributed: %+v", i, b)
		}
	}
	// the rendered report is the diagnostic the CLI prints
	if msg := err.Error(); !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "MISMATCH") {
		t.Errorf("report text lacks attribution:\n%s", msg)
	}
}

// TestDeadlineOption: Options.Deadline bounds a run that makes no
// progress, reporting deadline expiry.
func TestDeadlineOption(t *testing.T) {
	prog := parseProg(t, `
      PROGRAM SPIN
      REAL a(4)
      my$p = myproc()
      if (my$p .EQ. 1) then
        recv a(1:4) from 0
      endif
      END
`)
	// p1 waits on a send p0 never issues. NoWatchdog disables all-blocked
	// detection so the test exercises the deadline path specifically.
	cfg := machine.DefaultConfig(2)
	cfg.NoWatchdog = true
	cfg.Deadline = 50 * time.Millisecond
	_, err := Run(prog, cfg, Options{})
	var dl *machine.DeadlockError
	if !errors.As(err, &dl) || !dl.Deadline {
		t.Fatalf("Run = %v, want deadline *DeadlockError", err)
	}
}

// TestCollectivesSmallP runs broadcast, allgather and global reduce at
// P=1, 3 and 6 and checks the results against the closed form.
func TestCollectivesSmallP(t *testing.T) {
	for _, P := range []int{1, 3, 6} {
		P := P
		t.Run(fmt.Sprintf("P=%d", P), func(t *testing.T) {
			n := 2 * P
			src := fmt.Sprintf(`
      PROGRAM COLL
      REAL X(%d), Y(%d), B(2)
      my$p = myproc()
      do i = my$p * 2 + 1, my$p * 2 + 2
        X(i) = i
      enddo
      allgather X(1:%d)
      s = 0.0
      do i = 1, %d
        s = s + X(i)
      enddo
      globalsum s
      if (my$p .EQ. 0) then
        B(1) = 41.0
        B(2) = 43.0
      endif
      broadcast B(1:2) from 0
      do i = my$p * 2 + 1, my$p * 2 + 2
        Y(i) = s + B(1) + B(2)
      enddo
      END
`, n, n, n, n)
			prog := parseProg(t, src)
			xd, err := decomp.NewDist(decomp.NewDecomp(decomp.Block), []int{n}, P)
			if err != nil {
				t.Fatal(err)
			}
			yd, err := decomp.NewDist(decomp.NewDecomp(decomp.Block), []int{n}, P)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(prog, machine.DefaultConfig(P), Options{
				Dists: map[string]*decomp.Dist{"X": xd, "Y": yd},
			})
			if err != nil {
				t.Fatal(err)
			}
			// every proc's local sum is 1+..+n; globalsum multiplies by P
			sum := float64(n*(n+1)/2) * float64(P)
			want := sum + 41 + 43
			for i := 0; i < n; i++ {
				if got := res.Arrays["Y"][i]; got != want {
					t.Errorf("Y[%d] = %v, want %v", i, got, want)
				}
			}
			if P == 1 && res.Stats.Messages != 0 {
				t.Errorf("P=1 collectives sent %d messages", res.Stats.Messages)
			}
		})
	}
}
