package cfg

import (
	"testing"

	"fortd/internal/ast"
	"fortd/internal/parser"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	u, err := parser.ParseProcedure(src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(u)
}

func TestStraightLine(t *testing.T) {
	g := build(t, `
      PROGRAM P
      x = 1
      y = 2
      END
`)
	// entry → x → y → exit
	if len(g.Entry.Succs) != 1 {
		t.Fatalf("entry succs = %d", len(g.Entry.Succs))
	}
	n := g.Entry.Succs[0]
	if _, ok := n.Stmt.(*ast.Assign); !ok {
		t.Fatalf("first node = %v", n.Kind)
	}
	if len(g.Exit.Preds) != 1 {
		t.Errorf("exit preds = %d", len(g.Exit.Preds))
	}
}

func TestLoopBackEdge(t *testing.T) {
	g := build(t, `
      PROGRAM P
      do i = 1,10
        x = x + 1
      enddo
      END
`)
	var head *Node
	for _, n := range g.Nodes {
		if n.Kind == KindLoopHead {
			head = n
		}
	}
	if head == nil {
		t.Fatal("no loop head")
	}
	// head has two successors (body, after) and two predecessors
	// (entry-side, back edge)
	if len(head.Succs) != 2 {
		t.Errorf("head succs = %d", len(head.Succs))
	}
	if len(head.Preds) != 2 {
		t.Errorf("head preds = %d", len(head.Preds))
	}
}

func TestIfJoin(t *testing.T) {
	g := build(t, `
      PROGRAM P
      if (x .gt. 0) then
        y = 1
      else
        y = 2
      endif
      z = 3
      END
`)
	var join *Node
	for _, n := range g.Nodes {
		if n.Kind == KindJoin && len(n.Preds) == 2 {
			join = n
		}
	}
	if join == nil {
		t.Fatalf("no 2-pred join node:\n%s", g.String())
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, `
      PROGRAM P
      if (x .gt. 0) then
        y = 1
      endif
      END
`)
	// the condition node must have 2 successors (then, fallthrough)
	var cond *Node
	for _, n := range g.Nodes {
		if _, ok := n.Stmt.(*ast.If); ok {
			cond = n
		}
	}
	if cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("cond = %+v\n%s", cond, g.String())
	}
}

func TestReturnEdgesToExit(t *testing.T) {
	g := build(t, `
      SUBROUTINE S(x)
      if (x .gt. 0) then
        return
      endif
      x = 1
      END
`)
	if len(g.Exit.Preds) != 2 {
		t.Errorf("exit preds = %d (return + fallthrough)\n%s", len(g.Exit.Preds), g.String())
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	g := build(t, `
      PROGRAM P
      do i = 1,10
        if (x .gt. 0) then
          y = 1
        endif
      enddo
      END
`)
	order := g.ReversePostorder()
	if order[0] != g.Entry {
		t.Error("RPO must start at entry")
	}
	// every reachable node appears exactly once
	seen := map[int]bool{}
	for _, n := range order {
		if seen[n.ID] {
			t.Errorf("node %d repeated", n.ID)
		}
		seen[n.ID] = true
	}
}
