// Package cfg builds per-procedure control-flow graphs for the
// structured statement forms of the Fortran subset (straight-line code,
// DO loops, block and logical IFs). The graphs feed the iterative
// data-flow solver in package dataflow, which underlies the
// flow-sensitive decomposition analyses of §5.2 and §6.1.
package cfg

import (
	"fmt"
	"strings"

	"fortd/internal/ast"
)

// Node is one control-flow node. Stmt is nil for the synthetic entry,
// exit and join nodes.
type Node struct {
	ID    int
	Stmt  ast.Stmt
	Kind  NodeKind
	Succs []*Node
	Preds []*Node
	// Loop points at the Do statement whose header this node is.
	Loop *ast.Do
}

// NodeKind classifies synthetic nodes.
type NodeKind int

const (
	KindStmt NodeKind = iota
	KindEntry
	KindExit
	KindJoin
	KindLoopHead
)

func (k NodeKind) String() string {
	switch k {
	case KindStmt:
		return "stmt"
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindJoin:
		return "join"
	case KindLoopHead:
		return "loop"
	}
	return "?"
}

// Graph is the control-flow graph of one procedure.
type Graph struct {
	Proc  *ast.Procedure
	Entry *Node
	Exit  *Node
	Nodes []*Node
}

// Build constructs the CFG for proc.
func Build(proc *ast.Procedure) *Graph {
	g := &Graph{Proc: proc}
	g.Entry = g.newNode(nil, KindEntry)
	g.Exit = g.newNode(nil, KindExit)
	last := g.buildSeq(proc.Body, g.Entry)
	if last != nil {
		g.connect(last, g.Exit)
	}
	return g
}

func (g *Graph) newNode(s ast.Stmt, kind NodeKind) *Node {
	n := &Node{ID: len(g.Nodes), Stmt: s, Kind: kind}
	g.Nodes = append(g.Nodes, n)
	return n
}

func (g *Graph) connect(from, to *Node) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// buildSeq threads the statements of body after prev, returning the
// node control falls out of (nil if control cannot reach the end, e.g.
// after RETURN).
func (g *Graph) buildSeq(body []ast.Stmt, prev *Node) *Node {
	cur := prev
	for _, s := range body {
		if cur == nil {
			// unreachable code after RETURN: still build nodes, but
			// leave them disconnected from the main flow
			cur = g.newNode(nil, KindJoin)
		}
		switch st := s.(type) {
		case *ast.Do:
			head := g.newNode(st, KindLoopHead)
			head.Loop = st
			g.connect(cur, head)
			bodyEnd := g.buildSeq(st.Body, head)
			if bodyEnd != nil {
				g.connect(bodyEnd, head) // back edge
			}
			after := g.newNode(nil, KindJoin)
			g.connect(head, after)
			cur = after
		case *ast.If:
			cond := g.newNode(st, KindStmt)
			g.connect(cur, cond)
			join := g.newNode(nil, KindJoin)
			thenEnd := g.buildSeq(st.Then, cond)
			if thenEnd != nil {
				g.connect(thenEnd, join)
			}
			if len(st.Else) > 0 {
				elseEnd := g.buildSeq(st.Else, cond)
				if elseEnd != nil {
					g.connect(elseEnd, join)
				}
			} else {
				g.connect(cond, join)
			}
			if len(join.Preds) == 0 {
				cur = nil
				continue
			}
			cur = join
		case *ast.Return:
			n := g.newNode(st, KindStmt)
			g.connect(cur, n)
			g.connect(n, g.Exit)
			cur = nil
		default:
			n := g.newNode(st, KindStmt)
			g.connect(cur, n)
			cur = n
		}
	}
	return cur
}

// ReversePostorder returns the nodes in reverse postorder from the
// entry, the canonical iteration order for forward data-flow problems.
func (g *Graph) ReversePostorder() []*Node {
	seen := make([]bool, len(g.Nodes))
	var order []*Node
	var dfs func(n *Node)
	dfs = func(n *Node) {
		seen[n.ID] = true
		for _, s := range n.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		order = append(order, n)
	}
	dfs(g.Entry)
	// reverse
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, n := range g.Nodes {
		label := n.Kind.String()
		if n.Stmt != nil {
			label = fmt.Sprintf("%T", n.Stmt)
		}
		succ := make([]string, len(n.Succs))
		for i, s := range n.Succs {
			succ[i] = fmt.Sprintf("%d", s.ID)
		}
		fmt.Fprintf(&b, "%3d %-14s -> %s\n", n.ID, label, strings.Join(succ, ","))
	}
	return b.String()
}
