package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTop renders the n highest-cost sites as a fixed-width table,
// matching the analyze hotspot table's shape with per-run means (so a
// merged corpus reads like one run). n <= 0 prints every site.
func (p *Profile) WriteTop(w io.Writer, n int) error {
	runs := float64(p.Runs)
	if runs <= 0 {
		runs = 1
	}
	if _, err := fmt.Fprintf(w, "profile: %s workload=%s P=%d runs=%d backend=%s\n",
		short(p.Meta.ProgramHash), p.Meta.Workload, p.Meta.P, p.Runs, p.Meta.Backend); err != nil {
		return err
	}
	fmt.Fprintf(w, "parallel time %.1fµs/run  msgs=%.0f/run  words=%.0f/run  blocked-share=%.3f  imbalance=%.3f\n",
		p.Total.Time/runs, float64(p.Total.Msgs)/runs, float64(p.Total.Words)/runs,
		p.BlockedShare(), p.Imbalance())
	fmt.Fprintf(w, "  %-22s %-10s %9s %11s %13s %14s %12s %7s\n",
		"site", "op", "msgs/run", "words/run", "send(µs/run)", "blocked(µs/run)", "cost(µs/run)", "%crit")
	for _, s := range p.Top(n) {
		fmt.Fprintf(w, "  %-22s %-10s %9.0f %11.0f %13.1f %14.1f %12.1f %6.1f%%\n",
			s.Site(), s.Op, float64(s.Msgs)/runs, float64(s.Words)/runs,
			s.Send/runs, s.Blocked/runs, s.Cost()/runs, 100*s.CPShare)
	}
	return nil
}

// short abbreviates a content hash for headers.
func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// WriteAnnotated interleaves the profile's measured per-line cost with
// the Fortran source, in the explain listing's annotation style: each
// source line is followed by one "!prof" comment per site the profile
// attributes to it, and sites with no line (or whose procedure the
// source does not contain) are summarized in a header block. Costs are
// per-run means.
func (p *Profile) WriteAnnotated(w io.Writer, src string) error {
	runs := float64(p.Runs)
	if runs <= 0 {
		runs = 1
	}
	byLine := map[int][]SiteRow{}
	var header []SiteRow
	for _, s := range p.Sites {
		if s.Line <= 0 {
			header = append(header, s)
			continue
		}
		byLine[s.Line] = append(byLine[s.Line], s)
	}
	for _, rows := range byLine {
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Cost() != rows[j].Cost() {
				return rows[i].Cost() > rows[j].Cost()
			}
			return siteKeyOf(rows[i]).less(siteKeyOf(rows[j]))
		})
	}

	bw := bufio.NewWriter(w)
	for _, s := range header {
		fmt.Fprintf(bw, "!prof %s %s: %.0f msgs  %.0f words  %.1fµs/run\n",
			s.Site(), s.Op, float64(s.Msgs)/runs, float64(s.Words)/runs, s.Cost()/runs)
	}
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	for i, line := range lines {
		fmt.Fprintf(bw, "%4d  %s\n", i+1, line)
		for _, s := range byLine[i+1] {
			fmt.Fprintf(bw, "      !prof %s %s: %.0f msgs  %.0f words  send %.1fµs  blocked %.1fµs  (%.1f%% crit)\n",
				s.Proc, s.Op, float64(s.Msgs)/runs, float64(s.Words)/runs,
				s.Send/runs, s.Blocked/runs, 100*s.CPShare)
		}
	}
	return bw.Flush()
}
