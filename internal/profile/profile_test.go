package profile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fortd/internal/trace"
)

// sampleEvents builds a small deterministic traced run: two attributed
// sites, one unattributed, two processors.
func sampleEvents() []trace.Event {
	return []trace.Event{
		{Kind: trace.KindSend, Name: "send", Proc: "MAIN", Line: 3, PID: 0, Src: 0, Dst: 1, Words: 8, Start: 0, Dur: 10, Seq: 1},
		{Kind: trace.KindSend, Name: "send", Proc: "MAIN", Line: 3, PID: 0, Src: 0, Dst: 1, Words: 8, Start: 10, Dur: 10, Seq: 2},
		{Kind: trace.KindRecv, Name: "recv", Proc: "SUB", Line: 7, PID: 1, Src: 0, Dst: 1, Words: 8, Start: 0, Dur: 12, Seq: 1},
		{Kind: trace.KindSend, Name: "bcast", PID: 1, Src: 1, Dst: 0, Words: 2, Start: 20, Dur: 4, Seq: 2},
		{Kind: trace.KindProcSummary, PID: 0, Dur: 40, Flops: 30, Sent: 2},
		{Kind: trace.KindProcSummary, PID: 1, Dur: 44, Flops: 20, Sent: 1, Recvd: 2, Wait: 12},
	}
}

func sampleProfile(t *testing.T) *Profile {
	t.Helper()
	p := FromEvents(sampleEvents(), Meta{ProgramHash: "abc", Workload: "sample", P: 2, Backend: "des"})
	if p == nil {
		t.Fatal("FromEvents returned nil")
	}
	return p
}

func mustMarshal(t *testing.T, p *Profile) []byte {
	t.Helper()
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestFromEventsShape(t *testing.T) {
	p := sampleProfile(t)
	if p.Schema != SchemaVersion || p.Runs != 1 {
		t.Errorf("schema=%d runs=%d", p.Schema, p.Runs)
	}
	if p.Total.Msgs != 3 || p.Total.Words != 18 {
		t.Errorf("total = %+v", p.Total)
	}
	if len(p.Procs) != 2 || len(p.Histogram) == 0 {
		t.Errorf("procs=%d hist=%d", len(p.Procs), len(p.Histogram))
	}
	// three sites: MAIN:3 send, SUB:7 recv, (unattributed p1) bcast
	if len(p.Sites) != 3 {
		t.Fatalf("sites = %+v", p.Sites)
	}
	var un *SiteRow
	for i := range p.Sites {
		if p.Sites[i].Proc == "" {
			un = &p.Sites[i]
		}
	}
	if un == nil || un.PID != 1 || un.Site() != "(unattributed p1)" {
		t.Errorf("unattributed row = %+v", un)
	}
	if bs := p.BlockedShare(); bs <= 0 || bs >= 1 {
		t.Errorf("blocked share = %v", bs)
	}
	if im := p.Imbalance(); im < 1 {
		t.Errorf("imbalance = %v", im)
	}
}

// TestMarshalDeterministic: equal inputs yield byte-identical
// artifacts with a stable content hash, and the bytes round-trip
// through Decode.
func TestMarshalDeterministic(t *testing.T) {
	a, b := sampleProfile(t), sampleProfile(t)
	ba, bb := mustMarshal(t, a), mustMarshal(t, b)
	if !bytes.Equal(ba, bb) {
		t.Fatalf("equal runs marshal differently:\n%s\n---\n%s", ba, bb)
	}
	ida, _ := a.ID()
	idb, _ := b.ID()
	if ida != idb || len(ida) != 64 {
		t.Errorf("ids %q vs %q", ida, idb)
	}
	back, err := Decode(ba)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustMarshal(t, back), ba) {
		t.Error("decode/marshal round trip changed bytes")
	}
}

func TestDecodeRejectsUnknownSchema(t *testing.T) {
	buf := bytes.Replace(mustMarshal(t, sampleProfile(t)),
		[]byte(`"schema": 1`), []byte(`"schema": 99`), 1)
	if _, err := Decode(buf); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("err = %v, want schema rejection", err)
	}
}

// TestMergeIdentities pins the Merge algebra: empty inputs are the
// identity element and argument order never changes the bytes.
func TestMergeIdentities(t *testing.T) {
	p := sampleProfile(t)
	want := mustMarshal(t, p)

	if got := Merge(); got != nil {
		t.Errorf("Merge() = %+v, want nil", got)
	}
	empty := &Profile{Schema: SchemaVersion}
	for _, m := range []*Profile{Merge(p), Merge(p, nil), Merge(p, empty), Merge(empty, p, nil)} {
		if !bytes.Equal(mustMarshal(t, m), want) {
			t.Errorf("merge with identity changed bytes:\n%s", mustMarshal(t, m))
		}
	}

	// order independence across genuinely different profiles
	q := FromEvents(sampleEvents()[:4], Meta{ProgramHash: "abc", Workload: "sample", P: 2, Backend: "des"})
	r := FromEvents(sampleEvents()[2:], Meta{ProgramHash: "xyz", Workload: "other", P: 4, Backend: "goroutine"})
	ab := mustMarshal(t, Merge(p, q, r))
	ba := mustMarshal(t, Merge(r, p, q))
	if !bytes.Equal(ab, ba) {
		t.Fatalf("merge is order-dependent:\n%s\n---\n%s", ab, ba)
	}
}

func TestMergeWeightsAndMeta(t *testing.T) {
	p := sampleProfile(t)
	m := Merge(p, p, p)
	if m.Runs != 3 {
		t.Errorf("runs = %d", m.Runs)
	}
	if m.Total.Msgs != 3*p.Total.Msgs || m.Total.Blocked != 3*p.Total.Blocked {
		t.Errorf("totals did not triple: %+v", m.Total)
	}
	// intensive metrics are invariant under self-merge
	if m.BlockedShare() != p.BlockedShare() {
		t.Errorf("blocked share %v != %v", m.BlockedShare(), p.BlockedShare())
	}
	// CPShare is a weighted mean; self-merge is equal up to one ulp of
	// the (x+x+x)/3 fold
	if d := m.Sites[0].CPShare - p.Sites[0].CPShare; d > 1e-12 || d < -1e-12 {
		t.Errorf("cp share %v != %v", m.Sites[0].CPShare, p.Sites[0].CPShare)
	}
	if m.Meta != p.Meta {
		t.Errorf("agreeing meta was not kept: %+v", m.Meta)
	}

	other := sampleProfile(t)
	other.Meta = Meta{ProgramHash: "zzz", Workload: "w2", P: 8, Backend: "goroutine", FaultSeed: 7}
	mixed := Merge(p, other).Meta
	want := Meta{ProgramHash: "mixed", Workload: "mixed", P: 0, Backend: "mixed", FaultSeed: 0}
	if mixed != want {
		t.Errorf("mixed meta = %+v", mixed)
	}
}

// TestDiffFlagsInjectedRegression: inflating one site's blocked time by
// 20% trips the default 10% threshold at that site and nowhere else.
func TestDiffFlagsInjectedRegression(t *testing.T) {
	old := sampleProfile(t)
	new := sampleProfile(t)
	for i := range new.Sites {
		if new.Sites[i].Proc == "SUB" {
			new.Sites[i].Blocked *= 1.20
		}
	}
	new.Total.Blocked *= 1.20

	c := Diff(old, new, DefaultThresholds())
	if !c.Regressed() {
		t.Fatal("20% blocked regression not flagged")
	}
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Proc != "SUB" || regs[0].Line != 7 {
		t.Fatalf("regressions = %+v", regs)
	}
	var blocked *MetricDelta
	for i := range regs[0].Metrics {
		if regs[0].Metrics[i].Name == "blocked_us" {
			blocked = &regs[0].Metrics[i]
		}
	}
	if blocked == nil || blocked.Class != "regression" || blocked.Pct < 0.19 || blocked.Pct > 0.21 {
		t.Errorf("blocked delta = %+v", blocked)
	}
	if c.BlockedShare.Class != "regression" {
		t.Errorf("machine-wide blocked share = %+v", c.BlockedShare)
	}

	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SUB:7") || !strings.Contains(buf.String(), "regression") {
		t.Errorf("rendered diff lacks the regression:\n%s", buf.String())
	}

	// identical profiles: clean
	if c := Diff(old, sampleProfile(t), DefaultThresholds()); c.Regressed() {
		t.Errorf("self-diff regressed: %+v", c.Regressions())
	}
}

func TestDiffNewAndGoneSites(t *testing.T) {
	old := sampleProfile(t)
	new := sampleProfile(t)
	new.Sites = new.Sites[:len(new.Sites)-1]
	c := Diff(old, new, DefaultThresholds())
	if len(c.GoneSites) != 1 || len(c.NewSites) != 0 {
		t.Errorf("gone=%+v new=%+v", c.GoneSites, c.NewSites)
	}
	c = Diff(new, old, DefaultThresholds())
	if len(c.NewSites) != 1 || len(c.GoneSites) != 0 {
		t.Errorf("gone=%+v new=%+v", c.GoneSites, c.NewSites)
	}
}

// TestDirStore: content-addressed round trip, dedup, listing, and the
// restart story (a second store over the same directory serves the
// artifact).
func TestDirStore(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := sampleProfile(t)
	id, err := st.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	if id2, _ := st.Put(p); id2 != id {
		t.Errorf("re-put id %q != %q", id2, id)
	}
	got, err := st.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustMarshal(t, got), mustMarshal(t, p)) {
		t.Error("stored profile round trip changed bytes")
	}
	if _, err := st.Get(strings.Repeat("0", 64)); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing id err = %v", err)
	}
	if _, err := st.Get("../escape"); !errors.Is(err, ErrNotFound) {
		t.Errorf("traversal id err = %v", err)
	}

	// corrupt and foreign files are invisible to List
	os.WriteFile(filepath.Join(dir, strings.Repeat("f", 64)+".json"), []byte("{"), 0644)
	os.WriteFile(filepath.Join(dir, "README.json"), []byte("{}"), 0644)

	// restart: a fresh store over the same directory still serves it
	st2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Get(id); err != nil {
		t.Errorf("restarted store lost the profile: %v", err)
	}
	list, err := st2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != id || list[0].Meta.Workload != "sample" || list[0].Runs != 1 {
		t.Errorf("list = %+v", list)
	}
}

func TestMemStore(t *testing.T) {
	st := NewMemStore()
	p := sampleProfile(t)
	id, err := st.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := st.Get(id); err != nil || got != p {
		t.Errorf("get = %v, %v", got, err)
	}
	if _, err := st.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing err = %v", err)
	}
	list, _ := st.List()
	if len(list) != 1 || list[0].ID != id {
		t.Errorf("list = %+v", list)
	}
}

func TestWritersSmoke(t *testing.T) {
	p := sampleProfile(t)
	var buf bytes.Buffer
	if err := p.WriteTop(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "blocked-share=") || !strings.Contains(out, "SUB:7") {
		t.Errorf("top output:\n%s", out)
	}
	// Top(2) drops the cheapest of the three sites
	if strings.Count(out, "\n") < 4 {
		t.Errorf("top output too short:\n%s", out)
	}

	src := "      PROGRAM MAIN\n      CALL SUB\n      X = 1\n"
	buf.Reset()
	if err := p.WriteAnnotated(&buf, src); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "!prof MAIN send") {
		t.Errorf("annotated output lacks the MAIN:3 site:\n%s", out)
	}
	if !strings.Contains(out, "!prof (unattributed p1) bcast") {
		t.Errorf("annotated output lacks the header block:\n%s", out)
	}
}

// TestZeroDurationShares pins the degenerate-run contract: a run whose
// processors never advance their clocks (zero duration, zero blocking)
// must report blocked share 0 and imbalance 0 — never NaN or Inf from
// the 0/0 ratios — and the serialized artifact must stay finite, so
// downstream share-based gates (fdprof diff, bench snapshots) compare
// cleanly against it.
func TestZeroDurationShares(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindProcSummary, PID: 0, Dur: 0},
		{Kind: trace.KindProcSummary, PID: 1, Dur: 0},
	}
	p := FromEvents(events, Meta{ProgramHash: "zero", Workload: "idle", P: 2, Backend: "des"})
	if p == nil {
		t.Fatal("FromEvents returned nil for a summarized zero-duration run")
	}
	if bs := p.BlockedShare(); bs != 0 {
		t.Errorf("blocked share = %v, want exactly 0", bs)
	}
	if im := p.Imbalance(); im != 0 {
		t.Errorf("imbalance = %v, want exactly 0", im)
	}
	buf := mustMarshal(t, p)
	for _, bad := range []string{"NaN", "Inf"} {
		if bytes.Contains(buf, []byte(bad)) {
			t.Errorf("artifact contains %q:\n%s", bad, buf)
		}
	}
	// a diff against itself classifies nothing and stays finite
	c := Diff(p, p, DefaultThresholds())
	if c.BlockedShare.Pct != 0 || c.BlockedShare.Class != "" {
		t.Errorf("self-diff blocked share = %+v", c.BlockedShare)
	}

	// nil and empty profiles answer 0 as well
	var nilP *Profile
	if nilP.BlockedShare() != 0 || nilP.Imbalance() != 0 {
		t.Error("nil profile shares not 0")
	}
}
