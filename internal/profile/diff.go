package profile

import (
	"fmt"
	"io"
	"sort"
)

// Thresholds are the per-metric relative deltas beyond which a site's
// change is classified a regression (worse) or improvement (better).
// A zero threshold means any increase counts; a negative threshold
// disables the metric.
type Thresholds struct {
	// Msgs and Words gate message count and communication volume.
	Msgs  float64
	Words float64
	// Send and Blocked gate sender-side injection time and
	// receiver-side stall time.
	Send    float64
	Blocked float64
}

// DefaultThresholds gates times at 10% (virtual time is deterministic
// but merged corpora mix runs) and volumes at any change (counts are
// exact, so any drift is a real behavior change).
func DefaultThresholds() Thresholds {
	return Thresholds{Msgs: 0, Words: 0, Send: 0.10, Blocked: 0.10}
}

// MetricDelta is one metric's old/new per-run means and classification.
type MetricDelta struct {
	Name string  `json:"name"`
	Old  float64 `json:"old"`
	New  float64 `json:"new"`
	// Pct is the relative change (New-Old)/Old; ±1 when Old is 0 and
	// New isn't (an appearing/vanishing cost has no finite ratio).
	Pct float64 `json:"pct"`
	// Class is "regression", "improvement" or "" (within threshold).
	Class string `json:"class,omitempty"`
}

// SiteDelta is one site's comparison between two profiles.
type SiteDelta struct {
	Proc    string        `json:"proc"`
	Line    int           `json:"line"`
	PID     int           `json:"pid"`
	Op      string        `json:"op"`
	Metrics []MetricDelta `json:"metrics"`
}

// Site renders the delta's site label.
func (d SiteDelta) Site() string {
	return SiteRow{Proc: d.Proc, Line: d.Line, PID: d.PID, Op: d.Op}.Site()
}

// Regressed reports whether any metric regressed at this site.
func (d SiteDelta) Regressed() bool {
	for _, m := range d.Metrics {
		if m.Class == "regression" {
			return true
		}
	}
	return false
}

// Comparison is the result of diffing two profiles. Site lists are in
// canonical key order.
type Comparison struct {
	OldMeta Meta `json:"old_meta"`
	NewMeta Meta `json:"new_meta"`
	// Deltas holds sites present in both profiles with at least one
	// classified metric; NewSites and GoneSites the sites only one
	// profile has.
	Deltas    []SiteDelta `json:"deltas"`
	NewSites  []SiteRow   `json:"new_sites"`
	GoneSites []SiteRow   `json:"gone_sites"`
	// BlockedShare compares the machine-wide blocked fraction.
	BlockedShare MetricDelta `json:"blocked_share"`
}

// Regressions returns every site delta carrying a regression; a
// machine-wide blocked-share regression is reported by the
// BlockedShare field's Class.
func (c *Comparison) Regressions() []SiteDelta {
	var out []SiteDelta
	for _, d := range c.Deltas {
		if d.Regressed() {
			out = append(out, d)
		}
	}
	return out
}

// Regressed reports whether the comparison found any regression,
// per-site or machine-wide.
func (c *Comparison) Regressed() bool {
	return len(c.Regressions()) > 0 || c.BlockedShare.Class == "regression"
}

// Diff compares two profiles site by site. Extensive metrics are
// normalized to per-run means first, so profiles aggregating different
// run counts compare fairly.
func Diff(old, new *Profile, t Thresholds) *Comparison {
	c := &Comparison{OldMeta: old.Meta, NewMeta: new.Meta}
	oldSites := map[siteKey]SiteRow{}
	for _, s := range old.Sites {
		oldSites[siteKeyOf(s)] = s
	}
	newSites := map[siteKey]SiteRow{}
	for _, s := range new.Sites {
		newSites[siteKeyOf(s)] = s
	}
	for _, ns := range new.Sites {
		os, ok := oldSites[siteKeyOf(ns)]
		if !ok {
			c.NewSites = append(c.NewSites, ns)
			continue
		}
		d := SiteDelta{Proc: ns.Proc, Line: ns.Line, PID: ns.PID, Op: ns.Op}
		or, nr := float64(old.Runs), float64(new.Runs)
		d.Metrics = append(d.Metrics,
			classify("msgs", float64(os.Msgs)/or, float64(ns.Msgs)/nr, t.Msgs),
			classify("words", float64(os.Words)/or, float64(ns.Words)/nr, t.Words),
			classify("send_us", os.Send/or, ns.Send/nr, t.Send),
			classify("blocked_us", os.Blocked/or, ns.Blocked/nr, t.Blocked),
		)
		c.Deltas = append(c.Deltas, d)
	}
	for _, os := range old.Sites {
		if _, ok := newSites[siteKeyOf(os)]; !ok {
			c.GoneSites = append(c.GoneSites, os)
		}
	}
	sort.Slice(c.Deltas, func(i, j int) bool {
		return siteKey{c.Deltas[i].Proc, c.Deltas[i].Line, c.Deltas[i].PID, c.Deltas[i].Op}.
			less(siteKey{c.Deltas[j].Proc, c.Deltas[j].Line, c.Deltas[j].PID, c.Deltas[j].Op})
	})
	c.BlockedShare = classify("blocked_share", old.BlockedShare(), new.BlockedShare(), t.Blocked)
	return c
}

// classify builds one metric delta. A negative threshold disables
// classification.
func classify(name string, old, new, threshold float64) MetricDelta {
	m := MetricDelta{Name: name, Old: old, New: new}
	switch {
	case old == new:
		return m
	case old == 0:
		if new > 0 {
			m.Pct = 1
		} else {
			m.Pct = -1
		}
	default:
		m.Pct = (new - old) / old
	}
	if threshold < 0 {
		return m
	}
	// lower is better for every profile metric
	if m.Pct > threshold {
		m.Class = "regression"
	} else if m.Pct < -threshold {
		m.Class = "improvement"
	}
	return m
}

// WriteText renders the comparison as a fixed-width table: one row per
// classified metric, plus appearing/vanishing sites and the
// machine-wide blocked share.
func (c *Comparison) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-22s %-10s %-13s %14s %14s %9s\n",
		"site", "op", "metric", "old/run", "new/run", "delta"); err != nil {
		return err
	}
	row := func(site, op string, m MetricDelta) {
		class := m.Class
		if class == "" {
			class = "ok"
		}
		fmt.Fprintf(w, "%-22s %-10s %-13s %14.2f %14.2f %+8.1f%%  %s\n",
			site, op, m.Name, m.Old, m.New, 100*m.Pct, class)
	}
	for _, d := range c.Deltas {
		for _, m := range d.Metrics {
			if m.Class != "" {
				row(d.Site(), d.Op, m)
			}
		}
	}
	for _, s := range c.NewSites {
		fmt.Fprintf(w, "%-22s %-10s new site: %d msgs, %.1fµs cost/run\n",
			s.Site(), s.Op, s.Msgs, s.Cost())
	}
	for _, s := range c.GoneSites {
		fmt.Fprintf(w, "%-22s %-10s site gone (was %d msgs, %.1fµs cost)\n",
			s.Site(), s.Op, s.Msgs, s.Cost())
	}
	row("(machine-wide)", "-", c.BlockedShare)
	return nil
}
