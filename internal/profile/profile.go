// Package profile turns a run's transient trace analytics into a
// durable, versioned artifact: the measured truth the interprocedural
// compiler's static estimates (§6–§8) can be checked against, and the
// substrate for profile-guided optimization. A Profile distills a
// traced simulated run into per-site communication rows keyed by
// (procedure, line, operation), a per-processor utilization breakdown,
// a message-size histogram, and metadata identifying what was run
// (program content hash, workload, P, engine, fault seed).
//
// Profiles obey three contracts:
//
//   - Determinism: serialization is canonical — equal runs produce
//     byte-identical artifacts, on either machine backend, so profiles
//     can be diffed with plain tools and deduplicated by content hash.
//   - Algebra: Merge folds any number of profiles into one, weighted
//     by run count, independent of argument order; merging with an
//     empty profile is the identity.
//   - Comparability: Diff classifies per-site, per-metric deltas
//     between two profiles against relative thresholds, so a measured
//     regression is a first-class, machine-checkable object.
//
// Store persists profiles under their content hash with the same
// atomic temp+rename discipline as the summary cache's disk tier;
// fortd.Service serves a store over HTTP and cmd/fdprof manipulates
// the files directly.
package profile

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"fortd/internal/trace"
	"fortd/internal/trace/analyze"
)

// SchemaVersion is the artifact schema this package reads and writes.
// Files carrying any other version are rejected by Decode, never
// misread.
const SchemaVersion = 1

// Meta identifies what a profile measured. Fields that disagree
// between merged profiles collapse to "mixed" (strings) or 0
// (numbers); see Merge.
type Meta struct {
	// ProgramHash is the compiled program's content hash
	// (fortd.ProgramID): profiles of the same hash measured the same
	// generated code.
	ProgramHash string `json:"program_hash"`
	// Workload is the collector's label for the run (a source file
	// name, a benchmark workload name; may be empty).
	Workload string `json:"workload"`
	// P is the simulated processor count.
	P int `json:"p"`
	// Backend names the machine engine that executed the run ("des" or
	// "goroutine"). Both engines are observationally identical, so two
	// profiles of one seeded run may differ only in this label.
	Backend string `json:"backend"`
	// FaultSeed is the fault-injection seed (0: no fault plan).
	FaultSeed int64 `json:"fault_seed"`
}

// Totals holds the run aggregates. All float and count fields are
// EXTENSIVE: they are sums over the profile's Runs, so Merge can fold
// profiles by plain addition and per-run means are value/Runs.
type Totals struct {
	// Time is the parallel time (max processor clock) summed over runs.
	Time float64 `json:"time_us"`
	// Msgs and Words are the communication totals over all runs.
	Msgs  int64 `json:"msgs"`
	Words int64 `json:"words"`
	// Clock, Compute, Send and Blocked sum the per-processor breakdown
	// machine-wide over all runs (Clock = Compute + Send + Blocked).
	Clock   float64 `json:"clock_us"`
	Compute float64 `json:"compute_us"`
	Send    float64 `json:"send_us"`
	Blocked float64 `json:"blocked_us"`
	// CriticalPath is the longest-dependence-chain estimate summed over
	// runs.
	CriticalPath float64 `json:"critical_path_us"`
}

// ProcRow is one processor's time breakdown, summed over runs.
type ProcRow struct {
	PID     int     `json:"pid"`
	Clock   float64 `json:"clock_us"`
	Compute float64 `json:"compute_us"`
	Send    float64 `json:"send_us"`
	Blocked float64 `json:"blocked_us"`
}

// SiteRow is one communication site's cost, summed over runs. The key
// is (Proc, Line, PID, Op): PID is -1 for attributed sites and the
// observing processor for unattributed ones, mirroring
// analyze.Hotspot, so distinct unattributed sites never collapse.
type SiteRow struct {
	Proc string `json:"proc"`
	Line int    `json:"line"`
	PID  int    `json:"pid"`
	Op   string `json:"op"`
	// Msgs counts messages, Words the payload total.
	Msgs  int64 `json:"msgs"`
	Words int64 `json:"words"`
	// Send is sender-side injection time, Blocked receiver-side stall
	// time, both in µs summed over runs.
	Send    float64 `json:"send_us"`
	Blocked float64 `json:"blocked_us"`
	// CPShare is the runs-weighted mean of the site's critical-path
	// share (the worst single processor's cost over the critical path).
	CPShare float64 `json:"cp_share"`
}

// Site renders the row's site label, matching analyze.Hotspot.Site.
func (s SiteRow) Site() string {
	if s.Proc == "" {
		if s.PID >= 0 {
			return fmt.Sprintf("(unattributed p%d)", s.PID)
		}
		return "(unattributed)"
	}
	if s.Line == 0 {
		return s.Proc
	}
	return fmt.Sprintf("%s:%d", s.Proc, s.Line)
}

// Cost is the site's total communication time in µs (summed over runs).
func (s SiteRow) Cost() float64 { return s.Send + s.Blocked }

// Bucket is one message-size histogram class: messages of [Lo, Hi]
// payload words, counts summed over runs.
type Bucket struct {
	Lo    int   `json:"lo"`
	Hi    int   `json:"hi"`
	Msgs  int64 `json:"msgs"`
	Words int64 `json:"words"`
}

// Profile is the versioned run-profile artifact. Field order is the
// canonical JSON key order; do not reorder fields without bumping
// SchemaVersion.
type Profile struct {
	Schema int  `json:"schema"`
	Meta   Meta `json:"meta"`
	// Runs is the merge weight: how many runs this profile aggregates.
	Runs  int    `json:"runs"`
	Total Totals `json:"total"`
	// Procs is sorted by PID; Sites by (Proc, Line, PID, Op); Histogram
	// by Lo. Canonical order is key order, not rank — use Top for a
	// cost-ranked view.
	Procs     []ProcRow `json:"procs"`
	Sites     []SiteRow `json:"sites"`
	Histogram []Bucket  `json:"histogram"`
}

// FromEvents distills a profile from a traced run's event stream. It
// returns nil when the events carry no simulator activity (e.g. a
// compile-only trace), mirroring analyze.Analyze.
func FromEvents(events []trace.Event, meta Meta) *Profile {
	return FromAnalysis(analyze.Analyze(events), meta)
}

// FromAnalysis distills a profile from an already-computed analysis.
// Returns nil for a nil analysis.
func FromAnalysis(a *analyze.Analysis, meta Meta) *Profile {
	if a == nil {
		return nil
	}
	p := &Profile{Schema: SchemaVersion, Meta: meta, Runs: 1}
	p.Total.Time = a.Time
	p.Total.Msgs = a.Msgs
	p.Total.Words = a.Words
	if a.Profile != nil {
		p.Total.CriticalPath = a.Profile.CriticalPath
		for _, pp := range a.Profile.Procs {
			p.Procs = append(p.Procs, ProcRow{
				PID: pp.PID, Clock: pp.Clock, Compute: pp.Compute,
				Send: pp.Send, Blocked: pp.Blocked,
			})
			p.Total.Clock += pp.Clock
			p.Total.Compute += pp.Compute
			p.Total.Send += pp.Send
			p.Total.Blocked += pp.Blocked
		}
	}
	for _, h := range a.Hotspots {
		p.Sites = append(p.Sites, SiteRow{
			Proc: h.Proc, Line: h.Line, PID: h.PID, Op: h.Op,
			Msgs: h.Msgs, Words: h.Words,
			Send: h.SendTime, Blocked: h.BlockedTime, CPShare: h.CPShare,
		})
	}
	for _, b := range a.Histogram {
		p.Histogram = append(p.Histogram, Bucket{Lo: b.Lo, Hi: b.Hi, Msgs: b.Msgs, Words: b.Words})
	}
	p.normalize()
	return p
}

// normalize sorts the row slices into canonical key order.
func (p *Profile) normalize() {
	sort.Slice(p.Procs, func(i, j int) bool { return p.Procs[i].PID < p.Procs[j].PID })
	sort.Slice(p.Sites, func(i, j int) bool { return siteKeyOf(p.Sites[i]).less(siteKeyOf(p.Sites[j])) })
	sort.Slice(p.Histogram, func(i, j int) bool { return p.Histogram[i].Lo < p.Histogram[j].Lo })
}

// siteKey identifies one site row under merging and diffing.
type siteKey struct {
	proc string
	line int
	pid  int
	op   string
}

func siteKeyOf(s SiteRow) siteKey { return siteKey{s.Proc, s.Line, s.PID, s.Op} }

func (k siteKey) less(o siteKey) bool {
	if k.proc != o.proc {
		return k.proc < o.proc
	}
	if k.line != o.line {
		return k.line < o.line
	}
	if k.pid != o.pid {
		return k.pid < o.pid
	}
	return k.op < o.op
}

func (k siteKey) String() string {
	return SiteRow{Proc: k.proc, Line: k.line, PID: k.pid, Op: k.op}.Site() + " " + k.op
}

// BlockedShare is the blocked fraction of total processor time over
// all runs (0 when no per-processor data was collected).
func (p *Profile) BlockedShare() float64 {
	if p == nil || p.Total.Clock <= 0 {
		return 0
	}
	return p.Total.Blocked / p.Total.Clock
}

// Imbalance is the max-over-mean busy-time ratio across processors
// (1.0 = perfectly balanced; 0 without per-processor data). Busy time
// is clock minus blocked. It is derived from the per-proc sums, so it
// stays meaningful after merging.
func (p *Profile) Imbalance() float64 {
	if p == nil || len(p.Procs) == 0 {
		return 0
	}
	var sum, max float64
	for _, pr := range p.Procs {
		busy := pr.Clock - pr.Blocked
		sum += busy
		if busy > max {
			max = busy
		}
	}
	if mean := sum / float64(len(p.Procs)); mean > 0 {
		return max / mean
	}
	return 0
}

// Top returns the n highest-cost sites (all of them when n <= 0),
// ranked by descending cost with the same tiebreak as the analyze
// hotspot table.
func (p *Profile) Top(n int) []SiteRow {
	out := append([]SiteRow(nil), p.Sites...)
	sort.Slice(out, func(i, j int) bool {
		x, y := out[i], out[j]
		if x.Cost() != y.Cost() {
			return x.Cost() > y.Cost()
		}
		if x.Words != y.Words {
			return x.Words > y.Words
		}
		if x.Site() != y.Site() {
			return x.Site() < y.Site()
		}
		return x.Op < y.Op
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Marshal renders the canonical artifact bytes: indented JSON with a
// fixed key order and no HTML escaping, terminated by one newline.
// Equal profiles marshal to equal bytes — the determinism contract the
// store's content addressing and the golden tests rely on.
func (p *Profile) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ID returns the profile's content hash: the sha256 of its canonical
// bytes, in hex. Equal runs therefore share one id, and a store
// deduplicates them for free.
func (p *Profile) ID() (string, error) {
	buf, err := p.Marshal()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), nil
}

// Encode writes the canonical bytes to w.
func (p *Profile) Encode(w io.Writer) error {
	buf, err := p.Marshal()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Decode parses an artifact, rejecting unknown schema versions.
func Decode(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if p.Schema != SchemaVersion {
		return nil, fmt.Errorf("profile: unsupported schema version %d (want %d)", p.Schema, SchemaVersion)
	}
	p.normalize()
	return &p, nil
}

// Load reads and decodes the artifact file at path.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// WriteFile writes the canonical artifact bytes to path.
func WriteFile(path string, p *Profile) error {
	buf, err := p.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0644)
}
