package profile

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
)

// ErrNotFound reports a profile id with no stored artifact.
var ErrNotFound = errors.New("profile: not found")

// Entry is one stored profile's listing row.
type Entry struct {
	ID   string `json:"id"`
	Meta Meta   `json:"meta"`
	Runs int    `json:"runs"`
}

// Store persists profiles keyed by their content hash. Because the key
// is the hash of the canonical bytes, a stored artifact is immutable
// and equal runs deduplicate to one entry.
type Store interface {
	// Put stores p and returns its content-hash id. Storing an already
	// present profile is a no-op returning the same id.
	Put(p *Profile) (string, error)
	// Get returns the profile stored under id, or ErrNotFound.
	Get(id string) (*Profile, error)
	// List returns every stored profile's listing row, sorted by id.
	List() ([]Entry, error)
}

// idPattern guards store lookups against path-traversal ids: a content
// hash is exactly 64 hex digits.
var idPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// DirStore is the disk tier: one <id>.json canonical artifact file per
// profile under a directory, written with the same atomic temp+rename
// discipline as the summary cache's disk tier, so concurrent writers
// of the same profile produce identical bytes and readers never
// observe a torn file. A restarted daemon pointed at the same
// directory serves every previously stored profile.
type DirStore struct {
	dir string
}

// NewDirStore creates the directory if needed and returns the store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (d *DirStore) Dir() string { return d.dir }

func (d *DirStore) path(id string) string {
	return filepath.Join(d.dir, id+".json")
}

// Put writes the canonical artifact file via an atomic rename.
func (d *DirStore) Put(p *Profile) (string, error) {
	buf, err := p.Marshal()
	if err != nil {
		return "", err
	}
	id, err := p.ID()
	if err != nil {
		return "", err
	}
	if _, err := os.Stat(d.path(id)); err == nil {
		return id, nil // content-addressed: already present means equal bytes
	}
	tmp, err := os.CreateTemp(d.dir, "."+id+".tmp*")
	if err != nil {
		return "", err
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(name)
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return "", err
	}
	if err := os.Rename(name, d.path(id)); err != nil {
		os.Remove(name)
		return "", err
	}
	return id, nil
}

// Get loads the profile stored under id. Unreadable, corrupt or
// version-mismatched files report ErrNotFound, like a cache miss.
func (d *DirStore) Get(id string) (*Profile, error) {
	if !idPattern.MatchString(id) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	buf, err := os.ReadFile(d.path(id))
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	p, err := Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return p, nil
}

// List scans the directory for entry files.
func (d *DirStore) List() ([]Entry, error) {
	names, err := filepath.Glob(filepath.Join(d.dir, "*.json"))
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, name := range names {
		id := filepath.Base(name)
		id = id[:len(id)-len(".json")]
		if !idPattern.MatchString(id) {
			continue
		}
		p, err := d.Get(id)
		if err != nil {
			continue // corrupt entries are invisible, not fatal
		}
		out = append(out, Entry{ID: id, Meta: p.Meta, Runs: p.Runs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// MemStore is the in-memory tier: the service's default when no
// profile directory is configured. Safe for concurrent use.
type MemStore struct {
	mu sync.Mutex
	m  map[string]*Profile
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: map[string]*Profile{}} }

// Put stores p under its content hash.
func (s *MemStore) Put(p *Profile) (string, error) {
	id, err := p.ID()
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; !ok {
		s.m[id] = p
	}
	return id, nil
}

// Get returns the profile stored under id, or ErrNotFound.
func (s *MemStore) Get(id string) (*Profile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return p, nil
}

// List returns the stored entries sorted by id.
func (s *MemStore) List() ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.m))
	for id, p := range s.m {
		out = append(out, Entry{ID: id, Meta: p.Meta, Runs: p.Runs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
