package profile

import (
	"bytes"
	"sort"
)

// Merge folds profiles into one aggregate, weighted by each input's
// Runs count. Extensive quantities (times, message and word counts,
// histogram buckets) add; CPShare, the one intensive site metric,
// folds as a runs-weighted mean. Metadata fields that agree are kept;
// a disagreement collapses the field to "mixed" (strings) or 0
// (numbers), so a merge across seeds or a P-sweep is honest about what
// it aggregates.
//
// Merge satisfies two algebraic identities the tests pin:
//
//   - Identity element: nil profiles and profiles with Runs == 0
//     contribute nothing; merging a profile with an empty one returns
//     a profile equal to the original.
//   - Order independence: inputs are folded in canonical-byte order,
//     not argument order, so Merge(a, b) and Merge(b, a) produce
//     byte-identical artifacts despite float addition being
//     non-associative bitwise.
//
// Returns nil when no input carries any runs.
func Merge(profiles ...*Profile) *Profile {
	var live []*Profile
	for _, p := range profiles {
		if p != nil && p.Runs > 0 {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil
	}
	// canonical fold order: sort inputs by their artifact bytes
	keys := make([][]byte, len(live))
	for i, p := range live {
		buf, err := p.Marshal()
		if err != nil {
			// a profile that cannot marshal cannot be stored either;
			// fall back to empty key rather than fail the fold
			buf = nil
		}
		keys[i] = buf
	}
	order := make([]int, len(live))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return bytes.Compare(keys[order[i]], keys[order[j]]) < 0
	})

	out := &Profile{Schema: SchemaVersion}
	procs := map[int]*ProcRow{}
	sites := map[siteKey]*SiteRow{}
	hist := map[int]*Bucket{}
	for n, idx := range order {
		p := live[idx]
		if n == 0 {
			out.Meta = p.Meta
		} else {
			out.Meta = mergeMeta(out.Meta, p.Meta)
		}
		out.Total.Time += p.Total.Time
		out.Total.Msgs += p.Total.Msgs
		out.Total.Words += p.Total.Words
		out.Total.Clock += p.Total.Clock
		out.Total.Compute += p.Total.Compute
		out.Total.Send += p.Total.Send
		out.Total.Blocked += p.Total.Blocked
		out.Total.CriticalPath += p.Total.CriticalPath
		for _, pr := range p.Procs {
			row := procs[pr.PID]
			if row == nil {
				row = &ProcRow{PID: pr.PID}
				procs[pr.PID] = row
			}
			row.Clock += pr.Clock
			row.Compute += pr.Compute
			row.Send += pr.Send
			row.Blocked += pr.Blocked
		}
		for _, s := range p.Sites {
			k := siteKeyOf(s)
			row := sites[k]
			if row == nil {
				row = &SiteRow{Proc: s.Proc, Line: s.Line, PID: s.PID, Op: s.Op}
				sites[k] = row
			}
			row.Msgs += s.Msgs
			row.Words += s.Words
			row.Send += s.Send
			row.Blocked += s.Blocked
			// CPShare is intensive: accumulate runs-weighted sum here,
			// divide by total runs below
			row.CPShare += s.CPShare * float64(p.Runs)
		}
		for _, b := range p.Histogram {
			bk := hist[b.Hi]
			if bk == nil {
				bk = &Bucket{Lo: b.Lo, Hi: b.Hi}
				hist[b.Hi] = bk
			}
			bk.Msgs += b.Msgs
			bk.Words += b.Words
		}
		out.Runs += p.Runs
	}
	for _, pr := range procs {
		out.Procs = append(out.Procs, *pr)
	}
	for _, s := range sites {
		s.CPShare /= float64(out.Runs)
		out.Sites = append(out.Sites, *s)
	}
	for _, b := range hist {
		out.Histogram = append(out.Histogram, *b)
	}
	out.normalize()
	return out
}

// mergeMeta keeps fields the two metas agree on and neutralizes the
// rest ("mixed" / 0).
func mergeMeta(a, b Meta) Meta {
	m := a
	if a.ProgramHash != b.ProgramHash {
		m.ProgramHash = "mixed"
	}
	if a.Workload != b.Workload {
		m.Workload = "mixed"
	}
	if a.P != b.P {
		m.P = 0
	}
	if a.Backend != b.Backend {
		m.Backend = "mixed"
	}
	if a.FaultSeed != b.FaultSeed {
		m.FaultSeed = 0
	}
	return m
}
