package analyze

import (
	"bytes"
	"strings"
	"testing"

	"fortd/internal/trace"
)

// TestZeroWordHistogram: nil-payload messages land in their own [0,0]
// size class instead of being dropped or merged into the 1-word bin.
func TestZeroWordHistogram(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindSend, Name: "send", Proc: "M", Line: 1, PID: 0, Src: 0, Dst: 1, Words: 0, Start: 0, Dur: 5, Seq: 1},
		{Kind: trace.KindSend, Name: "send", Proc: "M", Line: 2, PID: 0, Src: 0, Dst: 1, Words: 1, Start: 5, Dur: 5, Seq: 2},
		{Kind: trace.KindSend, Name: "send", Proc: "M", Line: 3, PID: 0, Src: 0, Dst: 1, Words: 3, Start: 10, Dur: 5, Seq: 3},
		{Kind: trace.KindRecv, Name: "recv", Proc: "M", Line: 4, PID: 1, Src: 0, Dst: 1, Words: 0, Start: 0, Dur: 6, Seq: 1},
		{Kind: trace.KindProcSummary, PID: 0, Dur: 15, Sent: 3},
		{Kind: trace.KindProcSummary, PID: 1, Dur: 20, Recvd: 3},
	}
	a := Analyze(events)
	if a == nil {
		t.Fatal("Analyze returned nil")
	}
	if a.Msgs != 3 || a.Words != 4 {
		t.Errorf("msgs=%d words=%d, want 3/4", a.Msgs, a.Words)
	}
	var zero, one, four *Bucket
	for i := range a.Histogram {
		b := &a.Histogram[i]
		switch {
		case b.Lo == 0 && b.Hi == 0:
			zero = b
		case b.Lo == 1 && b.Hi == 1:
			one = b
		case b.Hi == 4:
			four = b
		}
	}
	if zero == nil || zero.Msgs != 1 || zero.Words != 0 {
		t.Errorf("zero-word bucket = %+v", zero)
	}
	if one == nil || one.Msgs != 1 {
		t.Errorf("one-word bucket = %+v", one)
	}
	if four == nil || four.Msgs != 1 || four.Words != 3 {
		t.Errorf("3-word bucket = %+v", four)
	}
	if got := a.Matrix.Msgs[0][1]; got != 3 {
		t.Errorf("Matrix.Msgs[0][1] = %d", got)
	}
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 words") {
		t.Errorf("rendered histogram has no zero-word class:\n%s", buf.String())
	}
}

// TestUnattributedSitesStayDistinct: events with no procedure context
// fall back to the observing processor as the site key, so two
// processors' unattributed costs never collapse into one row (the
// collapsed row used to misreport both per-site totals and the
// critical-path share, which is a per-processor maximum).
func TestUnattributedSitesStayDistinct(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindSend, Name: "send", PID: 0, Src: 0, Dst: 1, Words: 4, Start: 0, Dur: 5, Seq: 1},
		{Kind: trace.KindSend, Name: "send", PID: 1, Src: 1, Dst: 0, Words: 8, Start: 0, Dur: 7, Seq: 1},
		{Kind: trace.KindSend, Name: "send", PID: 1, Src: 1, Dst: 0, Words: 8, Start: 7, Dur: 7, Seq: 2},
		{Kind: trace.KindSend, Name: "bcast", PID: 1, Src: 1, Dst: 0, Words: 2, Start: 14, Dur: 3, Seq: 3},
		{Kind: trace.KindSend, Name: "send", Proc: "MAIN", Line: 3, PID: 0, Src: 0, Dst: 1, Words: 1, Start: 5, Dur: 2, Seq: 2},
		{Kind: trace.KindProcSummary, PID: 0, Dur: 20, Sent: 2},
		{Kind: trace.KindProcSummary, PID: 1, Dur: 20, Sent: 3},
	}
	a := Analyze(events)
	if a == nil {
		t.Fatal("Analyze returned nil")
	}
	// expect 4 rows: (unattributed p0) send, (unattributed p1) send,
	// (unattributed p1) bcast, MAIN:3 send
	if len(a.Hotspots) != 4 {
		t.Fatalf("got %d hotspot rows, want 4: %+v", len(a.Hotspots), a.Hotspots)
	}
	bySite := map[string]Hotspot{}
	for _, h := range a.Hotspots {
		bySite[h.Site()+" "+h.Op] = h
	}
	p0 := bySite["(unattributed p0) send"]
	if p0.Msgs != 1 || p0.Words != 4 || p0.SendTime != 5 || p0.PID != 0 {
		t.Errorf("(unattributed p0) send = %+v", p0)
	}
	p1 := bySite["(unattributed p1) send"]
	if p1.Msgs != 2 || p1.Words != 16 || p1.SendTime != 14 || p1.PID != 1 {
		t.Errorf("(unattributed p1) send = %+v", p1)
	}
	if b := bySite["(unattributed p1) bcast"]; b.Msgs != 1 || b.Words != 2 {
		t.Errorf("(unattributed p1) bcast = %+v", b)
	}
	m := bySite["MAIN:3 send"]
	if m.Msgs != 1 || m.PID != -1 {
		t.Errorf("attributed site = %+v, want Msgs=1 PID=-1", m)
	}
}

// TestFaultAndAbortCollection: injected-fault and abort events are
// aggregated into the analysis and rendered only when present.
func TestFaultAndAbortCollection(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindSend, Name: "send", PID: 0, Src: 0, Dst: 1, Words: 2, Start: 0, Dur: 5, Seq: 1},
		{Kind: trace.KindFault, Name: "delay", PID: 0, Src: 0, Dst: 1, Start: 0, Dur: 30, Seq: 1},
		{Kind: trace.KindFault, Name: "delay", PID: 0, Src: 0, Dst: 1, Start: 5, Dur: 10, Seq: 2},
		{Kind: trace.KindFault, Name: "straggler", PID: 1, Src: 1, Dst: 1, Dur: 2.5},
		{Kind: trace.KindAbort, Name: "deadlock", Proc: "MAIN", Line: 9, PID: 1, Src: 0, Dst: 1, Start: 40},
		{Kind: trace.KindProcSummary, PID: 0, Dur: 50},
		{Kind: trace.KindProcSummary, PID: 1, Dur: 40},
	}
	a := Analyze(events)
	if a == nil {
		t.Fatal("Analyze returned nil")
	}
	if len(a.Faults) != 2 {
		t.Fatalf("faults = %+v, want delay + straggler", a.Faults)
	}
	// sorted by name: delay before straggler
	if a.Faults[0].Name != "delay" || a.Faults[0].Count != 2 || a.Faults[0].Time != 40 {
		t.Errorf("delay stat = %+v", a.Faults[0])
	}
	if a.Faults[1].Name != "straggler" || a.Faults[1].Count != 1 {
		t.Errorf("straggler stat = %+v", a.Faults[1])
	}
	if len(a.Aborts) != 1 {
		t.Fatalf("aborts = %+v", a.Aborts)
	}
	ab := a.Aborts[0]
	if ab.PID != 1 || ab.Reason != "deadlock" || ab.Proc != "MAIN" || ab.Line != 9 || ab.Clock != 40 {
		t.Errorf("abort = %+v", ab)
	}
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "injected faults:") || !strings.Contains(out, "aborted processors:") {
		t.Errorf("rendered analysis lacks fault/abort sections:\n%s", out)
	}

	// a clean run renders neither section
	clean := Analyze(events[:1])
	buf.Reset()
	if err := clean.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "injected faults") || strings.Contains(buf.String(), "aborted") {
		t.Errorf("clean analysis renders fault sections:\n%s", buf.String())
	}
}

// TestZeroDurationAnalysis: a run whose processors report zero busy
// time (P=1 with no communication, or a degenerate trace) must analyze
// to all-zero shares — CPShare 0, bin width skipped — with no NaN or
// Inf leaking into the rendered report from a division by zero time.
func TestZeroDurationAnalysis(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindProcSummary, PID: 0, Dur: 0},
		{Kind: trace.KindProcSummary, PID: 1, Dur: 0},
		{Kind: trace.KindSend, Name: "send", Proc: "MAIN", Line: 3, PID: 0, Src: 0, Dst: 1, Words: 1, Start: 0, Dur: 0, Seq: 1},
	}
	a := Analyze(events)
	if a == nil {
		t.Fatal("Analyze returned nil")
	}
	if a.Time != 0 {
		t.Errorf("Time = %v, want 0", a.Time)
	}
	for _, h := range a.Hotspots {
		if h.CPShare != 0 {
			t.Errorf("site %s CPShare = %v, want 0 on a zero-duration run", h.Site(), h.CPShare)
		}
	}
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(buf.String(), bad) {
			t.Errorf("zero-duration report contains %s:\n%s", bad, buf.String())
		}
	}
}
