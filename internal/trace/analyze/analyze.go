// Package analyze turns a simulated run's trace.Event stream into the
// communication-analysis artifacts the paper reasons with (§4–§9): a
// P×P traffic matrix, a ranking of (procedure, line, operation) sites
// by communication cost, message-size histograms, a time-binned
// utilization timeline, and — via the Sweep helper — processor-scaling
// speedup/efficiency curves. It is a pure post-processing layer: it
// reads collected events only, so untraced runs pay nothing for it.
package analyze

import (
	"fmt"
	"io"
	"math/bits"
	"sort"

	"fortd/internal/trace"
)

// Matrix is the P×P communication matrix: one cell per src→dst pair.
// Remap traffic, which has no single destination, lands on the
// diagonal, mirroring machine.Stats.Traffic.
type Matrix struct {
	P     int
	Msgs  [][]int64
	Words [][]int64
	// Cost is the virtual time the pair's traffic occupied: sender
	// injection time (message startups, remap transfers) plus receiver
	// blocked time, in µs.
	Cost [][]float64
}

// Hotspot is one communication site's total cost: every message the
// (procedure, line, operation) triple generated, with the time charged
// on the sending side (startup/transfer) and the receiving side
// (blocked waits).
type Hotspot struct {
	Proc string
	Line int
	// PID disambiguates unattributed sites (events carrying no
	// procedure context): it is the observing processor for those and
	// -1 for attributed sites, so two processors' unattributed costs
	// never collapse into one row.
	PID int
	Op  string
	// Msgs counts messages (a remap event counts its partner messages);
	// Words is the payload total.
	Msgs  int64
	Words int64
	// SendTime is sender-side injection time; BlockedTime is
	// receiver-side stall time attributed to the site.
	SendTime    float64
	BlockedTime float64
	// CPShare estimates the fraction of the run's critical path this
	// site can occupy: the worst single processor's cost at the site
	// divided by the critical-path length. The aggregate Cost() can be
	// much larger — P processors blocking in parallel all charge the
	// same site — but a chain passes through one processor at a time.
	CPShare float64
}

// Cost is the site's total communication time in µs.
func (h Hotspot) Cost() float64 { return h.SendTime + h.BlockedTime }

// CPSharePct is CPShare as a percentage (template convenience).
func (h Hotspot) CPSharePct() float64 { return 100 * h.CPShare }

// Site renders the site label ("DGEFA:12", or "(unattributed p3)" for
// an event stream that carried no procedure context).
func (h Hotspot) Site() string {
	if h.Proc == "" {
		if h.PID >= 0 {
			return fmt.Sprintf("(unattributed p%d)", h.PID)
		}
		return "(unattributed)"
	}
	if h.Line == 0 {
		return h.Proc
	}
	return fmt.Sprintf("%s:%d", h.Proc, h.Line)
}

// Bucket is one message-size histogram bin: messages whose payload is
// in [Lo, Hi] words.
type Bucket struct {
	Lo, Hi int
	Msgs   int64
	Words  int64
}

// FaultStat aggregates one injected-fault kind (machine.FaultPlan):
// how many faults of that kind fired and their total injected time
// ("delay": delivery delay; "dup-drop": receiver stall; "straggler":
// Dur is a multiplier, so Time is meaningless and left as the sum).
type FaultStat struct {
	Name  string
	Count int64
	Time  float64
}

// Abort is one processor's termination record from an aborted run:
// what it was blocked in when the cooperative abort (or deadlock
// detection) unblocked it.
type Abort struct {
	PID      int
	Reason   string // "abort" or "deadlock"
	Proc     string
	Line     int
	Src, Dst int
	Clock    float64
}

// TimeBin is one slot of the utilization timeline: processor-µs spent
// in each state across all processors during the bin's window.
type TimeBin struct {
	Start   float64
	Send    float64
	Blocked float64
	Compute float64
}

// Analysis is the full post-run communication analysis.
type Analysis struct {
	// P is the processor count observed in the event stream.
	P int
	// Time is the parallel time (maximum processor clock).
	Time float64
	// Msgs and Words are the run totals (remap events weighted by their
	// partner count, matching machine.Stats).
	Msgs, Words int64
	Matrix      *Matrix
	// Hotspots is sorted by descending Cost.
	Hotspots []Hotspot
	// Histogram has one bucket per occupied power-of-two size class.
	Histogram []Bucket
	// Timeline is the binned utilization; BinWidth is each bin's µs.
	Timeline []TimeBin
	BinWidth float64
	// Profile is the per-processor breakdown (nil when the events carry
	// no end-of-run summaries).
	Profile *trace.Profile
	// Faults summarizes injected faults by kind (empty without a fault
	// plan), sorted by name; Aborts lists aborted processors in event
	// order (empty for a clean run).
	Faults []FaultStat
	Aborts []Abort
}

// timelineBins is the default timeline resolution.
const timelineBins = 64

// Analyze derives the communication analysis from collected events.
// It returns nil when the events contain no simulator activity (e.g. a
// compile-only trace).
func Analyze(events []trace.Event) *Analysis {
	p := 0
	any := false
	var clocks []float64
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindSend, trace.KindRecv, trace.KindWait, trace.KindRemap,
			trace.KindProcSummary, trace.KindFault, trace.KindAbort:
			any = true
			if ev.PID+1 > p {
				p = ev.PID + 1
			}
			// message endpoints also bound P: a partial trace (no
			// end-of-run summaries) must still size the matrix to hold
			// every src/dst it mentions
			switch ev.Kind {
			case trace.KindSend, trace.KindRecv, trace.KindWait, trace.KindRemap:
				if ev.Src+1 > p {
					p = ev.Src + 1
				}
				if ev.Dst+1 > p {
					p = ev.Dst + 1
				}
			}
			if ev.Kind == trace.KindProcSummary {
				for len(clocks) < ev.PID+1 {
					clocks = append(clocks, 0)
				}
				clocks[ev.PID] = ev.Dur
			}
		}
	}
	if !any {
		return nil
	}
	a := &Analysis{P: p, Profile: trace.ComputeProfile(events)}
	for _, c := range clocks {
		if c > a.Time {
			a.Time = c
		}
	}

	a.Matrix = newMatrix(p)
	type siteID struct {
		proc string
		line int
		pid  int // -1 for attributed sites, observer PID otherwise
		op   string
	}
	sites := map[siteID]*Hotspot{}
	hist := map[int]*Bucket{}
	a.BinWidth = a.Time / timelineBins
	bins := make([]TimeBin, timelineBins)
	for i := range bins {
		bins[i].Start = float64(i) * a.BinWidth
	}
	addSpan := func(start, dur float64, f func(*TimeBin, float64)) {
		if a.BinWidth <= 0 || dur <= 0 {
			return
		}
		for i := range bins {
			lo := bins[i].Start
			hi := lo + a.BinWidth
			ov := overlap(start, start+dur, lo, hi)
			if ov > 0 {
				f(&bins[i], ov)
			}
		}
	}

	// perProcCost[site][pid]: one processor's share of the site's cost.
	// The critical path runs through a single processor at a time, so
	// the worst processor's cost bounds how much of it the site can
	// occupy; the aggregate cost can legitimately exceed the critical
	// path (P processors wait in parallel).
	perProcCost := map[*Hotspot]map[int]float64{}
	faults := map[string]*FaultStat{}
	site := func(ev trace.Event) *Hotspot {
		k := siteID{ev.Proc, ev.Line, -1, ev.Name}
		if ev.Proc == "" {
			// no procedure context: fall back to the observing processor
			// so distinct unattributed sites stay distinct rows
			k.pid = ev.PID
		}
		h := sites[k]
		if h == nil {
			h = &Hotspot{Proc: ev.Proc, Line: ev.Line, PID: k.pid, Op: ev.Name}
			sites[k] = h
			perProcCost[h] = map[int]float64{}
		}
		perProcCost[h][ev.PID] += ev.Dur
		return h
	}
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindSend, trace.KindRemap:
			weight := int64(1)
			dst := ev.Dst
			if ev.Kind == trace.KindRemap {
				weight = ev.Value
				dst = ev.Src // diagonal
			}
			a.Msgs += weight
			a.Words += int64(ev.Words)
			a.Matrix.Msgs[ev.Src][dst] += weight
			a.Matrix.Words[ev.Src][dst] += int64(ev.Words)
			a.Matrix.Cost[ev.Src][dst] += ev.Dur
			h := site(ev)
			h.Msgs += weight
			h.Words += int64(ev.Words)
			h.SendTime += ev.Dur
			bucketFor(hist, weight, int64(ev.Words))
			addSpan(ev.Start, ev.Dur, func(b *TimeBin, ov float64) { b.Send += ov })
		case trace.KindRecv, trace.KindWait:
			a.Matrix.Cost[ev.Src][ev.Dst] += ev.Dur
			site(ev).BlockedTime += ev.Dur
			addSpan(ev.Start, ev.Dur, func(b *TimeBin, ov float64) { b.Blocked += ov })
		case trace.KindFault:
			fs := faults[ev.Name]
			if fs == nil {
				fs = &FaultStat{Name: ev.Name}
				faults[ev.Name] = fs
			}
			fs.Count++
			fs.Time += ev.Dur
		case trace.KindAbort:
			a.Aborts = append(a.Aborts, Abort{
				PID: ev.PID, Reason: ev.Name,
				Proc: ev.Proc, Line: ev.Line,
				Src: ev.Src, Dst: ev.Dst, Clock: ev.Start,
			})
		}
	}
	for _, fs := range faults {
		a.Faults = append(a.Faults, *fs)
	}
	sort.Slice(a.Faults, func(i, j int) bool { return a.Faults[i].Name < a.Faults[j].Name })

	// compute time per bin: each live processor's window minus its
	// communication time in the bin, summed machine-wide
	for i := range bins {
		lo := bins[i].Start
		hi := lo + a.BinWidth
		var live float64
		for _, c := range clocks {
			live += overlap(0, c, lo, hi)
		}
		if c := live - bins[i].Send - bins[i].Blocked; c > 0 {
			bins[i].Compute = c
		}
	}
	if a.BinWidth > 0 {
		a.Timeline = bins
	}

	var cp float64
	if a.Profile != nil {
		cp = a.Profile.CriticalPath
	}
	for _, h := range sites {
		if cp > 0 {
			var worst float64
			for _, c := range perProcCost[h] {
				if c > worst {
					worst = c
				}
			}
			h.CPShare = worst / cp
		}
		a.Hotspots = append(a.Hotspots, *h)
	}
	sort.Slice(a.Hotspots, func(i, j int) bool {
		x, y := a.Hotspots[i], a.Hotspots[j]
		if x.Cost() != y.Cost() {
			return x.Cost() > y.Cost()
		}
		if x.Words != y.Words {
			return x.Words > y.Words
		}
		if x.Site() != y.Site() {
			return x.Site() < y.Site()
		}
		return x.Op < y.Op
	})

	for _, b := range hist {
		a.Histogram = append(a.Histogram, *b)
	}
	sort.Slice(a.Histogram, func(i, j int) bool { return a.Histogram[i].Lo < a.Histogram[j].Lo })
	return a
}

func newMatrix(p int) *Matrix {
	m := &Matrix{P: p,
		Msgs:  make([][]int64, p),
		Words: make([][]int64, p),
		Cost:  make([][]float64, p),
	}
	for i := 0; i < p; i++ {
		m.Msgs[i] = make([]int64, p)
		m.Words[i] = make([]int64, p)
		m.Cost[i] = make([]float64, p)
	}
	return m
}

// bucketFor files count messages carrying totalWords between them into
// the power-of-two size class [2^(k-1)+1, 2^k] of the per-message
// payload (zero-word messages get their own [0,0] class).
func bucketFor(hist map[int]*Bucket, count, totalWords int64) {
	words := int(0)
	if count > 0 {
		words = int(totalWords / count)
	}
	lo, hi := 0, 0
	if words > 0 {
		k := bits.Len(uint(words - 1)) // ceil(log2(words))
		hi = 1 << k
		lo = hi/2 + 1
		if words == 1 {
			lo, hi = 1, 1
		}
	}
	b := hist[hi]
	if b == nil {
		b = &Bucket{Lo: lo, Hi: hi}
		hist[hi] = b
	}
	b.Msgs += count
	b.Words += totalWords
}

func overlap(aLo, aHi, bLo, bHi float64) float64 {
	lo, hi := aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	if hi > lo {
		return hi - lo
	}
	return 0
}

// WriteText renders the analysis' machine-readable core — the traffic
// matrix and the hotspot table — as fixed-width text. The output is
// fully deterministic for a deterministic run and is pinned by a golden
// test.
func (a *Analysis) WriteText(w io.Writer) error {
	if a == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "=== communication analysis ===\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "P=%d  parallel time %.1fµs  msgs=%d  words=%d\n",
		a.P, a.Time, a.Msgs, a.Words)

	fmt.Fprintf(w, "\ntraffic matrix (msgs/words, src rows x dst cols; remaps on the diagonal):\n")
	fmt.Fprintf(w, "%8s", "")
	for d := 0; d < a.P; d++ {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("p%d", d))
	}
	fmt.Fprintf(w, "\n")
	for s := 0; s < a.P; s++ {
		fmt.Fprintf(w, "%8s", fmt.Sprintf("p%d", s))
		for d := 0; d < a.P; d++ {
			if a.Matrix.Msgs[s][d] == 0 {
				fmt.Fprintf(w, " %14s", ".")
				continue
			}
			fmt.Fprintf(w, " %14s", fmt.Sprintf("%d/%d", a.Matrix.Msgs[s][d], a.Matrix.Words[s][d]))
		}
		fmt.Fprintf(w, "\n")
	}

	fmt.Fprintf(w, "\ncommunication hotspots (by cost = send + blocked time):\n")
	fmt.Fprintf(w, "  %-18s %-10s %7s %9s %11s %12s %10s %7s\n",
		"site", "op", "msgs", "words", "send(µs)", "blocked(µs)", "cost(µs)", "%crit")
	const maxHotspots = 12
	for i, h := range a.Hotspots {
		if i >= maxHotspots {
			fmt.Fprintf(w, "  ... %d more sites\n", len(a.Hotspots)-maxHotspots)
			break
		}
		fmt.Fprintf(w, "  %-18s %-10s %7d %9d %11.1f %12.1f %10.1f %6.1f%%\n",
			h.Site(), h.Op, h.Msgs, h.Words, h.SendTime, h.BlockedTime, h.Cost(), 100*h.CPShare)
	}

	if len(a.Histogram) > 0 {
		fmt.Fprintf(w, "\nmessage sizes:\n")
		for _, b := range a.Histogram {
			rng := fmt.Sprintf("%d-%d words", b.Lo, b.Hi)
			if b.Lo == b.Hi {
				rng = fmt.Sprintf("%d words", b.Lo)
			}
			fmt.Fprintf(w, "  %-16s msgs=%-8d words=%d\n", rng, b.Msgs, b.Words)
		}
	}

	if len(a.Faults) > 0 {
		fmt.Fprintf(w, "\ninjected faults:\n")
		for _, fs := range a.Faults {
			if fs.Name == "straggler" {
				// Time holds flop-cost multipliers, not µs
				fmt.Fprintf(w, "  %-12s count=%d\n", fs.Name, fs.Count)
				continue
			}
			fmt.Fprintf(w, "  %-12s count=%-8d total=%.1fµs\n", fs.Name, fs.Count, fs.Time)
		}
	}
	if len(a.Aborts) > 0 {
		fmt.Fprintf(w, "\naborted processors:\n")
		for _, ab := range a.Aborts {
			site := "(unattributed)"
			if ab.Proc != "" {
				site = fmt.Sprintf("%s:%d", ab.Proc, ab.Line)
			}
			fmt.Fprintf(w, "  p%-3d %-9s p%d->p%d at %-18s clock=%.1fµs\n",
				ab.PID, ab.Reason, ab.Src, ab.Dst, site, ab.Clock)
		}
	}
	return nil
}
