package analyze

import (
	"fmt"
	"html/template"
	"io"
	"math"

	"fortd/internal/explain"
)

// Table is a pre-rendered table a caller can attach to a report
// section (e.g. fdbench's snapshot-comparison deltas).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Note   string
}

// Section is one workload's slice of an HTML report.
type Section struct {
	Name string
	// Headline is the one-line run summary shown under the heading.
	Headline string
	Analysis *Analysis
	Remarks  []explain.Remark
	Sweep    *Sweep
	Tables   []Table
}

// Page is a full report: one or more sections rendered into a single
// self-contained HTML document (inline CSS + inline SVG, no external
// assets, no scripts).
type Page struct {
	Title    string
	Subtitle string
	Sections []*Section
}

// WriteHTML renders the page. The document is self-contained by
// construction: the template references no URLs.
func WriteHTML(w io.Writer, p *Page) error {
	vp := &htmlPage{Title: p.Title, Subtitle: p.Subtitle}
	for _, s := range p.Sections {
		vp.Sections = append(vp.Sections, buildSection(s))
	}
	return reportTmpl.Execute(w, vp)
}

// --- view models ----------------------------------------------------------
//
// All geometry and color is precomputed here so the template only
// stamps values into elements.

type htmlPage struct {
	Title    string
	Subtitle string
	Sections []*htmlSection
}

type htmlSection struct {
	Name           string
	Headline       string
	Heatmap        *svgHeatmap
	Hotspots       []Hotspot
	HasCrit        bool
	Timeline       *svgTimeline
	ProcBars       *svgProcBars
	Histo          *svgHisto
	Speedup        *svgSpeedup
	SweepRows      []sweepRow
	Remarks        []remarkGroup
	RemarksOmitted int
	Tables         []Table
}

type svgRect struct {
	X, Y, W, H float64
	Fill       string
	Title      string
}

type svgText struct {
	X, Y   float64
	Text   string
	Anchor string
}

type svgLine struct {
	X1, Y1, X2, Y2 float64
	Dash           bool
}

type svgHeatmap struct {
	W, H  float64
	Cells []svgRect
	XLab  []svgText
	YLab  []svgText
}

type svgTimeline struct {
	W, H  float64
	Bars  []svgRect
	Ticks []svgText
}

type svgProcBars struct {
	W, H float64
	Bars []svgRect
	Labs []svgText
}

type svgHisto struct {
	W, H float64
	Bars []svgRect
	Labs []svgText
}

type svgSpeedup struct {
	W, H   float64
	Ideal  svgLine
	Path   string
	Points []svgRect
	Axes   []svgLine
	Ticks  []svgText
}

type sweepRow struct {
	P          int
	Time       string
	Speedup    string
	Efficiency string
	Msgs       int64
	Words      int64
}

type remarkGroup struct {
	Proc    string
	Remarks []explain.Remark
}

// Palette: the skill-validated reference palette (light mode). The
// sequential blue ramp colors the heatmap; categorical slots 1 (blue)
// and 2 (orange) plus neutral gray color the compute/send/blocked
// state breakdown, so "blocked" reads as recessive idle time.
const (
	colCompute = "#2a78d6" // categorical slot 1, blue
	colSend    = "#eb6834" // categorical slot 2, orange
	colBlocked = "#75746e" // neutral gray: idle time recedes
	colAccent  = "#2a78d6"
	colZero    = "#f0efec" // empty-cell surface
)

// seqStops is the sequential blue ramp, light→dark (steps 100, 400, 700).
var seqStops = [3][3]int{
	{0xcd, 0xe2, 0xfb},
	{0x39, 0x87, 0xe5},
	{0x0d, 0x36, 0x6b},
}

// seqColor maps t ∈ [0,1] onto the sequential ramp.
func seqColor(t float64) string {
	if t <= 0 {
		return colZero
	}
	if t > 1 {
		t = 1
	}
	// two linear segments: 100→400, 400→700
	var a, b [3]int
	if t < 0.5 {
		a, b = seqStops[0], seqStops[1]
		t = t * 2
	} else {
		a, b = seqStops[1], seqStops[2]
		t = (t - 0.5) * 2
	}
	lerp := func(x, y int) int { return x + int(t*float64(y-x)) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(a[0], b[0]), lerp(a[1], b[1]), lerp(a[2], b[2]))
}

func buildSection(s *Section) *htmlSection {
	hs := &htmlSection{Name: s.Name, Headline: s.Headline, Tables: s.Tables}
	if a := s.Analysis; a != nil {
		hs.Heatmap = buildHeatmap(a)
		hs.Hotspots = a.Hotspots
		if len(hs.Hotspots) > 16 {
			hs.Hotspots = hs.Hotspots[:16]
		}
		for _, h := range hs.Hotspots {
			if h.CPShare > 0 {
				hs.HasCrit = true
			}
		}
		hs.Timeline = buildTimeline(a)
		hs.ProcBars = buildProcBars(a)
		hs.Histo = buildHisto(a)
	}
	if s.Sweep != nil && len(s.Sweep.Points) > 0 {
		hs.Speedup = buildSpeedup(s.Sweep)
		for _, pt := range s.Sweep.Points {
			hs.SweepRows = append(hs.SweepRows, sweepRow{
				P:          pt.P,
				Time:       fmt.Sprintf("%.0f", pt.Time),
				Speedup:    fmt.Sprintf("%.2f", s.Sweep.Speedup(pt)),
				Efficiency: fmt.Sprintf("%.1f%%", 100*s.Sweep.Efficiency(pt)),
				Msgs:       pt.Msgs, Words: pt.Words,
			})
		}
	}
	hs.Remarks, hs.RemarksOmitted = groupRemarks(s.Remarks)
	return hs
}

func buildHeatmap(a *Analysis) *svgHeatmap {
	if a.Matrix == nil || a.P == 0 {
		return nil
	}
	cell := 40.0
	if a.P > 12 {
		cell = 480.0 / float64(a.P)
	}
	const m = 34.0 // margin for labels
	hm := &svgHeatmap{W: m + cell*float64(a.P) + 2, H: m + cell*float64(a.P) + 2}
	var maxW int64
	for s := 0; s < a.P; s++ {
		for d := 0; d < a.P; d++ {
			if a.Matrix.Words[s][d] > maxW {
				maxW = a.Matrix.Words[s][d]
			}
		}
	}
	for s := 0; s < a.P; s++ {
		hm.YLab = append(hm.YLab, svgText{X: m - 6, Y: m + cell*float64(s) + cell/2 + 4,
			Text: fmt.Sprintf("p%d", s), Anchor: "end"})
		hm.XLab = append(hm.XLab, svgText{X: m + cell*float64(s) + cell/2, Y: m - 8,
			Text: fmt.Sprintf("p%d", s), Anchor: "middle"})
		for d := 0; d < a.P; d++ {
			t := 0.0
			if maxW > 0 && a.Matrix.Words[s][d] > 0 {
				// sqrt scale keeps small flows visible next to the peak
				t = math.Sqrt(float64(a.Matrix.Words[s][d]) / float64(maxW))
			}
			hm.Cells = append(hm.Cells, svgRect{
				X: m + cell*float64(d), Y: m + cell*float64(s),
				W: cell - 2, H: cell - 2,
				Fill: seqColor(t),
				Title: fmt.Sprintf("p%d -> p%d: %d msgs, %d words, %.1fus",
					s, d, a.Matrix.Msgs[s][d], a.Matrix.Words[s][d], a.Matrix.Cost[s][d]),
			})
		}
	}
	return hm
}

func buildTimeline(a *Analysis) *svgTimeline {
	if len(a.Timeline) == 0 || a.Time <= 0 {
		return nil
	}
	const W, H, m = 660.0, 150.0, 30.0
	tl := &svgTimeline{W: W, H: H + 20}
	bw := (W - m) / float64(len(a.Timeline))
	capacity := float64(a.P) * a.BinWidth // processor-µs per bin
	for i, b := range a.Timeline {
		x := m + float64(i)*bw
		frac := func(v float64) float64 {
			if capacity <= 0 {
				return 0
			}
			return H * v / capacity
		}
		y := H
		title := fmt.Sprintf("t=%.0f-%.0fus: compute %.0f, send %.0f, blocked %.0f proc-us",
			b.Start, b.Start+a.BinWidth, b.Compute, b.Send, b.Blocked)
		for _, seg := range []struct {
			v    float64
			fill string
		}{{b.Compute, colCompute}, {b.Send, colSend}, {b.Blocked, colBlocked}} {
			h := frac(seg.v)
			if h <= 0 {
				continue
			}
			y -= h
			tl.Bars = append(tl.Bars, svgRect{X: x, Y: y, W: bw - 1, H: h - 0.5, Fill: seg.fill, Title: title})
		}
	}
	for i := 0; i <= 4; i++ {
		t := a.Time * float64(i) / 4
		tl.Ticks = append(tl.Ticks, svgText{X: m + (W-m)*float64(i)/4, Y: H + 16,
			Text: fmt.Sprintf("%.0fµs", t), Anchor: "middle"})
	}
	return tl
}

func buildProcBars(a *Analysis) *svgProcBars {
	if a.Profile == nil || len(a.Profile.Procs) == 0 {
		return nil
	}
	const W, rowH, m = 660.0, 18.0, 40.0
	var maxClock float64
	for _, pp := range a.Profile.Procs {
		if pp.Clock > maxClock {
			maxClock = pp.Clock
		}
	}
	if maxClock <= 0 {
		return nil
	}
	pb := &svgProcBars{W: W, H: rowH*float64(len(a.Profile.Procs)) + 6}
	for i, pp := range a.Profile.Procs {
		y := float64(i) * rowH
		pb.Labs = append(pb.Labs, svgText{X: m - 6, Y: y + rowH - 6,
			Text: fmt.Sprintf("p%d", pp.PID), Anchor: "end"})
		x := m
		title := fmt.Sprintf("p%d: compute %.1fus, send %.1fus, blocked %.1fus of %.1fus",
			pp.PID, pp.Compute, pp.Send, pp.Blocked, pp.Clock)
		for _, seg := range []struct {
			v    float64
			fill string
		}{{pp.Compute, colCompute}, {pp.Send, colSend}, {pp.Blocked, colBlocked}} {
			w := (W - m - 4) * seg.v / maxClock
			if w <= 0 {
				continue
			}
			pb.Bars = append(pb.Bars, svgRect{X: x, Y: y, W: w - 1, H: rowH - 4, Fill: seg.fill, Title: title})
			x += w
		}
	}
	return pb
}

func buildHisto(a *Analysis) *svgHisto {
	if len(a.Histogram) == 0 {
		return nil
	}
	const W, H, m = 420.0, 120.0, 30.0
	var maxMsgs int64
	for _, b := range a.Histogram {
		if b.Msgs > maxMsgs {
			maxMsgs = b.Msgs
		}
	}
	if maxMsgs == 0 {
		return nil
	}
	h := &svgHisto{W: W, H: H + 34}
	bw := (W - 8) / float64(len(a.Histogram))
	for i, b := range a.Histogram {
		bh := (H - m) * float64(b.Msgs) / float64(maxMsgs)
		rng := fmt.Sprintf("%d-%d", b.Lo, b.Hi)
		if b.Lo == b.Hi {
			rng = fmt.Sprintf("%d", b.Lo)
		}
		h.Bars = append(h.Bars, svgRect{
			X: 4 + float64(i)*bw, Y: H - bh, W: bw - 4, H: bh, Fill: colAccent,
			Title: fmt.Sprintf("%s words: %d msgs, %d words total", rng, b.Msgs, b.Words),
		})
		h.Labs = append(h.Labs, svgText{X: 4 + float64(i)*bw + bw/2, Y: H + 14, Text: rng, Anchor: "middle"})
		h.Labs = append(h.Labs, svgText{X: 4 + float64(i)*bw + bw/2, Y: H - bh - 4,
			Text: fmt.Sprintf("%d", b.Msgs), Anchor: "middle"})
	}
	h.Labs = append(h.Labs, svgText{X: W / 2, Y: H + 30, Text: "message size (words)", Anchor: "middle"})
	return h
}

func buildSpeedup(sw *Sweep) *svgSpeedup {
	const W, H, m = 340.0, 260.0, 36.0
	sp := &svgSpeedup{W: W, H: H}
	maxP := 1.0
	maxS := 1.0
	for _, pt := range sw.Points {
		if float64(pt.P) > maxP {
			maxP = float64(pt.P)
		}
		if s := sw.Speedup(pt); s > maxS {
			maxS = s
		}
	}
	if maxS < maxP {
		maxS = maxP // room for the ideal line
	}
	px := func(p float64) float64 { return m + (W-m-10)*p/maxP }
	py := func(s float64) float64 { return (H - m) - (H-m-10)*s/maxS }
	sp.Axes = []svgLine{
		{X1: m, Y1: H - m, X2: W - 6, Y2: H - m},
		{X1: m, Y1: H - m, X2: m, Y2: 6},
	}
	sp.Ideal = svgLine{X1: px(0), Y1: py(0), X2: px(maxP), Y2: py(maxP), Dash: true}
	path := ""
	for i, pt := range sw.Points {
		x, y := px(float64(pt.P)), py(sw.Speedup(pt))
		if i == 0 {
			path += fmt.Sprintf("M%.1f %.1f", x, y)
		} else {
			path += fmt.Sprintf(" L%.1f %.1f", x, y)
		}
		sp.Points = append(sp.Points, svgRect{X: x - 4, Y: y - 4, W: 8, H: 8, Fill: colAccent,
			Title: fmt.Sprintf("P=%d: speedup %.2fx, efficiency %.0f%%",
				pt.P, sw.Speedup(pt), 100*sw.Efficiency(pt))})
		sp.Ticks = append(sp.Ticks, svgText{X: x, Y: H - m + 16, Text: fmt.Sprintf("%d", pt.P), Anchor: "middle"})
	}
	sp.Path = path
	for i := 1; i <= 4; i++ {
		s := maxS * float64(i) / 4
		sp.Ticks = append(sp.Ticks, svgText{X: m - 6, Y: py(s) + 4, Text: fmt.Sprintf("%.0f", s), Anchor: "end"})
	}
	sp.Ticks = append(sp.Ticks, svgText{X: (W + m) / 2, Y: H - 6, Text: "processors", Anchor: "middle"})
	return sp
}

func groupRemarks(remarks []explain.Remark) ([]remarkGroup, int) {
	const maxRemarks = 200
	omitted := 0
	if len(remarks) > maxRemarks {
		omitted = len(remarks) - maxRemarks
		remarks = remarks[:maxRemarks]
	}
	var groups []remarkGroup
	idx := map[string]int{}
	for _, r := range remarks {
		proc := r.Proc
		if proc == "" {
			proc = "(program)"
		}
		i, ok := idx[proc]
		if !ok {
			i = len(groups)
			idx[proc] = i
			groups = append(groups, remarkGroup{Proc: proc})
		}
		groups[i].Remarks = append(groups[i].Remarks, r)
	}
	return groups, omitted
}

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
  /* light-mode report; palette per the validated reference instance */
  :root { color-scheme: light; }
  body { font: 14px/1.5 system-ui, sans-serif; color: #0b0b0b; background: #fcfcfb;
         max-width: 980px; margin: 2rem auto; padding: 0 1rem; }
  h1 { font-size: 1.5rem; } h2 { font-size: 1.2rem; margin-top: 2.2rem;
       border-bottom: 1px solid #e5e4e0; padding-bottom: .3rem; }
  h3 { font-size: 1rem; margin-top: 1.6rem; }
  .sub, .note { color: #52514e; }
  table { border-collapse: collapse; margin: .6rem 0; }
  th, td { padding: 3px 10px; text-align: right; font-variant-numeric: tabular-nums; }
  th { color: #52514e; font-weight: 600; border-bottom: 1px solid #e5e4e0; }
  th:first-child, td:first-child { text-align: left; }
  tr:nth-child(even) td { background: #f5f4f1; }
  svg text { font: 11px system-ui, sans-serif; fill: #52514e; }
  .legend { display: flex; gap: 1.2rem; margin: .4rem 0; color: #52514e; font-size: 12px; }
  .legend span::before { content: ""; display: inline-block; width: 10px; height: 10px;
                         margin-right: 5px; border-radius: 2px; background: var(--c); }
  details { margin: .5rem 0; } summary { cursor: pointer; color: #52514e; }
  .remark { margin-left: 1rem; } .remark b { font-weight: 600; }
  .k-applied { color: #008300; } .k-missed { color: #e34948; } .k-note { color: #52514e; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{if .Subtitle}}<p class="sub">{{.Subtitle}}</p>{{end}}
{{range .Sections}}
<h2>{{.Name}}</h2>
{{if .Headline}}<p class="sub">{{.Headline}}</p>{{end}}

{{range .Tables}}
<h3>{{.Title}}</h3>
<table>
<tr>{{range .Header}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}
</table>
{{if .Note}}<p class="note">{{.Note}}</p>{{end}}
{{end}}

{{with .Heatmap}}
<h3>Communication heatmap (words, src row &rarr; dst column)</h3>
<svg id="heatmap" width="{{.W}}" height="{{.H}}" role="img" aria-label="P by P communication matrix">
{{range .Cells}}<rect x="{{.X}}" y="{{.Y}}" width="{{.W}}" height="{{.H}}" rx="2" fill="{{.Fill}}"><title>{{.Title}}</title></rect>
{{end}}{{range .XLab}}<text x="{{.X}}" y="{{.Y}}" text-anchor="{{.Anchor}}">{{.Text}}</text>
{{end}}{{range .YLab}}<text x="{{.X}}" y="{{.Y}}" text-anchor="{{.Anchor}}">{{.Text}}</text>
{{end}}</svg>
{{end}}

{{if .Hotspots}}
<h3>Communication hotspots</h3>
<table id="hotspots">
<tr><th>site</th><th>op</th><th>msgs</th><th>words</th><th>send (µs)</th><th>blocked (µs)</th><th>cost (µs)</th>{{if .HasCrit}}<th>% of critical path</th>{{end}}</tr>
{{$crit := .HasCrit}}{{range .Hotspots}}<tr><td>{{.Site}}</td><td>{{.Op}}</td><td>{{.Msgs}}</td><td>{{.Words}}</td><td>{{printf "%.1f" .SendTime}}</td><td>{{printf "%.1f" .BlockedTime}}</td><td>{{printf "%.1f" .Cost}}</td>{{if $crit}}<td>{{printf "%.1f%%" .CPSharePct}}</td>{{end}}</tr>
{{end}}</table>
{{end}}

{{with .Timeline}}
<h3>Machine utilization over time</h3>
<div class="legend"><span style="--c:#2a78d6">compute</span><span style="--c:#eb6834">send</span><span style="--c:#75746e">blocked</span></div>
<svg id="timeline" width="{{.W}}" height="{{.H}}" role="img" aria-label="utilization timeline">
{{range .Bars}}<rect x="{{.X}}" y="{{.Y}}" width="{{.W}}" height="{{.H}}" fill="{{.Fill}}"><title>{{.Title}}</title></rect>
{{end}}{{range .Ticks}}<text x="{{.X}}" y="{{.Y}}" text-anchor="{{.Anchor}}">{{.Text}}</text>
{{end}}</svg>
{{end}}

{{with .ProcBars}}
<h3>Per-processor time breakdown</h3>
<div class="legend"><span style="--c:#2a78d6">compute</span><span style="--c:#eb6834">send</span><span style="--c:#75746e">blocked</span></div>
<svg id="profile" width="{{.W}}" height="{{.H}}" role="img" aria-label="per-processor profile">
{{range .Bars}}<rect x="{{.X}}" y="{{.Y}}" width="{{.W}}" height="{{.H}}" rx="2" fill="{{.Fill}}"><title>{{.Title}}</title></rect>
{{end}}{{range .Labs}}<text x="{{.X}}" y="{{.Y}}" text-anchor="{{.Anchor}}">{{.Text}}</text>
{{end}}</svg>
{{end}}

{{with .Histo}}
<h3>Message-size distribution</h3>
<svg id="histogram" width="{{.W}}" height="{{.H}}" role="img" aria-label="message size histogram">
{{range .Bars}}<rect x="{{.X}}" y="{{.Y}}" width="{{.W}}" height="{{.H}}" rx="2" fill="{{.Fill}}"><title>{{.Title}}</title></rect>
{{end}}{{range .Labs}}<text x="{{.X}}" y="{{.Y}}" text-anchor="{{.Anchor}}">{{.Text}}</text>
{{end}}</svg>
{{end}}

{{if .Speedup}}
<h3>Processor scaling</h3>
<svg id="speedup" width="{{.Speedup.W}}" height="{{.Speedup.H}}" role="img" aria-label="speedup curve">
{{range .Speedup.Axes}}<line x1="{{.X1}}" y1="{{.Y1}}" x2="{{.X2}}" y2="{{.Y2}}" stroke="#c9c8c2" stroke-width="1"/>
{{end}}<line x1="{{.Speedup.Ideal.X1}}" y1="{{.Speedup.Ideal.Y1}}" x2="{{.Speedup.Ideal.X2}}" y2="{{.Speedup.Ideal.Y2}}" stroke="#a8a7a0" stroke-width="1.5" stroke-dasharray="5 4"/>
<path d="{{.Speedup.Path}}" fill="none" stroke="#2a78d6" stroke-width="2"/>
{{range .Speedup.Points}}<rect x="{{.X}}" y="{{.Y}}" width="{{.W}}" height="{{.H}}" rx="4" fill="{{.Fill}}"><title>{{.Title}}</title></rect>
{{end}}{{range .Speedup.Ticks}}<text x="{{.X}}" y="{{.Y}}" text-anchor="{{.Anchor}}">{{.Text}}</text>
{{end}}</svg>
<table>
<tr><th>P</th><th>time (µs)</th><th>speedup</th><th>efficiency</th><th>msgs</th><th>words</th></tr>
{{range .SweepRows}}<tr><td>{{.P}}</td><td>{{.Time}}</td><td>{{.Speedup}}&times;</td><td>{{.Efficiency}}</td><td>{{.Msgs}}</td><td>{{.Words}}</td></tr>
{{end}}</table>
{{end}}

{{if .Remarks}}
<h3>Optimization remarks</h3>
<div id="remarks">
{{range .Remarks}}
<details open><summary>{{.Proc}} ({{len .Remarks}})</summary>
{{range .Remarks}}<div class="remark"><b class="k-{{.Kind}}">{{.Kind}}</b> [{{.Pass}}] {{if .Line}}line {{.Line}}: {{end}}{{.Name}} &mdash; {{.Msg}}</div>
{{end}}</details>
{{end}}
{{if .RemarksOmitted}}<p class="note">&hellip; {{.RemarksOmitted}} more remarks omitted</p>{{end}}
</div>
{{end}}
{{end}}
</body>
</html>
`))
