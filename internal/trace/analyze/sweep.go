package analyze

import (
	"fmt"
	"io"
	"sort"
)

// Point is one processor count's measurement in a scaling sweep.
type Point struct {
	P     int
	Time  float64 // parallel time, µs
	Msgs  int64
	Words int64
}

// Sweep is a processor-scaling experiment: the same workload measured
// across P ∈ {1, 2, 4, ...}, with speedup and efficiency computed
// against the smallest measured P (the paper's §9 presentation).
type Sweep struct {
	Points []Point
}

// RunSweep measures the workload at each processor count by calling
// run, which compiles and executes it for that P and returns the
// resulting point. Points come back sorted by P.
func RunSweep(ps []int, run func(p int) (Point, error)) (*Sweep, error) {
	s := &Sweep{}
	for _, p := range ps {
		pt, err := run(p)
		if err != nil {
			return nil, fmt.Errorf("sweep P=%d: %w", p, err)
		}
		pt.P = p
		s.Points = append(s.Points, pt)
	}
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].P < s.Points[j].P })
	return s, nil
}

// Baseline is the smallest-P point, the denominator of every speedup.
func (s *Sweep) Baseline() Point {
	if s == nil || len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[0]
}

// Speedup is T(baseline)·baseline.P / T(p), normalized so that a
// P=1 baseline gives the conventional T(1)/T(p).
func (s *Sweep) Speedup(pt Point) float64 {
	base := s.Baseline()
	if pt.Time <= 0 || base.Time <= 0 {
		return 0
	}
	return base.Time * float64(base.P) / pt.Time
}

// Efficiency is Speedup/P in [0, 1] for well-behaved scaling.
func (s *Sweep) Efficiency(pt Point) float64 {
	if pt.P == 0 {
		return 0
	}
	return s.Speedup(pt) / float64(pt.P)
}

// WriteText renders the sweep as the speedup/efficiency table.
func (s *Sweep) WriteText(w io.Writer) error {
	if s == nil || len(s.Points) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%4s %12s %9s %11s %10s %12s\n",
		"P", "time(µs)", "speedup", "efficiency", "msgs", "words"); err != nil {
		return err
	}
	for _, pt := range s.Points {
		fmt.Fprintf(w, "%4d %12.0f %8.2fx %10.1f%% %10d %12d\n",
			pt.P, pt.Time, s.Speedup(pt), 100*s.Efficiency(pt), pt.Msgs, pt.Words)
	}
	return nil
}
