// Package trace is the structured event-tracing and metrics subsystem
// threaded through both halves of the system: the compiler driver emits
// per-phase spans and counters (wall-clock time), and the machine
// simulator emits one event per message, broadcast step and remap
// (virtual time), each carrying its source attribution — the procedure
// and statement whose compilation placed the communication. Two
// exporters render the collected events: a human-readable text summary
// (WriteText) and Chrome trace_event JSON (WriteChrome) loadable in
// chrome://tracing or Perfetto.
//
// A nil *Tracer is the disabled state: every method is nil-safe and
// allocation-free, so instrumented code can call unconditionally and
// default (untraced) runs pay only a pointer test.
package trace

import (
	"sync"
	"time"
)

// Kind classifies an event.
type Kind uint8

const (
	// KindPhase is a compiler phase span (wall-clock µs).
	KindPhase Kind = iota
	// KindCounter is a compiler metric (messages inserted, clones, ...).
	KindCounter
	// KindSend is a message leaving a processor (virtual µs).
	KindSend
	// KindRecv is a message arriving at a processor; Dur is the time the
	// receiver spent blocked waiting for it.
	KindRecv
	// KindRemap is one processor's participation in a collective
	// data-remapping operation.
	KindRemap
	// KindProcSummary carries one processor's end-of-run totals.
	KindProcSummary
	// KindAbort marks a processor unblocked by a cooperative abort,
	// deadlock detection or deadline expiry; Name is "abort" or
	// "deadlock" and the event carries the blocked operation's
	// attribution (Proc/Line), link (Src/Dst) and virtual clock (Start).
	KindAbort
	// KindFault is one injected fault from a machine.FaultPlan: a
	// delivery "delay" (Dur = injected µs), a duplicated message
	// ("dup" at the sender, "dup-drop" at the discarding receiver), or
	// a "straggler" announcement (Dur = flop-cost multiplier).
	KindFault
	// KindWait is the completion of a nonblocking receive (machine
	// ISend/IRecv/WaitHandle, split-phase broadcast): like KindRecv,
	// Dur is the time the processor actually stalled at the wait — the
	// part of the message flight the post-early/wait-late schedule
	// failed to hide under computation. It is appended after KindFault
	// so existing serialized kinds keep their values.
	KindWait
)

func (k Kind) String() string {
	switch k {
	case KindPhase:
		return "phase"
	case KindCounter:
		return "counter"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindRemap:
		return "remap"
	case KindProcSummary:
		return "proc"
	case KindAbort:
		return "abort"
	case KindFault:
		return "fault"
	case KindWait:
		return "wait"
	}
	return "?"
}

// Event is one trace record. Which fields are meaningful depends on
// Kind; unused fields are zero.
type Event struct {
	Kind Kind
	// Name is the phase/counter name, or the communication operation
	// that generated a message ("send", "bcast", "allgather", "reduce",
	// "remap").
	Name string
	// Proc is the source procedure the event is attributed to; Line is
	// the source line of the owning statement (0 when unknown).
	Proc string
	Line int
	// PID is the simulated processor the event occurred on.
	PID int
	// Src and Dst are the sending and receiving processors of a message.
	Src, Dst int
	// Words is the message (or remap) payload in data words.
	Words int
	// Start is the event's start time in µs — virtual time for simulator
	// events, wall-clock time relative to the tracer's epoch for
	// compiler phases. Dur is the span length.
	Start, Dur float64
	// Seq links a KindSend event to the KindRecv event of the same
	// message (0 when the tracer was attached mid-run).
	Seq int64
	// Value is the counter value (KindCounter).
	Value int64
	// Per-processor totals (KindProcSummary); Dur holds the clock and
	// Wait the cumulative receive-blocked time.
	Sent, Recvd, Flops int64
	Wait               float64
}

// Tracer collects events from concurrently executing instrumentation
// points. The zero value is NOT ready to use; create with New. A nil
// *Tracer is the disabled fast path.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	epoch  time.Time
	seq    int64
}

// New returns an enabled tracer.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Enabled reports whether events are being collected.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event. Safe for concurrent use and nil receivers.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// NextSeq returns a fresh message-sequence id (1, 2, ...).
func (t *Tracer) NextSeq() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.seq++
	s := t.seq
	t.mu.Unlock()
	return s
}

var noop = func() {}

// Phase opens a compiler phase span and returns the closure that ends
// it. Usage: defer t.Phase("parse")().
func (t *Tracer) Phase(name string) func() {
	if t == nil {
		return noop
	}
	start := time.Now()
	return func() {
		t.Emit(Event{
			Kind:  KindPhase,
			Name:  name,
			Start: float64(start.Sub(t.epoch)) / float64(time.Microsecond),
			Dur:   float64(time.Since(start)) / float64(time.Microsecond),
		})
	}
}

// Counter records one compiler metric.
func (t *Tracer) Counter(name string, value int64) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KindCounter, Name: name, Value: value})
}

// Events returns a snapshot of everything collected so far.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	return out
}

// Reset discards all collected events (the tracer stays enabled).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// MessageWords sums the data words carried by message-generating events
// (sends and remaps) — by construction this equals the simulator's
// Stats.Words for the traced run.
func MessageWords(events []Event) int64 {
	var w int64
	for _, ev := range events {
		if ev.Kind == KindSend || ev.Kind == KindRemap {
			w += int64(ev.Words)
		}
	}
	return w
}
