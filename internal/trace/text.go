package trace

import (
	"fmt"
	"io"
	"sort"
)

// site aggregates the messages generated at one source location by one
// communication operation.
type site struct {
	proc  string
	line  int
	op    string
	msgs  int64
	words int64
}

// faultLine aggregates one injected-fault kind for the text summary.
type faultLine struct {
	name  string
	count int64
	dur   float64
}

func (s site) key() string {
	if s.proc == "" {
		return "(unattributed)"
	}
	if s.line == 0 {
		return fmt.Sprintf("%s %s", s.proc, s.op)
	}
	return fmt.Sprintf("%s:%d %s", s.proc, s.line, s.op)
}

// WriteText renders the tracer's collected events with the package
// function of the same name.
func (t *Tracer) WriteText(w io.Writer) error { return WriteText(w, t.Events()) }

// WriteText renders the human-readable trace summary: compile phase
// timings and counters, the top communication sites by volume, the
// attribution rate, and per-processor utilization. Sections with no
// events are omitted, so a run-only trace contains no compiler lines
// and its output is fully deterministic (virtual time only).
func WriteText(w io.Writer, events []Event) error {
	events = sorted(events)
	var phases, counters, sums, aborts []Event
	sites := map[[3]interface{}]*site{}
	faults := map[string]*faultLine{}
	var msgs, words, remaps, attributed int64
	for _, ev := range events {
		switch ev.Kind {
		case KindPhase:
			phases = append(phases, ev)
		case KindCounter:
			counters = append(counters, ev)
		case KindProcSummary:
			sums = append(sums, ev)
		case KindAbort:
			aborts = append(aborts, ev)
		case KindFault:
			fl := faults[ev.Name]
			if fl == nil {
				fl = &faultLine{name: ev.Name}
				faults[ev.Name] = fl
			}
			fl.count++
			fl.dur += ev.Dur
		case KindSend, KindRemap:
			// one remap event stands for Value partner messages, the way
			// the cost model charges it
			weight := int64(1)
			if ev.Kind == KindRemap {
				remaps++
				weight = ev.Value
			}
			msgs += weight
			words += int64(ev.Words)
			if ev.Proc != "" {
				attributed += weight
			}
			k := [3]interface{}{ev.Proc, ev.Line, ev.Name}
			s := sites[k]
			if s == nil {
				s = &site{proc: ev.Proc, line: ev.Line, op: ev.Name}
				sites[k] = s
			}
			s.msgs += weight
			s.words += int64(ev.Words)
		}
	}

	if _, err := fmt.Fprintf(w, "=== trace summary ===\n"); err != nil {
		return err
	}

	if len(phases) > 0 {
		// phases are reported in start order, which New's single-pass
		// pipeline makes the natural reading order
		fmt.Fprintf(w, "\ncompile phases:\n")
		for _, ev := range phases {
			fmt.Fprintf(w, "  %-28s %10.1fµs\n", ev.Name, ev.Dur)
		}
	}
	if len(counters) > 0 {
		fmt.Fprintf(w, "\ncompile counters:\n")
		for _, ev := range counters {
			fmt.Fprintf(w, "  %-28s %10d\n", ev.Name, ev.Value)
		}
	}

	fmt.Fprintf(w, "\nrun: %d messages, %d words", msgs, words)
	if remaps > 0 {
		fmt.Fprintf(w, " (%d remap events)", remaps)
	}
	fmt.Fprintf(w, "\n")

	if len(faults) > 0 {
		names := make([]string, 0, len(faults))
		for name := range faults {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "injected faults (seeded fault plan):\n")
		for _, name := range names {
			fl := faults[name]
			switch name {
			case "straggler":
				// Dur carries the flop-cost multiplier, not a time
				fmt.Fprintf(w, "  %-12s count=%-6d\n", name, fl.count)
			default:
				fmt.Fprintf(w, "  %-12s count=%-6d total=%.1fµs\n", name, fl.count, fl.dur)
			}
		}
	}
	if len(aborts) > 0 {
		fmt.Fprintf(w, "aborted processors:\n")
		for _, ev := range aborts {
			site := "(unattributed)"
			if ev.Proc != "" {
				site = fmt.Sprintf("%s:%d", ev.Proc, ev.Line)
			}
			fmt.Fprintf(w, "  p%-3d %-9s p%d->p%d at %-18s clock=%.1fµs\n",
				ev.PID, ev.Name, ev.Src, ev.Dst, site, ev.Start)
		}
	}

	if len(sites) > 0 {
		list := make([]*site, 0, len(sites))
		for _, s := range sites {
			list = append(list, s)
		}
		sort.Slice(list, func(i, j int) bool {
			a, b := list[i], list[j]
			if a.words != b.words {
				return a.words > b.words
			}
			if a.msgs != b.msgs {
				return a.msgs > b.msgs
			}
			return a.key() < b.key()
		})
		fmt.Fprintf(w, "communication sites (by words):\n")
		const maxSites = 12
		for i, s := range list {
			if i >= maxSites {
				fmt.Fprintf(w, "  ... %d more sites\n", len(list)-maxSites)
				break
			}
			fmt.Fprintf(w, "  %-24s msgs=%-7d words=%d\n", s.key(), s.msgs, s.words)
		}
		pct := 100.0
		if msgs > 0 {
			pct = 100 * float64(attributed) / float64(msgs)
		}
		fmt.Fprintf(w, "attribution: %.1f%% of %d messages carry a source procedure\n", pct, msgs)
	}

	if len(sums) > 0 {
		sort.Slice(sums, func(i, j int) bool { return sums[i].PID < sums[j].PID })
		var maxClock float64
		for _, ev := range sums {
			if ev.Dur > maxClock {
				maxClock = ev.Dur
			}
		}
		fmt.Fprintf(w, "\nper-processor (parallel time %.1fµs):\n", maxClock)
		for _, ev := range sums {
			busy := 100.0
			if ev.Dur > 0 {
				busy = 100 * (ev.Dur - ev.Wait) / ev.Dur
			}
			fmt.Fprintf(w, "  p%-3d clock=%-11s busy=%5.1f%%  sent=%-6d recvd=%-6d words=%-8d flops=%-8d wait=%.1fµs\n",
				ev.PID, fmt.Sprintf("%.1fµs", ev.Dur), busy, ev.Sent, ev.Recvd, int64(ev.Words), ev.Flops, ev.Wait)
		}
		fmt.Fprintf(w, "\n")
		if err := ComputeProfile(events).WriteText(w); err != nil {
			return err
		}
	}
	return nil
}
