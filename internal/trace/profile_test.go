package trace

import (
	"math"
	"testing"
)

// TestCriticalPathHandBuilt exercises criticalPath on a hand-built
// event set whose longest send→recv chain is known by construction.
//
// Two processors, latency 10, one word per message (1µs transfer):
//
//	p0: computes 100µs, sends (start=100, dur=10, seq=1), computes to 150
//	p1: computes 20µs, recv blocks (start=20, dur=91: arrival at
//	    100+10+1=111), then computes to 130
//
// The chain through the blocking message is
//
//	p0 compute 100 + send 10 + in-flight (111-110=1) + p1 tail (130-111=19)
//	= 130
//
// which beats p0's own chain 100+10+40 = 150? No — p0's chain is
// 150 (it never blocks), so the critical path is max(150, 130) = 150.
// To make the cross-processor chain decisive, p1's tail is extended to
// 80µs of compute (clock 191): its chain is 100+10+1+80 = 191 while
// p0's is 150.
func TestCriticalPathHandBuilt(t *testing.T) {
	events := []Event{
		{Kind: KindSend, Name: "send", PID: 0, Src: 0, Dst: 1, Words: 1,
			Start: 100, Dur: 10, Seq: 1},
		{Kind: KindRecv, Name: "send", PID: 1, Src: 0, Dst: 1, Words: 1,
			Start: 20, Dur: 91, Seq: 1},
		{Kind: KindProcSummary, PID: 0, Dur: 150},
		{Kind: KindProcSummary, PID: 1, Dur: 191, Wait: 91},
	}
	prof := ComputeProfile(events)
	if prof == nil {
		t.Fatal("ComputeProfile returned nil")
	}
	// p1's chain: 100 (p0 compute) + 10 (send) + 1 (in-flight) + 80 (tail)
	want := 191.0
	if math.Abs(prof.CriticalPath-want) > 1e-9 {
		t.Errorf("critical path = %v, want %v", prof.CriticalPath, want)
	}
}

// TestCriticalPathNonBlockingRecv: a receive that found its message
// already delivered (Dur == 0) adds no cross-processor edge, so the
// critical path is just the longest local chain.
func TestCriticalPathNonBlockingRecv(t *testing.T) {
	events := []Event{
		{Kind: KindSend, Name: "send", PID: 0, Src: 0, Dst: 1, Words: 1,
			Start: 5, Dur: 10, Seq: 1},
		// receiver was already past the arrival time: no blocking
		{Kind: KindRecv, Name: "send", PID: 1, Src: 0, Dst: 1, Words: 1,
			Start: 400, Dur: 0, Seq: 1},
		{Kind: KindProcSummary, PID: 0, Dur: 15},
		{Kind: KindProcSummary, PID: 1, Dur: 420},
	}
	prof := ComputeProfile(events)
	if prof == nil {
		t.Fatal("ComputeProfile returned nil")
	}
	// p1: 400 compute before the recv + 20 after = 420, no sender edge
	if math.Abs(prof.CriticalPath-420) > 1e-9 {
		t.Errorf("critical path = %v, want 420", prof.CriticalPath)
	}
}

// TestCriticalPathChain: a three-processor relay where each hop blocks;
// the path must thread through both messages.
func TestCriticalPathChain(t *testing.T) {
	// latency 10, 0 per-word cost. p0 computes 50, sends to p1 (arrival
	// 70); p1 blocked from 0, computes 30 after (clock 100), sends to p2
	// (arrival 120); p2 blocked from 0, computes 5 after (clock 125).
	events := []Event{
		{Kind: KindSend, Name: "send", PID: 0, Src: 0, Dst: 1, Words: 0,
			Start: 50, Dur: 10, Seq: 1},
		{Kind: KindRecv, Name: "send", PID: 1, Src: 0, Dst: 1, Words: 0,
			Start: 0, Dur: 70, Seq: 1},
		{Kind: KindSend, Name: "send", PID: 1, Src: 1, Dst: 2, Words: 0,
			Start: 100, Dur: 10, Seq: 2},
		{Kind: KindRecv, Name: "send", PID: 2, Src: 1, Dst: 2, Words: 0,
			Start: 0, Dur: 120, Seq: 2},
		{Kind: KindProcSummary, PID: 0, Dur: 60},
		{Kind: KindProcSummary, PID: 1, Dur: 110, Wait: 70},
		{Kind: KindProcSummary, PID: 2, Dur: 125, Wait: 120},
	}
	prof := ComputeProfile(events)
	if prof == nil {
		t.Fatal("ComputeProfile returned nil")
	}
	// 50 (p0) + 10 (send) + 10 (flight) + 30 (p1) + 10 (send) + 10
	// (flight) + 5 (p2 tail) = 125: the whole run is one chain
	if math.Abs(prof.CriticalPath-125) > 1e-9 {
		t.Errorf("critical path = %v, want 125", prof.CriticalPath)
	}
}
