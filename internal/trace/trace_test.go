package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsSafeAndAllocationFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer events = %v", got)
	}
	if seq := tr.NextSeq(); seq != 0 {
		t.Fatalf("nil tracer seq = %d", seq)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: KindSend, Words: 10})
		tr.Phase("p")()
		tr.Counter("c", 1)
		tr.NextSeq()
		tr.Reset()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}

func TestPhaseAndCounter(t *testing.T) {
	tr := New()
	end := tr.Phase("parse")
	end()
	tr.Counter("messages", 7)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Kind != KindPhase || evs[0].Name != "parse" || evs[0].Dur < 0 {
		t.Errorf("phase event = %+v", evs[0])
	}
	if evs[1].Kind != KindCounter || evs[1].Value != 7 {
		t.Errorf("counter event = %+v", evs[1])
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("reset did not clear events")
	}
}

func TestMessageWords(t *testing.T) {
	evs := []Event{
		{Kind: KindSend, Words: 10},
		{Kind: KindRecv, Words: 10}, // recv must not double-count
		{Kind: KindSend, Words: 5},
		{Kind: KindRemap, Words: 30},
		{Kind: KindCounter, Value: 99},
	}
	if got := MessageWords(evs); got != 45 {
		t.Errorf("MessageWords = %d, want 45", got)
	}
}

// sample is a small synthetic trace exercising every event kind.
func sample() []Event {
	return []Event{
		{Kind: KindPhase, Name: "parse", Start: 0, Dur: 12.5},
		{Kind: KindCounter, Name: "messages-inserted", Value: 3},
		{Kind: KindSend, Name: "send", Proc: "JAC", Line: 9, PID: 0, Src: 0, Dst: 1, Words: 16, Start: 10, Dur: 76.4, Seq: 1},
		{Kind: KindRecv, Name: "send", Proc: "JAC", Line: 9, PID: 1, Src: 0, Dst: 1, Words: 16, Start: 40, Dur: 46.4, Seq: 1},
		{Kind: KindSend, Name: "bcast", Proc: "MAIN", Line: 4, PID: 1, Src: 1, Dst: 0, Words: 1, Start: 90, Dur: 70.4, Seq: 2},
		{Kind: KindRemap, Name: "remap", Proc: "ADI", Line: 12, PID: 2, Words: 64, Start: 100, Dur: 95.6, Value: 3},
		{Kind: KindProcSummary, PID: 0, Dur: 500, Wait: 100, Sent: 2, Recvd: 1, Words: 17, Flops: 400},
		{Kind: KindProcSummary, PID: 1, Dur: 480, Wait: 50, Sent: 1, Recvd: 2, Words: 16, Flops: 380},
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			TS   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			PID  int                    `json:"pid"`
			TID  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var sends int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.PID == ChromePIDMachine && !strings.HasPrefix(ev.Name, "wait ") && ev.Args["words"] != nil {
			sends++
		}
	}
	if sends != 3 {
		t.Errorf("message slices = %d, want 3 (2 sends + 1 remap)", sends)
	}
}

func TestWriteChromeMonotoneTimestamps(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			TS  float64 `json:"ts"`
			PID int     `json:"pid"`
			TID int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	last := map[[2]int]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		k := [2]int{ev.PID, ev.TID}
		if prev, ok := last[k]; ok && ev.TS < prev {
			t.Fatalf("timestamps not monotone on pid=%d tid=%d: %f after %f", ev.PID, ev.TID, ev.TS, prev)
		}
		last[k] = ev.TS
	}
}

func TestWriteTextSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"compile phases:",
		"parse",
		"messages-inserted",
		// 2 sends + remap weighted by its 3 partners = 5 messages,
		// 16+1+64 = 81 words
		"run: 5 messages, 81 words (1 remap events)",
		"JAC:9 send",
		"ADI:12 remap",
		"attribution: 100.0% of 5 messages",
		"per-processor",
		"p0",
		"p1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "run: 0 messages, 0 words") {
		t.Errorf("empty summary = %q", buf.String())
	}
}

func TestTracerSeqMonotone(t *testing.T) {
	tr := New()
	prev := int64(0)
	for i := 0; i < 10; i++ {
		s := tr.NextSeq()
		if s <= prev {
			t.Fatalf("seq %d after %d", s, prev)
		}
		prev = s
	}
}

func TestComputeProfile(t *testing.T) {
	prof := ComputeProfile(sample())
	if prof == nil {
		t.Fatal("no profile from sample events")
	}
	if len(prof.Procs) != 2 {
		t.Fatalf("got %d proc profiles, want 2", len(prof.Procs))
	}
	p0, p1 := prof.Procs[0], prof.Procs[1]
	// p0: clock 500, wait 100, one send of 76.4µs
	if p0.PID != 0 || p0.Blocked != 100 || p0.Send != 76.4 {
		t.Errorf("p0 profile = %+v", p0)
	}
	if want := 500.0 - 100 - 76.4; p0.Compute != want {
		t.Errorf("p0 compute = %g, want %g", p0.Compute, want)
	}
	// p1: clock 480, wait 50, one bcast send of 70.4µs
	if p1.PID != 1 || p1.Blocked != 50 || p1.Send != 70.4 {
		t.Errorf("p1 profile = %+v", p1)
	}
	// busy: p0=400, p1=430 → imbalance 430/415
	if want := 430.0 / 415.0; !close(prof.Imbalance, want) {
		t.Errorf("imbalance = %g, want %g", prof.Imbalance, want)
	}
	// p0 never blocks, so its chain spans its whole clock
	if !close(prof.CriticalPath, 500) {
		t.Errorf("critical path = %g, want 500", prof.CriticalPath)
	}
}

func TestComputeProfileNoSummaries(t *testing.T) {
	if prof := ComputeProfile([]Event{{Kind: KindSend, Words: 4}}); prof != nil {
		t.Errorf("profile without summaries = %+v, want nil", prof)
	}
}

func TestCriticalPathFollowsSendRecvEdge(t *testing.T) {
	// p0 computes 100µs then sends (10µs); p1 blocks from t=0 until the
	// message lands at t=130, then computes 20µs more. The chain runs
	// through the send→recv edge: 110µs of sender work, 20µs in flight,
	// 20µs receiver tail — p1's 130µs of blocking is not chain work.
	evs := []Event{
		{Kind: KindSend, PID: 0, Start: 100, Dur: 10, Seq: 1, Words: 8},
		{Kind: KindRecv, PID: 1, Start: 0, Dur: 130, Seq: 1, Words: 8},
		{Kind: KindProcSummary, PID: 0, Dur: 110, Wait: 0},
		{Kind: KindProcSummary, PID: 1, Dur: 150, Wait: 130},
	}
	prof := ComputeProfile(evs)
	// sender chain: 100 compute + 10 send = 110; edge adds the 20µs
	// in-flight time (recv end 130 − send end 110); receiver tail 20.
	if want := 150.0; !close(prof.CriticalPath, want) {
		t.Errorf("critical path = %g, want %g", prof.CriticalPath, want)
	}
	if !close(prof.Procs[1].Compute, 20) {
		t.Errorf("p1 compute = %g, want 20", prof.Procs[1].Compute)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
