package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsSafeAndAllocationFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer events = %v", got)
	}
	if seq := tr.NextSeq(); seq != 0 {
		t.Fatalf("nil tracer seq = %d", seq)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: KindSend, Words: 10})
		tr.Phase("p")()
		tr.Counter("c", 1)
		tr.NextSeq()
		tr.Reset()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}

func TestPhaseAndCounter(t *testing.T) {
	tr := New()
	end := tr.Phase("parse")
	end()
	tr.Counter("messages", 7)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Kind != KindPhase || evs[0].Name != "parse" || evs[0].Dur < 0 {
		t.Errorf("phase event = %+v", evs[0])
	}
	if evs[1].Kind != KindCounter || evs[1].Value != 7 {
		t.Errorf("counter event = %+v", evs[1])
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("reset did not clear events")
	}
}

func TestMessageWords(t *testing.T) {
	evs := []Event{
		{Kind: KindSend, Words: 10},
		{Kind: KindRecv, Words: 10}, // recv must not double-count
		{Kind: KindSend, Words: 5},
		{Kind: KindRemap, Words: 30},
		{Kind: KindCounter, Value: 99},
	}
	if got := MessageWords(evs); got != 45 {
		t.Errorf("MessageWords = %d, want 45", got)
	}
}

// sample is a small synthetic trace exercising every event kind.
func sample() []Event {
	return []Event{
		{Kind: KindPhase, Name: "parse", Start: 0, Dur: 12.5},
		{Kind: KindCounter, Name: "messages-inserted", Value: 3},
		{Kind: KindSend, Name: "send", Proc: "JAC", Line: 9, PID: 0, Src: 0, Dst: 1, Words: 16, Start: 10, Dur: 76.4, Seq: 1},
		{Kind: KindRecv, Name: "send", Proc: "JAC", Line: 9, PID: 1, Src: 0, Dst: 1, Words: 16, Start: 40, Dur: 46.4, Seq: 1},
		{Kind: KindSend, Name: "bcast", Proc: "MAIN", Line: 4, PID: 1, Src: 1, Dst: 0, Words: 1, Start: 90, Dur: 70.4, Seq: 2},
		{Kind: KindRemap, Name: "remap", Proc: "ADI", Line: 12, PID: 2, Words: 64, Start: 100, Dur: 95.6, Value: 3},
		{Kind: KindProcSummary, PID: 0, Dur: 500, Wait: 100, Sent: 2, Recvd: 1, Words: 17, Flops: 400},
		{Kind: KindProcSummary, PID: 1, Dur: 480, Wait: 50, Sent: 1, Recvd: 2, Words: 16, Flops: 380},
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			TS   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			PID  int                    `json:"pid"`
			TID  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var sends int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.PID == ChromePIDMachine && !strings.HasPrefix(ev.Name, "wait ") && ev.Args["words"] != nil {
			sends++
		}
	}
	if sends != 3 {
		t.Errorf("message slices = %d, want 3 (2 sends + 1 remap)", sends)
	}
}

func TestWriteChromeMonotoneTimestamps(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			TS  float64 `json:"ts"`
			PID int     `json:"pid"`
			TID int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	last := map[[2]int]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		k := [2]int{ev.PID, ev.TID}
		if prev, ok := last[k]; ok && ev.TS < prev {
			t.Fatalf("timestamps not monotone on pid=%d tid=%d: %f after %f", ev.PID, ev.TID, ev.TS, prev)
		}
		last[k] = ev.TS
	}
}

func TestWriteTextSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"compile phases:",
		"parse",
		"messages-inserted",
		// 2 sends + remap weighted by its 3 partners = 5 messages,
		// 16+1+64 = 81 words
		"run: 5 messages, 81 words (1 remap events)",
		"JAC:9 send",
		"ADI:12 remap",
		"attribution: 100.0% of 5 messages",
		"per-processor",
		"p0",
		"p1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "run: 0 messages, 0 words") {
		t.Errorf("empty summary = %q", buf.String())
	}
}

func TestTracerSeqMonotone(t *testing.T) {
	tr := New()
	prev := int64(0)
	for i := 0; i < 10; i++ {
		s := tr.NextSeq()
		if s <= prev {
			t.Fatalf("seq %d after %d", s, prev)
		}
		prev = s
	}
}
