package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
)

// SortEvents orders events deterministically by (Start, Seq, PID) with
// further structural tie-breaks, in place. Events are appended to a
// tracer in goroutine-scheduling order, which varies run to run even
// when the virtual-time content does not; every exporter sorts a copy
// first so two traces of the same deterministic run render
// byte-identically. This is also what makes exports machine-backend
// invariant: the discrete-event and goroutine engines emit the same
// event multiset in different append orders, and the sort erases the
// difference (TestBackendDifferential holds them byte-identical).
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Words < b.Words
	})
}

// sorted returns a sorted copy, leaving the caller's slice untouched.
func sorted(events []Event) []Event {
	out := append([]Event(nil), events...)
	SortEvents(out)
	return out
}

// jsonlEvent is the exported JSON shape of one Event. Field names are
// stable; zero-valued fields are omitted so the common kinds stay
// compact.
type jsonlEvent struct {
	Kind  string  `json:"kind"`
	Name  string  `json:"name,omitempty"`
	Proc  string  `json:"proc,omitempty"`
	Line  int     `json:"line,omitempty"`
	PID   int     `json:"pid"`
	Src   int     `json:"src,omitempty"`
	Dst   int     `json:"dst,omitempty"`
	Words int     `json:"words,omitempty"`
	Start float64 `json:"start"`
	Dur   float64 `json:"dur,omitempty"`
	Seq   int64   `json:"seq,omitempty"`
	Value int64   `json:"value,omitempty"`
	Sent  int64   `json:"sent,omitempty"`
	Recvd int64   `json:"recvd,omitempty"`
	Flops int64   `json:"flops,omitempty"`
	Wait  float64 `json:"wait,omitempty"`
}

// WriteJSONL renders the tracer's collected events with the package
// function of the same name.
func (t *Tracer) WriteJSONL(w io.Writer) error { return WriteJSONL(w, t.Events()) }

// WriteJSONL emits one JSON object per event, one per line (JSON
// Lines), in deterministic (Start, Seq, PID) order — the raw-event
// export for external tools that do not want to parse the Chrome
// format.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range sorted(events) {
		je := jsonlEvent{
			Kind: ev.Kind.String(), Name: ev.Name,
			Proc: ev.Proc, Line: ev.Line,
			PID: ev.PID, Src: ev.Src, Dst: ev.Dst, Words: ev.Words,
			Start: ev.Start, Dur: ev.Dur, Seq: ev.Seq, Value: ev.Value,
			Sent: ev.Sent, Recvd: ev.Recvd, Flops: ev.Flops, Wait: ev.Wait,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}
