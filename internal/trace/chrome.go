package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Process ids used in the Chrome export: the compiler's wall-clock
// timeline and the simulated machine's virtual-time timelines are kept
// in separate process groups so the two time bases never interleave on
// one track.
const (
	ChromePIDCompiler = 0
	ChromePIDMachine  = 1
)

// chromeEvent is one record of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	ID   int64                  `json:"id,omitempty"`
	BP   string                 `json:"bp,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders the tracer's collected events with the package
// function of the same name.
func (t *Tracer) WriteChrome(w io.Writer) error { return WriteChrome(w, t.Events()) }

// WriteChrome renders events as Chrome trace_event JSON, loadable in
// chrome://tracing and Perfetto. Compiler phases appear under pid 0
// (wall-clock µs); each simulated processor is a thread of pid 1
// (virtual µs). Messages are drawn as flow arrows from the send slice
// to the matching receive slice. Slices on each thread are emitted in
// nondecreasing timestamp order, as the format requires.
func WriteChrome(w io.Writer, events []Event) error {
	events = sorted(events)
	var out []chromeEvent
	meta := func(pid, tid int, ph string, args map[string]interface{}) {
		name := "process_name"
		if ph == "t" {
			name = "thread_name"
			ph = "M"
		}
		out = append(out, chromeEvent{Name: name, Ph: ph, PID: pid, TID: tid, Args: args})
	}
	meta(ChromePIDCompiler, 0, "M", map[string]interface{}{"name": "fortd compiler (wall-clock µs)"})
	meta(ChromePIDMachine, 0, "M", map[string]interface{}{"name": "simulated machine (virtual µs)"})

	procs := map[int]bool{}
	var slices []chromeEvent
	for _, ev := range events {
		switch ev.Kind {
		case KindPhase:
			slices = append(slices, chromeEvent{
				Name: ev.Name, Cat: "compile", Ph: "X",
				TS: ev.Start, Dur: ev.Dur,
				PID: ChromePIDCompiler, TID: 0,
			})
		case KindCounter:
			// counters have no time base of their own; attach them to the
			// compiler track as instants so they remain visible
			slices = append(slices, chromeEvent{
				Name: ev.Name, Cat: "compile", Ph: "i",
				TS: ev.Start, PID: ChromePIDCompiler, TID: 0,
				Args: map[string]interface{}{"value": ev.Value},
			})
		case KindSend:
			procs[ev.PID] = true
			args := commArgs(ev)
			slices = append(slices, chromeEvent{
				Name: ev.Name, Cat: "comm", Ph: "X",
				TS: ev.Start, Dur: ev.Dur,
				PID: ChromePIDMachine, TID: ev.PID, Args: args,
			})
			if ev.Seq > 0 {
				slices = append(slices, chromeEvent{
					Name: "msg", Cat: "msg", Ph: "s", ID: ev.Seq,
					TS: ev.Start + ev.Dur, PID: ChromePIDMachine, TID: ev.PID,
				})
			}
		case KindRecv, KindWait:
			procs[ev.PID] = true
			args := commArgs(ev)
			slices = append(slices, chromeEvent{
				Name: "wait " + ev.Name, Cat: "comm", Ph: "X",
				TS: ev.Start, Dur: ev.Dur,
				PID: ChromePIDMachine, TID: ev.PID, Args: args,
			})
			if ev.Seq > 0 {
				slices = append(slices, chromeEvent{
					Name: "msg", Cat: "msg", Ph: "f", BP: "e", ID: ev.Seq,
					TS: ev.Start + ev.Dur, PID: ChromePIDMachine, TID: ev.PID,
				})
			}
		case KindRemap:
			procs[ev.PID] = true
			slices = append(slices, chromeEvent{
				Name: "remap", Cat: "comm", Ph: "X",
				TS: ev.Start, Dur: ev.Dur,
				PID: ChromePIDMachine, TID: ev.PID, Args: commArgs(ev),
			})
		case KindFault:
			procs[ev.PID] = true
			slices = append(slices, chromeEvent{
				Name: "fault " + ev.Name, Cat: "fault", Ph: "i",
				TS: ev.Start, PID: ChromePIDMachine, TID: ev.PID,
				Args: map[string]interface{}{
					"src": ev.Src, "dst": ev.Dst, "cost": ev.Dur,
				},
			})
		case KindAbort:
			procs[ev.PID] = true
			slices = append(slices, chromeEvent{
				Name: "abort " + ev.Name, Cat: "abort", Ph: "i",
				TS: ev.Start, PID: ChromePIDMachine, TID: ev.PID,
				Args: commArgs(ev),
			})
		case KindProcSummary:
			procs[ev.PID] = true
			slices = append(slices, chromeEvent{
				Name: "totals", Cat: "proc", Ph: "i",
				TS: ev.Dur, PID: ChromePIDMachine, TID: ev.PID,
				Args: map[string]interface{}{
					"clock":    ev.Dur,
					"sent":     ev.Sent,
					"received": ev.Recvd,
					"words":    ev.Words,
					"flops":    ev.Flops,
					"wait":     ev.Wait,
				},
			})
		}
	}
	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		meta(ChromePIDMachine, pid, "t", map[string]interface{}{"name": fmt.Sprintf("cpu %d", pid)})
	}
	sort.SliceStable(slices, func(i, j int) bool {
		a, b := slices[i], slices[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.TS < b.TS
	})
	out = append(out, slices...)

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

func commArgs(ev Event) map[string]interface{} {
	args := map[string]interface{}{
		"src": ev.Src, "dst": ev.Dst, "words": ev.Words,
	}
	if ev.Proc != "" {
		args["proc"] = ev.Proc
	}
	if ev.Line != 0 {
		args["line"] = ev.Line
	}
	return args
}
