package trace

import (
	"fmt"
	"io"
	"sort"
)

// ProcProfile breaks one processor's virtual clock into where the time
// went: useful computation, time spent injecting messages (send
// startup, remap transfers), and time blocked waiting on receives.
type ProcProfile struct {
	PID int
	// Clock is the processor's final virtual time.
	Clock float64
	// Compute is Clock minus Send minus Blocked: time advancing the
	// clock through arithmetic.
	Compute float64
	// Send is virtual time charged for message startup and remap
	// transfers on this processor.
	Send float64
	// Blocked is cumulative time stalled in Recv waiting for data.
	Blocked float64
}

// Busy is the non-blocked portion of the clock (compute + send).
func (p ProcProfile) Busy() float64 { return p.Clock - p.Blocked }

// Profile is the per-processor run profile derived from a traced
// simulated run: the time breakdown per processor, the load-imbalance
// ratio, and a critical-path estimate.
type Profile struct {
	Procs []ProcProfile
	// Imbalance is max busy time over mean busy time across
	// processors: 1.0 is a perfectly balanced run.
	Imbalance float64
	// CriticalPath estimates the longest dependence chain through the
	// run in virtual µs: per-processor execution chains joined by
	// send→recv edges wherever a receive actually blocked. Parallel
	// time can exceed it only through imbalance the chain does not see.
	CriticalPath float64
}

// ComputeProfile derives a run profile from collected trace events. It
// needs the per-processor summaries (KindProcSummary) emitted at the
// end of a run; it returns nil when the events contain none — e.g. a
// compile-only trace.
func ComputeProfile(events []Event) *Profile {
	var sums []Event
	sendTime := map[int]float64{}
	for _, ev := range events {
		switch ev.Kind {
		case KindProcSummary:
			sums = append(sums, ev)
		case KindSend, KindRemap:
			sendTime[ev.PID] += ev.Dur
		}
	}
	if len(sums) == 0 {
		return nil
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i].PID < sums[j].PID })

	prof := &Profile{}
	var busySum, busyMax float64
	for _, ev := range sums {
		pp := ProcProfile{
			PID:     ev.PID,
			Clock:   ev.Dur,
			Blocked: ev.Wait,
			Send:    sendTime[ev.PID],
		}
		pp.Compute = pp.Clock - pp.Blocked - pp.Send
		if pp.Compute < 0 {
			pp.Compute = 0
		}
		prof.Procs = append(prof.Procs, pp)
		busySum += pp.Busy()
		if pp.Busy() > busyMax {
			busyMax = pp.Busy()
		}
	}
	if mean := busySum / float64(len(prof.Procs)); mean > 0 {
		prof.Imbalance = busyMax / mean
	}
	prof.CriticalPath = criticalPath(events, sums)
	return prof
}

// criticalPath estimates the longest dependence chain: each
// processor's events form a chain (compute gaps between consecutive
// events count as work), and a receive that blocked adds an edge from
// the matching send weighted by the message's in-flight time. A
// receive that found its data already delivered adds no edge — the
// sender did not constrain the receiver.
func criticalPath(events []Event, sums []Event) float64 {
	var comms []Event
	for _, ev := range events {
		switch ev.Kind {
		case KindSend, KindRecv, KindWait, KindRemap:
			comms = append(comms, ev)
		}
	}
	sort.SliceStable(comms, func(i, j int) bool {
		a, b := comms[i], comms[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Start+a.Dur < b.Start+b.Dur
	})
	cp := map[int]float64{}      // critical-path length at lastEnd[pid]
	lastEnd := map[int]float64{} // virtual time of the pid's last event
	cpSend := map[int64]float64{}
	endSend := map[int64]float64{}
	for _, ev := range comms {
		ready := cp[ev.PID]
		if gap := ev.Start - lastEnd[ev.PID]; gap > 0 {
			ready += gap // compute between communication events
		}
		end := ev.Start + ev.Dur
		path := ready + ev.Dur
		switch ev.Kind {
		case KindSend:
			if ev.Seq != 0 {
				cpSend[ev.Seq] = path
				endSend[ev.Seq] = end
			}
		case KindRecv, KindWait:
			// blocked time is not chain work: the receiver's chain
			// arrives at `ready`, and if it stalled the message's
			// in-flight time from the sender's chain takes over
			path = ready
			if ev.Seq != 0 && ev.Dur > 0 {
				if via := cpSend[ev.Seq] + (end - endSend[ev.Seq]); via > path {
					path = via
				}
			}
		}
		cp[ev.PID] = path
		lastEnd[ev.PID] = end
	}
	var longest float64
	for _, ev := range sums {
		path := cp[ev.PID]
		if tail := ev.Dur - lastEnd[ev.PID]; tail > 0 {
			path += tail // compute after the last communication
		}
		if path > longest {
			longest = path
		}
	}
	return longest
}

// WriteText renders the profile as text (the form the trace summary
// embeds).
func (p *Profile) WriteText(w io.Writer) error {
	if p == nil || len(p.Procs) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "run profile:\n"); err != nil {
		return err
	}
	for _, pp := range p.Procs {
		pct := func(v float64) float64 {
			if pp.Clock <= 0 {
				return 0
			}
			return 100 * v / pp.Clock
		}
		fmt.Fprintf(w, "  p%-3d compute=%-11s (%5.1f%%)  send=%-10s (%5.1f%%)  blocked=%-10s (%5.1f%%)\n",
			pp.PID,
			fmt.Sprintf("%.1fµs", pp.Compute), pct(pp.Compute),
			fmt.Sprintf("%.1fµs", pp.Send), pct(pp.Send),
			fmt.Sprintf("%.1fµs", pp.Blocked), pct(pp.Blocked))
	}
	var maxClock float64
	for _, pp := range p.Procs {
		if pp.Clock > maxClock {
			maxClock = pp.Clock
		}
	}
	fmt.Fprintf(w, "  load imbalance %.2f (max/mean busy time)\n", p.Imbalance)
	if maxClock > 0 {
		fmt.Fprintf(w, "  critical path  %.1fµs (%.1f%% of %.1fµs parallel time)\n",
			p.CriticalPath, 100*p.CriticalPath/maxClock, maxClock)
	}
	return nil
}
