package decomp

import (
	"testing"
	"testing/quick"

	"fortd/internal/ast"
	"fortd/internal/rsd"
)

func TestDecompKey(t *testing.T) {
	cases := []struct {
		d    Decomp
		want string
	}{
		{NewDecomp(Block), "(BLOCK)"},
		{NewDecomp(Block, Collapsed), "(BLOCK,:)"},
		{NewDecomp(Collapsed, Block), "(:,BLOCK)"},
		{NewDecomp(Cyclic), "(CYCLIC)"},
		{NewDecomp(Collapsed, BlockCyclic(4)), "(:,CYCLIC(4))"},
		{Replicated, "(replicated)"},
	}
	for _, c := range cases {
		if got := c.d.Key(); got != c.want {
			t.Errorf("Key() = %q, want %q", got, c.want)
		}
	}
}

func TestValidateRejectsTwoDistributedDims(t *testing.T) {
	d := NewDecomp(Block, Block)
	if err := d.Validate(); err == nil {
		t.Error("two distributed dimensions must be rejected")
	}
}

// TestApplyAlignPaperFigure4 reproduces §5.2: ALIGN Y(i,j) with X(j,i)
// and DISTRIBUTE X(BLOCK,:) gives Y the column distribution (:,BLOCK).
func TestApplyAlignPaperFigure4(t *testing.T) {
	terms := []ast.AlignTerm{{ArrayDim: 1}, {ArrayDim: 0}} // X(j,i)
	x := NewDecomp(Block, Collapsed)
	y := ApplyAlign(terms, x, 2)
	if y.Key() != "(:,BLOCK)" {
		t.Errorf("aligned Y = %s, want (:,BLOCK)", y.Key())
	}
}

func TestApplyAlignIdentity(t *testing.T) {
	terms := []ast.AlignTerm{{ArrayDim: 0}, {ArrayDim: 1}}
	x := NewDecomp(Block, Collapsed)
	if got := ApplyAlign(terms, x, 2); got.Key() != "(BLOCK,:)" {
		t.Errorf("identity align = %s", got.Key())
	}
}

func TestApplyAlignCollapsedTarget(t *testing.T) {
	terms := []ast.AlignTerm{{ArrayDim: -1}, {ArrayDim: 0}}
	x := NewDecomp(Block, Cyclic)
	if got := ApplyAlign(terms, x, 1); got.Key() != "(CYCLIC)" {
		t.Errorf("collapsed align = %s", got.Key())
	}
}

// TestBlockPaperExample reproduces §3.1: X(100) distributed BLOCK over 4
// processors gives each the local index set [1:25] (i.e. 25 elements),
// with processor p owning [25p+1 : 25p+25].
func TestBlockPaperExample(t *testing.T) {
	d := MustDist(NewDecomp(Block), []int{100}, 4)
	if b := d.BlockSize(); b != 25 {
		t.Fatalf("BlockSize = %d, want 25", b)
	}
	for p := 0; p < 4; p++ {
		set := d.LocalSet(p)
		want := rsd.Range(p*25+1, p*25+25)
		if len(set) != 1 || set[0] != want {
			t.Errorf("LocalSet(%d) = %v, want %v", p, set, want)
		}
	}
	if o := d.OwnerIndex(26); o != 1 {
		t.Errorf("Owner(26) = %d, want 1", o)
	}
	if o := d.OwnerIndex(100); o != 3 {
		t.Errorf("Owner(100) = %d, want 3", o)
	}
}

func TestBlockUneven(t *testing.T) {
	d := MustDist(NewDecomp(Block), []int{10}, 4)
	// ceil(10/4)=3: owners get 3,3,3,1
	counts := []int{3, 3, 3, 1}
	for p, want := range counts {
		if got := d.LocalCount(p); got != want {
			t.Errorf("LocalCount(%d) = %d, want %d", p, got, want)
		}
	}
	if o := d.OwnerIndex(10); o != 3 {
		t.Errorf("Owner(10) = %d, want 3", o)
	}
}

func TestCyclic(t *testing.T) {
	d := MustDist(NewDecomp(Cyclic), []int{10}, 4)
	if o := d.OwnerIndex(1); o != 0 {
		t.Errorf("Owner(1) = %d", o)
	}
	if o := d.OwnerIndex(5); o != 0 {
		t.Errorf("Owner(5) = %d", o)
	}
	if o := d.OwnerIndex(6); o != 1 {
		t.Errorf("Owner(6) = %d", o)
	}
	set := d.LocalSet(1)
	if len(set) != 1 || set[0] != rsd.Strided(2, 10, 4) {
		t.Errorf("LocalSet(1) = %v", set)
	}
}

func TestBlockCyclic(t *testing.T) {
	d := MustDist(NewDecomp(BlockCyclic(2)), []int{12}, 3)
	// blocks of 2: [1,2]→0 [3,4]→1 [5,6]→2 [7,8]→0 ...
	if o := d.OwnerIndex(4); o != 1 {
		t.Errorf("Owner(4) = %d, want 1", o)
	}
	if o := d.OwnerIndex(7); o != 0 {
		t.Errorf("Owner(7) = %d, want 0", o)
	}
	set := d.LocalSet(0)
	if len(set) != 2 {
		t.Fatalf("LocalSet(0) = %v", set)
	}
	if set[0] != rsd.Range(1, 2) || set[1] != rsd.Range(7, 8) {
		t.Errorf("LocalSet(0) = %v", set)
	}
}

func TestGlobalLocalRoundTrip(t *testing.T) {
	dists := []*Dist{
		MustDist(NewDecomp(Block), []int{100}, 4),
		MustDist(NewDecomp(Cyclic), []int{100}, 4),
		MustDist(NewDecomp(BlockCyclic(3)), []int{100}, 4),
	}
	for _, d := range dists {
		for i := 1; i <= 100; i++ {
			p := d.OwnerIndex(i)
			l := d.GlobalToLocal(i)
			if back := d.LocalToGlobal(p, l); back != i {
				t.Errorf("%s: round trip %d → (p%d,l%d) → %d", d.Key(), i, p, l, back)
			}
		}
	}
}

// Property: every index has exactly one owner in [0,P) and the local
// sets partition [1:n].
func TestOwnershipPartitionProperty(t *testing.T) {
	f := func(nRaw, pRaw, kindRaw uint8) bool {
		n := int(nRaw%200) + 1
		p := int(pRaw%8) + 1
		var spec ast.DistSpec
		switch kindRaw % 3 {
		case 0:
			spec = Block
		case 1:
			spec = Cyclic
		default:
			spec = BlockCyclic(int(kindRaw%5) + 1)
		}
		d, err := NewDist(NewDecomp(spec), []int{n}, p)
		if err != nil {
			return false
		}
		seen := make([]int, n+1)
		for proc := 0; proc < p; proc++ {
			for _, dm := range d.LocalSet(proc) {
				st := dm.Step
				if st <= 0 {
					st = 1
				}
				for i := dm.Lo; i <= dm.Hi; i += st {
					if i < 1 || i > n {
						return false
					}
					seen[i]++
					if d.OwnerIndex(i) != proc {
						return false
					}
				}
			}
		}
		for i := 1; i <= n; i++ {
			if seen[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRemapWords(t *testing.T) {
	from := MustDist(NewDecomp(Block), []int{100}, 4)
	to := MustDist(NewDecomp(Cyclic), []int{100}, 4)
	if w := from.RemapWords(from); w != 0 {
		t.Errorf("self remap moves %d words", w)
	}
	w := from.RemapWords(to)
	if w <= 0 || w > 100 {
		t.Errorf("block→cyclic moves %d words", w)
	}
	// block→cyclic on 100/4: indices where (i-1)/25 == (i-1)%4 stay put
	stay := 0
	for i := 1; i <= 100; i++ {
		if from.OwnerIndex(i) == to.OwnerIndex(i) {
			stay++
		}
	}
	if w != 100-stay {
		t.Errorf("RemapWords = %d, want %d", w, 100-stay)
	}
}

func TestReplicated(t *testing.T) {
	d := MustDist(Replicated, []int{50}, 4)
	if !d.IsReplicated() {
		t.Error("replicated not detected")
	}
	if o := d.Owner([]int{7}); o != 0 {
		t.Errorf("replicated owner = %d", o)
	}
}

// TestRemapWordsCrossDim: remapping between different distributed
// dimensions ((BLOCK,:) → (:,BLOCK)) moves every element whose row
// owner differs from its column owner — the transpose-style remap of
// alternating-sweep codes.
func TestRemapWordsCrossDim(t *testing.T) {
	from := MustDist(NewDecomp(Block, Collapsed), []int{8, 8}, 2)
	to := MustDist(NewDecomp(Collapsed, Block), []int{8, 8}, 2)
	w := from.RemapWords(to)
	// exact count: element (i,j) moves iff ownerRow(i) != ownerCol(j)
	moved := 0
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			if from.OwnerIndex(i) != to.OwnerIndex(j) {
				moved++
			}
		}
	}
	if w != moved || w == 0 {
		t.Errorf("RemapWords = %d, want %d (nonzero)", w, moved)
	}
}
