// Package decomp implements the semantics of Fortran D data
// decomposition: DECOMPOSITION / ALIGN / DISTRIBUTE statements, the
// distribution functions (BLOCK, CYCLIC, BLOCK_CYCLIC) that map global
// indices to owning processors, and the global↔local index conversions
// used by data partitioning and code generation.
//
// The compiler supports the common case of the paper's programs: each
// array has at most one distributed dimension, laid out over a
// one-dimensional arrangement of n$proc processors.
package decomp

import (
	"fmt"
	"strings"

	"fortd/internal/ast"
	"fortd/internal/rsd"
)

// Decomp is the decomposition of one array: a distribution format per
// array dimension. It is the ⟨D⟩ component of the paper's reaching
// decomposition elements ⟨D, V⟩.
type Decomp struct {
	Specs []ast.DistSpec
}

// NewDecomp builds a Decomp from per-dimension formats.
func NewDecomp(specs ...ast.DistSpec) Decomp { return Decomp{Specs: specs} }

// Block and friends are convenient single-spec constructors.
var (
	Block       = ast.DistSpec{Kind: ast.DistBlock}
	Cyclic      = ast.DistSpec{Kind: ast.DistCyclic}
	Collapsed   = ast.DistSpec{Kind: ast.DistNone}
	Replicated  = Decomp{} // zero value: no dimension distributed
	replicatedK = "(replicated)"
)

// BlockCyclic returns a CYCLIC(k) spec.
func BlockCyclic(k int) ast.DistSpec {
	return ast.DistSpec{Kind: ast.DistBlockCyclic, BlockSize: k}
}

// Key returns a canonical string such as "(BLOCK,:)" used for set
// membership and cloning decisions.
func (d Decomp) Key() string {
	if len(d.Specs) == 0 {
		return replicatedK
	}
	parts := make([]string, len(d.Specs))
	for i, s := range d.Specs {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func (d Decomp) String() string { return d.Key() }

// Equal reports whether two decompositions are identical.
func (d Decomp) Equal(o Decomp) bool { return d.Key() == o.Key() }

// IsReplicated reports whether no dimension is distributed.
func (d Decomp) IsReplicated() bool {
	for _, s := range d.Specs {
		if s.Kind != ast.DistNone {
			return false
		}
	}
	return true
}

// DistDim returns the index of the distributed dimension, or -1.
func (d Decomp) DistDim() int {
	for i, s := range d.Specs {
		if s.Kind != ast.DistNone {
			return i
		}
	}
	return -1
}

// Validate checks the single-distributed-dimension restriction.
func (d Decomp) Validate() error {
	n := 0
	for _, s := range d.Specs {
		if s.Kind != ast.DistNone {
			n++
		}
	}
	if n > 1 {
		return fmt.Errorf("decomp: %s has %d distributed dimensions; only one is supported", d.Key(), n)
	}
	return nil
}

// ApplyAlign derives the decomposition of an aligned array from the
// decomposition of its target. terms has one entry per target dimension;
// terms[k].ArrayDim names the array dimension aligned with target
// dimension k (or -1 when collapsed).
func ApplyAlign(terms []ast.AlignTerm, target Decomp, arrayRank int) Decomp {
	specs := make([]ast.DistSpec, arrayRank)
	for i := range specs {
		specs[i] = Collapsed
	}
	for k, t := range terms {
		if t.ArrayDim >= 0 && t.ArrayDim < arrayRank && k < len(target.Specs) {
			specs[t.ArrayDim] = target.Specs[k]
		}
	}
	return Decomp{Specs: specs}
}

// ---------------------------------------------------------------------------
// Dist: a decomposition bound to an array shape and machine size.

// Dist is a Decomp instantiated for a concrete array (global sizes) on a
// concrete machine (P processors). All index arithmetic is 1-based, as
// in Fortran.
type Dist struct {
	Decomp
	Sizes []int // global extent per dimension
	P     int
}

// NewDist binds a decomposition to array sizes and a machine size.
func NewDist(d Decomp, sizes []int, p int) (*Dist, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.Specs) != 0 && len(d.Specs) != len(sizes) {
		return nil, fmt.Errorf("decomp: rank mismatch: %s vs %d sizes", d.Key(), len(sizes))
	}
	if p < 1 {
		return nil, fmt.Errorf("decomp: invalid processor count %d", p)
	}
	return &Dist{Decomp: d, Sizes: sizes, P: p}, nil
}

// MustDist is NewDist that panics on error (for tests and literals).
func MustDist(d Decomp, sizes []int, p int) *Dist {
	dist, err := NewDist(d, sizes, p)
	if err != nil {
		panic(err)
	}
	return dist
}

// BlockSize returns ceil(n/P) for the distributed dimension (block
// distributions), or the CYCLIC(k) block factor.
func (d *Dist) BlockSize() int {
	dim := d.DistDim()
	if dim < 0 {
		return 0
	}
	switch d.Specs[dim].Kind {
	case ast.DistBlock:
		n := d.Sizes[dim]
		return (n + d.P - 1) / d.P
	case ast.DistCyclic:
		return 1
	case ast.DistBlockCyclic:
		return d.Specs[dim].BlockSize
	}
	return 0
}

// Owner returns the processor owning the element at the given global
// index vector (1-based). Replicated arrays are owned by every
// processor; Owner returns 0 for them.
func (d *Dist) Owner(idx []int) int {
	dim := d.DistDim()
	if dim < 0 {
		return 0
	}
	return d.OwnerIndex(idx[dim])
}

// OwnerIndex returns the owner by the distributed-dimension coordinate i.
func (d *Dist) OwnerIndex(i int) int {
	dim := d.DistDim()
	if dim < 0 {
		return 0
	}
	switch d.Specs[dim].Kind {
	case ast.DistBlock:
		b := d.BlockSize()
		o := (i - 1) / b
		if o >= d.P {
			o = d.P - 1
		}
		return o
	case ast.DistCyclic:
		return (i - 1) % d.P
	case ast.DistBlockCyclic:
		k := d.Specs[dim].BlockSize
		return ((i - 1) / k) % d.P
	}
	return 0
}

// LocalSet returns the global indices of the distributed dimension owned
// by processor p, as RSD dimensions (a single triplet for BLOCK and
// CYCLIC; multiple blocks for CYCLIC(k)).
func (d *Dist) LocalSet(p int) []rsd.Dim {
	dim := d.DistDim()
	if dim < 0 {
		// replicated: every processor holds everything
		if len(d.Sizes) == 0 {
			return nil
		}
		return []rsd.Dim{rsd.Range(1, d.Sizes[0])}
	}
	n := d.Sizes[dim]
	switch d.Specs[dim].Kind {
	case ast.DistBlock:
		b := d.BlockSize()
		lo := p*b + 1
		hi := (p + 1) * b
		if hi > n {
			hi = n
		}
		return []rsd.Dim{rsd.Range(lo, hi)}
	case ast.DistCyclic:
		if p+1 > n {
			return []rsd.Dim{rsd.Range(1, 0)}
		}
		return []rsd.Dim{rsd.Strided(p+1, n, d.P)}
	case ast.DistBlockCyclic:
		k := d.Specs[dim].BlockSize
		var out []rsd.Dim
		for start := p*k + 1; start <= n; start += d.P * k {
			end := start + k - 1
			if end > n {
				end = n
			}
			out = append(out, rsd.Range(start, end))
		}
		if len(out) == 0 {
			out = []rsd.Dim{rsd.Range(1, 0)}
		}
		return out
	}
	return nil
}

// LocalCount returns the number of distributed-dimension indices owned
// by processor p.
func (d *Dist) LocalCount(p int) int {
	total := 0
	for _, dm := range d.LocalSet(p) {
		total += dm.Count()
	}
	return total
}

// GlobalToLocal converts a global distributed-dimension index to the
// processor-local storage index (1-based) on its owner.
func (d *Dist) GlobalToLocal(i int) int {
	dim := d.DistDim()
	if dim < 0 {
		return i
	}
	switch d.Specs[dim].Kind {
	case ast.DistBlock:
		b := d.BlockSize()
		owner := d.OwnerIndex(i)
		return i - owner*b
	case ast.DistCyclic:
		return (i-1)/d.P + 1
	case ast.DistBlockCyclic:
		k := d.Specs[dim].BlockSize
		blk := (i - 1) / k
		localBlk := blk / d.P
		return localBlk*k + (i-1)%k + 1
	}
	return i
}

// LocalToGlobal converts a processor-local storage index on processor p
// back to the global index.
func (d *Dist) LocalToGlobal(p, l int) int {
	dim := d.DistDim()
	if dim < 0 {
		return l
	}
	switch d.Specs[dim].Kind {
	case ast.DistBlock:
		return p*d.BlockSize() + l
	case ast.DistCyclic:
		return (l-1)*d.P + p + 1
	case ast.DistBlockCyclic:
		k := d.Specs[dim].BlockSize
		localBlk := (l - 1) / k
		return (localBlk*d.P+p)*k + (l-1)%k + 1
	}
	return l
}

// RemapWords counts the array elements that physically move when the
// array is remapped from distribution d to distribution to: every
// element whose owner changes must be communicated. For the common
// block↔cyclic remap nearly all elements move; same-distribution remaps
// move nothing; a remap that changes the distributed *dimension*
// (e.g. (BLOCK,:) → (:,BLOCK)) moves everything except the elements
// whose old and new owners coincide.
func (d *Dist) RemapWords(to *Dist) int {
	if d.Key() == to.Key() {
		return 0
	}
	total := 1
	for _, n := range d.Sizes {
		total *= n
	}
	dimD := d.DistDim()
	dimT := to.DistDim()
	if dimD < 0 || dimT < 0 {
		return total
	}
	if dimD == dimT {
		// owner depends on the same coordinate in both distributions
		rest := total / d.Sizes[dimD]
		moved := 0
		for i := 1; i <= d.Sizes[dimD]; i++ {
			if d.OwnerIndex(i) != to.OwnerIndex(i) {
				moved++
			}
		}
		return moved * rest
	}
	// owners depend on different coordinates: count the pairs whose
	// owners differ, times the product of the remaining extents
	ni, nj := d.Sizes[dimD], to.Sizes[dimT]
	rest := total / (ni * nj)
	moved := 0
	for i := 1; i <= ni; i++ {
		oi := d.OwnerIndex(i)
		for j := 1; j <= nj; j++ {
			if oi != to.OwnerIndex(j) {
				moved++
			}
		}
	}
	return moved * rest
}
