package machine

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"fortd/internal/trace"
)

// TestAbortUnblocksPeers: when one processor fails, a peer blocked in
// Recv returns through an *AbortError carrying the origin and cause
// instead of hanging.
func TestAbortUnblocksPeers(t *testing.T) {
	m := New(DefaultConfig(2))
	cause := errors.New("node program failed")
	m.Go(0, func(p *Proc) {
		m.Abort(0, cause)
	})
	m.Go(1, func(p *Proc) {
		p.SetContext("WORK", 7, "recv")
		p.Recv(0) // would block forever without the abort
	})
	if err := m.Wait(); !errors.Is(err, cause) {
		t.Fatalf("Wait() = %v, want the abort cause", err)
	}
	var ae *AbortError
	if perr := m.ProcErr(1); !errors.As(perr, &ae) {
		t.Fatalf("ProcErr(1) = %v, want *AbortError", perr)
	}
	if ae.PID != 1 || ae.Origin != 0 || ae.Op != "recv" || ae.Peer != 0 {
		t.Errorf("AbortError = %+v", ae)
	}
	if ae.Proc != "WORK" || ae.Line != 7 {
		t.Errorf("attribution = %s:%d, want WORK:7", ae.Proc, ae.Line)
	}
	if !errors.Is(ae, cause) {
		t.Error("AbortError does not unwrap to the cause")
	}
}

// TestDeadlockWatchdog: two processors each waiting for the other to
// send first is detected, and the report names both blocked receives.
func TestDeadlockWatchdog(t *testing.T) {
	m := New(DefaultConfig(2))
	m.Go(0, func(p *Proc) {
		p.SetContext("MAIN", 10, "recv")
		p.Recv(1)
	})
	m.Go(1, func(p *Proc) {
		p.SetContext("MAIN", 20, "recv")
		p.Recv(0)
	})
	err := m.Wait()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Wait() = %v, want *DeadlockError", err)
	}
	if dl.Deadline {
		t.Error("watchdog detection reported as deadline expiry")
	}
	if dl.Live != 2 || len(dl.Blocked) != 2 {
		t.Fatalf("report = %+v, want 2 live / 2 blocked", dl)
	}
	for i, want := range []BlockedProc{
		{PID: 0, Proc: "MAIN", Line: 10, Op: "recv", Peer: 1},
		{PID: 1, Proc: "MAIN", Line: 20, Op: "recv", Peer: 0},
	} {
		got := dl.Blocked[i]
		got.Clock = 0
		if got != want {
			t.Errorf("Blocked[%d] = %+v, want %+v", i, dl.Blocked[i], want)
		}
	}
	// both node programs were unwound with the deadlock as cause
	for pid := 0; pid < 2; pid++ {
		var ae *AbortError
		if perr := m.ProcErr(pid); !errors.As(perr, &ae) || !errors.As(ae.Cause, &dl) {
			t.Errorf("ProcErr(%d) = %v, want AbortError wrapping the deadlock", pid, perr)
		}
	}
}

// TestLopsidedDeadlock: one processor still computing keeps the
// watchdog quiet; only when every live processor is blocked does it
// fire.
func TestLopsidedDeadlock(t *testing.T) {
	m := New(DefaultConfig(2))
	m.Go(0, func(p *Proc) {
		// long enough that the watchdog sees a non-blocked processor for
		// several samples, short enough for a quick test
		time.Sleep(8 * watchdogInterval)
		p.Recv(1)
	})
	m.Go(1, func(p *Proc) {
		p.Recv(0)
	})
	err := m.Wait()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Wait() = %v, want *DeadlockError", err)
	}
	if len(dl.Blocked) != 2 {
		t.Errorf("blocked = %d, want 2 (fired only after both parked)", len(dl.Blocked))
	}
}

// TestNoFalsePositiveUnderLoad: a heavily communicating run where
// receivers constantly block must never trip the watchdog.
func TestNoFalsePositiveUnderLoad(t *testing.T) {
	m := New(DefaultConfig(2))
	const N = 2000
	m.Go(0, func(p *Proc) {
		for i := 0; i < N; i++ {
			p.Send(1, []float64{float64(i)})
			p.Recv(1)
		}
	})
	m.Go(1, func(p *Proc) {
		for i := 0; i < N; i++ {
			p.Send(0, nil)
			p.Recv(0)
		}
	})
	if err := m.Wait(); err != nil {
		t.Fatalf("ping-pong run aborted: %v", err)
	}
}

// TestCongestionFailFast: a sender with no receiver fails loudly when
// the link fills, naming the congested pair, instead of blocking.
func TestCongestionFailFast(t *testing.T) {
	m := New(Config{P: 2, Latency: 1, PerWord: 1, FlopCost: 1, LinkDepth: 8})
	m.Go(0, func(p *Proc) {
		p.SetContext("FLOOD", 3, "send")
		for i := 0; ; i++ {
			p.Send(1, []float64{1})
		}
	})
	m.Go(1, func(p *Proc) {}) // never receives
	err := m.Wait()
	var ce *CongestionError
	if !errors.As(err, &ce) {
		t.Fatalf("Wait() = %v, want *CongestionError", err)
	}
	if ce.Src != 0 || ce.Dst != 1 || ce.Depth != 8 {
		t.Errorf("congestion = %+v, want p0->p1 depth 8", ce)
	}
	if ce.Proc != "FLOOD" || ce.Line != 3 {
		t.Errorf("attribution = %s:%d, want FLOOD:3", ce.Proc, ce.Line)
	}
}

// TestDeadlineAbortsComputeLoop: the wall-clock deadline cancels even
// a compute-bound node program (no channel waits to unblock).
func TestDeadlineAbortsComputeLoop(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Deadline = 30 * time.Millisecond
	m := New(cfg)
	m.Go(0, func(p *Proc) {
		for {
			p.Compute(1)
		}
	})
	err := m.Wait()
	var dl *DeadlockError
	if !errors.As(err, &dl) || !dl.Deadline {
		t.Fatalf("Wait() = %v, want deadline *DeadlockError", err)
	}
	var ae *AbortError
	if perr := m.ProcErr(0); !errors.As(perr, &ae) || ae.Op != "compute" {
		t.Errorf("ProcErr(0) = %v, want compute AbortError", perr)
	}
}

// faultedRun executes a fixed exchange pattern under a fault plan and
// returns its stats and sorted JSONL trace export (raw event order
// depends on goroutine scheduling; determinism is defined over the
// sorted exports).
func faultedRun(t *testing.T, fp *FaultPlan) (Stats, string) {
	t.Helper()
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
	m := New(Config{P: 3, Latency: 10, PerWord: 1, FlopCost: 1})
	tr := trace.New()
	m.SetTracer(tr)
	m.SetFaultPlan(fp)
	for pid := 0; pid < 3; pid++ {
		pid := pid
		m.Go(pid, func(p *Proc) {
			for i := 0; i < 40; i++ {
				p.Compute(3)
				p.Send((pid+1)%3, []float64{float64(pid), float64(i)})
				p.Recv((pid + 2) % 3)
			}
		})
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return m.Stats(), buf.String()
}

// TestFaultDeterminism: the same seed injects exactly the same faults —
// identical stats and identical event streams across runs.
func TestFaultDeterminism(t *testing.T) {
	plan := func() *FaultPlan {
		return &FaultPlan{
			Seed: 42, DelayProb: 0.3, DelayMax: 50,
			DupProb: 0.2, Stragglers: map[int]float64{1: 2.5},
		}
	}
	s1, ev1 := faultedRun(t, plan())
	s2, ev2 := faultedRun(t, plan())
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("stats differ across identically seeded runs:\n%+v\n%+v", s1, s2)
	}
	if ev1 != ev2 {
		t.Error("sorted trace exports differ across identically seeded runs")
	}
	if !strings.Contains(ev1, `"fault"`) {
		t.Error("plan with 30% delay / 20% dup over 120 messages injected nothing")
	}
	// a different seed draws a different schedule
	s3, _ := faultedRun(t, &FaultPlan{
		Seed: 43, DelayProb: 0.3, DelayMax: 50,
		DupProb: 0.2, Stragglers: map[int]float64{1: 2.5},
	})
	if s1.Time == s3.Time {
		t.Logf("seeds 42 and 43 produced identical time %v (possible but suspicious)", s1.Time)
	}
}

// TestStragglerSkew: a straggler's flop cost is scaled by its
// multiplier; other processors are unaffected.
func TestStragglerSkew(t *testing.T) {
	run := func(fp *FaultPlan) Stats {
		m := New(Config{P: 2, Latency: 1, PerWord: 1, FlopCost: 2})
		if fp != nil {
			m.SetFaultPlan(fp)
		}
		for pid := 0; pid < 2; pid++ {
			m.Go(pid, func(p *Proc) { p.Compute(100) })
		}
		if err := m.Wait(); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	base := run(nil)
	skewed := run(&FaultPlan{Seed: 1, Stragglers: map[int]float64{1: 3}})
	if got, want := skewed.PerProc[0].Clock, base.PerProc[0].Clock; got != want {
		t.Errorf("non-straggler clock = %v, want %v", got, want)
	}
	if got, want := skewed.PerProc[1].Clock, 3*base.PerProc[1].Clock; got != want {
		t.Errorf("straggler clock = %v, want %v (3x)", got, want)
	}
}

// TestDuplicateSemantics: duplicated deliveries are discarded by the
// receiver — data is correct, message/word counts are unchanged, and
// conservation (sent == received) still holds.
func TestDuplicateSemantics(t *testing.T) {
	m := New(Config{P: 2, Latency: 1, PerWord: 1, FlopCost: 1})
	m.SetFaultPlan(&FaultPlan{Seed: 7, DupProb: 1}) // duplicate everything
	const N = 20
	m.Go(0, func(p *Proc) {
		for i := 0; i < N; i++ {
			p.Send(1, []float64{float64(i)})
		}
	})
	var got []float64
	m.Go(1, func(p *Proc) {
		for i := 0; i < N; i++ {
			got = append(got, p.Recv(0)[0])
		}
	})
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		if got[i] != float64(i) {
			t.Fatalf("data corrupted by duplicates: got[%d] = %v", i, got[i])
		}
	}
	s := m.Stats()
	if s.Messages != N || s.Received != N || s.Words != N {
		t.Errorf("duplicates leaked into counts: %+v", s)
	}
	if s.Messages != s.Received {
		t.Errorf("conservation broken: sent %d, received %d", s.Messages, s.Received)
	}
}

// TestDupBound: MaxDups caps per-sender duplication.
func TestDupBound(t *testing.T) {
	m := New(Config{P: 2, Latency: 1, PerWord: 1, FlopCost: 1})
	tr := trace.New()
	m.SetTracer(tr)
	m.SetFaultPlan(&FaultPlan{Seed: 7, DupProb: 1, MaxDups: 3})
	const N = 10
	m.Go(0, func(p *Proc) {
		for i := 0; i < N; i++ {
			p.Send(1, []float64{1})
		}
	})
	m.Go(1, func(p *Proc) {
		for i := 0; i < N; i++ {
			p.Recv(0)
		}
	})
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	dups := 0
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindFault && ev.Name == "dup" {
			dups++
		}
	}
	if dups != 3 {
		t.Errorf("injected %d dups, want MaxDups = 3", dups)
	}
}

// TestFaultPlanValidate rejects out-of-range probabilities and skews.
func TestFaultPlanValidate(t *testing.T) {
	bad := []*FaultPlan{
		{DelayProb: -0.1},
		{DelayProb: 1.5, DelayMax: 1},
		{DelayProb: 0.5}, // DelayMax 0 injects nothing
		{DelayMax: -1},
		{DupProb: 2},
		{MaxDups: -1},
		{Stragglers: map[int]float64{0: 0}},
		{Stragglers: map[int]float64{0: -2}},
	}
	for i, fp := range bad {
		if err := fp.Validate(); err == nil {
			t.Errorf("plan %d (%+v) validated", i, fp)
		}
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan: %v", err)
	}
	ok := &FaultPlan{Seed: 1, DelayProb: 0.5, DelayMax: 10, DupProb: 0.1,
		Stragglers: map[int]float64{2: 1.5}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestBroadcastSmallP: the broadcast tree delivers at P=1, 3 and 6 from
// every root (the ISSUE's collective matrix), including zero-word
// payloads.
func TestBroadcastSmallP(t *testing.T) {
	for _, P := range []int{1, 3, 6} {
		for root := 0; root < P; root++ {
			m := New(Config{P: P, Latency: 5, PerWord: 1, FlopCost: 1})
			got := make([][]float64, P)
			for p := 0; p < P; p++ {
				p := p
				m.Go(p, func(pr *Proc) {
					var data []float64
					if p == root {
						data = []float64{float64(root + 1)}
					}
					got[p] = pr.Broadcast(root, data)
				})
			}
			if err := m.Wait(); err != nil {
				t.Fatalf("P=%d root=%d: %v", P, root, err)
			}
			for p := 0; p < P; p++ {
				if len(got[p]) != 1 || got[p][0] != float64(root+1) {
					t.Errorf("P=%d root=%d proc=%d got %v", P, root, p, got[p])
				}
			}
			if s := m.Stats(); s.Messages != int64(P-1) {
				t.Errorf("P=%d root=%d messages = %d, want %d", P, root, s.Messages, P-1)
			}
		}
	}
}

// TestZeroWordMessages: nil-payload messages flow through Send/Recv,
// Stats and the traffic matrix as zero-word messages (the barrier
// pattern), not as errors or phantom words.
func TestZeroWordMessages(t *testing.T) {
	m := New(Config{P: 2, Latency: 10, PerWord: 1, FlopCost: 1})
	tr := trace.New()
	m.SetTracer(tr)
	m.Go(0, func(p *Proc) {
		p.Send(1, nil)
		p.Send(1, []float64{})
	})
	m.Go(1, func(p *Proc) {
		if d := p.Recv(0); len(d) != 0 {
			t.Errorf("nil-payload recv = %v", d)
		}
		p.Recv(0)
	})
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Messages != 2 || s.Received != 2 || s.Words != 0 {
		t.Errorf("stats = %+v, want 2 msgs / 0 words", s)
	}
	if pair := s.Traffic[0][1]; pair.Msgs != 2 || pair.Words != 0 {
		t.Errorf("Traffic[0][1] = %+v", pair)
	}
	if w := trace.MessageWords(tr.Events()); w != 0 {
		t.Errorf("traced words = %d", w)
	}
}

// TestAbortTraceEvent: an aborted run leaves a KindAbort event carrying
// the blocked link and attribution.
func TestAbortTraceEvent(t *testing.T) {
	m := New(DefaultConfig(2))
	tr := trace.New()
	m.SetTracer(tr)
	m.Go(0, func(p *Proc) {
		m.Abort(0, fmt.Errorf("boom"))
	})
	m.Go(1, func(p *Proc) {
		p.SetContext("MAIN", 5, "recv")
		p.Recv(0)
	})
	m.Wait()
	var found bool
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindAbort {
			found = true
			if ev.PID != 1 || ev.Name != "abort" || ev.Src != 0 || ev.Dst != 1 ||
				ev.Proc != "MAIN" || ev.Line != 5 {
				t.Errorf("abort event = %+v", ev)
			}
		}
	}
	if !found {
		t.Error("no KindAbort event emitted")
	}
}
