package machine

import "fortd/internal/trace"

// Nonblocking communication. The machine has no rendezvous: a
// message's delivery time is fixed entirely by its sender
// (message.arrival), so posting a receive early cannot change when the
// data arrives — it changes what the receiver does in the meantime.
// IRecv therefore records intent only and WaitHandle performs the
// receive and all accounting, which makes the DES and goroutine
// backends identical by construction: nothing observable happens
// between post and wait. A wait that stalls emits a KindWait trace
// event whose Dur is exactly the flight time the schedule failed to
// hide under computation; a wait that finds the data already delivered
// costs nothing.

// handleKind classifies what a Handle is waiting for.
type handleKind uint8

const (
	handleSend handleKind = iota
	handleRecv
	handleBcast
)

// Handle is one in-flight nonblocking operation, returned by ISend,
// IRecv and PostBcast and completed by WaitHandle. Handles belong to
// the processor that created them and are not safe for concurrent use.
type Handle struct {
	p    *Proc
	kind handleKind
	from int  // sender pid (recv), parent pid (non-root bcast), -1 none
	done bool // completed: data holds the payload
	data []float64
	fwd  []int // bcast: children to forward to at wait time
}

// ISend starts a nonblocking send. Send never blocks on this machine
// (links are buffered; a full link fails the run), so ISend is Send
// plus an already-completed handle — it exists so schedules can treat
// both directions of a split-phase exchange uniformly.
func (p *Proc) ISend(to int, data []float64) *Handle {
	p.Send(to, data)
	return &Handle{p: p, kind: handleSend, from: -1, done: true}
}

// IRecv posts a nonblocking receive for the next message from
// processor from. It records intent only (see the package comment on
// rendezvous); WaitHandle performs the receive. Posting is still a
// cancellation point so an aborted run unwinds promptly.
func (p *Proc) IRecv(from int) *Handle {
	if p.m.aborted.Load() {
		p.abortNow("post", from)
	}
	h := &Handle{p: p, kind: handleRecv, from: from}
	if from == p.id {
		h.done = true // self-receive is a local no-op, as in Recv
	}
	return h
}

// WaitHandle completes a nonblocking operation, blocking until its
// message is delivered, and returns the payload (nil for sends and
// self-receives). The stall, if any, is charged to the waiter's Wait
// time and emitted as a KindWait event carrying the posted operation's
// Seq, so analysis links it to the originating send. Waiting twice on
// the same handle returns the same payload without re-receiving. The
// payload is machine-owned: valid until this processor's next receive.
func (p *Proc) WaitHandle(h *Handle) []float64 {
	if h == nil || h.done {
		if h == nil {
			return nil
		}
		return h.data
	}
	h.done = true
	h.data = p.recvAs(h.from, trace.KindWait)
	if h.kind == handleBcast {
		for _, c := range h.fwd {
			p.Send(c, h.data)
			p.bcast++
		}
	}
	return h.data
}

// bcastTree returns the binomial-tree parent of relative rank rel (-1
// for the root) and its children in ascending-round order, for an
// np-processor broadcast rooted at relative rank 0. It reproduces
// exactly the rounds Broadcast walks inline — rank rel receives in the
// round k with k <= rel < 2k and sends to rel+k in every later round —
// so split-phase and blocking broadcasts move the same messages over
// the same links.
func bcastTree(rel, np int) (parent int, children []int) {
	parent = -1
	k := 1
	if rel > 0 {
		for k <= rel {
			k <<= 1
		}
		k >>= 1 // receive round: k <= rel < 2k
		parent = rel - k
		k <<= 1
	}
	for ; k < np; k <<= 1 {
		if rel+k < np {
			children = append(children, rel+k)
		}
	}
	return parent, children
}

// PostBcast starts a split-phase broadcast of data from root. All
// processors must call it and later complete it with WaitHandle (or
// WaitBcast). The root sends to its tree children immediately — that
// is the whole point of posting early — while every other processor
// records its parent and forwards to its own children when it waits.
// The message pattern is identical to the blocking Broadcast.
func (p *Proc) PostBcast(root int, data []float64) *Handle {
	np := p.m.cfg.P
	rel := (p.id - root + np) % np
	parent, children := bcastTree(rel, np)
	h := &Handle{p: p, kind: handleBcast, from: -1}
	if p.id == root {
		for _, c := range children {
			p.Send((root+c)%np, data)
			p.bcast++
		}
		h.done = true
		h.data = data
		return h
	}
	if p.m.aborted.Load() {
		p.abortNow("post", (root+parent)%np)
	}
	h.from = (root + parent) % np
	h.fwd = make([]int, len(children))
	for i, c := range children {
		h.fwd[i] = (root + c) % np
	}
	return h
}

// WaitBcast completes a split-phase broadcast and returns the full
// payload on every processor (the root's own copy on the root).
func (p *Proc) WaitBcast(h *Handle) []float64 { return p.WaitHandle(h) }

// Reduce combines every processor's value into the root's result using
// a binomial combining tree — the broadcast tree run in reverse, as on
// the iPSC hypercube's library gather. All processors must call it.
// Rank rel receives a partial result from rel+k for every round
// k = 1, 2, 4, ... below its lowest set bit, folds it in with combine,
// then sends its accumulation to rel-k and leaves the tree. The
// critical path is ceil(log2(P)) message steps, against P-1 serialized
// receives for a linear gather-to-root. Only the root's return value
// is the full reduction; every other processor returns its partial
// accumulation, which callers must not use.
func (p *Proc) Reduce(root int, value float64, combine func(acc, v float64) float64) float64 {
	np := p.m.cfg.P
	rel := (p.id - root + np) % np
	acc := value
	for k := 1; k < np; k <<= 1 {
		if rel&k != 0 {
			buf := p.Scratch(1)
			buf[0] = acc
			p.Send((root+rel-k)%np, buf)
			p.bcast++
			break
		}
		if rel+k < np {
			acc = combine(acc, p.Recv((root + rel + k) % np)[0])
		}
	}
	return acc
}
