// The goroutine reference engine (BackendGoroutine): one goroutine per
// processor, P² buffered channels as links, the wall-clock sampling
// watchdog from abort.go for deadlock detection. This is the original
// machine implementation, kept verbatim behind the engine interface so
// the differential test suite can prove the discrete-event core
// produces identical Stats and trace exports. It is exact but heavy:
// eager channel buffers cost O(P² × LinkDepth) memory and the runtime
// scheduler thrashes past a few dozen processors.
package machine

// chanEngine holds the channel link matrix; everything else (abort,
// watchdog, progress accounting) lives on the Machine and is shared
// with the DES engine's bookkeeping.
type chanEngine struct {
	m     *Machine
	links [][]chan message // links[from][to]
}

func newChanEngine(m *Machine, depth int) *chanEngine {
	e := &chanEngine{m: m}
	e.links = make([][]chan message, m.cfg.P)
	for i := range e.links {
		e.links[i] = make([]chan message, m.cfg.P)
		for j := range e.links[i] {
			// a full link is a failure, not back-pressure: see Proc.deliver
			e.links[i][j] = make(chan message, depth)
		}
	}
	return e
}

func (e *chanEngine) start(pid int, fn func(*Proc)) {
	m := e.m
	m.startWatchdog()
	m.wg.Add(1)
	m.mu.Lock()
	m.running++
	m.mu.Unlock()
	go func() {
		defer m.wg.Done()
		defer func() {
			if r := m.recordProcExit(pid, recover()); r != nil {
				panic(r)
			}
		}()
		fn(m.procs[pid])
	}()
}

func (e *chanEngine) wait() {
	m := e.m
	m.wg.Wait()
	m.startWatchdog() // ensure watchDone closes even if Go was never called
	m.stopOnce.Do(func() { close(m.watchStop) })
	<-m.watchDone
}

func (e *chanEngine) deliver(src, dst int, msg message) bool {
	select {
	case e.links[src][dst] <- msg:
		return true
	default:
		return false
	}
}

// receive takes the next message off the link, registering the
// processor as blocked (for the deadlock watchdog) while it waits and
// unwinding it if the run is aborted.
func (e *chanEngine) receive(p *Proc, from int) message {
	if p.m.aborted.Load() {
		p.abortNow("recv", from)
	}
	ch := e.links[from][p.id]
	select {
	case msg := <-ch:
		p.m.progress.Add(1)
		return msg
	default:
	}
	p.block("recv", from)
	select {
	case msg := <-ch:
		p.unblock()
		return msg
	case <-p.m.done:
		p.unblock()
		p.abortNow("recv", from)
		panic("unreachable")
	}
}

// scratch allocates fresh every call: channel delivery passes the
// payload slice by reference, so a reused buffer would be overwritten
// under the receiver. The DES engine, which copies payloads on
// deliver, is where Scratch actually pays off.
func (e *chanEngine) scratch(pid, n int) []float64 {
	return make([]float64, n)
}
