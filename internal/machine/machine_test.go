package machine

import (
	"testing"
	"testing/quick"
)

func TestSendRecvClocks(t *testing.T) {
	m := New(Config{P: 2, Latency: 10, PerWord: 1, FlopCost: 1})
	m.Go(0, func(p *Proc) {
		p.Compute(5) // clock 5
		p.Send(1, []float64{1, 2, 3})
	})
	var got []float64
	m.Go(1, func(p *Proc) {
		got = p.Recv(0)
	})
	m.Wait()
	s := m.Stats()
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("data = %v", got)
	}
	// sender: 5 + 10 (startup) = 15; receiver: 15 + 10 + 3*1 = 28
	if s.PerProc[0].Clock != 15 {
		t.Errorf("sender clock = %v", s.PerProc[0].Clock)
	}
	if s.PerProc[1].Clock != 28 {
		t.Errorf("receiver clock = %v", s.PerProc[1].Clock)
	}
	if s.Messages != 1 || s.Words != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestReceiverNotRewound(t *testing.T) {
	m := New(Config{P: 2, Latency: 1, PerWord: 0, FlopCost: 1})
	m.Go(0, func(p *Proc) {
		p.Send(1, []float64{1})
	})
	m.Go(1, func(p *Proc) {
		p.Compute(1000) // receiver is already far ahead
		p.Recv(0)
	})
	m.Wait()
	s := m.Stats()
	if s.PerProc[1].Clock != 1000 {
		t.Errorf("receiver clock = %v, want 1000 (no rewind)", s.PerProc[1].Clock)
	}
}

func TestSelfSendIsFree(t *testing.T) {
	m := New(DefaultConfig(2))
	m.Go(0, func(p *Proc) {
		p.Send(0, []float64{1, 2})
	})
	m.Go(1, func(p *Proc) {})
	m.Wait()
	if s := m.Stats(); s.Messages != 0 || s.Words != 0 {
		t.Errorf("self-send counted: %+v", s)
	}
}

func TestBroadcast(t *testing.T) {
	const P = 4
	m := New(Config{P: P, Latency: 10, PerWord: 1, FlopCost: 1})
	results := make([][]float64, P)
	for p := 0; p < P; p++ {
		p := p
		m.Go(p, func(pr *Proc) {
			var data []float64
			if p == 2 {
				data = []float64{9, 8}
			}
			results[p] = pr.Broadcast(2, data)
		})
	}
	m.Wait()
	for p := 0; p < P; p++ {
		if len(results[p]) != 2 || results[p][0] != 9 {
			t.Errorf("proc %d got %v", p, results[p])
		}
	}
	if s := m.Stats(); s.Messages != P-1 {
		t.Errorf("broadcast messages = %d", s.Messages)
	}
}

func TestBarrier(t *testing.T) {
	const P = 8
	m := New(DefaultConfig(P))
	for p := 0; p < P; p++ {
		p := p
		m.Go(p, func(pr *Proc) {
			pr.Compute(p * 100)
			pr.Barrier()
			// after the barrier every clock is at least the slowest
			// pre-barrier clock
			if pr.Clock() < float64(P-1)*100*pr.m.cfg.FlopCost {
				t.Errorf("proc %d clock %v below barrier time", p, pr.Clock())
			}
		})
	}
	m.Wait()
}

func TestManyMessagesNoDeadlock(t *testing.T) {
	m := New(DefaultConfig(2))
	const N = 5000
	m.Go(0, func(p *Proc) {
		for i := 0; i < N; i++ {
			p.Send(1, []float64{float64(i)})
		}
	})
	m.Go(1, func(p *Proc) {
		for i := 0; i < N; i++ {
			d := p.Recv(0)
			if d[0] != float64(i) {
				t.Errorf("message %d out of order: %v", i, d)
				return
			}
		}
	})
	m.Wait()
	if s := m.Stats(); s.Messages != N {
		t.Errorf("messages = %d", s.Messages)
	}
}

// Property: time is monotone in message count for a fixed pattern, and
// total time >= per-message lower bound.
func TestLatencyDominatesSmallMessages(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		m := New(Config{P: 2, Latency: 100, PerWord: 1, FlopCost: 1})
		m.Go(0, func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Send(1, []float64{0})
			}
		})
		m.Go(1, func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Recv(0)
			}
		})
		m.Wait()
		s := m.Stats()
		return s.Time >= float64(n)*100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestVectorizationWins demonstrates the machine model's core shape:
// one 100-word message is far cheaper than 100 one-word messages.
func TestVectorizationWins(t *testing.T) {
	run := func(messages, wordsEach int) float64 {
		m := New(DefaultConfig(2))
		m.Go(0, func(p *Proc) {
			data := make([]float64, wordsEach)
			for i := 0; i < messages; i++ {
				p.Send(1, data)
			}
		})
		m.Go(1, func(p *Proc) {
			for i := 0; i < messages; i++ {
				p.Recv(0)
			}
		})
		m.Wait()
		return m.Stats().Time
	}
	vectorized := run(1, 100)
	elementwise := run(100, 1)
	if elementwise < 10*vectorized {
		t.Errorf("element-wise %.1f vs vectorized %.1f: expected >10x gap", elementwise, vectorized)
	}
}

func TestCountRemap(t *testing.T) {
	m := New(Config{P: 4, Latency: 10, PerWord: 1, FlopCost: 1})
	for p := 0; p < 4; p++ {
		m.Go(p, func(pr *Proc) {
			pr.CountRemap(25, 3)
		})
	}
	m.Wait()
	s := m.Stats()
	// a collective remap counts once even though all 4 processors
	// participate
	if s.Remaps != 1 {
		t.Errorf("remaps = %d, want 1", s.Remaps)
	}
	if s.Words != 100 {
		t.Errorf("words = %d", s.Words)
	}
}

// TestPairAccounting: Stats.Traffic rows reconcile with each
// processor's totals, remap traffic lands on the diagonal, and every
// non-remap message sent is received (conservation).
func TestPairAccounting(t *testing.T) {
	m := New(Config{P: 3, Latency: 10, PerWord: 1, FlopCost: 1})
	m.Go(0, func(p *Proc) {
		p.Send(1, []float64{1, 2})
		p.Send(2, []float64{3})
		p.CountRemap(40, 2)
	})
	m.Go(1, func(p *Proc) {
		p.Recv(0)
		p.Send(2, []float64{4, 5, 6})
		p.CountRemap(40, 2)
	})
	m.Go(2, func(p *Proc) {
		p.Recv(0)
		p.Recv(1)
		p.CountRemap(40, 2)
	})
	m.Wait()
	s := m.Stats()
	if got := s.Traffic[0][1]; got.Msgs != 1 || got.Words != 2 {
		t.Errorf("Traffic[0][1] = %+v", got)
	}
	if got := s.Traffic[1][2]; got.Msgs != 1 || got.Words != 3 {
		t.Errorf("Traffic[1][2] = %+v", got)
	}
	if got := s.Traffic[0][0]; got.Msgs != 2 || got.Words != 40 {
		t.Errorf("remap not on diagonal: Traffic[0][0] = %+v", got)
	}
	// row sums reconcile with the per-processor totals
	for src := range s.Traffic {
		var msgs, words int64
		for _, pair := range s.Traffic[src] {
			msgs += pair.Msgs
			words += pair.Words
		}
		if msgs != s.PerProc[src].Sent || words != s.PerProc[src].Words {
			t.Errorf("p%d traffic row (msgs=%d words=%d) != proc totals (%d, %d)",
				src, msgs, words, s.PerProc[src].Sent, s.PerProc[src].Words)
		}
	}
	// conservation: every non-remap send was consumed by a Recv
	var sent, remap int64
	for _, ps := range s.PerProc {
		sent += ps.Sent
		remap += ps.RemapMsgs
	}
	if sent-remap != s.Received {
		t.Errorf("sent-remap = %d, received = %d", sent-remap, s.Received)
	}
	if s.Received != 3 {
		t.Errorf("Received = %d, want 3", s.Received)
	}
}

// TestBroadcastTreeAllRoots: the binomial-tree broadcast delivers from
// any root at any machine size.
func TestBroadcastTreeAllRoots(t *testing.T) {
	for _, P := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < P; root++ {
			m := New(Config{P: P, Latency: 5, PerWord: 1, FlopCost: 1})
			got := make([][]float64, P)
			for p := 0; p < P; p++ {
				p := p
				m.Go(p, func(pr *Proc) {
					var data []float64
					if p == root {
						data = []float64{float64(root), 42}
					}
					got[p] = pr.Broadcast(root, data)
				})
			}
			m.Wait()
			for p := 0; p < P; p++ {
				if len(got[p]) != 2 || got[p][0] != float64(root) {
					t.Fatalf("P=%d root=%d proc=%d got %v", P, root, p, got[p])
				}
			}
			if s := m.Stats(); s.Messages != int64(P-1) {
				t.Errorf("P=%d root=%d messages = %d, want %d", P, root, s.Messages, P-1)
			}
		}
	}
}

// TestBroadcastLogDepth: the critical path grows logarithmically, not
// linearly, with P.
func TestBroadcastLogDepth(t *testing.T) {
	timeFor := func(P int) float64 {
		m := New(Config{P: P, Latency: 100, PerWord: 0, FlopCost: 1})
		for p := 0; p < P; p++ {
			p := p
			m.Go(p, func(pr *Proc) {
				var data []float64
				if p == 0 {
					data = []float64{1}
				}
				pr.Broadcast(0, data)
			})
		}
		m.Wait()
		return m.Stats().Time
	}
	t16 := timeFor(16)
	// binomial tree: 4 rounds of (send+deliver) ≈ 8 latencies; a linear
	// fan-out would need 15 sender latencies before the last delivery
	if t16 > 100*10 {
		t.Errorf("broadcast over 16 procs took %.0f, not logarithmic", t16)
	}
}
