package machine

import (
	"testing"

	"fortd/internal/trace"
)

// TestIRecvWaitHidesFlightTime is the split-phase contract: a receive
// posted before enough independent computation costs nothing at the
// wait, while the blocking equivalent stalls for the full flight time.
func TestIRecvWaitHidesFlightTime(t *testing.T) {
	cfg := Config{P: 2, Latency: 10, PerWord: 1, FlopCost: 1}

	m := New(cfg)
	m.Go(0, func(p *Proc) { p.Send(1, []float64{7, 7, 7}) })
	var got []float64
	m.Go(1, func(p *Proc) {
		h := p.IRecv(0)
		p.Compute(100) // arrival is at 10+3 = 13, long past
		got = p.WaitHandle(h)
	})
	m.Wait()
	if len(got) != 3 || got[0] != 7 {
		t.Fatalf("data = %v", got)
	}
	s := m.Stats()
	if s.PerProc[1].Wait != 0 {
		t.Errorf("hidden wait stalled %v", s.PerProc[1].Wait)
	}
	if s.PerProc[1].Clock != 100 {
		t.Errorf("receiver clock = %v, want 100", s.PerProc[1].Clock)
	}

	// same exchange, no computation: the wait eats the full flight
	// time (send startup 10 + latency 10 + 3 words)
	m = New(cfg)
	m.Go(0, func(p *Proc) { p.Send(1, []float64{7, 7, 7}) })
	m.Go(1, func(p *Proc) {
		p.WaitHandle(p.IRecv(0))
	})
	m.Wait()
	if w := m.Stats().PerProc[1].Wait; w != 23 {
		t.Errorf("unhidden wait = %v, want 23", w)
	}
}

// TestWaitHandleIdempotent: waiting twice returns the same payload
// without a second receive; nil and send handles are no-ops.
func TestWaitHandleIdempotent(t *testing.T) {
	m := New(DefaultConfig(2))
	m.Go(0, func(p *Proc) {
		h := p.ISend(1, []float64{1})
		if d := p.WaitHandle(h); d != nil {
			t.Errorf("send wait returned %v", d)
		}
		if d := p.WaitHandle(nil); d != nil {
			t.Errorf("nil wait returned %v", d)
		}
		if d := p.WaitHandle(p.IRecv(0)); d != nil {
			t.Errorf("self-receive returned %v", d)
		}
	})
	m.Go(1, func(p *Proc) {
		h := p.IRecv(0)
		a := p.WaitHandle(h)
		b := p.WaitHandle(h)
		if len(a) != 1 || a[0] != 1 {
			t.Errorf("first wait = %v", a)
		}
		if &a[0] != &b[0] {
			t.Error("second wait re-received")
		}
	})
	m.Wait()
	if s := m.Stats(); s.PerProc[1].Received != 1 {
		t.Errorf("received %d messages, want 1", s.PerProc[1].Received)
	}
}

// TestWaitEventKind: a stalled WaitHandle is attributed as KindWait —
// not KindRecv — carrying the stall duration the schedule failed to
// hide.
func TestWaitEventKind(t *testing.T) {
	tr := trace.New()
	m := New(Config{P: 2, Latency: 10, PerWord: 1, FlopCost: 1})
	m.SetTracer(tr)
	m.Go(0, func(p *Proc) { p.Send(1, []float64{1, 2}) })
	m.Go(1, func(p *Proc) { p.WaitHandle(p.IRecv(0)) })
	m.Wait()
	var waits int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case trace.KindWait:
			waits++
			if ev.Dur != 22 { // send startup 10 + latency 10 + 2 words
				t.Errorf("wait dur = %v, want 22", ev.Dur)
			}
		case trace.KindRecv:
			t.Error("split-phase receive emitted KindRecv")
		}
	}
	if waits != 1 {
		t.Errorf("wait events = %d, want 1", waits)
	}
}

// TestBcastTreeTopology pins the binomial tree against the rounds the
// blocking Broadcast walks inline: rank rel receives from rel-k in the
// round with k <= rel < 2k and forwards to rel+k in every later round.
func TestBcastTreeTopology(t *testing.T) {
	cases := []struct {
		rel, np  int
		parent   int
		children []int
	}{
		{0, 8, -1, []int{1, 2, 4}},
		{1, 8, 0, []int{3, 5}},
		{2, 8, 0, []int{6}},
		{3, 8, 1, []int{7}},
		{4, 8, 0, nil},
		{7, 8, 3, nil},
		{0, 1, -1, nil},
		{2, 6, 0, nil},
		{1, 6, 0, []int{3, 5}},
	}
	for _, c := range cases {
		parent, children := bcastTree(c.rel, c.np)
		if parent != c.parent {
			t.Errorf("bcastTree(%d,%d) parent = %d, want %d", c.rel, c.np, parent, c.parent)
		}
		if len(children) != len(c.children) {
			t.Errorf("bcastTree(%d,%d) children = %v, want %v", c.rel, c.np, children, c.children)
			continue
		}
		for i := range children {
			if children[i] != c.children[i] {
				t.Errorf("bcastTree(%d,%d) children = %v, want %v", c.rel, c.np, children, c.children)
				break
			}
		}
	}
}

// TestPostBcastMatchesBroadcast: the split-phase broadcast delivers
// the same payload everywhere and moves exactly the blocking
// broadcast's P-1 messages, at every P and root.
func TestPostBcastMatchesBroadcast(t *testing.T) {
	for _, np := range []int{1, 2, 3, 4, 6, 8, 16} {
		for root := 0; root < np; root += 1 + np/3 {
			m := New(DefaultConfig(np))
			results := make([][]float64, np)
			for pid := 0; pid < np; pid++ {
				pid := pid
				m.Go(pid, func(p *Proc) {
					var data []float64
					if pid == root {
						data = []float64{float64(root), 42}
					}
					results[pid] = p.WaitBcast(p.PostBcast(root, data))
				})
			}
			m.Wait()
			for pid, r := range results {
				if len(r) != 2 || r[0] != float64(root) || r[1] != 42 {
					t.Errorf("np=%d root=%d proc %d got %v", np, root, pid, r)
				}
			}
			if s := m.Stats(); s.Messages != int64(np-1) {
				t.Errorf("np=%d root=%d messages = %d, want %d", np, root, s.Messages, np-1)
			}
		}
	}
}

// TestReduceTree: the combining tree leaves the full reduction on the
// root for every P (odd and even) and root choice, with P-1 messages.
func TestReduceTree(t *testing.T) {
	sum := func(a, b float64) float64 { return a + b }
	for _, np := range []int{1, 2, 3, 5, 7, 8, 16} {
		want := float64(np*(np-1)) / 2
		for root := 0; root < np; root += 1 + np/2 {
			m := New(DefaultConfig(np))
			var got float64
			for pid := 0; pid < np; pid++ {
				pid := pid
				m.Go(pid, func(p *Proc) {
					acc := p.Reduce(root, float64(pid), sum)
					if pid == root {
						got = acc
					}
				})
			}
			m.Wait()
			if got != want {
				t.Errorf("np=%d root=%d sum = %v, want %v", np, root, got, want)
			}
			if s := m.Stats(); s.Messages != int64(np-1) {
				t.Errorf("np=%d root=%d messages = %d, want %d", np, root, s.Messages, np-1)
			}
		}
	}
}

// TestReduceTreeVsLinearGather pins the cost of the lowering
// execGlobalReduce abandoned — a flat gather whose root performed P-1
// receives in fixed ascending pid order — against the binomial
// combining tree, on this machine model. The trade is structural, and
// the numbers keep both sides honest:
//
//   - Message counts are equal (P-1), but the flat gather funnels all
//     P-1 messages into the root in one step, while the tree bounds
//     every processor's in-degree by ceil(log2 P) — the iPSC library's
//     actual gather pattern, and the shape that scales to P=1024.
//   - On an otherwise idle machine the flat gather's completion is
//     latency-OPTIMAL here, because receives cost the receiver
//     nothing: the root's clock is just the last arrival. The tree
//     pays one flight per level, ceil(log2 P) deep. This test pins
//     that overhead to at most depth * (one flight + one startup), so
//     a cost-model change that silently inflates the tree shows up.
func TestReduceTreeVsLinearGather(t *testing.T) {
	const np = 16
	cfg := DefaultConfig(np)
	sum := func(a, b float64) float64 { return a + b }

	linear := New(cfg)
	for pid := 0; pid < np; pid++ {
		pid := pid
		linear.Go(pid, func(p *Proc) {
			if pid == 0 {
				acc := 1.0                // the root's own contribution
				for q := 1; q < np; q++ { // the old fixed ascending order
					acc += p.Recv(q)[0]
				}
				if acc != np {
					t.Errorf("linear gather sum = %v", acc)
				}
			} else {
				p.Send(0, []float64{1})
			}
		})
	}
	linear.Wait()

	tree := New(cfg)
	for pid := 0; pid < np; pid++ {
		pid := pid
		tree.Go(pid, func(p *Proc) {
			acc := p.Reduce(0, 1, sum)
			if pid == 0 && acc != np {
				t.Errorf("tree reduce sum = %v", acc)
			}
		})
	}
	tree.Wait()

	ls, ts := linear.Stats(), tree.Stats()
	if ls.Messages != np-1 || ts.Messages != np-1 {
		t.Errorf("messages: linear %d tree %d, want %d both", ls.Messages, ts.Messages, np-1)
	}
	if ls.PerProc[0].Received != np-1 {
		t.Errorf("flat root in-degree = %d, want %d", ls.PerProc[0].Received, np-1)
	}
	if ts.PerProc[0].Received != 4 { // ceil(log2 16)
		t.Errorf("tree root in-degree = %d, want 4", ts.PerProc[0].Received)
	}
	// flat root clock: every leaf sends at 0 (startup latency 70), one
	// flight later the last arrival lands: 70 + 70 + 1 word = 140.4
	if ls.PerProc[0].Clock != 140.4 {
		t.Errorf("flat gather root clock = %v, want 140.4", ls.PerProc[0].Clock)
	}
	depth := 4.0
	flight := cfg.Latency + cfg.Latency + 1*cfg.PerWord // startup + flight + 1 word
	if rc := ts.PerProc[0].Clock; rc < ls.PerProc[0].Clock || rc > depth*flight {
		t.Errorf("tree root clock = %v, want within (%v, %v]", rc, ls.PerProc[0].Clock, depth*flight)
	}
}
