// Cooperative abort and deadlock detection for the simulated machine.
//
// The machine's failure model mirrors the real iPSC/860's worst
// behavior — node programs that disagree on their communication
// schedule block in Recv forever — but refuses to reproduce it: every
// blocking primitive also waits on a machine-wide done channel, so the
// first failure (a node-program error, a congested link, the deadlock
// watchdog, or a wall-clock deadline) unblocks every peer with a
// structured *AbortError instead of hanging Machine.Wait. The watchdog
// samples the machine on a wall-clock ticker and declares deadlock when
// every live processor is blocked on a link and no channel operation
// has completed across several consecutive samples; the resulting
// *DeadlockError carries each blocked processor's (proc, line, op,
// peer, virtual clock) from the SetContext attribution state.
package machine

import (
	"fmt"
	"strings"
	"time"

	"fortd/internal/trace"
)

// abortPanic unwinds a node program out of a blocking primitive after
// an abort; Machine.Go's wrapper recovers it and records the error.
// Any other panic value is re-raised.
type abortPanic struct{ err error }

// AbortError reports that a processor was cooperatively unblocked (or
// stopped mid-computation) because the run was aborted. It is the
// error a peer observes when some other processor fails; the
// originating failure is available through Unwrap.
type AbortError struct {
	// PID is the processor that was unblocked.
	PID int
	// Origin is the processor whose failure triggered the abort, or -1
	// when the watchdog or deadline aborted the run machine-wide.
	Origin int
	// Op is the operation the processor was in ("recv", "send", "bcast",
	// "compute", ...), taken from the SetContext attribution when set.
	Op string
	// Peer is the link partner the processor was blocked on (-1 when it
	// was not blocked on a link, e.g. aborted mid-computation).
	Peer int
	// Clock is the processor's virtual time at the abort.
	Clock float64
	// Proc and Line attribute the blocked statement to its source
	// procedure (empty/0 when the node program never called SetContext).
	Proc string
	Line int
	// Cause is the originating failure.
	Cause error
}

func (e *AbortError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d: aborted", e.PID)
	if e.Origin >= 0 {
		fmt.Fprintf(&b, " by p%d", e.Origin)
	}
	if e.Op != "" {
		fmt.Fprintf(&b, " in %s", e.Op)
	}
	if e.Peer >= 0 {
		fmt.Fprintf(&b, " (peer p%d)", e.Peer)
	}
	if e.Proc != "" {
		if e.Line != 0 {
			fmt.Fprintf(&b, " at %s:%d", e.Proc, e.Line)
		} else {
			fmt.Fprintf(&b, " at %s", e.Proc)
		}
	}
	fmt.Fprintf(&b, ", clock %.1fµs", e.Clock)
	return b.String()
}

// Unwrap exposes the originating failure.
func (e *AbortError) Unwrap() error { return e.Cause }

// CongestionError reports a full link: the sender had cap(link)
// undelivered messages outstanding to one destination, which means the
// communication schedule is pathologically unbalanced (generated code
// never comes close). The machine fails the run with a diagnostic
// naming the congested pair instead of silently blocking the sender.
type CongestionError struct {
	// Src and Dst name the congested link.
	Src, Dst int
	// Depth is the link's buffered capacity, all of it occupied.
	Depth int
	// Proc and Line attribute the overflowing send statement.
	Proc string
	Line int
	// Clock is the sender's virtual time at the failure.
	Clock float64
}

func (e *CongestionError) Error() string {
	site := ""
	if e.Proc != "" {
		site = fmt.Sprintf(" at %s:%d", e.Proc, e.Line)
	}
	return fmt.Sprintf("p%d: link p%d->p%d congested: %d undelivered messages%s, clock %.1fµs",
		e.Src, e.Src, e.Dst, e.Depth, site, e.Clock)
}

// BlockedProc is one processor's blocked state in a deadlock report:
// the source attribution recorded by SetContext, the primitive it was
// blocked in, the link partner, and its virtual clock.
type BlockedProc struct {
	PID   int
	Proc  string
	Line  int
	Op    string
	Peer  int
	Clock float64
}

func (b BlockedProc) String() string {
	site := "(unattributed)"
	if b.Proc != "" {
		site = b.Proc
		if b.Line != 0 {
			site = fmt.Sprintf("%s:%d", b.Proc, b.Line)
		}
	}
	return fmt.Sprintf("p%-3d %-10s peer=p%-3d at %-18s clock=%.1fµs",
		b.PID, b.Op, b.Peer, site, b.Clock)
}

// DeadlockError is the structured report the watchdog produces when
// every live processor is blocked on a link (or when the wall-clock
// deadline expires): one line per blocked processor, sorted by pid.
type DeadlockError struct {
	// Deadline is true when the wall-clock deadline expired, false when
	// the all-blocked watchdog fired.
	Deadline bool
	// Elapsed is the wall-clock time from the first node program's
	// launch to the detection.
	Elapsed time.Duration
	// Live is the number of node programs still running at detection.
	Live int
	// Blocked lists the blocked processors in pid order.
	Blocked []BlockedProc
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	if e.Deadline {
		fmt.Fprintf(&b, "machine: wall-clock deadline exceeded after %v (%d of %d live processors blocked on links)",
			e.Elapsed.Round(time.Millisecond), len(e.Blocked), e.Live)
	} else {
		fmt.Fprintf(&b, "machine: deadlock: all %d live processors blocked on links", e.Live)
	}
	for _, bp := range e.Blocked {
		fmt.Fprintf(&b, "\n  %s", bp)
	}
	return b.String()
}

// blockInfo is one processor's registered blocking state, written
// under Machine.mu by the blocking processor itself (copying its own
// attribution context, which only it writes) and read by the watchdog.
type blockInfo struct {
	active bool
	op     string
	peer   int
	proc   string
	line   int
	clock  float64
}

// Abort cancels the run: the first call latches (origin, cause) and
// closes the done channel, unblocking every processor waiting in a
// communication primitive with an *AbortError that wraps cause.
// Subsequent calls are no-ops. origin is the failing processor's pid,
// or -1 for machine-level failures (watchdog, deadline).
func (m *Machine) Abort(origin int, cause error) {
	m.abortOnce.Do(func() {
		m.abortOrigin = origin
		m.abortCause = cause
		m.aborted.Store(true)
		close(m.done)
	})
}

// Err returns the run-level failure latched by Abort (nil for a clean
// run). Meaningful after Wait.
func (m *Machine) Err() error {
	if !m.aborted.Load() {
		return nil
	}
	return m.abortCause
}

// ProcErr returns the error processor p's node program was terminated
// with (an *AbortError or *CongestionError), or nil when it finished
// normally. Meaningful after Wait.
func (m *Machine) ProcErr(p int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.procErrs[p]
}

// block registers the processor as blocked on a link before it parks
// in a channel select; unblock clears the registration when the
// operation completes. The op label prefers the SetContext operation
// ("bcast", "allgather", ...) over the primitive name.
func (p *Proc) block(prim string, peer int) {
	op := prim
	if p.ctxOp != "" {
		op = p.ctxOp
	}
	m := p.m
	m.mu.Lock()
	m.blocked[p.id] = blockInfo{active: true, op: op, peer: peer,
		proc: p.ctxProc, line: p.ctxLine, clock: p.stats.Clock}
	m.blockedCount++
	m.mu.Unlock()
}

func (p *Proc) unblock() {
	m := p.m
	m.mu.Lock()
	m.blocked[p.id] = blockInfo{}
	m.blockedCount--
	m.mu.Unlock()
	m.progress.Add(1)
}

// abortNow terminates the calling node program with an *AbortError
// describing what it was doing, emitting a KindAbort trace event.
// It never returns.
func (p *Proc) abortNow(prim string, peer int) {
	m := p.m
	op := prim
	if p.ctxOp != "" {
		op = p.ctxOp
	}
	err := &AbortError{
		PID: p.id, Origin: m.abortOrigin, Op: op, Peer: peer,
		Clock: p.stats.Clock, Proc: p.ctxProc, Line: p.ctxLine,
		Cause: m.abortCause,
	}
	if m.tr != nil {
		name := "abort"
		if _, ok := m.abortCause.(*DeadlockError); ok {
			name = "deadlock"
		}
		src, dst := p.id, peer
		if prim == "recv" {
			src, dst = peer, p.id
		}
		if peer < 0 {
			src, dst = p.id, p.id
		}
		m.tr.Emit(trace.Event{
			Kind: trace.KindAbort, Name: name,
			Proc: p.ctxProc, Line: p.ctxLine,
			PID: p.id, Src: src, Dst: dst,
			Start: p.stats.Clock,
		})
	}
	panic(abortPanic{err})
}

// Watchdog cadence: with these settings an all-blocked machine is
// detected after ~4 idle samples (≈20–30ms of wall clock). A false
// positive would need a runnable goroutine (one with a deliverable
// message) to stay unscheduled for that whole window while every other
// goroutine is parked — the progress counter resets the stability
// count whenever any channel operation completes.
const (
	watchdogInterval = 5 * time.Millisecond
	watchdogStable   = 4
)

// startWatchdog launches the watchdog goroutine once (on the first Go
// call). With NoWatchdog set and no Deadline there is nothing to
// watch, and watchDone is closed immediately.
func (m *Machine) startWatchdog() {
	m.watchOnce.Do(func() {
		if m.cfg.NoWatchdog && m.cfg.Deadline == 0 {
			close(m.watchDone)
			return
		}
		go m.watchdog()
	})
}

func (m *Machine) watchdog() {
	defer close(m.watchDone)
	start := time.Now()
	tick := time.NewTicker(watchdogInterval)
	defer tick.Stop()
	var lastProgress uint64
	stable := 0
	for {
		select {
		case <-m.watchStop:
			return
		case <-m.done:
			return
		case <-tick.C:
		}
		elapsed := time.Since(start)
		if m.cfg.Deadline > 0 && elapsed >= m.cfg.Deadline {
			m.Abort(-1, m.deadlockReport(true, elapsed))
			return
		}
		if m.cfg.NoWatchdog {
			continue
		}
		m.mu.Lock()
		allBlocked := m.running > 0 && m.blockedCount == m.running
		m.mu.Unlock()
		progress := m.progress.Load()
		if allBlocked && progress == lastProgress {
			stable++
		} else {
			stable = 0
		}
		lastProgress = progress
		if stable >= watchdogStable {
			m.Abort(-1, m.deadlockReport(false, elapsed))
			return
		}
	}
}

// deadlockReport snapshots the blocked set into a structured report.
func (m *Machine) deadlockReport(deadline bool, elapsed time.Duration) *DeadlockError {
	m.mu.Lock()
	defer m.mu.Unlock()
	dl := &DeadlockError{Deadline: deadline, Elapsed: elapsed, Live: m.running}
	for pid, b := range m.blocked {
		if !b.active {
			continue
		}
		dl.Blocked = append(dl.Blocked, BlockedProc{
			PID: pid, Proc: b.proc, Line: b.line,
			Op: b.op, Peer: b.peer, Clock: b.clock,
		})
	}
	return dl
}
