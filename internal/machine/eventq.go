// The discrete-event backend's virtual-time event queue: a set of
// binary min-heaps ("shards") with a global pop that returns the
// minimum event under the total order (time, seq, pid). Sharding by
// processor id keeps each heap shallow at large P — pushes touch only
// the owning shard, and a pop scans the shard tops (a handful of
// comparisons) instead of sifting one P-sized heap.
//
// The seq field is a machine-wide monotone counter assigned at push
// time, so events at equal virtual time drain in creation order —
// processor start events fire in Go-call order, and simultaneous
// message arrivals resume receivers deterministically. The pid field is
// a final tie-breaker that makes the order total even for hand-built
// event sets (the property test exercises it).
package machine

// event schedules one processor to resume at a virtual time.
type event struct {
	time float64 // virtual time the processor becomes runnable
	seq  uint64  // machine-wide creation order (tie-break)
	pid  int     // processor to resume
}

// less is the total drain order: (time, seq, pid) lexicographic.
func (a event) less(b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.pid < b.pid
}

// eventHeap is one shard: a binary min-heap ordered by event.less.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.ev[i].less(h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// popTop removes the shard's minimum (the shard must be non-empty).
func (h *eventHeap) popTop() event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && h.ev[l].less(h.ev[min]) {
			min = l
		}
		if r < last && h.ev[r].less(h.ev[min]) {
			min = r
		}
		if min == i {
			break
		}
		h.ev[i], h.ev[min] = h.ev[min], h.ev[i]
		i = min
	}
	return top
}

// eventQueue is the sharded queue. The zero value is unusable; call
// init first.
type eventQueue struct {
	shards []eventHeap
}

// initShards sizes the queue. nshards must be >= 1.
func (q *eventQueue) initShards(nshards int) {
	if nshards < 1 {
		nshards = 1
	}
	q.shards = make([]eventHeap, nshards)
}

// push files the event under its processor's shard.
func (q *eventQueue) push(e event) {
	q.shards[e.pid%len(q.shards)].push(e)
}

// pop removes and returns the globally minimum event under
// (time, seq, pid), or ok=false when the queue is empty.
func (q *eventQueue) pop() (event, bool) {
	best := -1
	var bestEv event
	for i := range q.shards {
		h := &q.shards[i]
		if len(h.ev) == 0 {
			continue
		}
		if best < 0 || h.ev[0].less(bestEv) {
			best, bestEv = i, h.ev[0]
		}
	}
	if best < 0 {
		return event{}, false
	}
	q.shards[best].popTop()
	return bestEv, true
}

// len returns the number of queued events.
func (q *eventQueue) len() int {
	n := 0
	for i := range q.shards {
		n += len(q.shards[i].ev)
	}
	return n
}

// desShardCount picks the shard count for a P-processor machine: one
// shard per 64 processors, clamped to [1, 16]. Small machines get one
// flat heap (no scan overhead); P=1024 gets 16 shallow heaps.
func desShardCount(p int) int {
	n := p / 64
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}
