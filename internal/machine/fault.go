// Deterministic, seeded fault injection for the simulated machine.
//
// A FaultPlan turns robustness scenarios — a flaky interconnect that
// delays or duplicates messages, a straggling processor — into
// reproducible test inputs: every random draw comes from a per-sender
// stream derived from the plan's seed, so two runs of the same
// deterministic node program with the same plan inject exactly the
// same faults regardless of goroutine scheduling, and their trace
// exports are byte-identical. Injected faults perturb virtual time
// only (delays stretch delivery, stragglers stretch computation,
// duplicates stall the receiver that discards them); they never change
// program results, so a faulted run still matches its sequential
// reference.
package machine

import (
	"fmt"
	"math/rand"
	"sort"

	"fortd/internal/trace"
)

// FaultPlan describes seeded, deterministic fault injection. The zero
// value injects nothing. Attach with Machine.SetFaultPlan (after
// SetTracer, before Go).
type FaultPlan struct {
	// Seed selects the per-sender random streams; the same seed
	// reproduces the same faults on the same node program.
	Seed int64
	// DelayProb is the per-message probability of an injected delivery
	// delay, drawn uniformly from (0, DelayMax] virtual µs.
	DelayProb float64
	DelayMax  float64
	// Stragglers maps a processor id to a flop-cost multiplier (> 1
	// slows it down), modeling a slow node skewing the load balance.
	Stragglers map[int]float64
	// DupProb is the per-message probability the link delivers a
	// duplicate copy; the receiver detects and discards duplicates,
	// paying the delivery stall but never observing duplicate data.
	// Duplication is bounded to MaxDups per sending processor
	// (0: DefaultMaxDups).
	DupProb float64
	MaxDups int
}

// DefaultMaxDups bounds per-sender duplicates when MaxDups is 0.
const DefaultMaxDups = 64

// Validate reports the first invalid field.
func (fp *FaultPlan) Validate() error {
	if fp == nil {
		return nil
	}
	if fp.DelayProb < 0 || fp.DelayProb > 1 {
		return fmt.Errorf("machine: FaultPlan.DelayProb = %v, must be in [0, 1]", fp.DelayProb)
	}
	if fp.DelayMax < 0 {
		return fmt.Errorf("machine: FaultPlan.DelayMax = %v, must be >= 0", fp.DelayMax)
	}
	if fp.DelayProb > 0 && fp.DelayMax == 0 {
		return fmt.Errorf("machine: FaultPlan.DelayProb = %v with DelayMax = 0 injects nothing", fp.DelayProb)
	}
	if fp.DupProb < 0 || fp.DupProb > 1 {
		return fmt.Errorf("machine: FaultPlan.DupProb = %v, must be in [0, 1]", fp.DupProb)
	}
	if fp.MaxDups < 0 {
		return fmt.Errorf("machine: FaultPlan.MaxDups = %v, must be >= 0", fp.MaxDups)
	}
	for pid, skew := range fp.Stragglers {
		if skew <= 0 {
			return fmt.Errorf("machine: FaultPlan.Stragglers[%d] = %v, must be > 0", pid, skew)
		}
	}
	return nil
}

// maxDups resolves the duplicate bound.
func (fp *FaultPlan) maxDups() int {
	if fp.MaxDups > 0 {
		return fp.MaxDups
	}
	return DefaultMaxDups
}

// SetFaultPlan attaches a fault-injection plan. Call after SetTracer
// (straggler skews are announced as trace events) and before Go. A nil
// plan is a no-op.
func (m *Machine) SetFaultPlan(fp *FaultPlan) {
	if fp == nil {
		return
	}
	m.fault = fp
	for pid, p := range m.procs {
		// one independent stream per sending processor, consumed in that
		// processor's program order — deterministic under any scheduling
		p.frng = rand.New(rand.NewSource(fp.Seed ^ (int64(pid)+1)*0x9E3779B97F4A7C1))
		if skew, ok := fp.Stragglers[pid]; ok && skew > 0 {
			p.skew = skew
		}
	}
	if m.tr != nil {
		pids := make([]int, 0, len(fp.Stragglers))
		for pid := range fp.Stragglers {
			if pid >= 0 && pid < m.cfg.P {
				pids = append(pids, pid)
			}
		}
		sort.Ints(pids)
		for _, pid := range pids {
			m.tr.Emit(trace.Event{
				Kind: trace.KindFault, Name: "straggler",
				PID: pid, Src: pid, Dst: pid,
				Dur: fp.Stragglers[pid], // the flop-cost multiplier
			})
		}
	}
}

// injectSendFaults draws this message's faults from the sender's
// stream: a delivery delay carried on the message, and whether the
// link duplicates it. Runs on the sending processor's goroutine only.
func (p *Proc) injectSendFaults(to, words int, seq int64) (delay float64, dup bool) {
	fp := p.m.fault
	if fp == nil || p.frng == nil {
		return 0, false
	}
	if fp.DelayProb > 0 && p.frng.Float64() < fp.DelayProb {
		delay = (1 - p.frng.Float64()) * fp.DelayMax // (0, DelayMax]
		if p.m.tr != nil {
			p.m.tr.Emit(trace.Event{
				Kind: trace.KindFault, Name: "delay",
				Proc: p.ctxProc, Line: p.ctxLine,
				PID: p.id, Src: p.id, Dst: to, Words: words,
				Start: p.stats.Clock, Dur: delay, Seq: seq,
			})
		}
	}
	if fp.DupProb > 0 && p.fdups < fp.maxDups() && p.frng.Float64() < fp.DupProb {
		p.fdups++
		dup = true
		if p.m.tr != nil {
			p.m.tr.Emit(trace.Event{
				Kind: trace.KindFault, Name: "dup",
				Proc: p.ctxProc, Line: p.ctxLine,
				PID: p.id, Src: p.id, Dst: to, Words: words,
				Start: p.stats.Clock, Seq: seq,
			})
		}
	}
	return delay, dup
}

// dropDuplicate charges the receiver for a duplicate it detected and
// discarded: the duplicate occupied the link, so the receiver's clock
// advances to its arrival time, but no data is observed and no message
// is counted.
func (p *Proc) dropDuplicate(from int, msg message) {
	start := p.stats.Clock
	arrival := msg.sendTime + p.m.cfg.Latency + float64(len(msg.data))*p.m.cfg.PerWord + msg.delay
	if arrival > p.stats.Clock {
		p.stats.Wait += arrival - p.stats.Clock
		p.stats.Clock = arrival
	}
	if p.m.tr != nil {
		p.m.tr.Emit(trace.Event{
			Kind: trace.KindFault, Name: "dup-drop",
			Proc: p.ctxProc, Line: p.ctxLine,
			PID: p.id, Src: from, Dst: p.id, Words: len(msg.data),
			Start: start, Dur: p.stats.Clock - start, Seq: msg.seq,
		})
	}
}
