package machine

import (
	"math/rand"
	"sort"
	"testing"
)

// refLess is the specification order, written independently of
// event.less: (time, seq, pid) lexicographic.
func refLess(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.pid < b.pid
}

// randomEvents builds an event set dense in ties: times are drawn from
// a tiny palette (so equal virtual times are common), seq from a small
// range (so the pid tie-break is exercised too), and exact duplicates
// are allowed.
func randomEvents(rng *rand.Rand, n int) []event {
	times := []float64{0, 0, 1, 2, 2, 2.5, 3, 70.4}
	evs := make([]event, n)
	for i := range evs {
		evs[i] = event{
			time: times[rng.Intn(len(times))],
			seq:  uint64(rng.Intn(20)),
			pid:  rng.Intn(48),
		}
	}
	return evs
}

// TestEventQueueDrainsInOrder: for every shard count, a random event
// set pushed in arbitrary order drains in total (time, seq, pid)
// order — including across shards, which only ever see their own pids.
func TestEventQueueDrainsInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shards := range []int{1, 2, 3, 4, 8, 16} {
		for trial := 0; trial < 25; trial++ {
			evs := randomEvents(rng, rng.Intn(300))
			want := append([]event(nil), evs...)
			sort.SliceStable(want, func(i, j int) bool { return refLess(want[i], want[j]) })

			var q eventQueue
			q.initShards(shards)
			for _, e := range evs {
				q.push(e)
			}
			if q.len() != len(evs) {
				t.Fatalf("shards=%d: len=%d, want %d", shards, q.len(), len(evs))
			}
			var got []event
			for {
				e, ok := q.pop()
				if !ok {
					break
				}
				got = append(got, e)
			}
			if len(got) != len(want) {
				t.Fatalf("shards=%d trial=%d: drained %d of %d events", shards, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shards=%d trial=%d: drain[%d] = %+v, want %+v",
						shards, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEventQueueInterleaved: under a random interleaving of pushes and
// pops, every pop returns the minimum of the currently queued multiset.
func TestEventQueueInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shards := range []int{1, 3, 8} {
		var q eventQueue
		q.initShards(shards)
		var live []event // reference multiset
		for op := 0; op < 2000; op++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				e := randomEvents(rng, 1)[0]
				q.push(e)
				live = append(live, e)
				continue
			}
			got, ok := q.pop()
			if !ok {
				t.Fatalf("shards=%d op=%d: pop empty with %d live", shards, op, len(live))
			}
			min := 0
			for i := range live {
				if refLess(live[i], live[min]) {
					min = i
				}
			}
			if got != live[min] {
				t.Fatalf("shards=%d op=%d: pop = %+v, want min %+v", shards, op, got, live[min])
			}
			live = append(live[:min], live[min+1:]...)
		}
		if q.len() != len(live) {
			t.Fatalf("shards=%d: final len %d, want %d", shards, q.len(), len(live))
		}
	}
}

// TestDESShardCount pins the shard sizing policy's corners.
func TestDESShardCount(t *testing.T) {
	for _, tc := range []struct{ p, want int }{
		{1, 1}, {63, 1}, {64, 1}, {128, 2}, {1024, 16}, {4096, 16},
	} {
		if got := desShardCount(tc.p); got != tc.want {
			t.Errorf("desShardCount(%d) = %d, want %d", tc.p, got, tc.want)
		}
	}
}
