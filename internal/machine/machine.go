// Package machine simulates a MIMD distributed-memory machine in the
// style of the iPSC/860 the paper evaluated on: P processors, each with
// private memory, connected by an interconnect with per-message latency
// and per-word transfer cost. Each processor runs as a goroutine; Go
// channels are the links. Time is virtual: every processor advances its
// own clock for computation, and message receipt synchronizes the
// receiver's clock with the sender's send time plus the transfer cost.
// The simulation is deterministic for deterministic node programs.
package machine

import (
	"fmt"
	"sync"

	"fortd/internal/trace"
)

// Config sets the machine's size and cost model. Times are in
// microseconds, matching published iPSC/860 figures: ~70µs message
// startup, ~0.4µs per 8-byte word (≈2.8 MB/s), ~0.1µs per flop.
type Config struct {
	P        int
	Latency  float64 // message startup cost (α)
	PerWord  float64 // transfer cost per word (β)
	FlopCost float64 // cost of one arithmetic operation
}

// DefaultConfig returns an iPSC/860-like machine with p processors.
func DefaultConfig(p int) Config {
	return Config{P: p, Latency: 70.0, PerWord: 0.4, FlopCost: 0.1}
}

// Stats aggregates execution statistics.
type Stats struct {
	Messages  int64   // point-to-point messages delivered
	Received  int64   // point-to-point messages consumed by a Recv
	Words     int64   // data words transferred
	Flops     int64   // arithmetic operations executed
	Remaps    int64   // physical array remappings
	Time      float64 // parallel execution time = max processor clock
	PerProc   []ProcStats
	Broadcast int64 // messages that were part of broadcast/gather ops
	// Traffic is the per-pair accounting: Traffic[src][dst] accumulates
	// every message src sent to dst. Remap traffic, which has no single
	// destination, is charged to the diagonal Traffic[p][p], so row sums
	// match each processor's Sent/Words totals.
	Traffic [][]PairStats
}

// PairStats is one src→dst link's totals.
type PairStats struct {
	Msgs  int64
	Words int64
}

// ProcStats is one processor's view.
type ProcStats struct {
	Clock    float64
	Sent     int64
	Received int64
	Words    int64
	Flops    int64
	// RemapMsgs is the subset of Sent charged by CountRemap: collective
	// partner messages that no Recv consumes. Sent - RemapMsgs is the
	// processor's point-to-point message count, which conservation
	// checks against the machine-wide Received total.
	RemapMsgs int64
	// Wait is the cumulative virtual time the processor spent blocked in
	// Recv for messages that had not yet arrived (idle time).
	Wait float64
}

func (s Stats) String() string {
	return fmt.Sprintf("time=%.1fµs msgs=%d words=%d flops=%d remaps=%d",
		s.Time, s.Messages, s.Words, s.Flops, s.Remaps)
}

// message travels between processors.
type message struct {
	data     []float64
	sendTime float64
	seq      int64 // trace message id (0 when tracing is disabled)
}

// Machine is one simulated machine instance. Create with New, obtain
// per-processor handles with Proc, run the node programs concurrently,
// then read Stats after Wait.
type Machine struct {
	cfg   Config
	links [][]chan message // links[from][to]
	procs []*Proc
	wg    sync.WaitGroup
	tr    *trace.Tracer // nil: tracing disabled
}

// New builds a machine.
func New(cfg Config) *Machine {
	if cfg.P < 1 {
		panic("machine: P must be >= 1")
	}
	m := &Machine{cfg: cfg}
	m.links = make([][]chan message, cfg.P)
	for i := range m.links {
		m.links[i] = make([]chan message, cfg.P)
		for j := range m.links[i] {
			// deep enough that generated communication patterns never
			// fill it; a full link back-pressures the sender's
			// goroutine without affecting virtual time
			m.links[i][j] = make(chan message, 8192)
		}
	}
	m.procs = make([]*Proc, cfg.P)
	for p := 0; p < cfg.P; p++ {
		m.procs[p] = &Proc{m: m, id: p, pairs: make([]PairStats, cfg.P)}
	}
	return m
}

// P returns the processor count.
func (m *Machine) P() int { return m.cfg.P }

// Config returns the cost model.
func (m *Machine) Config() Config { return m.cfg }

// SetTracer attaches a tracer; every subsequent send, receive,
// broadcast step and remap emits one event. Call before Go.
func (m *Machine) SetTracer(t *trace.Tracer) { m.tr = t }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (m *Machine) Tracer() *trace.Tracer { return m.tr }

// Proc returns processor p's handle.
func (m *Machine) Proc(p int) *Proc { return m.procs[p] }

// Go runs fn as processor p's node program.
func (m *Machine) Go(p int, fn func(*Proc)) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		fn(m.procs[p])
	}()
}

// Wait blocks until every node program launched with Go has finished.
func (m *Machine) Wait() { m.wg.Wait() }

// Stats collects the machine-wide statistics. Call after Wait.
func (m *Machine) Stats() Stats {
	var s Stats
	s.PerProc = make([]ProcStats, m.cfg.P)
	s.Traffic = make([][]PairStats, m.cfg.P)
	for i, p := range m.procs {
		s.PerProc[i] = p.stats
		if p.stats.Clock > s.Time {
			s.Time = p.stats.Clock
		}
		s.Messages += p.stats.Sent
		s.Received += p.stats.Received
		s.Words += p.stats.Words
		s.Flops += p.stats.Flops
		// a physical remap is a collective operation: every processor
		// participates once, so the count is the per-processor maximum
		if p.remaps > s.Remaps {
			s.Remaps = p.remaps
		}
		s.Broadcast += p.bcast
		s.Traffic[i] = append([]PairStats(nil), p.pairs...)
	}
	return s
}

// Proc is one simulated processor.
type Proc struct {
	m      *Machine
	id     int
	stats  ProcStats
	remaps int64
	bcast  int64
	// pairs[dst] accumulates this processor's traffic per destination
	// (remap traffic lands on pairs[id]). Written only by this
	// processor's goroutine; snapshotted by Stats after Wait.
	pairs []PairStats
	// trace attribution context, set by the interpreter before each
	// communication statement: the owning procedure, source line and
	// operation kind. Read only by this processor's goroutine.
	ctxProc string
	ctxLine int
	ctxOp   string
}

// SetContext records the source attribution (procedure, line,
// operation) carried by every trace event this processor emits until
// the next call. A no-op when tracing is disabled.
func (p *Proc) SetContext(proc string, line int, op string) {
	if p.m.tr == nil {
		return
	}
	p.ctxProc, p.ctxLine, p.ctxOp = proc, line, op
}

// op returns the operation label for emitted events ("send" when the
// interpreter never set a context, e.g. hand-driven machine tests).
func (p *Proc) op() string {
	if p.ctxOp == "" {
		return "send"
	}
	return p.ctxOp
}

// ID returns the processor number in [0, P).
func (p *Proc) ID() int { return p.id }

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() float64 { return p.stats.Clock }

// Compute advances the clock by n arithmetic operations.
func (p *Proc) Compute(n int) {
	p.stats.Flops += int64(n)
	p.stats.Clock += float64(n) * p.m.cfg.FlopCost
}

// Tick advances the clock by an explicit cost.
func (p *Proc) Tick(cost float64) { p.stats.Clock += cost }

// Send transmits data to processor to. The sender is charged the
// message startup; delivery time is carried on the message.
func (p *Proc) Send(to int, data []float64) {
	if to == p.id {
		// local move: no message
		return
	}
	start := p.stats.Clock
	p.stats.Clock += p.m.cfg.Latency
	p.stats.Sent++
	p.stats.Words += int64(len(data))
	p.pairs[to].Msgs++
	p.pairs[to].Words += int64(len(data))
	var seq int64
	if p.m.tr != nil {
		seq = p.m.tr.NextSeq()
		p.m.tr.Emit(trace.Event{
			Kind: trace.KindSend, Name: p.op(),
			Proc: p.ctxProc, Line: p.ctxLine,
			PID: p.id, Src: p.id, Dst: to, Words: len(data),
			Start: start, Dur: p.stats.Clock - start, Seq: seq,
		})
	}
	p.m.links[p.id][to] <- message{data: data, sendTime: p.stats.Clock, seq: seq}
}

// Recv blocks until a message from processor from arrives, advancing
// the clock to the delivery time.
func (p *Proc) Recv(from int) []float64 {
	if from == p.id {
		return nil
	}
	msg := <-p.m.links[from][p.id]
	start := p.stats.Clock
	arrival := msg.sendTime + p.m.cfg.Latency + float64(len(msg.data))*p.m.cfg.PerWord
	if arrival > p.stats.Clock {
		p.stats.Wait += arrival - p.stats.Clock
		p.stats.Clock = arrival
	}
	p.stats.Received++
	if p.m.tr != nil {
		p.m.tr.Emit(trace.Event{
			Kind: trace.KindRecv, Name: p.op(),
			Proc: p.ctxProc, Line: p.ctxLine,
			PID: p.id, Src: from, Dst: p.id, Words: len(msg.data),
			Start: start, Dur: p.stats.Clock - start, Seq: msg.seq,
		})
	}
	return msg.data
}

// Broadcast distributes data from root to every processor. All
// processors must call it. It returns the data (the root's own copy on
// the root). The implementation is a binomial tree, the pattern the
// iPSC hypercube's library broadcast used: log₂(P) message steps on
// the critical path.
func (p *Proc) Broadcast(root int, data []float64) []float64 {
	np := p.m.cfg.P
	rel := (p.id - root + np) % np
	received := p.id == root
	for k := 1; k < np; k <<= 1 {
		if rel >= k && rel < 2*k {
			data = p.Recv((root + rel - k) % np)
			received = true
			continue
		}
		if rel < k && received && rel+k < np {
			p.Send((root+rel+k)%np, data)
			p.bcast++
		}
	}
	return data
}

// Barrier performs a linear synchronization through processor 0 (used
// only by tests; the generated code never needs explicit barriers).
func (p *Proc) Barrier() {
	if p.m.cfg.P == 1 {
		return
	}
	if p.id == 0 {
		for q := 1; q < p.m.cfg.P; q++ {
			p.Recv(q)
		}
		for q := 1; q < p.m.cfg.P; q++ {
			p.Send(q, nil)
		}
	} else {
		p.Send(0, nil)
		p.Recv(0)
	}
}

// CountRemap records a physical remap's communication volume: words
// moved by this processor, spread across up to P-1 partner messages.
func (p *Proc) CountRemap(words, partners int) {
	p.remaps++
	if partners < 1 {
		partners = 1
	}
	start := p.stats.Clock
	p.stats.Sent += int64(partners)
	p.stats.RemapMsgs += int64(partners)
	p.stats.Words += int64(words)
	p.pairs[p.id].Msgs += int64(partners)
	p.pairs[p.id].Words += int64(words)
	p.stats.Clock += float64(partners)*p.m.cfg.Latency + float64(words)*p.m.cfg.PerWord
	if p.m.tr != nil {
		p.m.tr.Emit(trace.Event{
			Kind: trace.KindRemap, Name: "remap",
			Proc: p.ctxProc, Line: p.ctxLine,
			PID: p.id, Src: p.id, Dst: p.id, Words: words,
			Start: start, Dur: p.stats.Clock - start,
			Value: int64(partners),
		})
	}
}
