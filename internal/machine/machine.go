// Package machine simulates a MIMD distributed-memory machine in the
// style of the iPSC/860 the paper evaluated on: P processors, each with
// private memory, connected by an interconnect with per-message latency
// and per-word transfer cost. Each processor runs as a goroutine; Go
// channels are the links. Time is virtual: every processor advances its
// own clock for computation, and message receipt synchronizes the
// receiver's clock with the sender's send time plus the transfer cost.
// The simulation is deterministic for deterministic node programs.
package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fortd/internal/trace"
)

// Config sets the machine's size and cost model. Times are in
// microseconds, matching published iPSC/860 figures: ~70µs message
// startup, ~0.4µs per 8-byte word (≈2.8 MB/s), ~0.1µs per flop.
type Config struct {
	P        int
	Latency  float64 // message startup cost (α)
	PerWord  float64 // transfer cost per word (β)
	FlopCost float64 // cost of one arithmetic operation
	// LinkDepth is each link's buffered capacity in messages
	// (0: DefaultLinkDepth). A sender that fills a link fails the run
	// with a *CongestionError naming the (src, dst) pair.
	LinkDepth int
	// Deadline bounds the run's wall-clock time (0: none). When it
	// expires the machine aborts with a *DeadlockError report marked
	// Deadline, unblocking every processor.
	Deadline time.Duration
	// NoWatchdog disables the all-blocked deadlock watchdog (it is on
	// by default; see abort.go). The Deadline still applies.
	NoWatchdog bool
}

// DefaultLinkDepth is the per-link message buffer when LinkDepth is 0:
// deep enough that generated communication patterns never fill it.
const DefaultLinkDepth = 8192

// DefaultConfig returns an iPSC/860-like machine with p processors.
func DefaultConfig(p int) Config {
	return Config{P: p, Latency: 70.0, PerWord: 0.4, FlopCost: 0.1}
}

// Stats aggregates execution statistics.
type Stats struct {
	Messages  int64   // point-to-point messages delivered
	Received  int64   // point-to-point messages consumed by a Recv
	Words     int64   // data words transferred
	Flops     int64   // arithmetic operations executed
	Remaps    int64   // physical array remappings
	Time      float64 // parallel execution time = max processor clock
	PerProc   []ProcStats
	Broadcast int64 // messages that were part of broadcast/gather ops
	// Traffic is the per-pair accounting: Traffic[src][dst] accumulates
	// every message src sent to dst. Remap traffic, which has no single
	// destination, is charged to the diagonal Traffic[p][p], so row sums
	// match each processor's Sent/Words totals.
	Traffic [][]PairStats
}

// PairStats is one src→dst link's totals.
type PairStats struct {
	Msgs  int64
	Words int64
}

// ProcStats is one processor's view.
type ProcStats struct {
	Clock    float64
	Sent     int64
	Received int64
	Words    int64
	Flops    int64
	// RemapMsgs is the subset of Sent charged by CountRemap: collective
	// partner messages that no Recv consumes. Sent - RemapMsgs is the
	// processor's point-to-point message count, which conservation
	// checks against the machine-wide Received total.
	RemapMsgs int64
	// Wait is the cumulative virtual time the processor spent blocked in
	// Recv for messages that had not yet arrived (idle time).
	Wait float64
}

func (s Stats) String() string {
	return fmt.Sprintf("time=%.1fµs msgs=%d words=%d flops=%d remaps=%d",
		s.Time, s.Messages, s.Words, s.Flops, s.Remaps)
}

// message travels between processors.
type message struct {
	data     []float64
	sendTime float64
	seq      int64   // trace message id (0 when tracing is disabled)
	delay    float64 // injected delivery delay (fault plan)
	dup      bool    // injected duplicate: the receiver discards it
}

// Machine is one simulated machine instance. Create with New, obtain
// per-processor handles with Proc, run the node programs concurrently,
// then read Stats after Wait.
type Machine struct {
	cfg   Config
	links [][]chan message // links[from][to]
	procs []*Proc
	wg    sync.WaitGroup
	tr    *trace.Tracer // nil: tracing disabled
	fault *FaultPlan    // nil: no fault injection

	// cooperative-abort state: the first failure latches (origin,
	// cause) and closes done, unblocking every communication primitive
	done        chan struct{}
	aborted     atomic.Bool
	abortOnce   sync.Once
	abortOrigin int
	abortCause  error

	// watchdog state: per-processor blocked registrations and a global
	// progress counter bumped on every completed channel operation
	mu           sync.Mutex
	running      int // node programs launched and not yet finished
	blockedCount int
	blocked      []blockInfo
	procErrs     []error
	progress     atomic.Uint64
	watchOnce    sync.Once
	stopOnce     sync.Once
	watchStop    chan struct{}
	watchDone    chan struct{}
}

// New builds a machine.
func New(cfg Config) *Machine {
	if cfg.P < 1 {
		panic("machine: P must be >= 1")
	}
	depth := cfg.LinkDepth
	if depth <= 0 {
		depth = DefaultLinkDepth
	}
	m := &Machine{cfg: cfg,
		done:      make(chan struct{}),
		watchStop: make(chan struct{}),
		watchDone: make(chan struct{}),
		blocked:   make([]blockInfo, cfg.P),
		procErrs:  make([]error, cfg.P),
	}
	m.links = make([][]chan message, cfg.P)
	for i := range m.links {
		m.links[i] = make([]chan message, cfg.P)
		for j := range m.links[i] {
			// a full link is a failure, not back-pressure: see Proc.send
			m.links[i][j] = make(chan message, depth)
		}
	}
	m.procs = make([]*Proc, cfg.P)
	for p := 0; p < cfg.P; p++ {
		m.procs[p] = &Proc{m: m, id: p, pairs: make([]PairStats, cfg.P), skew: 1}
	}
	return m
}

// P returns the processor count.
func (m *Machine) P() int { return m.cfg.P }

// Config returns the cost model.
func (m *Machine) Config() Config { return m.cfg }

// SetTracer attaches a tracer; every subsequent send, receive,
// broadcast step and remap emits one event. Call before Go.
func (m *Machine) SetTracer(t *trace.Tracer) { m.tr = t }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (m *Machine) Tracer() *trace.Tracer { return m.tr }

// Proc returns processor p's handle.
func (m *Machine) Proc(p int) *Proc { return m.procs[p] }

// Go runs fn as processor p's node program. If the run is aborted
// while fn is blocked in a communication primitive (or between
// computations), fn is unwound and the processor's *AbortError is
// recorded (see ProcErr); other panics propagate.
func (m *Machine) Go(p int, fn func(*Proc)) {
	m.startWatchdog()
	m.wg.Add(1)
	m.mu.Lock()
	m.running++
	m.mu.Unlock()
	go func() {
		defer m.wg.Done()
		defer func() {
			m.mu.Lock()
			m.running--
			m.mu.Unlock()
			if r := recover(); r != nil {
				ap, ok := r.(abortPanic)
				if !ok {
					panic(r)
				}
				m.mu.Lock()
				m.procErrs[p] = ap.err
				m.mu.Unlock()
			}
		}()
		fn(m.procs[p])
	}()
}

// Wait blocks until every node program launched with Go has finished
// and returns the run-level failure, if any: the error passed to
// Abort, a *CongestionError, or the watchdog's *DeadlockError. A run
// on this machine cannot hang: a deadlocked schedule is detected and
// reported instead (see abort.go).
func (m *Machine) Wait() error {
	m.wg.Wait()
	m.startWatchdog() // ensure watchDone closes even if Go was never called
	m.stopOnce.Do(func() { close(m.watchStop) })
	<-m.watchDone
	return m.Err()
}

// Stats collects the machine-wide statistics. Call after Wait.
func (m *Machine) Stats() Stats {
	var s Stats
	s.PerProc = make([]ProcStats, m.cfg.P)
	s.Traffic = make([][]PairStats, m.cfg.P)
	for i, p := range m.procs {
		s.PerProc[i] = p.stats
		if p.stats.Clock > s.Time {
			s.Time = p.stats.Clock
		}
		s.Messages += p.stats.Sent
		s.Received += p.stats.Received
		s.Words += p.stats.Words
		s.Flops += p.stats.Flops
		// a physical remap is a collective operation: every processor
		// participates once, so the count is the per-processor maximum
		if p.remaps > s.Remaps {
			s.Remaps = p.remaps
		}
		s.Broadcast += p.bcast
		s.Traffic[i] = append([]PairStats(nil), p.pairs...)
	}
	return s
}

// Proc is one simulated processor.
type Proc struct {
	m      *Machine
	id     int
	stats  ProcStats
	remaps int64
	bcast  int64
	// pairs[dst] accumulates this processor's traffic per destination
	// (remap traffic lands on pairs[id]). Written only by this
	// processor's goroutine; snapshotted by Stats after Wait.
	pairs []PairStats
	// trace attribution context, set by the interpreter before each
	// communication statement: the owning procedure, source line and
	// operation kind. Written only by this processor's goroutine; the
	// watchdog reads a copy taken under the machine lock (blockInfo).
	ctxProc string
	ctxLine int
	ctxOp   string
	// fault-injection state (see fault.go): the per-sender random
	// stream, the straggler flop-cost multiplier, duplicates injected.
	frng  faultRand
	skew  float64
	fdups int
	// seqCtr counts this processor's traced sends; message sequence ids
	// are derived from (id, seqCtr) so they depend only on each sender's
	// program order, never on goroutine scheduling — a deterministic run
	// exports byte-identical traces.
	seqCtr int64
}

// faultRand is the per-sender random stream (nil: no plan attached).
type faultRand interface{ Float64() float64 }

// SetContext records the source attribution (procedure, line,
// operation) carried by every trace event this processor emits until
// the next call, and by its entry in a deadlock report.
func (p *Proc) SetContext(proc string, line int, op string) {
	p.ctxProc, p.ctxLine, p.ctxOp = proc, line, op
}

// op returns the operation label for emitted events ("send" when the
// interpreter never set a context, e.g. hand-driven machine tests).
func (p *Proc) op() string {
	if p.ctxOp == "" {
		return "send"
	}
	return p.ctxOp
}

// ID returns the processor number in [0, P).
func (p *Proc) ID() int { return p.id }

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() float64 { return p.stats.Clock }

// Compute advances the clock by n arithmetic operations (scaled by the
// fault plan's straggler skew, if any). It is also a cancellation
// point: an aborted run unwinds compute-bound node programs here.
func (p *Proc) Compute(n int) {
	if p.m.aborted.Load() {
		p.abortNow("compute", -1)
	}
	p.stats.Flops += int64(n)
	p.stats.Clock += float64(n) * p.m.cfg.FlopCost * p.skew
}

// Tick advances the clock by an explicit cost.
func (p *Proc) Tick(cost float64) {
	if p.m.aborted.Load() {
		p.abortNow("compute", -1)
	}
	p.stats.Clock += cost
}

// Send transmits data to processor to. The sender is charged the
// message startup; delivery time is carried on the message. Send never
// blocks: a full link fails the run with a *CongestionError naming the
// congested pair, and an aborted run unwinds the sender with an
// *AbortError.
func (p *Proc) Send(to int, data []float64) {
	if to == p.id {
		// local move: no message
		return
	}
	if p.m.aborted.Load() {
		p.abortNow("send", to)
	}
	start := p.stats.Clock
	p.stats.Clock += p.m.cfg.Latency
	p.stats.Sent++
	p.stats.Words += int64(len(data))
	p.pairs[to].Msgs++
	p.pairs[to].Words += int64(len(data))
	var seq int64
	if p.m.tr != nil {
		p.seqCtr++
		seq = int64(p.id)<<32 | p.seqCtr
		p.m.tr.Emit(trace.Event{
			Kind: trace.KindSend, Name: p.op(),
			Proc: p.ctxProc, Line: p.ctxLine,
			PID: p.id, Src: p.id, Dst: to, Words: len(data),
			Start: start, Dur: p.stats.Clock - start, Seq: seq,
		})
	}
	msg := message{data: data, sendTime: p.stats.Clock, seq: seq}
	delay, dup := p.injectSendFaults(to, len(data), seq)
	msg.delay = delay
	p.deliver(to, msg)
	if dup {
		d := msg
		d.dup = true
		p.deliver(to, d)
	}
}

// deliver enqueues one message, failing the run on a full link.
func (p *Proc) deliver(to int, msg message) {
	select {
	case p.m.links[p.id][to] <- msg:
		p.m.progress.Add(1)
	default:
		err := &CongestionError{
			Src: p.id, Dst: to, Depth: cap(p.m.links[p.id][to]),
			Proc: p.ctxProc, Line: p.ctxLine, Clock: p.stats.Clock,
		}
		p.m.Abort(p.id, err)
		panic(abortPanic{err})
	}
}

// Recv blocks until a message from processor from arrives, advancing
// the clock to the delivery time. It unblocks with an *AbortError when
// the run is aborted (a peer failed, deadlock was detected, or the
// deadline expired) instead of hanging forever on a mismatched
// schedule. Injected duplicate messages are detected and discarded,
// charging only the delivery stall.
func (p *Proc) Recv(from int) []float64 {
	if from == p.id {
		return nil
	}
	for {
		msg := p.recvMsg(from)
		if msg.dup {
			p.dropDuplicate(from, msg)
			continue
		}
		start := p.stats.Clock
		arrival := msg.sendTime + p.m.cfg.Latency + float64(len(msg.data))*p.m.cfg.PerWord + msg.delay
		if arrival > p.stats.Clock {
			p.stats.Wait += arrival - p.stats.Clock
			p.stats.Clock = arrival
		}
		p.stats.Received++
		if p.m.tr != nil {
			p.m.tr.Emit(trace.Event{
				Kind: trace.KindRecv, Name: p.op(),
				Proc: p.ctxProc, Line: p.ctxLine,
				PID: p.id, Src: from, Dst: p.id, Words: len(msg.data),
				Start: start, Dur: p.stats.Clock - start, Seq: msg.seq,
			})
		}
		return msg.data
	}
}

// recvMsg takes the next message off the link, registering the
// processor as blocked (for the deadlock watchdog) while it waits and
// unwinding it if the run is aborted.
func (p *Proc) recvMsg(from int) message {
	if p.m.aborted.Load() {
		p.abortNow("recv", from)
	}
	ch := p.m.links[from][p.id]
	select {
	case msg := <-ch:
		p.m.progress.Add(1)
		return msg
	default:
	}
	p.block("recv", from)
	select {
	case msg := <-ch:
		p.unblock()
		return msg
	case <-p.m.done:
		p.unblock()
		p.abortNow("recv", from)
		panic("unreachable")
	}
}

// Broadcast distributes data from root to every processor. All
// processors must call it. It returns the data (the root's own copy on
// the root). The implementation is a binomial tree, the pattern the
// iPSC hypercube's library broadcast used: log₂(P) message steps on
// the critical path.
func (p *Proc) Broadcast(root int, data []float64) []float64 {
	np := p.m.cfg.P
	rel := (p.id - root + np) % np
	received := p.id == root
	for k := 1; k < np; k <<= 1 {
		if rel >= k && rel < 2*k {
			data = p.Recv((root + rel - k) % np)
			received = true
			continue
		}
		if rel < k && received && rel+k < np {
			p.Send((root+rel+k)%np, data)
			p.bcast++
		}
	}
	return data
}

// Barrier performs a linear synchronization through processor 0 (used
// only by tests; the generated code never needs explicit barriers).
func (p *Proc) Barrier() {
	if p.m.cfg.P == 1 {
		return
	}
	if p.id == 0 {
		for q := 1; q < p.m.cfg.P; q++ {
			p.Recv(q)
		}
		for q := 1; q < p.m.cfg.P; q++ {
			p.Send(q, nil)
		}
	} else {
		p.Send(0, nil)
		p.Recv(0)
	}
}

// CountRemap records a physical remap's communication volume: words
// moved by this processor, spread across up to P-1 partner messages.
func (p *Proc) CountRemap(words, partners int) {
	p.remaps++
	if partners < 1 {
		partners = 1
	}
	start := p.stats.Clock
	p.stats.Sent += int64(partners)
	p.stats.RemapMsgs += int64(partners)
	p.stats.Words += int64(words)
	p.pairs[p.id].Msgs += int64(partners)
	p.pairs[p.id].Words += int64(words)
	p.stats.Clock += float64(partners)*p.m.cfg.Latency + float64(words)*p.m.cfg.PerWord
	if p.m.tr != nil {
		p.m.tr.Emit(trace.Event{
			Kind: trace.KindRemap, Name: "remap",
			Proc: p.ctxProc, Line: p.ctxLine,
			PID: p.id, Src: p.id, Dst: p.id, Words: words,
			Start: start, Dur: p.stats.Clock - start,
			Value: int64(partners),
		})
	}
}
