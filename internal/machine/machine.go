// Package machine simulates a MIMD distributed-memory machine in the
// style of the iPSC/860 the paper evaluated on: P processors, each with
// private memory, connected by an interconnect with per-message latency
// and per-word transfer cost. Time is virtual: every processor advances
// its own clock for computation, and message receipt synchronizes the
// receiver's clock with the sender's send time plus the transfer cost.
//
// Two execution engines implement the same semantics behind the same
// API (Config.Backend selects one):
//
//   - BackendDES (the default) is a discrete-event core: node programs
//     run as coroutines under a single-threaded virtual-time scheduler
//     with a sharded event queue, pooled message payloads (the hot path
//     allocates nothing per message), and link state proportional to
//     the pairs actually communicating. It scales to P=1024 and beyond.
//   - BackendGoroutine is the original reference implementation — a
//     goroutine per processor with buffered channels as links — kept
//     selectable so the differential test suite can prove the DES core
//     equivalent on every workload.
//
// The simulation is deterministic for deterministic node programs on
// both backends, and because all cost accounting and trace emission
// live in backend-independent code, the two engines produce identical
// Stats and byte-identical sorted trace exports.
package machine

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fortd/internal/trace"
)

// Backend selects the machine's execution engine.
type Backend int

const (
	// BackendDES is the discrete-event core (the zero value, so it is
	// the default): single-threaded virtual-time scheduling, pooled
	// message buffers, O(active) link state.
	BackendDES Backend = iota
	// BackendGoroutine is the goroutine-per-processor reference
	// implementation with P² buffered channels as links. It is exact
	// but tops out around dozens of processors.
	BackendGoroutine
)

func (b Backend) String() string {
	switch b {
	case BackendDES:
		return "des"
	case BackendGoroutine:
		return "goroutine"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend parses a backend name as accepted by -backend flags.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "des", "":
		return BackendDES, nil
	case "goroutine", "chan":
		return BackendGoroutine, nil
	default:
		return 0, fmt.Errorf("unknown machine backend %q (want des or goroutine)", s)
	}
}

// backendOverride is a CI/testing hook: FORTD_MACHINE_BACKEND=goroutine
// (or =des) overrides the default backend choice, i.e. it applies when
// Config.Backend is the zero value. ci.sh uses it to run the machine
// and spmd test suites against the reference backend; tests that pin
// DES-only properties (the zero-allocation guarantee) skip when it is
// set. The variable is resolved lazily, NOT at package init: `go test`
// only records environment reads made while the test runs, so an
// init-time read would let the test cache serve results across
// different FORTD_MACHINE_BACKEND values.
func backendOverride() *Backend {
	overrideOnce.Do(func() {
		b, err := ParseBackend(os.Getenv("FORTD_MACHINE_BACKEND"))
		if err != nil || b == BackendDES {
			return
		}
		override = &b
	})
	return override
}

var (
	overrideOnce sync.Once
	override     *Backend
)

// Config sets the machine's size and cost model. Times are in
// microseconds, matching published iPSC/860 figures: ~70µs message
// startup, ~0.4µs per 8-byte word (≈2.8 MB/s), ~0.1µs per flop.
type Config struct {
	P        int
	Latency  float64 // message startup cost (α)
	PerWord  float64 // transfer cost per word (β)
	FlopCost float64 // cost of one arithmetic operation
	// Backend selects the execution engine (default BackendDES).
	Backend Backend
	// LinkDepth is each link's buffered capacity in messages
	// (0: DefaultLinkDepth). A sender that fills a link fails the run
	// with a *CongestionError naming the (src, dst) pair.
	LinkDepth int
	// Deadline bounds the run's wall-clock time (0: none). When it
	// expires the machine aborts with a *DeadlockError report marked
	// Deadline, unblocking every processor.
	Deadline time.Duration
	// NoWatchdog disables the all-blocked deadlock watchdog (it is on
	// by default; see abort.go). The Deadline still applies.
	NoWatchdog bool
}

// DefaultLinkDepth is the per-link message buffer when LinkDepth is 0:
// deep enough that generated communication patterns never fill it.
const DefaultLinkDepth = 8192

// DefaultConfig returns an iPSC/860-like machine with p processors.
func DefaultConfig(p int) Config {
	return Config{P: p, Latency: 70.0, PerWord: 0.4, FlopCost: 0.1}
}

// Stats aggregates execution statistics.
type Stats struct {
	Messages  int64   // point-to-point messages delivered
	Received  int64   // point-to-point messages consumed by a Recv
	Words     int64   // data words transferred
	Flops     int64   // arithmetic operations executed
	Remaps    int64   // physical array remappings
	Time      float64 // parallel execution time = max processor clock
	PerProc   []ProcStats
	Broadcast int64 // messages that were part of broadcast/gather ops
	// Traffic is the per-pair accounting: Traffic[src][dst] accumulates
	// every message src sent to dst. Remap traffic, which has no single
	// destination, is charged to the diagonal Traffic[p][p], so row sums
	// match each processor's Sent/Words totals.
	Traffic [][]PairStats
}

// PairStats is one src→dst link's totals.
type PairStats struct {
	Msgs  int64
	Words int64
}

// ProcStats is one processor's view.
type ProcStats struct {
	Clock    float64
	Sent     int64
	Received int64
	Words    int64
	Flops    int64
	// RemapMsgs is the subset of Sent charged by CountRemap: collective
	// partner messages that no Recv consumes. Sent - RemapMsgs is the
	// processor's point-to-point message count, which conservation
	// checks against the machine-wide Received total.
	RemapMsgs int64
	// Wait is the cumulative virtual time the processor spent blocked in
	// Recv for messages that had not yet arrived (idle time).
	Wait float64
}

func (s Stats) String() string {
	return fmt.Sprintf("time=%.1fµs msgs=%d words=%d flops=%d remaps=%d",
		s.Time, s.Messages, s.Words, s.Flops, s.Remaps)
}

// message travels between processors.
type message struct {
	data     []float64
	sendTime float64
	seq      int64   // trace message id (0 when tracing is disabled)
	delay    float64 // injected delivery delay (fault plan)
	dup      bool    // injected duplicate: the receiver discards it
}

// arrival is the receiver-clock delivery time of the message under the
// machine's cost model: send time + startup latency + per-word transfer
// + any injected delay. Both engines use this one definition, which is
// what makes receiver clocks backend-invariant.
func (m message) arrival(cfg *Config) float64 {
	return m.sendTime + cfg.Latency + float64(len(m.data))*cfg.PerWord + m.delay
}

// engine is the execution backend behind the Machine API. All cost
// accounting, statistics, tracing and fault injection live in the
// shared Proc methods; an engine only moves messages, schedules node
// programs, and parks/wakes receivers.
type engine interface {
	// start launches processor pid's node program (Machine.Go).
	start(pid int, fn func(*Proc))
	// wait blocks until every launched node program has finished
	// (Machine.Wait); it must guarantee the run terminates, turning a
	// deadlocked schedule into an abort.
	wait()
	// deliver enqueues one message on the src→dst link, reporting false
	// when the link is full (the shared caller turns that into a
	// *CongestionError). The engine owns the payload after a true
	// return; it may copy it.
	deliver(src, dst int, msg message) bool
	// receive blocks processor p until a message from from is
	// available, registering it with the watchdog accounting via
	// p.block/p.unblock and unwinding it via p.abortNow when the run is
	// aborted. The returned payload is machine-owned: it stays valid
	// until p's next Recv.
	receive(p *Proc, from int) message
	// scratch returns an n-word staging buffer for processor pid to
	// build an outgoing payload in. The DES engine reuses one buffer
	// per processor (Send copies payloads immediately); the goroutine
	// engine must allocate fresh because channels alias the slice to
	// the receiver.
	scratch(pid, n int) []float64
}

// Machine is one simulated machine instance. Create with New, obtain
// per-processor handles with Proc, run the node programs concurrently,
// then read Stats after Wait.
type Machine struct {
	cfg   Config
	depth int // resolved LinkDepth
	eng   engine
	procs []*Proc
	wg    sync.WaitGroup
	tr    *trace.Tracer // nil: tracing disabled
	fault *FaultPlan    // nil: no fault injection

	// cooperative-abort state: the first failure latches (origin,
	// cause) and closes done, unblocking every communication primitive
	done        chan struct{}
	aborted     atomic.Bool
	abortOnce   sync.Once
	abortOrigin int
	abortCause  error

	// watchdog state: per-processor blocked registrations and a global
	// progress counter bumped on every completed channel operation
	mu           sync.Mutex
	running      int // node programs launched and not yet finished
	blockedCount int
	blocked      []blockInfo
	procErrs     []error
	progress     atomic.Uint64
	watchOnce    sync.Once
	stopOnce     sync.Once
	watchStop    chan struct{}
	watchDone    chan struct{}
}

// New builds a machine.
func New(cfg Config) *Machine {
	if cfg.P < 1 {
		panic("machine: P must be >= 1")
	}
	be := cfg.Backend
	if ov := backendOverride(); be == BackendDES && ov != nil {
		be = *ov
	}
	depth := cfg.LinkDepth
	if depth <= 0 {
		depth = DefaultLinkDepth
	}
	m := &Machine{cfg: cfg,
		depth:     depth,
		done:      make(chan struct{}),
		watchStop: make(chan struct{}),
		watchDone: make(chan struct{}),
		blocked:   make([]blockInfo, cfg.P),
		procErrs:  make([]error, cfg.P),
	}
	m.procs = make([]*Proc, cfg.P)
	for p := 0; p < cfg.P; p++ {
		m.procs[p] = &Proc{m: m, id: p, pairs: make([]PairStats, cfg.P), skew: 1}
	}
	switch be {
	case BackendDES:
		m.eng = newDESEngine(m)
	case BackendGoroutine:
		m.eng = newChanEngine(m, depth)
	default:
		panic(fmt.Sprintf("machine: unknown backend %v", cfg.Backend))
	}
	return m
}

// P returns the processor count.
func (m *Machine) P() int { return m.cfg.P }

// Config returns the cost model.
func (m *Machine) Config() Config { return m.cfg }

// SetTracer attaches a tracer; every subsequent send, receive,
// broadcast step and remap emits one event. Call before Go.
func (m *Machine) SetTracer(t *trace.Tracer) { m.tr = t }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (m *Machine) Tracer() *trace.Tracer { return m.tr }

// Proc returns processor p's handle.
func (m *Machine) Proc(p int) *Proc { return m.procs[p] }

// Go runs fn as processor p's node program. If the run is aborted
// while fn is blocked in a communication primitive (or between
// computations), fn is unwound and the processor's *AbortError is
// recorded (see ProcErr); other panics propagate. Call Go from the
// goroutine that created the machine, before Wait.
func (m *Machine) Go(p int, fn func(*Proc)) {
	m.eng.start(p, fn)
}

// recordProcExit files a node program's abortPanic unwind as the
// processor's error and decrements the live count. It returns the
// panic value the caller must re-raise (nil when handled): engines
// differ in what must happen before a foreign panic may propagate.
func (m *Machine) recordProcExit(pid int, r any) (rethrow any) {
	if r != nil {
		if ap, ok := r.(abortPanic); ok {
			m.mu.Lock()
			m.procErrs[pid] = ap.err
			m.mu.Unlock()
		} else {
			rethrow = r
		}
	}
	m.mu.Lock()
	m.running--
	m.mu.Unlock()
	return rethrow
}

// Wait blocks until every node program launched with Go has finished
// and returns the run-level failure, if any: the error passed to
// Abort, a *CongestionError, or the deadlock report. A run on this
// machine cannot hang: a deadlocked schedule is detected and reported
// instead (see abort.go).
func (m *Machine) Wait() error {
	m.eng.wait()
	return m.Err()
}

// Stats collects the machine-wide statistics. Call after Wait.
func (m *Machine) Stats() Stats {
	var s Stats
	s.PerProc = make([]ProcStats, m.cfg.P)
	s.Traffic = make([][]PairStats, m.cfg.P)
	for i, p := range m.procs {
		s.PerProc[i] = p.stats
		if p.stats.Clock > s.Time {
			s.Time = p.stats.Clock
		}
		s.Messages += p.stats.Sent
		s.Received += p.stats.Received
		s.Words += p.stats.Words
		s.Flops += p.stats.Flops
		// a physical remap is a collective operation: every processor
		// participates once, so the count is the per-processor maximum
		if p.remaps > s.Remaps {
			s.Remaps = p.remaps
		}
		s.Broadcast += p.bcast
		s.Traffic[i] = append([]PairStats(nil), p.pairs...)
	}
	return s
}

// Proc is one simulated processor.
type Proc struct {
	m      *Machine
	id     int
	stats  ProcStats
	remaps int64
	bcast  int64
	// pairs[dst] accumulates this processor's traffic per destination
	// (remap traffic lands on pairs[id]). Written only by this
	// processor's goroutine; snapshotted by Stats after Wait.
	pairs []PairStats
	// trace attribution context, set by the interpreter before each
	// communication statement: the owning procedure, source line and
	// operation kind. Written only by this processor's goroutine; the
	// watchdog reads a copy taken under the machine lock (blockInfo).
	ctxProc string
	ctxLine int
	ctxOp   string
	// fault-injection state (see fault.go): the per-sender random
	// stream, the straggler flop-cost multiplier, duplicates injected.
	frng  faultRand
	skew  float64
	fdups int
	// seqCtr counts this processor's traced sends; message sequence ids
	// are derived from (id, seqCtr) so they depend only on each sender's
	// program order, never on goroutine scheduling — a deterministic run
	// exports byte-identical traces.
	seqCtr int64
}

// faultRand is the per-sender random stream (nil: no plan attached).
type faultRand interface{ Float64() float64 }

// SetContext records the source attribution (procedure, line,
// operation) carried by every trace event this processor emits until
// the next call, and by its entry in a deadlock report.
func (p *Proc) SetContext(proc string, line int, op string) {
	p.ctxProc, p.ctxLine, p.ctxOp = proc, line, op
}

// op returns the operation label for emitted events ("send" when the
// interpreter never set a context, e.g. hand-driven machine tests).
func (p *Proc) op() string {
	if p.ctxOp == "" {
		return "send"
	}
	return p.ctxOp
}

// ID returns the processor number in [0, P).
func (p *Proc) ID() int { return p.id }

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() float64 { return p.stats.Clock }

// Compute advances the clock by n arithmetic operations (scaled by the
// fault plan's straggler skew, if any). It is also a cancellation
// point: an aborted run unwinds compute-bound node programs here.
func (p *Proc) Compute(n int) {
	if p.m.aborted.Load() {
		p.abortNow("compute", -1)
	}
	p.stats.Flops += int64(n)
	p.stats.Clock += float64(n) * p.m.cfg.FlopCost * p.skew
}

// Tick advances the clock by an explicit cost.
func (p *Proc) Tick(cost float64) {
	if p.m.aborted.Load() {
		p.abortNow("compute", -1)
	}
	p.stats.Clock += cost
}

// Scratch returns an n-word staging buffer for building an outgoing
// payload (Send/Broadcast argument). The buffer's contents are only
// guaranteed until the processor's next Scratch call, so build one
// payload at a time. On the DES backend this is a per-processor reused
// buffer (no allocation in steady state); on the goroutine backend it
// is a fresh allocation, because channel delivery aliases the slice to
// the receiver.
func (p *Proc) Scratch(n int) []float64 {
	return p.m.eng.scratch(p.id, n)
}

// Send transmits data to processor to. The sender is charged the
// message startup; delivery time is carried on the message. Send never
// blocks: a full link fails the run with a *CongestionError naming the
// congested pair, and an aborted run unwinds the sender with an
// *AbortError. The machine owns data after Send returns on the DES
// backend (it copies), and the receiver aliases it on the goroutine
// backend — build payloads with Scratch and neither case can bite.
func (p *Proc) Send(to int, data []float64) {
	if to == p.id {
		// local move: no message
		return
	}
	if p.m.aborted.Load() {
		p.abortNow("send", to)
	}
	start := p.stats.Clock
	p.stats.Clock += p.m.cfg.Latency
	p.stats.Sent++
	p.stats.Words += int64(len(data))
	p.pairs[to].Msgs++
	p.pairs[to].Words += int64(len(data))
	var seq int64
	if p.m.tr != nil {
		p.seqCtr++
		seq = int64(p.id)<<32 | p.seqCtr
		p.m.tr.Emit(trace.Event{
			Kind: trace.KindSend, Name: p.op(),
			Proc: p.ctxProc, Line: p.ctxLine,
			PID: p.id, Src: p.id, Dst: to, Words: len(data),
			Start: start, Dur: p.stats.Clock - start, Seq: seq,
		})
	}
	msg := message{data: data, sendTime: p.stats.Clock, seq: seq}
	delay, dup := p.injectSendFaults(to, len(data), seq)
	msg.delay = delay
	p.deliver(to, msg)
	if dup {
		d := msg
		d.dup = true
		p.deliver(to, d)
	}
}

// deliver enqueues one message, failing the run on a full link.
func (p *Proc) deliver(to int, msg message) {
	if p.m.eng.deliver(p.id, to, msg) {
		p.m.progress.Add(1)
		return
	}
	err := &CongestionError{
		Src: p.id, Dst: to, Depth: p.m.depth,
		Proc: p.ctxProc, Line: p.ctxLine, Clock: p.stats.Clock,
	}
	p.m.Abort(p.id, err)
	panic(abortPanic{err})
}

// Recv blocks until a message from processor from arrives, advancing
// the clock to the delivery time. It unblocks with an *AbortError when
// the run is aborted (a peer failed, deadlock was detected, or the
// deadline expired) instead of hanging forever on a mismatched
// schedule. Injected duplicate messages are detected and discarded,
// charging only the delivery stall.
//
// The returned slice is machine-owned and stays valid until this
// processor's next Recv (the DES backend then recycles the buffer);
// copy out anything needed longer.
func (p *Proc) Recv(from int) []float64 {
	if from == p.id {
		return nil
	}
	return p.recvAs(from, trace.KindRecv)
}

// recvAs is the shared receive loop behind Recv (KindRecv) and
// WaitHandle (KindWait): engine receive with duplicate-drop, arrival
// accounting against the single message.arrival definition, and one
// trace event of the given kind. Keeping blocking and split-phase
// receives on one code path is what makes their clocks — and therefore
// the two backends' trace exports — identical by construction.
func (p *Proc) recvAs(from int, kind trace.Kind) []float64 {
	for {
		msg := p.m.eng.receive(p, from)
		if msg.dup {
			p.dropDuplicate(from, msg)
			continue
		}
		start := p.stats.Clock
		arrival := msg.arrival(&p.m.cfg)
		if arrival > p.stats.Clock {
			p.stats.Wait += arrival - p.stats.Clock
			p.stats.Clock = arrival
		}
		p.stats.Received++
		if p.m.tr != nil {
			p.m.tr.Emit(trace.Event{
				Kind: kind, Name: p.op(),
				Proc: p.ctxProc, Line: p.ctxLine,
				PID: p.id, Src: from, Dst: p.id, Words: len(msg.data),
				Start: start, Dur: p.stats.Clock - start, Seq: msg.seq,
			})
		}
		return msg.data
	}
}

// Broadcast distributes data from root to every processor. All
// processors must call it. It returns the data (the root's own copy on
// the root). The implementation is a binomial tree, the pattern the
// iPSC hypercube's library broadcast used: log₂(P) message steps on
// the critical path.
func (p *Proc) Broadcast(root int, data []float64) []float64 {
	np := p.m.cfg.P
	rel := (p.id - root + np) % np
	received := p.id == root
	for k := 1; k < np; k <<= 1 {
		if rel >= k && rel < 2*k {
			data = p.Recv((root + rel - k) % np)
			received = true
			continue
		}
		if rel < k && received && rel+k < np {
			p.Send((root+rel+k)%np, data)
			p.bcast++
		}
	}
	return data
}

// Barrier performs a linear synchronization through processor 0 (used
// only by tests; the generated code never needs explicit barriers).
func (p *Proc) Barrier() {
	if p.m.cfg.P == 1 {
		return
	}
	if p.id == 0 {
		for q := 1; q < p.m.cfg.P; q++ {
			p.Recv(q)
		}
		for q := 1; q < p.m.cfg.P; q++ {
			p.Send(q, nil)
		}
	} else {
		p.Send(0, nil)
		p.Recv(0)
	}
}

// CountRemap records a physical remap's communication volume: words
// moved by this processor, spread across up to P-1 partner messages.
func (p *Proc) CountRemap(words, partners int) {
	p.remaps++
	if partners < 1 {
		partners = 1
	}
	start := p.stats.Clock
	p.stats.Sent += int64(partners)
	p.stats.RemapMsgs += int64(partners)
	p.stats.Words += int64(words)
	p.pairs[p.id].Msgs += int64(partners)
	p.pairs[p.id].Words += int64(words)
	p.stats.Clock += float64(partners)*p.m.cfg.Latency + float64(words)*p.m.cfg.PerWord
	if p.m.tr != nil {
		p.m.tr.Emit(trace.Event{
			Kind: trace.KindRemap, Name: "remap",
			Proc: p.ctxProc, Line: p.ctxLine,
			PID: p.id, Src: p.id, Dst: p.id, Words: words,
			Start: start, Dur: p.stats.Clock - start,
			Value: int64(partners),
		})
	}
}
