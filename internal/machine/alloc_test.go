package machine

import (
	"testing"
)

// skipIfNotDES skips DES-only assertions when the FORTD_MACHINE_BACKEND
// override is forcing these tests onto the reference backend (ci.sh's
// second lane): the goroutine engine makes no allocation promises.
func skipIfNotDES(t testing.TB) {
	if ov := backendOverride(); ov != nil && *ov != BackendDES {
		t.Skip("FORTD_MACHINE_BACKEND forces a non-DES backend")
	}
}

// pingPong runs n round trips of a w-word payload between two
// processors on a fresh machine and returns the machine for
// inspection. Payloads are staged through Scratch, the way the SPMD
// interpreter stages generated sends.
func pingPong(tb testing.TB, cfg Config, n, w int) *Machine {
	m := New(cfg)
	m.Go(0, func(p *Proc) {
		for i := 0; i < n; i++ {
			buf := p.Scratch(w)
			for j := range buf {
				buf[j] = float64(i + j)
			}
			p.Send(1, buf)
			p.Recv(1)
		}
	})
	m.Go(1, func(p *Proc) {
		for i := 0; i < n; i++ {
			data := p.Recv(0)
			buf := p.Scratch(w)
			copy(buf, data)
			p.Send(0, buf)
		}
	})
	if err := m.Wait(); err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkMachineMessage measures the DES backend's per-message cost
// over a two-processor ping-pong. The headline number is allocs/op:
// with pooled payloads, reused rings, and steady-state heaps it must
// report 0 — the setup allocations (goroutines, first ring, pool
// high-water) amortize away over b.N messages.
func BenchmarkMachineMessage(b *testing.B) {
	skipIfNotDES(b)
	b.ReportAllocs()
	m := New(Config{P: 2, Latency: 70, PerWord: 0.4, FlopCost: 0.1})
	n := b.N/2 + 1 // two messages per round trip
	m.Go(0, func(p *Proc) {
		for i := 0; i < n; i++ {
			buf := p.Scratch(64)
			buf[0] = float64(i)
			p.Send(1, buf)
			p.Recv(1)
		}
	})
	m.Go(1, func(p *Proc) {
		for i := 0; i < n; i++ {
			data := p.Recv(0)
			p.Send(0, data[:64])
		}
	})
	b.ResetTimer()
	if err := m.Wait(); err != nil {
		b.Fatal(err)
	}
}

// TestDESMessageAllocationFree pins the tentpole's allocation contract
// as a test (the benchmark only reports): a whole 2000-round-trip run
// — 4000 messages — must cost no more than a fixed setup budget of
// allocations, i.e. amortized zero per message.
func TestDESMessageAllocationFree(t *testing.T) {
	skipIfNotDES(t)
	const rounds = 2000
	avg := testing.AllocsPerRun(3, func() {
		pingPong(t, Config{P: 2, Latency: 70, PerWord: 0.4, FlopCost: 0.1}, rounds, 64)
	})
	// machine construction + two goroutines + first-touch rings, pool
	// and heap growth stay under ~100 allocations; 4000 messages that
	// each allocated anything would blow far past the bound
	if avg > 150 {
		t.Errorf("run of %d round trips cost %.0f allocs, want amortized-zero per message (<=150 total)", rounds, avg)
	}
}

// TestDESPayloadIsolation guards the pooling contract that makes the
// zero-alloc path safe: a received payload stays intact until the
// receiver's next Recv, even while the sender immediately rebuilds its
// scratch buffer and more traffic flows through the pool.
func TestDESPayloadIsolation(t *testing.T) {
	skipIfNotDES(t)
	m := New(Config{P: 3, Latency: 1, PerWord: 0, FlopCost: 1})
	var got [2][]float64
	m.Go(0, func(p *Proc) {
		for i := 0; i < 2; i++ {
			buf := p.Scratch(4)
			for j := range buf {
				buf[j] = float64(10*i + j)
			}
			p.Send(1, buf)
			// immediately clobber the scratch buffer: the machine must
			// have copied the payload on delivery
			junk := p.Scratch(4)
			for j := range junk {
				junk[j] = -1
			}
			p.Send(2, junk)
		}
	})
	m.Go(1, func(p *Proc) {
		first := p.Recv(0)
		snapshot := append([]float64(nil), first...)
		second := p.Recv(0) // recycles first's buffer
		got[0] = snapshot
		got[1] = append([]float64(nil), second...)
	})
	m.Go(2, func(p *Proc) {
		p.Recv(0)
		p.Recv(0)
	})
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	want := [2][]float64{{0, 1, 2, 3}, {10, 11, 12, 13}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("message %d = %v, want %v (payload corrupted by pooling)", i, got[i], want[i])
			}
		}
	}
}
