// The discrete-event engine (BackendDES): node programs run as
// coroutines under a single-threaded virtual-time scheduler.
//
// Scheduling protocol. Exactly one node program runs at a time: the
// scheduler (executing inside Machine.Wait) resumes a processor by
// sending on its resume channel, then blocks reading the yield channel
// until that processor either parks in receive or finishes. This strict
// handoff means every field of desEngine — rings, pool, waiter table,
// scratch buffers, the event queue — is accessed by one goroutine at a
// time with happens-before edges through the channels, so none of it
// needs locks. A processor runs until it blocks: Send never blocks
// (congestion is a failure), so the only yield points are Recv on an
// empty ring and program exit.
//
// Virtual time. The event queue orders processor resumptions by
// (time, seq, pid). A processor blocked in Recv is woken by an event at
// the message's arrival time; because each processor's clock only moves
// forward and all cost math lives in shared Proc code, the order in
// which independent processors run cannot change any clock, stat, or
// trace event — which is why this engine is trace-equivalent to the
// goroutine backend (the differential suite pins it).
//
// Link state is O(active): a receiver's inbox is a lazily-allocated
// map from sender pid to a growable message ring, so only pairs that
// actually communicate cost anything — versus the reference backend's
// eager P² × LinkDepth channel slots.
//
// Payload pooling. deliver copies the payload into a buffer from a
// power-of-two size-class free list; Recv hands that buffer to the node
// program and recycles it on the processor's next Recv. In steady state
// (rings, heaps and pool at high-water mark) a message moves through
// the machine with zero allocations — BenchmarkMachineMessage pins it.
//
// Deadlock is structural here, not sampled: when the event queue runs
// dry while live processors remain, every one of them is provably
// blocked on a link that can never fire, and the engine aborts with the
// same *DeadlockError report the watchdog builds (same BlockedProc
// attribution, Deadline=false). A wall-clock Config.Deadline is honored
// with a timer because a DES can also livelock in real time (e.g. an
// infinite Compute loop advancing virtual time forever).
package machine

import (
	"math/bits"
	"time"
)

// msgRing is one src→dst link's queue: a growable circular buffer.
// Steady-state push/pop allocate nothing.
type msgRing struct {
	buf  []message
	head int
	n    int
}

func (r *msgRing) push(m message) {
	if r.n == len(r.buf) {
		grown := make([]message, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = m
	r.n++
}

func (r *msgRing) pop() message {
	m := r.buf[r.head]
	r.buf[r.head] = message{} // drop the payload reference
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return m
}

// bufPool recycles message payloads by power-of-two size class. All
// buffers it hands out have power-of-two capacity, so class lookup is
// a bit scan. Zero-word payloads are represented as nil and never
// pooled, preserving the existing zero-word message semantics.
type bufPool struct {
	classes [33][][]float64
}

func (bp *bufPool) get(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := bits.Len(uint(n - 1)) // smallest c with 1<<c >= n
	if s := bp.classes[c]; len(s) > 0 {
		buf := s[len(s)-1]
		bp.classes[c] = s[:len(s)-1]
		return buf[:n]
	}
	return make([]float64, n, 1<<c)
}

func (bp *bufPool) put(b []float64) {
	if cap(b) == 0 {
		return
	}
	c := bits.Len(uint(cap(b))) - 1 // exact for the pool's own buffers
	bp.classes[c] = append(bp.classes[c], b[:0])
}

type desEngine struct {
	m   *Machine
	q   eventQueue
	seq uint64 // event creation order (the queue's tie-break)

	// coroutine handoff: resume[pid] wakes one parked processor; yield
	// carries the pid back to the scheduler when it parks or finishes.
	resume   []chan struct{}
	yield    chan int
	parked   []bool // blocked in receive, waiting for resume
	finished []bool
	live     int // started and not yet finished

	// inbox[dst][src] is the src→dst ring, allocated on first use.
	// waiter[dst] is the sender pid dst is parked on with no wakeup
	// event scheduled yet (-1 otherwise); deliver clears it when it
	// schedules the wakeup.
	inbox  []map[int]*msgRing
	waiter []int

	// payload recycling: held[pid] is the buffer handed out by pid's
	// last Recv, returned to the pool on its next one.
	pool        bufPool
	held        [][]float64
	scratchBufs [][]float64

	wallStart time.Time
	timer     *time.Timer // wall-clock Deadline (nil: none)
}

func newDESEngine(m *Machine) *desEngine {
	p := m.cfg.P
	e := &desEngine{
		m:           m,
		resume:      make([]chan struct{}, p),
		yield:       make(chan int),
		parked:      make([]bool, p),
		finished:    make([]bool, p),
		inbox:       make([]map[int]*msgRing, p),
		waiter:      make([]int, p),
		held:        make([][]float64, p),
		scratchBufs: make([][]float64, p),
	}
	for i := range e.resume {
		e.resume[i] = make(chan struct{})
		e.waiter[i] = -1
	}
	e.q.initShards(desShardCount(p))
	return e
}

// push schedules processor pid to resume at virtual time t.
func (e *desEngine) push(t float64, pid int) {
	e.seq++
	e.q.push(event{time: t, seq: e.seq, pid: pid})
}

func (e *desEngine) start(pid int, fn func(*Proc)) {
	m := e.m
	if e.live == 0 && e.wallStart.IsZero() {
		e.wallStart = time.Now()
		if m.cfg.Deadline > 0 {
			e.timer = time.AfterFunc(m.cfg.Deadline, func() {
				m.Abort(-1, m.deadlockReport(true, time.Since(e.wallStart)))
			})
		}
	}
	m.wg.Add(1)
	m.mu.Lock()
	m.running++
	m.mu.Unlock()
	e.live++
	e.push(0, pid) // start event: node programs launch in Go-call order
	go func() {
		defer m.wg.Done()
		<-e.resume[pid] // park until the scheduler dispatches the start event
		defer func() {
			// hand control back to the scheduler before re-raising any
			// foreign panic, or the whole machine would deadlock inside
			// Wait and mask the real failure
			r := m.recordProcExit(pid, recover())
			e.finished[pid] = true
			e.yield <- pid
			if r != nil {
				panic(r)
			}
		}()
		fn(m.procs[pid])
	}()
}

func (e *desEngine) wait() {
	e.run()
	e.m.wg.Wait()
	if e.timer != nil {
		e.timer.Stop()
	}
}

// run is the scheduler loop. It terminates for every schedule: either
// all processors finish, or the queue runs dry with live processors
// (structural deadlock → abort → drain), or an abort arrives from
// outside (the deadline timer, a node program's Machine.Abort, a
// context watcher) and the drain unwinds everything parked or pending.
func (e *desEngine) run() {
	m := e.m
	for e.live > 0 {
		if m.aborted.Load() {
			e.drainAfterAbort()
			return
		}
		ev, ok := e.q.pop()
		if !ok {
			// No runnable processor and no pending arrival: every live
			// processor is parked on a link that can never fire. This is
			// the structural analogue of the goroutine backend's sampled
			// all-blocked detection, and it builds the same report. With
			// NoWatchdog and a Deadline, defer to the deadline (or an
			// external Abort) instead of reporting immediately; with
			// NoWatchdog and no Deadline the reference backend would hang
			// forever — this engine reports the deadlock anyway.
			if m.cfg.NoWatchdog && m.cfg.Deadline > 0 {
				<-m.done
				continue
			}
			m.Abort(-1, m.deadlockReport(false, time.Since(e.wallStart)))
			continue
		}
		if e.finished[ev.pid] {
			continue
		}
		e.resumeProc(ev.pid)
	}
}

// drainAfterAbort runs the machine down after an abort: every parked
// processor is woken (it observes the abort and unwinds via abortNow),
// and remaining queue events — including start events of programs that
// never ran — are still dispatched, because on the reference backend
// every goroutine keeps running after an abort until it hits a
// cancellation point (or finishes without one).
func (e *desEngine) drainAfterAbort() {
	for e.live > 0 {
		for pid := range e.parked {
			if e.parked[pid] && !e.finished[pid] {
				e.resumeProc(pid)
			}
		}
		if e.live == 0 {
			return
		}
		ev, ok := e.q.pop()
		if !ok {
			// unreachable: a live processor is either parked (woken
			// above) or has its start/wakeup event still queued
			panic("machine: des drain stuck with live processors")
		}
		if !e.finished[ev.pid] && !e.parked[ev.pid] {
			e.resumeProc(ev.pid)
		}
	}
}

// resumeProc wakes one parked processor and blocks until it parks
// again or finishes.
func (e *desEngine) resumeProc(pid int) {
	e.resume[pid] <- struct{}{}
	p := <-e.yield
	if e.finished[p] {
		e.live--
	}
}

// ring returns the src→dst ring, allocating it on first use.
func (e *desEngine) ring(src, dst int) *msgRing {
	box := e.inbox[dst]
	if box == nil {
		box = make(map[int]*msgRing, 4)
		e.inbox[dst] = box
	}
	r := box[src]
	if r == nil {
		r = &msgRing{}
		box[src] = r
	}
	return r
}

func (e *desEngine) deliver(src, dst int, msg message) bool {
	r := e.ring(src, dst)
	if r.n >= e.m.depth {
		return false
	}
	// copy the payload into a pooled, machine-owned buffer: the sender
	// keeps its slice (it may be a reused Scratch buffer), and each
	// injected duplicate gets its own copy so recycling stays single-owner
	buf := e.pool.get(len(msg.data))
	copy(buf, msg.data)
	msg.data = buf
	r.push(msg)
	if e.waiter[dst] == src {
		// the receiver is parked on exactly this link: schedule its
		// resumption at the message's arrival time, and clear the waiter
		// entry so a second send can't schedule a duplicate wakeup
		e.waiter[dst] = -1
		e.push(msg.arrival(&e.m.cfg), dst)
	}
	return true
}

func (e *desEngine) receive(p *Proc, from int) message {
	if p.m.aborted.Load() {
		p.abortNow("recv", from)
	}
	r := e.ring(from, p.id)
	if r.n == 0 {
		p.block("recv", from)
		e.waiter[p.id] = from
		e.parked[p.id] = true
		e.yield <- p.id  // park: hand control to the scheduler
		<-e.resume[p.id] // woken: a message arrived, or the run aborted
		e.parked[p.id] = false
		e.waiter[p.id] = -1
		p.unblock()
		if p.m.aborted.Load() {
			p.abortNow("recv", from)
		}
	} else {
		p.m.progress.Add(1)
	}
	return e.take(p.id, r)
}

// take pops the head message and settles payload ownership: a real
// message's buffer is held for the processor until its next Recv; an
// injected duplicate's buffer goes straight back to the pool (the
// caller only reads its length, and no other processor can touch the
// pool before this one yields).
func (e *desEngine) take(pid int, r *msgRing) message {
	msg := r.pop()
	if msg.dup {
		e.pool.put(msg.data)
	} else if msg.data != nil {
		e.pool.put(e.held[pid])
		e.held[pid] = msg.data
	}
	return msg
}

// scratch reuses one grow-only buffer per processor: deliver copies
// payloads out immediately, so the node program is free to rebuild it
// for the next send.
func (e *desEngine) scratch(pid, n int) []float64 {
	if cap(e.scratchBufs[pid]) < n {
		e.scratchBufs[pid] = make([]float64, n)
	}
	return e.scratchBufs[pid][:n]
}
