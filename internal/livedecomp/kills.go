package livedecomp

import (
	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/comm"
	"fortd/internal/rsd"
)

// KillsArray implements the array-kill test of §6.3 using the
// interprocedural section summaries: a call kills the caller-space
// array when the callee (or its descendants) writes a section covering
// the entire array and never reads it. Such an array's values are dead
// across the call, so a pending remap may be performed in place.
func KillsArray(site *acg.CallSite, callerArray string, sections map[string]*comm.SectionSummary) bool {
	if site == nil {
		return false
	}
	sum := sections[site.Callee.Name()]
	if sum == nil {
		return false
	}
	// map the caller array back to the callee-side name
	calleeName := ""
	for _, b := range site.Bindings {
		if b.ActualName == callerArray {
			calleeName = b.Formal
			break
		}
	}
	if calleeName == "" {
		if s := site.Callee.Proc.Symbols.Lookup(callerArray); s != nil && s.Common != "" {
			calleeName = callerArray
		}
	}
	if calleeName == "" {
		return false
	}
	if len(sum.Reads[calleeName]) > 0 {
		return false
	}
	writes := sum.Writes[calleeName]
	if len(writes) == 0 {
		return false
	}
	sym := site.Callee.Proc.Symbols.Lookup(calleeName)
	if sym == nil || sym.Kind != ast.SymArray {
		return false
	}
	full := declaredSection(site.Callee.Proc, sym)
	if full == nil {
		return false
	}
	for _, w := range writes {
		if rsd.Contains(w, full) {
			return true
		}
	}
	return false
}

func declaredSection(proc *ast.Procedure, sym *ast.Symbol) *rsd.Section {
	env := comm.ConstEnv(proc)
	dims := make([]rsd.Dim, len(sym.Dims))
	for i, d := range sym.Dims {
		lo, okLo := ast.EvalInt(d.Lo, env)
		hi, okHi := ast.EvalInt(d.Hi, env)
		if !okLo || !okHi {
			return nil
		}
		dims[i] = rsd.Range(lo, hi)
	}
	return &rsd.Section{Array: sym.Name, Dims: dims}
}
