package livedecomp

import (
	"testing"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/comm"
	"fortd/internal/decomp"
	"fortd/internal/parser"
	"fortd/internal/rsd"
)

// fig15Src is the paper's Figure 15 program: X is block-distributed in
// P1, cyclically redistributed inside F1 (called twice per iteration of
// the k loop), and fully overwritten by F2 after the loop.
const fig15Src = `
      PROGRAM P1
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      do k = 1,10
S1      call F1(X)
S2      call F1(X)
      enddo
      call F2(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      DISTRIBUTE X(CYCLIC)
      do i = 1,100
        y = X(i)
      enddo
      END
      SUBROUTINE F2(X)
      REAL X(100)
      do i = 1,100
S3      X(i) = 1.0
      enddo
      END
`

// buildFig15 compiles the callee summaries bottom-up (reverse
// topological order) and returns what Analyze needs for P1.
func buildFig15(t *testing.T, level Level) (*Placement, *Summary, map[string]*Summary, *ast.Program) {
	t.Helper()
	prog, err := parser.Parse(fig15Src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	sections := comm.ComputeSections(g)
	killTest := func(site *acg.CallSite, callerArray string) bool {
		return KillsArray(site, callerArray, sections)
	}
	summaries := map[string]*Summary{}
	var mainPlace *Placement
	var mainSum *Summary
	for _, n := range g.ReverseTopoOrder() {
		entry := map[string]decomp.Decomp{}
		if !n.Proc.IsMain {
			// both F1 and F2 inherit BLOCK from P1
			entry["X"] = decomp.NewDecomp(decomp.Block)
		}
		place, sum := Analyze(n.Proc, n, entry, summaries, killTest, level)
		summaries[n.Name()] = sum
		if n.Proc.IsMain {
			mainPlace, mainSum = place, sum
		}
	}
	return mainPlace, mainSum, summaries, prog
}

// TestFigure15Summaries checks the interprocedural sets of §6.1:
// DecompUse(F1)=∅, DecompKill(F1)={X}, DecompBefore(F1)={⟨cyclic,X⟩},
// DecompAfter(F1)={⟨block,X⟩}; DecompUse(F2)={X} and the rest empty.
func TestFigure15Summaries(t *testing.T) {
	_, _, sums, _ := buildFig15(t, OptNone)
	f1 := sums["F1"]
	if len(f1.Use) != 0 {
		t.Errorf("DecompUse(F1) = %v, want empty", f1.Use)
	}
	if !f1.Kill["X"] {
		t.Errorf("DecompKill(F1) = %v, want {X}", f1.Kill)
	}
	if d, ok := f1.Before["X"]; !ok || d.Key() != "(CYCLIC)" {
		t.Errorf("DecompBefore(F1) = %v", f1.Before)
	}
	if d, ok := f1.After["X"]; !ok || d.Key() != "(BLOCK)" {
		t.Errorf("DecompAfter(F1) = %v", f1.After)
	}
	f2 := sums["F2"]
	if !f2.Use["X"] {
		t.Errorf("DecompUse(F2) = %v, want {X}", f2.Use)
	}
	if f2.Kill["X"] || len(f2.Before) != 0 || len(f2.After) != 0 {
		t.Errorf("F2 summary = %+v", f2)
	}
}

// runtimeRemaps counts how many remap operations execute at run time,
// assuming the k loop runs T iterations: ops anchored to statements
// inside the loop count T times, loop-hoisted and post-loop ops once.
func runtimeRemaps(p *Placement, prog *ast.Program, T int, physicalOnly bool) int {
	// locate the loop statement set of P1's k loop
	inLoop := map[ast.Stmt]bool{}
	main := prog.Main()
	for _, s := range main.Body {
		if do, ok := s.(*ast.Do); ok && do.Var == "k" {
			ast.WalkStmts(do.Body, func(st ast.Stmt) bool {
				inLoop[st] = true
				return true
			})
		}
	}
	count := func(ops []*Op, times int) int {
		n := 0
		for _, op := range ops {
			if physicalOnly && op.InPlace {
				continue
			}
			n += times
		}
		return n
	}
	total := 0
	for s, ops := range p.BeforeStmt {
		times := 1
		if inLoop[s] {
			times = T
		}
		total += count(ops, times)
	}
	for s, ops := range p.AfterStmt {
		times := 1
		if inLoop[s] {
			times = T
		}
		total += count(ops, times)
	}
	for _, ops := range p.BeforeLoop {
		total += count(ops, 1)
	}
	for _, ops := range p.AfterLoop {
		total += count(ops, 1)
	}
	return total
}

// TestFigure16Ladder reproduces the remap-count ladder of Figure 16:
// 4T (no optimization) → 2T (live decompositions) → 2 (loop-invariant
// hoisting) → 1 physical remap (array kills), for T loop iterations.
func TestFigure16Ladder(t *testing.T) {
	const T = 10
	cases := []struct {
		level    Level
		want     int
		physOnly bool
	}{
		{OptNone, 4 * T, false},
		{OptLive, 2 * T, false},
		{OptHoist, 2, false},
		{OptKills, 1, true},
	}
	for _, c := range cases {
		place, _, _, prog := buildFig15(t, c.level)
		got := runtimeRemaps(place, prog, T, c.physOnly)
		if got != c.want {
			t.Errorf("level %s: %d runtime remaps, want %d", c.level, got, c.want)
		}
	}
}

// TestKillsArrayDetection: F2 fully overwrites X without reading it;
// F1 reads it.
func TestKillsArrayDetection(t *testing.T) {
	prog, err := parser.Parse(fig15Src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	sections := comm.ComputeSections(g)
	var f1Site, f2Site *acg.CallSite
	for _, s := range g.Sites {
		switch s.Callee.Name() {
		case "F1":
			f1Site = s
		case "F2":
			f2Site = s
		}
	}
	if !KillsArray(f2Site, "X", sections) {
		t.Error("F2 must kill X")
	}
	if KillsArray(f1Site, "X", sections) {
		t.Error("F1 must not kill X (it reads X)")
	}
}

// TestNoDynamicDecompNoRemaps: a static program needs no remap calls.
func TestNoDynamicDecompNoRemaps(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(100)
      DISTRIBUTE X(BLOCK)
      do i = 1,100
        X(i) = 0.0
      enddo
      call S(X)
      END
      SUBROUTINE S(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) + 1.0
      enddo
      END
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	summaries := map[string]*Summary{}
	for _, n := range g.ReverseTopoOrder() {
		entry := map[string]decomp.Decomp{}
		if !n.Proc.IsMain {
			entry["X"] = decomp.NewDecomp(decomp.Block)
		}
		place, sum := Analyze(n.Proc, n, entry, summaries, nil, OptKills)
		summaries[n.Name()] = sum
		if place.Count() != 0 {
			t.Errorf("%s: %d remaps in static program", n.Name(), place.Count())
		}
	}
	if !summaries["S"].Use["X"] {
		t.Errorf("DecompUse(S) = %v", summaries["S"].Use)
	}
	if len(summaries["S"].Kill) != 0 {
		t.Errorf("DecompKill(S) = %v", summaries["S"].Kill)
	}
}

// TestConditionalRemapNotOptimized: remaps under IF are kept verbatim.
func TestConditionalRemapNotOptimized(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(100)
      DISTRIBUTE X(BLOCK)
      do i = 1,100
        X(i) = 0.0
      enddo
      if (n .gt. 5) then
        DISTRIBUTE X(CYCLIC)
      endif
      do i = 1,100
        X(i) = X(i) + 1.0
      enddo
      END
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Nodes["P"]
	place, _ := Analyze(n.Proc, n, nil, map[string]*Summary{}, nil, OptKills)
	if place.Count() != 1 {
		t.Errorf("conditional remap count = %d, want 1", place.Count())
	}
	for _, op := range place.Ops() {
		if op.InPlace {
			t.Error("conditional remap must not be optimized in place")
		}
	}
}

// KillsArray is exercised above; keep the rsd import honest.
var _ = rsd.Range

// TestNestedLoopHoisting: remaps invariant across a two-deep nest hoist
// out of the inner loop first, then the outer one.
func TestNestedLoopHoisting(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      do t = 1,4
        do k = 1,5
          call F1(X)
        enddo
      enddo
      call F2(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      DISTRIBUTE X(CYCLIC)
      do i = 1,100
        y = y + X(i)
      enddo
      END
      SUBROUTINE F2(X)
      REAL X(100)
      do i = 1,100
        X(i) = 1.0
      enddo
      END
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	sections := comm.ComputeSections(g)
	killTest := func(site *acg.CallSite, arr string) bool {
		return KillsArray(site, arr, sections)
	}
	summaries := map[string]*Summary{}
	var place *Placement
	for _, n := range g.ReverseTopoOrder() {
		entry := map[string]decomp.Decomp{}
		if !n.Proc.IsMain {
			entry["X"] = decomp.NewDecomp(decomp.Block)
		}
		pl, sum := Analyze(n.Proc, n, entry, summaries, killTest, OptKills)
		summaries[n.Name()] = sum
		if n.Proc.IsMain {
			place = pl
		}
	}
	// fully hoisted: one to-cyclic before the loops, one in-place
	// restore after — nothing anchored to statements inside the nest
	if len(place.BeforeStmt) != 0 || len(place.AfterStmt) != 0 {
		t.Errorf("remaps left inside the nest: before=%v after=%v",
			place.BeforeStmt, place.AfterStmt)
	}
	total := place.Count()
	if total != 2 {
		t.Errorf("total remaps = %d, want 2 (hoisted pair)", total)
	}
}

// TestSummaryPassesThroughWrapper: a wrapper procedure that only calls
// F1 exposes F1's remapping needs to its own callers.
func TestSummaryPassesThroughWrapper(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      call WRAP(X)
      do i = 1,100
        y = y + X(i)
      enddo
      END
      SUBROUTINE WRAP(X)
      REAL X(100)
      call F1(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      DISTRIBUTE X(CYCLIC)
      do i = 1,100
        y = y + X(i)
      enddo
      END
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	summaries := map[string]*Summary{}
	for _, n := range g.ReverseTopoOrder() {
		entry := map[string]decomp.Decomp{}
		if !n.Proc.IsMain {
			entry["X"] = decomp.NewDecomp(decomp.Block)
		}
		_, sum := Analyze(n.Proc, n, entry, summaries, nil, OptKills)
		summaries[n.Name()] = sum
	}
	w := summaries["WRAP"]
	if d, ok := w.Before["X"]; !ok || d.Key() != "(CYCLIC)" {
		t.Errorf("DecompBefore(WRAP) = %v, want cyclic for X", w.Before)
	}
	if d, ok := w.After["X"]; !ok || d.Key() != "(BLOCK)" {
		t.Errorf("DecompAfter(WRAP) = %v", w.After)
	}
	if !w.Kill["X"] {
		t.Errorf("DecompKill(WRAP) = %v", w.Kill)
	}
}
