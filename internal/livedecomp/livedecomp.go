// Package livedecomp optimizes dynamic data decomposition (§6):
// placement of calls to the array-remapping library routines when
// executable ALIGN/DISTRIBUTE statements change decompositions at run
// time. It implements the full optimization ladder of Figure 16:
//
//	OptNone  — naive placement: remap before and after every call per
//	           the callee's DecompBefore/DecompAfter sets (16a)
//	OptLive  — live decompositions (Figure 17): dead remaps eliminated,
//	           identical live remaps coalesced (16b)
//	OptHoist — loop-invariant decompositions hoisted out of loops (16c)
//	OptKills — array kills remap in place, no data motion (16d)
//
// Like the rest of the compiler, the callee's remapping needs are
// delayed: a procedure that redistributes an inherited array does not
// remap locally; it records DecompBefore/DecompAfter/DecompKill/
// DecompUse summary sets that its callers instantiate and optimize.
package livedecomp

import (
	"fmt"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/decomp"
	"fortd/internal/explain"
	"fortd/internal/rsd"
)

// Level selects how aggressively remaps are optimized.
type Level int

const (
	OptNone Level = iota
	OptLive
	OptHoist
	OptKills
)

func (l Level) String() string {
	switch l {
	case OptNone:
		return "none"
	case OptLive:
		return "live"
	case OptHoist:
		return "hoist"
	case OptKills:
		return "kills"
	}
	return "?"
}

// Summary is the per-procedure interprocedural solution of §6.1.
type Summary struct {
	// Use: variables that may use a decomposition reaching P.
	Use map[string]bool
	// Kill: variables that must be dynamically remapped when P runs.
	Kill map[string]bool
	// Before: decomposition each variable must be mapped to before P.
	Before map[string]decomp.Decomp
	// After: decomposition each variable must be restored to after P
	// (the inherited decomposition).
	After map[string]decomp.Decomp
	// Final: the physical decomposition at P's exit when it differs
	// from the inherited one (what the caller's data actually looks
	// like on return until a restore executes).
	Final map[string]decomp.Decomp
}

func newSummary() *Summary {
	return &Summary{
		Use: map[string]bool{}, Kill: map[string]bool{},
		Before: map[string]decomp.Decomp{}, After: map[string]decomp.Decomp{},
		Final: map[string]decomp.Decomp{},
	}
}

// Op is one remap operation to be emitted.
type Op struct {
	Array   string
	From    decomp.Decomp
	To      decomp.Decomp
	InPlace bool // array-kill optimization: update descriptor only
}

// Placement maps remap operations to their insertion anchors.
type Placement struct {
	BeforeStmt map[ast.Stmt][]*Op
	AfterStmt  map[ast.Stmt][]*Op
	BeforeLoop map[*ast.Do][]*Op
	AfterLoop  map[*ast.Do][]*Op
}

func newPlacement() *Placement {
	return &Placement{
		BeforeStmt: map[ast.Stmt][]*Op{},
		AfterStmt:  map[ast.Stmt][]*Op{},
		BeforeLoop: map[*ast.Do][]*Op{},
		AfterLoop:  map[*ast.Do][]*Op{},
	}
}

// Count returns the number of placed remap operations.
func (p *Placement) Count() int {
	n := 0
	for _, ops := range p.BeforeStmt {
		n += len(ops)
	}
	for _, ops := range p.AfterStmt {
		n += len(ops)
	}
	for _, ops := range p.BeforeLoop {
		n += len(ops)
	}
	for _, ops := range p.AfterLoop {
		n += len(ops)
	}
	return n
}

// Ops returns all placed operations (order unspecified).
func (p *Placement) Ops() []*Op {
	var out []*Op
	for _, ops := range p.BeforeStmt {
		out = append(out, ops...)
	}
	for _, ops := range p.AfterStmt {
		out = append(out, ops...)
	}
	for _, ops := range p.BeforeLoop {
		out = append(out, ops...)
	}
	for _, ops := range p.AfterLoop {
		out = append(out, ops...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Event sequence

type eventKind int

const (
	evUse eventKind = iota
	evRemap
	evLoopBegin
	evLoopEnd
)

// event is one step in the linearized execution model of a procedure.
type event struct {
	kind    eventKind
	array   string
	decomp  decomp.Decomp // target decomposition for evRemap; required for evUse
	killing bool          // evUse that overwrites the whole array without reading it
	// anchors
	stmt  ast.Stmt
	after bool // anchor after stmt instead of before
	loop  *ast.Do
	// cond marks events under a conditional; they are never optimized
	cond bool
	// op, once materialized
	op   *Op
	dead bool
	// why records which optimization rule fired (static strings only).
	why string
}

// ArrayInfo supplies per-array metadata the analysis needs.
type ArrayInfo struct {
	// Reads/Writes sections of a callee (caller-space) for kill tests.
	Reads, Writes []*rsd.Section
}

// KillTest decides whether a given call kills (fully overwrites without
// reading) the named caller-space array.
type KillTest func(site *acg.CallSite, callerArray string) bool

// Analyze computes remap placements for proc and its summary for
// callers.
//
//   - entry maps each inherited array to the decomposition flowing in
//     from the caller (unique after cloning).
//   - summaries holds callee summaries (by procedure name).
//   - node resolves call statements to call sites.
//   - killTest implements §6.3's array-kill analysis.
func Analyze(
	proc *ast.Procedure,
	node *acg.Node,
	entry map[string]decomp.Decomp,
	summaries map[string]*Summary,
	killTest KillTest,
	level Level,
) (*Placement, *Summary) {
	return AnalyzeExplain(proc, node, entry, summaries, killTest, level, nil)
}

// AnalyzeExplain is Analyze with an optimization-remark collector: it
// additionally reports every remap inserted (with its anchor and
// whether the array-kill rule made it an in-place descriptor update)
// and every remap suppressed, naming the Figure 16 ladder rule that
// fired.
func AnalyzeExplain(
	proc *ast.Procedure,
	node *acg.Node,
	entry map[string]decomp.Decomp,
	summaries map[string]*Summary,
	killTest KillTest,
	level Level,
	ex *explain.Collector,
) (*Placement, *Summary) {
	events, sum := buildEvents(proc, node, entry, summaries, killTest)
	if level >= OptLive {
		eliminateDead(events)
		coalesce(events, entry, proc)
	}
	if level >= OptHoist {
		hoist(events, entry, proc)
	}
	if level >= OptKills {
		applyKills(events)
	}
	place := newPlacement()
	for _, e := range events {
		if e.kind != evRemap || e.dead {
			continue
		}
		op := &Op{Array: e.array, To: e.decomp, InPlace: e.op != nil && e.op.InPlace}
		switch {
		case e.loop != nil && !e.after:
			place.BeforeLoop[e.loop] = append(place.BeforeLoop[e.loop], op)
		case e.loop != nil && e.after:
			place.AfterLoop[e.loop] = append(place.AfterLoop[e.loop], op)
		case e.after:
			place.AfterStmt[e.stmt] = append(place.AfterStmt[e.stmt], op)
		default:
			place.BeforeStmt[e.stmt] = append(place.BeforeStmt[e.stmt], op)
		}
	}
	explainEvents(ex, proc.Name, events)
	return place, sum
}

// explainEvents renders the optimized event list as remarks.
func explainEvents(ex *explain.Collector, procName string, events []*event) {
	if !ex.Enabled() {
		return
	}
	for _, e := range events {
		if e.kind != evRemap {
			continue
		}
		line := 0
		switch {
		case e.loop != nil:
			line = e.loop.Pos().Line
		case e.stmt != nil:
			line = e.stmt.Pos().Line
		}
		if e.dead {
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "livedecomp", Proc: procName, Line: line, Name: "remap-suppressed",
				Msg: fmt.Sprintf("remap of %s to %s eliminated: %s", e.array, e.decomp.Key(), e.why),
			})
			continue
		}
		anchor := "before the statement"
		switch {
		case e.loop != nil && e.after:
			anchor = "after loop " + e.loop.Var
		case e.loop != nil:
			anchor = "before loop " + e.loop.Var
		case e.after:
			anchor = "after the statement"
		}
		mode := ""
		if e.op != nil && e.op.InPlace {
			mode = "; " + e.why
		} else if e.why != "" {
			mode = "; " + e.why
		}
		ex.Add(explain.Remark{
			Kind: explain.Note, Pass: "livedecomp", Proc: procName, Line: line, Name: "remap",
			Msg: fmt.Sprintf("remap %s to %s inserted %s%s", e.array, e.decomp.Key(), anchor, mode),
		})
	}
}

// buildEvents linearizes proc into uses, remaps and loop markers, and
// computes the summary sets. Remap events are generated naively (16a):
// before/after every call needing a different decomposition, and at
// every executable distribute/align affecting an already-used array.
func buildEvents(
	proc *ast.Procedure,
	node *acg.Node,
	entry map[string]decomp.Decomp,
	summaries map[string]*Summary,
	killTest KillTest,
) ([]*event, *Summary) {
	var events []*event
	sum := newSummary()

	// logical reaching decomposition per array during the walk
	logical := map[string]decomp.Decomp{}
	inherited := map[string]bool{}
	firstUseSeen := map[string]bool{}
	for _, s := range proc.Symbols.Symbols() {
		if s.Kind != ast.SymArray {
			continue
		}
		if (s.IsFormal || s.Common != "") && !proc.IsMain {
			if d, ok := entry[s.Name]; ok {
				logical[s.Name] = d
			} else {
				logical[s.Name] = decomp.Replicated
			}
			inherited[s.Name] = true
		} else {
			logical[s.Name] = decomp.Replicated
		}
	}
	entryDecomp := map[string]decomp.Decomp{}
	for k, v := range logical {
		entryDecomp[k] = v
	}
	// alignment bookkeeping mirrors reach.State in miniature
	aligns := map[string]ast.Align{}
	decompSpecs := map[string]decomp.Decomp{}

	// prescan: total use occurrences per array (references plus the
	// synthetic uses at call sites), so the builder can tell whether an
	// array is used again later — the test for delaying a restore remap
	// to the callers
	totalUses := prescanUses(proc, node, summaries)
	usedSoFar := map[string]int{}

	condDepth := 0
	addUse := func(arr string, stmt ast.Stmt, killing bool) {
		if _, ok := logical[arr]; !ok {
			return
		}
		usedSoFar[arr]++
		events = append(events, &event{
			kind: evUse, array: arr, decomp: logical[arr],
			killing: killing, stmt: stmt, cond: condDepth > 0,
		})
		if !firstUseSeen[arr] {
			firstUseSeen[arr] = true
			if inherited[arr] {
				if !logical[arr].Equal(entryDecomp[arr]) {
					sum.Before[arr] = logical[arr]
				} else {
					sum.Use[arr] = true
				}
			}
		}
	}
	setDecomp := func(arr string, d decomp.Decomp, stmt ast.Stmt) {
		cur := logical[arr]
		logical[arr] = d
		if cur.Equal(d) {
			return
		}
		if inherited[arr] {
			sum.Kill[arr] = true
			if !firstUseSeen[arr] {
				// change before any use: delayed to the caller, no
				// local remap event
				return
			}
		} else if !firstUseSeen[arr] {
			// initial placement of a local array: no live values yet,
			// so no physical remap — just record the layout
			entryDecomp[arr] = d
			return
		}
		events = append(events, &event{
			kind: evRemap, array: arr, decomp: d, stmt: stmt, cond: condDepth > 0,
		})
	}

	var exprUses func(e ast.Expr, stmt ast.Stmt)
	exprUses = func(e ast.Expr, stmt ast.Stmt) {
		switch x := e.(type) {
		case *ast.ArrayRef:
			addUse(x.Name, stmt, false)
			for _, s := range x.Subs {
				exprUses(s, stmt)
			}
		case *ast.FuncCall:
			for _, a := range x.Args {
				exprUses(a, stmt)
			}
		case *ast.Binary:
			exprUses(x.X, stmt)
			exprUses(x.Y, stmt)
		case *ast.Unary:
			exprUses(x.X, stmt)
		}
	}

	var walk func(body []ast.Stmt)
	walk = func(body []ast.Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *ast.Assign:
				if lhs, ok := st.Lhs.(*ast.ArrayRef); ok {
					addUse(lhs.Name, st, false)
					for _, sub := range lhs.Subs {
						exprUses(sub, st)
					}
				}
				exprUses(st.Rhs, st)
			case *ast.Do:
				events = append(events, &event{kind: evLoopBegin, loop: st})
				walk(st.Body)
				events = append(events, &event{kind: evLoopEnd, loop: st})
			case *ast.If:
				exprUses(st.Cond, st)
				condDepth++
				walk(st.Then)
				walk(st.Else)
				condDepth--
			case *ast.Distribute:
				applyDistribute(proc, st, aligns, decompSpecs, setDecomp, logical)
			case *ast.Align:
				aligns[st.Array] = *st
				if d, ok := decompSpecs[st.Target]; ok {
					sym := proc.Symbols.Lookup(st.Array)
					rank := 1
					if sym != nil {
						rank = sym.NumDims()
					}
					setDecomp(st.Array, decomp.ApplyAlign(st.Terms, d, rank), st)
				}
			case *ast.Call:
				site := siteOf(node, st)
				csum := summaries[st.Name]
				if site == nil || csum == nil {
					continue
				}
				vars := map[string]string{}
				for _, b := range site.Bindings {
					if b.ActualName != "" {
						vars[b.Formal] = b.ActualName
					}
				}
				translate := func(formal string) string {
					sym := site.Callee.Proc.Symbols.Lookup(formal)
					if sym != nil && sym.Common != "" {
						return formal
					}
					if a, ok := vars[formal]; ok {
						return a
					}
					return ""
				}
				// remaps required before the call, each followed by a
				// synthetic use: the callee accesses the array under
				// that decomposition. For an inherited array not yet
				// used here, the mapping is delayed to our own callers
				// (the wrapper case): no local event — the synthetic
				// use records the requirement in DecompBefore.
				for formal, d := range csum.Before {
					arr := translate(formal)
					if arr == "" {
						continue
					}
					if !(inherited[arr] && !firstUseSeen[arr]) {
						events = append(events, &event{
							kind: evRemap, array: arr, decomp: d, stmt: st, cond: condDepth > 0,
						})
					}
					logical[arr] = d
					killing := killTest != nil && killTest(site, arr)
					addUse(arr, st, killing)
					markInherited(sum, inherited, firstUseSeen, arr, d, entryDecomp)
				}
				// uses inside the callee
				for formal := range csum.Use {
					arr := translate(formal)
					if arr == "" {
						continue
					}
					killing := killTest != nil && killTest(site, arr)
					addUse(arr, st, killing)
				}
				// physical state on return + restore remap after call
				for formal, d := range csum.Final {
					arr := translate(formal)
					if arr == "" {
						continue
					}
					logical[arr] = d
					markInherited(sum, inherited, firstUseSeen, arr, d, entryDecomp)
				}
				for formal, restore := range csum.After {
					arr := translate(formal)
					if arr == "" {
						continue
					}
					// an inherited array with no later use delegates
					// the restore to our own callers: the exit scan
					// records it in DecompAfter/Final
					if inherited[arr] && usedSoFar[arr] >= totalUses[arr] {
						continue
					}
					events = append(events, &event{
						kind: evRemap, array: arr, decomp: restore,
						stmt: st, after: true, cond: condDepth > 0,
					})
					logical[arr] = restore
				}
			}
		}
	}
	walk(proc.Body)

	// finish the summary: Final/After for arrays whose decomposition
	// differs at exit
	for arr, d := range logical {
		if !inherited[arr] {
			continue
		}
		if !d.Equal(entryDecomp[arr]) || sum.Kill[arr] {
			sum.Final[arr] = d
			sum.After[arr] = entryDecomp[arr]
		}
	}
	return events, sum
}

// prescanUses counts, per array, how many use occurrences the event
// builder will emit: direct references plus one synthetic use per
// callee-required decomposition (DecompUse and DecompBefore entries).
func prescanUses(proc *ast.Procedure, node *acg.Node, summaries map[string]*Summary) map[string]int {
	out := map[string]int{}
	var countExpr func(e ast.Expr)
	countExpr = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.ArrayRef:
			out[x.Name]++
			for _, s := range x.Subs {
				countExpr(s)
			}
		case *ast.FuncCall:
			for _, a := range x.Args {
				countExpr(a)
			}
		case *ast.Binary:
			countExpr(x.X)
			countExpr(x.Y)
		case *ast.Unary:
			countExpr(x.X)
		}
	}
	ast.WalkStmts(proc.Body, func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.Assign:
			if lhs, ok := st.Lhs.(*ast.ArrayRef); ok {
				out[lhs.Name]++
				for _, sub := range lhs.Subs {
					countExpr(sub)
				}
			}
			countExpr(st.Rhs)
		case *ast.If:
			countExpr(st.Cond)
		case *ast.Call:
			site := siteOf(node, st)
			csum := summaries[st.Name]
			if site == nil || csum == nil {
				return true
			}
			vars := map[string]string{}
			for _, b := range site.Bindings {
				if b.ActualName != "" {
					vars[b.Formal] = b.ActualName
				}
			}
			count := func(formal string) {
				sym := site.Callee.Proc.Symbols.Lookup(formal)
				if sym != nil && sym.Common != "" {
					out[formal]++
					return
				}
				if a, ok := vars[formal]; ok {
					out[a]++
				}
			}
			for formal := range csum.Use {
				count(formal)
			}
			for formal := range csum.Before {
				count(formal)
			}
		}
		return true
	})
	return out
}

func markInherited(sum *Summary, inherited, firstUseSeen map[string]bool, arr string, d decomp.Decomp, entryDecomp map[string]decomp.Decomp) {
	if inherited[arr] {
		sum.Kill[arr] = true
	}
}

func applyDistribute(
	proc *ast.Procedure,
	st *ast.Distribute,
	aligns map[string]ast.Align,
	decompSpecs map[string]decomp.Decomp,
	setDecomp func(string, decomp.Decomp, ast.Stmt),
	logical map[string]decomp.Decomp,
) {
	d := decomp.NewDecomp(st.Specs...)
	decompSpecs[st.Target] = d
	sym := proc.Symbols.Lookup(st.Target)
	if sym == nil || sym.Kind != ast.SymDecomposition {
		if _, isArray := logical[st.Target]; isArray {
			setDecomp(st.Target, d, st)
		}
	}
	for arr, al := range aligns {
		if al.Target == st.Target {
			asym := proc.Symbols.Lookup(arr)
			rank := 1
			if asym != nil {
				rank = asym.NumDims()
			}
			setDecomp(arr, decomp.ApplyAlign(al.Terms, d, rank), st)
		}
	}
}

func siteOf(node *acg.Node, call *ast.Call) *acg.CallSite {
	if node == nil {
		return nil
	}
	for _, s := range node.Calls {
		if s.Stmt == call {
			return s
		}
	}
	return nil
}
