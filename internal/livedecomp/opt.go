package livedecomp

import (
	"fortd/internal/ast"
	"fortd/internal/decomp"
)

// Figure 16 ladder rules, recorded on events for optimization remarks.
const (
	WhyDeadDecomp  = "dead decomposition: no use reaches before the next remap (OptLive, Figure 17)"
	WhyCoalesced   = "the physical decomposition already matches on every incoming path (OptLive coalescing)"
	WhyHoistAfter  = "loop-invariant restore moved after the loop (OptHoist rule 1, §6.2)"
	WhyHoistBefore = "loop-invariant remap moved before the loop (OptHoist rule 2, §6.2)"
	WhyKilled      = "every reachable first use kills the array: descriptor updated in place, no data motion (OptKills, §6.3)"
)

// succ builds the successor relation over the linearized event list:
// sequential fallthrough, plus a back edge from each loop end to the
// event after its loop begin, plus the loop-exit edge.
func succ(events []*event) [][]int {
	begin := map[*ast.Do]int{}
	for i, e := range events {
		if e.kind == evLoopBegin {
			begin[e.loop] = i
		}
	}
	out := make([][]int, len(events))
	for i, e := range events {
		if i+1 < len(events) {
			out[i] = append(out[i], i+1)
		}
		if e.kind == evLoopEnd {
			if b, ok := begin[e.loop]; ok {
				out[i] = append(out[i], b+1)
			}
		}
	}
	return out
}

// eliminateDead removes remap events after which the array is provably
// not used before being remapped again (the dead-decomposition
// elimination of Figure 17). Conditional remaps are never removed and
// never block paths.
func eliminateDead(events []*event) {
	edges := succ(events)
	for i, r := range events {
		if r.kind != evRemap || r.cond || r.dead {
			continue
		}
		if !reachesUse(events, edges, i, r.array) {
			r.dead = true
			r.why = WhyDeadDecomp
		}
	}
}

// reachesUse reports whether, starting after event i, a use of array
// occurs before any (unconditional, live) remap of array.
func reachesUse(events []*event, edges [][]int, i int, array string) bool {
	seen := make([]bool, len(events))
	stack := append([]int(nil), edges[i]...)
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[j] {
			continue
		}
		seen[j] = true
		e := events[j]
		if e.array == array {
			if e.kind == evUse {
				return true
			}
			if e.kind == evRemap && !e.cond && !e.dead {
				continue // path blocked by an intervening remap
			}
		}
		stack = append(stack, edges[j]...)
	}
	return false
}

// physState is the forward "physical decomposition" lattice value.
type physState struct {
	known bool
	multi bool
	d     decomp.Decomp
}

func (p physState) equal(o physState) bool {
	if p.known != o.known || p.multi != o.multi {
		return false
	}
	if !p.known || p.multi {
		return true
	}
	return p.d.Equal(o.d)
}

func (p physState) merge(o physState) physState {
	switch {
	case !p.known:
		return o
	case !o.known:
		return p
	case p.multi || o.multi:
		return physState{known: true, multi: true}
	case p.d.Equal(o.d):
		return p
	default:
		return physState{known: true, multi: true}
	}
}

// coalesce removes remaps whose target equals the physical
// decomposition on every incoming path (identical live decompositions
// with overlapping ranges collapse to the first, §6.1). Elimination can
// enable further elimination, so it iterates to a fixed point.
func coalesce(events []*event, entry map[string]decomp.Decomp, proc *ast.Procedure) {
	for changed := true; changed; {
		changed = false
		states := physAt(events, entry)
		for i, r := range events {
			if r.kind != evRemap || r.cond || r.dead {
				continue
			}
			st := states[i][r.array]
			if st.known && !st.multi && st.d.Equal(r.decomp) {
				r.dead = true
				r.why = WhyCoalesced
				changed = true
			}
		}
	}
}

// physAt computes, per event index, the physical decomposition of each
// array immediately before the event, by iterating the forward problem
// to a fixed point over the (cyclic) event graph.
func physAt(events []*event, entry map[string]decomp.Decomp) []map[string]physState {
	edges := succ(events)
	in := make([]map[string]physState, len(events))
	for i := range in {
		in[i] = map[string]physState{}
	}
	if len(events) == 0 {
		return in
	}
	for arr, d := range entry {
		in[0][arr] = physState{known: true, d: d}
	}
	for changed := true; changed; {
		changed = false
		for i, e := range events {
			out := in[i]
			if e.kind == evRemap && !e.dead {
				out = cloneState(in[i])
				if e.cond {
					out[e.array] = physState{known: true, multi: true}
				} else {
					out[e.array] = physState{known: true, d: e.decomp}
				}
			}
			for _, j := range edges[i] {
				for arr, st := range out {
					merged := in[j][arr].merge(st)
					if !merged.equal(in[j][arr]) {
						in[j][arr] = merged
						changed = true
					}
				}
			}
		}
	}
	return in
}

func cloneState(m map[string]physState) map[string]physState {
	out := make(map[string]physState, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// hoist applies the two loop-invariant decomposition rules of §6.2:
//
//  1. a remap whose target decomposition is not used within the loop,
//     and which is the last decomposition event for its array in the
//     loop body, moves after the loop;
//  2. a remap that is the first decomposition event for its array in
//     the loop, the only remap of the array there, and whose target is
//     the decomposition required by every use in the loop, moves before
//     the loop.
func hoist(events []*event, entry map[string]decomp.Decomp, proc *ast.Procedure) {
	// loop extents in the linearized list
	type span struct {
		loop     *ast.Do
		from, to int
	}
	var spans []span
	var stack []span
	for i, e := range events {
		switch e.kind {
		case evLoopBegin:
			stack = append(stack, span{loop: e.loop, from: i})
		case evLoopEnd:
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			s.to = i
			spans = append(spans, s)
		}
	}
	// innermost loops first (they close first, so spans is already
	// ordered innermost-out)
	for _, sp := range spans {
		type arrayEvents struct {
			uses   []*event
			remaps []*event
		}
		byArray := map[string]*arrayEvents{}
		for i := sp.from + 1; i < sp.to; i++ {
			e := events[i]
			if e.dead || e.cond {
				continue
			}
			ae := byArray[e.array]
			if ae == nil {
				ae = &arrayEvents{}
				byArray[e.array] = ae
			}
			switch e.kind {
			case evUse:
				ae.uses = append(ae.uses, e)
			case evRemap:
				ae.remaps = append(ae.remaps, e)
			}
		}
		for _, ae := range byArray {
			// rule 1 first: restores not used in the loop move after it
			for _, r := range ae.remaps {
				if r.loop != nil {
					continue // already hoisted by an inner loop pass
				}
				usedInLoop := false
				for _, u := range ae.uses {
					if u.decomp.Equal(r.decomp) {
						usedInLoop = true
					}
				}
				if !usedInLoop && lastEvent(events, sp.from, sp.to, r) {
					r.loop = sp.loop
					r.after = true
					r.why = WhyHoistAfter
				}
			}
			// rule 2: a sole remaining remap matching every use moves
			// before the loop
			var remaining []*event
			for _, r := range ae.remaps {
				if r.loop == nil {
					remaining = append(remaining, r)
				}
			}
			if len(remaining) == 1 && len(ae.uses) > 0 {
				r := remaining[0]
				allUsesMatch := true
				for _, u := range ae.uses {
					if !u.decomp.Equal(r.decomp) {
						allUsesMatch = false
					}
				}
				if allUsesMatch && firstEvent(events, sp.from, sp.to, r) {
					r.loop = sp.loop
					r.after = false
					r.why = WhyHoistBefore
				}
			}
		}
	}
	// hoisting may expose new redundancy
	coalesce(events, entry, proc)
}

// lastEvent reports whether r is the final (live, unconditional) event
// for its array within the span.
func lastEvent(events []*event, from, to int, r *event) bool {
	past := false
	for i := from + 1; i < to; i++ {
		e := events[i]
		if e == r {
			past = true
			continue
		}
		if !past || e.dead || e.cond || e.array != r.array || e.loop != nil {
			continue
		}
		if e.kind == evUse || e.kind == evRemap {
			return false
		}
	}
	return past
}

// firstEvent reports whether r is the first (live, unconditional)
// decomposition event for its array within the span.
func firstEvent(events []*event, from, to int, r *event) bool {
	for i := from + 1; i < to; i++ {
		e := events[i]
		if e == r {
			return true
		}
		if e.dead || e.cond || e.array != r.array || e.loop != nil {
			continue
		}
		if e.kind == evUse || e.kind == evRemap {
			return false
		}
	}
	return false
}

// applyKills marks remaps whose reachable first accesses all overwrite
// the array without reading it (§6.3): the values are dead, so the
// array is remapped in place by updating its descriptor only.
func applyKills(events []*event) {
	edges := succ(events)
	for i, r := range events {
		if r.kind != evRemap || r.dead || r.cond {
			continue
		}
		if allFirstUsesKill(events, edges, i, r.array) {
			r.op = &Op{InPlace: true}
			r.why = WhyKilled
		}
	}
}

// allFirstUsesKill walks forward from event i and checks that every
// first-reached use of array is a killing write (and at least one use
// is reached).
func allFirstUsesKill(events []*event, edges [][]int, i int, array string) bool {
	seen := make([]bool, len(events))
	stack := append([]int(nil), edges[i]...)
	found := false
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[j] {
			continue
		}
		seen[j] = true
		e := events[j]
		if e.array == array {
			if e.kind == evUse {
				if !e.killing {
					return false
				}
				found = true
				continue // the kill ends this path's first-use search
			}
			if e.kind == evRemap && !e.cond && !e.dead {
				continue
			}
		}
		stack = append(stack, edges[j]...)
	}
	return found
}
