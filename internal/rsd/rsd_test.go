package rsd

import (
	"testing"
	"testing/quick"
)

func TestDimString(t *testing.T) {
	cases := []struct {
		d    Dim
		want string
	}{
		{Range(1, 25), "1:25"},
		{Point(7), "7"},
		{Strided(2, 100, 4), "2:100:4"},
		{SymPoint("i", 0), "i"},
		{SymPoint("i", 5), "i+5"},
		{SymPoint("i", -3), "i-3"},
		{SymRange("i", 1, 5), "i+1:i+5"},
		{Dim{Lo: 5, Hi: 2, Step: 1}, "∅"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Dim%v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestSectionStringAndVolume(t *testing.T) {
	s := New("X", Range(26, 30), Range(1, 100))
	if got := s.String(); got != "X[26:30,1:100]" {
		t.Errorf("String() = %q", got)
	}
	if got := s.Volume(); got != 500 {
		t.Errorf("Volume() = %d, want 500", got)
	}
	if s.Empty() {
		t.Error("section should not be empty")
	}
}

func TestIntersect(t *testing.T) {
	a := New("X", Range(6, 30))
	b := New("X", Range(1, 25))
	got := Intersect(a, b)
	if got.Dims[0] != Range(6, 25) {
		t.Errorf("Intersect = %v, want [6:25]", got)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	a := New("X", Range(1, 5))
	b := New("X", Range(10, 20))
	if got := Intersect(a, b); !got.Empty() {
		t.Errorf("Intersect of disjoint = %v, want empty", got)
	}
}

func TestIntersectStrided(t *testing.T) {
	a := New("X", Strided(1, 100, 4))
	b := New("X", Range(1, 100))
	got := Intersect(a, b)
	if got.Dims[0].Count() != 25 {
		t.Errorf("strided ∩ full = %v (count %d), want 25 points", got, got.Dims[0].Count())
	}
}

// TestSubtractPaperExample reproduces the §3.1 compilation example:
// accesses [6:30] minus the local index set [1:25] leaves the nonlocal
// index set [26:30].
func TestSubtractPaperExample(t *testing.T) {
	accessed := New("X", Range(6, 30))
	local := New("X", Range(1, 25))
	out := Subtract(accessed, local)
	if len(out) != 1 {
		t.Fatalf("Subtract returned %d sections, want 1: %v", len(out), out)
	}
	if out[0].Dims[0] != Range(26, 30) {
		t.Errorf("nonlocal set = %v, want [26:30]", out[0])
	}
}

func TestSubtract2D(t *testing.T) {
	// Figure 10: accesses [6:30,1:100] minus local [1:25,1:100]
	accessed := New("Z", Range(6, 30), Range(1, 100))
	local := New("Z", Range(1, 25), Range(1, 100))
	out := Subtract(accessed, local)
	if len(out) != 1 {
		t.Fatalf("Subtract returned %d sections: %v", len(out), out)
	}
	want := New("Z", Range(26, 30), Range(1, 100))
	if !out[0].Equal(want) {
		t.Errorf("nonlocal = %v, want %v", out[0], want)
	}
}

func TestSubtractInterior(t *testing.T) {
	a := New("X", Range(1, 100))
	b := New("X", Range(40, 60))
	out := Subtract(a, b)
	if len(out) != 2 {
		t.Fatalf("interior subtract: %v", out)
	}
	if out[0].Dims[0] != Range(1, 39) || out[1].Dims[0] != Range(61, 100) {
		t.Errorf("interior subtract = %v", out)
	}
}

func TestSubtractCovered(t *testing.T) {
	a := New("X", Range(5, 10))
	b := New("X", Range(1, 100))
	if out := Subtract(a, b); len(out) != 0 {
		t.Errorf("covered subtract should be empty, got %v", out)
	}
}

func TestUnionMergeable(t *testing.T) {
	a := New("X", Range(1, 5), Range(1, 100))
	b := New("X", Range(6, 10), Range(1, 100))
	m, ok := Union(a, b)
	if !ok {
		t.Fatal("adjacent sections should merge")
	}
	if !m.Equal(New("X", Range(1, 10), Range(1, 100))) {
		t.Errorf("Union = %v", m)
	}
}

func TestUnionPrecisionLoss(t *testing.T) {
	a := New("X", Range(1, 5), Range(1, 50))
	b := New("X", Range(6, 10), Range(51, 100))
	if _, ok := Union(a, b); ok {
		t.Error("diagonal union must be rejected (precision loss)")
	}
}

func TestUnionDisjointGap(t *testing.T) {
	a := New("X", Range(1, 5))
	b := New("X", Range(8, 10))
	if _, ok := Union(a, b); ok {
		t.Error("gapped union must be rejected")
	}
}

func TestMergeList(t *testing.T) {
	secs := []*Section{
		New("X", Range(1, 5)),
		New("X", Range(11, 20)),
		New("X", Range(6, 10)),
	}
	out := MergeList(secs)
	if len(out) != 1 || !out[0].Equal(New("X", Range(1, 20))) {
		t.Errorf("MergeList = %v", out)
	}
}

func TestContains(t *testing.T) {
	outer := New("X", Range(1, 30), Range(1, 100))
	inner := New("X", Range(26, 30), Range(1, 100))
	if !Contains(outer, inner) {
		t.Error("outer should contain inner")
	}
	if Contains(inner, outer) {
		t.Error("inner must not contain outer")
	}
}

// TestBindCommExample reproduces the §5.4 communication optimization
// example: the nonlocal index set [26:30, i] computed in F1$row is
// translated into the caller where loop i spans [1:100], expanding to
// [26:30, 1:100].
func TestBindCommExample(t *testing.T) {
	delayed := New("Z", Range(26, 30), SymPoint("i", 0))
	expanded := delayed.Bind("i", 1, 100)
	want := New("Z", Range(26, 30), Range(1, 100))
	if !expanded.Equal(want) {
		t.Errorf("Bind = %v, want %v", expanded, want)
	}
}

func TestBindWithOffset(t *testing.T) {
	// X(i+5) referenced under no local loop → [i+5:i+5]; caller's loop
	// i = 1,95 expands it to [6:100].
	d := New("X", SymPoint("i", 5))
	got := d.Bind("i", 1, 95)
	if !got.Equal(New("X", Range(6, 100))) {
		t.Errorf("Bind = %v, want X[6:100]", got)
	}
}

func TestRename(t *testing.T) {
	s := New("Z", Range(26, 30), SymPoint("i", 0))
	r := s.Rename("X", map[string]string{"i": "k"})
	if r.Array != "X" || r.Dims[1].Var != "k" {
		t.Errorf("Rename = %v", r)
	}
	// original untouched
	if s.Array != "Z" || s.Dims[1].Var != "i" {
		t.Errorf("Rename mutated receiver: %v", s)
	}
}

// Property: for random ranges, Subtract(a,b) ∪ Intersect(a,b) has the
// same element count as a, and the pieces are disjoint from b.
func TestSubtractIntersectPartitionProperty(t *testing.T) {
	f := func(alo, aw, blo, bw uint8) bool {
		a := New("X", Range(int(alo), int(alo)+int(aw%50)))
		b := New("X", Range(int(blo), int(blo)+int(bw%50)))
		inter := Intersect(a, b)
		parts := Subtract(a, b)
		total := inter.Volume()
		for _, p := range parts {
			total += p.Volume()
			if !Intersect(p, b).Empty() {
				return false
			}
		}
		return total == a.Volume()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Union, when it succeeds, covers exactly the two inputs.
func TestUnionExactProperty(t *testing.T) {
	f := func(alo, aw, blo, bw uint8) bool {
		a := New("X", Range(int(alo)+1, int(alo)+1+int(aw%20)))
		b := New("X", Range(int(blo)+1, int(blo)+1+int(bw%20)))
		m, ok := Union(a, b)
		if !ok {
			return true
		}
		// every element of m is in a or b: sampled check over the range
		for i := m.Dims[0].Lo; i <= m.Dims[0].Hi; i++ {
			inA := i >= a.Dims[0].Lo && i <= a.Dims[0].Hi
			inB := i >= b.Dims[0].Lo && i <= b.Dims[0].Hi
			if !inA && !inB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVolumeEmpty(t *testing.T) {
	if v := New("X", Range(1, 0)).Volume(); v != 0 {
		t.Errorf("empty volume = %d", v)
	}
}

func TestSymbolicDetection(t *testing.T) {
	if New("X", Range(1, 5)).Symbolic() {
		t.Error("constant section reported symbolic")
	}
	if !New("X", Range(1, 5), SymPoint("i", 0)).Symbolic() {
		t.Error("symbolic section not detected")
	}
}
