// Package rsd implements regular section descriptors (RSDs), the array
// summary representation used throughout the Fortran D compiler for
// index sets, iteration sets, and communication sets [Havlak & Kennedy].
// A section is a rectangular region described by one Dim per array
// dimension in Fortran 90 triplet notation. A Dim may be anchored to a
// symbolic variable (typically a loop index of an *enclosing* procedure),
// which is how nonlocal index sets such as [26:30, i] are delayed and
// later expanded in the caller where the variable's range is known.
package rsd

import (
	"fmt"
	"strings"
)

// Dim describes one dimension of a section. If Var is empty the
// dimension covers the constant range [Lo:Hi:Step]. If Var is non-empty
// the dimension covers [Var+Lo : Var+Hi] — an offset window around a
// symbolic anchor whose value (or range) is unknown locally.
type Dim struct {
	Lo, Hi int
	Step   int    // 0 or 1 mean unit stride
	Var    string // symbolic anchor, "" for constant ranges
}

// Point returns a degenerate dimension covering the single index i.
func Point(i int) Dim { return Dim{Lo: i, Hi: i, Step: 1} }

// Range returns the dimension [lo:hi].
func Range(lo, hi int) Dim { return Dim{Lo: lo, Hi: hi, Step: 1} }

// Strided returns the dimension [lo:hi:step].
func Strided(lo, hi, step int) Dim { return Dim{Lo: lo, Hi: hi, Step: step} }

// SymPoint returns the dimension [v+off : v+off] anchored at variable v.
func SymPoint(v string, off int) Dim { return Dim{Lo: off, Hi: off, Step: 1, Var: v} }

// SymRange returns the dimension [v+lo : v+hi] anchored at variable v.
func SymRange(v string, lo, hi int) Dim { return Dim{Lo: lo, Hi: hi, Step: 1, Var: v} }

func (d Dim) step() int {
	if d.Step <= 0 {
		return 1
	}
	return d.Step
}

// IsSymbolic reports whether the dimension is anchored to a variable.
func (d Dim) IsSymbolic() bool { return d.Var != "" }

// Empty reports whether the dimension covers no indices.
func (d Dim) Empty() bool { return d.Hi < d.Lo }

// Count returns the number of indices covered. Symbolic dimensions count
// the width of the offset window.
func (d Dim) Count() int {
	if d.Empty() {
		return 0
	}
	return (d.Hi-d.Lo)/d.step() + 1
}

func (d Dim) String() string {
	pre := ""
	if d.Var != "" {
		pre = d.Var
	}
	fmtEnd := func(v int) string {
		if pre == "" {
			return fmt.Sprintf("%d", v)
		}
		switch {
		case v == 0:
			return pre
		case v > 0:
			return fmt.Sprintf("%s+%d", pre, v)
		default:
			return fmt.Sprintf("%s%d", pre, v)
		}
	}
	if d.Empty() {
		return "∅"
	}
	if d.Lo == d.Hi {
		return fmtEnd(d.Lo)
	}
	s := fmtEnd(d.Lo) + ":" + fmtEnd(d.Hi)
	if d.step() != 1 {
		s += fmt.Sprintf(":%d", d.Step)
	}
	return s
}

// Section is a rectangular region of the named array.
type Section struct {
	Array string
	Dims  []Dim
}

// New builds a section over array with the given dimensions.
func New(array string, dims ...Dim) *Section {
	return &Section{Array: array, Dims: dims}
}

// Rank returns the number of dimensions.
func (s *Section) Rank() int { return len(s.Dims) }

// Empty reports whether any dimension is empty.
func (s *Section) Empty() bool {
	for _, d := range s.Dims {
		if d.Empty() {
			return true
		}
	}
	return len(s.Dims) == 0
}

// Volume returns the number of elements covered (symbolic anchors are
// treated as single points, i.e. the window width is used).
func (s *Section) Volume() int {
	if s.Empty() {
		return 0
	}
	v := 1
	for _, d := range s.Dims {
		v *= d.Count()
	}
	return v
}

// Symbolic reports whether any dimension carries a symbolic anchor.
func (s *Section) Symbolic() bool {
	for _, d := range s.Dims {
		if d.IsSymbolic() {
			return true
		}
	}
	return false
}

func (s *Section) String() string {
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = d.String()
	}
	return s.Array + "[" + strings.Join(parts, ",") + "]"
}

// Clone returns a deep copy.
func (s *Section) Clone() *Section {
	return &Section{Array: s.Array, Dims: append([]Dim(nil), s.Dims...)}
}

// Equal reports structural equality.
func (s *Section) Equal(o *Section) bool {
	if s.Array != o.Array || len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		a, b := s.Dims[i], o.Dims[i]
		if a.Lo != b.Lo || a.Hi != b.Hi || a.step() != b.step() || a.Var != b.Var {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Set operations

// IntersectDim returns the intersection of two constant dimensions.
// Symbolic dimensions intersect only with themselves (same anchor);
// otherwise the result is conservatively the narrower input.
func IntersectDim(a, b Dim) Dim {
	if a.Var != b.Var {
		// incomparable anchors: conservative over-approximation is the
		// caller's job; return empty to mean "cannot prove overlap".
		return Dim{Lo: 1, Hi: 0, Step: 1}
	}
	lo := max(a.Lo, b.Lo)
	hi := min(a.Hi, b.Hi)
	step := max(a.step(), b.step())
	if a.step() != b.step() && a.step() != 1 && b.step() != 1 {
		// different nontrivial strides: fall back to unit stride bounds
		step = 1
	}
	return Dim{Lo: lo, Hi: hi, Step: step, Var: a.Var}
}

// Intersect returns the intersection of two sections over the same array,
// or an empty section when they cannot overlap.
func Intersect(a, b *Section) *Section {
	if a.Array != b.Array || len(a.Dims) != len(b.Dims) {
		return &Section{Array: a.Array, Dims: []Dim{{Lo: 1, Hi: 0, Step: 1}}}
	}
	out := &Section{Array: a.Array, Dims: make([]Dim, len(a.Dims))}
	for i := range a.Dims {
		out.Dims[i] = IntersectDim(a.Dims[i], b.Dims[i])
	}
	return out
}

// SubtractDim returns the parts of a not covered by b, as 0–2 ranges.
// Only constant unit-stride dimensions subtract precisely; other cases
// return a unchanged (a safe over-approximation for communication sets).
func SubtractDim(a, b Dim) []Dim {
	if a.Empty() {
		return nil
	}
	if a.Var != b.Var || a.step() != 1 || b.step() != 1 {
		return []Dim{a}
	}
	if b.Hi < a.Lo || b.Lo > a.Hi {
		return []Dim{a}
	}
	var out []Dim
	if a.Lo < b.Lo {
		out = append(out, Dim{Lo: a.Lo, Hi: b.Lo - 1, Step: 1, Var: a.Var})
	}
	if a.Hi > b.Hi {
		out = append(out, Dim{Lo: b.Hi + 1, Hi: a.Hi, Step: 1, Var: a.Var})
	}
	return out
}

// Subtract returns the portions of section a outside section b, as a list
// of disjoint sections. It subtracts dimension-by-dimension in the usual
// rectangular decomposition: for each dimension d, the slab whose d-th
// dimension is outside b (and whose earlier dimensions are restricted to
// the overlap) is emitted.
func Subtract(a, b *Section) []*Section {
	if a.Array != b.Array || len(a.Dims) != len(b.Dims) {
		return []*Section{a.Clone()}
	}
	if a.Empty() {
		return nil
	}
	var out []*Section
	prefix := make([]Dim, 0, len(a.Dims))
	for i := range a.Dims {
		outside := SubtractDim(a.Dims[i], b.Dims[i])
		for _, od := range outside {
			dims := make([]Dim, 0, len(a.Dims))
			dims = append(dims, prefix...)
			dims = append(dims, od)
			dims = append(dims, a.Dims[i+1:]...)
			sec := &Section{Array: a.Array, Dims: dims}
			if !sec.Empty() {
				out = append(out, sec)
			}
		}
		overlap := IntersectDim(a.Dims[i], b.Dims[i])
		if overlap.Empty() {
			return out
		}
		prefix = append(prefix, overlap)
	}
	return out
}

// mergeableDim reports whether two dimensions can be unioned into a
// single triplet without loss of precision, and returns the union.
func mergeableDim(a, b Dim) (Dim, bool) {
	if a.Var != b.Var || a.step() != b.step() {
		return Dim{}, false
	}
	st := a.step()
	if st == 1 {
		// adjacent or overlapping unit ranges merge
		if a.Lo > b.Lo {
			a, b = b, a
		}
		if b.Lo <= a.Hi+1 {
			return Dim{Lo: a.Lo, Hi: max(a.Hi, b.Hi), Step: 1, Var: a.Var}, true
		}
		return Dim{}, false
	}
	// equal strided ranges only
	if a.Lo == b.Lo && a.Hi == b.Hi {
		return a, true
	}
	return Dim{}, false
}

// Union merges two sections into one if no precision is lost (the merge
// condition the paper applies when propagating RSDs). ok is false when a
// precise single-section union does not exist.
func Union(a, b *Section) (*Section, bool) {
	if a.Array != b.Array || len(a.Dims) != len(b.Dims) {
		return nil, false
	}
	// identical in all but at most one dimension, which must merge
	diff := -1
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			if diff >= 0 {
				return nil, false
			}
			diff = i
		}
	}
	if diff < 0 {
		return a.Clone(), true
	}
	m, ok := mergeableDim(a.Dims[diff], b.Dims[diff])
	if !ok {
		return nil, false
	}
	out := a.Clone()
	out.Dims[diff] = m
	return out, true
}

// MergeList folds the sections into a minimal list, merging pairs
// whenever Union succeeds without precision loss.
func MergeList(secs []*Section) []*Section {
	out := append([]*Section(nil), secs...)
	for changed := true; changed; {
		changed = false
	outer:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if m, ok := Union(out[i], out[j]); ok {
					out[i] = m
					out = append(out[:j], out[j+1:]...)
					changed = true
					break outer
				}
			}
		}
	}
	return out
}

// Contains reports whether section a covers all of section b (both
// constant unit-stride).
func Contains(a, b *Section) bool {
	if a.Array != b.Array || len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		da, db := a.Dims[i], b.Dims[i]
		if da.Var != db.Var || da.step() != 1 || db.step() != 1 {
			return false
		}
		if db.Lo < da.Lo || db.Hi > da.Hi {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Symbolic expansion and call-site translation

// Bind replaces a symbolic anchor with a concrete range: every dimension
// anchored at v becomes the constant range [lo+Lo : hi+Hi]. This is the
// expansion the compiler performs when a delayed RSD reaches the
// procedure that owns the anchoring loop.
func (s *Section) Bind(v string, lo, hi int) *Section {
	out := s.Clone()
	for i, d := range out.Dims {
		if d.Var == v {
			out.Dims[i] = Dim{Lo: lo + d.Lo, Hi: hi + d.Hi, Step: d.step()}
		}
	}
	return out
}

// BindPoint replaces a symbolic anchor with a single value.
func (s *Section) BindPoint(v string, val int) *Section { return s.Bind(v, val, val) }

// Rename rewrites the array name (formal→actual translation across a
// call site for identically-shaped parameters) and renames symbolic
// anchors per the vars map (formal scalar → actual scalar).
func (s *Section) Rename(array string, vars map[string]string) *Section {
	out := s.Clone()
	out.Array = array
	if vars != nil {
		for i, d := range out.Dims {
			if d.Var != "" {
				if actual, ok := vars[d.Var]; ok {
					out.Dims[i].Var = actual
				}
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
