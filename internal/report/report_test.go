package report

import (
	"bytes"
	"strings"
	"testing"

	"fortd"
)

// TestReportHTML renders the full self-contained report for jacobi and
// dgefa and checks that every visualization the report promises is
// present and that the document references no external assets.
func TestReportHTML(t *testing.T) {
	cases := []struct {
		name string
		src  string
		init map[string][]float64
	}{
		{"jacobi", fortd.Jacobi2DSrc(16, 3, 4), map[string][]float64{"a": fortd.Ramp(16 * 16)}},
		{"dgefa", fortd.DgefaSrc(32, 4), map[string][]float64{"a": fortd.DgefaMatrix(32)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sec, err := BuildSection(tc.name, tc.src, tc.init, fortd.DefaultOptions(), []int{1, 2, 4})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Write(&buf, tc.name, "", sec); err != nil {
				t.Fatal(err)
			}
			html := buf.String()
			for _, id := range []string{
				`id="heatmap"`, `id="hotspots"`, `id="timeline"`,
				`id="profile"`, `id="histogram"`, `id="speedup"`,
			} {
				if !strings.Contains(html, id) {
					t.Errorf("report lacks %s", id)
				}
			}
			for _, ext := range []string{"http://", "https://", "<script src", "<link "} {
				if strings.Contains(html, ext) {
					t.Errorf("report references an external asset (%q)", ext)
				}
			}
			if !strings.HasPrefix(html, "<!DOCTYPE html>") {
				t.Error("report does not start with a doctype")
			}
			if !strings.HasSuffix(strings.TrimSpace(html), "</html>") {
				t.Error("report is truncated (no closing </html>)")
			}
		})
	}
}

// TestParseSweep covers the flag syntax: dedup, sort, rejection.
func TestParseSweep(t *testing.T) {
	got, err := ParseSweep(" 8, 1,2, 4,2 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("ParseSweep = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseSweep = %v, want %v", got, want)
		}
	}
	if got, err := ParseSweep(""); err != nil || got != nil {
		t.Errorf("ParseSweep(\"\") = %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"0", "-1", "x", "1,,2"} {
		if _, err := ParseSweep(bad); err == nil {
			t.Errorf("ParseSweep(%q) accepted", bad)
		}
	}
}
