// Package report assembles the self-contained HTML performance report:
// it compiles and runs a workload with tracing and optimization-remark
// collection attached, post-processes the event stream through
// internal/trace/analyze, optionally reruns the workload across a
// processor sweep for the speedup curve, and hands the assembled
// sections to analyze.WriteHTML. It is the shared engine behind
// cmd/fdreport, `fdrun -report` and `fdbench -report`.
package report

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"fortd"
	"fortd/internal/profile"
	"fortd/internal/trace/analyze"
)

// DefaultSweep is the processor sweep used when the caller does not
// give one: the paper's §9 presentation points.
var DefaultSweep = []int{1, 2, 4, 8}

// BuildSection compiles src with opts, executes it traced on the
// simulated machine, and returns the workload's report section:
// communication analysis, optimization remarks, and — when sweepPs is
// non-empty — a processor-scaling sweep (each point is a fresh compile
// and untraced run at that P).
func BuildSection(name, src string, init map[string][]float64, opts fortd.Options, sweepPs []int) (*analyze.Section, error) {
	tr := fortd.NewTrace()
	ex := fortd.NewExplain()
	opts.Trace = tr
	opts.Explain = ex
	prog, err := fortd.Compile(src, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	res, err := fortd.NewRunner(fortd.WithInit(init), fortd.WithTrace(tr)).Run(prog)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	sec := &analyze.Section{
		Name:     name,
		Headline: fmt.Sprintf("P=%d  %s", prog.P(), res.Stats),
		Analysis: analyze.Analyze(tr.Events()),
		Remarks:  ex.Remarks(),
	}
	if tbl := profileTable(tr, src, opts, prog.P()); tbl != nil {
		sec.Tables = append(sec.Tables, *tbl)
	}
	if len(sweepPs) > 0 {
		sweep, err := analyze.RunSweep(sweepPs, func(p int) (analyze.Point, error) {
			o := opts
			o.P = p
			o.Trace = nil
			o.Explain = nil
			sp, err := fortd.Compile(src, o)
			if err != nil {
				return analyze.Point{}, err
			}
			sr, err := fortd.NewRunner(fortd.WithInit(init)).Run(sp)
			if err != nil {
				return analyze.Point{}, err
			}
			return analyze.Point{Time: sr.Stats.Time, Msgs: sr.Stats.Messages, Words: sr.Stats.Words}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		sec.Sweep = sweep
	}
	return sec, nil
}

// profileTable distills the traced run into the profile artifact and
// renders its headline figures as a report table, so the HTML report
// shows the same numbers `fdrun -profile` and the daemon store. Nil
// when the trace carried no machine activity.
func profileTable(tr *fortd.Trace, src string, opts fortd.Options, p int) *analyze.Table {
	pf := profile.FromEvents(tr.Events(), profile.Meta{
		ProgramHash: fortd.ProgramID(src, opts),
		P:           p,
	})
	if pf == nil {
		return nil
	}
	id, _ := pf.ID()
	return &analyze.Table{
		Title:  "Profile",
		Header: []string{"profile id", "blocked share", "imbalance", "critical path (µs)", "msgs", "words"},
		Rows: [][]string{{
			fmt.Sprintf("%.12s", id),
			fmt.Sprintf("%.3f", pf.BlockedShare()),
			fmt.Sprintf("%.3f", pf.Imbalance()),
			fmt.Sprintf("%.1f", pf.Total.CriticalPath),
			fmt.Sprint(pf.Total.Msgs),
			fmt.Sprint(pf.Total.Words),
		}},
		Note: "same artifact definition as `fdrun -profile` and the fdd profile store (internal/profile schema v1)",
	}
}

// Write renders sections into one self-contained HTML document.
func Write(w io.Writer, title, subtitle string, sections ...*analyze.Section) error {
	return analyze.WriteHTML(w, &analyze.Page{Title: title, Subtitle: subtitle, Sections: sections})
}

// WriteFile renders the report to path.
func WriteFile(path, title, subtitle string, sections ...*analyze.Section) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, title, subtitle, sections...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseSweep parses a "1,2,4,8"-style processor list. An empty string
// returns nil (no sweep).
func ParseSweep(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var ps []int
	seen := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad processor count %q in sweep", f)
		}
		if !seen[p] {
			seen[p] = true
			ps = append(ps, p)
		}
	}
	sort.Ints(ps)
	return ps, nil
}
