package partition

import (
	"fortd/internal/ast"
	"fortd/internal/decomp"
)

// MyP is the name of the generated variable holding the local processor
// number (an integer in [0, n$proc)).
const MyP = "my$p"

func myP() ast.Expr { return ast.Id(MyP) }

// BoundExprs rewrites a loop's bounds so that the loop enumerates only
// the iterations owned by the executing processor under constraint c
// (the "reduce loop bounds" instantiation of the computation
// partition). Bounds stay in the global index space:
//
//	BLOCK:  do v = MAX(lo, my$p*b+1-off), MIN(hi, (my$p+1)*b-off)
//	CYCLIC: do v = lo + MOD(my$p - MOD(lo+off-1,P) + P, P), hi, P
//
// ok is false for distributions the rewrite does not support
// (CYCLIC(k)), which fall back to guards.
func BoundExprs(c *Constraint, lo, hi, step ast.Expr) (newLo, newHi, newStep ast.Expr, ok bool) {
	if step != nil {
		if v, isConst := ast.EvalInt(step, nil); !isConst || v != 1 {
			return nil, nil, nil, false
		}
	}
	dim := c.Dist.DistDim()
	if dim < 0 {
		return lo, hi, step, true
	}
	switch c.Dist.Specs[dim].Kind {
	case ast.DistBlock:
		b := c.Dist.BlockSize()
		// my$p*b + 1 - off
		first := ast.Add(ast.Mul(myP(), ast.Int(b)), ast.Int(1-c.Offset))
		// (my$p+1)*b - off
		last := ast.Sub(ast.Mul(ast.Add(myP(), ast.Int(1)), ast.Int(b)), ast.Int(c.Offset))
		newLo = ast.Max(lo, first)
		if v, isConst := ast.EvalInt(lo, nil); isConst && v == 1-c.Offset {
			newLo = first // common case: loop starts at the array base
		}
		newHi = ast.Min(hi, last)
		return newLo, newHi, nil, true
	case ast.DistCyclic:
		p := c.Dist.P
		// first$(anchor, min, step) is the generated-code intrinsic
		// returning the smallest x >= min with x ≡ anchor (mod step);
		// owned iterations satisfy v ≡ my$p+1-off (mod P)
		anchor := ast.Add(myP(), ast.Int(1-c.Offset))
		newLo = &ast.FuncCall{Name: "first$", Args: []ast.Expr{anchor, lo, ast.Int(p)}}
		if loC, isConst := ast.EvalInt(lo, nil); isConst {
			r := mod(loC+c.Offset-1, p)
			if r == 0 && loC == 1 && c.Offset == 0 {
				// common case do v = my$p+1, hi, P
				newLo = ast.Add(myP(), ast.Int(1))
			}
		}
		return newLo, hi, ast.Int(p), true
	}
	return nil, nil, nil, false
}

// GuardExpr builds the ownership test "this processor owns element
// idx+off of the constraint's array" used when the computation
// partition is instantiated with explicit guards.
func GuardExpr(c *Constraint, idx ast.Expr) ast.Expr {
	e := ast.Add(idx, ast.Int(c.Offset))
	return ast.Cmp(ast.OpEQ, OwnerExpr(c.Dist, e), myP())
}

// OwnerExpr builds the expression computing the owner processor of the
// distributed-dimension index idx under dist.
func OwnerExpr(dist *decomp.Dist, idx ast.Expr) ast.Expr {
	dim := dist.DistDim()
	if dim < 0 {
		return ast.Int(0)
	}
	switch dist.Specs[dim].Kind {
	case ast.DistBlock:
		b := dist.BlockSize()
		return &ast.Binary{Op: ast.OpDiv, X: ast.Sub(idx, ast.Int(1)), Y: ast.Int(b)}
	case ast.DistCyclic:
		return &ast.FuncCall{Name: "MOD", Args: []ast.Expr{ast.Sub(idx, ast.Int(1)), ast.Int(dist.P)}}
	case ast.DistBlockCyclic:
		k := dist.Specs[dim].BlockSize
		blk := &ast.Binary{Op: ast.OpDiv, X: ast.Sub(idx, ast.Int(1)), Y: ast.Int(k)}
		return &ast.FuncCall{Name: "MOD", Args: []ast.Expr{blk, ast.Int(dist.P)}}
	}
	return ast.Int(0)
}

// LocalLoExpr and LocalHiExpr give the first/last global index owned by
// my$p for a BLOCK distribution (used by communication emission).
func LocalLoExpr(dist *decomp.Dist) ast.Expr {
	return ast.Add(ast.Mul(myP(), ast.Int(dist.BlockSize())), ast.Int(1))
}

// LocalHiExpr returns MIN((my$p+1)*b, n).
func LocalHiExpr(dist *decomp.Dist) ast.Expr {
	b := dist.BlockSize()
	n := dist.Sizes[dist.DistDim()]
	return ast.Min(ast.Mul(ast.Add(myP(), ast.Int(1)), ast.Int(b)), ast.Int(n))
}

func mod(a, p int) int {
	r := a % p
	if r < 0 {
		r += p
	}
	return r
}
