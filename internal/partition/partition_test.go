package partition

import (
	"testing"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/decomp"
	"fortd/internal/parser"
)

func buildNode(t *testing.T, src, procName string) (*ast.Procedure, *acg.Node) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Nodes[procName]
	if n == nil {
		t.Fatalf("no node %s", procName)
	}
	return n.Proc, n
}

func blockDist(n, p int) *decomp.Dist {
	return decomp.MustDist(decomp.NewDecomp(decomp.Block), []int{n}, p)
}

func noDelayed(string) map[string]*Constraint { return nil }

// TestLocalLoopReduction: Figure 1's owner-computes rule reduces the
// local i loop.
func TestLocalLoopReduction(t *testing.T) {
	proc, node := buildNode(t, `
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
        X(i) = F(X(i+5))
      enddo
      END
`, "F1")
	dist := blockDist(100, 4)
	plan := Compute(proc, node, func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }, noDelayed, nil)
	if len(plan.Items) != 1 {
		t.Fatalf("items = %d", len(plan.Items))
	}
	item := plan.Items[0]
	if item.Loop == nil || item.Guard || item.DelayVar != "" {
		t.Fatalf("item = %+v, want loop reduction", item)
	}
	if len(plan.LoopBounds) != 1 {
		t.Fatalf("LoopBounds = %v", plan.LoopBounds)
	}
}

// TestDelayedConstraint: a formal-indexed distributed dimension delays
// the constraint to callers (F1$col's situation).
func TestDelayedConstraint(t *testing.T) {
	proc, node := buildNode(t, `
      SUBROUTINE F2(Z,i)
      REAL Z(100,100)
      do k = 1,95
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`, "F2")
	dist := decomp.MustDist(decomp.NewDecomp(decomp.Collapsed, decomp.Block), []int{100, 100}, 4)
	plan := Compute(proc, node, func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }, noDelayed, nil)
	item := plan.Items[0]
	if item.DelayVar != "i" {
		t.Fatalf("item = %+v, want delayed on i", item)
	}
	if _, ok := plan.Delayed["i"]; !ok {
		t.Fatalf("Delayed = %v", plan.Delayed)
	}
}

// TestScalarWorkBlocksReduction: a scalar assignment in the loop body
// means every processor needs every iteration — no bounds reduction.
func TestScalarWorkBlocksReduction(t *testing.T) {
	proc, node := buildNode(t, `
      SUBROUTINE S(X)
      REAL X(100)
      do i = 1,100
        s = s + 1.0
        X(i) = s
      enddo
      END
`, "S")
	dist := blockDist(100, 4)
	plan := Compute(proc, node, func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }, noDelayed, nil)
	if len(plan.LoopBounds) != 0 {
		t.Errorf("loop wrongly reduced: %v", plan.LoopBounds)
	}
	for _, item := range plan.Items {
		if item.C != nil && !item.Guard {
			t.Errorf("distributed item not guarded: %+v", item)
		}
	}
}

// TestMixedConstraintsForceGuards: two arrays with different
// distributions written in the same loop cannot share one reduction.
func TestMixedConstraintsForceGuards(t *testing.T) {
	proc, node := buildNode(t, `
      SUBROUTINE S(X,Y)
      REAL X(100), Y(100)
      do i = 1,100
        X(i) = 1.0
        Y(i) = 2.0
      enddo
      END
`, "S")
	xDist := blockDist(100, 4)
	yDist := decomp.MustDist(decomp.NewDecomp(decomp.Cyclic), []int{100}, 4)
	plan := Compute(proc, node, func(name string, _ ast.Stmt) (*decomp.Dist, bool) {
		if name == "X" {
			return xDist, true
		}
		return yDist, true
	}, noDelayed, nil)
	if len(plan.LoopBounds) != 0 {
		t.Errorf("conflicting constraints must not reduce: %v", plan.LoopBounds)
	}
	guards := 0
	for _, item := range plan.Items {
		if item.Guard {
			guards++
		}
	}
	if guards != 2 {
		t.Errorf("guards = %d, want 2", guards)
	}
}

// TestSameConstraintShares: two same-distribution writes share the
// reduction.
func TestSameConstraintShares(t *testing.T) {
	proc, node := buildNode(t, `
      SUBROUTINE S(X,Y)
      REAL X(100), Y(100)
      do i = 1,100
        X(i) = 1.0
        Y(i) = 2.0
      enddo
      END
`, "S")
	dist := blockDist(100, 4)
	plan := Compute(proc, node, func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }, noDelayed, nil)
	if len(plan.LoopBounds) != 1 {
		t.Errorf("shared constraint should reduce once: %v", plan.LoopBounds)
	}
}

// TestConstantSubscriptGuard: X(5) = ... has a single owner.
func TestConstantSubscriptGuard(t *testing.T) {
	proc, node := buildNode(t, `
      SUBROUTINE S(X)
      REAL X(100)
      X(5) = 1.0
      END
`, "S")
	dist := blockDist(100, 4)
	plan := Compute(proc, node, func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }, noDelayed, nil)
	if !plan.Items[0].Guard {
		t.Errorf("constant subscript must guard: %+v", plan.Items[0])
	}
}

// TestBoundExprsBlock reproduces the Figure 2 arithmetic: loop [1:95]
// over a 100-element block distribution on 4 processors becomes
// [my$p*25+1 : MIN(95,(my$p+1)*25)].
func TestBoundExprsBlock(t *testing.T) {
	c := &Constraint{Array: "X", Dist: blockDist(100, 4)}
	lo, hi, step, ok := BoundExprs(c, ast.Int(1), ast.Int(95), nil)
	if !ok {
		t.Fatal("block reduction failed")
	}
	if step != nil {
		t.Errorf("step = %v", step)
	}
	if lo.String() != "((my$p * 25) + 1)" {
		t.Errorf("lo = %s", lo)
	}
	if hi.String() != "MIN(95,((my$p + 1) * 25))" {
		t.Errorf("hi = %s", hi)
	}
	// evaluate per processor
	for p := 0; p < 4; p++ {
		env := ast.MapEnv{MyP: p}
		l := ast.MustInt(lo, env)
		h := ast.MustInt(hi, env)
		wantLo := p*25 + 1
		wantHi := (p + 1) * 25
		if wantHi > 95 {
			wantHi = 95
		}
		if l != wantLo || h != wantHi {
			t.Errorf("p%d: [%d:%d], want [%d:%d]", p, l, h, wantLo, wantHi)
		}
	}
}

// TestBoundExprsBlockWithOffset: subscript v+2 shifts the owned range.
func TestBoundExprsBlockWithOffset(t *testing.T) {
	c := &Constraint{Array: "X", Dist: blockDist(100, 4), Offset: 2}
	lo, hi, _, ok := BoundExprs(c, ast.Int(1), ast.Int(98), nil)
	if !ok {
		t.Fatal("reduction failed")
	}
	for p := 0; p < 4; p++ {
		env := ast.MapEnv{MyP: p}
		l := ast.MustInt(lo, env)
		h := ast.MustInt(hi, env)
		// every iteration v in [l:h] must have owner(v+2) == p
		for v := l; v <= h; v++ {
			if o := c.Dist.OwnerIndex(v + 2); o != p {
				t.Fatalf("p%d: iteration %d writes element %d owned by %d", p, v, v+2, o)
			}
		}
	}
}

// TestBoundExprsCyclic: the cyclic reduction strides by P from the
// first owned iteration.
func TestBoundExprsCyclic(t *testing.T) {
	c := &Constraint{Array: "X", Dist: decomp.MustDist(decomp.NewDecomp(decomp.Cyclic), []int{100}, 4)}
	lo, hi, step, ok := BoundExprs(c, ast.Int(1), ast.Int(100), nil)
	if !ok {
		t.Fatal("cyclic reduction failed")
	}
	if ast.MustInt(step, nil) != 4 {
		t.Errorf("step = %v", step)
	}
	for p := 0; p < 4; p++ {
		env := ast.MapEnv{MyP: p}
		if l := ast.MustInt(lo, env); l != p+1 {
			t.Errorf("p%d lo = %d, want %d", p, l, p+1)
		}
	}
	if ast.MustInt(hi, nil) != 100 {
		t.Errorf("hi = %v", hi)
	}
}

// TestBoundExprsCyclicSymbolicLo: dgefa's do j = k+1, n works through
// the first$ intrinsic.
func TestBoundExprsCyclicSymbolicLo(t *testing.T) {
	c := &Constraint{Array: "a", Dist: decomp.MustDist(decomp.NewDecomp(decomp.Collapsed, decomp.Cyclic), []int{64, 64}, 4)}
	lo, _, step, ok := BoundExprs(c, ast.Add(ast.Id("k"), ast.Int(1)), ast.Id("n"), nil)
	if !ok {
		t.Fatal("symbolic cyclic reduction failed")
	}
	if ast.MustInt(step, nil) != 4 {
		t.Errorf("step = %v", step)
	}
	// first$(my$p+1, k+1, 4): smallest x >= k+1 with x ≡ my$p+1 (mod 4)
	fc, okF := lo.(*ast.FuncCall)
	if !okF || fc.Name != "first$" {
		t.Fatalf("lo = %s, want first$ call", lo)
	}
}

// TestBoundExprsRejectsStride: non-unit source steps fall back.
func TestBoundExprsRejectsStride(t *testing.T) {
	c := &Constraint{Array: "X", Dist: blockDist(100, 4)}
	if _, _, _, ok := BoundExprs(c, ast.Int(2), ast.Int(99), ast.Int(2)); ok {
		t.Error("strided loop must not be reduced")
	}
}

// TestGuardAndOwnerExprs: the guard selects exactly the owner.
func TestGuardAndOwnerExprs(t *testing.T) {
	dists := []*decomp.Dist{
		blockDist(100, 4),
		decomp.MustDist(decomp.NewDecomp(decomp.Cyclic), []int{100}, 4),
		decomp.MustDist(decomp.NewDecomp(decomp.BlockCyclic(5)), []int{100}, 4),
	}
	for _, dist := range dists {
		owner := OwnerExpr(dist, ast.Id("i"))
		for i := 1; i <= 100; i++ {
			env := ast.MapEnv{"i": i}
			got, ok := ast.EvalInt(owner, env)
			if !ok {
				t.Fatalf("%s: owner expr not evaluable", dist.Key())
			}
			if want := dist.OwnerIndex(i); got != want {
				t.Errorf("%s: owner(%d) = %d, want %d", dist.Key(), i, got, want)
			}
		}
	}
}

// TestAnalyzeSub classifies subscripts.
func TestAnalyzeSub(t *testing.T) {
	cases := []struct {
		expr ast.Expr
		want SubPattern
	}{
		{ast.Id("i"), SubPattern{Var: "i", Coef: 1, OK: true}},
		{ast.Add(ast.Id("i"), ast.Int(5)), SubPattern{Var: "i", Coef: 1, Off: 5, OK: true}},
		{ast.Int(7), SubPattern{Off: 7, OK: true}},
		{ast.Mul(ast.Int(2), ast.Id("i")), SubPattern{Var: "i", Coef: 2, OK: true}},
	}
	for _, c := range cases {
		got := AnalyzeSub(c.expr, nil)
		if got != c.want {
			t.Errorf("AnalyzeSub(%s) = %+v, want %+v", c.expr, got, c.want)
		}
	}
}

// TestReductionRecognition: s = s + X(i) yields a reduction item with a
// reduced loop.
func TestReductionRecognition(t *testing.T) {
	proc, node := buildNode(t, `
      SUBROUTINE S(X)
      REAL X(100)
      s = 0.0
      do i = 1,100
        s = s + X(i)
      enddo
      X(1) = s
      END
`, "S")
	dist := blockDist(100, 4)
	plan := Compute(proc, node, func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }, noDelayed, nil)
	var red *Item
	for _, it := range plan.Items {
		if it.Red != nil {
			red = it
		}
	}
	if red == nil {
		t.Fatal("reduction not recognized")
	}
	if red.Red.Var != "s" || red.Red.Op != "+" {
		t.Errorf("reduction = %+v", red.Red)
	}
	if red.Loop == nil {
		t.Error("reduction loop not set")
	}
	if _, ok := plan.LoopBounds[red.Loop]; !ok {
		t.Error("reduction loop not bounds-reduced")
	}
}

// TestReductionVariants: all accepted syntactic shapes.
func TestReductionVariants(t *testing.T) {
	shapes := []string{
		"s = s + X(i)",
		"s = X(i) + s",
		"s = s - X(i)",
		"s = MAX(s, X(i))",
		"s = MIN(X(i), s)",
	}
	for _, shape := range shapes {
		src := `
      SUBROUTINE S(X)
      REAL X(100)
      do i = 1,100
        ` + shape + `
      enddo
      X(1) = s
      END
`
		proc, node := buildNode(t, src, "S")
		dist := blockDist(100, 4)
		plan := Compute(proc, node, func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }, noDelayed, nil)
		found := false
		for _, it := range plan.Items {
			if it.Red != nil {
				found = true
			}
		}
		if !found {
			t.Errorf("shape %q not recognized", shape)
		}
	}
}

// TestReductionRejections: shapes that must NOT be treated as
// reductions.
func TestReductionRejections(t *testing.T) {
	shapes := []string{
		"s = s * X(i)",         // not an accepted operator
		"s = X(i) - s",         // s negated each step
		"s = s + 1.0",          // nothing distributed
		"s = MAX(s, s + X(i))", // s inside the term
	}
	for _, shape := range shapes {
		src := `
      SUBROUTINE S(X)
      REAL X(100)
      do i = 1,100
        ` + shape + `
      enddo
      X(1) = s
      END
`
		proc, node := buildNode(t, src, "S")
		dist := blockDist(100, 4)
		plan := Compute(proc, node, func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }, noDelayed, nil)
		for _, it := range plan.Items {
			if it.Red != nil {
				t.Errorf("shape %q wrongly recognized", shape)
			}
		}
	}
}

// TestReductionDemotedByOtherWork: a conflicting statement in the loop
// reverts the reduction to replicated execution (not a guard).
func TestReductionDemotedByOtherWork(t *testing.T) {
	proc, node := buildNode(t, `
      SUBROUTINE S(X, Y)
      REAL X(100), Y(100)
      do i = 1,100
        s = s + X(i)
        Y(i+1) = s
      enddo
      END
`, "S")
	dist := blockDist(100, 4)
	plan := Compute(proc, node, func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }, noDelayed, nil)
	for _, it := range plan.Items {
		if it.Red != nil {
			t.Errorf("reduction must be demoted (accumulator escapes): %+v", it)
		}
		if _, isScalar := it.Stmt.Lhs.(*ast.Ident); isScalar && (it.Guard || it.C != nil) {
			t.Errorf("demoted reduction must be replicated, not guarded: %+v", it)
		}
	}
}

// TestGuardExprSelectsOwner: the generated guard is true on exactly the
// owning processor.
func TestGuardExprSelectsOwner(t *testing.T) {
	c := &Constraint{Array: "X", Dist: blockDist(100, 4), Offset: 3}
	g := GuardExpr(c, ast.Id("i"))
	for i := 1; i <= 97; i++ {
		owner := c.Dist.OwnerIndex(i + 3)
		for p := 0; p < 4; p++ {
			env := ast.MapEnv{"i": i, MyP: p}
			v, ok := ast.EvalInt(g, env)
			if !ok {
				t.Fatalf("guard not evaluable: %s", g)
			}
			want := 0
			if p == owner {
				want = 1
			}
			if v != want {
				t.Errorf("i=%d p=%d guard=%d want %d", i, p, v, want)
			}
		}
	}
}

// TestLocalLoHiExprs evaluate to the block bounds.
func TestLocalLoHiExprs(t *testing.T) {
	d := blockDist(100, 4)
	lo := LocalLoExpr(d)
	hi := LocalHiExpr(d)
	for p := 0; p < 4; p++ {
		env := ast.MapEnv{MyP: p}
		if v := ast.MustInt(lo, env); v != p*25+1 {
			t.Errorf("p%d lo = %d", p, v)
		}
		if v := ast.MustInt(hi, env); v != (p+1)*25 {
			t.Errorf("p%d hi = %d", p, v)
		}
	}
}
