package partition

import (
	"fortd/internal/ast"
	"fortd/internal/decomp"
)

// matchReduction recognizes the syntactic reduction forms
//
//	s = s + term      s = term + s      s = s - term
//	s = MAX(s, term)  s = MAX(term, s)  (and MIN)
//
// returning the accumulator name, the operation, and the term.
func matchReduction(st *ast.Assign) (string, string, ast.Expr, bool) {
	lhs, ok := st.Lhs.(*ast.Ident)
	if !ok {
		return "", "", nil, false
	}
	isS := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == lhs.Name
	}
	switch rhs := st.Rhs.(type) {
	case *ast.Binary:
		switch rhs.Op {
		case ast.OpAdd:
			if isS(rhs.X) {
				return lhs.Name, "+", rhs.Y, true
			}
			if isS(rhs.Y) {
				return lhs.Name, "+", rhs.X, true
			}
		case ast.OpSub:
			if isS(rhs.X) {
				return lhs.Name, "+", rhs.Y, true // s = s - term accumulates too
			}
		}
	case *ast.FuncCall:
		if (rhs.Name == "MAX" || rhs.Name == "MIN") && len(rhs.Args) == 2 {
			if isS(rhs.Args[0]) && !containsIdent(rhs.Args[1], lhs.Name) {
				return lhs.Name, rhs.Name, rhs.Args[1], true
			}
			if isS(rhs.Args[1]) && !containsIdent(rhs.Args[0], lhs.Name) {
				return lhs.Name, rhs.Name, rhs.Args[0], true
			}
		}
	}
	return "", "", nil, false
}

// analyzeReduction decides whether a matched reduction can be
// partitioned: every distributed reference in the term must be indexed
// by the same local loop variable in its distributed dimension (the
// first such reference supplies the ownership constraint), and the
// accumulator must not be referenced anywhere else in that loop.
func analyzeReduction(proc *ast.Procedure, st *ast.Assign, nest []*ast.Do, distOf DistOf, env ast.Env) *Item {
	name, op, term, ok := matchReduction(st)
	if !ok || len(nest) == 0 {
		return nil
	}
	var refs []*ast.ArrayRef
	collectRefs(term, &refs)
	var c *Constraint
	var loop *ast.Do
	var firstSub SubPattern
	var firstDist *decomp.Dist
	firstDim := 0
	for _, ref := range refs {
		dist, okD := distOf(ref.Name, st)
		if !okD || dist == nil || dist.IsReplicated() {
			continue
		}
		dim := dist.DistDim()
		if dim >= len(ref.Subs) {
			return nil
		}
		sub := AnalyzeSub(ref.Subs[dim], env)
		if !sub.OK || sub.Var == "" || sub.Coef != 1 {
			return nil
		}
		l := loopFor(nest, sub.Var)
		if l == nil {
			return nil // formal-indexed reductions are not delayed
		}
		if c == nil {
			c = &Constraint{Array: ref.Name, Dist: dist, Offset: sub.Off}
			loop = l
			firstSub = sub
			firstDist = dist
			firstDim = dim
			continue
		}
		if l != loop {
			return nil // mixed loops: give up
		}
	}
	if c == nil {
		return nil // nothing distributed in the term: leave replicated
	}
	// the accumulator must appear exactly twice in the loop (its own
	// lhs and rhs occurrence)
	uses := 0
	ast.WalkStmts(loop.Body, func(s ast.Stmt) bool {
		for _, e := range ast.StmtExprs(s) {
			uses += countIdent(e, name)
		}
		return true
	})
	if uses != 2 {
		return nil
	}
	return &Item{
		Stmt: st, Nest: append([]*ast.Do(nil), nest...),
		Dist: firstDist, DistDim: firstDim, Sub: firstSub,
		Loop: loop, C: c,
		Red: &Reduction{Var: name, Op: op},
	}
}

func collectRefs(e ast.Expr, out *[]*ast.ArrayRef) {
	switch x := e.(type) {
	case *ast.ArrayRef:
		*out = append(*out, x)
		for _, s := range x.Subs {
			collectRefs(s, out)
		}
	case *ast.FuncCall:
		for _, a := range x.Args {
			collectRefs(a, out)
		}
	case *ast.Binary:
		collectRefs(x.X, out)
		collectRefs(x.Y, out)
	case *ast.Unary:
		collectRefs(x.X, out)
	}
}

func containsIdent(e ast.Expr, name string) bool { return countIdent(e, name) > 0 }

func countIdent(e ast.Expr, name string) int {
	n := 0
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == name {
			n++
		}
	case *ast.ArrayRef:
		for _, s := range x.Subs {
			n += countIdent(s, name)
		}
	case *ast.FuncCall:
		for _, a := range x.Args {
			n += countIdent(a, name)
		}
	case *ast.Binary:
		n += countIdent(x.X, name) + countIdent(x.Y, name)
	case *ast.Unary:
		n += countIdent(x.X, name)
	}
	return n
}

// demoteReduction strips a reduction back to replicated execution.
func demoteReduction(it *Item) {
	it.Red = nil
	it.C = nil
	it.Loop = nil
	it.Guard = false
	it.Dist = nil
}
