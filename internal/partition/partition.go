// Package partition implements data and computation partitioning
// (§5.3, Figure 9). Given the reaching decomposition of every array, it
// derives each assignment's iteration set from the owner-computes rule
// and decides how the computation partition will be instantiated:
//
//   - reduce the bounds of a local loop when the distributed dimension
//     is indexed by that loop's variable;
//   - execute scalar assignments on every processor (replicated scalar
//     computation);
//   - introduce an explicit ownership guard when the constraint cannot
//     be absorbed by a local loop and statements disagree;
//   - delay the constraint to the callers when the distributed
//     dimension is indexed by a formal parameter (delayed instantiation,
//     the paper's key enabling technique).
package partition

import (
	"fmt"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/decomp"
	"fortd/internal/depend"
)

// SubPattern is the affine decomposition of a distributed-dimension
// subscript: Coef·Var + Off (Var == "" for constants).
type SubPattern struct {
	Var  string
	Coef int
	Off  int
	OK   bool // affine single-index form
}

// AnalyzeSub classifies one subscript expression.
func AnalyzeSub(e ast.Expr, env ast.Env) SubPattern {
	v, c, k, ok := depend.LinearSubscript(e, env)
	return SubPattern{Var: v, Coef: c, Off: k, OK: ok}
}

// Constraint is an ownership constraint produced by the owner-computes
// rule: values of a variable v are executed locally only when
// v + Offset lies in the local index set of Dist's distributed
// dimension on this processor.
type Constraint struct {
	Array  string // the array whose ownership induces the constraint
	Dist   *decomp.Dist
	Offset int
}

// Key gives a comparable identity for merging constraints.
func (c *Constraint) Key() string {
	return fmt.Sprintf("%s+%d@%s/p%d", c.Dist.Key(), c.Offset, c.Array, c.Dist.P)
}

// Equal reports whether two constraints select the same iterations.
func (c *Constraint) Equal(o *Constraint) bool {
	if c == nil || o == nil {
		return c == o
	}
	return c.Dist.Key() == o.Dist.Key() && c.Offset == o.Offset && c.Dist.P == o.Dist.P
}

// Reduction marks a recognized scalar reduction (s = s + term,
// s = MAX(s, term), ...): the loop is partitioned by the term's data,
// each processor accumulates a private partial, and a global combine
// follows the loop.
type Reduction struct {
	Var string // the accumulator scalar
	Op  string // "+", "MAX", "MIN"
}

// Item is the partitioning decision for one assignment statement.
type Item struct {
	Stmt *ast.Assign
	Nest []*ast.Do
	// Dist is nil for scalar or replicated-array assignments, which
	// every processor executes.
	Dist    *decomp.Dist
	DistDim int
	Sub     SubPattern
	// How the constraint is instantiated:
	// Loop != nil   → bounds of that local loop are reduced
	// DelayVar != "" → constraint delayed to callers via that variable
	// Guard        → explicit ownership guard around the statement
	Loop     *ast.Do
	DelayVar string
	Guard    bool
	C        *Constraint
	// Red is set for recognized reductions (then Loop carries the
	// partitioning and Guard/DelayVar stay unset).
	Red *Reduction
	// Why records the reason for a guard or demotion (static strings
	// only, so recording is allocation-free when remarks are disabled).
	Why string
}

// Demotion and guard reasons recorded on Item.Why / CallConstraint.Why.
const (
	WhyNonAffine     = "non-affine or non-unit-stride subscript in the distributed dimension"
	WhyConstIndex    = "constant distributed subscript: a single owner executes the statement"
	WhyUnboundVar    = "the partition variable is bound by neither a local loop nor a formal"
	WhyLoopConflict  = "conflicting ownership constraints reach the same loop"
	WhyDelayConflict = "conflicting delayed constraints reach the same formal"
	WhyMixedLoopWork = "the loop contains work under a different partition, so every iteration is needed"
	WhyDelayPartial  = "the delayed constraint does not cover all work in the procedure"
	WhyCommInLoop    = "communication placed inside the loop requires every processor to run all iterations"
	WhyActualUnnamed = "the actual argument is not a named array"
)

// CallConstraint is a delayed callee constraint applied at a call site.
type CallConstraint struct {
	Site *acg.CallSite
	// Formal is the callee variable the constraint is keyed to.
	Formal string
	// Actual is the caller-side expression bound to Formal.
	Actual ast.Expr
	// Loop != nil → reduce that caller loop's bounds
	// DelayVar != "" → re-delay to this procedure's callers
	// Guard → guard the call with an ownership test
	Loop     *ast.Do
	DelayVar string
	Guard    bool
	C        *Constraint
	// Why records the reason for a guard or demotion (static strings).
	Why string
}

// Plan is the complete computation-partitioning decision for one
// procedure.
type Plan struct {
	Proc  *ast.Procedure
	Items []*Item
	// LoopBounds lists local loops whose bounds are reduced, with the
	// constraint to apply.
	LoopBounds map[*ast.Do]*Constraint
	// CallCons records delayed constraints arriving from callees.
	CallCons []*CallConstraint
	// Delayed is the union of constraints this procedure passes to its
	// own callers, keyed by the formal/global variable name.
	Delayed map[string]*Constraint
}

// DistOf resolves an array's concrete distribution at a reference
// point; implemented by the driver using reaching decompositions. The
// at statement gives the program point (nil: procedure entry), so
// dynamic redistribution within a procedure resolves correctly.
type DistOf func(array string, at ast.Stmt) (*decomp.Dist, bool)

// DelayedOf returns the delayed constraints of an already-compiled
// callee, keyed by callee formal/global name.
type DelayedOf func(procName string) map[string]*Constraint

// Compute runs Figure 9's partitioning for proc.
//
// The visitNest walk mirrors the paper: the iteration set of each
// assignment is derived from the owner-computes rule on its left-hand
// side; the union of iteration sets instantiates local loop bounds;
// constraints on variables not bound by local loops are delayed.
func Compute(
	proc *ast.Procedure,
	node *acg.Node,
	distOf DistOf,
	delayedOf DelayedOf,
	env ast.Env,
) *Plan {
	plan := &Plan{
		Proc:       proc,
		LoopBounds: map[*ast.Do]*Constraint{},
		Delayed:    map[string]*Constraint{},
	}
	conflicted := map[*ast.Do]bool{}
	delayConflict := map[string]bool{}

	addLoopConstraint := func(loop *ast.Do, c *Constraint) bool {
		if cur, ok := plan.LoopBounds[loop]; ok {
			if !cur.Equal(c) {
				conflicted[loop] = true
				return false
			}
			return true
		}
		if conflicted[loop] {
			return false
		}
		plan.LoopBounds[loop] = c
		return true
	}
	addDelayed := func(v string, c *Constraint) bool {
		if cur, ok := plan.Delayed[v]; ok {
			if !cur.Equal(c) {
				delayConflict[v] = true
				delete(plan.Delayed, v)
				return false
			}
			return true
		}
		if delayConflict[v] {
			return false
		}
		plan.Delayed[v] = c
		return true
	}

	var nest []*ast.Do
	var walk func(body []ast.Stmt)
	walk = func(body []ast.Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *ast.Do:
				nest = append(nest, st)
				walk(st.Body)
				nest = nest[:len(nest)-1]
			case *ast.If:
				walk(st.Then)
				walk(st.Else)
			case *ast.Assign:
				if red := analyzeReduction(proc, st, nest, distOf, env); red != nil {
					plan.Items = append(plan.Items, red)
					continue
				}
				item := analyzeAssign(proc, st, nest, distOf, env)
				plan.Items = append(plan.Items, item)
			case *ast.Call:
				site := findSite(node, st)
				if site == nil {
					continue
				}
				for formal, c := range delayedOf(st.Name) {
					cc := translateCallConstraint(proc, site, formal, c, nest)
					if cc == nil {
						continue
					}
					plan.CallCons = append(plan.CallCons, cc)
				}
			}
		}
	}
	walk(proc.Body)

	// resolve each item's instantiation strategy
	for _, item := range plan.Items {
		if item.C == nil {
			continue
		}
		switch {
		case item.Loop != nil:
			if !addLoopConstraint(item.Loop, item.C) {
				demoteItem(item, WhyLoopConflict)
			}
		case item.DelayVar != "":
			if !addDelayed(item.DelayVar, item.C) {
				item.DelayVar = ""
				item.Guard = true
				item.Why = WhyDelayConflict
			}
		default:
			item.Guard = true
		}
	}
	for _, cc := range plan.CallCons {
		switch {
		case cc.Loop != nil:
			if !addLoopConstraint(cc.Loop, cc.C) {
				cc.Loop = nil
				cc.Guard = true
				cc.Why = WhyLoopConflict
			}
		case cc.DelayVar != "":
			if !addDelayed(cc.DelayVar, cc.C) {
				cc.DelayVar = ""
				cc.Guard = true
				cc.Why = WhyDelayConflict
			}
		}
	}
	// demote items/calls whose loop later became conflicted
	for _, item := range plan.Items {
		if item.Loop != nil && conflicted[item.Loop] {
			demoteItem(item, WhyLoopConflict)
		}
		if item.DelayVar != "" && delayConflict[item.DelayVar] {
			item.DelayVar = ""
			item.Guard = true
			item.Why = WhyDelayConflict
		}
	}
	for _, cc := range plan.CallCons {
		if cc.Loop != nil && conflicted[cc.Loop] {
			cc.Loop = nil
			cc.Guard = true
			cc.Why = WhyLoopConflict
		}
		if cc.DelayVar != "" && delayConflict[cc.DelayVar] {
			cc.DelayVar = ""
			cc.Guard = true
			cc.Why = WhyDelayConflict
		}
	}
	for loop := range conflicted {
		delete(plan.LoopBounds, loop)
	}
	plan.validateReductions()
	plan.validateDelays()
	return plan
}

// validateReductions enforces the union-of-iteration-sets rule: a
// loop's bounds may be reduced only when every unit of work nested in
// it (assignments and calls) carries exactly that loop's constraint.
// Anything else — a scalar assignment, a differently-partitioned
// statement, a call executing replicated work — needs all iterations,
// so the affected statements fall back to guards.
func (p *Plan) validateReductions() {
	itemOf := map[ast.Stmt]*Item{}
	for _, it := range p.Items {
		itemOf[it.Stmt] = it
	}
	ccsOf := map[ast.Stmt][]*CallConstraint{}
	for _, cc := range p.CallCons {
		ccsOf[cc.Site.Stmt] = append(ccsOf[cc.Site.Stmt], cc)
	}
	for loop := range p.LoopBounds {
		ok := true
		ast.WalkStmts(loop.Body, func(s ast.Stmt) bool {
			switch st := s.(type) {
			case *ast.Assign:
				it := itemOf[st]
				if it == nil || it.Loop != loop {
					ok = false
				}
			case *ast.Call:
				ccs := ccsOf[st]
				if len(ccs) == 0 {
					ok = false
				}
				for _, cc := range ccs {
					if cc.Loop != loop {
						ok = false
					}
				}
			}
			return true
		})
		if ok {
			continue
		}
		// demote everything tied to this loop to guards
		delete(p.LoopBounds, loop)
		for _, it := range p.Items {
			if it.Loop == loop {
				demoteItem(it, WhyMixedLoopWork)
			}
		}
		for _, cc := range p.CallCons {
			if cc.Loop == loop {
				cc.Loop = nil
				cc.Guard = true
				cc.Why = WhyMixedLoopWork
			}
		}
	}
}

// validateDelays keeps a delayed constraint only when it covers every
// unit of work in the procedure (the callee's "unioned iteration set"
// must be exactly that constraint for the caller to instantiate it by
// reducing a loop).
func (p *Plan) validateDelays() {
	for v := range p.Delayed {
		ok := true
		for _, it := range p.Items {
			if it.DelayVar != v {
				ok = false
			}
		}
		for _, cc := range p.CallCons {
			if cc.DelayVar != v {
				ok = false
			}
		}
		if ok {
			continue
		}
		delete(p.Delayed, v)
		for _, it := range p.Items {
			if it.DelayVar == v {
				it.DelayVar = ""
				it.Guard = true
				it.Why = WhyDelayPartial
			}
		}
		for _, cc := range p.CallCons {
			if cc.DelayVar == v {
				cc.DelayVar = ""
				cc.Guard = true
				cc.Why = WhyDelayPartial
			}
		}
	}
}

// DropLoopReduction removes a loop from the reduction set after the
// fact (used when communication placed inside the loop requires all
// processors to execute every iteration), demoting its statements to
// guards.
func (p *Plan) DropLoopReduction(loop *ast.Do) {
	if _, ok := p.LoopBounds[loop]; !ok {
		return
	}
	delete(p.LoopBounds, loop)
	for _, it := range p.Items {
		if it.Loop == loop {
			demoteItem(it, WhyCommInLoop)
		}
	}
	for _, cc := range p.CallCons {
		if cc.Loop == loop {
			cc.Loop = nil
			cc.Guard = true
			cc.Why = WhyCommInLoop
		}
	}
}

// demoteItem falls an item back from loop-bounds reduction: reductions
// revert to replicated execution, array assignments to guards.
func demoteItem(it *Item, why string) {
	it.Why = why
	if it.Red != nil {
		demoteReduction(it)
		return
	}
	it.Loop = nil
	it.Guard = true
}

// analyzeAssign applies the owner-computes rule to one assignment.
func analyzeAssign(proc *ast.Procedure, st *ast.Assign, nest []*ast.Do, distOf DistOf, env ast.Env) *Item {
	item := &Item{Stmt: st, Nest: append([]*ast.Do(nil), nest...)}
	lhs, ok := st.Lhs.(*ast.ArrayRef)
	if !ok {
		return item // scalar lhs: replicated execution
	}
	dist, ok := distOf(lhs.Name, st)
	if !ok || dist == nil || dist.IsReplicated() {
		return item
	}
	dim := dist.DistDim()
	if dim >= len(lhs.Subs) {
		return item
	}
	item.Dist = dist
	item.DistDim = dim
	item.Sub = AnalyzeSub(lhs.Subs[dim], env)
	if !item.Sub.OK || item.Sub.Coef > 1 || item.Sub.Coef < 0 {
		// non-unit coefficients fall back to a guard
		item.Guard = true
		item.Why = WhyNonAffine
		item.C = &Constraint{Array: lhs.Name, Dist: dist, Offset: 0}
		return item
	}
	item.C = &Constraint{Array: lhs.Name, Dist: dist, Offset: item.Sub.Off}
	switch {
	case item.Sub.Var == "":
		// constant index: single owner executes; explicit guard
		item.Guard = true
		item.Why = WhyConstIndex
	default:
		if loop := loopFor(nest, item.Sub.Var); loop != nil {
			item.Loop = loop
		} else if sym := proc.Symbols.Lookup(item.Sub.Var); sym != nil && (sym.IsFormal || sym.Common != "") {
			item.DelayVar = item.Sub.Var
		} else {
			item.Guard = true
			item.Why = WhyUnboundVar
		}
	}
	return item
}

// translateCallConstraint maps a callee's delayed constraint through a
// call site into the caller's context.
func translateCallConstraint(proc *ast.Procedure, site *acg.CallSite, formal string, c *Constraint, nest []*ast.Do) *CallConstraint {
	cc := &CallConstraint{Site: site, C: c, Formal: formal}
	var actual string
	for _, b := range site.Bindings {
		if b.Formal == formal {
			actual = b.ActualName
			cc.Actual = b.Actual
			break
		}
	}
	if actual == "" {
		cc.Guard = true
		cc.Why = WhyActualUnnamed
		return cc
	}
	if loop := loopFor(nest, actual); loop != nil {
		cc.Loop = loop
		return cc
	}
	if sym := proc.Symbols.Lookup(actual); sym != nil && (sym.IsFormal || sym.Common != "") && !proc.IsMain {
		cc.DelayVar = actual
		return cc
	}
	cc.Guard = true
	return cc
}

func loopFor(nest []*ast.Do, v string) *ast.Do {
	for i := len(nest) - 1; i >= 0; i-- {
		if nest[i].Var == v {
			return nest[i]
		}
	}
	return nil
}

func findSite(node *acg.Node, call *ast.Call) *acg.CallSite {
	if node == nil {
		return nil
	}
	for _, s := range node.Calls {
		if s.Stmt == call {
			return s
		}
	}
	return nil
}
