package partition

import (
	"fmt"
	"sort"

	"fortd/internal/explain"
)

// Explain emits the computation-partitioning decisions of one plan as
// optimization remarks: per assignment whether the owner-computes
// constraint reduced a loop's bounds, was delayed to callers, or fell
// back to an ownership guard (with the demotion reason), and per call
// site how arriving callee constraints were instantiated.
func Explain(ex *explain.Collector, procName string, plan *Plan) {
	if !ex.Enabled() {
		return
	}
	for _, it := range plan.Items {
		line := 0
		if it.Stmt != nil {
			line = it.Stmt.Pos().Line
		}
		switch {
		case it.Red != nil:
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "partition", Proc: procName, Line: line, Name: "reduction",
				Msg: fmt.Sprintf("recognized %s reduction into %s: loop %s partitioned by ownership of %s, global combine after the loop",
					it.Red.Op, it.Red.Var, it.Loop.Var, it.C.Array),
			})
		case it.Loop != nil:
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "partition", Proc: procName, Line: line, Name: "reduce-bounds",
				Msg: fmt.Sprintf("bounds of loop %s reduced to the local index set of %s (owner computes)",
					it.Loop.Var, it.C.Array),
			})
		case it.DelayVar != "":
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "partition", Proc: procName, Line: line, Name: "delay",
				Msg: fmt.Sprintf("ownership constraint on formal %s delayed to callers (delayed instantiation)",
					it.DelayVar),
			})
		case it.Guard:
			why := it.Why
			if why == "" {
				why = "the constraint cannot be absorbed by a local loop"
			}
			ex.Add(explain.Remark{
				Kind: explain.Missed, Pass: "partition", Proc: procName, Line: line, Name: "guard",
				Msg: fmt.Sprintf("ownership guard around assignment to %s: %s", it.C.Array, why),
			})
		case it.Why != "":
			// a reduction demoted all the way to replicated execution
			ex.Add(explain.Remark{
				Kind: explain.Missed, Pass: "partition", Proc: procName, Line: line, Name: "replicate",
				Msg: "statement executes replicated on every processor: " + it.Why,
			})
		}
	}
	for _, cc := range plan.CallCons {
		line := 0
		if cc.Site != nil && cc.Site.Stmt != nil {
			line = cc.Site.Stmt.Pos().Line
		}
		callee := ""
		if cc.Site != nil {
			callee = cc.Site.Callee.Name()
		}
		switch {
		case cc.Loop != nil:
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "partition", Proc: procName, Line: line, Name: "reduce-bounds",
				Msg: fmt.Sprintf("callee %s's delayed constraint on %s instantiated: bounds of loop %s reduced",
					callee, cc.Formal, cc.Loop.Var),
			})
		case cc.DelayVar != "":
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "partition", Proc: procName, Line: line, Name: "delay",
				Msg: fmt.Sprintf("callee %s's constraint on %s re-delayed to this procedure's callers via %s",
					callee, cc.Formal, cc.DelayVar),
			})
		case cc.Guard:
			why := cc.Why
			if why == "" {
				why = "the constraint cannot be absorbed by a caller loop"
			}
			ex.Add(explain.Remark{
				Kind: explain.Missed, Pass: "partition", Proc: procName, Line: line, Name: "guard",
				Msg: fmt.Sprintf("call to %s guarded by an ownership test on %s: %s", callee, cc.Formal, why),
			})
		}
	}
	if len(plan.Delayed) > 0 {
		vars := make([]string, 0, len(plan.Delayed))
		for v := range plan.Delayed {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			c := plan.Delayed[v]
			ex.Add(explain.Remark{
				Kind: explain.Note, Pass: "partition", Proc: procName, Name: "delayed-summary",
				Msg: fmt.Sprintf("exports delayed constraint %s ∈ local(%s %s) to its callers",
					v, c.Array, c.Dist.Key()),
			})
		}
	}
}
