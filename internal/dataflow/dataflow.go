// Package dataflow provides a generic iterative data-flow solver over
// control-flow graphs, plus the two classical instances the Fortran D
// compiler builds on: reaching definitions (used for reaching
// decompositions, §5.2) and live variables (used for live
// decompositions, §6.1).
package dataflow

import (
	"fortd/internal/cfg"
)

// Set is a set of definition/use identifiers.
type Set map[string]struct{}

// NewSet builds a set from its members.
func NewSet(members ...string) Set {
	s := make(Set, len(members))
	for _, m := range members {
		s[m] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s Set) Has(m string) bool {
	_, ok := s[m]
	return ok
}

// Clone copies the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for m := range s {
		out[m] = struct{}{}
	}
	return out
}

// Equal reports set equality.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for m := range s {
		if !o.Has(m) {
			return false
		}
	}
	return true
}

// Union adds all of o to s, reporting whether s changed.
func (s Set) Union(o Set) bool {
	changed := false
	for m := range o {
		if !s.Has(m) {
			s[m] = struct{}{}
			changed = true
		}
	}
	return changed
}

// Minus returns s \ o.
func (s Set) Minus(o Set) Set {
	out := make(Set)
	for m := range s {
		if !o.Has(m) {
			out[m] = struct{}{}
		}
	}
	return out
}

// Members returns the elements (unordered).
func (s Set) Members() []string {
	out := make([]string, 0, len(s))
	for m := range s {
		out = append(out, m)
	}
	return out
}

// Direction of propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// GenKill supplies per-node GEN and KILL sets for a union-meet
// bit-vector problem.
type GenKill interface {
	Gen(n *cfg.Node) Set
	Kill(n *cfg.Node) Set
}

// Result holds the fixed-point In/Out sets per node (indexed by node ID).
type Result struct {
	In  []Set
	Out []Set
}

// Solve runs the iterative worklist algorithm for a union-meet GEN/KILL
// problem in the given direction, with boundary the initial set at the
// entry (forward) or exit (backward).
func Solve(g *cfg.Graph, p GenKill, dir Direction, boundary Set) *Result {
	n := len(g.Nodes)
	res := &Result{In: make([]Set, n), Out: make([]Set, n)}
	for i := 0; i < n; i++ {
		res.In[i] = NewSet()
		res.Out[i] = NewSet()
	}
	if dir == Forward {
		res.In[g.Entry.ID] = boundary.Clone()
	} else {
		res.Out[g.Exit.ID] = boundary.Clone()
	}

	order := g.ReversePostorder()
	if dir == Backward {
		rev := make([]*cfg.Node, len(order))
		for i, nd := range order {
			rev[len(order)-1-i] = nd
		}
		order = rev
	}

	for changed := true; changed; {
		changed = false
		for _, nd := range order {
			if dir == Forward {
				in := res.In[nd.ID]
				if nd != g.Entry {
					in = NewSet()
					for _, pr := range nd.Preds {
						in.Union(res.Out[pr.ID])
					}
					res.In[nd.ID] = in
				}
				out := in.Minus(p.Kill(nd))
				out.Union(p.Gen(nd))
				if !out.Equal(res.Out[nd.ID]) {
					res.Out[nd.ID] = out
					changed = true
				}
			} else {
				out := res.Out[nd.ID]
				if nd != g.Exit {
					out = NewSet()
					for _, sc := range nd.Succs {
						out.Union(res.In[sc.ID])
					}
					res.Out[nd.ID] = out
				}
				in := out.Minus(p.Kill(nd))
				in.Union(p.Gen(nd))
				if !in.Equal(res.In[nd.ID]) {
					res.In[nd.ID] = in
					changed = true
				}
			}
		}
	}
	return res
}
