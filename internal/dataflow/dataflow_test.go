package dataflow

import (
	"testing"
	"testing/quick"

	"fortd/internal/ast"
	"fortd/internal/cfg"
	"fortd/internal/parser"
)

func TestSetOps(t *testing.T) {
	a := NewSet("x", "y")
	b := NewSet("y", "z")
	if !a.Has("x") || a.Has("z") {
		t.Error("membership")
	}
	c := a.Clone()
	if !c.Equal(a) {
		t.Error("clone not equal")
	}
	changed := c.Union(b)
	if !changed || len(c) != 3 {
		t.Errorf("union = %v", c.Members())
	}
	if c.Union(b) {
		t.Error("second union must not change")
	}
	d := a.Minus(b)
	if !d.Equal(NewSet("x")) {
		t.Errorf("minus = %v", d.Members())
	}
}

func TestSetUnionProperty(t *testing.T) {
	f := func(xs, ys []string) bool {
		a := NewSet(xs...)
		b := NewSet(ys...)
		u := a.Clone()
		u.Union(b)
		for m := range a {
			if !u.Has(m) {
				return false
			}
		}
		for m := range b {
			if !u.Has(m) {
				return false
			}
		}
		for m := range u {
			if !a.Has(m) && !b.Has(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// liveVars is a textbook live-variable problem over scalar names, used
// to exercise the backward solver.
type liveVars struct{}

func (liveVars) Gen(n *cfg.Node) Set {
	out := NewSet()
	if n.Stmt == nil {
		return out
	}
	collect := func(e ast.Expr) {
		if e == nil {
			return
		}
		var rec func(e ast.Expr)
		rec = func(e ast.Expr) {
			switch x := e.(type) {
			case *ast.Ident:
				out[x.Name] = struct{}{}
			case *ast.Binary:
				rec(x.X)
				rec(x.Y)
			case *ast.Unary:
				rec(x.X)
			case *ast.FuncCall:
				for _, a := range x.Args {
					rec(a)
				}
			case *ast.ArrayRef:
				for _, s := range x.Subs {
					rec(s)
				}
			}
		}
		rec(e)
	}
	switch st := n.Stmt.(type) {
	case *ast.Assign:
		collect(st.Rhs)
		if ar, ok := st.Lhs.(*ast.ArrayRef); ok {
			for _, s := range ar.Subs {
				collect(s)
			}
		}
	case *ast.If:
		collect(st.Cond)
	}
	if n.Kind == cfg.KindLoopHead && n.Loop != nil {
		collect(n.Loop.Lo)
		collect(n.Loop.Hi)
	}
	return out
}

func (liveVars) Kill(n *cfg.Node) Set {
	out := NewSet()
	if st, ok := n.Stmt.(*ast.Assign); ok {
		if id, ok := st.Lhs.(*ast.Ident); ok {
			out[id.Name] = struct{}{}
		}
	}
	return out
}

func TestBackwardLiveness(t *testing.T) {
	u, err := parser.ParseProcedure(`
      PROGRAM P
      a = 1
      b = a + 2
      c = 5
      d = b
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(u)
	res := Solve(g, liveVars{}, Backward, NewSet())
	// at entry nothing is live-in beyond uses: a is defined before use
	in := res.In[g.Entry.ID]
	if in.Has("a") || in.Has("b") {
		t.Errorf("entry live-in = %v", in.Members())
	}
	// after "a = 1", a is live (used by b = a + 2)
	var aNode *cfg.Node
	for _, n := range g.Nodes {
		if st, ok := n.Stmt.(*ast.Assign); ok {
			if id, ok := st.Lhs.(*ast.Ident); ok && id.Name == "a" {
				aNode = n
			}
		}
	}
	if !res.Out[aNode.ID].Has("a") {
		t.Errorf("a not live after its definition: %v", res.Out[aNode.ID].Members())
	}
	// c is dead everywhere (never used)
	for _, n := range g.Nodes {
		if res.In[n.ID].Has("c") {
			t.Errorf("c live at node %d", n.ID)
		}
	}
}

func TestLivenessThroughLoop(t *testing.T) {
	u, err := parser.ParseProcedure(`
      PROGRAM P
      s = 0
      do i = 1,10
        s = s + i
      enddo
      t = s
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(u)
	res := Solve(g, liveVars{}, Backward, NewSet())
	// s is live around the loop back edge
	var head *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindLoopHead {
			head = n
		}
	}
	if !res.In[head.ID].Has("s") {
		t.Errorf("s not live at loop head: %v", res.In[head.ID].Members())
	}
}

// reachingDefs exercises the forward direction: each assignment to a
// scalar generates its own ID and kills other defs of the same name.
type reachingDefs struct {
	defs map[*cfg.Node]string // node → def id
	byVr map[string]Set       // var → all def ids
}

func newReachingDefs(g *cfg.Graph) *reachingDefs {
	rd := &reachingDefs{defs: map[*cfg.Node]string{}, byVr: map[string]Set{}}
	for _, n := range g.Nodes {
		if st, ok := n.Stmt.(*ast.Assign); ok {
			if id, ok := st.Lhs.(*ast.Ident); ok {
				d := id.Name + "@" + itoa(n.ID)
				rd.defs[n] = d
				if rd.byVr[id.Name] == nil {
					rd.byVr[id.Name] = NewSet()
				}
				rd.byVr[id.Name][d] = struct{}{}
			}
		}
	}
	return rd
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func (rd *reachingDefs) Gen(n *cfg.Node) Set {
	if d, ok := rd.defs[n]; ok {
		return NewSet(d)
	}
	return NewSet()
}

func (rd *reachingDefs) Kill(n *cfg.Node) Set {
	if st, ok := n.Stmt.(*ast.Assign); ok {
		if id, ok := st.Lhs.(*ast.Ident); ok {
			all := rd.byVr[id.Name].Clone()
			delete(all, rd.defs[n])
			return all
		}
	}
	return NewSet()
}

func TestForwardReachingDefs(t *testing.T) {
	u, err := parser.ParseProcedure(`
      PROGRAM P
      x = 1
      if (c .gt. 0) then
        x = 2
      endif
      y = x
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(u)
	rd := newReachingDefs(g)
	res := Solve(g, rd, Forward, NewSet())
	// at "y = x" both defs of x reach
	var yNode *cfg.Node
	for _, n := range g.Nodes {
		if st, ok := n.Stmt.(*ast.Assign); ok {
			if id, ok := st.Lhs.(*ast.Ident); ok && id.Name == "y" {
				yNode = n
			}
		}
	}
	count := 0
	for d := range res.In[yNode.ID] {
		if d[0] == 'x' {
			count++
		}
	}
	if count != 2 {
		t.Errorf("defs of x reaching y = %d, want 2 (%v)", count, res.In[yNode.ID].Members())
	}
}
