package metrics

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildFixture populates a registry with one instance of every
// instrument shape the renderer supports, including label values that
// need escaping.
func buildFixture() *Registry {
	r := New()
	r.Counter("zz_last_total", "Sorted last by family name.").Add(3)
	c := r.CounterVec("fixture_requests_total", "Requests by route and status.", "route", "status")
	c.With("/compile", "200").Add(7)
	c.With("/compile", "429").Inc()
	c.With("/run", "200").Add(2)
	r.Gauge("fixture_queue_depth", "Requests waiting for a worker.").Set(4)
	r.GaugeFunc("fixture_saturation", "Busy workers over pool size.", func() float64 { return 0.25 })
	r.CounterFunc("fixture_cache_hits_total", "Cache hits by tier.", func() float64 { return 11 }, "tier", "memory")
	r.CounterFunc("fixture_cache_hits_total", "Cache hits by tier.", func() float64 { return 5 }, "tier", "disk")
	esc := r.CounterVec("fixture_escapes_total", `Help with a \ backslash`+"\nand a newline.", "path")
	esc.With(`C:\tmp` + "\n" + `"quoted"`).Inc()
	h := r.Histogram("fixture_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.02, 0.5, 2} {
		h.Observe(v)
	}
	return r
}

// TestGoldenText pins the full exposition rendering: family sorting,
// series sorting, escaping, and the cumulative histogram lines.
func TestGoldenText(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixture().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "render.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendering drifted from %s (-want +got):\n--- want\n%s\n--- got\n%s", golden, want, buf.Bytes())
	}
	// A second render of the unchanged registry must be byte-identical.
	var again bytes.Buffer
	reg := buildFixture()
	if err := reg.WriteText(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of identical registries differ")
	}
}

// TestParseRoundTrip feeds the golden rendering back through the
// parser and checks values, label unescaping and family types.
func TestParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixture().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Value("fixture_requests_total", "route", "/compile", "status", "200"); got != 7 {
		t.Errorf("requests{/compile,200} = %v, want 7", got)
	}
	if got := snap.Value("fixture_requests_total"); got != 10 {
		t.Errorf("sum requests = %v, want 10", got)
	}
	if got := snap.Value("fixture_cache_hits_total", "tier", "disk"); got != 5 {
		t.Errorf("disk hits = %v, want 5", got)
	}
	if got := snap.Value("fixture_escapes_total", "path", `C:\tmp`+"\n"+`"quoted"`); got != 1 {
		t.Errorf("escaped label did not round-trip: %+v", snap.Samples)
	}
	if got := snap.Value("fixture_latency_seconds_count"); got != 5 {
		t.Errorf("histogram count = %v, want 5", got)
	}
	if got := snap.Value("fixture_latency_seconds_bucket", "le", "+Inf"); got != 5 {
		t.Errorf("+Inf bucket = %v, want 5", got)
	}
	if typ := snap.Families["fixture_latency_seconds"]; typ != "histogram" {
		t.Errorf("family type = %q, want histogram", typ)
	}
	if len(snap.Families) != 7 {
		t.Errorf("family count = %d, want 7: %v", len(snap.Families), snap.Families)
	}
}

// TestHistogramBuckets pins the bucket-boundary semantics: le is
// inclusive, values past the last bound land only in +Inf, and the
// rendered buckets are cumulative.
func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", "", []float64{0.01, 0.1, 1})
	h.Observe(0.01) // exactly on a boundary: le="0.01" bucket
	h.Observe(0.1)  // exactly on a boundary: le="0.1" bucket
	h.Observe(1)    // exactly on the last bound: le="1", not +Inf
	h.Observe(5)    // above every bound: +Inf only
	h.Observe(0)    // below every bound: first bucket

	if got, want := h.Count(), uint64(5); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), 0.01+0.1+1+5+0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		le   string
		want float64
	}{
		{"0.01", 2}, // 0 and 0.01
		{"0.1", 3},  // + 0.1
		{"1", 4},    // + 1 (boundary value stays out of +Inf)
		{"+Inf", 5}, // + 5
	} {
		if got := snap.Value("h_seconds_bucket", "le", tc.le); got != tc.want {
			t.Errorf("bucket le=%s = %v, want %v\n%s", tc.le, got, tc.want, buf.String())
		}
	}
}

// TestNilRegistry exercises the whole disabled surface: a nil
// registry hands out nil instruments and rendering is a no-op.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	r.CounterVec("cv", "", "l").With("x").Inc()
	g := r.Gauge("g", "")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("h", "", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram accumulated")
	}
	r.GaugeFunc("gf", "", func() float64 { t.Error("fn called on nil registry"); return 0 })
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry rendered %q, err %v", buf.String(), err)
	}
}

// TestRegistryConcurrent hammers one registry from 8 goroutines —
// creating series, updating every instrument kind and rendering
// concurrently — and then checks the totals. Run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	cv := r.CounterVec("c_total", "", "worker")
	gv := r.GaugeVec("g", "", "worker")
	hv := r.HistogramVec("h_seconds", "", []float64{0.5}, "worker")
	shared := r.Counter("shared_total", "")
	r.GaugeFunc("sampled", "", func() float64 { return float64(shared.Value()) })

	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			worker := string(rune('a' + g))
			for i := 0; i < iters; i++ {
				cv.With(worker).Inc()
				gv.With(worker).Add(1)
				hv.With(worker).Observe(float64(i%2) * 0.75)
				shared.Inc()
				if i%500 == 0 {
					if err := r.WriteText(&bytes.Buffer{}); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if got, want := shared.Value(), uint64(goroutines*iters); got != want {
		t.Errorf("shared counter = %d, want %d", got, want)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Value("c_total"); got != goroutines*iters {
		t.Errorf("sum c_total = %v, want %d", got, goroutines*iters)
	}
	if got := snap.Value("g"); got != goroutines*iters {
		t.Errorf("sum g = %v, want %d", got, goroutines*iters)
	}
	if got := snap.Value("h_seconds_count"); got != goroutines*iters {
		t.Errorf("sum h count = %v, want %d", got, goroutines*iters)
	}
}

// TestRedefinitionPanics pins that schema drift is a loud programmer
// error, not silent data corruption.
func TestRedefinitionPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "")
	for _, redef := range []func(){
		func() { r.Gauge("x_total", "") },
		func() { r.CounterVec("x_total", "", "label") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("redefinition did not panic")
				}
			}()
			redef()
		}()
	}
}

// BenchmarkMetricsDisabled pins the nil-instrument fast path: with no
// registry configured the full instrumentation sequence of a request
// (three counters, a gauge and a histogram observation) must cost
// nothing but nil checks — the metrics analogue of the nil-sink trace
// contract.
func BenchmarkMetricsDisabled(b *testing.B) {
	var r *Registry
	c := r.CounterVec("c_total", "", "outcome").With("ok")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	shared := r.Counter("s_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		shared.Inc()
		shared.Add(2)
		g.Set(float64(i))
		h.Observe(float64(i) * 1e-6)
	}
}

// BenchmarkMetricsEnabled is the live-registry counterpart, for
// comparing the cost of real atomic updates against the disabled path.
func BenchmarkMetricsEnabled(b *testing.B) {
	r := New()
	c := r.CounterVec("c_total", "", "outcome").With("ok")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	shared := r.Counter("s_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		shared.Inc()
		shared.Add(2)
		g.Set(float64(i))
		h.Observe(float64(i) * 1e-6)
	}
}
