// Package metrics is a dependency-free, concurrency-safe metrics
// registry for the compile service: counters, gauges and fixed-bucket
// histograms, each optionally labelled, rendered in the Prometheus
// text exposition format (version 0.0.4).
//
// The design mirrors the repo's nil-sink trace contract: every
// instrument is usable through a nil pointer, and a nil *Registry
// hands out nil instruments, so code instruments unconditionally and
// pays only a nil check when no registry is configured (pinned by
// BenchmarkMetricsDisabled). All methods are safe for concurrent use;
// hot-path updates are single atomic operations and never take the
// registry lock.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// kind is a metric family's type.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// DefBuckets are the default latency histogram bounds in seconds,
// spanning sub-millisecond cache hits to multi-second simulated runs.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry holds metric families and renders them. Create with New;
// the zero value is NOT ready (use New so families is allocated). A
// nil *Registry is a valid disabled registry: every constructor
// returns a nil instrument whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric family: a type, a label schema, and a
// set of series keyed by their label values.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string
	bounds []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
}

// series is one (family, label values) time series. Exactly one of
// the value holders is live, matching the family kind; fn, when
// non-nil, is evaluated at render time instead (func-backed series).
type series struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// lookup returns the family for name, creating it on first use and
// panicking on a redefinition with a different type or label schema —
// that is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, k kind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, labels: labels, bounds: bounds, series: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.kind != k || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("metrics: %s redefined as %s%v (was %s%v)", name, k, labels, f.kind, f.labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("metrics: %s redefined with labels %v (was %v)", name, labels, f.labels))
		}
	}
	return f
}

// with returns the series for the given label values, creating it on
// first use via mk.
func (f *family) with(values []string, mk func() *series) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := join(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = mk()
		s.values = append([]string(nil), values...)
		f.series[key] = s
	}
	return s
}

// join builds a series map key from label values. \xff cannot appear
// in UTF-8 text, so the key is unambiguous.
func join(values []string) string {
	out := ""
	for i, v := range values {
		if i > 0 {
			out += "\xff"
		}
		out += v
	}
	return out
}

// --- Counter ---------------------------------------------------------------

// Counter is a monotonically increasing value. A nil Counter is a
// valid no-op instrument.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds n (n must be >= 0; counters only go up).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// CounterVec is a labelled counter family.
type CounterVec struct {
	f *family
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.with(values, func() *series { return &series{c: new(Counter)} }).c
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, counterKind, labels, nil)}
}

// CounterFunc registers a counter series whose value is read from fn
// at render time — for monotone counters another subsystem already
// maintains (e.g. the summary cache's hit counts). labelPairs
// alternates label names and values; repeated calls with the same
// name and distinct values add series to one family.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.registerFunc(name, help, counterKind, fn, labelPairs)
}

// --- Gauge -----------------------------------------------------------------

// Gauge is a value that can go up and down. A nil Gauge is a valid
// no-op instrument.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// GaugeVec is a labelled gauge family.
type GaugeVec struct {
	f *family
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.with(values, func() *series { return &series{g: new(Gauge)} }).g
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, gaugeKind, labels, nil)}
}

// GaugeFunc registers a gauge series sampled from fn at render time
// (queue depths, pool saturation, goroutine counts). See CounterFunc
// for labelPairs.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.registerFunc(name, help, gaugeKind, fn, labelPairs)
}

func (r *Registry) registerFunc(name, help string, k kind, fn func() float64, labelPairs []string) {
	if r == nil {
		return
	}
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd labelPairs %v", name, labelPairs))
	}
	labels := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		labels = append(labels, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	f := r.lookup(name, help, k, labels, nil)
	s := f.with(values, func() *series { return &series{} })
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// --- Histogram -------------------------------------------------------------

// Histogram counts observations into fixed cumulative buckets. A nil
// Histogram is a valid no-op instrument.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records v. An observation equal to a bucket's upper bound
// lands in that bucket (le is inclusive); one above every bound lands
// in the implicit +Inf bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct {
	f *family
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	f := v.f
	return f.with(values, func() *series { return &series{h: newHistogram(f.bounds)} }).h
}

// Histogram registers (or returns) an unlabelled histogram with the
// given upper bounds (nil: DefBuckets). Bounds must be sorted
// ascending; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.HistogramVec(name, help, bounds).With()
}

// HistogramVec registers (or returns) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s: bounds not strictly ascending at %g", name, bounds[i]))
		}
	}
	return &HistogramVec{f: r.lookup(name, help, histogramKind, labels, bounds)}
}
