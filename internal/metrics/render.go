package metrics

// Prometheus text exposition rendering (format version 0.0.4) and the
// matching parser used by scrapers in this repo (fdload -scrape, the
// daemon's /stats-vs-/metrics cross-check). Families render sorted by
// name and series sorted by label values, so repeated renders of an
// unchanged registry are byte-identical — goldenable.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type for the rendered text.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every family in the registry. A nil registry
// renders nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) {
	f.mu.Lock()
	ss := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		ss = append(ss, s)
	}
	f.mu.Unlock()
	sort.Slice(ss, func(i, j int) bool { return join(ss[i].values) < join(ss[j].values) })
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range ss {
		switch {
		case f.kind == histogramKind:
			f.writeHistogram(w, s)
		case s.fn != nil:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.values, "", 0), fmtFloat(s.fn()))
		case f.kind == counterKind:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.values, "", 0), s.c.Value())
		default:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.values, "", 0), fmtFloat(s.g.Value()))
		}
	}
}

func (f *family) writeHistogram(w *bufio.Writer, s *series) {
	h := s.h
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, "le", b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, "le", inf), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.values, "", 0), fmtFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.values, "", 0), cum)
}

// inf sentinels the +Inf bucket bound for labelString.
var inf = func() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }()

// labelString renders `{k="v",...}`, appending an le label when
// leName is non-empty; it renders "" for a label-free series.
func labelString(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(leName)
		sb.WriteString(`="`)
		if le == inf {
			sb.WriteString("+Inf")
		} else {
			sb.WriteString(fmtFloat(le))
		}
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// --- Parsing ---------------------------------------------------------------

// Sample is one parsed exposition line. Histograms appear as their
// component _bucket/_sum/_count samples.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Snapshot is a parsed scrape.
type Snapshot struct {
	Samples []Sample
	// Families is the set of `# TYPE`-declared family names.
	Families map[string]string // name -> type
}

// Value returns the single sample matching name and the given label
// pairs exactly-as-subset (every given pair must match; other labels
// are ignored), summing when several match.
func (s *Snapshot) Value(name string, labelPairs ...string) float64 {
	var sum float64
	for _, sm := range s.Samples {
		if sm.Name != name || !matches(sm.Labels, labelPairs) {
			continue
		}
		sum += sm.Value
	}
	return sum
}

func matches(labels map[string]string, pairs []string) bool {
	for i := 0; i+1 < len(pairs); i += 2 {
		if labels[pairs[i]] != pairs[i+1] {
			return false
		}
	}
	return true
}

// ParseText parses a text exposition scrape.
func ParseText(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Families: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if fields := strings.Fields(line); len(fields) >= 4 && fields[1] == "TYPE" {
				snap.Families[fields[2]] = fields[3]
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", ln, err)
		}
		snap.Samples = append(snap.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		esc := false
		inQuote := false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated labels in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(in string, out map[string]string) error {
	for len(in) > 0 {
		eq := strings.Index(in, "=")
		if eq < 0 || eq+1 >= len(in) || in[eq+1] != '"' {
			return fmt.Errorf("bad label segment %q", in)
		}
		name := strings.TrimSpace(in[:eq])
		var val strings.Builder
		i := eq + 2
		for ; i < len(in); i++ {
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(in[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(in) {
			return fmt.Errorf("unterminated label value in %q", in)
		}
		out[name] = val.String()
		in = in[i+1:]
		in = strings.TrimPrefix(in, ",")
	}
	return nil
}
