package lexer

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	toks, err := Tokenize("X(i) = F(X(i+5))")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, LPAREN, IDENT, RPAREN, EQUALS, IDENT, LPAREN, IDENT, LPAREN, IDENT, PLUS, INT, RPAREN, RPAREN, NEWLINE, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDollarIdentifiers(t *testing.T) {
	toks, err := Tokenize("my$p = n$proc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "my$p" || toks[2].Text != "n$proc" {
		t.Errorf("tokens = %v %v", toks[0].Text, toks[2].Text)
	}
}

func TestRelationalOperators(t *testing.T) {
	toks, err := Tokenize("a .GT. b .AND. c .le. d .NE. e")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.Kind == RELOP {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"GT", "AND", "LE", "NE"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %s, want %s", i, ops[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("x = 42 + 3.5 + 1e3 + 2.5e-2 + 1d0 + .5")
	if err != nil {
		t.Fatal(err)
	}
	var ints []int
	var reals []float64
	for _, tk := range toks {
		switch tk.Kind {
		case INT:
			ints = append(ints, tk.Int)
		case REAL:
			reals = append(reals, tk.Value)
		}
	}
	if len(ints) != 1 || ints[0] != 42 {
		t.Errorf("ints = %v", ints)
	}
	wantReals := []float64{3.5, 1000, 0.025, 1, 0.5}
	if len(reals) != len(wantReals) {
		t.Fatalf("reals = %v", reals)
	}
	for i := range wantReals {
		if reals[i] != wantReals[i] {
			t.Errorf("real %d = %v, want %v", i, reals[i], wantReals[i])
		}
	}
}

func TestPowerOperator(t *testing.T) {
	toks, err := Tokenize("x = a ** 2 * b")
	if err != nil {
		t.Fatal(err)
	}
	hasPow, stars := false, 0
	for _, tk := range toks {
		if tk.Kind == POW {
			hasPow = true
		}
		if tk.Kind == STAR {
			stars++
		}
	}
	if !hasPow || stars != 1 {
		t.Errorf("pow=%v stars=%d", hasPow, stars)
	}
}

func TestCommentsSkipped(t *testing.T) {
	src := `
! full line comment
c     old-style comment
      x = 1  ! trailing comment
* asterisk comment
      y = 2
`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	idents := 0
	for _, tk := range toks {
		if tk.Kind == IDENT {
			idents++
		}
	}
	if idents != 2 {
		t.Errorf("idents = %d, want 2 (x and y)", idents)
	}
}

func TestBlankLinesNoTokens(t *testing.T) {
	toks, err := Tokenize("\n\n   \n")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Kind != EOF {
		t.Errorf("tokens = %v", toks)
	}
}

func TestLineNumbers(t *testing.T) {
	toks, err := Tokenize("a = 1\n\nb = 2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 {
		t.Errorf("a at line %d", toks[0].Line)
	}
	var bLine int
	for _, tk := range toks {
		if tk.Kind == IDENT && tk.Text == "b" {
			bLine = tk.Line
		}
	}
	if bLine != 3 {
		t.Errorf("b at line %d, want 3", bLine)
	}
}

func TestLogicalLiterals(t *testing.T) {
	toks, err := Tokenize("x = .TRUE.\ny = .FALSE.")
	if err != nil {
		t.Fatal(err)
	}
	var vals []int
	for _, tk := range toks {
		if tk.Kind == INT {
			vals = append(vals, tk.Int)
		}
	}
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 0 {
		t.Errorf("vals = %v", vals)
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{
		"x = 'unterminated",
		"x = .BADOP. y",
		"x = a .GT b", // unterminated dotted op
		"x = #",
	} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestColonAndSlash(t *testing.T) {
	toks, err := Tokenize("DISTRIBUTE X(BLOCK,:)\nCOMMON /blk/ G")
	if err != nil {
		t.Fatal(err)
	}
	hasColon, slashes := false, 0
	for _, tk := range toks {
		if tk.Kind == COLON {
			hasColon = true
		}
		if tk.Kind == SLASH {
			slashes++
		}
	}
	if !hasColon || slashes != 2 {
		t.Errorf("colon=%v slashes=%d", hasColon, slashes)
	}
}
