// Package lexer tokenizes the Fortran 77 / Fortran D subset. Input is
// free-form (column rules relaxed): one statement per line, '!' or 'c '
// comments, case-insensitive keywords, and identifiers that may contain
// '$' (the compiler's own generated names use my$p, ub$1, F1$row, ...).
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind int

const (
	EOF Kind = iota
	NEWLINE
	IDENT
	INT
	REAL
	STRING
	// punctuation
	LPAREN
	RPAREN
	COMMA
	COLON
	EQUALS
	PLUS
	MINUS
	STAR
	SLASH
	POW // **
	// relational / logical (from .EQ. style words)
	RELOP // value holds the operator text: EQ NE LT LE GT GE AND OR NOT
)

// Token is one lexical unit.
type Token struct {
	Kind  Kind
	Text  string
	Line  int
	Value float64 // for REAL
	Int   int     // for INT
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "<eof>"
	case NEWLINE:
		return "<nl>"
	default:
		return t.Text
	}
}

// Lexer scans source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	toks []Token
}

// New prepares a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1}
}

// Tokenize scans the entire input, returning the token stream terminated
// by EOF. Blank and comment lines produce no tokens; statement ends are
// marked with NEWLINE.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	return lx.run()
}

func (lx *Lexer) run() ([]Token, error) {
	lines := strings.Split(lx.src, "\n")
	for i, raw := range lines {
		lx.line = i + 1
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		lower := strings.ToLower(trimmed)
		if strings.HasPrefix(trimmed, "!") || strings.HasPrefix(trimmed, "*") ||
			lower == "c" || strings.HasPrefix(lower, "c ") {
			continue
		}
		// strip trailing comment
		if idx := strings.IndexByte(trimmed, '!'); idx >= 0 {
			trimmed = strings.TrimSpace(trimmed[:idx])
			if trimmed == "" {
				continue
			}
		}
		// optional statement label like "S1" used in the paper's figures:
		// a token "s<digits>" followed by whitespace then more text is
		// treated as a label and dropped.
		if err := lx.scanLine(trimmed); err != nil {
			return nil, err
		}
		lx.emit(Token{Kind: NEWLINE, Line: lx.line})
	}
	lx.emit(Token{Kind: EOF, Line: lx.line})
	return lx.toks, nil
}

func (lx *Lexer) emit(t Token) { lx.toks = append(lx.toks, t) }

func (lx *Lexer) scanLine(s string) error {
	i := 0
	n := len(s)
	for i < n {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(':
			lx.emit(Token{Kind: LPAREN, Text: "(", Line: lx.line})
			i++
		case c == ')':
			lx.emit(Token{Kind: RPAREN, Text: ")", Line: lx.line})
			i++
		case c == ',':
			lx.emit(Token{Kind: COMMA, Text: ",", Line: lx.line})
			i++
		case c == ':':
			lx.emit(Token{Kind: COLON, Text: ":", Line: lx.line})
			i++
		case c == '=':
			lx.emit(Token{Kind: EQUALS, Text: "=", Line: lx.line})
			i++
		case c == '+':
			lx.emit(Token{Kind: PLUS, Text: "+", Line: lx.line})
			i++
		case c == '-':
			lx.emit(Token{Kind: MINUS, Text: "-", Line: lx.line})
			i++
		case c == '*':
			if i+1 < n && s[i+1] == '*' {
				lx.emit(Token{Kind: POW, Text: "**", Line: lx.line})
				i += 2
			} else {
				lx.emit(Token{Kind: STAR, Text: "*", Line: lx.line})
				i++
			}
		case c == '/':
			lx.emit(Token{Kind: SLASH, Text: "/", Line: lx.line})
			i++
		case c == '.':
			// .EQ. .NE. .LT. .LE. .GT. .GE. .AND. .OR. .NOT. .TRUE. .FALSE.
			// or a real literal like .5
			if i+1 < n && isDigit(s[i+1]) {
				j := i + 1
				for j < n && isDigit(s[j]) {
					j++
				}
				txt := s[i:j]
				var v float64
				fmt.Sscanf(txt, "%g", &v)
				lx.emit(Token{Kind: REAL, Text: txt, Value: v, Line: lx.line})
				i = j
				break
			}
			j := strings.IndexByte(s[i+1:], '.')
			if j < 0 {
				return fmt.Errorf("line %d: unterminated dotted operator", lx.line)
			}
			word := strings.ToUpper(s[i+1 : i+1+j])
			switch word {
			case "EQ", "NE", "LT", "LE", "GT", "GE", "AND", "OR", "NOT":
				lx.emit(Token{Kind: RELOP, Text: word, Line: lx.line})
			case "TRUE":
				lx.emit(Token{Kind: INT, Text: "1", Int: 1, Line: lx.line})
			case "FALSE":
				lx.emit(Token{Kind: INT, Text: "0", Int: 0, Line: lx.line})
			default:
				return fmt.Errorf("line %d: unknown operator .%s.", lx.line, word)
			}
			i += j + 2
		case isDigit(c):
			j := i
			for j < n && isDigit(s[j]) {
				j++
			}
			isReal := false
			if j < n && s[j] == '.' {
				// not a dotted operator: digit '.' requires digit or non-letter after
				if j+1 >= n || !unicode.IsLetter(rune(s[j+1])) {
					isReal = true
					j++
					for j < n && isDigit(s[j]) {
						j++
					}
				}
			}
			if j < n && (s[j] == 'e' || s[j] == 'E' || s[j] == 'd' || s[j] == 'D') &&
				j+1 < n && (isDigit(s[j+1]) || s[j+1] == '+' || s[j+1] == '-') {
				isReal = true
				j++
				if s[j] == '+' || s[j] == '-' {
					j++
				}
				for j < n && isDigit(s[j]) {
					j++
				}
			}
			txt := s[i:j]
			if isReal {
				var v float64
				fmt.Sscanf(strings.Map(expToE, txt), "%g", &v)
				lx.emit(Token{Kind: REAL, Text: txt, Value: v, Line: lx.line})
			} else {
				var v int
				fmt.Sscanf(txt, "%d", &v)
				lx.emit(Token{Kind: INT, Text: txt, Int: v, Line: lx.line})
			}
			i = j
		case c == '\'':
			j := strings.IndexByte(s[i+1:], '\'')
			if j < 0 {
				return fmt.Errorf("line %d: unterminated string", lx.line)
			}
			lx.emit(Token{Kind: STRING, Text: s[i+1 : i+1+j], Line: lx.line})
			i += j + 2
		case unicode.IsLetter(rune(c)) || c == '_' || c == '$':
			j := i
			for j < n && (unicode.IsLetter(rune(s[j])) || isDigit(s[j]) || s[j] == '_' || s[j] == '$') {
				j++
			}
			lx.emit(Token{Kind: IDENT, Text: s[i:j], Line: lx.line})
			i = j
		default:
			return fmt.Errorf("line %d: unexpected character %q", lx.line, c)
		}
	}
	return nil
}

func expToE(r rune) rune {
	if r == 'd' || r == 'D' {
		return 'e'
	}
	return r
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
