// Package symconst implements interprocedural constant propagation for
// formal parameters (the "symbolics & constants" analysis of Table 1,
// in the ParaScope tradition): a scalar formal is a known compile-time
// constant inside a procedure when every call site passes the same
// constant value and the procedure never assigns the formal. Solutions
// propagate top-down over the acyclic call graph, so constants flow
// through chains of calls (main → dgefa → daxpy).
package symconst

import (
	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/sideeffect"
)

// Result maps each procedure to the constant environment valid inside
// it: its own PARAMETER constants plus any formals pinned by callers.
type Result map[string]ast.MapEnv

// Env returns the environment for a procedure (nil-safe).
func (r Result) Env(proc string) ast.Env {
	if e, ok := r[proc]; ok {
		return e
	}
	return ast.MapEnv{}
}

// Compute runs the top-down propagation.
func Compute(g *acg.Graph) Result {
	se := sideeffect.Compute(g)
	res := Result{}
	// seed with local PARAMETER constants
	for _, n := range g.TopoOrder() {
		env := ast.MapEnv{}
		for _, s := range n.Proc.Symbols.Symbols() {
			if s.Kind == ast.SymConstant {
				env[s.Name] = s.ConstValue
			}
		}
		res[n.Proc.Name] = env
	}
	for _, n := range g.TopoOrder() {
		proc := n.Proc
		if len(n.Callers) == 0 || proc.IsMain {
			continue
		}
		assigned := assignedScalars(proc)
		// interprocedural GMOD catches writes through callees precisely
		if sum := se.Summaries[proc.Name]; sum != nil {
			for name := range sum.Mod {
				assigned[name] = true
			}
		}
		env := res[proc.Name]
		for i, formal := range proc.Params {
			if _, isParam := env[formal]; isParam {
				continue // PARAMETER shadows (should not happen)
			}
			sym := proc.Symbols.Lookup(formal)
			if sym == nil || sym.Kind != ast.SymScalar || assigned[formal] {
				continue
			}
			val, ok := commonConstant(n, i, res)
			if ok {
				env[formal] = val
			}
		}
	}
	return res
}

// commonConstant evaluates the i-th actual at every call site of n
// under the caller's (already-solved) environment and reports the
// single shared constant, if any.
func commonConstant(n *acg.Node, i int, res Result) (int, bool) {
	have := false
	val := 0
	for _, site := range n.Callers {
		if i >= len(site.Bindings) {
			return 0, false
		}
		callerEnv := res[site.Caller.Proc.Name]
		v, ok := ast.EvalInt(site.Bindings[i].Actual, callerEnv)
		if !ok {
			return 0, false
		}
		if have && v != val {
			return 0, false
		}
		have = true
		val = v
	}
	return val, have
}

// assignedScalars collects the scalars a procedure writes directly
// (assignments and loop indices); writes through callees are added
// from the interprocedural GMOD summary by the caller of this helper.
func assignedScalars(proc *ast.Procedure) map[string]bool {
	out := map[string]bool{}
	ast.WalkStmts(proc.Body, func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.Assign:
			if id, ok := st.Lhs.(*ast.Ident); ok {
				out[id.Name] = true
			}
		case *ast.Do:
			out[st.Var] = true
		}
		return true
	})
	return out
}
