package symconst

import (
	"testing"

	"fortd/internal/acg"
	"fortd/internal/parser"
)

func compute(t *testing.T, src string) Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	return Compute(g)
}

// TestConstantFlowsThroughChain: main → dgefa → daxpy, the matrix
// order n pinned at 128 everywhere.
func TestConstantFlowsThroughChain(t *testing.T) {
	r := compute(t, `
      PROGRAM MAIN
      REAL a(128,128)
      call dgefa(a, 128)
      END
      SUBROUTINE dgefa(a, n)
      REAL a(128,128)
      do k = 1, n-1
        call daxpy(a, n, k)
      enddo
      END
      SUBROUTINE daxpy(a, n, k)
      REAL a(128,128)
      do i = k+1, n
        a(i,k) = a(i,k) * 2.0
      enddo
      END
`)
	if v, ok := r["dgefa"].Value("n"); !ok || v != 128 {
		t.Errorf("dgefa n = %v,%v want 128", v, ok)
	}
	if v, ok := r["daxpy"].Value("n"); !ok || v != 128 {
		t.Errorf("daxpy n = %v,%v want 128", v, ok)
	}
	// k varies per call (loop variable): not constant
	if _, ok := r["daxpy"].Value("k"); ok {
		t.Error("loop-varying k must not be constant")
	}
}

// TestDisagreeingSitesNotConstant: different constants at different
// sites block the propagation.
func TestDisagreeingSitesNotConstant(t *testing.T) {
	r := compute(t, `
      PROGRAM P
      REAL a(10)
      call s(a, 5)
      call s(a, 7)
      END
      SUBROUTINE s(a, n)
      REAL a(10)
      a(1) = n
      END
`)
	if _, ok := r["s"].Value("n"); ok {
		t.Error("disagreeing call sites must not pin n")
	}
}

// TestAssignedFormalNotConstant: a formal the callee writes is not a
// constant even when every site agrees.
func TestAssignedFormalNotConstant(t *testing.T) {
	r := compute(t, `
      PROGRAM P
      REAL a(10)
      call s(a, 5)
      END
      SUBROUTINE s(a, n)
      REAL a(10)
      n = n + 1
      a(1) = n
      END
`)
	if _, ok := r["s"].Value("n"); ok {
		t.Error("assigned formal must not be constant")
	}
}

// TestWriteThroughCalleeDetected: n passed by reference to a callee
// that modifies it is not constant in the middle procedure.
func TestWriteThroughCalleeDetected(t *testing.T) {
	r := compute(t, `
      PROGRAM P
      REAL a(10)
      call mid(a, 5)
      END
      SUBROUTINE mid(a, n)
      REAL a(10)
      call bump(n)
      a(1) = n
      END
      SUBROUTINE bump(x)
      x = x + 1
      END
`)
	if _, ok := r["mid"].Value("n"); ok {
		t.Error("write through callee must block constancy")
	}
}

// TestParameterExpressionsEvaluate: actuals built from PARAMETER
// constants propagate.
func TestParameterExpressionsEvaluate(t *testing.T) {
	r := compute(t, `
      PROGRAM P
      PARAMETER (m = 20)
      REAL a(40)
      call s(a, m * 2)
      END
      SUBROUTINE s(a, n)
      REAL a(40)
      a(1) = n
      END
`)
	if v, ok := r["s"].Value("n"); !ok || v != 40 {
		t.Errorf("s n = %v,%v want 40", v, ok)
	}
}
