package codegen

import (
	"fortd/internal/ast"
	"fortd/internal/decomp"
	"fortd/internal/partition"
)

// GenerateRuntime rewrites a procedure with run-time resolution
// (Figure 3): every assignment to a distributed array is guarded by an
// ownership test evaluated per iteration, and every potentially
// nonlocal right-hand-side reference sends one element-message from its
// owner to the computing processor. This is the baseline the paper's
// interprocedural compilation avoids.
func GenerateRuntime(proc *ast.Procedure, distOf partition.DistOf, entryDists map[string]*decomp.Dist, p int) (*Result, error) {
	res := &Result{}
	body, err := runtimeBody(proc, distOf, p, proc.Body, res)
	if err != nil {
		return nil, err
	}
	// Fortran D scoping: dynamic redistribution inside a procedure is
	// undone on return — restore each redistributed array to its entry
	// distribution
	if !proc.IsMain {
		redistributed := map[string]bool{}
		ast.WalkStmts(proc.Body, func(s ast.Stmt) bool {
			if d, ok := s.(*ast.Distribute); ok {
				if sym := proc.Symbols.Lookup(d.Target); sym != nil && sym.Kind == ast.SymArray {
					redistributed[d.Target] = true
				}
			}
			return true
		})
		for arr := range redistributed {
			entry := entryDists[arr]
			if entry == nil || len(entry.Specs) == 0 {
				continue
			}
			body = append(body, &ast.Remap{Array: arr, To: append([]ast.DistSpec(nil), entry.Specs...)})
			res.RemapsInserted++
		}
	}
	prologue := []ast.Stmt{&ast.Assign{
		Lhs: ast.Id(partition.MyP),
		Rhs: &ast.FuncCall{Name: "myproc"},
	}}
	res.Body = append(prologue, body...)
	return res, nil
}

func runtimeBody(proc *ast.Procedure, distOf partition.DistOf, p int, body []ast.Stmt, res *Result) ([]ast.Stmt, error) {
	var out []ast.Stmt
	for _, s := range body {
		switch st := s.(type) {
		case *ast.Decomposition, *ast.Align:
			// directives: decomposition state is static per procedure
			// under run-time resolution as well
		case *ast.Distribute:
			sym := proc.Symbols.Lookup(st.Target)
			if sym != nil && sym.Kind == ast.SymArray {
				rm := &ast.Remap{Array: st.Target, To: append([]ast.DistSpec(nil), st.Specs...)}
				rm.Position = st.Pos()
				out = append(out, rm)
				res.RemapsInserted++
			}
		case *ast.Do:
			// distributed reads in the bounds resolve before the loop
			out = append(out, resolveReads(distOf, st, res, st.Lo, st.Hi, st.Step)...)
			nl := &ast.Do{Var: st.Var, Lo: ast.CloneExpr(st.Lo), Hi: ast.CloneExpr(st.Hi)}
			if st.Step != nil {
				nl.Step = ast.CloneExpr(st.Step)
			}
			inner, err := runtimeBody(proc, distOf, p, st.Body, res)
			if err != nil {
				return nil, err
			}
			nl.Body = inner
			out = append(out, nl)
		case *ast.If:
			// every processor must take the same branch: distributed
			// reads in the condition are broadcast from their owners
			out = append(out, resolveReads(distOf, st, res, st.Cond)...)
			ni := &ast.If{Cond: ast.CloneExpr(st.Cond)}
			thenB, err := runtimeBody(proc, distOf, p, st.Then, res)
			if err != nil {
				return nil, err
			}
			elseB, err := runtimeBody(proc, distOf, p, st.Else, res)
			if err != nil {
				return nil, err
			}
			ni.Then, ni.Else = thenB, elseB
			out = append(out, ni)
		case *ast.Assign:
			stmts, err := runtimeAssign(proc, distOf, st, res)
			if err != nil {
				return nil, err
			}
			out = append(out, stmts...)
		default:
			out = append(out, ast.CloneStmt(s))
		}
	}
	return out, nil
}

// ownerOf returns the owner expression of a reference's distributed
// element, or nil when the array is replicated (owned everywhere).
func ownerOf(distOf partition.DistOf, ref *ast.ArrayRef, at ast.Stmt) (ast.Expr, *decomp.Dist) {
	dist, ok := distOf(ref.Name, at)
	if !ok || dist == nil || dist.IsReplicated() {
		return nil, nil
	}
	dim := dist.DistDim()
	if dim >= len(ref.Subs) {
		return nil, nil
	}
	return partition.OwnerExpr(dist, ast.CloneExpr(ref.Subs[dim])), dist
}

// resolveReads emits one element broadcast per distributed array
// reference in the given expressions (deduplicated), making the values
// available on every processor.
func resolveReads(distOf partition.DistOf, at ast.Stmt, res *Result, exprs ...ast.Expr) []ast.Stmt {
	var out []ast.Stmt
	seen := map[string]bool{}
	var rec func(e ast.Expr)
	rec = func(e ast.Expr) {
		switch x := e.(type) {
		case nil:
		case *ast.ArrayRef:
			for _, sub := range x.Subs {
				rec(sub)
			}
			owner, _ := ownerOf(distOf, x, at)
			if owner == nil {
				return
			}
			key := x.String()
			if seen[key] {
				return
			}
			seen[key] = true
			sec := make([]ast.SecDim, len(x.Subs))
			for d, sub := range x.Subs {
				sec[d] = ast.SecDim{Lo: ast.CloneExpr(sub), Hi: ast.CloneExpr(sub)}
			}
			bc := &ast.Broadcast{Array: x.Name, Sec: sec, Root: owner}
			bc.Position = at.Pos()
			out = append(out, bc)
			res.MessagesInserted++
		case *ast.FuncCall:
			for _, a := range x.Args {
				rec(a)
			}
		case *ast.Binary:
			rec(x.X)
			rec(x.Y)
		case *ast.Unary:
			rec(x.X)
		}
	}
	for _, e := range exprs {
		rec(e)
	}
	return out
}

// runtimeAssign compiles one assignment in the Figure 3 style.
func runtimeAssign(proc *ast.Procedure, distOf partition.DistOf, st *ast.Assign, res *Result) ([]ast.Stmt, error) {
	var out []ast.Stmt
	replicated := true // scalar lhs: every processor computes
	lhsOwner := myP()
	if lhs, ok := st.Lhs.(*ast.ArrayRef); ok {
		if o, _ := ownerOf(distOf, lhs, st); o != nil {
			lhsOwner = o
			replicated = false
		}
	}
	iCompute := ast.Cmp(ast.OpEQ, myP(), ast.CloneExpr(lhsOwner))

	// one element message per distributed rhs reference whose owner
	// differs from the computing processor
	var rhsRefs []*ast.ArrayRef
	collect := func(e ast.Expr) {
		var rec func(e ast.Expr)
		rec = func(e ast.Expr) {
			switch x := e.(type) {
			case *ast.ArrayRef:
				rhsRefs = append(rhsRefs, x)
				for _, sub := range x.Subs {
					rec(sub)
				}
			case *ast.FuncCall:
				for _, a := range x.Args {
					rec(a)
				}
			case *ast.Binary:
				rec(x.X)
				rec(x.Y)
			case *ast.Unary:
				rec(x.X)
			}
		}
		rec(e)
	}
	collect(st.Rhs)
	if lhs, ok := st.Lhs.(*ast.ArrayRef); ok {
		for _, sub := range lhs.Subs {
			collect(sub)
		}
	}
	for _, ref := range rhsRefs {
		srcOwner, dist := ownerOf(distOf, ref, st)
		if srcOwner == nil {
			continue
		}
		sec := make([]ast.SecDim, len(ref.Subs))
		for d, sub := range ref.Subs {
			sec[d] = ast.SecDim{Lo: ast.CloneExpr(sub), Hi: ast.CloneExpr(sub)}
		}
		if replicated {
			// every processor computes: the owner broadcasts the element
			bc := &ast.Broadcast{Array: ref.Name, Sec: sec, Root: ast.CloneExpr(srcOwner)}
			bc.Position = st.Pos()
			out = append(out, bc)
			res.MessagesInserted++
			continue
		}
		_ = dist
		differ := ast.Cmp(ast.OpNE, ast.CloneExpr(srcOwner), ast.CloneExpr(lhsOwner))
		iOwnSrc := ast.Cmp(ast.OpEQ, myP(), ast.CloneExpr(srcOwner))
		send := &ast.Send{Array: ref.Name, Sec: sec, Dest: ast.CloneExpr(lhsOwner)}
		send.Position = st.Pos()
		recvSec := make([]ast.SecDim, len(sec))
		for i, d := range sec {
			recvSec[i] = ast.SecDim{Lo: ast.CloneExpr(d.Lo), Hi: ast.CloneExpr(d.Hi)}
		}
		recv := &ast.Recv{Array: ref.Name, Sec: recvSec, Src: ast.CloneExpr(srcOwner)}
		recv.Position = st.Pos()
		out = append(out, &ast.If{
			Cond: differ,
			Then: []ast.Stmt{
				&ast.If{Cond: iOwnSrc, Then: []ast.Stmt{send}},
				&ast.If{Cond: ast.CloneExpr(iCompute), Then: []ast.Stmt{recv}},
			},
		})
		res.MessagesInserted += 2
	}
	if replicated {
		out = append(out, ast.CloneStmt(st))
	} else {
		out = append(out, &ast.If{Cond: iCompute, Then: []ast.Stmt{ast.CloneStmt(st)}})
		res.GuardsInserted++
	}
	return out, nil
}
