package codegen

import (
	"strings"
	"testing"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/comm"
	"fortd/internal/decomp"
	"fortd/internal/depend"
	"fortd/internal/parser"
	"fortd/internal/partition"
	"fortd/internal/rsd"
)

// generate runs the local pipeline (partition → comm → codegen) for a
// single-procedure program with the given distribution.
func generate(t *testing.T, src string, d decomp.Decomp, sizes []int, p int) (*Result, *ast.Procedure) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	proc := prog.Units[0]
	n := g.Nodes[proc.Name]
	dist := decomp.MustDist(d, sizes, p)
	distOf := func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }
	env := comm.ConstEnv(proc)
	deps := depend.Analyze(proc, env)
	plan := partition.Compute(proc, n, distOf, func(string) map[string]*partition.Constraint { return nil }, env)
	commRes := comm.Analyze(proc, n, plan, deps, distOf, func(string) []*comm.Delayed { return nil }, comm.ComputeSections(g), env)
	res, err := Generate(&Input{Proc: proc, Plan: plan, Comm: commRes, DistOf: distOf, Env: env, P: p})
	if err != nil {
		t.Fatal(err)
	}
	return res, proc
}

func listing(res *Result, proc *ast.Procedure) string {
	cp := *proc
	cp.Body = res.Body
	var b strings.Builder
	ast.PrintProcedure(&b, &cp)
	return b.String()
}

// TestGenerateShiftExchange: Figure 2's structure — guarded send/recv
// before the reduced loop, my$p prologue.
func TestGenerateShiftExchange(t *testing.T) {
	res, proc := generate(t, `
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
        X(i) = F(X(i+5))
      enddo
      END
`, decomp.NewDecomp(decomp.Block), []int{100}, 4)
	text := listing(res, proc)
	if res.LoopsReduced != 1 {
		t.Errorf("loops reduced = %d", res.LoopsReduced)
	}
	if res.MessagesInserted != 2 {
		t.Errorf("messages = %d (send+recv)", res.MessagesInserted)
	}
	// statement order: prologue, guarded exchange, loop
	sendIdx := strings.Index(text, "send X(")
	loopIdx := strings.Index(text, "do i =")
	if sendIdx < 0 || loopIdx < 0 || sendIdx > loopIdx {
		t.Errorf("send not hoisted before loop:\n%s", text)
	}
	if !strings.HasPrefix(strings.TrimSpace(strings.Split(text, "\n")[2]), "my$p = myproc()") {
		t.Errorf("prologue missing:\n%s", text)
	}
}

// TestGenerateNegativeShift: X(i-2) exchanges in the other direction.
func TestGenerateNegativeShift(t *testing.T) {
	res, proc := generate(t, `
      SUBROUTINE S(X)
      REAL X(100)
      do i = 3,100
        X(i) = F(X(i-2))
      enddo
      END
`, decomp.NewDecomp(decomp.Block), []int{100}, 4)
	text := listing(res, proc)
	if !strings.Contains(text, "to (my$p + 1)") {
		t.Errorf("negative shift must send upward:\n%s", text)
	}
	if !strings.Contains(text, "from (my$p - 1)") {
		t.Errorf("negative shift must receive from below:\n%s", text)
	}
	_ = res
}

// TestGenerateGuard: a constant-subscript write is wrapped in an
// ownership guard.
func TestGenerateGuard(t *testing.T) {
	res, proc := generate(t, `
      SUBROUTINE S(X)
      REAL X(100)
      X(42) = 1.0
      END
`, decomp.NewDecomp(decomp.Block), []int{100}, 4)
	text := listing(res, proc)
	if res.GuardsInserted != 1 {
		t.Errorf("guards = %d", res.GuardsInserted)
	}
	if !strings.Contains(text, "if (((41 / 25) .EQ. my$p)) then") {
		t.Errorf("guard missing:\n%s", text)
	}
}

// TestGenerateBroadcast: a scalar read of a distributed element becomes
// a broadcast pinned inside the defining loop, before the consumer.
func TestGenerateBroadcast(t *testing.T) {
	res, proc := generate(t, `
      SUBROUTINE S(X)
      REAL X(100)
      do k = 1,100
        t = X(k) * 2.0
      enddo
      END
`, decomp.NewDecomp(decomp.Block), []int{100}, 4)
	text := listing(res, proc)
	if !strings.Contains(text, "broadcast X(k) from ((k - 1) / 25)") {
		t.Errorf("broadcast missing:\n%s", text)
	}
	// inside the k loop
	bIdx := strings.Index(text, "broadcast")
	loopIdx := strings.Index(text, "do k =")
	if bIdx < loopIdx {
		t.Errorf("broadcast must be inside the loop:\n%s", text)
	}
	_ = res
}

// TestGenerateRuntimeStructure: the Figure 3 shape — per-element
// owner tests, send/recv under owner guards.
func TestGenerateRuntimeStructure(t *testing.T) {
	prog, err := parser.Parse(`
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
        X(i) = F(X(i+5))
      enddo
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	proc := prog.Units[0]
	dist := decomp.MustDist(decomp.NewDecomp(decomp.Block), []int{100}, 4)
	res, err := GenerateRuntime(proc, func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	text := listing(res, proc)
	for _, want := range []string{
		"if (((((i + 5) - 1) / 25) .NE. ((i - 1) / 25)))",
		"send X((i + 5)",
		"recv X((i + 5)",
		"X(i) = F(X((i + 5)))",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// everything inside the (unreduced) loop
	if res.LoopsReduced != 0 {
		t.Errorf("runtime resolution must not reduce bounds")
	}
}

// TestEmitCallCommPoint: a delayed broadcast instantiated at a call
// site resolves formals to actuals.
func TestEmitCallCommPoint(t *testing.T) {
	prog, err := parser.Parse(`
      PROGRAM P
      REAL A(50,50)
      do k = 1,50
        call work(A, k)
      enddo
      END
      SUBROUTINE work(a, kk)
      REAL a(50,50)
      a(1,1) = 0.0
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	site := g.Sites[0]
	dist := decomp.MustDist(decomp.NewDecomp(decomp.Collapsed, decomp.Cyclic), []int{50, 50}, 4)
	cc := &comm.CallComm{
		Site: site, Array: "A", Dist: dist,
		D:        &comm.Delayed{Kind: comm.KPoint, DistDim: 1},
		Section:  rsd.New("A", rsd.Range(1, 50), rsd.SymPoint("kk", 0)),
		PointVar: "k", PointOff: 0,
	}
	in := &Input{Proc: prog.Main(), P: 4}
	stmts, err := emitCallComm(in, cc)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Fatalf("stmts = %v", stmts)
	}
	bc, ok := stmts[0].(*ast.Broadcast)
	if !ok {
		t.Fatalf("stmt = %T", stmts[0])
	}
	if bc.Root.String() != "MOD((k - 1),4)" {
		t.Errorf("root = %s", bc.Root)
	}
	if bc.Sec[1].Lo.String() != "k" {
		t.Errorf("sec = %v", bc.Sec[1].Lo)
	}
}

// TestUnsupportedShiftErrors: shift emission on a cyclic distribution
// must fail loudly rather than emit wrong code.
func TestUnsupportedShiftErrors(t *testing.T) {
	dist := decomp.MustDist(decomp.NewDecomp(decomp.Cyclic), []int{100}, 4)
	if _, err := emitShift("X", dist, 0, 1, []ast.SecDim{{}}); err == nil {
		t.Error("cyclic shift emission must error")
	}
}

// TestAggregation: two references to the same nonlocal element produce
// one message, not two (§5.4 aggregation).
func TestAggregation(t *testing.T) {
	res, proc := generate(t, `
      SUBROUTINE S(X)
      REAL X(100)
      do k = 1,100
        t = X(k) + X(k)
      enddo
      END
`, decomp.NewDecomp(decomp.Block), []int{100}, 4)
	if res.MessagesAggregated != 1 {
		t.Errorf("aggregated = %d, want 1", res.MessagesAggregated)
	}
	text := listing(res, proc)
	if strings.Count(text, "broadcast") != 1 {
		t.Errorf("want exactly one broadcast:\n%s", text)
	}
}
