package codegen

import (
	"fortd/internal/ast"
	"fortd/internal/comm"
	"fortd/internal/decomp"
	"fortd/internal/depend"
	"fortd/internal/partition"
	"fortd/internal/rsd"
)

func myP() ast.Expr { return ast.Id(partition.MyP) }

// emitAccess generates the message statements for one locally-placed
// nonlocal reference.
func emitAccess(in *Input, acc *comm.Access) ([]ast.Stmt, error) {
	depth := 0
	if acc.AtLoop != nil {
		for i, l := range acc.Nest {
			if l == acc.AtLoop {
				depth = i + 1
			}
		}
	}
	sec := make([]ast.SecDim, len(acc.Ref.Subs))
	for d := range acc.Ref.Subs {
		if d == acc.DistDim && acc.Kind != comm.KGather {
			continue // filled per kind below
		}
		sec[d] = subSecDim(in, acc.Ref, d, acc.Nest, depth)
	}
	switch acc.Kind {
	case comm.KShift:
		return emitShift(acc.Array, acc.Dist, acc.DistDim, acc.Shift, sec)
	case comm.KPoint:
		point := ast.CloneExpr(acc.Point)
		sec[acc.DistDim] = ast.SecDim{Lo: point, Hi: ast.CloneExpr(point)}
		bc := &ast.Broadcast{Array: acc.Array, Sec: sec, Root: partition.OwnerExpr(acc.Dist, ast.CloneExpr(point))}
		return []ast.Stmt{bc}, nil
	case comm.KGather:
		return []ast.Stmt{&ast.AllGather{Array: acc.Array, Sec: sec}}, nil
	}
	return nil, nil
}

// emitCallComm generates messages for a delayed communication
// instantiated at a call site.
func emitCallComm(in *Input, cc *comm.CallComm) ([]ast.Stmt, error) {
	sec := make([]ast.SecDim, len(cc.Section.Dims))
	for d, dim := range cc.Section.Dims {
		sec[d] = rsdSecDim(dim)
	}
	kind := cc.D.Kind
	dim := cc.Dist.DistDim()
	if kind == comm.KShift && (dim < 0 || cc.Dist.Specs[dim].Kind != ast.DistBlock) {
		kind = comm.KGather // shift emission is block-specific
	}
	switch kind {
	case comm.KShift:
		return emitShift(cc.Array, cc.Dist, dim, cc.D.Shift, sec)
	case comm.KPoint:
		var point ast.Expr
		if cc.PointVar != "" {
			point = ast.Add(ast.Id(cc.PointVar), ast.Int(cc.PointOff))
		} else {
			point = ast.Int(cc.PointOff)
		}
		if dim >= 0 && dim < len(sec) {
			sec[dim] = ast.SecDim{Lo: ast.CloneExpr(point), Hi: ast.CloneExpr(point)}
		}
		bc := &ast.Broadcast{Array: cc.Array, Sec: sec, Root: partition.OwnerExpr(cc.Dist, point)}
		return []ast.Stmt{bc}, nil
	default:
		return []ast.Stmt{&ast.AllGather{Array: cc.Array, Sec: sec}}, nil
	}
}

// emitShift produces the guarded boundary exchange of message
// vectorization for a BLOCK distribution (Figure 2's send/recv pair).
// For shift c > 0 each processor needs the first c elements of its
// successor's block; for c < 0, the last |c| elements of its
// predecessor's.
func emitShift(array string, dist *decomp.Dist, dim, c int, sec []ast.SecDim) ([]ast.Stmt, error) {
	if dim < 0 || dist.Specs[dim].Kind != ast.DistBlock {
		return nil, errUnsupported("shift on non-block distribution %s", dist.Key())
	}
	b := dist.BlockSize()
	n := dist.Sizes[dim]
	p := dist.P
	cloneSec := func(over ast.SecDim) []ast.SecDim {
		out := make([]ast.SecDim, len(sec))
		for i, d := range sec {
			if i == dim {
				out[i] = over
				continue
			}
			out[i] = ast.SecDim{Lo: ast.CloneExpr(d.Lo), Hi: ast.CloneExpr(d.Hi)}
		}
		return out
	}
	var send *ast.Send
	var recv *ast.Recv
	var sendGuard, recvGuard ast.Expr
	if c > 0 {
		// my block's first c elements go to my predecessor
		sendDim := ast.SecDim{
			Lo: ast.Add(ast.Mul(myP(), ast.Int(b)), ast.Int(1)),
			Hi: ast.Min(ast.Add(ast.Mul(myP(), ast.Int(b)), ast.Int(c)), ast.Int(n)),
		}
		recvDim := ast.SecDim{
			Lo: ast.Add(ast.Mul(ast.Add(myP(), ast.Int(1)), ast.Int(b)), ast.Int(1)),
			Hi: ast.Min(ast.Add(ast.Mul(ast.Add(myP(), ast.Int(1)), ast.Int(b)), ast.Int(c)), ast.Int(n)),
		}
		send = &ast.Send{Array: array, Sec: cloneSec(sendDim), Dest: ast.Sub(myP(), ast.Int(1))}
		recv = &ast.Recv{Array: array, Sec: cloneSec(recvDim), Src: ast.Add(myP(), ast.Int(1))}
		sendGuard = ast.Cmp(ast.OpGT, myP(), ast.Int(0))
		recvGuard = ast.Cmp(ast.OpLT, myP(), ast.Int(p-1))
	} else {
		m := -c
		// my block's last m elements go to my successor
		sendDim := ast.SecDim{
			Lo: ast.Add(ast.Mul(ast.Add(myP(), ast.Int(1)), ast.Int(b)), ast.Int(-m+1)),
			Hi: ast.Mul(ast.Add(myP(), ast.Int(1)), ast.Int(b)),
		}
		recvDim := ast.SecDim{
			Lo: ast.Add(ast.Mul(myP(), ast.Int(b)), ast.Int(-m+1)),
			Hi: ast.Mul(myP(), ast.Int(b)),
		}
		send = &ast.Send{Array: array, Sec: cloneSec(sendDim), Dest: ast.Add(myP(), ast.Int(1))}
		recv = &ast.Recv{Array: array, Sec: cloneSec(recvDim), Src: ast.Sub(myP(), ast.Int(1))}
		sendGuard = ast.Cmp(ast.OpLT, myP(), ast.Int(p-1))
		recvGuard = ast.Cmp(ast.OpGT, myP(), ast.Int(0))
	}
	return []ast.Stmt{
		&ast.If{Cond: sendGuard, Then: []ast.Stmt{send}},
		&ast.If{Cond: recvGuard, Then: []ast.Stmt{recv}},
	}, nil
}

// subSecDim converts one subscript of a reference into section bounds
// at a given placement depth: variables of loops deeper than the
// placement are expanded to the loop's bound expressions; everything
// else is used verbatim (it is evaluable at the placement point).
func subSecDim(in *Input, ref *ast.ArrayRef, d int, nest []*ast.Do, depth int) ast.SecDim {
	sub := ref.Subs[d]
	v, a, _, ok := depend.LinearSubscript(sub, in.Env)
	if ok && v != "" {
		for j := len(nest) - 1; j >= 0; j-- {
			if nest[j].Var != v {
				continue
			}
			if j < depth {
				break // defined at the placement point: verbatim
			}
			loop := nest[j]
			lo := ast.SubstituteExpr(ast.CloneExpr(sub), v, loop.Lo)
			hi := ast.SubstituteExpr(ast.CloneExpr(sub), v, loop.Hi)
			if a < 0 {
				lo, hi = hi, lo
			}
			return ast.SecDim{Lo: lo, Hi: hi}
		}
	}
	if !ok {
		// non-affine: widen to the declared extent
		if sym := in.Proc.Symbols.Lookup(ref.Name); sym != nil && d < len(sym.Dims) {
			return ast.SecDim{Lo: ast.CloneExpr(sym.Dims[d].Lo), Hi: ast.CloneExpr(sym.Dims[d].Hi)}
		}
	}
	e := ast.CloneExpr(sub)
	return ast.SecDim{Lo: e, Hi: ast.CloneExpr(sub)}
}

// rsdSecDim converts an RSD dimension into section bound expressions.
func rsdSecDim(d rsd.Dim) ast.SecDim {
	if d.Var == "" {
		return ast.SecDim{Lo: ast.Int(d.Lo), Hi: ast.Int(d.Hi)}
	}
	return ast.SecDim{
		Lo: ast.Add(ast.Id(d.Var), ast.Int(d.Lo)),
		Hi: ast.Add(ast.Id(d.Var), ast.Int(d.Hi)),
	}
}
