// Package codegen generates the SPMD node program (§3 step 7): it
// instantiates the data and computation partitions (reduced loop
// bounds, ownership guards), inserts the optimized communication
// (vectorized send/recv pairs, broadcasts, allgathers), places the
// dynamic-decomposition remapping calls, and — for the baselines the
// paper compares against — emits run-time resolution code (Figure 3)
// and immediate-instantiation code (Figure 12).
package codegen

import (
	"fmt"
	"strings"

	"fortd/internal/ast"
	"fortd/internal/comm"
	"fortd/internal/decomp"
	"fortd/internal/livedecomp"
	"fortd/internal/overlap"
	"fortd/internal/partition"
)

// Strategy selects the compilation strategy.
type Strategy int

const (
	// StrategyInterproc is the paper's contribution: interprocedural
	// analysis with delayed instantiation.
	StrategyInterproc Strategy = iota
	// StrategyRuntime is the Figure 3 baseline: ownership and
	// communication resolved per reference at run time.
	StrategyRuntime
	// StrategyImmediate is the Figure 12 baseline: compile-time
	// analysis but no delayed instantiation across procedures.
	StrategyImmediate
)

func (s Strategy) String() string {
	switch s {
	case StrategyInterproc:
		return "interprocedural"
	case StrategyRuntime:
		return "runtime-resolution"
	case StrategyImmediate:
		return "immediate"
	}
	return "?"
}

// Input carries one procedure's analyses into code generation.
type Input struct {
	Proc    *ast.Procedure
	Plan    *partition.Plan
	Comm    *comm.Result
	Remaps  *livedecomp.Placement
	Overlap *overlap.Analysis
	DistOf  partition.DistOf
	Env     ast.Env
	P       int
}

// Result is the generated procedure plus bookkeeping.
type Result struct {
	// Body is the rewritten statement list.
	Body []ast.Stmt
	// MessagesInserted counts communication statements emitted.
	MessagesInserted int
	// GuardsInserted counts ownership guards emitted.
	GuardsInserted int
	// LoopsReduced counts loops whose bounds were rewritten.
	LoopsReduced int
	// RemapsInserted counts remapping calls emitted.
	RemapsInserted int
	// BuffersUsed lists arrays stored in buffers instead of overlaps.
	BuffersUsed []string
	// MessagesAggregated counts duplicate messages removed (§5.4).
	MessagesAggregated int
	// Reductions counts recognized scalar reductions.
	Reductions int
}

// anchors collects generated statements keyed to insertion points.
type anchors struct {
	beforeStmt map[ast.Stmt][]ast.Stmt
	afterStmt  map[ast.Stmt][]ast.Stmt
	atLoopTop  map[*ast.Do][]ast.Stmt
	beforeLoop map[*ast.Do][]ast.Stmt
	afterLoop  map[*ast.Do][]ast.Stmt
	prologue   []ast.Stmt
}

func newAnchors() *anchors {
	return &anchors{
		beforeStmt: map[ast.Stmt][]ast.Stmt{},
		afterStmt:  map[ast.Stmt][]ast.Stmt{},
		atLoopTop:  map[*ast.Do][]ast.Stmt{},
		beforeLoop: map[*ast.Do][]ast.Stmt{},
		afterLoop:  map[*ast.Do][]ast.Stmt{},
	}
}

// Generate rewrites one procedure into its SPMD form.
func Generate(in *Input) (*Result, error) {
	res := &Result{}
	a := newAnchors()

	// my$p = myproc()
	a.prologue = append(a.prologue, &ast.Assign{
		Lhs: ast.Id(partition.MyP),
		Rhs: &ast.FuncCall{Name: "myproc"},
	})

	// communication statements
	if in.Comm != nil {
		for _, acc := range in.Comm.Accesses {
			if acc.Delay || acc.Kind == comm.KLocal {
				continue
			}
			stmts, err := emitAccess(in, acc)
			if err != nil {
				return nil, err
			}
			if acc.Stmt != nil {
				stampPos(stmts, acc.Stmt.Pos())
			}
			res.MessagesInserted += len(stmts)
			anchorComm(a, stmts, acc.AtLoop, acc.Nest, acc.Stmt)
		}
		for _, cc := range in.Comm.CallComms {
			if cc.Delay {
				continue
			}
			stmts, err := emitCallComm(in, cc)
			if err != nil {
				return nil, err
			}
			stampPos(stmts, cc.Site.Stmt.Pos())
			res.MessagesInserted += len(stmts)
			switch {
			case cc.AtLoop != nil:
				nest := make([]*ast.Do, 0, len(cc.Site.Nest))
				for _, li := range cc.Site.Nest {
					nest = append(nest, li.Loop)
				}
				anchorComm(a, stmts, cc.AtLoop, nest, cc.Site.Stmt)
			case cc.BeforeLoop != nil:
				a.beforeLoop[cc.BeforeLoop] = append(a.beforeLoop[cc.BeforeLoop], stmts...)
			default:
				a.beforeStmt[cc.Site.Stmt] = append(a.beforeStmt[cc.Site.Stmt], stmts...)
			}
		}
	}

	// remapping calls, attributed to their anchor's source line
	if in.Remaps != nil {
		emitRemaps := func(ops []*livedecomp.Op, pos ast.Position) []ast.Stmt {
			out := make([]ast.Stmt, 0, len(ops))
			for _, op := range ops {
				rs := remapStmt(in, op)
				rs.(*ast.Remap).Position = pos
				out = append(out, rs)
				res.RemapsInserted++
			}
			return out
		}
		for s, ops := range in.Remaps.BeforeStmt {
			a.beforeStmt[s] = append(a.beforeStmt[s], emitRemaps(ops, s.Pos())...)
		}
		for s, ops := range in.Remaps.AfterStmt {
			a.afterStmt[s] = append(a.afterStmt[s], emitRemaps(ops, s.Pos())...)
		}
		for l, ops := range in.Remaps.BeforeLoop {
			a.beforeLoop[l] = append(a.beforeLoop[l], emitRemaps(ops, l.Pos())...)
		}
		for l, ops := range in.Remaps.AfterLoop {
			a.afterLoop[l] = append(a.afterLoop[l], emitRemaps(ops, l.Pos())...)
		}
	}

	// recognized reductions: accumulate into a private partial inside
	// the reduced loop, then combine globally after it
	replace := map[ast.Stmt]ast.Stmt{}
	if in.Plan != nil {
		for _, item := range in.Plan.Items {
			if item.Red == nil || item.Loop == nil {
				continue
			}
			if _, ok := in.Plan.LoopBounds[item.Loop]; !ok {
				return nil, errUnsupported("reduction loop for %s lost its bounds reduction", item.Red.Var)
			}
			partial := item.Red.Var + "$red"
			newRhs := ast.SubstituteExpr(ast.CloneExpr(item.Stmt.Rhs), item.Red.Var, ast.Id(partial))
			replace[item.Stmt] = &ast.Assign{Lhs: ast.Id(partial), Rhs: newRhs}

			var identity ast.Expr
			switch item.Red.Op {
			case "MAX":
				identity = &ast.RealLit{Value: -1e300}
			case "MIN":
				identity = &ast.RealLit{Value: 1e300}
			default:
				identity = &ast.RealLit{Value: 0}
			}
			a.beforeLoop[item.Loop] = append(a.beforeLoop[item.Loop],
				&ast.Assign{Lhs: ast.Id(partial), Rhs: identity})

			var combine ast.Stmt
			switch item.Red.Op {
			case "MAX", "MIN":
				combine = &ast.Assign{
					Lhs: ast.Id(item.Red.Var),
					Rhs: &ast.FuncCall{Name: item.Red.Op, Args: []ast.Expr{ast.Id(item.Red.Var), ast.Id(partial)}},
				}
			default:
				combine = &ast.Assign{
					Lhs: ast.Id(item.Red.Var),
					Rhs: ast.Add(ast.Id(item.Red.Var), ast.Id(partial)),
				}
			}
			gr := &ast.GlobalReduce{Var: partial, Op: item.Red.Op}
			gr.Position = item.Loop.Pos()
			a.afterLoop[item.Loop] = append(a.afterLoop[item.Loop], gr, combine)
			res.Reductions++
			res.MessagesInserted++
		}
	}

	// guards per partitioning item
	guards := map[ast.Stmt]ast.Expr{}
	if in.Plan != nil {
		for _, item := range in.Plan.Items {
			if !item.Guard || item.C == nil {
				continue
			}
			lhs := item.Stmt.Lhs.(*ast.ArrayRef)
			idx := ast.CloneExpr(lhs.Subs[item.DistDim])
			guards[item.Stmt] = ast.Cmp(ast.OpEQ,
				partition.OwnerExpr(item.Dist, idx), ast.Id(partition.MyP))
			res.GuardsInserted++
		}
		for _, cc := range in.Plan.CallCons {
			if !cc.Guard || cc.C == nil {
				continue
			}
			guards[cc.Site.Stmt] = guardForCall(cc)
			res.GuardsInserted++
		}
	}

	// aggregation (§5.4): duplicate messages to the same destination at
	// the same program point collapse to one
	res.MessagesAggregated += aggregateAnchors(a)
	res.MessagesInserted -= res.MessagesAggregated

	body := rewriteBody(in, a, guards, replace, in.Proc.Body, res)
	res.Body = append(a.prologue, body...)
	return res, nil
}

// aggregateAnchors removes textually identical communication statements
// anchored at the same insertion point, returning how many were
// dropped. (Two references to the same nonlocal element in one
// statement otherwise generate two identical broadcasts.)
func aggregateAnchors(a *anchors) int {
	dropped := 0
	dedupe := func(stmts []ast.Stmt) []ast.Stmt {
		seen := map[string]bool{}
		out := stmts[:0]
		for _, s := range stmts {
			if !isCommStmt(s) {
				out = append(out, s)
				continue
			}
			key := stmtKey(s)
			if seen[key] {
				dropped++
				continue
			}
			seen[key] = true
			out = append(out, s)
		}
		return out
	}
	for k, v := range a.beforeStmt {
		a.beforeStmt[k] = dedupe(v)
	}
	for k, v := range a.afterStmt {
		a.afterStmt[k] = dedupe(v)
	}
	for k, v := range a.atLoopTop {
		a.atLoopTop[k] = dedupe(v)
	}
	for k, v := range a.beforeLoop {
		a.beforeLoop[k] = dedupe(v)
	}
	for k, v := range a.afterLoop {
		a.afterLoop[k] = dedupe(v)
	}
	a.prologue = dedupe(a.prologue)
	return dropped
}

func isCommStmt(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.Send, *ast.Recv, *ast.Broadcast, *ast.AllGather:
		return true
	case *ast.If:
		// guarded send/recv pairs emitted by emitShift
		if len(st.Then) == 1 && len(st.Else) == 0 {
			return isCommStmt(st.Then[0])
		}
	}
	return false
}

func stmtKey(s ast.Stmt) string {
	var b strings.Builder
	p := &ast.Procedure{Name: "k", Symbols: ast.NewSymbolTable(), Body: []ast.Stmt{s}}
	ast.PrintProcedure(&b, p)
	return b.String()
}

// stampPos attributes generated communication statements (and the
// guards wrapping them) to the source statement whose compilation
// placed them, so trace events can name the originating line.
func stampPos(stmts []ast.Stmt, pos ast.Position) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.Send:
			st.Position = pos
		case *ast.Recv:
			st.Position = pos
		case *ast.Broadcast:
			st.Position = pos
		case *ast.AllGather:
			st.Position = pos
		case *ast.GlobalReduce:
			st.Position = pos
		case *ast.Remap:
			st.Position = pos
		case *ast.If:
			st.Position = pos
			stampPos(st.Then, pos)
			stampPos(st.Else, pos)
		}
	}
}

// guardForCall builds the ownership guard wrapping a call whose delayed
// constraint could not be absorbed: the test is on the caller-side
// expression bound to the callee formal carrying the constraint.
func guardForCall(cc *partition.CallConstraint) ast.Expr {
	var idx ast.Expr = ast.Int(1)
	if cc.Actual != nil {
		idx = ast.CloneExpr(cc.Actual)
	}
	return partition.GuardExpr(cc.C, idx)
}

// anchorComm places generated comm statements. A message constrained to
// level ℓ is anchored just before its consumer at that level: before
// the next-deeper loop when the consumer sits inside one (hoisted out
// of the deeper loops — message vectorization), or directly before the
// consuming statement. Unconstrained messages hoist before the
// outermost enclosing loop.
func anchorComm(a *anchors, stmts []ast.Stmt, atLoop *ast.Do, nest []*ast.Do, stmt ast.Stmt) {
	switch {
	case atLoop != nil:
		for i, l := range nest {
			if l != atLoop {
				continue
			}
			if i+1 < len(nest) {
				a.beforeLoop[nest[i+1]] = append(a.beforeLoop[nest[i+1]], stmts...)
			} else if stmt != nil {
				a.beforeStmt[stmt] = append(a.beforeStmt[stmt], stmts...)
			} else {
				a.atLoopTop[atLoop] = append(a.atLoopTop[atLoop], stmts...)
			}
			return
		}
		a.atLoopTop[atLoop] = append(a.atLoopTop[atLoop], stmts...)
	case len(nest) > 0:
		a.beforeLoop[nest[0]] = append(a.beforeLoop[nest[0]], stmts...)
	case stmt != nil:
		a.beforeStmt[stmt] = append(a.beforeStmt[stmt], stmts...)
	default:
		a.prologue = append(a.prologue, stmts...)
	}
}

// rewriteBody produces the transformed statement list.
func rewriteBody(in *Input, a *anchors, guards map[ast.Stmt]ast.Expr, replace map[ast.Stmt]ast.Stmt, body []ast.Stmt, res *Result) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range body {
		out = append(out, a.beforeStmt[s]...)
		switch st := s.(type) {
		case *ast.Decomposition, *ast.Align, *ast.Distribute:
			// directives are compiled away; remap calls were anchored
			// before them when needed
		case *ast.Do:
			out = append(out, a.beforeLoop[st]...)
			nl := &ast.Do{Var: st.Var, Lo: ast.CloneExpr(st.Lo), Hi: ast.CloneExpr(st.Hi)}
			nl.Position = st.Pos()
			if st.Step != nil {
				nl.Step = ast.CloneExpr(st.Step)
			}
			if in.Plan != nil {
				if c, ok := in.Plan.LoopBounds[st]; ok {
					if lo, hi, step, okB := partition.BoundExprs(c, nl.Lo, nl.Hi, nl.Step); okB {
						nl.Lo, nl.Hi, nl.Step = lo, hi, step
						res.LoopsReduced++
					}
				}
			}
			inner := rewriteBody(in, a, guards, replace, st.Body, res)
			nl.Body = append(append([]ast.Stmt{}, a.atLoopTop[st]...), inner...)
			out = append(out, nl)
			out = append(out, a.afterLoop[st]...)
		case *ast.If:
			ni := &ast.If{Cond: ast.CloneExpr(st.Cond)}
			ni.Position = st.Pos()
			ni.Then = rewriteBody(in, a, guards, replace, st.Then, res)
			ni.Else = rewriteBody(in, a, guards, replace, st.Else, res)
			out = append(out, ni)
		default:
			cp := ast.CloneStmt(s)
			if r, ok := replace[s]; ok {
				cp = r
			}
			if g, ok := guards[s]; ok {
				wrapped := &ast.If{Cond: g, Then: []ast.Stmt{cp}}
				wrapped.Position = s.Pos()
				out = append(out, wrapped)
			} else {
				out = append(out, cp)
			}
		}
		out = append(out, a.afterStmt[s]...)
	}
	return out
}

// remapStmt materializes one remap operation.
func remapStmt(in *Input, op *livedecomp.Op) ast.Stmt {
	to := append([]ast.DistSpec(nil), op.To.Specs...)
	return &ast.Remap{Array: op.Array, To: to, InPlace: op.InPlace}
}

// errUnsupported flags generation gaps explicitly rather than emitting
// wrong code.
func errUnsupported(what string, args ...interface{}) error {
	return fmt.Errorf("codegen: unsupported: "+what, args...)
}

var _ = decomp.Replicated
