package depend

import (
	"testing"

	"fortd/internal/ast"
	"fortd/internal/parser"
)

func mustParseProc(t *testing.T, src string) *ast.Procedure {
	t.Helper()
	u, err := parser.ParseProcedure(src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestFigure1NoTrueDep: in X(i) = F(X(i+5)) the pair is an anti
// dependence, so the paper vectorizes the message outside the i loop
// ("The lack of true dependences on S1 allows this to be vectorized
// outside the i loop").
func TestFigure1NoTrueDep(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
        X(i) = F(X(i+5))
      enddo
      END
`)
	info := Analyze(u, nil)
	if len(info.Deps) == 0 {
		t.Fatal("no dependences found")
	}
	for _, d := range info.Deps {
		if d.Kind == True {
			t.Errorf("unexpected true dependence %v at level %d", d, d.Level)
		}
	}
	// the anti dependence is carried by the i loop with distance 5
	found := false
	for _, d := range info.Deps {
		if d.Kind == Anti && d.Level == 1 && d.Known && d.Distance == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing carried anti dependence: %+v", info.Deps)
	}
}

// TestRecurrenceTrueDep: X(i) = X(i-1) carries a true dependence at the
// loop, forcing communication inside it.
func TestRecurrenceTrueDep(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE S(X)
      REAL X(100)
      do i = 2,100
        X(i) = X(i-1)
      enddo
      END
`)
	info := Analyze(u, nil)
	var rhs *ast.ArrayRef
	loop := u.Body[0].(*ast.Do)
	rhs = loop.Body[0].(*ast.Assign).Rhs.(*ast.ArrayRef)
	if lvl := info.DeepestTrueSinkLevel(rhs); lvl != 1 {
		t.Errorf("DeepestTrueSinkLevel = %d, want 1", lvl)
	}
	found := false
	for _, d := range info.Deps {
		if d.Kind == True && d.Level == 1 && d.Distance == 1 && d.Known {
			found = true
		}
	}
	if !found {
		t.Errorf("deps = %+v", info.Deps)
	}
}

func TestLoopIndependentDep(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE S(X,Y)
      REAL X(100), Y(100)
      do i = 1,100
        X(i) = Y(i)
        Y(i) = X(i)
      enddo
      END
`)
	info := Analyze(u, nil)
	// X(i) written then read in the same iteration: loop-independent true dep
	found := false
	for _, d := range info.Deps {
		if d.Kind == True && d.Src.Array == "X" && d.Level == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing loop-independent true dep: %+v", info.Deps)
	}
}

func TestSameStatementAnti(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE S(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) + 1.0
      enddo
      END
`)
	info := Analyze(u, nil)
	for _, d := range info.Deps {
		if d.Kind == True {
			t.Errorf("X(i) = X(i)+1 must not produce a true dep (read executes first): %+v", d)
		}
	}
}

func TestZIVIndependent(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE S(X)
      REAL X(100)
      do i = 1,100
        X(1) = X(2)
      enddo
      END
`)
	info := Analyze(u, nil)
	for _, d := range info.Deps {
		if d.Src.Array == "X" && d.Kind == True {
			t.Errorf("X(1)/X(2) are independent: %+v", d)
		}
	}
}

func TestGCDIndependent(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE S(X)
      REAL X(100)
      do i = 1,50
        X(2*i) = X(2*i+1)
      enddo
      END
`)
	info := Analyze(u, nil)
	if len(info.Deps) != 0 {
		t.Errorf("even/odd accesses are independent: %+v", info.Deps)
	}
}

func TestTwoDimDistance(t *testing.T) {
	// Figure 4 kernel: Z(k,i) = F(Z(k+5,i)) — anti at level k, distance 5
	u := mustParseProc(t, `
      SUBROUTINE F2(Z,i)
      REAL Z(100,100)
      do k = 1,100
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`)
	info := Analyze(u, nil)
	found := false
	for _, d := range info.Deps {
		if d.Kind == Anti && d.Level == 1 && d.Distance == 5 {
			found = true
		}
		if d.Kind == True {
			t.Errorf("unexpected true dep: %+v", d)
		}
	}
	if !found {
		t.Errorf("deps = %+v", info.Deps)
	}
}

func TestNestedLoopCarrier(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE S(A)
      REAL A(100,100)
      do i = 2,100
        do j = 1,100
          A(i,j) = A(i-1,j)
        enddo
      enddo
      END
`)
	info := Analyze(u, nil)
	found := false
	for _, d := range info.Deps {
		if d.Kind == True && d.Level == 1 && d.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("outer-carried true dep missing: %+v", info.Deps)
	}
	// inner loop does not carry it
	for _, d := range info.Deps {
		if d.Kind == True && d.Level == 2 {
			t.Errorf("dep wrongly carried at level 2: %+v", d)
		}
	}
}

func TestLinearSubscript(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE S(X,n)
      REAL X(100)
      X(2*i+3) = 0.0
      X(i) = 0.0
      X(7) = 0.0
      X(i*j) = 0.0
      END
`)
	get := func(k int) ast.Expr {
		return u.Body[k].(*ast.Assign).Lhs.(*ast.ArrayRef).Subs[0]
	}
	v, c, k, ok := LinearSubscript(get(0), nil)
	if !ok || v != "i" || c != 2 || k != 3 {
		t.Errorf("2*i+3 → %s,%d,%d,%v", v, c, k, ok)
	}
	v, c, k, ok = LinearSubscript(get(1), nil)
	if !ok || v != "i" || c != 1 || k != 0 {
		t.Errorf("i → %s,%d,%d,%v", v, c, k, ok)
	}
	v, c, k, ok = LinearSubscript(get(2), nil)
	if !ok || c != 0 || k != 7 {
		t.Errorf("7 → %s,%d,%d,%v", v, c, k, ok)
	}
	if _, _, _, ok = LinearSubscript(get(3), nil); ok {
		t.Error("i*j should not be single-index affine")
	}
}

func TestCollectRefsNest(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE S(A)
      REAL A(10,10)
      do i = 1,10
        do j = 1,10
          A(i,j) = 1.0
        enddo
      enddo
      END
`)
	refs := CollectRefs(u)
	if len(refs) != 1 {
		t.Fatalf("refs = %d", len(refs))
	}
	if !refs[0].IsWrite || refs[0].Level() != 2 {
		t.Errorf("ref = %+v", refs[0])
	}
	if refs[0].Nest[0].Var != "i" || refs[0].Nest[1].Var != "j" {
		t.Errorf("nest = %v,%v", refs[0].Nest[0].Var, refs[0].Nest[1].Var)
	}
}

// TestWeakZeroRangeDisproof: dgefa's daxpy pattern — write a(i,j) with
// i = k+1..n against read a(k,j) is independent because the only
// dependence solution (i = k) lies below the loop's lower bound.
func TestWeakZeroRangeDisproof(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE daxpy(a, n, k, j)
      REAL a(64,64)
      do i = k+1, n
        a(i,j) = a(i,j) - a(i,k) * a(k,j)
      enddo
      END
`)
	info := Analyze(u, nil)
	for _, d := range info.Deps {
		if d.Kind == True && d.Level == 1 {
			t.Errorf("a(k,j) wrongly made loop-carried: %+v", d)
		}
	}
}

// TestWeakZeroAboveRange: symmetric disproof via the upper bound.
func TestWeakZeroAboveRange(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE s(a, n)
      REAL a(64)
      do i = 1, n-1
        a(i) = a(i) + a(n)
      enddo
      END
`)
	info := Analyze(u, nil)
	for _, d := range info.Deps {
		if d.Kind == True && d.Level == 1 {
			t.Errorf("a(n) is outside [1,n-1], no carried dep: %+v", d)
		}
	}
}

// TestSameNamedLoopsDoNotCancel: two separate "do i" loops are distinct
// iteration spaces — the dependence between them is carried by the
// enclosing time loop, not erased by name collision.
func TestSameNamedLoopsDoNotCancel(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE s(a, b)
      REAL a(64), b(64)
      do t = 1, 10
        do i = 2, 63
          b(i) = a(i+1)
        enddo
        do i = 2, 63
          a(i) = b(i)
        enddo
      enddo
      END
`)
	info := Analyze(u, nil)
	// a written in loop 2 of iteration t, read in loop 1 of t+1: a true
	// dependence carried at the t loop must exist
	found := false
	for _, d := range info.Deps {
		if d.Kind == True && d.Level == 1 && d.Src.Array == "a" && d.Src.IsWrite {
			found = true
		}
	}
	if !found {
		t.Errorf("missing t-carried true dep: %+v", info.Deps)
	}
}

// TestUnknownOuterDoesNotMaskInner: the ADI column sweep — time loop
// unconstrained, but the i distance is exactly 1 and must be reported
// at the i level too.
func TestUnknownOuterDoesNotMaskInner(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE s(a)
      REAL a(8,8)
      do t = 1, 2
        do j = 1, 8
          do i = 2, 8
            a(i,j) = a(i,j) + 0.5 * a(i-1,j)
          enddo
        enddo
      enddo
      END
`)
	info := Analyze(u, nil)
	read := findRead(t, u, info)
	if lvl := info.DeepestTrueSinkLevel(read); lvl != 3 {
		t.Errorf("DeepestTrueSinkLevel = %d, want 3 (the i loop)", lvl)
	}
}

func findRead(t *testing.T, u *ast.Procedure, info *Info) *ast.ArrayRef {
	t.Helper()
	for _, r := range info.Refs {
		if !r.IsWrite && len(r.Expr.Subs) == 2 {
			if s, ok := r.Expr.Subs[0].(*ast.Binary); ok && s.Op == ast.OpSub {
				return r.Expr
			}
		}
	}
	t.Fatal("no a(i-1,j) read found")
	return nil
}

// TestHasTrueDepAtLevel exercises the loop-keyed query.
func TestHasTrueDepAtLevel(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE s(x)
      REAL x(100)
      do i = 2, 100
        x(i) = x(i-1)
      enddo
      END
`)
	info := Analyze(u, nil)
	loop := u.Body[0].(*ast.Do)
	if !info.HasTrueDepAtLevel("x", loop) {
		t.Error("recurrence not carried at its loop")
	}
	other := &ast.Do{Var: "q"}
	if info.HasTrueDepAtLevel("x", other) {
		t.Error("dep reported for unrelated loop")
	}
}

// TestNonAffineConservative: x(x(i)) style indices assume dependence.
func TestNonAffineConservative(t *testing.T) {
	u := mustParseProc(t, `
      SUBROUTINE s(x, idx)
      REAL x(100)
      INTEGER idx(100)
      do i = 1, 100
        x(idx(i)) = x(i) + 1.0
      enddo
      END
`)
	info := Analyze(u, nil)
	carried := false
	for _, d := range info.Deps {
		if d.Src.Array == "x" && d.Level == 1 {
			carried = true
		}
	}
	if !carried {
		t.Errorf("indirect store must be conservatively carried: %+v", info.Deps)
	}
}
