// Package depend implements the data dependence analysis the Fortran D
// compiler relies on for message vectorization (§3, step 5; §5.4).
// Subscripts are put in affine form and tested with the standard ZIV,
// strong-SIV, and GCD tests; each dependence carries the loop level of
// the deepest loop that carries it (0 for loop-independent).
package depend

import (
	"fortd/internal/ast"
)

// Kind classifies a dependence.
type Kind int

const (
	True   Kind = iota // flow: write then read
	Anti               // read then write
	Output             // write then write
)

func (k Kind) String() string {
	switch k {
	case True:
		return "true"
	case Anti:
		return "anti"
	case Output:
		return "output"
	}
	return "?"
}

// Ref is one array reference with its enclosing loop context.
type Ref struct {
	Array   string
	Expr    *ast.ArrayRef
	Stmt    ast.Stmt
	IsWrite bool
	Nest    []*ast.Do // enclosing loops, outermost first
	Order   int       // textual position, for loop-independent direction
}

// Level returns the loop depth of the reference.
func (r *Ref) Level() int { return len(r.Nest) }

// Dep is one data dependence between two references of the same array.
type Dep struct {
	Src, Snk *Ref
	Kind     Kind
	// Level is the 1-based index (outermost = 1) of the loop carrying
	// the dependence; 0 means loop-independent.
	Level int
	// Distance is the dependence distance at Level (0 when unknown or
	// loop-independent); Known reports whether it is exact.
	Distance int
	Known    bool
}

// Info holds the dependence analysis result for one procedure.
type Info struct {
	Refs []*Ref
	Deps []Dep
}

// CollectRefs gathers every array reference in body together with its
// loop nest. Array-ness is decided by the symbol table of proc.
func CollectRefs(proc *ast.Procedure) []*Ref {
	var refs []*Ref
	order := 0
	var nest []*ast.Do
	var walk func(body []ast.Stmt)

	addExprRefs := func(e ast.Expr, stmt ast.Stmt) {
		var rec func(e ast.Expr)
		rec = func(e ast.Expr) {
			switch x := e.(type) {
			case *ast.ArrayRef:
				refs = append(refs, &Ref{
					Array: x.Name, Expr: x, Stmt: stmt,
					Nest: append([]*ast.Do(nil), nest...), Order: order,
				})
				for _, s := range x.Subs {
					rec(s)
				}
			case *ast.FuncCall:
				for _, a := range x.Args {
					rec(a)
				}
			case *ast.Binary:
				rec(x.X)
				rec(x.Y)
			case *ast.Unary:
				rec(x.X)
			}
		}
		rec(e)
	}

	walk = func(body []ast.Stmt) {
		for _, s := range body {
			order++
			switch st := s.(type) {
			case *ast.Assign:
				if lhs, ok := st.Lhs.(*ast.ArrayRef); ok {
					refs = append(refs, &Ref{
						Array: lhs.Name, Expr: lhs, Stmt: st, IsWrite: true,
						Nest: append([]*ast.Do(nil), nest...), Order: order,
					})
					for _, sub := range lhs.Subs {
						addExprRefs(sub, st)
					}
				}
				addExprRefs(st.Rhs, st)
			case *ast.Do:
				addExprRefs(st.Lo, st)
				addExprRefs(st.Hi, st)
				nest = append(nest, st)
				walk(st.Body)
				nest = nest[:len(nest)-1]
			case *ast.If:
				addExprRefs(st.Cond, st)
				walk(st.Then)
				walk(st.Else)
			case *ast.Call:
				for _, a := range st.Args {
					addExprRefs(a, st)
				}
			}
		}
	}
	walk(proc.Body)
	return refs
}

// Analyze computes all pairwise dependences among array references in
// proc. env supplies PARAMETER constants for subscript evaluation.
func Analyze(proc *ast.Procedure, env ast.Env) *Info {
	refs := CollectRefs(proc)
	info := &Info{Refs: refs}
	for i, a := range refs {
		for j, b := range refs {
			if i == j || a.Array != b.Array {
				continue
			}
			if !a.IsWrite && !b.IsWrite {
				continue
			}
			// classify with a as source only when a writes or b writes;
			// test each ordered pair once (i < j covers both orders via
			// the symmetric call below), so restrict to i < j and try
			// both directions inside testPair.
			if i < j {
				info.testPair(a, b, env)
			}
		}
	}
	return info
}

// testPair tests the ordered reference pair and appends any
// dependences. An unknown ('*') distance-vector component expands into
// all three direction cases: carried at that level in either direction,
// plus "equal at that level", which continues the scan into the deeper
// levels — so an exact inner-loop distance is never masked by an
// unconstrained outer loop.
func (in *Info) testPair(a, b *Ref, env ast.Env) {
	common := commonNest(a, b)
	dv, ok := distanceVector(a, b, common, env)
	if !ok {
		return // provably independent
	}
	for i, e := range dv {
		level := i + 1
		switch {
		case e.unknown:
			// may be carried here in either direction; the ==0 case
			// continues to deeper levels
			in.Deps = append(in.Deps,
				Dep{Src: a, Snk: b, Kind: depKind(a, b), Level: level},
				Dep{Src: b, Snk: a, Kind: depKind(b, a), Level: level},
			)
		case e.known && e.dist > 0:
			in.Deps = append(in.Deps, Dep{
				Src: a, Snk: b, Kind: depKind(a, b),
				Level: level, Distance: e.dist, Known: true,
			})
			return
		case e.known && e.dist < 0:
			in.Deps = append(in.Deps, Dep{
				Src: b, Snk: a, Kind: depKind(b, a),
				Level: level, Distance: -e.dist, Known: true,
			})
			return
		}
		// distance 0 (or the ==0 branch of unknown): keep scanning
	}
	// all components zero: loop-independent; source precedes sink
	src, snk := a, b
	if src.Order > snk.Order {
		src, snk = snk, src
	} else if src.Order == snk.Order && src.Stmt == snk.Stmt && src.IsWrite && !snk.IsWrite {
		// same statement, e.g. X(i) = F(X(i)): the read executes first
		src, snk = snk, src
	}
	in.Deps = append(in.Deps, Dep{
		Src: src, Snk: snk, Kind: depKind(src, snk),
		Level: 0, Known: true,
	})
}

func depKind(src, snk *Ref) Kind {
	switch {
	case src.IsWrite && snk.IsWrite:
		return Output
	case src.IsWrite:
		return True
	default:
		return Anti
	}
}

// commonNest returns the loops enclosing both references, outermost
// first (identical *ast.Do pointers).
func commonNest(a, b *Ref) []*ast.Do {
	n := len(a.Nest)
	if len(b.Nest) < n {
		n = len(b.Nest)
	}
	var out []*ast.Do
	for i := 0; i < n; i++ {
		if a.Nest[i] != b.Nest[i] {
			break
		}
		out = append(out, a.Nest[i])
	}
	return out
}

// distEntry is one component of a distance vector.
type distEntry struct {
	dist    int
	known   bool // exact distance
	unknown bool // direction unknown ('*')
}

// distanceVector computes the distance vector of the access pair over
// the common loop nest, or reports independence (ok=false). Loop
// levels not constrained by any subscript pair are conservatively
// marked unknown ('*'): the dependence may be carried there in either
// direction.
func distanceVector(a, b *Ref, common []*ast.Do, env ast.Env) ([]distEntry, bool) {
	dv := make([]distEntry, len(common))
	vars := make([]string, len(common))
	for i, l := range common {
		vars[i] = l.Var
	}
	constrained := make([]bool, len(common))

	nd := len(a.Expr.Subs)
	if len(b.Expr.Subs) != nd {
		// reshaped access: assume dependence with unknown direction
		for i := range dv {
			dv[i] = distEntry{unknown: true}
		}
		return dv, true
	}
	for d := 0; d < nd; d++ {
		la, okA := linearize(a.Expr.Subs[d], env)
		lb, okB := linearize(b.Expr.Subs[d], env)
		if !okA || !okB {
			continue // non-affine dimension constrains nothing
		}
		// Loop indices of loops NOT common to both references are
		// distinct iteration instances even when they share a name
		// (e.g. two separate "do i" loops): rename them per side so
		// they cannot cancel.
		la = renameNonCommon(la, a, common, "·src")
		lb = renameNonCommon(lb, b, common, "·snk")
		// The two references execute at distinct iteration vectors, so
		// loop-index coefficients must NOT be cancelled between la and
		// lb: a loop variable v contributes caA·v_a − caB·v_b. Only
		// loop-invariant symbolic terms cancel.
		otherSymbolic := false
		var levels []int
		for v := range unionVars(la.coef, lb.coef) {
			ca, cb := la.coef[v], lb.coef[v]
			if ca == 0 && cb == 0 {
				continue
			}
			idx := indexOf(vars, v)
			if idx >= 0 {
				levels = append(levels, idx)
			} else if ca != cb {
				otherSymbolic = true
			}
		}
		konst := la.konst - lb.konst // kA − kB
		switch {
		case otherSymbolic:
			// a symbolic term that does not cancel usually yields no
			// information — but when exactly one loop variable is
			// involved, the pinned solution may still be provably
			// outside the loop bounds (dgefa's a(i,j) vs a(k,j) with
			// i = k+1..n)
			if len(levels) == 1 && weakZeroDisproved(la, lb, vars[levels[0]], common[levels[0]], env) {
				return nil, false
			}
			continue
		case len(levels) == 0:
			// ZIV: independent iff the constant difference is nonzero
			if konst != 0 {
				return nil, false
			}
		case len(levels) == 1:
			lv := levels[0]
			caA := la.coef[vars[lv]]
			caB := lb.coef[vars[lv]]
			if caA == caB && caA != 0 {
				// strong SIV: a·ia + kA = a·ib + kB
				// ⇒ dist = ib − ia = (kA − kB)/a
				if konst%caA != 0 {
					return nil, false // no integer solution: independent
				}
				dist := konst / caA
				if constrained[lv] && dv[lv].known && dv[lv].dist != dist {
					return nil, false // inconsistent constraints
				}
				dv[lv] = distEntry{dist: dist, known: true}
				constrained[lv] = true
			} else {
				// weak SIV: when one side is loop-invariant the only
				// dependence solution pins the variant side's
				// iteration to a symbolic value; if loop bounds prove
				// that value is outside the loop, no dependence
				// exists (e.g. dgefa's a(i,j) vs a(k,j) with
				// i = k+1..n).
				if weakZeroDisproved(la, lb, vars[lv], common[lv], env) {
					return nil, false
				}
				g := gcd(abs(caA), abs(caB))
				if g != 0 && konst%g != 0 {
					return nil, false
				}
				dv[lv] = distEntry{unknown: true}
				constrained[lv] = true
			}
		default:
			// MIV: GCD test for feasibility, direction unknown
			g := 0
			for _, lv := range levels {
				g = gcd(g, abs(la.coef[vars[lv]]))
				g = gcd(g, abs(lb.coef[vars[lv]]))
			}
			if g != 0 && konst%g != 0 {
				return nil, false
			}
			for _, lv := range levels {
				dv[lv] = distEntry{unknown: true}
				constrained[lv] = true
			}
		}
	}
	// unconstrained levels: the references touch overlapping data on
	// every iteration of those loops, so a dependence may be carried
	// there in either direction
	for lv := range dv {
		if !constrained[lv] {
			dv[lv] = distEntry{unknown: true}
		}
	}
	return dv, true
}

// renameNonCommon gives loop indices of the reference's own (non-common)
// loops a side-specific name so the two iteration spaces stay distinct.
func renameNonCommon(l linear, r *Ref, common []*ast.Do, tag string) linear {
	own := map[string]bool{}
	for _, loop := range r.Nest[len(common):] {
		own[loop.Var] = true
	}
	if len(own) == 0 {
		return l
	}
	out := linear{coef: map[string]int{}, konst: l.konst}
	for v, c := range l.coef {
		if own[v] {
			out.coef[v+tag] = c
		} else {
			out.coef[v] = c
		}
	}
	return out
}

// weakZeroDisproved handles the weak-zero SIV case: if exactly one side
// varies with the loop (unit coefficient) and the pinned solution
// iteration provably lies outside the loop bounds, the references are
// independent.
func weakZeroDisproved(la, lb linear, v string, loop *ast.Do, env ast.Env) bool {
	caA, caB := la.coef[v], lb.coef[v]
	variant, invariant := la, lb
	ca := caA
	if caA == 0 && caB != 0 {
		variant, invariant = lb, la
		ca = caB
	} else if caA == 0 || caB != 0 {
		return false
	}
	if ca != 1 && ca != -1 {
		return false
	}
	// solution: ca·i + (variant \ v) = invariant  ⇒  i = (invariant − variantRest)/ca
	rest := linear{coef: map[string]int{}, konst: variant.konst}
	for name, c := range variant.coef {
		if name != v {
			rest.coef[name] = c
		}
	}
	sol := invariant.minus(rest)
	if ca == -1 {
		neg := linear{coef: map[string]int{}, konst: -sol.konst}
		for name, c := range sol.coef {
			neg.coef[name] = -c
		}
		sol = neg
	}
	if lo, ok := linearize(loop.Lo, env); ok {
		if d, isConst := constantDiff(lo.minus(sol)); isConst && d >= 1 {
			return true // solution below the loop's first iteration
		}
	}
	if hi, ok := linearize(loop.Hi, env); ok {
		if d, isConst := constantDiff(sol.minus(hi)); isConst && d >= 1 {
			return true // solution above the loop's last iteration
		}
	}
	return false
}

// constantDiff reports whether a linear form is a pure constant.
func constantDiff(l linear) (int, bool) {
	for _, c := range l.coef {
		if c != 0 {
			return 0, false
		}
	}
	return l.konst, true
}

func unionVars(a, b map[string]int) map[string]struct{} {
	out := make(map[string]struct{}, len(a)+len(b))
	for v := range a {
		out[v] = struct{}{}
	}
	for v := range b {
		out[v] = struct{}{}
	}
	return out
}

// ---------------------------------------------------------------------------
// Affine subscript forms

type linear struct {
	coef  map[string]int
	konst int
}

func (l linear) minus(o linear) linear {
	out := linear{coef: map[string]int{}, konst: l.konst - o.konst}
	for v, c := range l.coef {
		out.coef[v] += c
	}
	for v, c := range o.coef {
		out.coef[v] -= c
	}
	return out
}

// linearize puts e into the form Σ ci·vi + c, treating every identifier
// as a symbolic term. ok is false for non-affine expressions.
func linearize(e ast.Expr, env ast.Env) (linear, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return linear{coef: map[string]int{}, konst: x.Value}, true
	case *ast.Ident:
		if env != nil {
			if v, ok := env.Value(x.Name); ok {
				return linear{coef: map[string]int{}, konst: v}, true
			}
		}
		return linear{coef: map[string]int{x.Name: 1}, konst: 0}, true
	case *ast.Unary:
		if x.Op != "-" {
			return linear{}, false
		}
		l, ok := linearize(x.X, env)
		if !ok {
			return linear{}, false
		}
		out := linear{coef: map[string]int{}, konst: -l.konst}
		for v, c := range l.coef {
			out.coef[v] = -c
		}
		return out, true
	case *ast.Binary:
		a, okA := linearize(x.X, env)
		b, okB := linearize(x.Y, env)
		if !okA || !okB {
			return linear{}, false
		}
		switch x.Op {
		case ast.OpAdd:
			out := a
			for v, c := range b.coef {
				out.coef[v] += c
			}
			out.konst += b.konst
			return out, true
		case ast.OpSub:
			return a.minus(b), true
		case ast.OpMul:
			// one side must be constant
			if len(a.coef) == 0 {
				out := linear{coef: map[string]int{}, konst: a.konst * b.konst}
				for v, c := range b.coef {
					out.coef[v] = a.konst * c
				}
				return out, true
			}
			if len(b.coef) == 0 {
				out := linear{coef: map[string]int{}, konst: a.konst * b.konst}
				for v, c := range a.coef {
					out.coef[v] = b.konst * c
				}
				return out, true
			}
			return linear{}, false
		}
		return linear{}, false
	}
	return linear{}, false
}

// LinearSubscript exposes the affine decomposition of a subscript for
// other phases (partitioning, communication): sub = Coef·var + Konst.
// ok is false when the subscript is not of single-index affine form.
func LinearSubscript(e ast.Expr, env ast.Env) (variable string, coef, konst int, ok bool) {
	l, good := linearize(e, env)
	if !good {
		return "", 0, 0, false
	}
	nonzero := 0
	for v, c := range l.coef {
		if c != 0 {
			nonzero++
			variable = v
			coef = c
		}
	}
	if nonzero > 1 {
		return "", 0, 0, false
	}
	return variable, coef, l.konst, true
}

// ---------------------------------------------------------------------------
// Queries used by communication placement

// DeepestTrueSinkLevel returns the deepest local loop level (1-based)
// that carries a true dependence whose sink is the given reference
// expression. It returns 0 when every true dependence ending at the
// reference is loop-independent or absent, in which case communication
// may be fully vectorized outside the local loops.
func (in *Info) DeepestTrueSinkLevel(expr *ast.ArrayRef) int {
	deepest := 0
	for _, d := range in.Deps {
		if d.Kind == True && d.Snk.Expr == expr && d.Level > deepest {
			deepest = d.Level
		}
	}
	return deepest
}

// HasTrueDepAtLevel reports whether any true dependence on the given
// array is carried at the given loop (identified by its Do node).
func (in *Info) HasTrueDepAtLevel(array string, loop *ast.Do) bool {
	for _, d := range in.Deps {
		if d.Kind != True || d.Src.Array != array || d.Level == 0 {
			continue
		}
		if d.Level <= len(d.Snk.Nest) && d.Snk.Nest[d.Level-1] == loop {
			return true
		}
	}
	return false
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
