package parser

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse asserts the lexer+parser never panic: arbitrary input must
// either parse or return an error. The corpus is seeded with every
// checked-in Fortran D source under the repository's testdata.
func FuzzParse(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.f"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("      PROGRAM P\n      END\n")
	f.Add("      SUBROUTINE S(X, N)\n      REAL X(N)\n      RETURN\n      END\n")
	f.Add("      DECOMPOSITION D(100)\n      ALIGN X WITH D\n      DISTRIBUTE D(BLOCK)\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
	})
}
