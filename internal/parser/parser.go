// Package parser builds the AST for the Fortran 77 / Fortran D subset.
// It is a line-oriented recursive-descent parser: each statement occupies
// one line (as in the paper's figures), declarations precede executable
// statements, and keywords are case-insensitive.
package parser

import (
	"fmt"
	"strings"

	"fortd/internal/ast"
	"fortd/internal/lexer"
)

// Parse parses a complete Fortran D program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var units []*ast.Procedure
	for !p.at(lexer.EOF) {
		u, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("parser: empty program")
	}
	// program-unit names must be unique: every later pass indexes
	// procedures by name, so a collision would silently merge units
	seen := map[string]bool{}
	for _, u := range units {
		if seen[u.Name] {
			return nil, fmt.Errorf("parser: duplicate program unit name %s", u.Name)
		}
		seen[u.Name] = true
	}
	return ast.NewProgram(units), nil
}

// ParseProcedure parses a single program unit (used in tests).
func ParseProcedure(src string) (*ast.Procedure, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return prog.Units[0], nil
}

type parser struct {
	toks     []lexer.Token
	pos      int
	unit     *ast.Procedure
	siteSeq  int
	implicit bool // allow implicit declarations (always on)
}

func (p *parser) at(k lexer.Kind) bool { return p.toks[p.pos].Kind == k }

func (p *parser) peek() lexer.Token { return p.toks[p.pos] }

func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k lexer.Kind, what string) (lexer.Token, error) {
	t := p.next()
	if t.Kind != k {
		return t, fmt.Errorf("line %d: expected %s, found %q", t.Line, what, t.Text)
	}
	return t, nil
}

// atKeyword reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == lexer.IDENT && strings.EqualFold(t.Text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) skipNewlines() {
	for p.at(lexer.NEWLINE) {
		p.pos++
	}
}

func (p *parser) endOfStmt() error {
	if p.at(lexer.EOF) {
		return nil
	}
	t := p.next()
	if t.Kind != lexer.NEWLINE {
		return fmt.Errorf("line %d: unexpected %q at end of statement", t.Line, t.Text)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Units

func (p *parser) parseUnit() (*ast.Procedure, error) {
	p.skipNewlines()
	line := p.peek().Line
	u := &ast.Procedure{Symbols: ast.NewSymbolTable()}
	switch {
	case p.acceptKeyword("PROGRAM"):
		t, err := p.expect(lexer.IDENT, "program name")
		if err != nil {
			return nil, err
		}
		u.Name = t.Text
		u.IsMain = true
	case p.acceptKeyword("SUBROUTINE"):
		t, err := p.expect(lexer.IDENT, "subroutine name")
		if err != nil {
			return nil, err
		}
		u.Name = t.Text
		if p.at(lexer.LPAREN) {
			p.next()
			for !p.at(lexer.RPAREN) {
				id, err := p.expect(lexer.IDENT, "parameter name")
				if err != nil {
					return nil, err
				}
				u.Params = append(u.Params, id.Text)
				if p.at(lexer.COMMA) {
					p.next()
				}
			}
			p.next() // RPAREN
		}
	default:
		return nil, fmt.Errorf("line %d: expected PROGRAM or SUBROUTINE, found %q", line, p.peek().Text)
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	for i, name := range u.Params {
		u.Symbols.Define(&ast.Symbol{
			Name: name, Kind: ast.SymScalar, Type: implicitType(name),
			IsFormal: true, FormalIndex: i,
		})
	}
	p.unit = u
	body, err := p.parseStmts("END")
	if err != nil {
		return nil, err
	}
	u.Body = body
	// consume END
	if !p.acceptKeyword("END") {
		return nil, fmt.Errorf("line %d: expected END", p.peek().Line)
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	return u, nil
}

func implicitType(name string) ast.DataType {
	c := strings.ToLower(name)[0]
	if c >= 'i' && c <= 'n' {
		return ast.TypeInteger
	}
	return ast.TypeReal
}

// defineImplicit ensures name has a symbol, creating an implicit scalar.
func (p *parser) defineImplicit(name string) *ast.Symbol {
	if s := p.unit.Symbols.Lookup(name); s != nil {
		return s
	}
	s := &ast.Symbol{Name: name, Kind: ast.SymScalar, Type: implicitType(name), FormalIndex: -1}
	p.unit.Symbols.Define(s)
	return s
}

// ---------------------------------------------------------------------------
// Statement lists

// parseStmts parses statements until one of the given terminating
// keywords is at the front (not consumed).
func (p *parser) parseStmts(terminators ...string) ([]ast.Stmt, error) {
	var out []ast.Stmt
	for {
		p.skipNewlines()
		if p.at(lexer.EOF) {
			return out, nil
		}
		for _, term := range terminators {
			if p.atTerminator(term) {
				return out, nil
			}
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
}

// atTerminator matches "END", "ENDDO", "END DO", "ENDIF", "END IF", "ELSE".
func (p *parser) atTerminator(term string) bool {
	t := p.peek()
	if t.Kind != lexer.IDENT {
		return false
	}
	up := strings.ToUpper(t.Text)
	switch term {
	case "END":
		if up != "END" {
			return false
		}
		// plain END only: next token must be NEWLINE/EOF
		nt := p.toks[p.pos+1]
		return nt.Kind == lexer.NEWLINE || nt.Kind == lexer.EOF
	case "ENDDO":
		if up == "ENDDO" {
			return true
		}
		if up == "END" {
			nt := p.toks[p.pos+1]
			return nt.Kind == lexer.IDENT && strings.EqualFold(nt.Text, "DO")
		}
	case "ENDIF":
		if up == "ENDIF" {
			return true
		}
		if up == "END" {
			nt := p.toks[p.pos+1]
			return nt.Kind == lexer.IDENT && strings.EqualFold(nt.Text, "IF")
		}
	case "ELSE":
		return up == "ELSE"
	}
	return false
}

func (p *parser) consumeTerminator(term string) {
	t := p.next() // END / ENDDO / ENDIF / ELSE
	up := strings.ToUpper(t.Text)
	if up == "END" && (term == "ENDDO" || term == "ENDIF") {
		p.next() // DO / IF
	}
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseStmt() (ast.Stmt, error) {
	// drop a figure-style statement label: "S1 <stmt>"
	if t := p.peek(); t.Kind == lexer.IDENT && isLabel(t.Text) {
		nt := p.toks[p.pos+1]
		if nt.Kind != lexer.EQUALS && nt.Kind != lexer.LPAREN &&
			nt.Kind != lexer.NEWLINE && nt.Kind != lexer.COMMA {
			p.pos++
		}
	}
	t := p.peek()
	if t.Kind != lexer.IDENT {
		return nil, fmt.Errorf("line %d: unexpected %q at start of statement", t.Line, t.Text)
	}
	switch strings.ToUpper(t.Text) {
	case "REAL", "INTEGER", "LOGICAL":
		return nil, p.parseTypeDecl()
	case "DOUBLE":
		return nil, p.parseTypeDecl()
	case "PARAMETER":
		return nil, p.parseParameter()
	case "COMMON":
		return nil, p.parseCommon()
	case "DECOMPOSITION":
		return p.parseDecomposition()
	case "ALIGN":
		return p.parseAlign()
	case "DISTRIBUTE":
		return p.parseDistribute()
	case "DO":
		return p.parseDo()
	case "IF":
		return p.parseIf()
	case "CALL":
		return p.parseCall()
	case "RETURN":
		p.next()
		s := &ast.Return{}
		return s, p.endOfStmt()
	case "CONTINUE":
		p.next()
		return nil, p.endOfStmt()
	// output-language statements, accepted so generated SPMD programs
	// round-trip through the printer
	case "SEND":
		return p.parseComm("SEND")
	case "RECV":
		return p.parseComm("RECV")
	case "BROADCAST":
		return p.parseComm("BROADCAST")
	case "ALLGATHER":
		return p.parseComm("ALLGATHER")
	case "POSTRECV", "POSTBCAST":
		return p.parsePost(strings.ToUpper(t.Text) == "POSTBCAST")
	case "WAITRECV", "WAITBCAST":
		return p.parseWait(strings.ToUpper(t.Text) == "WAITBCAST")
	case "REMAP", "MARKAS":
		return p.parseRemap(strings.ToUpper(t.Text) == "MARKAS")
	case "GLOBALSUM", "GLOBALMAX", "GLOBALMIN":
		op := map[string]string{"GLOBALSUM": "+", "GLOBALMAX": "MAX", "GLOBALMIN": "MIN"}[strings.ToUpper(t.Text)]
		p.next()
		id, err := p.expect(lexer.IDENT, "reduction variable")
		if err != nil {
			return nil, err
		}
		st := &ast.GlobalReduce{Var: id.Text, Op: op}
		return st, p.endOfStmt()
	}
	return p.parseAssign()
}

func isLabel(s string) bool {
	if len(s) < 2 || (s[0] != 'S' && s[0] != 's') {
		return false
	}
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func (p *parser) parseTypeDecl() error {
	t := p.next()
	var typ ast.DataType
	switch strings.ToUpper(t.Text) {
	case "REAL":
		typ = ast.TypeReal
	case "INTEGER":
		typ = ast.TypeInteger
	case "LOGICAL":
		typ = ast.TypeLogical
	case "DOUBLE":
		if !p.acceptKeyword("PRECISION") {
			return fmt.Errorf("line %d: expected PRECISION after DOUBLE", t.Line)
		}
		typ = ast.TypeDouble
	}
	for {
		id, err := p.expect(lexer.IDENT, "variable name")
		if err != nil {
			return err
		}
		sym := &ast.Symbol{Name: id.Text, Kind: ast.SymScalar, Type: typ, FormalIndex: -1}
		if prev := p.unit.Symbols.Lookup(id.Text); prev != nil && prev.IsFormal {
			sym.IsFormal = true
			sym.FormalIndex = prev.FormalIndex
		}
		if p.at(lexer.LPAREN) {
			dims, err := p.parseExtents()
			if err != nil {
				return err
			}
			sym.Kind = ast.SymArray
			sym.Dims = dims
		}
		p.unit.Symbols.Define(sym)
		if !p.at(lexer.COMMA) {
			break
		}
		p.next()
	}
	return p.endOfStmt()
}

func (p *parser) parseExtents() ([]ast.Extent, error) {
	if _, err := p.expect(lexer.LPAREN, "("); err != nil {
		return nil, err
	}
	var dims []ast.Extent
	for {
		lo := ast.Expr(ast.Int(1))
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.at(lexer.COLON) {
			p.next()
			lo = hi
			hi, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		dims = append(dims, ast.Extent{Lo: lo, Hi: hi})
		if p.at(lexer.COMMA) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(lexer.RPAREN, ")"); err != nil {
		return nil, err
	}
	return dims, nil
}

func (p *parser) parseParameter() error {
	p.next() // PARAMETER
	if _, err := p.expect(lexer.LPAREN, "("); err != nil {
		return err
	}
	for {
		id, err := p.expect(lexer.IDENT, "constant name")
		if err != nil {
			return err
		}
		if _, err := p.expect(lexer.EQUALS, "="); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		v, ok := ast.EvalInt(e, p.constEnv())
		if !ok {
			return fmt.Errorf("line %d: PARAMETER value for %s is not constant", id.Line, id.Text)
		}
		p.unit.Symbols.Define(&ast.Symbol{
			Name: id.Text, Kind: ast.SymConstant, Type: ast.TypeInteger,
			FormalIndex: -1, ConstValue: v,
		})
		if p.at(lexer.COMMA) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(lexer.RPAREN, ")"); err != nil {
		return err
	}
	return p.endOfStmt()
}

// constEnv exposes the PARAMETER constants declared so far.
func (p *parser) constEnv() ast.Env {
	env := ast.MapEnv{}
	for _, s := range p.unit.Symbols.Symbols() {
		if s.Kind == ast.SymConstant {
			env[s.Name] = s.ConstValue
		}
	}
	return env
}

func (p *parser) parseCommon() error {
	p.next() // COMMON
	block := "blank"
	if p.at(lexer.SLASH) {
		p.next()
		id, err := p.expect(lexer.IDENT, "common block name")
		if err != nil {
			return err
		}
		block = id.Text
		if _, err := p.expect(lexer.SLASH, "/"); err != nil {
			return err
		}
	}
	for {
		id, err := p.expect(lexer.IDENT, "variable name")
		if err != nil {
			return err
		}
		sym := p.defineImplicit(id.Text)
		sym.Common = block
		if p.at(lexer.LPAREN) {
			dims, err := p.parseExtents()
			if err != nil {
				return err
			}
			sym.Kind = ast.SymArray
			sym.Dims = dims
		}
		if !p.at(lexer.COMMA) {
			break
		}
		p.next()
	}
	return p.endOfStmt()
}

// ---------------------------------------------------------------------------
// Fortran D directives

func (p *parser) parseDecomposition() (ast.Stmt, error) {
	line := p.next().Line // DECOMPOSITION
	id, err := p.expect(lexer.IDENT, "decomposition name")
	if err != nil {
		return nil, err
	}
	dims, err := p.parseExtents()
	if err != nil {
		return nil, err
	}
	sym := &ast.Symbol{Name: id.Text, Kind: ast.SymDecomposition, FormalIndex: -1, Dims: dims}
	p.unit.Symbols.Define(sym)
	sizes := make([]int, len(dims))
	env := p.constEnv()
	for i, d := range dims {
		lo, okLo := ast.EvalInt(d.Lo, env)
		hi, okHi := ast.EvalInt(d.Hi, env)
		if !okLo || !okHi {
			return nil, fmt.Errorf("line %d: decomposition %s requires constant bounds", line, id.Text)
		}
		sizes[i] = hi - lo + 1
	}
	st := &ast.Decomposition{Name: id.Text, Dims: sizes}
	st.Position = ast.Position{Line: line}
	return st, p.endOfStmt()
}

// parseAlign handles "ALIGN X(i,j) with D(j,i)" and "ALIGN X with D".
func (p *parser) parseAlign() (ast.Stmt, error) {
	line := p.next().Line // ALIGN
	arr, err := p.expect(lexer.IDENT, "array name")
	if err != nil {
		return nil, err
	}
	var srcVars []string
	if p.at(lexer.LPAREN) {
		p.next()
		for !p.at(lexer.RPAREN) {
			id, err := p.expect(lexer.IDENT, "align index")
			if err != nil {
				return nil, err
			}
			srcVars = append(srcVars, id.Text)
			if p.at(lexer.COMMA) {
				p.next()
			}
		}
		p.next()
	}
	if !p.acceptKeyword("WITH") {
		return nil, fmt.Errorf("line %d: expected WITH in ALIGN", line)
	}
	target, err := p.expect(lexer.IDENT, "decomposition name")
	if err != nil {
		return nil, err
	}
	var terms []ast.AlignTerm
	if p.at(lexer.LPAREN) {
		p.next()
		for !p.at(lexer.RPAREN) {
			term, err := p.parseAlignTerm(srcVars)
			if err != nil {
				return nil, err
			}
			terms = append(terms, term)
			if p.at(lexer.COMMA) {
				p.next()
			}
		}
		p.next()
	} else {
		// identity alignment; rank determined later from declarations
		sym := p.unit.Symbols.Lookup(arr.Text)
		rank := 1
		if sym != nil && sym.Kind == ast.SymArray {
			rank = sym.NumDims()
		}
		for d := 0; d < rank; d++ {
			terms = append(terms, ast.AlignTerm{ArrayDim: d})
		}
	}
	st := &ast.Align{Array: arr.Text, Target: target.Text, Terms: terms}
	st.Position = ast.Position{Line: line}
	return st, p.endOfStmt()
}

// parseAlignTerm parses one decomposition-dimension slot: an index
// variable from srcVars possibly +/- a constant offset, or "*"/":" for
// an unmapped dimension.
func (p *parser) parseAlignTerm(srcVars []string) (ast.AlignTerm, error) {
	t := p.next()
	if t.Kind == lexer.STAR || t.Kind == lexer.COLON {
		return ast.AlignTerm{ArrayDim: -1}, nil
	}
	if t.Kind != lexer.IDENT {
		return ast.AlignTerm{}, fmt.Errorf("line %d: bad ALIGN term %q", t.Line, t.Text)
	}
	dim := -1
	for i, v := range srcVars {
		if strings.EqualFold(v, t.Text) {
			dim = i
			break
		}
	}
	if dim < 0 {
		return ast.AlignTerm{}, fmt.Errorf("line %d: ALIGN term %q is not an align index", t.Line, t.Text)
	}
	off := 0
	if p.at(lexer.PLUS) || p.at(lexer.MINUS) {
		neg := p.next().Kind == lexer.MINUS
		n, err := p.expect(lexer.INT, "align offset")
		if err != nil {
			return ast.AlignTerm{}, err
		}
		off = n.Int
		if neg {
			off = -off
		}
	}
	return ast.AlignTerm{ArrayDim: dim, Offset: off}, nil
}

func (p *parser) parseDistribute() (ast.Stmt, error) {
	p.next() // DISTRIBUTE
	id, err := p.expect(lexer.IDENT, "distribute target")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LPAREN, "("); err != nil {
		return nil, err
	}
	var specs []ast.DistSpec
	for !p.at(lexer.RPAREN) {
		t := p.next()
		switch {
		case t.Kind == lexer.COLON:
			specs = append(specs, ast.DistSpec{Kind: ast.DistNone})
		case t.Kind == lexer.IDENT && strings.EqualFold(t.Text, "BLOCK"):
			specs = append(specs, ast.DistSpec{Kind: ast.DistBlock})
		case t.Kind == lexer.IDENT && strings.EqualFold(t.Text, "CYCLIC"):
			sp := ast.DistSpec{Kind: ast.DistCyclic}
			if p.at(lexer.LPAREN) {
				p.next()
				n, err := p.expect(lexer.INT, "block size")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(lexer.RPAREN, ")"); err != nil {
					return nil, err
				}
				if n.Int > 1 {
					sp = ast.DistSpec{Kind: ast.DistBlockCyclic, BlockSize: n.Int}
				}
			}
			specs = append(specs, sp)
		default:
			return nil, fmt.Errorf("line %d: bad distribution format %q", t.Line, t.Text)
		}
		if p.at(lexer.COMMA) {
			p.next()
		}
	}
	p.next() // RPAREN
	st := &ast.Distribute{Target: id.Text, Specs: specs}
	st.Position = ast.Position{Line: id.Line}
	return st, p.endOfStmt()
}

// ---------------------------------------------------------------------------
// Executable statements

func (p *parser) parseDo() (ast.Stmt, error) {
	line := p.next().Line // DO
	v, err := p.expect(lexer.IDENT, "loop variable")
	if err != nil {
		return nil, err
	}
	p.defineImplicit(v.Text)
	if _, err := p.expect(lexer.EQUALS, "="); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.COMMA, ","); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var step ast.Expr
	if p.at(lexer.COMMA) {
		p.next()
		step, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	body, err := p.parseStmts("ENDDO", "END")
	if err != nil {
		return nil, err
	}
	if !p.atTerminator("ENDDO") {
		return nil, fmt.Errorf("line %d: DO loop not terminated by ENDDO", line)
	}
	p.consumeTerminator("ENDDO")
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	st := &ast.Do{Var: v.Text, Lo: lo, Hi: hi, Step: step, Body: body}
	st.Position = ast.Position{Line: line}
	return st, nil
}

func (p *parser) parseIf() (ast.Stmt, error) {
	line := p.next().Line // IF
	if _, err := p.expect(lexer.LPAREN, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RPAREN, ")"); err != nil {
		return nil, err
	}
	st := &ast.If{Cond: cond}
	st.Position = ast.Position{Line: line}
	if p.acceptKeyword("THEN") {
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		st.Then, err = p.parseStmts("ELSE", "ENDIF", "END")
		if err != nil {
			return nil, err
		}
		if p.atTerminator("ELSE") {
			p.consumeTerminator("ELSE")
			if err := p.endOfStmt(); err != nil {
				return nil, err
			}
			st.Else, err = p.parseStmts("ENDIF", "END")
			if err != nil {
				return nil, err
			}
		}
		if !p.atTerminator("ENDIF") {
			return nil, fmt.Errorf("line %d: IF block not terminated by ENDIF", line)
		}
		p.consumeTerminator("ENDIF")
		return st, p.endOfStmt()
	}
	// logical IF: a single statement on the same line
	inner, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if inner != nil {
		st.Then = []ast.Stmt{inner}
	}
	return st, nil
}

func (p *parser) parseCall() (ast.Stmt, error) {
	p.next() // CALL
	id, err := p.expect(lexer.IDENT, "subroutine name")
	if err != nil {
		return nil, err
	}
	st := &ast.Call{Name: id.Text, Site: p.nextSite()}
	st.Position = ast.Position{Line: id.Line}
	if p.at(lexer.LPAREN) {
		p.next()
		for !p.at(lexer.RPAREN) {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, a)
			if p.at(lexer.COMMA) {
				p.next()
			}
		}
		p.next()
	}
	return st, p.endOfStmt()
}

func (p *parser) nextSite() int {
	p.siteSeq++
	return p.siteSeq
}

func (p *parser) parseAssign() (ast.Stmt, error) {
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	switch lhs.(type) {
	case *ast.Ident, *ast.ArrayRef:
	case *ast.FuncCall:
		// an undeclared array used on the lhs parses as FuncCall; convert
		fc := lhs.(*ast.FuncCall)
		lhs = &ast.ArrayRef{Name: fc.Name, Subs: fc.Args}
	default:
		return nil, fmt.Errorf("line %d: invalid assignment target", p.peek().Line)
	}
	if _, err := p.expect(lexer.EQUALS, "="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	st := &ast.Assign{Lhs: lhs, Rhs: rhs}
	st.Position = ast.Position{Line: p.peek().Line}
	return st, p.endOfStmt()
}

// parseComm parses the generated-code message statements:
//
//	send  ARR(sec,...) to EXPR
//	recv  ARR(sec,...) from EXPR
//	broadcast ARR(sec,...) from EXPR
//	allgather ARR(sec,...)
//
// where each section dimension is "expr" or "expr:expr".
func (p *parser) parseComm(kind string) (ast.Stmt, error) {
	p.next() // keyword
	arr, err := p.expect(lexer.IDENT, "array name")
	if err != nil {
		return nil, err
	}
	sec, err := p.parseSection()
	if err != nil {
		return nil, err
	}
	var peer ast.Expr
	switch kind {
	case "SEND":
		if !p.acceptKeyword("TO") {
			return nil, fmt.Errorf("line %d: expected TO", arr.Line)
		}
	case "RECV", "BROADCAST":
		if !p.acceptKeyword("FROM") {
			return nil, fmt.Errorf("line %d: expected FROM", arr.Line)
		}
	}
	if kind != "ALLGATHER" {
		peer, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	pos := ast.Position{Line: arr.Line}
	var st ast.Stmt
	switch kind {
	case "SEND":
		s := &ast.Send{Array: arr.Text, Sec: sec, Dest: peer}
		s.Position = pos
		st = s
	case "RECV":
		s := &ast.Recv{Array: arr.Text, Sec: sec, Src: peer}
		s.Position = pos
		st = s
	case "BROADCAST":
		s := &ast.Broadcast{Array: arr.Text, Sec: sec, Root: peer}
		s.Position = pos
		st = s
	case "ALLGATHER":
		s := &ast.AllGather{Array: arr.Text, Sec: sec}
		s.Position = pos
		st = s
	}
	return st, p.endOfStmt()
}

// parsePost parses the split-phase post statements emitted by the
// overlap schedule:
//
//	postrecv  ARR(sec,...) from EXPR tag N
//	postbcast ARR(sec,...) from EXPR tag N
func (p *parser) parsePost(bcast bool) (ast.Stmt, error) {
	p.next() // keyword
	arr, err := p.expect(lexer.IDENT, "array name")
	if err != nil {
		return nil, err
	}
	sec, err := p.parseSection()
	if err != nil {
		return nil, err
	}
	if !p.acceptKeyword("FROM") {
		return nil, fmt.Errorf("line %d: expected FROM", arr.Line)
	}
	peer, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	tag, err := p.parseTag(arr.Line)
	if err != nil {
		return nil, err
	}
	pos := ast.Position{Line: arr.Line}
	var st ast.Stmt
	if bcast {
		s := &ast.PostBcast{Array: arr.Text, Sec: sec, Root: peer, Tag: tag}
		s.Position = pos
		st = s
	} else {
		s := &ast.PostRecv{Array: arr.Text, Sec: sec, Src: peer, Tag: tag}
		s.Position = pos
		st = s
	}
	return st, p.endOfStmt()
}

// parseWait parses "waitrecv ARR tag N" / "waitbcast ARR tag N".
func (p *parser) parseWait(bcast bool) (ast.Stmt, error) {
	p.next() // keyword
	arr, err := p.expect(lexer.IDENT, "array name")
	if err != nil {
		return nil, err
	}
	tag, err := p.parseTag(arr.Line)
	if err != nil {
		return nil, err
	}
	pos := ast.Position{Line: arr.Line}
	var st ast.Stmt
	if bcast {
		s := &ast.WaitBcast{Array: arr.Text, Tag: tag}
		s.Position = pos
		st = s
	} else {
		s := &ast.WaitRecv{Array: arr.Text, Tag: tag}
		s.Position = pos
		st = s
	}
	return st, p.endOfStmt()
}

func (p *parser) parseTag(line int) (int, error) {
	if !p.acceptKeyword("TAG") {
		return 0, fmt.Errorf("line %d: expected TAG", line)
	}
	t, err := p.expect(lexer.INT, "tag number")
	if err != nil {
		return 0, err
	}
	return t.Int, nil
}

func (p *parser) parseSection() ([]ast.SecDim, error) {
	if _, err := p.expect(lexer.LPAREN, "("); err != nil {
		return nil, err
	}
	var sec []ast.SecDim
	for !p.at(lexer.RPAREN) {
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		hi := ast.CloneExpr(lo)
		if p.at(lexer.COLON) {
			p.next()
			hi, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		sec = append(sec, ast.SecDim{Lo: lo, Hi: hi})
		if p.at(lexer.COMMA) {
			p.next()
		}
	}
	p.next() // RPAREN
	return sec, nil
}

// parseRemap parses "remap ARR(SPEC,...)" / "markas ARR(SPEC,...)".
func (p *parser) parseRemap(inPlace bool) (ast.Stmt, error) {
	p.next() // keyword
	arr, err := p.expect(lexer.IDENT, "array name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LPAREN, "("); err != nil {
		return nil, err
	}
	var specs []ast.DistSpec
	for !p.at(lexer.RPAREN) {
		t := p.next()
		switch {
		case t.Kind == lexer.COLON:
			specs = append(specs, ast.DistSpec{Kind: ast.DistNone})
		case t.Kind == lexer.IDENT && strings.EqualFold(t.Text, "BLOCK"):
			specs = append(specs, ast.DistSpec{Kind: ast.DistBlock})
		case t.Kind == lexer.IDENT && strings.EqualFold(t.Text, "CYCLIC"):
			sp := ast.DistSpec{Kind: ast.DistCyclic}
			if p.at(lexer.LPAREN) {
				p.next()
				n, err := p.expect(lexer.INT, "block size")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(lexer.RPAREN, ")"); err != nil {
					return nil, err
				}
				if n.Int > 1 {
					sp = ast.DistSpec{Kind: ast.DistBlockCyclic, BlockSize: n.Int}
				}
			}
			specs = append(specs, sp)
		default:
			return nil, fmt.Errorf("line %d: bad remap format %q", t.Line, t.Text)
		}
		if p.at(lexer.COMMA) {
			p.next()
		}
	}
	p.next() // RPAREN
	st := &ast.Remap{Array: arr.Text, To: specs, InPlace: inPlace}
	return st, p.endOfStmt()
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (ast.Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.RELOP) && p.peek().Text == "OR" {
		p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &ast.Binary{Op: ast.OpOr, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	x, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.RELOP) && p.peek().Text == "AND" {
		p.next()
		y, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		x = &ast.Binary{Op: ast.OpAnd, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.at(lexer.RELOP) && p.peek().Text == "NOT" {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: ".NOT.", X: x}, nil
	}
	return p.parseRel()
}

var relOps = map[string]ast.BinOp{
	"EQ": ast.OpEQ, "NE": ast.OpNE, "LT": ast.OpLT,
	"LE": ast.OpLE, "GT": ast.OpGT, "GE": ast.OpGE,
}

func (p *parser) parseRel() (ast.Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.at(lexer.RELOP) {
		if op, ok := relOps[p.peek().Text]; ok {
			p.next()
			y, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &ast.Binary{Op: op, X: x, Y: y}, nil
		}
	}
	return x, nil
}

func (p *parser) parseAdd() (ast.Expr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.PLUS) || p.at(lexer.MINUS) {
		op := ast.OpAdd
		if p.next().Kind == lexer.MINUS {
			op = ast.OpSub
		}
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &ast.Binary{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseMul() (ast.Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.STAR) || p.at(lexer.SLASH) {
		op := ast.OpMul
		if p.next().Kind == lexer.SLASH {
			op = ast.OpDiv
		}
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &ast.Binary{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.at(lexer.MINUS) {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "-", X: x}, nil
	}
	if p.at(lexer.PLUS) {
		p.next()
		return p.parseUnary()
	}
	return p.parsePow()
}

func (p *parser) parsePow() (ast.Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.at(lexer.POW) {
		p.next()
		y, err := p.parseUnary() // right-associative
		if err != nil {
			return nil, err
		}
		return &ast.Binary{Op: ast.OpPow, X: x, Y: y}, nil
	}
	return x, nil
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.next()
	switch t.Kind {
	case lexer.INT:
		return &ast.IntLit{Value: t.Int}, nil
	case lexer.REAL:
		return &ast.RealLit{Value: t.Value}, nil
	case lexer.LPAREN:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RPAREN, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case lexer.IDENT:
		name := t.Text
		if !p.at(lexer.LPAREN) {
			sym := p.unit.Symbols.Lookup(name)
			if sym == nil {
				p.defineImplicit(name)
			}
			return &ast.Ident{Name: name}, nil
		}
		p.next() // LPAREN
		var args []ast.Expr
		for !p.at(lexer.RPAREN) {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.at(lexer.COMMA) {
				p.next()
			}
		}
		p.next() // RPAREN
		if sym := p.unit.Symbols.Lookup(name); sym != nil && sym.Kind == ast.SymArray {
			return &ast.ArrayRef{Name: name, Subs: args}, nil
		}
		return &ast.FuncCall{Name: name, Args: args}, nil
	}
	return nil, fmt.Errorf("line %d: unexpected %q in expression", t.Line, t.Text)
}
