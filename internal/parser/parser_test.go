package parser

import (
	"strings"
	"testing"

	"fortd/internal/ast"
)

// fig1Src is the paper's Figure 1 program verbatim (modulo layout).
const fig1Src = `
      PROGRAM P1
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      call F1(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
S1      X(i) = F(X(i+5))
      enddo
      END
`

func TestParseFigure1(t *testing.T) {
	prog, err := Parse(fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Units) != 2 {
		t.Fatalf("got %d units", len(prog.Units))
	}
	main := prog.Main()
	if main == nil || main.Name != "P1" {
		t.Fatalf("main = %v", main)
	}
	x := main.Symbols.Lookup("X")
	if x == nil || x.Kind != ast.SymArray || len(x.Dims) != 1 {
		t.Fatalf("X symbol = %+v", x)
	}
	np := main.Symbols.Lookup("n$proc")
	if np == nil || np.Kind != ast.SymConstant || np.ConstValue != 4 {
		t.Fatalf("n$proc = %+v", np)
	}

	f1 := prog.Proc("F1")
	if f1 == nil || len(f1.Params) != 1 || f1.Params[0] != "X" {
		t.Fatalf("F1 = %+v", f1)
	}
	if len(f1.Body) != 1 {
		t.Fatalf("F1 body: %d stmts", len(f1.Body))
	}
	loop, ok := f1.Body[0].(*ast.Do)
	if !ok {
		t.Fatalf("F1 body[0] = %T", f1.Body[0])
	}
	if loop.Var != "i" {
		t.Errorf("loop var = %s", loop.Var)
	}
	if hi, _ := ast.EvalInt(loop.Hi, nil); hi != 95 {
		t.Errorf("loop hi = %v", loop.Hi)
	}
	asg, ok := loop.Body[0].(*ast.Assign)
	if !ok {
		t.Fatalf("loop body = %T", loop.Body[0])
	}
	lhs, ok := asg.Lhs.(*ast.ArrayRef)
	if !ok || lhs.Name != "X" {
		t.Fatalf("lhs = %v", asg.Lhs)
	}
	// rhs is F(X(i+5)): F is an intrinsic call, X(i+5) an array ref
	rhs, ok := asg.Rhs.(*ast.FuncCall)
	if !ok || rhs.Name != "F" {
		t.Fatalf("rhs = %v", asg.Rhs)
	}
	arg, ok := rhs.Args[0].(*ast.ArrayRef)
	if !ok || arg.Name != "X" {
		t.Fatalf("rhs arg = %v", rhs.Args[0])
	}
	if arg.Subs[0].String() != "(i + 5)" {
		t.Errorf("subscript = %s", arg.Subs[0])
	}
}

// fig4Src is the paper's Figure 4 program.
const fig4Src = `
      PROGRAM P1
      REAL X(100,100),Y(100,100)
      PARAMETER (n$proc = 4)
      ALIGN Y(i,j) with X(j,i)
      DISTRIBUTE X(BLOCK,:)
      do i = 1,100
S1      call F1(X,i)
      enddo
      do j = 1,100
S2      call F1(Y,j)
      enddo
      END
      SUBROUTINE F1(Z,i)
      REAL Z(100,100)
S3    call F2(Z,i)
      END
      SUBROUTINE F2(Z,i)
      REAL Z(100,100)
      do k = 1,100
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`

func TestParseFigure4(t *testing.T) {
	prog, err := Parse(fig4Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Units) != 3 {
		t.Fatalf("units = %d", len(prog.Units))
	}
	main := prog.Main()
	var align *ast.Align
	var dist *ast.Distribute
	calls := 0
	ast.WalkStmts(main.Body, func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.Align:
			align = st
		case *ast.Distribute:
			dist = st
		case *ast.Call:
			calls++
		}
		return true
	})
	if align == nil || align.Array != "Y" || align.Target != "X" {
		t.Fatalf("align = %+v", align)
	}
	// Y(i,j) with X(j,i): X dim 0 slot holds j → array dim 1
	if align.Terms[0].ArrayDim != 1 || align.Terms[1].ArrayDim != 0 {
		t.Errorf("align terms = %+v", align.Terms)
	}
	if dist == nil || dist.Target != "X" {
		t.Fatalf("distribute = %+v", dist)
	}
	if dist.Specs[0].Kind != ast.DistBlock || dist.Specs[1].Kind != ast.DistNone {
		t.Errorf("specs = %+v", dist.Specs)
	}
	if calls != 2 {
		t.Errorf("main has %d calls", calls)
	}
	// distinct call sites
	var sites []int
	ast.WalkStmts(main.Body, func(s ast.Stmt) bool {
		if c, ok := s.(*ast.Call); ok {
			sites = append(sites, c.Site)
		}
		return true
	})
	if len(sites) == 2 && sites[0] == sites[1] {
		t.Error("call sites not unique")
	}
}

func TestParseIfThenElse(t *testing.T) {
	src := `
      PROGRAM T
      REAL X(10)
      if (i .gt. 0 .AND. i .lt. 5) then
        X(i) = 1.0
      else
        X(i) = 2.0
      endif
      END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := prog.Main().Body[0].(*ast.If)
	if !ok {
		t.Fatalf("body[0] = %T", prog.Main().Body[0])
	}
	if len(st.Then) != 1 || len(st.Else) != 1 {
		t.Errorf("then/else = %d/%d", len(st.Then), len(st.Else))
	}
	cond, ok := st.Cond.(*ast.Binary)
	if !ok || cond.Op != ast.OpAnd {
		t.Errorf("cond = %v", st.Cond)
	}
}

func TestParseLogicalIf(t *testing.T) {
	src := `
      PROGRAM T
      REAL X(10)
      if (my$p .gt. 0) X(1) = 0.0
      END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := prog.Main().Body[0].(*ast.If)
	if !ok || len(st.Then) != 1 || len(st.Else) != 0 {
		t.Fatalf("logical if = %+v", prog.Main().Body[0])
	}
}

func TestParseDynamicDistribute(t *testing.T) {
	// Figure 15: executable DISTRIBUTE inside procedure body
	src := `
      SUBROUTINE F1(X)
      REAL X(100)
      DISTRIBUTE X(CYCLIC)
      do i = 1,100
        X(i) = X(i) + 1.0
      enddo
      END
`
	u, err := ParseProcedure(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.Body[0].(*ast.Distribute); !ok {
		t.Fatalf("body[0] = %T", u.Body[0])
	}
}

func TestParseDecomposition(t *testing.T) {
	src := `
      PROGRAM T
      REAL A(64)
      DECOMPOSITION D(64)
      ALIGN A(i) with D(i)
      DISTRIBUTE D(CYCLIC(4))
      END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Main()
	d := m.Symbols.Lookup("D")
	if d == nil || d.Kind != ast.SymDecomposition {
		t.Fatalf("D symbol = %+v", d)
	}
	var dist *ast.Distribute
	ast.WalkStmts(m.Body, func(s ast.Stmt) bool {
		if st, ok := s.(*ast.Distribute); ok {
			dist = st
		}
		return true
	})
	if dist.Specs[0].Kind != ast.DistBlockCyclic || dist.Specs[0].BlockSize != 4 {
		t.Errorf("specs = %+v", dist.Specs)
	}
}

func TestParseCommon(t *testing.T) {
	src := `
      SUBROUTINE S
      COMMON /blk/ G(100), H
      G(1) = H
      END
`
	u, err := ParseProcedure(src)
	if err != nil {
		t.Fatal(err)
	}
	g := u.Symbols.Lookup("G")
	if g == nil || g.Common != "blk" || g.Kind != ast.SymArray {
		t.Fatalf("G = %+v", g)
	}
	h := u.Symbols.Lookup("H")
	if h == nil || h.Common != "blk" || h.Kind != ast.SymScalar {
		t.Fatalf("H = %+v", h)
	}
}

func TestParseAdjustableBounds(t *testing.T) {
	// Figure 14: parameterized overlaps use adjustable array bounds
	src := `
      SUBROUTINE F1(X,Xlo,Xhi)
      REAL X(Xlo:Xhi)
      do i = 1,25
        X(i) = F(X(i+5))
      enddo
      END
`
	u, err := ParseProcedure(src)
	if err != nil {
		t.Fatal(err)
	}
	x := u.Symbols.Lookup("X")
	if x == nil || len(x.Dims) != 1 {
		t.Fatalf("X = %+v", x)
	}
	if x.Dims[0].Lo.String() != "Xlo" || x.Dims[0].Hi.String() != "Xhi" {
		t.Errorf("bounds = %s:%s", x.Dims[0].Lo, x.Dims[0].Hi)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	src := `
      PROGRAM T
      x = 1 + 2 * 3 - 4 / 2
      y = 2 ** 3 ** 2
      END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Main().Body[0].(*ast.Assign)
	if v, ok := ast.EvalInt(a.Rhs, nil); !ok || v != 5 {
		t.Errorf("1+2*3-4/2 = %v (%v)", v, a.Rhs)
	}
	b := prog.Main().Body[1].(*ast.Assign)
	if v, ok := ast.EvalInt(b.Rhs, nil); !ok || v != 512 {
		t.Errorf("2**3**2 = %v (want right-assoc 512)", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"PROGRAM\nEND",          // missing name
		"PROGRAM P\ndo i = 1,5", // unterminated loop
		"PROGRAM P\nif (x .gt. 1) then\nEND",
		"SUBROUTINE S(\nEND",
		"PROGRAM P\nDISTRIBUTE X(FOO)\nEND",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	prog, err := Parse(fig4Src)
	if err != nil {
		t.Fatal(err)
	}
	text := ast.Print(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if len(prog2.Units) != len(prog.Units) {
		t.Errorf("round trip lost units: %d vs %d", len(prog2.Units), len(prog.Units))
	}
	if !strings.Contains(text, "DISTRIBUTE X(BLOCK,:)") {
		t.Errorf("printed text missing distribute:\n%s", text)
	}
}

func TestParseOutputLanguageRoundTrip(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(100)
      my$p = myproc()
      if ((my$p .GT. 0)) then
        send X(((my$p * 25) + 1):MIN(((my$p * 25) + 5),100)) to (my$p - 1)
      endif
      if ((my$p .LT. 3)) then
        recv X(26:30) from (my$p + 1)
      endif
      broadcast X(1:100) from 0
      allgather X(1:100)
      remap X(CYCLIC)
      markas X(BLOCK)
      globalsum s$red
      globalmax e$red
      END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{}
	ast.WalkStmts(prog.Main().Body, func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.Send:
			kinds = append(kinds, "send")
		case *ast.Recv:
			kinds = append(kinds, "recv")
		case *ast.Broadcast:
			kinds = append(kinds, "broadcast")
		case *ast.AllGather:
			kinds = append(kinds, "allgather")
		case *ast.Remap:
			if st.InPlace {
				kinds = append(kinds, "markas")
			} else {
				kinds = append(kinds, "remap")
			}
		case *ast.GlobalReduce:
			kinds = append(kinds, "reduce:"+st.Op)
		}
		return true
	})
	want := []string{"send", "recv", "broadcast", "allgather", "remap", "markas", "reduce:+", "reduce:MAX"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("stmt %d = %s, want %s", i, kinds[i], want[i])
		}
	}
	// and the whole thing reprints + reparses
	text := ast.Print(prog)
	if _, err := Parse(text); err != nil {
		t.Fatalf("round trip: %v\n%s", err, text)
	}
}

func TestParseNegativeStepLoop(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(10)
      do i = 10, 1, -1
        X(i) = i
      enddo
      END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Main().Body[0].(*ast.Do)
	if v, ok := ast.EvalInt(loop.Step, nil); !ok || v != -1 {
		t.Errorf("step = %v", loop.Step)
	}
}

func TestParseMultipleUnitsOrder(t *testing.T) {
	src := `
      SUBROUTINE A
      x = 1
      END
      PROGRAM M
      call A
      END
      SUBROUTINE B
      x = 2
      END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Units) != 3 {
		t.Fatalf("units = %d", len(prog.Units))
	}
	if prog.Main() == nil || prog.Main().Name != "M" {
		t.Error("main not found among units")
	}
	if prog.Proc("B") == nil || prog.Proc("A") == nil {
		t.Error("units not indexed")
	}
}

func TestParseNestedIfInLoop(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(10)
      do i = 1, 10
        if (i .GT. 5) then
          if (i .LT. 8) then
            X(i) = 1.0
          else
            X(i) = 2.0
          endif
        endif
      enddo
      END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Main().Body[0].(*ast.Do)
	outer := loop.Body[0].(*ast.If)
	inner := outer.Then[0].(*ast.If)
	if len(inner.Else) != 1 {
		t.Errorf("inner else = %d stmts", len(inner.Else))
	}
}
