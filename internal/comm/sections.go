// Package comm implements communication analysis and optimization
// (§3 step 4–5, §5.4, Figure 11): classifying nonlocal references,
// message vectorization driven by dependence level, interprocedural RSD
// summaries of array side effects, and delayed instantiation of
// communication across procedure boundaries.
package comm

import (
	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/depend"
	"fortd/internal/rsd"
)

// SectionSummary holds the interprocedural regular-section summaries of
// one procedure: the regions of formal-parameter and common arrays it
// (or its descendants) may write and read, expressed in the procedure's
// own name space. Dimensions indexed by formal scalars are kept
// symbolic (anchored), which is what lets callers expand them over
// their own loops.
type SectionSummary struct {
	Writes map[string][]*rsd.Section
	Reads  map[string][]*rsd.Section
}

func newSectionSummary() *SectionSummary {
	return &SectionSummary{
		Writes: map[string][]*rsd.Section{},
		Reads:  map[string][]*rsd.Section{},
	}
}

func (s *SectionSummary) addWrite(sec *rsd.Section) {
	s.Writes[sec.Array] = rsd.MergeList(append(s.Writes[sec.Array], sec))
}

func (s *SectionSummary) addRead(sec *rsd.Section) {
	s.Reads[sec.Array] = rsd.MergeList(append(s.Reads[sec.Array], sec))
}

// ComputeSections builds section summaries for every procedure,
// bottom-up over the acyclic call graph (the interprocedural RSD
// propagation of §5.4: "references within a procedure are put into RSD
// form ... propagated to calling procedures and translated").
func ComputeSections(g *acg.Graph) map[string]*SectionSummary {
	out := map[string]*SectionSummary{}
	for _, n := range g.ReverseTopoOrder() {
		out[n.Name()] = procSections(n, out)
	}
	return out
}

func procSections(n *acg.Node, done map[string]*SectionSummary) *SectionSummary {
	proc := n.Proc
	sum := newSectionSummary()
	env := ConstEnv(proc)

	var nest []*ast.Do
	addRef := func(ref *ast.ArrayRef, write bool) {
		sec := RefSection(proc, ref, nest, env)
		if sec == nil {
			return
		}
		if write {
			sum.addWrite(sec)
		} else {
			sum.addRead(sec)
		}
	}
	var collectExpr func(e ast.Expr)
	collectExpr = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.ArrayRef:
			addRef(x, false)
			for _, s := range x.Subs {
				collectExpr(s)
			}
		case *ast.FuncCall:
			for _, a := range x.Args {
				collectExpr(a)
			}
		case *ast.Binary:
			collectExpr(x.X)
			collectExpr(x.Y)
		case *ast.Unary:
			collectExpr(x.X)
		}
	}
	var walk func(body []ast.Stmt)
	walk = func(body []ast.Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *ast.Assign:
				if lhs, ok := st.Lhs.(*ast.ArrayRef); ok {
					addRef(lhs, true)
					for _, sub := range lhs.Subs {
						collectExpr(sub)
					}
				}
				collectExpr(st.Rhs)
			case *ast.Do:
				nest = append(nest, st)
				walk(st.Body)
				nest = nest[:len(nest)-1]
			case *ast.If:
				collectExpr(st.Cond)
				walk(st.Then)
				walk(st.Else)
			case *ast.Call:
				site := siteOf(n, st)
				callee := done[st.Name]
				if site == nil || callee == nil {
					continue
				}
				for _, secs := range callee.Writes {
					for _, sec := range secs {
						if t := TranslateSection(sec, site, proc, nest, env); t != nil {
							sum.addWrite(t)
						}
					}
				}
				for _, secs := range callee.Reads {
					for _, sec := range secs {
						if t := TranslateSection(sec, site, proc, nest, env); t != nil {
							sum.addRead(t)
						}
					}
				}
			}
		}
	}
	walk(proc.Body)

	// Keep only names visible to callers (formals, commons); purely
	// local arrays cannot be summarized upward.
	filter := func(m map[string][]*rsd.Section) {
		for name := range m {
			sym := proc.Symbols.Lookup(name)
			if sym == nil || (!sym.IsFormal && sym.Common == "") {
				delete(m, name)
			}
		}
	}
	if !proc.IsMain {
		filter(sum.Writes)
		filter(sum.Reads)
	}
	return sum
}

// RefSection converts one array reference into a regular section: loop
// variables with constant bounds expand to their ranges, formal scalars
// stay symbolic, and anything else widens to the declared extent.
func RefSection(proc *ast.Procedure, ref *ast.ArrayRef, nest []*ast.Do, env ast.Env) *rsd.Section {
	sym := proc.Symbols.Lookup(ref.Name)
	if sym == nil || sym.Kind != ast.SymArray {
		return nil
	}
	dims := make([]rsd.Dim, len(ref.Subs))
	for d, sub := range ref.Subs {
		dims[d] = SubDim(proc, sym, d, sub, nest, env)
	}
	return &rsd.Section{Array: ref.Name, Dims: dims}
}

// SubDim converts one subscript into an RSD dimension.
func SubDim(proc *ast.Procedure, sym *ast.Symbol, d int, sub ast.Expr, nest []*ast.Do, env ast.Env) rsd.Dim {
	v, a, c, ok := depend.LinearSubscript(sub, env)
	if ok {
		switch {
		case v == "":
			return rsd.Point(c)
		case a == 1 || a == -1 || a > 1:
			if loop := loopIn(nest, v); loop != nil {
				lo, okLo := ast.EvalInt(loop.Lo, env)
				hi, okHi := ast.EvalInt(loop.Hi, env)
				step := 1
				if loop.Step != nil {
					step, _ = ast.EvalInt(loop.Step, env)
				}
				if okLo && okHi && step >= 1 {
					if a > 0 {
						return rsd.Strided(a*lo+c, a*hi+c, a*step)
					}
					return rsd.Strided(a*hi+c, a*lo+c, -a*step)
				}
				// non-constant loop bounds: widen to the declared extent
				return declaredDim(sym, d, env)
			}
			if s := proc.Symbols.Lookup(v); s != nil && (s.IsFormal || s.Common != "") && a == 1 {
				return rsd.SymPoint(v, c)
			}
		}
	}
	return declaredDim(sym, d, env)
}

func declaredDim(sym *ast.Symbol, d int, env ast.Env) rsd.Dim {
	if d >= len(sym.Dims) {
		return rsd.Range(1, 1)
	}
	lo, okLo := ast.EvalInt(sym.Dims[d].Lo, env)
	hi, okHi := ast.EvalInt(sym.Dims[d].Hi, env)
	if !okLo || !okHi {
		return rsd.Range(1, 1<<20) // adjustable bounds: unknown extent
	}
	return rsd.Range(lo, hi)
}

// TranslateSection maps a callee-space section through a call site into
// the caller's space: the array is renamed formal→actual, symbolic
// anchors naming formal scalars are renamed to the actuals, and anchors
// that land on caller loop variables with constant bounds are expanded
// (Bind) — the upward half of the Translate function of Figure 6
// applied to RSDs.
func TranslateSection(sec *rsd.Section, site *acg.CallSite, caller *ast.Procedure, nest []*ast.Do, env ast.Env) *rsd.Section {
	callee := site.Callee.Proc
	calleeSym := callee.Symbols.Lookup(sec.Array)
	var out *rsd.Section
	vars := map[string]string{}
	for _, b := range site.Bindings {
		if b.ActualName != "" {
			vars[b.Formal] = b.ActualName
		}
	}
	switch {
	case calleeSym != nil && calleeSym.IsFormal:
		actual := ""
		if calleeSym.FormalIndex < len(site.Bindings) {
			actual = site.Bindings[calleeSym.FormalIndex].ActualName
		}
		if actual == "" {
			return nil
		}
		out = sec.Rename(actual, vars)
	case calleeSym != nil && calleeSym.Common != "":
		out = sec.Rename(sec.Array, vars)
	default:
		return nil
	}
	// expand anchors that are loop variables of the caller
	for _, d := range out.Dims {
		if d.Var == "" {
			continue
		}
		if loop := loopIn(nest, d.Var); loop != nil {
			lo, okLo := ast.EvalInt(loop.Lo, env)
			hi, okHi := ast.EvalInt(loop.Hi, env)
			if okLo && okHi {
				out = out.Bind(d.Var, lo, hi)
			}
		}
	}
	return out
}

// ConstEnv exposes a procedure's PARAMETER constants.
func ConstEnv(proc *ast.Procedure) ast.Env {
	env := ast.MapEnv{}
	for _, s := range proc.Symbols.Symbols() {
		if s.Kind == ast.SymConstant {
			env[s.Name] = s.ConstValue
		}
	}
	return env
}

func loopIn(nest []*ast.Do, v string) *ast.Do {
	for i := len(nest) - 1; i >= 0; i-- {
		if nest[i].Var == v {
			return nest[i]
		}
	}
	return nil
}

func siteOf(n *acg.Node, call *ast.Call) *acg.CallSite {
	for _, s := range n.Calls {
		if s.Stmt == call {
			return s
		}
	}
	return nil
}
