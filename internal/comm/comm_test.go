package comm

import (
	"testing"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/decomp"
	"fortd/internal/depend"
	"fortd/internal/parser"
	"fortd/internal/partition"
	"fortd/internal/rsd"
)

type fixture struct {
	prog     *ast.Program
	graph    *acg.Graph
	sections map[string]*SectionSummary
}

func parseAll(t *testing.T, src string) *fixture {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{prog: prog, graph: g, sections: ComputeSections(g)}
}

func analyzeProc(t *testing.T, f *fixture, name string, distOf partition.DistOf) *Result {
	t.Helper()
	n := f.graph.Nodes[name]
	proc := n.Proc
	env := ConstEnv(proc)
	deps := depend.Analyze(proc, env)
	plan := partition.Compute(proc, n, distOf, func(string) map[string]*partition.Constraint { return nil }, env)
	return Analyze(proc, n, plan, deps, distOf, func(string) []*Delayed { return nil }, f.sections, env)
}

func blockDistOf(n, p int) partition.DistOf {
	d := decomp.MustDist(decomp.NewDecomp(decomp.Block), []int{n}, p)
	return func(string, ast.Stmt) (*decomp.Dist, bool) { return d, true }
}

// TestShiftClassification: X(i+5) against partition variable i is a
// +5 shift, hoisted out of the loop (no carried true dependence).
func TestShiftClassification(t *testing.T) {
	f := parseAll(t, `
      PROGRAM P
      REAL X(100)
      do i = 1,95
        X(i) = F(X(i+5))
      enddo
      END
`)
	res := analyzeProc(t, f, "P", blockDistOf(100, 4))
	if len(res.Accesses) != 1 {
		t.Fatalf("accesses = %d", len(res.Accesses))
	}
	acc := res.Accesses[0]
	if acc.Kind != KShift || acc.Shift != 5 {
		t.Errorf("access = %v shift %d", acc.Kind, acc.Shift)
	}
	if acc.AtLoop != nil || acc.Delay {
		t.Errorf("shift should be hoisted: AtLoop=%v Delay=%v", acc.AtLoop, acc.Delay)
	}
}

// TestLocalClassification: X(i) against partition variable i needs no
// communication; a recurrence X(i-1) does, inside the loop.
func TestRecurrenceStaysInLoop(t *testing.T) {
	f := parseAll(t, `
      PROGRAM P
      REAL X(100)
      do i = 2,100
        X(i) = X(i-1)
      enddo
      END
`)
	res := analyzeProc(t, f, "P", blockDistOf(100, 4))
	if len(res.Accesses) != 1 {
		t.Fatalf("accesses = %v", res.Accesses)
	}
	acc := res.Accesses[0]
	if acc.Kind != KShift || acc.Shift != -1 {
		t.Errorf("kind=%v shift=%d", acc.Kind, acc.Shift)
	}
	if acc.AtLoop == nil {
		t.Error("carried true dependence must keep the message in the loop")
	}
}

// TestPointClassification: a scalar assignment reading a distributed
// element is a broadcast keyed to the subscript.
func TestPointClassification(t *testing.T) {
	f := parseAll(t, `
      PROGRAM P
      REAL X(100)
      do k = 1,100
        t = X(k) + 1.0
      enddo
      END
`)
	res := analyzeProc(t, f, "P", blockDistOf(100, 4))
	if len(res.Accesses) != 1 {
		t.Fatalf("accesses = %v", res.Accesses)
	}
	acc := res.Accesses[0]
	if acc.Kind != KPoint {
		t.Fatalf("kind = %v, want broadcast", acc.Kind)
	}
	if acc.AtLoop == nil || acc.AtLoop.Var != "k" {
		t.Errorf("broadcast must be pinned to the k loop")
	}
}

// TestDelayedShift: F1$row's boundary shift anchored on formal i is
// delayed to the caller.
func TestDelayedShift(t *testing.T) {
	f := parseAll(t, `
      SUBROUTINE F2(Z,i)
      REAL Z(100,100)
      do k = 1,95
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`)
	d := decomp.MustDist(decomp.NewDecomp(decomp.Block, decomp.Collapsed), []int{100, 100}, 4)
	res := analyzeProc(t, f, "F2", func(string, ast.Stmt) (*decomp.Dist, bool) { return d, true })
	if len(res.Accesses) != 1 || !res.Accesses[0].Delay {
		t.Fatalf("accesses = %+v, want delayed", res.Accesses)
	}
	if len(res.Delayed) != 1 {
		t.Fatalf("delayed = %v", res.Delayed)
	}
	del := res.Delayed[0]
	if del.Kind != KShift || del.Shift != 5 || del.Array != "Z" {
		t.Errorf("delayed = %+v", del)
	}
	if !del.Section.Symbolic() {
		t.Errorf("delayed section should anchor i: %v", del.Section)
	}
}

// TestSectionSummaries: interprocedural RSD write/read sets translate
// formals to actuals and expand caller loop anchors.
func TestSectionSummaries(t *testing.T) {
	f := parseAll(t, `
      PROGRAM P
      REAL A(100,100)
      do i = 1,100
        call S(A,i)
      enddo
      END
      SUBROUTINE S(Z,i)
      REAL Z(100,100)
      do k = 1,50
        Z(k,i) = Z(k+1,i) + 1.0
      enddo
      END
`)
	s := f.sections["S"]
	if s == nil {
		t.Fatal("no summary for S")
	}
	w := s.Writes["Z"]
	if len(w) != 1 {
		t.Fatalf("writes = %v", w)
	}
	want := rsd.New("Z", rsd.Range(1, 50), rsd.SymPoint("i", 0))
	if !w[0].Equal(want) {
		t.Errorf("write section = %v, want %v", w[0], want)
	}
	// main's summary has the anchor expanded over the i loop
	m := f.sections["P"]
	mw := m.Writes["A"]
	if len(mw) != 1 {
		t.Fatalf("main writes = %v", mw)
	}
	wantMain := rsd.New("A", rsd.Range(1, 50), rsd.Range(1, 100))
	if !mw[0].Equal(wantMain) {
		t.Errorf("main write section = %v, want %v", mw[0], wantMain)
	}
}

// TestCarriedAt: the RSD-based caller-loop dependence test — identical
// anchor windows mean distance 0 (vectorizable), differing windows or
// unanchored overlap mean carried.
func TestCarriedAt(t *testing.T) {
	read := rsd.New("X", rsd.Range(26, 30), rsd.SymPoint("i", 0))
	sameIter := []*rsd.Section{rsd.New("X", rsd.Range(1, 100), rsd.SymPoint("i", 0))}
	if carriedAt(sameIter, read, "i") {
		t.Error("distance-0 anchored write must not be carried")
	}
	shifted := []*rsd.Section{rsd.New("X", rsd.Range(1, 100), rsd.SymPoint("i", -1))}
	if !carriedAt(shifted, read, "i") {
		t.Error("shifted anchored write must be carried")
	}
	unanchored := []*rsd.Section{rsd.New("X", rsd.Range(1, 100), rsd.Range(1, 100))}
	if !carriedAt(unanchored, read, "i") {
		t.Error("unanchored overlapping write must be carried")
	}
	disjoint := []*rsd.Section{rsd.New("X", rsd.Range(90, 100), rsd.SymPoint("i", 0))}
	if carriedAt(disjoint, read, "i") {
		t.Error("disjoint write must not be carried")
	}
	otherArray := []*rsd.Section{rsd.New("Y", rsd.Range(1, 100), rsd.SymPoint("i", -1))}
	if carriedAt(otherArray, read, "i") {
		t.Error("write to a different array must not be carried")
	}
}

// TestReplicatedNoComm: references to replicated arrays never
// communicate.
func TestReplicatedNoComm(t *testing.T) {
	f := parseAll(t, `
      PROGRAM P
      REAL W(50)
      do i = 1,50
        x = x + W(i)
      enddo
      END
`)
	rep := decomp.MustDist(decomp.Replicated, []int{50}, 4)
	res := analyzeProc(t, f, "P", func(string, ast.Stmt) (*decomp.Dist, bool) { return rep, true })
	if len(res.Accesses) != 0 {
		t.Errorf("accesses = %v", res.Accesses)
	}
}

// TestKillsViaSections: covered by livedecomp, but the read filter must
// keep subscript-only references out of the written set.
func TestRefSectionConstLoop(t *testing.T) {
	u, err := parser.ParseProcedure(`
      SUBROUTINE S(A)
      REAL A(10,20)
      do i = 2,9
        do j = 1,20
          A(i,j) = 0.0
        enddo
      enddo
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	refs := depend.CollectRefs(u)
	sec := RefSection(u, refs[0].Expr, refs[0].Nest, nil)
	want := rsd.New("A", rsd.Range(2, 9), rsd.Range(1, 20))
	if !sec.Equal(want) {
		t.Errorf("section = %v, want %v", sec, want)
	}
}

// TestGatherForCyclicShift: a shifted access on a cyclic distribution
// degrades to an allgather rather than a wrong neighbor exchange.
func TestGatherForCyclicShift(t *testing.T) {
	f := parseAll(t, `
      PROGRAM P
      REAL X(100)
      do i = 1,95
        X(i) = F(X(i+5))
      enddo
      END
`)
	d := decomp.MustDist(decomp.NewDecomp(decomp.Cyclic), []int{100}, 4)
	res := analyzeProc(t, f, "P", func(string, ast.Stmt) (*decomp.Dist, bool) { return d, true })
	if len(res.Accesses) != 1 || res.Accesses[0].Kind != KGather {
		t.Errorf("accesses = %+v, want allgather", res.Accesses)
	}
}

// TestInstantiateVectorizesAtCaller: the Figure 10 flow at unit level —
// a delayed shift anchored on formal i expands over the caller's i loop
// and hoists before it.
func TestInstantiateVectorizesAtCaller(t *testing.T) {
	f := parseAll(t, `
      PROGRAM P1
      REAL X(100,100)
      do i = 1,100
        call F1(X,i)
      enddo
      END
      SUBROUTINE F1(Z,i)
      REAL Z(100,100)
      do k = 1,95
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`)
	d := &Delayed{
		Array: "Z", Kind: KShift, Shift: 5,
		DistKey: "(BLOCK,:)", DistDim: 0,
		Section: rsd.New("Z", rsd.Range(6, 100), rsd.SymPoint("i", 0)),
	}
	dist := decomp.MustDist(decomp.NewDecomp(decomp.Block, decomp.Collapsed), []int{100, 100}, 4)
	distOf := func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }
	res := analyzeWithDelayed(t, f, "P1", distOf, d)
	if len(res.CallComms) != 1 {
		t.Fatalf("call comms = %v", res.CallComms)
	}
	cc := res.CallComms[0]
	if cc.Delay || cc.AtLoop != nil || cc.BeforeLoop == nil {
		t.Fatalf("placement = %+v, want hoisted before the i loop", cc)
	}
	want := rsd.New("X", rsd.Range(6, 100), rsd.Range(1, 100))
	if !cc.Section.Equal(want) {
		t.Errorf("section = %v, want %v", cc.Section, want)
	}
}

// TestInstantiateCarriedStaysInLoop: when the callee also writes the
// array at shifted anchor offsets, the caller loop carries a true
// dependence and the message stays inside the loop.
func TestInstantiateCarriedStaysInLoop(t *testing.T) {
	f := parseAll(t, `
      PROGRAM P1
      REAL X(100,100)
      do i = 2,100
        call F1(X,i)
      enddo
      END
      SUBROUTINE F1(Z,i)
      REAL Z(100,100)
      do k = 1,95
        Z(k,i) = F(Z(k+5,i-1))
      enddo
      END
`)
	d := &Delayed{
		Array: "Z", Kind: KShift, Shift: 5,
		DistKey: "(BLOCK,:)", DistDim: 0,
		Section: rsd.New("Z", rsd.Range(6, 100), rsd.SymPoint("i", -1)),
	}
	dist := decomp.MustDist(decomp.NewDecomp(decomp.Block, decomp.Collapsed), []int{100, 100}, 4)
	distOf := func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }
	res := analyzeWithDelayed(t, f, "P1", distOf, d)
	if len(res.CallComms) != 1 {
		t.Fatalf("call comms = %v", res.CallComms)
	}
	if res.CallComms[0].AtLoop == nil {
		t.Errorf("carried dependence must pin the message in the loop: %+v", res.CallComms[0])
	}
}

// TestInstantiateReDelays: a middle procedure passing its own formal
// onward re-delays the communication to its callers.
func TestInstantiateReDelays(t *testing.T) {
	f := parseAll(t, `
      SUBROUTINE MID(W,j)
      REAL W(100,100)
      call F1(W,j)
      END
      SUBROUTINE F1(Z,i)
      REAL Z(100,100)
      do k = 1,95
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`)
	d := &Delayed{
		Array: "Z", Kind: KShift, Shift: 5,
		DistKey: "(BLOCK,:)", DistDim: 0,
		Section: rsd.New("Z", rsd.Range(6, 100), rsd.SymPoint("i", 0)),
	}
	dist := decomp.MustDist(decomp.NewDecomp(decomp.Block, decomp.Collapsed), []int{100, 100}, 4)
	distOf := func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }
	res := analyzeWithDelayed(t, f, "MID", distOf, d)
	if len(res.CallComms) != 1 || !res.CallComms[0].Delay {
		t.Fatalf("expected re-delay: %+v", res.CallComms)
	}
	if len(res.Delayed) != 1 {
		t.Fatalf("delayed = %v", res.Delayed)
	}
	out := res.Delayed[0]
	if out.Array != "W" || !out.Section.Symbolic() {
		t.Errorf("re-delayed = %+v section %v", out, out.Section)
	}
	// the anchor is renamed to MID's formal
	if out.Section.Dims[1].Var != "j" {
		t.Errorf("anchor = %q, want j", out.Section.Dims[1].Var)
	}
}

// analyzeWithDelayed runs Analyze for one procedure with a synthetic
// delayed descriptor attached to its callee.
func analyzeWithDelayed(t *testing.T, f *fixture, name string, distOf partition.DistOf, d *Delayed) *Result {
	t.Helper()
	n := f.graph.Nodes[name]
	proc := n.Proc
	env := ConstEnv(proc)
	deps := depend.Analyze(proc, env)
	plan := partition.Compute(proc, n, distOf, func(string) map[string]*partition.Constraint { return nil }, env)
	return Analyze(proc, n, plan, deps, distOf,
		func(callee string) []*Delayed {
			if callee == "F1" {
				return []*Delayed{d}
			}
			return nil
		}, f.sections, env)
}

// TestInstantiatePointAtDefiningLoop: a delayed broadcast keyed to a
// formal lands at the caller loop defining the variable.
func TestInstantiatePointAtDefiningLoop(t *testing.T) {
	f := parseAll(t, `
      PROGRAM P1
      REAL X(100,100)
      do k = 1,99
        call F1(X,k)
      enddo
      END
      SUBROUTINE F1(Z,kk)
      REAL Z(100,100)
      do i = 1,100
        Z(i,kk) = Z(i,kk) * 2.0
      enddo
      END
`)
	d := &Delayed{
		Array: "Z", Kind: KPoint, PointVar: "kk", PointOff: 0,
		DistKey: "(:,CYCLIC)", DistDim: 1,
		Section: rsd.New("Z", rsd.Range(1, 100), rsd.SymPoint("kk", 0)),
	}
	dist := decomp.MustDist(decomp.NewDecomp(decomp.Collapsed, decomp.Cyclic), []int{100, 100}, 4)
	distOf := func(string, ast.Stmt) (*decomp.Dist, bool) { return dist, true }
	res := analyzeWithDelayed(t, f, "P1", distOf, d)
	if len(res.CallComms) != 1 {
		t.Fatalf("call comms = %v", res.CallComms)
	}
	cc := res.CallComms[0]
	if cc.AtLoop == nil || cc.AtLoop.Var != "k" {
		t.Errorf("broadcast must pin to the k loop: %+v", cc)
	}
	if cc.PointVar != "k" {
		t.Errorf("point var = %q", cc.PointVar)
	}
}
