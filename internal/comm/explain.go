package comm

import (
	"fmt"

	"fortd/internal/explain"
)

// Explain emits the communication-placement decisions of one analyzed
// procedure as optimization remarks: for every nonlocal reference and
// every instantiated callee message, whether it was vectorized (and at
// which level), lifted to the caller, delayed, or left inside a loop —
// with the blocking reason for every missed vectorization.
func Explain(ex *explain.Collector, procName string, res *Result) {
	if !ex.Enabled() {
		return
	}
	for _, acc := range res.Accesses {
		line := 0
		if acc.Stmt != nil {
			line = acc.Stmt.Pos().Line
		}
		switch {
		case acc.Delay:
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "comm", Proc: procName, Line: line, Name: "delay",
				Msg: fmt.Sprintf("%s of %s %s delayed to callers (delayed instantiation): %s",
					acc.Kind, acc.Array, acc.Section, acc.Why),
			})
		case acc.AtLoop != nil && acc.Why == WhyOwnerVaries:
			// still a vectorized section message; the per-iteration
			// placement is forced by the rotating owner, not a
			// vectorization failure
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "comm", Proc: procName, Line: line, Name: "vectorize",
				Msg: fmt.Sprintf("%s of %s %s vectorized into one section message per iteration of loop %s: %s",
					acc.Kind, acc.Array, acc.Section, acc.AtLoop.Var, acc.Why),
			})
		case acc.AtLoop != nil:
			ex.Add(explain.Remark{
				Kind: explain.Missed, Pass: "comm", Proc: procName, Line: line, Name: "vectorize",
				Msg: fmt.Sprintf("%s of %s %s placed inside loop %s (one message per iteration): %s",
					acc.Kind, acc.Array, acc.Section, acc.AtLoop.Var, acc.Why),
			})
		default:
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "comm", Proc: procName, Line: line, Name: "vectorize",
				Msg: fmt.Sprintf("%s of %s %s fully vectorized: hoisted above the loop nest",
					acc.Kind, acc.Array, acc.Section),
			})
		}
	}
	for _, cc := range res.CallComms {
		line := 0
		if cc.Site != nil && cc.Site.Stmt != nil {
			line = cc.Site.Stmt.Pos().Line
		}
		callee := ""
		if cc.Site != nil {
			callee = cc.Site.Callee.Name()
		}
		switch {
		case cc.Delay:
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "comm", Proc: procName, Line: line, Name: "delay",
				Msg: fmt.Sprintf("%s for callee %s (%s %s) re-delayed to this procedure's callers: %s",
					cc.D.Kind, callee, cc.Array, cc.Section, cc.Why),
			})
		case cc.AtLoop != nil && cc.Why == WhyOwnerVaries:
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "comm", Proc: procName, Line: line, Name: "vectorize",
				Msg: fmt.Sprintf("%s for callee %s (%s %s) vectorized at caller level: one section message per iteration of loop %s (%s)",
					cc.D.Kind, callee, cc.Array, cc.Section, cc.AtLoop.Var, cc.Why),
			})
		case cc.AtLoop != nil:
			ex.Add(explain.Remark{
				Kind: explain.Missed, Pass: "comm", Proc: procName, Line: line, Name: "vectorize",
				Msg: fmt.Sprintf("%s for callee %s (%s %s) placed inside loop %s (one message per iteration): %s",
					cc.D.Kind, callee, cc.Array, cc.Section, cc.AtLoop.Var, cc.Why),
			})
		case cc.BeforeLoop != nil:
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "comm", Proc: procName, Line: line, Name: "vectorize",
				Msg: fmt.Sprintf("%s for callee %s (%s %s) vectorized at caller level: one message hoisted before loop %s",
					cc.D.Kind, callee, cc.Array, cc.Section, cc.BeforeLoop.Var),
			})
		default:
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "comm", Proc: procName, Line: line, Name: "instantiate",
				Msg: fmt.Sprintf("%s for callee %s (%s %s) instantiated at the call site",
					cc.D.Kind, callee, cc.Array, cc.Section),
			})
		}
	}
}
