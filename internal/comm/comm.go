package comm

import (
	"fmt"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/decomp"
	"fortd/internal/depend"
	"fortd/internal/partition"
	"fortd/internal/rsd"
)

// Kind classifies the communication pattern of a nonlocal reference.
type Kind int

const (
	// KLocal: the reference is always local — no communication.
	KLocal Kind = iota
	// KShift: the reference is offset from the owned region along the
	// distributed dimension by a constant — nearest-neighbor exchange,
	// vectorizable into one boundary message (message vectorization).
	KShift
	// KPoint: the distributed-dimension subscript is fixed at the
	// placement point — a single owner broadcasts the section.
	KPoint
	// KGather: the reference sweeps the distributed dimension under the
	// placement point — every owner contributes (allgather).
	KGather
)

func (k Kind) String() string {
	switch k {
	case KLocal:
		return "local"
	case KShift:
		return "shift"
	case KPoint:
		return "broadcast"
	case KGather:
		return "allgather"
	}
	return "?"
}

// Access is the communication decision for one right-hand-side array
// reference.
type Access struct {
	Ref     *ast.ArrayRef
	Stmt    ast.Stmt
	Nest    []*ast.Do
	Array   string
	Dist    *decomp.Dist
	DistDim int
	Kind    Kind
	Shift   int      // KShift: subscript offset relative to the partition variable
	Point   ast.Expr // KPoint: the distributed-dimension subscript
	// Section is the accessed region in global coordinates (symbolic
	// anchors for enclosing-procedure variables).
	Section *rsd.Section
	// Placement: AtLoop non-nil places the message at the top of that
	// local loop's body (executed per iteration); AtLoop nil hoists it
	// before the outermost enclosing loop. Delay passes it to callers.
	AtLoop *ast.Do
	Delay  bool
	// Why records the reason for the placement (static strings only, so
	// recording is allocation-free when remarks are disabled).
	Why string
}

// Delayed is a communication descriptor passed up to callers (delayed
// instantiation, §5.4): the nonlocal index set is recorded but no
// message is generated in this procedure.
type Delayed struct {
	Array    string // formal/common array name in the summarized procedure
	Kind     Kind
	Shift    int
	PointVar string // KPoint: the formal scalar selecting the owner
	PointOff int
	DistKey  string
	DistDim  int
	Section  *rsd.Section
}

func (d *Delayed) String() string {
	return fmt.Sprintf("%s %s %s", d.Kind, d.Section, d.DistKey)
}

// CallComm is the instantiation of a callee's delayed communication at
// one call site of the current procedure.
type CallComm struct {
	Site    *acg.CallSite
	D       *Delayed // callee-space descriptor
	Array   string   // caller-space array name
	Dist    *decomp.Dist
	Section *rsd.Section // caller-space section (anchors bound where vectorized)
	// Placement: BeforeLoop non-nil hoists the message before that
	// caller loop (vectorized); AtLoop places it at the top of the
	// loop's body; both nil places it immediately before the call.
	BeforeLoop *ast.Do
	AtLoop     *ast.Do
	Delay      bool
	// PointVar in caller space for KPoint.
	PointVar string
	PointOff int
	// Why records the reason for the placement (static strings only).
	Why string
}

// Result is the communication analysis of one procedure.
type Result struct {
	Accesses  []*Access
	CallComms []*CallComm
	// Delayed is this procedure's own summary for its callers.
	Delayed []*Delayed
}

// DelayedOf returns a compiled callee's delayed communications.
type DelayedOf func(procName string) []*Delayed

// Analyze runs Figure 11 for one procedure: classify nonlocal
// references, choose message placement by dependence level, instantiate
// delayed communication arriving from callees, and collect the
// still-delayed descriptors for this procedure's callers.
func Analyze(
	proc *ast.Procedure,
	node *acg.Node,
	plan *partition.Plan,
	deps *depend.Info,
	distOf partition.DistOf,
	delayedOf DelayedOf,
	sections map[string]*SectionSummary,
	env ast.Env,
) *Result {
	res := &Result{}
	items := map[*ast.Assign]*partition.Item{}
	for _, it := range plan.Items {
		items[it.Stmt] = it
	}

	// --- local references -------------------------------------------------
	// Reads in assignments, IF conditions, loop bounds and call
	// arguments all need their data resolved; only assignments carry a
	// partitioning item (the others execute replicated).
	for _, ref := range depend.CollectRefs(proc) {
		if ref.IsWrite {
			continue
		}
		var item *partition.Item
		if asg, ok := ref.Stmt.(*ast.Assign); ok {
			item = items[asg]
		}
		acc := classify(proc, ref, item, distOf, env)
		if acc == nil || acc.Kind == KLocal {
			continue
		}
		place(proc, acc, deps, env)
		res.Accesses = append(res.Accesses, acc)
		if acc.Delay {
			res.Delayed = append(res.Delayed, toDelayed(acc, env))
		}
	}

	// --- delayed communication from callees --------------------------------
	if node != nil {
		var nest []*ast.Do
		var walk func(body []ast.Stmt)
		walk = func(body []ast.Stmt) {
			for _, s := range body {
				switch st := s.(type) {
				case *ast.Do:
					nest = append(nest, st)
					walk(st.Body)
					nest = nest[:len(nest)-1]
				case *ast.If:
					walk(st.Then)
					walk(st.Else)
				case *ast.Call:
					site := siteOf(node, st)
					if site == nil {
						continue
					}
					for _, d := range delayedOf(st.Name) {
						cc := instantiate(proc, site, d, nest, distOf, sections, env)
						if cc == nil {
							continue
						}
						res.CallComms = append(res.CallComms, cc)
						if cc.Delay {
							res.Delayed = append(res.Delayed, reDelay(cc))
						}
					}
				}
			}
		}
		walk(proc.Body)
	}
	return res
}

// classify determines the communication pattern of one read reference.
func classify(proc *ast.Procedure, ref *depend.Ref, item *partition.Item, distOf partition.DistOf, env ast.Env) *Access {
	dist, ok := distOf(ref.Array, ref.Stmt)
	if !ok || dist == nil || dist.IsReplicated() {
		return nil
	}
	dim := dist.DistDim()
	if dim >= len(ref.Expr.Subs) {
		return nil
	}
	acc := &Access{
		Ref:  ref.Expr,
		Nest: ref.Nest, Array: ref.Array,
		Dist: dist, DistDim: dim,
	}
	acc.Stmt = ref.Stmt
	sym := proc.Symbols.Lookup(ref.Array)
	acc.Section = RefSection(proc, ref.Expr, ref.Nest, env)
	sub := partition.AnalyzeSub(ref.Expr.Subs[dim], env)

	// Same partition variable ⇒ shift pattern.
	if item != nil && item.C != nil && item.Sub.Var != "" &&
		sub.OK && sub.Coef == 1 && item.Sub.Coef == 1 && sub.Var == item.Sub.Var &&
		item.C.Dist.Key() == dist.Key() {
		acc.Shift = sub.Off - item.Sub.Off
		if acc.Shift == 0 {
			acc.Kind = KLocal
			return acc
		}
		b := dist.BlockSize()
		if dist.Specs[dim].Kind == ast.DistBlock && abs(acc.Shift) < b {
			acc.Kind = KShift
			return acc
		}
		// shift spanning multiple blocks, or cyclic/block-cyclic shift:
		// degrade to an allgather (correct, more communication)
		acc.Kind = KGather
		return acc
	}

	// Fixed subscript at run time ⇒ broadcast from the owner; sweeping
	// subscript ⇒ allgather. "Fixed" is judged at placement time, so
	// here we look at the variable's defining loop.
	switch {
	case sub.OK && sub.Var == "":
		acc.Kind = KPoint
		acc.Point = ref.Expr.Subs[dim]
	case sub.OK && loopIn(ref.Nest, sub.Var) != nil:
		// loop-variant distributed subscript, not the partition
		// variable: the owner changes per iteration
		acc.Kind = KPoint
		acc.Point = ref.Expr.Subs[dim]
	case sub.OK && isOuterVar(proc, sub.Var):
		acc.Kind = KPoint
		acc.Point = ref.Expr.Subs[dim]
	default:
		acc.Kind = KGather
		_ = sym
	}
	return acc
}

// Placement reasons, recorded on Access.Why / CallComm.Why. They are
// package-level constants so recording them is a pointer store —
// allocation-free whether or not remarks are collected.
const (
	WhyCarriedDep   = "a true dependence is carried at this loop level"
	WhyOwnerVaries  = "the broadcasting owner changes every iteration of this loop"
	WhyFormalRange  = "the nonlocal section ranges over formal parameters only known in the caller"
	WhyCalleeWrites = "the callee's writes overlap the section: the dependence is carried by this loop"
	WhySymbolBounds = "the loop bounds are not compile-time constants, so the section cannot be expanded"
	WhyFormalOwner  = "the broadcasting owner is selected by a formal parameter only known in the caller"
)

// place chooses the message's loop level from dependence information
// (message vectorization: the deepest loop-carried true dependence with
// the reference as sink).
func place(proc *ast.Procedure, acc *Access, deps *depend.Info, env ast.Env) {
	level := deps.DeepestTrueSinkLevel(acc.Ref)
	why := ""
	if level > 0 {
		why = WhyCarriedDep
	}
	// a broadcast whose point subscript varies with a local loop cannot
	// be hoisted above the loop defining that variable
	if acc.Kind == KPoint && acc.Point != nil {
		if v, _, _, ok := depend.LinearSubscript(acc.Point, env); ok && v != "" {
			for i, l := range acc.Nest {
				if l.Var == v && i+1 > level {
					level = i + 1
					why = WhyOwnerVaries
				}
			}
		}
	}
	if level > 0 {
		acc.AtLoop = acc.Nest[level-1]
		acc.Why = why
		return
	}
	// fully vectorized: delay to the caller when the section still
	// references formal scalars (their ranges are only known there)
	if !proc.IsMain && sectionHasFormalAnchor(proc, acc, env) {
		acc.Delay = true
		acc.Why = WhyFormalRange
	}
}

func sectionHasFormalAnchor(proc *ast.Procedure, acc *Access, env ast.Env) bool {
	arrSym := proc.Symbols.Lookup(acc.Array)
	if arrSym != nil && (arrSym.IsFormal || arrSym.Common != "") {
		if acc.Section != nil && acc.Section.Symbolic() {
			return true
		}
		if acc.Kind == KPoint && acc.Point != nil {
			if v, _, _, ok := depend.LinearSubscript(acc.Point, env); ok && v != "" && isOuterVar(proc, v) {
				return true
			}
		}
	}
	return false
}

func isOuterVar(proc *ast.Procedure, v string) bool {
	s := proc.Symbols.Lookup(v)
	return s != nil && (s.IsFormal || s.Common != "")
}

func toDelayed(acc *Access, env ast.Env) *Delayed {
	d := &Delayed{
		Array: acc.Array, Kind: acc.Kind, Shift: acc.Shift,
		DistKey: acc.Dist.Key(), DistDim: acc.DistDim,
		Section: acc.Section,
	}
	if acc.Kind == KPoint && acc.Point != nil {
		if v, _, off, ok := depend.LinearSubscript(acc.Point, env); ok {
			d.PointVar = v
			d.PointOff = off
		}
	}
	return d
}

func reDelay(cc *CallComm) *Delayed {
	return &Delayed{
		Array: cc.Array, Kind: cc.D.Kind, Shift: cc.D.Shift,
		PointVar: cc.PointVar, PointOff: cc.PointOff,
		DistKey: cc.D.DistKey, DistDim: cc.D.DistDim,
		Section: cc.Section,
	}
}

// instantiate translates one delayed communication to a call site and
// decides where to place it: vectorized before a caller loop when no
// true dependence is carried there, inside the loop otherwise, or
// re-delayed to this procedure's own callers.
func instantiate(
	proc *ast.Procedure,
	site *acg.CallSite,
	d *Delayed,
	nest []*ast.Do,
	distOf partition.DistOf,
	sections map[string]*SectionSummary,
	env ast.Env,
) *CallComm {
	cc := &CallComm{Site: site, D: d}
	// translate names
	vars := map[string]string{}
	for _, b := range site.Bindings {
		if b.ActualName != "" {
			vars[b.Formal] = b.ActualName
		}
	}
	callee := site.Callee.Proc
	arrSym := callee.Symbols.Lookup(d.Array)
	switch {
	case arrSym != nil && arrSym.IsFormal:
		if arrSym.FormalIndex >= len(site.Bindings) {
			return nil
		}
		cc.Array = site.Bindings[arrSym.FormalIndex].ActualName
	default:
		cc.Array = d.Array
	}
	if cc.Array == "" {
		return nil
	}
	dist, ok := distOf(cc.Array, site.Stmt)
	if !ok || dist == nil {
		return nil
	}
	cc.Dist = dist
	cc.Section = d.Section.Rename(cc.Array, vars)
	if d.PointVar != "" {
		if a, ok := vars[d.PointVar]; ok {
			cc.PointVar = a
		} else {
			cc.PointVar = d.PointVar
		}
		cc.PointOff = d.PointOff
	}

	if d.Kind == KPoint {
		// a broadcast keyed to a variable: place at the loop defining
		// the variable (per-iteration), or before the call when fixed
		if cc.PointVar != "" {
			if loop := loopIn(nest, cc.PointVar); loop != nil {
				cc.AtLoop = loop
				cc.Why = WhyOwnerVaries
				return cc
			}
			if isOuterVar(proc, cc.PointVar) && !proc.IsMain {
				cc.Delay = true
				cc.Why = WhyFormalOwner
				return cc
			}
		}
		return cc // placed at the call site
	}

	// Shift/Gather: vectorize across caller loops when no true
	// dependence is carried (checked with interprocedural RSDs).
	writeSecs := calleeWrites(site, sections)
	for i := len(nest) - 1; i >= 0; i-- {
		loop := nest[i]
		if !anchorsVar(cc.Section, loop.Var) {
			// the section does not vary with this loop; vectorizing
			// across it would replicate the same message, so hoist
			if !carriedAt(writeSecs, cc.Section, loop.Var) {
				cc.BeforeLoop = loop
				continue
			}
			cc.AtLoop = loop
			cc.Why = WhyCalleeWrites
			return cc
		}
		if carriedAt(writeSecs, cc.Section, loop.Var) {
			cc.AtLoop = loop
			cc.Why = WhyCalleeWrites
			return cc
		}
		lo, okLo := ast.EvalInt(loop.Lo, env)
		hi, okHi := ast.EvalInt(loop.Hi, env)
		if !okLo || !okHi {
			cc.AtLoop = loop // cannot expand: keep per-iteration
			cc.Why = WhySymbolBounds
			return cc
		}
		cc.Section = cc.Section.Bind(loop.Var, lo, hi)
		cc.BeforeLoop = loop
	}
	if cc.Section.Symbolic() && !proc.IsMain {
		cc.Delay = true
		cc.BeforeLoop = nil
		cc.Why = WhyFormalRange
	}
	return cc
}

// calleeWrites returns the callee's write sections translated to the
// caller's space with anchors preserved (no loop expansion), for the
// carried-dependence test.
func calleeWrites(site *acg.CallSite, sections map[string]*SectionSummary) []*rsd.Section {
	sum := sections[site.Callee.Name()]
	if sum == nil {
		return nil
	}
	vars := map[string]string{}
	for _, b := range site.Bindings {
		if b.ActualName != "" {
			vars[b.Formal] = b.ActualName
		}
	}
	var out []*rsd.Section
	for name, secs := range sum.Writes {
		sym := site.Callee.Proc.Symbols.Lookup(name)
		target := name
		if sym != nil && sym.IsFormal {
			if sym.FormalIndex >= len(site.Bindings) {
				continue
			}
			target = site.Bindings[sym.FormalIndex].ActualName
			if target == "" {
				continue
			}
		}
		for _, sec := range secs {
			out = append(out, sec.Rename(target, vars))
		}
	}
	return out
}

// carriedAt conservatively decides whether a true dependence on the
// read section is carried by the loop with index v: a write section to
// the same array whose anchored window on v differs from the read's
// (or which overlaps without anchoring v) implies a cross-iteration
// flow; identical anchor windows mean distance 0 (loop-independent),
// which vectorization tolerates.
func carriedAt(writes []*rsd.Section, read *rsd.Section, v string) bool {
	for _, w := range writes {
		if w.Array != read.Array || len(w.Dims) != len(read.Dims) {
			continue
		}
		overlapPossible := true
		sameWindow := true
		anchorsV := false
		for i := range w.Dims {
			wd, rd := w.Dims[i], read.Dims[i]
			if wd.Var == v || rd.Var == v {
				anchorsV = true
				if wd.Var != rd.Var || wd.Lo != rd.Lo || wd.Hi != rd.Hi {
					sameWindow = false
				}
				continue
			}
			if wd.Var == "" && rd.Var == "" {
				if wd.Hi < rd.Lo || rd.Hi < wd.Lo {
					overlapPossible = false
				}
			}
		}
		if !overlapPossible {
			continue
		}
		if !anchorsV || !sameWindow {
			return true
		}
	}
	return false
}

func anchorsVar(sec *rsd.Section, v string) bool {
	for _, d := range sec.Dims {
		if d.Var == v {
			return true
		}
	}
	return false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
