package core

import (
	"testing"

	"fortd/internal/ast"
	"fortd/internal/machine"
	"fortd/internal/parser"
	"fortd/internal/spmd"
)

// TestGeneratedCodeRoundTrips: the printed SPMD program is itself valid
// input — reparsing and re-executing it gives identical results and
// identical communication statistics. This pins down both the printer
// and the parser on the full output language (send/recv/broadcast/
// allgather/remap statements, my$p arithmetic, first$/MIN/MAX bounds).
func TestGeneratedCodeRoundTrips(t *testing.T) {
	sources := map[string]struct {
		src  string
		init map[string][]float64
	}{
		"fig1":   {fig1Src, map[string][]float64{"X": initRamp(100)}},
		"fig4":   {fig4Src, map[string][]float64{"X": initRamp(100 * 100), "Y": initRamp(100 * 100)}},
		"dgefa":  {DgefaSrc(24, 4), map[string][]float64{"a": DgefaMatrix(24)}},
		"jacobi": {JacobiSrc(64, 4, 4), map[string][]float64{"a": jacobiInit(64)}},
		"adi":    {adiSrc(16, 2, 4, true), map[string][]float64{"a": initRamp(16 * 16)}},
	}
	for name, tc := range sources {
		c := compileSrc(t, tc.src, DefaultOptions())
		orig, err := spmd.Run(c.Program, machine.DefaultConfig(c.P), spmd.Options{
			Dists: c.MainDists, Init: tc.init,
		})
		if err != nil {
			t.Fatalf("%s: original run: %v", name, err)
		}

		text := ast.Print(c.Program)
		reparsed, err := parser.Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", name, err, text)
		}
		again, err := spmd.Run(reparsed, machine.DefaultConfig(c.P), spmd.Options{
			Dists: c.MainDists, Init: tc.init,
		})
		if err != nil {
			t.Fatalf("%s: reparsed run: %v\n%s", name, err, text)
		}

		for arr, want := range orig.Arrays {
			got := again.Arrays[arr]
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: %s[%d] = %v after round trip, want %v", name, arr, i, got[i], want[i])
				}
			}
		}
		if orig.Stats.Messages != again.Stats.Messages || orig.Stats.Words != again.Stats.Words {
			t.Errorf("%s: stats changed across round trip: %v vs %v", name, orig.Stats, again.Stats)
		}
	}
}
