package core

// Direction is the propagation direction of an interprocedural
// data-flow problem over the call graph (Table 1).
type Direction int

const (
	TopDown Direction = iota
	BottomUp
	Bidirectional
)

func (d Direction) String() string {
	switch d {
	case TopDown:
		return "↓"
	case BottomUp:
		return "↑"
	case Bidirectional:
		return "l"
	}
	return "?"
}

// Phase says when the problem is solved in the 3-phase structure.
type Phase int

const (
	PhasePropagation Phase = iota
	PhaseCodegen
)

func (p Phase) String() string {
	if p == PhasePropagation {
		return "interprocedural propagation"
	}
	return "code generation"
}

// DataflowProblem is one row of the paper's Table 1, mapped to the
// package that implements it in this reproduction.
type DataflowProblem struct {
	Name      string
	Direction Direction
	Phase     Phase
	Package   string
}

// Table1 returns the paper's interprocedural Fortran D data-flow
// problems, their propagation directions, solution phases, and the
// implementing modules.
func Table1() []DataflowProblem {
	return []DataflowProblem{
		{"Call graph", BottomUp, PhasePropagation, "internal/acg"},
		{"Loop structure", TopDown, PhasePropagation, "internal/acg"},
		{"Array aliasing & reshaping", BottomUp, PhasePropagation, "internal/comm (sections)"},
		{"Scalar & array side effects", Bidirectional, PhasePropagation, "internal/sideeffect"},
		{"Symbolics & constants", Bidirectional, PhasePropagation, "internal/symconst"},
		{"Reaching decompositions", TopDown, PhasePropagation, "internal/reach"},
		{"Local iteration sets", BottomUp, PhaseCodegen, "internal/partition"},
		{"Nonlocal index sets", BottomUp, PhaseCodegen, "internal/comm"},
		{"Overlaps", Bidirectional, PhaseCodegen, "internal/overlap"},
		{"Buffers", BottomUp, PhaseCodegen, "internal/overlap"},
		{"Live decompositions", BottomUp, PhaseCodegen, "internal/livedecomp"},
		{"Loop-invariant decomps", BottomUp, PhaseCodegen, "internal/livedecomp"},
	}
}
