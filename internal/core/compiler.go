// Package core is the Fortran D compiler driver: it wires the analyses
// into the 3-phase ParaScope structure (§4) — local analysis,
// interprocedural propagation, and interprocedural code generation in
// reverse topological order, one pass per procedure (§5) — and produces
// the SPMD program the node interpreter executes.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/codegen"
	"fortd/internal/comm"
	"fortd/internal/decomp"
	"fortd/internal/explain"
	"fortd/internal/livedecomp"
	"fortd/internal/overlap"
	"fortd/internal/parser"
	"fortd/internal/partition"
	"fortd/internal/reach"
	"fortd/internal/sched"
	"fortd/internal/summarycache"
	"fortd/internal/symconst"
	"fortd/internal/trace"
)

// Options configures a compilation.
type Options struct {
	// P overrides the processor count (0: use the main program's
	// n$proc PARAMETER, default 4).
	P int
	// Strategy selects interprocedural compilation or one of the
	// paper's baselines.
	Strategy codegen.Strategy
	// RemapOpt is the dynamic-decomposition optimization level ladder
	// of Figure 16.
	RemapOpt livedecomp.Level
	// CloneLimit bounds procedure cloning (Figure 8); 0 disables it.
	CloneLimit int
	// Trace, when non-nil, collects per-phase compile spans and
	// code-generation counters.
	Trace *trace.Tracer
	// Explain, when non-nil, collects optimization remarks from every
	// pass (nil = disabled, allocation-free).
	Explain *explain.Collector
	// Jobs is the number of workers the per-procedure code-generation
	// phase schedules over the ACG's topological waves (<= 1:
	// sequential). Outputs are byte-identical regardless of Jobs.
	Jobs int
	// Cache, when non-nil, is the content-hashed summary cache: each
	// procedure's phase-3 artifacts are stored under a hash of its
	// source and consumed interprocedural inputs, so recompilations
	// re-analyze only the invalidated cone of the ACG.
	Cache *summarycache.Cache
	// Overlap enables the post-codegen communication/computation
	// overlap pass (internal/sched): blocking halo exchanges become
	// post-early/wait-late pairs and broadcasts are posted above
	// independent predecessors. It runs after the summary cache is
	// populated, so cached artifacts always hold the blocking form and
	// one cache serves both modes.
	Overlap bool
}

// DefaultOptions enables everything the paper's compiler does.
func DefaultOptions() Options {
	return Options{
		Strategy:   codegen.StrategyInterproc,
		RemapOpt:   livedecomp.OptKills,
		CloneLimit: 64,
		Overlap:    true,
	}
}

// Report aggregates per-procedure code generation statistics.
type Report struct {
	Messages     int
	Guards       int
	LoopsReduced int
	Remaps       int
	Cloned       int
	RuntimeProcs []string
	PerProc      map[string]*codegen.Result
}

// String renders the counters on one line, naming each procedure left
// to run-time resolution.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "messages=%d guards=%d loops-reduced=%d remaps=%d cloned=%d",
		r.Messages, r.Guards, r.LoopsReduced, r.Remaps, r.Cloned)
	if len(r.RuntimeProcs) > 0 {
		fmt.Fprintf(&b, " runtime-resolution=%v", r.RuntimeProcs)
	}
	return b.String()
}

// DedupRuntimeProcs maps clone names back to their original procedure
// and returns the sorted, deduplicated list: a procedure cloned into
// foo$1, foo$2 that still needs run-time resolution is reported once,
// as foo.
func DedupRuntimeProcs(names []string, clonedFrom map[string]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, name := range names {
		if orig, ok := clonedFrom[name]; ok {
			name = orig
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Compilation is the result of compiling a Fortran D program.
type Compilation struct {
	// Program is the generated SPMD program.
	Program *ast.Program
	// Source is an untransformed copy of the input program (for
	// reference runs).
	Source *ast.Program
	// P is the compiled-for processor count.
	P int
	// MainDists gives the initial distribution of the main program's
	// arrays (for the node interpreter).
	MainDists map[string]*decomp.Dist
	// Reach is the reaching-decomposition solution.
	Reach *reach.Result
	// Overlaps is the overlap analysis.
	Overlaps *overlap.Analysis
	Report   Report
	Options  Options
	// Interfaces holds, per procedure, a canonical rendering of the
	// summary information it exposes to callers (delayed iteration
	// sets, delayed communication, decomposition summary sets) — the
	// interprocedural "interface" recompilation analysis compares.
	Interfaces map[string]string
	// InputsUsed holds, per procedure, a canonical rendering of all
	// interprocedural information consumed when compiling it.
	InputsUsed map[string]string
	// CacheHits and CacheMisses list, sorted, the procedures served
	// from / freshly compiled into Options.Cache (nil without a cache).
	CacheHits   []string
	CacheMisses []string
}

// Compile parses and compiles Fortran D source text.
func Compile(src string, opts Options) (*Compilation, error) {
	return CompileContext(context.Background(), src, opts)
}

// CompileContext is Compile under a cancellation context: when ctx is
// cancelled the compilation stops at the next phase boundary or
// phase-3 task boundary and returns ctx.Err(). A cancelled compilation
// never stores partial results into Options.Cache.
func CompileContext(ctx context.Context, src string, opts Options) (*Compilation, error) {
	endParse := opts.Trace.Phase("parse")
	prog, err := parser.Parse(src)
	endParse()
	if err != nil {
		return nil, err
	}
	return CompileProgramContext(ctx, prog, opts)
}

// CompileProgram compiles an already-parsed program. The program is
// transformed in place; a deep copy is kept as Compilation.Source.
func CompileProgram(prog *ast.Program, opts Options) (*Compilation, error) {
	return CompileProgramContext(context.Background(), prog, opts)
}

// CompileProgramContext is CompileProgram under a cancellation context
// (see CompileContext).
func CompileProgramContext(ctx context.Context, prog *ast.Program, opts Options) (*Compilation, error) {
	tr := opts.Trace
	ex := opts.Explain
	if ex.Enabled() {
		ex.Add(explain.Remark{
			Kind: explain.Note, Pass: "core", Name: "strategy",
			Msg: "compilation strategy: " + opts.Strategy.String(),
		})
	}
	source := cloneProgram(prog)
	endACG := tr.Phase("acg-build")
	g, err := acg.Build(prog)
	endACG()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 1+2: reaching decompositions with cloning.
	endReach := tr.Phase("reaching-decompositions")
	reachRes, err := reach.Analyze(g, reach.Options{CloneLimit: opts.CloneLimit, Explain: opts.Explain})
	endReach()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g = reachRes.Graph

	p := opts.P
	if p == 0 {
		p = nprocOf(prog)
	}
	if p < 1 {
		return nil, fmt.Errorf("core: invalid processor count %d", p)
	}

	c := &Compilation{
		Program:    prog,
		Source:     source,
		P:          p,
		MainDists:  map[string]*decomp.Dist{},
		Reach:      reachRes,
		Options:    opts,
		Report:     Report{PerProc: map[string]*codegen.Result{}},
		Interfaces: map[string]string{},
		InputsUsed: map[string]string{},
	}
	c.Report.Cloned = len(reachRes.ClonedFrom)
	{
		var names []string
		for name := range reachRes.RuntimeResolution {
			names = append(names, name)
		}
		c.Report.RuntimeProcs = DedupRuntimeProcs(names, reachRes.ClonedFrom)
	}

	endSections := tr.Phase("section-analysis")
	sections := comm.ComputeSections(g)
	endSections()
	endOverlap := tr.Phase("overlap-estimates")
	c.Overlaps = overlap.ComputeEstimates(g)
	endOverlap()
	endConsts := tr.Phase("symbolic-constants")
	consts := symconst.Compute(g)
	endConsts()
	killTest := func(site *acg.CallSite, arr string) bool {
		return livedecomp.KillsArray(site, arr, sections)
	}

	// Phase 3: interprocedural code generation, one pass per procedure
	// in reverse topological order (callees first), scheduled over a
	// worker pool when opts.Jobs > 1. Tasks write only their own
	// procOut; everything below commits those outputs sequentially in
	// reverse-topological order, so reports, remarks and generated
	// programs are byte-identical regardless of the worker count.
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = 1
	}
	pcx := &passCtx{
		ctx: ctx, c: c, opts: opts, p: p, exOn: ex.Enabled(),
		sections: sections, consts: consts, killTest: killTest,
		table: newSummaryTable(), cache: opts.Cache,
	}
	outs := compileAll(pcx, g.ReverseTopoOrder(), jobs)

	newBodies := map[string][]ast.Stmt{}
	hitUnits := map[string]*ast.Procedure{}
	for _, out := range outs {
		if out == nil {
			// never scheduled because an earlier task failed
			continue
		}
		ex.AddAll(out.remarks)
		if out.err != nil {
			return nil, out.err
		}
		c.record(out.name, out.res)
		c.Interfaces[out.name] = out.iface
		c.InputsUsed[out.name] = out.inputs
		for arr, d := range out.mainDists {
			c.MainDists[arr] = d
		}
		if out.hit {
			hitUnits[out.name] = out.unit
			// replay the overlaps the cached pass recorded, so the
			// program-wide actual/buffer bookkeeping matches a fresh run
			for _, oa := range out.actuals {
				c.Overlaps.RecordActual(out.name, oa.Array, oa.Dim, oa.Lo, oa.Hi)
			}
			c.CacheHits = append(c.CacheHits, out.name)
		} else {
			newBodies[out.name] = out.body
			if pcx.cache.Enabled() {
				c.CacheMisses = append(c.CacheMisses, out.name)
			}
		}
	}

	// swap in the generated bodies
	for _, u := range prog.Units {
		if body, ok := newBodies[u.Name]; ok {
			u.Body = body
		}
	}
	for name, hu := range hitUnits {
		cu := ast.CloneProcedure(hu, hu.Name)
		prog.ReplaceProc(cu)
		if res := c.Report.PerProc[name]; res != nil {
			res.Body = cu.Body
		}
	}
	tr.Counter("messages-inserted", int64(c.Report.Messages))
	tr.Counter("guards-inserted", int64(c.Report.Guards))
	tr.Counter("loops-reduced", int64(c.Report.LoopsReduced))
	tr.Counter("remaps-inserted", int64(c.Report.Remaps))
	tr.Counter("procedures-cloned", int64(c.Report.Cloned))
	if pcx.cache.Enabled() {
		sort.Strings(c.CacheHits)
		sort.Strings(c.CacheMisses)
		tr.Counter(counterCacheHits, int64(len(c.CacheHits)))
		tr.Counter(counterCacheMisses, int64(len(c.CacheMisses)))
		pcx.storeEntries(outs)
	}
	if opts.Overlap {
		// runs after storeEntries: the cache holds the blocking form, so
		// one cache serves compiles with overlap on and off. Sequential
		// over units in program order, so tags and remarks are
		// deterministic regardless of opts.Jobs.
		endSched := tr.Phase("overlap-schedule")
		overlapped := sched.Apply(prog, opts.Explain)
		endSched()
		tr.Counter("comm-overlapped", int64(overlapped))
	}
	return c, nil
}

func (c *Compilation) record(name string, res *codegen.Result) {
	c.Report.PerProc[name] = res
	c.Report.Messages += res.MessagesInserted
	c.Report.Guards += res.GuardsInserted
	c.Report.LoopsReduced += res.LoopsReduced
	c.Report.Remaps += res.RemapsInserted
}

// procDists derives each array's distribution at its first use in proc
// and at every statement (so dynamic redistribution within a procedure
// resolves per program point), plus the entry decompositions for
// livedecomp. Remarks go to ex, the calling task's collector.
func (c *Compilation) procDists(proc *ast.Procedure, env ast.Env, ex *explain.Collector) (map[string]*decomp.Dist, map[ast.Stmt]map[string]*decomp.Dist, map[string]decomp.Decomp) {
	reaching := c.Reach.Reaching[proc.Name]
	st := reach.NewState(proc, reaching)
	firstUse := map[string]decomp.Decomp{}
	atStmtDecomp := map[ast.Stmt]map[string]decomp.Decomp{}
	record := func(name string, s *reach.State) {
		if _, seen := firstUse[name]; seen {
			return
		}
		if d, ok := s.Lookup(name).Single(); ok {
			firstUse[name] = d
		}
	}
	recordAt := func(stmt ast.Stmt, name string, s *reach.State) {
		if d, ok := s.Lookup(name).Single(); ok {
			m := atStmtDecomp[stmt]
			if m == nil {
				m = map[string]decomp.Decomp{}
				atStmtDecomp[stmt] = m
			}
			m[name] = d
		}
	}
	st.WalkBody(proc.Body, func(s ast.Stmt, cur *reach.State) {
		for _, e := range ast.StmtExprs(s) {
			collectArrays(e, func(name string) { record(name, cur); recordAt(s, name, cur) })
		}
		switch x := s.(type) {
		case *ast.Assign:
			if lhs, ok := x.Lhs.(*ast.ArrayRef); ok {
				record(lhs.Name, cur)
				recordAt(s, lhs.Name, cur)
			}
		case *ast.Call:
			// whole arrays passed by name
			for _, a := range x.Args {
				if id, ok := a.(*ast.Ident); ok {
					if sym := proc.Symbols.Lookup(id.Name); sym != nil && sym.Kind == ast.SymArray {
						record(id.Name, cur)
						recordAt(s, id.Name, cur)
					}
				}
			}
		}
	})
	// arrays that are declared and distributed but never referenced in
	// this procedure still need a descriptor (e.g. main programs whose
	// only use is passing the array onward)
	final := reach.NewState(proc, reaching)
	final.WalkBody(proc.Body, nil)
	for _, sym := range proc.Symbols.Symbols() {
		if sym.Kind != ast.SymArray {
			continue
		}
		if _, seen := firstUse[sym.Name]; !seen {
			if d, ok := final.Lookup(sym.Name).Single(); ok {
				firstUse[sym.Name] = d
			}
		}
	}
	mkDist := func(name string, d decomp.Decomp) *decomp.Dist {
		return mkDistFor(proc, name, d, env, c.P)
	}
	dists := map[string]*decomp.Dist{}
	for name, d := range firstUse {
		if dist := mkDist(name, d); dist != nil {
			dists[name] = dist
		} else if !d.IsReplicated() {
			if ex.Enabled() {
				ex.Add(explain.Remark{
					Kind: explain.Missed, Pass: "core", Proc: proc.Name, Name: "distribute",
					Msg: fmt.Sprintf("no distribution descriptor built for %s %s: dimension bounds are not compile-time constants or the decomposition does not fit — the array stays replicated",
						name, d.Key()),
				})
			}
		}
	}
	atStmt := map[ast.Stmt]map[string]*decomp.Dist{}
	for stmt, m := range atStmtDecomp {
		for name, d := range m {
			if dist := mkDist(name, d); dist != nil {
				sm := atStmt[stmt]
				if sm == nil {
					sm = map[string]*decomp.Dist{}
					atStmt[stmt] = sm
				}
				sm[name] = dist
			}
		}
	}
	// entry decomps for livedecomp: reaching singles for inherited vars
	entry := map[string]decomp.Decomp{}
	for v, set := range reaching {
		if d, ok := set.Single(); ok {
			entry[v] = d
		}
	}
	return dists, atStmt, entry
}

// mkDistFor instantiates a decomposition against an array's declared
// shape and the machine size, returning nil when bounds are not
// compile-time constants.
func mkDistFor(proc *ast.Procedure, name string, d decomp.Decomp, env ast.Env, p int) *decomp.Dist {
	sym := proc.Symbols.Lookup(name)
	if sym == nil || sym.Kind != ast.SymArray {
		return nil
	}
	sizes := make([]int, len(sym.Dims))
	for i, dim := range sym.Dims {
		lo, okLo := ast.EvalInt(dim.Lo, env)
		hi, okHi := ast.EvalInt(dim.Hi, env)
		if !okLo || !okHi {
			return nil
		}
		sizes[i] = hi - lo + 1
	}
	if len(d.Specs) != 0 && len(d.Specs) != len(sizes) {
		return nil
	}
	dist, err := decomp.NewDist(d, sizes, p)
	if err != nil {
		return nil
	}
	return dist
}

func collectArrays(e ast.Expr, fn func(string)) {
	switch x := e.(type) {
	case *ast.ArrayRef:
		fn(x.Name)
		for _, s := range x.Subs {
			collectArrays(s, fn)
		}
	case *ast.FuncCall:
		for _, a := range x.Args {
			collectArrays(a, fn)
		}
	case *ast.Binary:
		collectArrays(x.X, fn)
		collectArrays(x.Y, fn)
	case *ast.Unary:
		collectArrays(x.X, fn)
	}
}

// checkAliasRestriction enforces §6.4: when a call site binds the same
// caller array to multiple formals, the callee (or its descendants)
// must not dynamically remap any of them — interprocedural live
// decomposition analysis is Co-NP-complete under aliasing, so the
// language forbids the combination.
func checkAliasRestriction(n *acg.Node, sums map[string]*livedecomp.Summary) error {
	for _, site := range n.Calls {
		sum := sums[site.Callee.Name()]
		if sum == nil || len(sum.Kill) == 0 {
			continue
		}
		byActual := map[string][]string{}
		for _, b := range site.Bindings {
			if b.ActualName == "" {
				continue
			}
			sym := n.Proc.Symbols.Lookup(b.ActualName)
			if sym == nil || sym.Kind != ast.SymArray {
				continue
			}
			byActual[b.ActualName] = append(byActual[b.ActualName], b.Formal)
		}
		for actual, formals := range byActual {
			if len(formals) < 2 {
				continue
			}
			for _, formal := range formals {
				if sum.Kill[formal] {
					return fmt.Errorf(
						"core: %s passes %s to aliased formals %v of %s, which dynamically remaps %s (forbidden, §6.4)",
						n.Name(), actual, formals, site.Callee.Name(), formal)
				}
			}
		}
	}
	return nil
}

// forceLocalPlan demotes delayed constraints to local guards
// (immediate-instantiation baseline, Figure 12).
func forceLocalPlan(plan *partition.Plan) {
	for _, it := range plan.Items {
		if it.DelayVar != "" {
			it.DelayVar = ""
			it.Guard = true
			it.Why = "immediate instantiation baseline: delayed constraints are forced local (Figure 12)"
		}
	}
	plan.Delayed = map[string]*partition.Constraint{}
}

// nprocOf reads the main program's n$proc PARAMETER.
func nprocOf(prog *ast.Program) int {
	main := prog.Main()
	if main == nil {
		return 4
	}
	if s := main.Symbols.Lookup("n$proc"); s != nil && s.Kind == ast.SymConstant {
		return s.ConstValue
	}
	return 4
}

func cloneProgram(prog *ast.Program) *ast.Program {
	units := make([]*ast.Procedure, len(prog.Units))
	for i, u := range prog.Units {
		units[i] = ast.CloneProcedure(u, u.Name)
	}
	return ast.NewProgram(units)
}
