package core

// Summary-cache integration: content-hashed keys for per-procedure
// phase-3 artifacts. A procedure's key covers its own (post-cloning)
// source text and statement positions, the compilation options that
// influence code generation, and every interprocedural input its
// compilation consumes — propagated constants, reaching decompositions,
// run-time-resolution flags, and one summary hash per distinct callee.
// The callee summary hash covers the callee's caller-visible interface
// (delayed iteration sets, delayed communication, decomposition
// summary), its regular-section side-effect summary and its overlap
// estimates: exactly the information internal/recompile's §8 analysis
// compares, so cache invalidation reproduces its recompilation tests.
// Editing one procedure therefore re-analyzes only the cone of callers
// whose consumed summaries actually changed.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/comm"
	"fortd/internal/partition"
	"fortd/internal/reach"
	"fortd/internal/summarycache"
)

// procKey builds the content-hash cache key for one procedure. All
// callee summary hashes are published before the task starts (the
// scheduler's dependency edges), so this never blocks.
func (pc *passCtx) procKey(n *acg.Node) string {
	name := n.Name()
	h := summarycache.NewHasher()

	var b strings.Builder
	ast.PrintProcedure(&b, n.Proc)
	h.Add("src", b.String())
	// printed source carries no positions; fingerprint statement lines
	// separately so cached remark positions always match the input
	var lines []string
	ast.WalkStmts(n.Proc.Body, func(s ast.Stmt) bool {
		lines = append(lines, strconv.Itoa(s.Pos().Line))
		return true
	})
	h.Add("pos", strings.Join(lines, ","))

	h.Add("p", strconv.Itoa(pc.p),
		"strategy", strconv.Itoa(int(pc.opts.Strategy)),
		"remap", strconv.Itoa(int(pc.opts.RemapOpt)),
		"clonelimit", strconv.Itoa(pc.opts.CloneLimit),
		"explain", strconv.FormatBool(pc.exOn))

	h.Add("env", renderEnv(pc.consts[name]))
	h.Add("reach", renderReaching(pc.c.Reach.Reaching[name]))
	rt := append([]string(nil), pc.c.Reach.RuntimeResolution[name]...)
	sort.Strings(rt)
	h.Add("rtres", strings.Join(rt, ","))

	for _, callee := range calleeNames(n) {
		h.Add("callee", callee, pc.table.shashOf(callee))
	}
	return h.Sum()
}

// summaryHash fingerprints everything a caller consumes from a
// completed procedure: its interface summaries plus the fresh global
// analyses (regular sections, overlap estimates) derived from it.
func (pc *passCtx) summaryHash(out *procOut) string {
	h := summarycache.NewHasher()
	h.Add("iface", out.iface)
	h.Add("part", renderPartDelayed(out.part))
	h.Add("comm", renderDelayedComm(out.commD))
	if out.dsum != nil {
		parts := decompSummaryString(out.dsum)
		sort.Strings(parts)
		h.Add("dsum", strings.Join(parts, "\n"))
	}
	h.Add("sections", renderSectionSummary(pc.sections[out.name]))
	h.Add("overlap", renderOverlapEstimates(pc, out.name))
	h.Add("runtime", strconv.FormatBool(out.runtime))
	return h.Sum()
}

// loadEntry fills a task output from a cache entry. The entry's unit is
// cloned at commit time; the summary structures are shared read-only,
// exactly as a fresh callee's summaries are shared with its callers.
func (pc *passCtx) loadEntry(e *summarycache.Entry, out *procOut) {
	out.hit = true
	res := e.Result
	out.res = &res
	out.unit = e.Unit
	out.part = e.PartDelayed
	out.commD = e.CommDelayed
	out.dsum = e.DecompSum
	out.iface = e.Interface
	out.inputs = e.InputsUsed
	out.mainDists = e.MainDists
	out.actuals = e.Overlaps
	out.remarks = e.Remarks
	out.runtime = e.Runtime
	out.shash = pc.summaryHash(out)
}

// storeEntries records every freshly compiled procedure of a successful
// compilation, cloning the final transformed unit so later mutations
// cannot leak into the cache.
func (pc *passCtx) storeEntries(outs []*procOut) {
	prog := pc.c.Program
	for _, out := range outs {
		if out == nil || out.hit || out.key == "" || out.err != nil {
			continue
		}
		u := prog.Proc(out.name)
		if u == nil || out.res == nil {
			continue
		}
		res := *out.res
		res.Body = nil
		pc.cache.Put(&summarycache.Entry{
			Key:         out.key,
			Proc:        out.name,
			Unit:        ast.CloneProcedure(u, u.Name),
			Result:      res,
			PartDelayed: out.part,
			CommDelayed: out.commD,
			DecompSum:   out.dsum,
			Interface:   out.iface,
			InputsUsed:  out.inputs,
			MainDists:   out.mainDists,
			Overlaps:    out.actuals,
			Remarks:     out.remarks,
			Runtime:     out.runtime,
		})
	}
}

func renderEnv(env ast.MapEnv) string {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, env[k]))
	}
	return strings.Join(parts, ";")
}

func renderReaching(reaching map[string]reach.DSet) string {
	keys := make([]string, 0, len(reaching))
	for k := range reaching {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, k+"="+reaching[k].Key())
	}
	return strings.Join(parts, ";")
}

func renderPartDelayed(m map[string]*partition.Constraint) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		c := m[k]
		// Constraint.Key omits the bound array sizes; include them so a
		// resized callee array invalidates callers
		parts = append(parts, fmt.Sprintf("%s:%s/%v", k, c.Key(), c.Dist.Sizes))
	}
	return strings.Join(parts, ";")
}

func renderDelayedComm(ds []*comm.Delayed) string {
	parts := make([]string, 0, len(ds))
	for _, d := range ds {
		// every field, unlike Delayed.String, so any change to a delayed
		// communication invalidates the callers that instantiate it
		parts = append(parts, fmt.Sprintf("%s|%d|%d|%s|%d|%s|%d|%s",
			d.Array, int(d.Kind), d.Shift, d.PointVar, d.PointOff, d.DistKey, d.DistDim, d.Section))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

func renderSectionSummary(ss *comm.SectionSummary) string {
	if ss == nil {
		return ""
	}
	var parts []string
	for arr, secs := range ss.Writes {
		for _, s := range secs {
			parts = append(parts, "W "+arr+" "+s.String())
		}
	}
	for arr, secs := range ss.Reads {
		for _, s := range secs {
			parts = append(parts, "R "+arr+" "+s.String())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

func renderOverlapEstimates(pc *passCtx, name string) string {
	est := pc.c.Overlaps.Estimates[name]
	keys := make([]string, 0, len(est))
	for k := range est {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, k+est[k].String())
	}
	return strings.Join(parts, ";")
}
