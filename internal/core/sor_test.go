package core

import (
	"fmt"
	"testing"
)

// redBlackSrc is a red-black Gauss-Seidel relaxation: strided loops
// exercise the guard fallback (BoundExprs rejects non-unit steps) while
// the two colors decouple the carried dependences.
func redBlackSrc(n, steps, p int) string {
	return fmt.Sprintf(`
      PROGRAM SOR
      PARAMETER (n$proc = %d)
      REAL u(%d)
      DISTRIBUTE u(BLOCK)
      do t = 1, %d
        do i = 2, %d, 2
          u(i) = 0.5 * (u(i-1) + u(i+1))
        enddo
        do i = 3, %d, 2
          u(i) = 0.5 * (u(i-1) + u(i+1))
        enddo
      enddo
      END
`, p, n, steps, n-1, n-1)
}

// TestRedBlackSOR: strided sweeps are compiled with ownership guards
// and per-step boundary exchanges, and match the sequential reference.
func TestRedBlackSOR(t *testing.T) {
	const n, steps = 64, 6
	c := compileSrc(t, redBlackSrc(n, steps, 4), DefaultOptions())
	init := make([]float64, n)
	init[0], init[n-1] = 1, 1
	par, seq := runBoth(t, c, map[string][]float64{"u": init})
	assertSame(t, "u", par.Arrays["u"], seq.Arrays["u"])
	if par.Stats.Messages == 0 {
		t.Error("red-black SOR needs boundary exchanges")
	}
}

// gaussSeidelSrc has a genuine sequential recurrence: the compiler must
// keep communication inside the sweep (pipelined), still correct.
func gaussSeidelSrc(n, steps, p int) string {
	return fmt.Sprintf(`
      PROGRAM GS
      PARAMETER (n$proc = %d)
      REAL u(%d)
      DISTRIBUTE u(BLOCK)
      do t = 1, %d
        do i = 2, %d
          u(i) = 0.5 * (u(i-1) + u(i+1))
        enddo
      enddo
      END
`, p, n, steps, n-1)
}

func TestGaussSeidelPipelined(t *testing.T) {
	const n, steps = 32, 3
	c := compileSrc(t, gaussSeidelSrc(n, steps, 4), DefaultOptions())
	init := make([]float64, n)
	init[0], init[n-1] = 1, 1
	par, seq := runBoth(t, c, map[string][]float64{"u": init})
	assertSame(t, "u", par.Arrays["u"], seq.Arrays["u"])
}

// TestSinglePassCompilation asserts the paper's structural property:
// with the interprocedural strategy every procedure is code-generated
// exactly once (one entry per compiled unit in the report).
func TestSinglePassCompilation(t *testing.T) {
	c := compileSrc(t, fig4Src, DefaultOptions())
	units := map[string]bool{}
	for _, u := range c.Program.Units {
		units[u.Name] = true
	}
	if len(c.Report.PerProc) != len(units) {
		t.Errorf("compiled %d procedure results for %d units", len(c.Report.PerProc), len(units))
	}
	for name := range units {
		if _, ok := c.Report.PerProc[name]; !ok {
			t.Errorf("unit %s has no code generation record", name)
		}
	}
}
