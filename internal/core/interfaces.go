package core

import (
	"fmt"
	"sort"
	"strings"

	"fortd/internal/acg"
	"fortd/internal/comm"
	"fortd/internal/decomp"
	"fortd/internal/livedecomp"
	"fortd/internal/partition"
)

// interfaceString renders a procedure's caller-visible summary
// canonically: the same summaries always produce the same string, so
// recompilation analysis can compare compilations structurally.
func interfaceString(
	planDelayed map[string]*partition.Constraint,
	commDelayed []*comm.Delayed,
	dsum *livedecomp.Summary,
) string {
	var parts []string
	for v, c := range planDelayed {
		parts = append(parts, fmt.Sprintf("iter %s %s", v, c.Key()))
	}
	for _, d := range commDelayed {
		parts = append(parts, "comm "+d.String())
	}
	if dsum != nil {
		parts = append(parts, decompSummaryString(dsum)...)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

func decompSummaryString(s *livedecomp.Summary) []string {
	var parts []string
	for v := range s.Use {
		parts = append(parts, "use "+v)
	}
	for v := range s.Kill {
		parts = append(parts, "kill "+v)
	}
	for v, d := range s.Before {
		parts = append(parts, fmt.Sprintf("before %s %s", v, d.Key()))
	}
	for v, d := range s.After {
		parts = append(parts, fmt.Sprintf("after %s %s", v, d.Key()))
	}
	for v, d := range s.Final {
		parts = append(parts, fmt.Sprintf("final %s %s", v, d.Key()))
	}
	return parts
}

// inputsString renders everything interprocedural that compiling proc
// consumed: its reaching decompositions and, for every call site, the
// callee's name and interface summary.
func inputsString(
	node *acg.Node,
	reaching map[string]decompSetView,
	interfaces map[string]string,
) string {
	var parts []string
	for v, set := range reaching {
		parts = append(parts, fmt.Sprintf("reach %s %s", v, set.Key()))
	}
	seen := map[string]bool{}
	for _, site := range node.Calls {
		name := site.Callee.Name()
		if seen[name] {
			continue
		}
		seen[name] = true
		parts = append(parts, fmt.Sprintf("callee %s {%s}", name, interfaces[name]))
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

// decompSetView abstracts the reach.DSet Key method for inputsString.
type decompSetView interface{ Key() string }

var _ = decomp.Replicated
