package core

// Phase 3 (interprocedural code generation) runs as a DAG schedule over
// the ACG: each procedure is one task whose dependencies are its
// distinct callees, so the reverse-topological waves of the paper's
// single-pass compilation become parallel waves — procedures with no
// unresolved callee summaries compile concurrently on a worker pool,
// publishing their caller-visible summaries through a locked summary
// table instead of shared mutable maps. With Jobs <= 1 the schedule
// degenerates to the sequential reverse-topological walk, and both
// modes commit results in reverse-topological order, so reports,
// remarks and generated programs are byte-identical regardless of the
// worker count.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/codegen"
	"fortd/internal/comm"
	"fortd/internal/decomp"
	"fortd/internal/depend"
	"fortd/internal/explain"
	"fortd/internal/livedecomp"
	"fortd/internal/partition"
	"fortd/internal/summarycache"
	"fortd/internal/symconst"
)

// procOut carries everything one procedure's phase-3 task produced.
// Tasks only write their own procOut; all shared state is committed
// sequentially afterwards.
type procOut struct {
	name string
	idx  int
	err  error

	key string // cache key ("" when caching is disabled)
	hit bool

	res       *codegen.Result
	body      []ast.Stmt
	unit      *ast.Procedure // cache-hit replacement unit (pre-clone)
	part      map[string]*partition.Constraint
	commD     []*comm.Delayed
	dsum      *livedecomp.Summary
	iface     string
	inputs    string
	shash     string // summary hash callers fold into their cache keys
	mainDists map[string]*decomp.Dist
	actuals   []summarycache.OverlapActual
	remarks   []explain.Remark
	runtime   bool
}

// summaryTable publishes completed procedures' caller-visible summaries
// to concurrently running caller tasks. Dependencies guarantee a callee
// row exists before any caller reads it; the lock only orders the map
// accesses themselves.
type summaryTable struct {
	mu    sync.RWMutex
	part  map[string]map[string]*partition.Constraint
	comm  map[string][]*comm.Delayed
	dsum  map[string]*livedecomp.Summary
	iface map[string]string
	shash map[string]string
}

func newSummaryTable() *summaryTable {
	return &summaryTable{
		part:  map[string]map[string]*partition.Constraint{},
		comm:  map[string][]*comm.Delayed{},
		dsum:  map[string]*livedecomp.Summary{},
		iface: map[string]string{},
		shash: map[string]string{},
	}
}

func (t *summaryTable) publish(out *procOut) {
	t.mu.Lock()
	t.part[out.name] = out.part
	t.comm[out.name] = out.commD
	t.dsum[out.name] = out.dsum
	t.iface[out.name] = out.iface
	t.shash[out.name] = out.shash
	t.mu.Unlock()
}

func (t *summaryTable) partOf(name string) map[string]*partition.Constraint {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.part[name]
}

func (t *summaryTable) commOf(name string) []*comm.Delayed {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.comm[name]
}

// dsumSnapshot returns the decomposition summaries of n's direct
// callees, the only entries its passes look up.
func (t *summaryTable) dsumSnapshot(n *acg.Node) map[string]*livedecomp.Summary {
	out := map[string]*livedecomp.Summary{}
	t.mu.RLock()
	for _, site := range n.Calls {
		name := site.Callee.Name()
		if _, ok := out[name]; !ok {
			out[name] = t.dsum[name]
		}
	}
	t.mu.RUnlock()
	return out
}

// ifaceSnapshot returns the interface strings of n's direct callees.
func (t *summaryTable) ifaceSnapshot(n *acg.Node) map[string]string {
	out := map[string]string{}
	t.mu.RLock()
	for _, site := range n.Calls {
		name := site.Callee.Name()
		if _, ok := out[name]; !ok {
			out[name] = t.iface[name]
		}
	}
	t.mu.RUnlock()
	return out
}

func (t *summaryTable) shashOf(name string) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.shash[name]
}

// passCtx carries the whole-program analyses phase 3 reads. Everything
// here is either immutable during phase 3 or internally synchronized.
type passCtx struct {
	ctx      context.Context
	c        *Compilation
	opts     Options
	p        int
	exOn     bool
	sections map[string]*comm.SectionSummary
	consts   symconst.Result
	killTest func(site *acg.CallSite, arr string) bool
	table    *summaryTable
	cache    *summarycache.Cache
}

// calleeNames returns n's distinct callees, sorted.
func calleeNames(n *acg.Node) []string {
	seen := map[string]bool{}
	var out []string
	for _, site := range n.Calls {
		name := site.Callee.Name()
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// compileOne runs one procedure's phase-3 task: a cache probe followed,
// on a miss, by the full analysis and code-generation pass. A cancelled
// context fails the task with ctx.Err() before any work (or cache
// counter update) happens, so cancellation is observed within one task
// boundary and the shared cache never sees a partial store.
func (pc *passCtx) compileOne(n *acg.Node, idx int) *procOut {
	out := &procOut{name: n.Name(), idx: idx}
	if err := pc.ctx.Err(); err != nil {
		out.err = err
		return out
	}
	if pc.cache.Enabled() {
		out.key = pc.procKey(n)
		if e := pc.cache.Get(out.key); e != nil {
			pc.loadEntry(e, out)
			return out
		}
	}
	pc.fresh(n, out)
	if out.err == nil {
		out.shash = pc.summaryHash(out)
	}
	return out
}

// fresh compiles one procedure from scratch — the body of the paper's
// single-pass reverse-topological loop, with every shared-state write
// redirected into out. Remarks go to a task-local collector merged at
// commit time, so their final order is independent of task scheduling.
func (pc *passCtx) fresh(n *acg.Node, out *procOut) {
	proc := n.Proc
	c := pc.c
	tr := pc.opts.Trace
	var tex *explain.Collector
	if pc.exOn {
		tex = explain.New()
	}
	defer func() { out.remarks = tex.Remarks() }()
	endProc := tr.Phase("codegen " + proc.Name)
	defer endProc()

	// the procedure's PARAMETER constants plus interprocedurally
	// propagated constant formals
	env := pc.consts.Env(proc.Name)
	dists, atStmt, entry := c.procDists(proc, env, tex)
	distOf := func(array string, at ast.Stmt) (*decomp.Dist, bool) {
		if at != nil {
			if m, ok := atStmt[at]; ok {
				if d, ok := m[array]; ok {
					return d, true
				}
			}
		}
		d, ok := dists[array]
		return d, ok
	}
	if proc.IsMain {
		out.mainDists = dists
	}

	runtimeProc := pc.opts.Strategy == codegen.StrategyRuntime ||
		len(c.Reach.RuntimeResolution[proc.Name]) > 0
	if runtimeProc {
		if tex.Enabled() {
			reason := "the run-time resolution baseline strategy is selected"
			if vars := c.Reach.RuntimeResolution[proc.Name]; len(vars) > 0 {
				reason = fmt.Sprintf("multiple decompositions reach %v and cloning did not separate them", vars)
			}
			tex.Add(explain.Remark{
				Kind: explain.Note, Pass: "core", Proc: proc.Name, Name: "runtime-resolution",
				Msg: fmt.Sprintf("%s compiled with run-time resolution (per-element ownership tests, Figure 3): %s",
					proc.Name, reason),
			})
		}
		entryDists := map[string]*decomp.Dist{}
		for arr, d := range entry {
			if dist := mkDistFor(proc, arr, d, env, pc.p); dist != nil {
				entryDists[arr] = dist
			}
		}
		res, err := codegen.GenerateRuntime(proc, distOf, entryDists, pc.p)
		if err != nil {
			out.err = fmt.Errorf("%s: %v", proc.Name, err)
			return
		}
		out.res = res
		out.body = res.Body
		out.part = map[string]*partition.Constraint{}
		out.commD = nil
		out.dsum = &livedecomp.Summary{
			Use: map[string]bool{}, Kill: map[string]bool{},
			Before: map[string]decomp.Decomp{}, After: map[string]decomp.Decomp{},
			Final: map[string]decomp.Decomp{},
		}
		out.iface = "runtime-resolution"
		out.inputs = pc.inputsFor(n)
		out.runtime = true
		return
	}

	immediate := pc.opts.Strategy == codegen.StrategyImmediate
	delayedConsOf := func(name string) map[string]*partition.Constraint {
		if immediate {
			return nil
		}
		return pc.table.partOf(name)
	}
	delayedCommOf := func(name string) []*comm.Delayed {
		if immediate {
			return nil
		}
		return pc.table.commOf(name)
	}

	deps := depend.Analyze(proc, env)
	plan := partition.Compute(proc, n, distOf, delayedConsOf, env)
	if immediate {
		forceLocalPlan(plan)
	}
	commRes := comm.Analyze(proc, n, plan, deps, distOf, delayedCommOf, pc.sections, env)
	if immediate {
		for _, acc := range commRes.Accesses {
			acc.Delay = false
		}
		commRes.Delayed = nil
	}
	// communication placed inside a loop requires every processor
	// to execute all its iterations: drop those reductions
	for _, acc := range commRes.Accesses {
		if acc.AtLoop != nil && !acc.Delay {
			plan.DropLoopReduction(acc.AtLoop)
		}
	}
	for _, cc := range commRes.CallComms {
		if cc.AtLoop != nil && !cc.Delay {
			plan.DropLoopReduction(cc.AtLoop)
		}
	}

	// §6.4: Fortran D disallows dynamic data decomposition for
	// aliased variables — reject calls that pass the same array to
	// two formals when the callee remaps either of them
	sums := pc.table.dsumSnapshot(n)
	if err := checkAliasRestriction(n, sums); err != nil {
		if tex.Enabled() {
			tex.Add(explain.Remark{
				Kind: explain.Missed, Pass: "core", Proc: proc.Name, Name: "alias-restriction",
				Msg: err.Error(),
			})
		}
		out.err = err
		return
	}

	remaps, decompSum := livedecomp.AnalyzeExplain(proc, n, entry, sums, pc.killTest, pc.opts.RemapOpt, tex)
	partition.Explain(tex, proc.Name, plan)
	comm.Explain(tex, proc.Name, commRes)

	// overlap bookkeeping: shifts extend the block boundary
	for _, acc := range commRes.Accesses {
		if acc.Kind != comm.KShift || acc.Delay {
			continue
		}
		lo, hi := 0, 0
		if acc.Shift > 0 {
			hi = acc.Shift
		} else {
			lo = -acc.Shift
		}
		c.Overlaps.RecordActual(proc.Name, acc.Array, acc.DistDim, lo, hi)
		out.actuals = append(out.actuals, summarycache.OverlapActual{
			Array: acc.Array, Dim: acc.DistDim, Lo: lo, Hi: hi,
		})
	}

	gen, err := codegen.Generate(&codegen.Input{
		Proc: proc, Plan: plan, Comm: commRes, Remaps: remaps,
		Overlap: c.Overlaps, DistOf: distOf, Env: env, P: pc.p,
	})
	if err != nil {
		out.err = fmt.Errorf("%s: %v", proc.Name, err)
		return
	}
	out.res = gen
	out.body = gen.Body
	c.Overlaps.Explain(tex, proc.Name)

	out.part = plan.Delayed
	out.commD = commRes.Delayed
	out.dsum = decompSum
	out.iface = interfaceString(plan.Delayed, commRes.Delayed, decompSum)
	out.inputs = pc.inputsFor(n)
}

// inputsFor renders the interprocedural information consumed when
// compiling n — reaching decompositions plus callee interfaces.
func (pc *passCtx) inputsFor(n *acg.Node) string {
	reachView := map[string]decompSetView{}
	for v, set := range pc.c.Reach.Reaching[n.Name()] {
		reachView[v] = set
	}
	return inputsString(n, reachView, pc.table.ifaceSnapshot(n))
}

// compileAll schedules every procedure of order (reverse topological:
// callees first) across jobs workers and returns the per-procedure
// outputs, indexed like order. On failure, outputs downstream of the
// failed task may be nil.
func compileAll(pc *passCtx, order []*acg.Node, jobs int) []*procOut {
	n := len(order)
	outs := make([]*procOut, n)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 || n == 0 {
		for i, nd := range order {
			out := pc.compileOne(nd, i)
			outs[i] = out
			if out.err != nil {
				return outs
			}
			pc.table.publish(out)
		}
		return outs
	}

	// dependency counts over distinct callees; callees always precede
	// callers in reverse topological order
	idxOf := make(map[string]int, n)
	for i, nd := range order {
		idxOf[nd.Name()] = i
	}
	deg := make([]int, n)
	dependents := make([][]int, n)
	for i, nd := range order {
		for _, callee := range calleeNames(nd) {
			j := idxOf[callee]
			deg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}

	ready := make(chan int, n)
	var (
		mu          sync.Mutex
		unscheduled = n
		inflight    int
		failed      bool
	)
	mu.Lock()
	for i := range order {
		if deg[i] == 0 {
			unscheduled--
			inflight++
			ready <- i
		}
	}
	if inflight == 0 {
		close(ready)
	}
	mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				out := pc.compileOne(order[i], i)
				if out.err == nil {
					pc.table.publish(out)
				}
				mu.Lock()
				outs[i] = out
				inflight--
				if out.err != nil {
					failed = true
				}
				if !failed {
					for _, d := range dependents[i] {
						deg[d]--
						if deg[d] == 0 {
							unscheduled--
							inflight++
							ready <- d
						}
					}
				}
				if inflight == 0 && (unscheduled == 0 || failed) {
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return outs
}

// Emitted counter names for the summary cache.
const (
	counterCacheHits   = "summary-cache-hits"
	counterCacheMisses = "summary-cache-misses"
)
