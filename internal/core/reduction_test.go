package core

import (
	"strings"
	"testing"

	"fortd/internal/ast"
)

// TestSumReductionRecognized: s = s + X(i) over a distributed array
// compiles to private partial accumulation plus one global combine
// instead of per-element broadcasts.
func TestSumReductionRecognized(t *testing.T) {
	src := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL X(100)
      DISTRIBUTE X(BLOCK)
      do i = 1,100
        X(i) = i
      enddo
      s = 0.0
      do i = 1,100
        s = s + X(i)
      enddo
      X(1) = s
      END
`
	c := compileSrc(t, src, DefaultOptions())
	text := ast.Print(c.Program)
	if !strings.Contains(text, "globalsum s$red") {
		t.Errorf("missing global combine:\n%s", text)
	}
	if !strings.Contains(text, "s$red = (s$red + X(i))") {
		t.Errorf("missing partial accumulation:\n%s", text)
	}
	par, seq := runBoth(t, c, nil)
	assertSame(t, "X", par.Arrays["X"], seq.Arrays["X"])
	// combine: binomial tree gather+bcast, no per-element broadcasts
	if par.Stats.Messages > 8 {
		t.Errorf("messages = %d, reduction should need only the combine", par.Stats.Messages)
	}
}

// TestMaxReductionRecognized: the residual-norm pattern.
func TestMaxReductionRecognized(t *testing.T) {
	src := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL X(64)
      DISTRIBUTE X(CYCLIC)
      do i = 1,64
        X(i) = ABS(32.5 - i)
      enddo
      err = 0.0
      do i = 1,64
        err = MAX(err, X(i))
      enddo
      X(1) = err
      END
`
	c := compileSrc(t, src, DefaultOptions())
	if !strings.Contains(ast.Print(c.Program), "globalmax err$red") {
		t.Errorf("missing global max:\n%s", ast.Print(c.Program))
	}
	par, seq := runBoth(t, c, nil)
	assertSame(t, "X", par.Arrays["X"], seq.Arrays["X"])
	if par.Arrays["X"][0] != 31.5 {
		t.Errorf("max = %v, want 31.5", par.Arrays["X"][0])
	}
}

// TestReductionMuchCheaperThanBroadcasts: against an artificial
// non-reduction scalar access pattern of the same size.
func TestReductionMuchCheaperThanBroadcasts(t *testing.T) {
	reduction := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL X(200)
      DISTRIBUTE X(BLOCK)
      s = 0.0
      do i = 1,200
        s = s + X(i)
      enddo
      X(1) = s
      END
`
	// same data access, but the accumulator also feeds the array, so it
	// is not a recognizable reduction and falls back to broadcasts
	nonReduction := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL X(200)
      DISTRIBUTE X(BLOCK)
      s = 0.0
      do i = 1,200
        s = s + X(i)
        X(i) = s
      enddo
      END
`
	init := map[string][]float64{"X": initRamp(200)}
	fast := compileSrc(t, reduction, DefaultOptions())
	parF, seqF := runBoth(t, fast, init)
	assertSame(t, "X", parF.Arrays["X"], seqF.Arrays["X"])

	slow := compileSrc(t, nonReduction, DefaultOptions())
	parS, seqS := runBoth(t, slow, init)
	assertSame(t, "X", parS.Arrays["X"], seqS.Arrays["X"])

	if parF.Stats.Messages*10 > parS.Stats.Messages {
		t.Errorf("reduction msgs %d vs scan msgs %d: expected >10x gap",
			parF.Stats.Messages, parS.Stats.Messages)
	}
}

// TestReductionFallbackWhenAccumulatorUsed: a mid-loop read of the
// accumulator blocks the transform but stays correct.
func TestReductionFallbackWhenAccumulatorUsed(t *testing.T) {
	src := `
      PROGRAM P
      PARAMETER (n$proc = 2)
      REAL X(20), Y(20)
      DISTRIBUTE X(BLOCK)
      DISTRIBUTE Y(BLOCK)
      do i = 1,20
        X(i) = i
      enddo
      s = 0.0
      do i = 1,20
        s = s + X(i)
        Y(i) = s
      enddo
      END
`
	c := compileSrc(t, src, DefaultOptions())
	if strings.Contains(ast.Print(c.Program), "globalsum") {
		t.Error("prefix-sum pattern must not be transformed")
	}
	par, seq := runBoth(t, c, nil)
	assertSame(t, "Y", par.Arrays["Y"], seq.Arrays["Y"])
}

// TestReductionInterprocedural: the reduction sits in a callee whose
// decomposition arrives interprocedurally.
func TestReductionInterprocedural(t *testing.T) {
	src := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL X(100)
      DISTRIBUTE X(BLOCK)
      do i = 1,100
        X(i) = 2.0
      enddo
      call total(X, 100)
      END
      SUBROUTINE total(X, n)
      REAL X(100)
      s = 0.0
      do i = 1, n
        s = s + X(i)
      enddo
      X(1) = s
      END
`
	c := compileSrc(t, src, DefaultOptions())
	if !strings.Contains(ast.Print(c.Program), "globalsum") {
		t.Errorf("interprocedural reduction not recognized:\n%s", ast.Print(c.Program))
	}
	par, seq := runBoth(t, c, nil)
	assertSame(t, "X", par.Arrays["X"], seq.Arrays["X"])
	if par.Arrays["X"][0] != 200 {
		t.Errorf("sum = %v, want 200", par.Arrays["X"][0])
	}
}

// TestJacobiWithConvergenceCheck: the classic use of a MAX reduction —
// per-step residual norm — stays cheap and correct.
func TestJacobiWithConvergenceCheck(t *testing.T) {
	src := `
      PROGRAM JAC
      PARAMETER (n$proc = 4)
      REAL a(64), b(64), r(1)
      DISTRIBUTE a(BLOCK)
      DISTRIBUTE b(BLOCK)
      do t = 1, 5
        do i = 2, 63
          b(i) = 0.5 * (a(i-1) + a(i+1))
        enddo
        err = 0.0
        do i = 2, 63
          err = MAX(err, ABS(b(i) - a(i)))
        enddo
        do i = 2, 63
          a(i) = b(i)
        enddo
        r(1) = err
      enddo
      END
`
	c := compileSrc(t, src, DefaultOptions())
	init := map[string][]float64{"a": jacobiInit(64)}
	par, seq := runBoth(t, c, init)
	assertSame(t, "a", par.Arrays["a"], seq.Arrays["a"])
	assertSame(t, "r", par.Arrays["r"], seq.Arrays["r"])
	if par.Arrays["r"][0] <= 0 {
		t.Errorf("residual = %v", par.Arrays["r"][0])
	}
}
