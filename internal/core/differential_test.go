package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fortd/internal/ast"
	"fortd/internal/codegen"
	"fortd/internal/machine"
	"fortd/internal/spmd"
	"fortd/internal/summarycache"
)

// This file implements differential testing: randomly generated
// Fortran D programs are compiled with every strategy and executed on
// the simulated machine; all variants must produce exactly the results
// of the sequential reference interpreter. This exercises partitioning,
// communication classification/placement, cloning, dynamic
// redistribution and the run-time resolution generator on program
// shapes nobody hand-picked.

type progGen struct {
	rng    *rand.Rand
	n      int
	p      int
	frags  []string
	subs   []string
	nextID int
}

func (g *progGen) pick(ss ...string) string { return ss[g.rng.Intn(len(ss))] }

func (g *progGen) shift() int { return g.rng.Intn(5) - 2 } // -2..2

// fill writes a deterministic pattern.
func (g *progGen) fill(arr string) string {
	c := g.rng.Intn(5) + 1
	return fmt.Sprintf(`      do i = 1, %d
        %s(i) = i * %d + %d
      enddo
`, g.n, arr, c, g.rng.Intn(9))
}

// stencil reads src with a shift, writes dst.
func (g *progGen) stencil(dst, src string) string {
	s1 := g.shift()
	s2 := g.shift()
	return fmt.Sprintf(`      do i = 3, %d
        %s(i) = 0.5 * %s(i%+d) + 0.25 * %s(i%+d)
      enddo
`, g.n-2, dst, src, s1, src, s2)
}

// recurrence creates a carried true dependence.
func (g *progGen) recurrence(arr string) string {
	return fmt.Sprintf(`      do i = 3, %d
        %s(i) = %s(i-1) + 1.0
      enddo
`, g.n-2, arr, arr)
}

// reduce accumulates into a scalar (replicated computation).
func (g *progGen) reduce(arr string) string {
	return fmt.Sprintf(`      do i = 1, %d
        s = s + %s(i)
      enddo
      %s(1) = s
`, g.n, arr, arr)
}

// subCall wraps a stencil in a subroutine.
func (g *progGen) subCall(dst, src string) string {
	g.nextID++
	name := fmt.Sprintf("W%d", g.nextID)
	s1 := g.shift()
	g.subs = append(g.subs, fmt.Sprintf(`      SUBROUTINE %s(U, V)
      REAL U(%d), V(%d)
      do i = 3, %d
        U(i) = V(i%+d) * 1.5
      enddo
      END
`, name, g.n, g.n, g.n-2, s1))
	return fmt.Sprintf("      call %s(%s, %s)\n", name, dst, src)
}

// redistribute changes A's distribution mid-program.
func (g *progGen) redistribute(arr, spec string) string {
	return fmt.Sprintf("      DISTRIBUTE %s(%s)\n", arr, spec)
}

// conditional reads distributed data in an IF condition and takes
// per-element branches.
func (g *progGen) conditional(dst, src string) string {
	thresh := g.rng.Intn(50)
	return fmt.Sprintf(`      do i = 3, %d
        if (%s(i) .GT. %d) then
          %s(i) = %s(i) - 1.0
        else
          %s(i) = %s(i) + 2.0
        endif
      enddo
`, g.n-2, src, thresh, dst, src, dst, src)
}

func (g *progGen) generate() string {
	distA := g.pick("BLOCK", "CYCLIC")
	distB := g.pick("BLOCK", "CYCLIC")
	var body strings.Builder
	nf := g.rng.Intn(3) + 2
	body.WriteString(g.fill("A"))
	body.WriteString(g.fill("B"))
	for i := 0; i < nf; i++ {
		switch g.rng.Intn(7) {
		case 0:
			body.WriteString(g.stencil("A", "B"))
		case 1:
			body.WriteString(g.stencil("B", "A"))
		case 2:
			body.WriteString(g.recurrence(g.pick("A", "B")))
		case 3:
			body.WriteString(g.reduce(g.pick("A", "B")))
		case 4:
			body.WriteString(g.subCall("A", "B"))
		case 5:
			// mid-program redistribution exercises §6 and the
			// per-statement distribution lookup
			body.WriteString(g.redistribute(g.pick("A", "B"), g.pick("BLOCK", "CYCLIC")))
			body.WriteString(g.stencil("A", "B"))
		case 6:
			body.WriteString(g.conditional("A", "B"))
		}
	}
	var src strings.Builder
	fmt.Fprintf(&src, `      PROGRAM RAND
      PARAMETER (n$proc = %d)
      REAL A(%d), B(%d)
      DISTRIBUTE A(%s)
      DISTRIBUTE B(%s)
`, g.p, g.n, g.n, distA, distB)
	src.WriteString(body.String())
	src.WriteString("      END\n")
	for _, s := range g.subs {
		src.WriteString(s)
	}
	return src.String()
}

// TestDifferentialRandomPrograms is a table-driven property test: every
// lane draws random programs (array sizes, processor counts, statement
// mixes) from a fixed seed, compiles them with its strategy and worker
// count, and checks the SPMD run against the sequential reference. The
// parallel lanes additionally assert the determinism property — the
// listing compiled with Jobs=N must equal the Jobs=1 listing — and the
// cached lane recompiles through a summary cache and asserts the warm
// program is all hits yet still byte-identical and correct.
func TestDifferentialRandomPrograms(t *testing.T) {
	cases := []struct {
		name     string
		strategy codegen.Strategy
		// maxJobs > 1 draws a random worker count in [2, maxJobs] per
		// trial and checks listings against the sequential compile
		maxJobs int
		cached  bool
		seed    int64
		trials  int
	}{
		{name: "interproc", strategy: codegen.StrategyInterproc, seed: 20260705, trials: 40},
		{name: "immediate", strategy: codegen.StrategyImmediate, seed: 20260705, trials: 40},
		{name: "runtime", strategy: codegen.StrategyRuntime, seed: 20260705, trials: 40},
		{name: "interproc-parallel", strategy: codegen.StrategyInterproc, maxJobs: 8, seed: 20260806, trials: 15},
		{name: "interproc-parallel-cached", strategy: codegen.StrategyInterproc, maxJobs: 8, cached: true, seed: 20260807, trials: 15},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			for trial := 0; trial < tc.trials; trial++ {
				g := &progGen{
					rng: rng,
					n:   rng.Intn(40) + 24,
					p:   []int{2, 3, 4}[rng.Intn(3)],
				}
				src := g.generate()

				opts := DefaultOptions()
				opts.Strategy = tc.strategy
				if tc.maxJobs > 1 {
					opts.Jobs = rng.Intn(tc.maxJobs-1) + 2
				}
				if tc.cached {
					opts.Cache = summarycache.New()
				}
				c, err := Compile(src, opts)
				if err != nil {
					t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
				}
				if tc.maxJobs > 1 {
					seqOpts := opts
					seqOpts.Jobs = 1
					seqOpts.Cache = nil
					sc, err := Compile(src, seqOpts)
					if err != nil {
						t.Fatalf("trial %d: sequential compile: %v\n%s", trial, err, src)
					}
					if got, want := listingOf(c), listingOf(sc); got != want {
						t.Fatalf("trial %d: jobs=%d listing differs from sequential\n%s", trial, opts.Jobs, src)
					}
				}
				if tc.cached {
					warm, err := Compile(src, opts)
					if err != nil {
						t.Fatalf("trial %d: warm recompile: %v\n%s", trial, err, src)
					}
					if len(warm.CacheMisses) != 0 {
						t.Fatalf("trial %d: warm recompile misses %v\n%s", trial, warm.CacheMisses, src)
					}
					if got, want := listingOf(warm), listingOf(c); got != want {
						t.Fatalf("trial %d: warm listing differs from cold\n%s", trial, src)
					}
					c = warm // run the cache-built program against the reference
				}
				par, err := spmd.Run(c.Program, machine.DefaultConfig(c.P), spmd.Options{Dists: c.MainDists})
				if err != nil {
					t.Fatalf("trial %d: run: %v\n%s", trial, err, src)
				}
				seq, err := spmd.RunSequential(c.Source, spmd.Options{})
				if err != nil {
					t.Fatalf("trial %d: reference: %v", trial, err)
				}
				for name, want := range seq.Arrays {
					got := par.Arrays[name]
					for i := range want {
						if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
							t.Fatalf("trial %d: %s[%d] = %v, want %v\nprogram:\n%s\ngenerated:\n%s",
								trial, name, i, got[i], want[i], src, listingOf(c))
						}
					}
				}
			}
		})
	}
}

func listingOf(c *Compilation) string {
	return ast.Print(c.Program)
}
