package core

import (
	"fmt"
	"testing"
)

// adiSrc mirrors fortd.ADISrc (duplicated here because internal
// packages cannot import the module root): an alternating-sweep
// program whose two phases prefer opposite distributions — the §6
// motivation for dynamic data decomposition.
func adiSrc(n, steps, p int, dynamic bool) string {
	remap := ""
	restore := ""
	if dynamic {
		remap = "        DISTRIBUTE a(:,BLOCK)\n"
		restore = "        DISTRIBUTE a(BLOCK,:)\n"
	}
	return fmt.Sprintf(`
      PROGRAM ADI
      PARAMETER (n$proc = %d)
      REAL a(%d,%d)
      DISTRIBUTE a(BLOCK,:)
      do t = 1, %d
        do i = 1, %d
          do j = 2, %d
            a(i,j) = a(i,j) + 0.5 * a(i,j-1)
          enddo
        enddo
%s        do j = 1, %d
          do i = 2, %d
            a(i,j) = a(i,j) + 0.5 * a(i-1,j)
          enddo
        enddo
%s      enddo
      END
`, p, n, n, steps, n, n, remap, n, n, restore)
}

// TestADIStaticCorrect: the static version compiles to a pipelined
// per-iteration boundary exchange in the column phase — slow but
// correct.
func TestADIStaticCorrect(t *testing.T) {
	const n, steps = 16, 2
	c := compileSrc(t, adiSrc(n, steps, 4, false), DefaultOptions())
	init := map[string][]float64{"a": initRamp(n * n)}
	par, seq := runBoth(t, c, init)
	assertSame(t, "a", par.Arrays["a"], seq.Arrays["a"])
	if par.Stats.Messages == 0 {
		t.Error("static ADI needs boundary communication in the column phase")
	}
}

// TestADIDynamicCorrect: redistribution between phases makes both
// sweeps fully local; only the remaps communicate.
func TestADIDynamicCorrect(t *testing.T) {
	const n, steps = 16, 2
	c := compileSrc(t, adiSrc(n, steps, 4, true), DefaultOptions())
	init := map[string][]float64{"a": initRamp(n * n)}
	par, seq := runBoth(t, c, init)
	assertSame(t, "a", par.Arrays["a"], seq.Arrays["a"])
	if par.Stats.Remaps != 2*steps {
		t.Errorf("remaps = %d, want %d (two per time step)", par.Stats.Remaps, 2*steps)
	}
}

// TestADIDynamicBeatsStatic reproduces the §6 claim: "phases of a
// computation may require different data decompositions to reduce data
// movement" — one remap per phase is cheaper than a pipelined
// element-by-element boundary exchange.
func TestADIDynamicBeatsStatic(t *testing.T) {
	const n, steps = 32, 2
	init := map[string][]float64{"a": initRamp(n * n)}
	static := compileSrc(t, adiSrc(n, steps, 4, false), DefaultOptions())
	parS, seqS := runBoth(t, static, init)
	assertSame(t, "a(static)", parS.Arrays["a"], seqS.Arrays["a"])

	dynamic := compileSrc(t, adiSrc(n, steps, 4, true), DefaultOptions())
	parD, seqD := runBoth(t, dynamic, init)
	assertSame(t, "a(dynamic)", parD.Arrays["a"], seqD.Arrays["a"])

	if parD.Stats.Time >= parS.Stats.Time {
		t.Errorf("dynamic %.0fµs not faster than static %.0fµs",
			parD.Stats.Time, parS.Stats.Time)
	}
	if parD.Stats.Messages >= parS.Stats.Messages {
		t.Errorf("dynamic msgs %d not fewer than static %d",
			parD.Stats.Messages, parS.Stats.Messages)
	}
}

// TestDynamicThroughWrapper: a wrapper between the caller and the
// redistributing procedure — the remap responsibility is delegated
// upward through the wrapper (delayed instantiation of dynamic data
// decomposition across two levels).
func TestDynamicThroughWrapper(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      do i = 1,100
        X(i) = i
      enddo
      do k = 1,5
        call WRAP(X)
      enddo
      s = 0.0
      do i = 1,100
        s = s + X(i)
      enddo
      X(1) = s
      END
      SUBROUTINE WRAP(X)
      REAL X(100)
      call F1(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      DISTRIBUTE X(CYCLIC)
      do i = 1,100
        X(i) = X(i) + 1.0
      enddo
      END
`
	c := compileSrc(t, src, DefaultOptions())
	par, seq := runBoth(t, c, nil)
	assertSame(t, "X", par.Arrays["X"], seq.Arrays["X"])
	// hoisted out of the k loop: 2 physical remaps total (the final sum
	// uses X under BLOCK again)
	if par.Stats.Remaps > 2 {
		t.Errorf("remaps = %d, want <=2 (hoisted through the wrapper)", par.Stats.Remaps)
	}
}
