package core

import (
	"fmt"
	"math"
	"testing"

	"fortd/internal/codegen"
	"fortd/internal/machine"
	"fortd/internal/spmd"
)

// DgefaSrc builds the paper's §9 case study: LINPACK's dgefa (LU
// factorization without pivoting — the input is made diagonally
// dominant) structured exactly as the paper motivates, with the
// BLAS-1-style kernels in separate procedures so that interprocedural
// analysis is required to compile them with known decompositions.
// Columns are distributed cyclically for load balance, the classic
// LINPACK choice.
func DgefaSrc(n, p int) string {
	return fmt.Sprintf(`
      PROGRAM MAIN
      PARAMETER (n$proc = %d)
      REAL a(%d,%d)
      DISTRIBUTE a(:,CYCLIC)
      call dgefa(a, %d)
      END
      SUBROUTINE dgefa(a, n)
      REAL a(%d,%d)
      do k = 1, n-1
        t = 1.0 / a(k,k)
        call dscal(a, n, k, t)
        do j = k+1, n
          call daxpy(a, n, k, j)
        enddo
      enddo
      END
      SUBROUTINE dscal(a, n, k, t)
      REAL a(%d,%d)
      do i = k+1, n
        a(i,k) = a(i,k) * t
      enddo
      END
      SUBROUTINE daxpy(a, n, k, j)
      REAL a(%d,%d)
      do i = k+1, n
        a(i,j) = a(i,j) - a(i,k) * a(k,j)
      enddo
      END
`, p, n, n, n, n, n, n, n, n, n)
}

// DgefaMatrix builds a deterministic diagonally dominant n×n matrix in
// row-major order.
func DgefaMatrix(n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := math.Sin(float64(i*7+j*13)) * 0.5
			if i == j {
				v = float64(n) + 1.0
			}
			a[i*n+j] = v
		}
	}
	return a
}

// goDgefa is the plain Go reference LU factorization (no pivoting),
// matching the Fortran algorithm element for element.
func goDgefa(a []float64, n int) {
	for k := 0; k < n-1; k++ {
		t := 1.0 / a[k*n+k]
		for i := k + 1; i < n; i++ {
			a[i*n+k] *= t
		}
		for j := k + 1; j < n; j++ {
			for i := k + 1; i < n; i++ {
				a[i*n+j] -= a[i*n+k] * a[k*n+j]
			}
		}
	}
}

func TestDgefaSequentialMatchesGo(t *testing.T) {
	const n = 24
	c := compileSrc(t, DgefaSrc(n, 4), DefaultOptions())
	init := map[string][]float64{"a": DgefaMatrix(n)}
	seq, err := spmd.RunSequential(c.Source, spmd.Options{Init: init})
	if err != nil {
		t.Fatal(err)
	}
	want := DgefaMatrix(n)
	goDgefa(want, n)
	assertSame(t, "a", seq.Arrays["a"], want)
}

// TestDgefaEndToEnd: the compiled interprocedural SPMD dgefa computes
// the correct factorization on 4 processors.
func TestDgefaEndToEnd(t *testing.T) {
	const n = 24
	c := compileSrc(t, DgefaSrc(n, 4), DefaultOptions())
	init := map[string][]float64{"a": DgefaMatrix(n)}
	par, seq := runBoth(t, c, init)
	assertSame(t, "a", par.Arrays["a"], seq.Arrays["a"])
	if par.Stats.Messages == 0 {
		t.Error("dgefa ran without communication")
	}
}

// TestDgefaRuntimeResolution: the baseline also computes the right
// answer, with far more messages and time.
func TestDgefaRuntimeResolution(t *testing.T) {
	const n = 16
	opts := DefaultOptions()
	opts.Strategy = codegen.StrategyRuntime
	c := compileSrc(t, DgefaSrc(n, 4), opts)
	init := map[string][]float64{"a": DgefaMatrix(n)}
	par, seq := runBoth(t, c, init)
	assertSame(t, "a", par.Arrays["a"], seq.Arrays["a"])

	cFast := compileSrc(t, DgefaSrc(n, 4), DefaultOptions())
	parF, _ := runBoth(t, cFast, init)
	if par.Stats.Messages <= parF.Stats.Messages {
		t.Errorf("runtime resolution msgs %d not worse than interproc %d",
			par.Stats.Messages, parF.Stats.Messages)
	}
	if par.Stats.Time <= parF.Stats.Time {
		t.Errorf("runtime resolution time %.0f not worse than interproc %.0f",
			par.Stats.Time, parF.Stats.Time)
	}
}

// TestDgefaScales: more processors should not be slower on a
// reasonably sized problem (the §9 claim that interprocedural
// optimization achieves acceptable parallel performance). The problem
// size must be large enough that computation dominates the per-
// iteration broadcast latency — the same crossover the iPSC/860 had.
func TestDgefaScales(t *testing.T) {
	const n = 96
	init := map[string][]float64{"a": DgefaMatrix(n)}
	times := map[int]float64{}
	for _, p := range []int{1, 2, 4, 8} {
		c := compileSrc(t, DgefaSrc(n, p), DefaultOptions())
		par, err := spmd.Run(c.Program, machine.DefaultConfig(p), spmd.Options{
			Dists: c.MainDists, Init: init,
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		seq, err := spmd.RunSequential(c.Source, spmd.Options{Init: init})
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, fmt.Sprintf("a@p%d", p), par.Arrays["a"], seq.Arrays["a"])
		times[p] = par.Stats.Time
	}
	if times[4] >= times[1] {
		t.Errorf("no speedup: t1=%.0f t4=%.0f", times[1], times[4])
	}
}
