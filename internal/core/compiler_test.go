package core

import (
	"math"
	"strings"
	"testing"

	"fortd/internal/ast"
	"fortd/internal/codegen"
	"fortd/internal/livedecomp"
	"fortd/internal/machine"
	"fortd/internal/spmd"
)

const fig1Src = `
      PROGRAM P1
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      call F1(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
        X(i) = F(X(i+5))
      enddo
      END
`

func compileSrc(t *testing.T, src string, opts Options) *Compilation {
	t.Helper()
	c, err := Compile(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func initRamp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// runBoth runs the compiled program on P processors and the source
// sequentially, returning both results.
func runBoth(t *testing.T, c *Compilation, init map[string][]float64) (*spmd.RunResult, *spmd.RunResult) {
	t.Helper()
	par, err := spmd.Run(c.Program, machine.DefaultConfig(c.P), spmd.Options{
		Dists: c.MainDists, Init: init,
	})
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	seq, err := spmd.RunSequential(c.Source, spmd.Options{Init: init})
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	return par, seq
}

func assertSame(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// TestFigure1EndToEnd: the §3.1 example compiles to vectorized
// boundary messages and computes the same values as the sequential
// program.
func TestFigure1EndToEnd(t *testing.T) {
	c := compileSrc(t, fig1Src, DefaultOptions())
	if c.P != 4 {
		t.Fatalf("P = %d", c.P)
	}
	init := map[string][]float64{"X": initRamp(100)}
	par, seq := runBoth(t, c, init)
	assertSame(t, "X", par.Arrays["X"], seq.Arrays["X"])

	// message vectorization: each interior processor exchanges one
	// boundary message — 3 messages total, 5 words each
	if par.Stats.Messages != 3 {
		t.Errorf("messages = %d, want 3", par.Stats.Messages)
	}
	if par.Stats.Words != 15 {
		t.Errorf("words = %d, want 15", par.Stats.Words)
	}
}

// TestFigure2Output checks the structural features of the generated
// code: reduced loop bounds with my$p arithmetic and guarded
// vectorized send/recv hoisted outside the loop.
func TestFigure2Output(t *testing.T) {
	c := compileSrc(t, fig1Src, DefaultOptions())
	text := ast.Print(c.Program)
	for _, want := range []string{
		"my$p = myproc()",
		"send X(",
		"recv X(",
		"(my$p .GT. 0)",
		"(my$p .LT. 3)",
		"MIN(", // reduced upper bound min((my$p+1)*25, 95)
	} {
		if !strings.Contains(text, want) {
			t.Errorf("generated code missing %q:\n%s", want, text)
		}
	}
	if c.Report.LoopsReduced != 1 {
		t.Errorf("loops reduced = %d", c.Report.LoopsReduced)
	}
	if c.Report.Messages == 0 {
		t.Error("no messages inserted")
	}
}

// TestFigure3RuntimeResolution: the run-time resolution baseline
// computes the same result with far more messages (one per nonlocal
// element instead of one per boundary).
func TestFigure3RuntimeResolution(t *testing.T) {
	opts := DefaultOptions()
	opts.Strategy = codegen.StrategyRuntime
	c := compileSrc(t, fig1Src, opts)
	init := map[string][]float64{"X": initRamp(100)}
	par, seq := runBoth(t, c, init)
	assertSame(t, "X", par.Arrays["X"], seq.Arrays["X"])

	// 15 nonlocal elements → 15 element messages
	if par.Stats.Messages != 15 {
		t.Errorf("runtime-resolution messages = %d, want 15", par.Stats.Messages)
	}

	// and it must be slower than the compile-time version
	cFast := compileSrc(t, fig1Src, DefaultOptions())
	parFast, _ := runBoth(t, cFast, init)
	if par.Stats.Time <= parFast.Stats.Time {
		t.Errorf("runtime resolution %.1f not slower than compiled %.1f",
			par.Stats.Time, parFast.Stats.Time)
	}
}

const fig4Src = `
      PROGRAM P1
      REAL X(100,100),Y(100,100)
      PARAMETER (n$proc = 4)
      ALIGN Y(i,j) with X(j,i)
      DISTRIBUTE X(BLOCK,:)
      do i = 1,100
S1      call F1(X,i)
      enddo
      do j = 1,100
S2      call F1(Y,j)
      enddo
      END
      SUBROUTINE F1(Z,i)
      REAL Z(100,100)
S3    call F2(Z,i)
      END
      SUBROUTINE F2(Z,i)
      REAL Z(100,100)
      do k = 1,95
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`

// TestFigure10EndToEnd: the full interprocedural example — cloning,
// delayed computation partitioning (the caller's j loop bounds are
// reduced), and delayed communication vectorized out of the caller's i
// loop (one boundary message instead of 100).
func TestFigure10EndToEnd(t *testing.T) {
	c := compileSrc(t, fig4Src, DefaultOptions())
	init := map[string][]float64{
		"X": initRamp(100 * 100),
		"Y": initRamp(100 * 100),
	}
	par, seq := runBoth(t, c, init)
	assertSame(t, "X", par.Arrays["X"], seq.Arrays["X"])
	assertSame(t, "Y", par.Arrays["Y"], seq.Arrays["Y"])

	// X (row-block): boundary exchange vectorized across the i loop:
	// 3 messages of 5*100 words. Y (column-block): fully local.
	if par.Stats.Messages != 3 {
		t.Errorf("messages = %d, want 3", par.Stats.Messages)
	}
	if par.Stats.Words != 1500 {
		t.Errorf("words = %d, want 1500", par.Stats.Words)
	}
	text := ast.Print(c.Program)
	if !strings.Contains(text, "F1$row") || !strings.Contains(text, "F1$col") {
		t.Errorf("clones missing from output:\n%s", text[:400])
	}
}

// TestFigure12Immediate: without delayed instantiation the same
// program sends one message per invocation of F1$row (100 messages
// through the i loop) instead of one vectorized message.
func TestFigure12Immediate(t *testing.T) {
	opts := DefaultOptions()
	opts.Strategy = codegen.StrategyImmediate
	c := compileSrc(t, fig4Src, opts)
	init := map[string][]float64{
		"X": initRamp(100 * 100),
		"Y": initRamp(100 * 100),
	}
	par, seq := runBoth(t, c, init)
	assertSame(t, "X", par.Arrays["X"], seq.Arrays["X"])
	assertSame(t, "Y", par.Arrays["Y"], seq.Arrays["Y"])

	// 3 processor boundaries × 100 invocations
	if par.Stats.Messages != 300 {
		t.Errorf("immediate messages = %d, want 300", par.Stats.Messages)
	}
	// delayed vs immediate: the paper's 100× message reduction
	cDelayed := compileSrc(t, fig4Src, DefaultOptions())
	parD, _ := runBoth(t, cDelayed, init)
	if par.Stats.Messages != 100*parD.Stats.Messages {
		t.Errorf("expected 100x message reduction: %d vs %d",
			par.Stats.Messages, parD.Stats.Messages)
	}
	if par.Stats.Time <= parD.Stats.Time {
		t.Errorf("immediate %.1f not slower than delayed %.1f", par.Stats.Time, parD.Stats.Time)
	}
}

// TestFigure16DynamicEndToEnd compiles and runs the Figure 15 program
// at each optimization level, checking correctness and the declining
// physical remap counts.
func TestFigure16DynamicEndToEnd(t *testing.T) {
	src := `
      PROGRAM P1
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      do k = 1,10
S1      call F1(X)
S2      call F1(X)
      enddo
      call F2(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      DISTRIBUTE X(CYCLIC)
      do i = 1,100
        y = y + X(i)
      enddo
      END
      SUBROUTINE F2(X)
      REAL X(100)
      do i = 1,100
        X(i) = 1.0
      enddo
      END
`
	var lastRemaps int64 = 1 << 60
	for _, level := range []livedecomp.Level{livedecomp.OptNone, livedecomp.OptLive, livedecomp.OptHoist, livedecomp.OptKills} {
		opts := DefaultOptions()
		opts.RemapOpt = level
		c := compileSrc(t, src, opts)
		init := map[string][]float64{"X": initRamp(100)}
		par, seq := runBoth(t, c, init)
		assertSame(t, "X", par.Arrays["X"], seq.Arrays["X"])
		if par.Stats.Remaps > lastRemaps {
			t.Errorf("level %v: remaps %d increased over previous %d", level, par.Stats.Remaps, lastRemaps)
		}
		lastRemaps = par.Stats.Remaps
	}
	if lastRemaps != 1 {
		t.Errorf("final physical remaps = %d, want 1", lastRemaps)
	}
}

// TestAliasRestriction enforces §6.4: the same array passed to two
// formals of a procedure that dynamically remaps one of them is a
// compile-time error; without remapping, aliasing is accepted.
func TestAliasRestriction(t *testing.T) {
	forbidden := `
      PROGRAM P
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      call S(X, X)
      END
      SUBROUTINE S(A, B)
      REAL A(100), B(100)
      DISTRIBUTE A(CYCLIC)
      do i = 1,100
        B(i) = A(i)
      enddo
      END
`
	if _, err := Compile(forbidden, DefaultOptions()); err == nil {
		t.Error("aliased dynamic decomposition must be rejected")
	}

	allowed := `
      PROGRAM P
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      call S(X, X)
      END
      SUBROUTINE S(A, B)
      REAL A(100), B(100)
      do i = 2,100
        B(i) = A(i-1)
      enddo
      END
`
	if _, err := Compile(allowed, DefaultOptions()); err != nil {
		t.Errorf("aliasing without remapping must compile: %v", err)
	}
}

// TestAliasRestrictionAfterBenignCall is the regression test for the
// early-return bug in checkAliasRestriction: a first call site whose
// callee has no remaps must not stop the check before it reaches a
// later aliased call of a remapping callee.
func TestAliasRestrictionAfterBenignCall(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(100), Y(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      DISTRIBUTE Y(BLOCK)
      call BENIGN(Y)
      call S(X, X)
      END
      SUBROUTINE BENIGN(C)
      REAL C(100)
      do i = 1,100
        C(i) = C(i) + 1.0
      enddo
      END
      SUBROUTINE S(A, B)
      REAL A(100), B(100)
      DISTRIBUTE A(CYCLIC)
      do i = 1,100
        B(i) = A(i)
      enddo
      END
`
	_, err := Compile(src, DefaultOptions())
	if err == nil {
		t.Fatal("aliased remapping call after a benign call must be rejected")
	}
	if !strings.Contains(err.Error(), "alias") {
		t.Errorf("error = %v, want an aliasing rejection", err)
	}
}

func TestDedupRuntimeProcs(t *testing.T) {
	got := DedupRuntimeProcs(
		[]string{"foo$2", "bar", "foo$1", "bar"},
		map[string]string{"foo$1": "foo", "foo$2": "foo"})
	if len(got) != 2 || got[0] != "bar" || got[1] != "foo" {
		t.Errorf("DedupRuntimeProcs = %v, want [bar foo]", got)
	}
	if got := DedupRuntimeProcs(nil, nil); got != nil {
		t.Errorf("DedupRuntimeProcs(nil) = %v, want nil", got)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Messages: 3, Guards: 1, LoopsReduced: 2, Remaps: 4, Cloned: 5,
		RuntimeProcs: []string{"s1", "s2"}}
	s := r.String()
	for _, want := range []string{
		"messages=3", "guards=1", "loops-reduced=2", "remaps=4", "cloned=5",
		"runtime-resolution=[s1 s2]",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Report.String() = %q, missing %q", s, want)
		}
	}
	if s := (Report{}).String(); strings.Contains(s, "runtime-resolution") {
		t.Errorf("empty report mentions runtime-resolution: %q", s)
	}
}
