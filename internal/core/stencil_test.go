package core

import (
	"fmt"
	"testing"
)

// JacobiSrc builds a 1-D Jacobi relaxation with a time loop: the
// boundary exchange must be re-issued every time step (the dependence
// on the time loop is carried), but vectorized out of the sweep loops.
func JacobiSrc(n, steps, p int) string {
	return fmt.Sprintf(`
      PROGRAM JAC
      PARAMETER (n$proc = %d)
      REAL a(%d), b(%d)
      DISTRIBUTE a(BLOCK)
      DISTRIBUTE b(BLOCK)
      do t = 1, %d
        do i = 2, %d
          b(i) = 0.5 * (a(i-1) + a(i+1))
        enddo
        do i = 2, %d
          a(i) = b(i)
        enddo
      enddo
      END
`, p, n, n, steps, n-1, n-1)
}

func jacobiInit(n int) []float64 {
	a := make([]float64, n)
	a[0] = 1
	a[n-1] = 1
	return a
}

// TestJacobiEndToEnd: boundary exchange every step, correct values.
func TestJacobiEndToEnd(t *testing.T) {
	const n, steps = 64, 10
	c := compileSrc(t, JacobiSrc(n, steps, 4), DefaultOptions())
	init := map[string][]float64{"a": jacobiInit(n)}
	par, seq := runBoth(t, c, init)
	assertSame(t, "a", par.Arrays["a"], seq.Arrays["a"])
	assertSame(t, "b", par.Arrays["b"], seq.Arrays["b"])

	// two shifts (±1), each an exchange across 3 boundaries, per step
	want := int64(steps * 2 * 3)
	if par.Stats.Messages != want {
		t.Errorf("messages = %d, want %d (per-step boundary exchange)", par.Stats.Messages, want)
	}
}

// Jacobi2DSrc is the 2-D five-point stencil on row-block distribution.
func Jacobi2DSrc(n, steps, p int) string {
	return fmt.Sprintf(`
      PROGRAM JAC2
      PARAMETER (n$proc = %d)
      REAL a(%d,%d), b(%d,%d)
      DISTRIBUTE a(BLOCK,:)
      DISTRIBUTE b(BLOCK,:)
      do t = 1, %d
        do i = 2, %d
          do j = 2, %d
            b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
          enddo
        enddo
        do i = 2, %d
          do j = 2, %d
            a(i,j) = b(i,j)
          enddo
        enddo
      enddo
      END
`, p, n, n, n, n, steps, n-1, n-1, n-1, n-1)
}

func TestJacobi2DEndToEnd(t *testing.T) {
	const n, steps = 32, 4
	c := compileSrc(t, Jacobi2DSrc(n, steps, 4), DefaultOptions())
	init := make([]float64, n*n)
	for j := 0; j < n; j++ {
		init[j] = 1         // top row
		init[(n-1)*n+j] = 1 // bottom row
	}
	par, seq := runBoth(t, c, map[string][]float64{"a": init})
	assertSame(t, "a", par.Arrays["a"], seq.Arrays["a"])
	if par.Stats.Messages == 0 {
		t.Error("2-D Jacobi ran without communication")
	}
	// row-wise ghost exchange: messages carry whole boundary rows
	if par.Stats.Words < int64(steps*2*3*(n-2)) {
		t.Errorf("words = %d, too few for row exchanges", par.Stats.Words)
	}
}

// TestJacobiInterprocedural: the sweep in a subroutine — the caller's
// time loop must still carry the exchange.
func TestJacobiInterprocedural(t *testing.T) {
	const n, steps = 64, 8
	src := fmt.Sprintf(`
      PROGRAM JAC
      PARAMETER (n$proc = 4)
      REAL a(%d), b(%d)
      DISTRIBUTE a(BLOCK)
      DISTRIBUTE b(BLOCK)
      do t = 1, %d
        call sweep(a, b, %d)
        call copy(a, b, %d)
      enddo
      END
      SUBROUTINE sweep(a, b, n)
      REAL a(%d), b(%d)
      do i = 2, n-1
        b(i) = 0.5 * (a(i-1) + a(i+1))
      enddo
      END
      SUBROUTINE copy(a, b, n)
      REAL a(%d), b(%d)
      do i = 2, n-1
        a(i) = b(i)
      enddo
      END
`, n, n, steps, n, n, n, n, n, n)
	c := compileSrc(t, src, DefaultOptions())
	init := map[string][]float64{"a": jacobiInit(n)}
	par, seq := runBoth(t, c, init)
	assertSame(t, "a", par.Arrays["a"], seq.Arrays["a"])
	if par.Stats.Messages == 0 {
		t.Error("no communication")
	}
	// exchanges must happen once per time step, not once per program
	// (carried) and not once per sweep iteration (vectorized)
	perStep := par.Stats.Messages / int64(steps)
	if perStep != 6 {
		t.Errorf("messages per step = %d, want 6", perStep)
	}
}

// TestColumnShift2D: a shift along the second (distributed) dimension —
// column-block distribution with a(i,j-1) reads — exchanges boundary
// columns.
func TestColumnShift2D(t *testing.T) {
	src := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL a(24,24), b(24,24)
      DISTRIBUTE a(:,BLOCK)
      DISTRIBUTE b(:,BLOCK)
      do i = 1, 24
        do j = 2, 24
          b(i,j) = a(i,j-1) + 2.0 * a(i,j)
        enddo
      enddo
      END
`
	c := compileSrc(t, src, DefaultOptions())
	init := map[string][]float64{"a": initRamp(24 * 24)}
	par, seq := runBoth(t, c, init)
	assertSame(t, "b", par.Arrays["b"], seq.Arrays["b"])
	// one boundary column from each of 3 predecessors
	if par.Stats.Messages != 3 {
		t.Errorf("messages = %d, want 3", par.Stats.Messages)
	}
	if par.Stats.Words != 3*24 {
		t.Errorf("words = %d, want 72 (whole boundary columns)", par.Stats.Words)
	}
}

// TestTwoArraysDifferentDistSameLoop: reading a block array while
// writing a cyclic one forces broadcasts but stays correct.
func TestTwoArraysDifferentDistSameLoop(t *testing.T) {
	src := `
      PROGRAM P
      PARAMETER (n$proc = 3)
      REAL a(30), b(30)
      DISTRIBUTE a(BLOCK)
      DISTRIBUTE b(CYCLIC)
      do i = 1, 30
        a(i) = i
      enddo
      do i = 1, 30
        b(i) = a(i) * 2.0
      enddo
      END
`
	c := compileSrc(t, src, DefaultOptions())
	par, seq := runBoth(t, c, nil)
	assertSame(t, "b", par.Arrays["b"], seq.Arrays["b"])
}

// TestDistributedRefInCondition: a distributed element read inside an
// IF condition must be broadcast so every processor takes the same
// branch.
func TestDistributedRefInCondition(t *testing.T) {
	src := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL a(40), b(40)
      DISTRIBUTE a(BLOCK)
      DISTRIBUTE b(BLOCK)
      do i = 1, 40
        a(i) = i - 20.5
      enddo
      do i = 1, 40
        if (a(i) .GT. 0) then
          b(i) = 1.0
        else
          b(i) = -1.0
        endif
      enddo
      END
`
	c := compileSrc(t, src, DefaultOptions())
	par, seq := runBoth(t, c, nil)
	assertSame(t, "b", par.Arrays["b"], seq.Arrays["b"])
}

// TestDistributedRefInLoopBound: loop bounds computed from distributed
// data resolve before the loop.
func TestDistributedRefInLoopBound(t *testing.T) {
	src := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL n(4), b(40)
      DISTRIBUTE n(BLOCK)
      DISTRIBUTE b(BLOCK)
      n(2) = 17.0
      do i = 1, n(2)
        b(i) = i
      enddo
      END
`
	c := compileSrc(t, src, DefaultOptions())
	par, seq := runBoth(t, c, nil)
	assertSame(t, "b", par.Arrays["b"], seq.Arrays["b"])
}

// TestDistributedElementCallArg: an array element passed by value to a
// subroutine is broadcast first.
func TestDistributedElementCallArg(t *testing.T) {
	src := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL a(40), b(40)
      DISTRIBUTE a(BLOCK)
      DISTRIBUTE b(BLOCK)
      do i = 1, 40
        a(i) = i * 3
      enddo
      call setall(b, a(33))
      END
      SUBROUTINE setall(b, v)
      REAL b(40)
      do i = 1, 40
        b(i) = v
      enddo
      END
`
	c := compileSrc(t, src, DefaultOptions())
	par, seq := runBoth(t, c, nil)
	assertSame(t, "b", par.Arrays["b"], seq.Arrays["b"])
	if par.Arrays["b"][0] != 99 {
		t.Errorf("b(1) = %v, want 99", par.Arrays["b"][0])
	}
}
