package ast

import (
	"fmt"
	"strings"
)

// Print renders a whole program as Fortran D source text (including any
// generated send/recv/remap statements in the commented library-call
// style used in the paper's output listings).
func Print(p *Program) string {
	var b strings.Builder
	for i, u := range p.Units {
		if i > 0 {
			b.WriteString("\n")
		}
		PrintProcedure(&b, u)
	}
	return b.String()
}

// PrintProcedure renders one unit.
func PrintProcedure(b *strings.Builder, u *Procedure) {
	if u.IsMain {
		fmt.Fprintf(b, "      PROGRAM %s\n", u.Name)
	} else {
		fmt.Fprintf(b, "      SUBROUTINE %s(%s)\n", u.Name, strings.Join(u.Params, ","))
	}
	printDecls(b, u)
	printStmts(b, u.Body, 1)
	b.WriteString("      END\n")
}

func printDecls(b *strings.Builder, u *Procedure) {
	for _, s := range u.Symbols.Symbols() {
		switch s.Kind {
		case SymConstant:
			fmt.Fprintf(b, "      PARAMETER (%s = %d)\n", s.Name, s.ConstValue)
		case SymArray:
			fmt.Fprintf(b, "      %s %s(%s)\n", s.Type, s.Name, extentList(s.Dims))
		case SymDecomposition:
			fmt.Fprintf(b, "      DECOMPOSITION %s(%s)\n", s.Name, extentList(s.Dims))
		case SymScalar:
			if !s.IsFormal && s.Common == "" {
				continue // implicit scalars are not printed
			}
		}
		if s.Common != "" {
			fmt.Fprintf(b, "      COMMON /%s/ %s\n", s.Common, s.Name)
		}
	}
}

func extentList(dims []Extent) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		lo, isOne := EvalInt(d.Lo, nil)
		if isOne && lo == 1 {
			parts[i] = d.Hi.String()
		} else {
			parts[i] = d.Lo.String() + ":" + d.Hi.String()
		}
	}
	return strings.Join(parts, ",")
}

func printStmts(b *strings.Builder, body []Stmt, depth int) {
	ind := strings.Repeat("  ", depth) + "    "
	for _, s := range body {
		switch st := s.(type) {
		case *Assign:
			fmt.Fprintf(b, "%s%s = %s\n", ind, st.Lhs, st.Rhs)
		case *Do:
			step := ""
			if st.Step != nil {
				step = "," + st.Step.String()
			}
			fmt.Fprintf(b, "%sdo %s = %s,%s%s\n", ind, st.Var, st.Lo, st.Hi, step)
			printStmts(b, st.Body, depth+1)
			fmt.Fprintf(b, "%senddo\n", ind)
		case *If:
			fmt.Fprintf(b, "%sif (%s) then\n", ind, st.Cond)
			printStmts(b, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(b, "%selse\n", ind)
				printStmts(b, st.Else, depth+1)
			}
			fmt.Fprintf(b, "%sendif\n", ind)
		case *Call:
			args := make([]string, len(st.Args))
			for i, a := range st.Args {
				args[i] = a.String()
			}
			fmt.Fprintf(b, "%scall %s(%s)\n", ind, st.Name, strings.Join(args, ","))
		case *Return:
			fmt.Fprintf(b, "%sreturn\n", ind)
		case *Decomposition:
			// re-printed from the symbol table; skip
		case *Align:
			fmt.Fprintf(b, "%sALIGN %s with %s\n", ind, st.Array, st.Target)
		case *Distribute:
			specs := make([]string, len(st.Specs))
			for i, sp := range st.Specs {
				specs[i] = sp.String()
			}
			fmt.Fprintf(b, "%sDISTRIBUTE %s(%s)\n", ind, st.Target, strings.Join(specs, ","))
		case *Send:
			fmt.Fprintf(b, "%ssend %s(%s) to %s\n", ind, st.Array, secString(st.Sec), st.Dest)
		case *Recv:
			fmt.Fprintf(b, "%srecv %s(%s) from %s\n", ind, st.Array, secString(st.Sec), st.Src)
		case *Broadcast:
			fmt.Fprintf(b, "%sbroadcast %s(%s) from %s\n", ind, st.Array, secString(st.Sec), st.Root)
		case *AllGather:
			fmt.Fprintf(b, "%sallgather %s(%s)\n", ind, st.Array, secString(st.Sec))
		case *GlobalReduce:
			name := map[string]string{"+": "globalsum", "MAX": "globalmax", "MIN": "globalmin"}[st.Op]
			if name == "" {
				name = "globalsum"
			}
			fmt.Fprintf(b, "%s%s %s\n", ind, name, st.Var)
		case *PostRecv:
			fmt.Fprintf(b, "%spostrecv %s(%s) from %s tag %d\n", ind, st.Array, secString(st.Sec), st.Src, st.Tag)
		case *WaitRecv:
			fmt.Fprintf(b, "%swaitrecv %s tag %d\n", ind, st.Array, st.Tag)
		case *PostBcast:
			fmt.Fprintf(b, "%spostbcast %s(%s) from %s tag %d\n", ind, st.Array, secString(st.Sec), st.Root, st.Tag)
		case *WaitBcast:
			fmt.Fprintf(b, "%swaitbcast %s tag %d\n", ind, st.Array, st.Tag)
		case *Remap:
			kind := "remap"
			if st.InPlace {
				kind = "markas"
			}
			specs := make([]string, len(st.To))
			for i, sp := range st.To {
				specs[i] = sp.String()
			}
			fmt.Fprintf(b, "%s%s %s(%s)\n", ind, kind, st.Array, strings.Join(specs, ","))
		default:
			fmt.Fprintf(b, "%s! <unknown stmt %T>\n", ind, s)
		}
	}
}

func secString(sec []SecDim) string {
	parts := make([]string, len(sec))
	for i, d := range sec {
		if ExprEqual(d.Lo, d.Hi) {
			parts[i] = d.Lo.String()
		} else {
			parts[i] = d.Lo.String() + ":" + d.Hi.String()
		}
	}
	return strings.Join(parts, ",")
}
