package ast

// WalkStmts applies fn to every statement in body, recursively, in
// source order. If fn returns false the children of that statement are
// not visited.
func WalkStmts(body []Stmt, fn func(Stmt) bool) {
	for _, s := range body {
		if !fn(s) {
			continue
		}
		switch st := s.(type) {
		case *Do:
			WalkStmts(st.Body, fn)
		case *If:
			WalkStmts(st.Then, fn)
			WalkStmts(st.Else, fn)
		}
	}
}

// WalkExprs applies fn to every expression appearing in body, including
// subexpressions (pre-order).
func WalkExprs(body []Stmt, fn func(Expr)) {
	WalkStmts(body, func(s Stmt) bool {
		for _, e := range StmtExprs(s) {
			walkExpr(e, fn)
		}
		return true
	})
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *ArrayRef:
		for _, sub := range x.Subs {
			walkExpr(sub, fn)
		}
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *Binary:
		walkExpr(x.X, fn)
		walkExpr(x.Y, fn)
	case *Unary:
		walkExpr(x.X, fn)
	}
}

// StmtExprs returns the top-level expressions contained directly in s
// (not those of nested statements).
func StmtExprs(s Stmt) []Expr {
	switch st := s.(type) {
	case *Assign:
		return []Expr{st.Lhs, st.Rhs}
	case *Do:
		out := []Expr{st.Lo, st.Hi}
		if st.Step != nil {
			out = append(out, st.Step)
		}
		return out
	case *If:
		return []Expr{st.Cond}
	case *Call:
		return st.Args
	case *Send:
		out := []Expr{st.Dest}
		for _, d := range st.Sec {
			out = append(out, d.Lo, d.Hi)
		}
		return out
	case *Recv:
		out := []Expr{st.Src}
		for _, d := range st.Sec {
			out = append(out, d.Lo, d.Hi)
		}
		return out
	case *Broadcast:
		out := []Expr{st.Root}
		for _, d := range st.Sec {
			out = append(out, d.Lo, d.Hi)
		}
		return out
	case *PostRecv:
		out := []Expr{st.Src}
		for _, d := range st.Sec {
			out = append(out, d.Lo, d.Hi)
		}
		return out
	case *PostBcast:
		out := []Expr{st.Root}
		for _, d := range st.Sec {
			out = append(out, d.Lo, d.Hi)
		}
		return out
	}
	return nil
}

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Ident:
		return &Ident{Name: x.Name}
	case *IntLit:
		return &IntLit{Value: x.Value}
	case *RealLit:
		return &RealLit{Value: x.Value}
	case *ArrayRef:
		subs := make([]Expr, len(x.Subs))
		for i, s := range x.Subs {
			subs[i] = CloneExpr(s)
		}
		return &ArrayRef{Name: x.Name, Subs: subs}
	case *FuncCall:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a)
		}
		return &FuncCall{Name: x.Name, Args: args}
	case *Binary:
		return &Binary{Op: x.Op, X: CloneExpr(x.X), Y: CloneExpr(x.Y)}
	case *Unary:
		return &Unary{Op: x.Op, X: CloneExpr(x.X)}
	}
	return e
}

// CloneStmts returns a deep copy of body.
func CloneStmts(body []Stmt) []Stmt {
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneStmt returns a deep copy of s.
func CloneStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *Assign:
		return &Assign{stmtBase: st.stmtBase, Lhs: CloneExpr(st.Lhs), Rhs: CloneExpr(st.Rhs)}
	case *Do:
		return &Do{
			stmtBase: st.stmtBase, Var: st.Var,
			Lo: CloneExpr(st.Lo), Hi: CloneExpr(st.Hi), Step: CloneExpr(st.Step),
			Body: CloneStmts(st.Body),
		}
	case *If:
		return &If{stmtBase: st.stmtBase, Cond: CloneExpr(st.Cond), Then: CloneStmts(st.Then), Else: CloneStmts(st.Else)}
	case *Call:
		args := make([]Expr, len(st.Args))
		for i, a := range st.Args {
			args[i] = CloneExpr(a)
		}
		return &Call{stmtBase: st.stmtBase, Name: st.Name, Args: args, Site: st.Site}
	case *Return:
		return &Return{stmtBase: st.stmtBase}
	case *Decomposition:
		dims := append([]int(nil), st.Dims...)
		return &Decomposition{stmtBase: st.stmtBase, Name: st.Name, Dims: dims}
	case *Align:
		terms := append([]AlignTerm(nil), st.Terms...)
		return &Align{stmtBase: st.stmtBase, Array: st.Array, Target: st.Target, Terms: terms}
	case *Distribute:
		specs := append([]DistSpec(nil), st.Specs...)
		return &Distribute{stmtBase: st.stmtBase, Target: st.Target, Specs: specs}
	case *Send:
		return &Send{stmtBase: st.stmtBase, Array: st.Array, Sec: cloneSec(st.Sec), Dest: CloneExpr(st.Dest)}
	case *Recv:
		return &Recv{stmtBase: st.stmtBase, Array: st.Array, Sec: cloneSec(st.Sec), Src: CloneExpr(st.Src)}
	case *Broadcast:
		return &Broadcast{stmtBase: st.stmtBase, Array: st.Array, Sec: cloneSec(st.Sec), Root: CloneExpr(st.Root)}
	case *AllGather:
		return &AllGather{stmtBase: st.stmtBase, Array: st.Array, Sec: cloneSec(st.Sec)}
	case *GlobalReduce:
		return &GlobalReduce{stmtBase: st.stmtBase, Var: st.Var, Op: st.Op}
	case *PostRecv:
		return &PostRecv{stmtBase: st.stmtBase, Array: st.Array, Sec: cloneSec(st.Sec), Src: CloneExpr(st.Src), Tag: st.Tag}
	case *WaitRecv:
		return &WaitRecv{stmtBase: st.stmtBase, Array: st.Array, Tag: st.Tag}
	case *PostBcast:
		return &PostBcast{stmtBase: st.stmtBase, Array: st.Array, Sec: cloneSec(st.Sec), Root: CloneExpr(st.Root), Tag: st.Tag}
	case *WaitBcast:
		return &WaitBcast{stmtBase: st.stmtBase, Array: st.Array, Tag: st.Tag}
	case *Remap:
		return &Remap{
			stmtBase: st.stmtBase, Array: st.Array,
			From:    append([]DistSpec(nil), st.From...),
			To:      append([]DistSpec(nil), st.To...),
			InPlace: st.InPlace,
		}
	}
	return s
}

func cloneSec(sec []SecDim) []SecDim {
	out := make([]SecDim, len(sec))
	for i, d := range sec {
		out[i] = SecDim{Lo: CloneExpr(d.Lo), Hi: CloneExpr(d.Hi)}
	}
	return out
}

// CloneProcedure deep-copies a procedure under a new name.
func CloneProcedure(p *Procedure, newName string) *Procedure {
	syms := NewSymbolTable()
	for _, s := range p.Symbols.Symbols() {
		cp := *s
		cp.Dims = make([]Extent, len(s.Dims))
		for i, d := range s.Dims {
			cp.Dims[i] = Extent{Lo: CloneExpr(d.Lo), Hi: CloneExpr(d.Hi)}
		}
		syms.Define(&cp)
	}
	return &Procedure{
		Name:    newName,
		IsMain:  p.IsMain,
		Params:  append([]string(nil), p.Params...),
		Symbols: syms,
		Body:    CloneStmts(p.Body),
	}
}

// SubstituteExpr replaces every occurrence of identifier name in e with
// repl, returning the rewritten expression. Array names are not touched.
func SubstituteExpr(e Expr, name string, repl Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Ident:
		if x.Name == name {
			return CloneExpr(repl)
		}
		return x
	case *ArrayRef:
		for i, s := range x.Subs {
			x.Subs[i] = SubstituteExpr(s, name, repl)
		}
		return x
	case *FuncCall:
		for i, a := range x.Args {
			x.Args[i] = SubstituteExpr(a, name, repl)
		}
		return x
	case *Binary:
		x.X = SubstituteExpr(x.X, name, repl)
		x.Y = SubstituteExpr(x.Y, name, repl)
		return x
	case *Unary:
		x.X = SubstituteExpr(x.X, name, repl)
		return x
	}
	return e
}
