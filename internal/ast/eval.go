package ast

import "fmt"

// Env supplies integer values for identifiers during constant evaluation.
type Env interface {
	Value(name string) (int, bool)
}

// MapEnv is an Env backed by a map.
type MapEnv map[string]int

// Value implements Env.
func (m MapEnv) Value(name string) (int, bool) {
	v, ok := m[name]
	return v, ok
}

// EvalInt evaluates e as an integer expression under env. It returns
// false when e involves unknown identifiers, array references, or
// non-integer results.
func EvalInt(e Expr, env Env) (int, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.Value, true
	case *Ident:
		if env == nil {
			return 0, false
		}
		return env.Value(x.Name)
	case *Unary:
		v, ok := EvalInt(x.X, env)
		if !ok {
			return 0, false
		}
		if x.Op == "-" {
			return -v, true
		}
		return 0, false
	case *Binary:
		a, ok := EvalInt(x.X, env)
		if !ok {
			return 0, false
		}
		b, ok := EvalInt(x.Y, env)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case OpAdd:
			return a + b, true
		case OpSub:
			return a - b, true
		case OpMul:
			return a * b, true
		case OpDiv:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case OpPow:
			if b < 0 {
				return 0, false
			}
			r := 1
			for i := 0; i < b; i++ {
				r *= a
			}
			return r, true
		case OpEQ:
			return b2i(a == b), true
		case OpNE:
			return b2i(a != b), true
		case OpLT:
			return b2i(a < b), true
		case OpLE:
			return b2i(a <= b), true
		case OpGT:
			return b2i(a > b), true
		case OpGE:
			return b2i(a >= b), true
		case OpAnd:
			return b2i(a != 0 && b != 0), true
		case OpOr:
			return b2i(a != 0 || b != 0), true
		}
		return 0, false
	case *FuncCall:
		if len(x.Args) == 2 {
			a, okA := EvalInt(x.Args[0], env)
			b, okB := EvalInt(x.Args[1], env)
			if okA && okB {
				switch x.Name {
				case "MIN":
					if a < b {
						return a, true
					}
					return b, true
				case "MAX":
					if a > b {
						return a, true
					}
					return b, true
				case "MOD":
					if b == 0 {
						return 0, false
					}
					return a % b, true
				}
			}
		}
		return 0, false
	}
	return 0, false
}

// Expression constructors used heavily by code generation. Each folds
// constants where possible so generated programs stay readable.

// Int returns an integer literal.
func Int(v int) Expr { return &IntLit{Value: v} }

// Id returns an identifier reference.
func Id(name string) Expr { return &Ident{Name: name} }

// Add returns x + y with constant folding and identity elimination.
func Add(x, y Expr) Expr {
	a, okA := EvalInt(x, nil)
	b, okB := EvalInt(y, nil)
	switch {
	case okA && okB:
		return Int(a + b)
	case okA && a == 0:
		return y
	case okB && b == 0:
		return x
	}
	return &Binary{Op: OpAdd, X: x, Y: y}
}

// Sub returns x - y with constant folding.
func Sub(x, y Expr) Expr {
	a, okA := EvalInt(x, nil)
	b, okB := EvalInt(y, nil)
	switch {
	case okA && okB:
		return Int(a - b)
	case okB && b == 0:
		return x
	}
	return &Binary{Op: OpSub, X: x, Y: y}
}

// Mul returns x * y with constant folding.
func Mul(x, y Expr) Expr {
	a, okA := EvalInt(x, nil)
	b, okB := EvalInt(y, nil)
	switch {
	case okA && okB:
		return Int(a * b)
	case okA && a == 1:
		return y
	case okB && b == 1:
		return x
	case (okA && a == 0) || (okB && b == 0):
		return Int(0)
	}
	return &Binary{Op: OpMul, X: x, Y: y}
}

// Min returns MIN(x, y), folded when both are constant.
func Min(x, y Expr) Expr {
	a, okA := EvalInt(x, nil)
	b, okB := EvalInt(y, nil)
	if okA && okB {
		if a < b {
			return Int(a)
		}
		return Int(b)
	}
	return &FuncCall{Name: "MIN", Args: []Expr{x, y}}
}

// Max returns MAX(x, y), folded when both are constant.
func Max(x, y Expr) Expr {
	a, okA := EvalInt(x, nil)
	b, okB := EvalInt(y, nil)
	if okA && okB {
		if a > b {
			return Int(a)
		}
		return Int(b)
	}
	return &FuncCall{Name: "MAX", Args: []Expr{x, y}}
}

// Cmp builds a comparison expression.
func Cmp(op BinOp, x, y Expr) Expr { return &Binary{Op: op, X: x, Y: y} }

// ExprEqual reports structural equality of two expressions.
func ExprEqual(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// MustInt evaluates e as a constant and panics if it is not one. It is
// used where prior analysis guarantees constancy.
func MustInt(e Expr, env Env) int {
	v, ok := EvalInt(e, env)
	if !ok {
		panic(fmt.Sprintf("ast: expression %s is not a constant", e))
	}
	return v
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
