package ast

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEvalIntBasics(t *testing.T) {
	cases := []struct {
		e    Expr
		env  Env
		want int
		ok   bool
	}{
		{Int(7), nil, 7, true},
		{Add(Int(2), Int(3)), nil, 5, true},
		{Sub(Int(2), Int(3)), nil, -1, true},
		{Mul(Int(4), Int(3)), nil, 12, true},
		{&Binary{Op: OpDiv, X: Int(7), Y: Int(2)}, nil, 3, true},
		{&Binary{Op: OpPow, X: Int(2), Y: Int(10)}, nil, 1024, true},
		{&Unary{Op: "-", X: Int(5)}, nil, -5, true},
		{Id("n"), MapEnv{"n": 42}, 42, true},
		{Id("n"), nil, 0, false},
		{Min(Int(3), Int(9)), nil, 3, true},
		{Max(Int(3), Int(9)), nil, 9, true},
		{&FuncCall{Name: "MOD", Args: []Expr{Int(17), Int(5)}}, nil, 2, true},
	}
	for _, c := range cases {
		got, ok := EvalInt(c.e, c.env)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("EvalInt(%s) = %d,%v want %d,%v", c.e, got, ok, c.want, c.ok)
		}
	}
}

// TestFoldingIdentities: the constructors fold constants and elide
// identities so generated code stays readable.
func TestFoldingIdentities(t *testing.T) {
	if got := Add(Id("x"), Int(0)); got.String() != "x" {
		t.Errorf("x+0 = %s", got)
	}
	if got := Mul(Int(1), Id("x")); got.String() != "x" {
		t.Errorf("1*x = %s", got)
	}
	if got := Mul(Int(0), Id("x")); got.String() != "0" {
		t.Errorf("0*x = %s", got)
	}
	if got := Sub(Id("x"), Int(0)); got.String() != "x" {
		t.Errorf("x-0 = %s", got)
	}
	if got := Add(Int(2), Int(3)); got.String() != "5" {
		t.Errorf("2+3 = %s", got)
	}
}

// Property: folded arithmetic matches direct arithmetic.
func TestFoldProperty(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := int(a), int(b)
		s, ok := EvalInt(Add(Int(x), Int(y)), nil)
		if !ok || s != x+y {
			return false
		}
		m, ok := EvalInt(Mul(Int(x), Int(y)), nil)
		return ok && m == x*y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCloneExprIndependence(t *testing.T) {
	orig := &Binary{Op: OpAdd, X: Id("i"), Y: Int(5)}
	cp := CloneExpr(orig).(*Binary)
	cp.Y = Int(9)
	if orig.Y.String() != "5" {
		t.Error("clone shares structure with original")
	}
}

func TestSubstituteExpr(t *testing.T) {
	e := &Binary{Op: OpAdd, X: Id("i"), Y: Int(5)}
	got := SubstituteExpr(CloneExpr(e), "i", Int(10))
	v, ok := EvalInt(got, nil)
	if !ok || v != 15 {
		t.Errorf("substitute = %s", got)
	}
	// array names are not substituted
	ar := &ArrayRef{Name: "i", Subs: []Expr{Id("i")}}
	got2 := SubstituteExpr(ar, "i", Int(3)).(*ArrayRef)
	if got2.Name != "i" {
		t.Error("array name wrongly substituted")
	}
	if got2.Subs[0].String() != "3" {
		t.Error("subscript not substituted")
	}
}

func TestCloneStmtDeep(t *testing.T) {
	do := &Do{
		Var: "i", Lo: Int(1), Hi: Int(10),
		Body: []Stmt{
			&Assign{Lhs: &ArrayRef{Name: "X", Subs: []Expr{Id("i")}}, Rhs: Int(0)},
		},
	}
	cp := CloneStmt(do).(*Do)
	cp.Body[0].(*Assign).Rhs = Int(9)
	if do.Body[0].(*Assign).Rhs.String() != "0" {
		t.Error("CloneStmt shares body")
	}
}

func TestCloneProcedure(t *testing.T) {
	syms := NewSymbolTable()
	syms.Define(&Symbol{Name: "X", Kind: SymArray, Dims: []Extent{{Lo: Int(1), Hi: Int(100)}}, IsFormal: true, FormalIndex: 0})
	p := &Procedure{
		Name: "F1", Params: []string{"X"}, Symbols: syms,
		Body: []Stmt{&Assign{Lhs: &ArrayRef{Name: "X", Subs: []Expr{Int(1)}}, Rhs: Int(0)}},
	}
	c := CloneProcedure(p, "F1$row")
	if c.Name != "F1$row" || len(c.Body) != 1 {
		t.Fatalf("clone = %+v", c)
	}
	c.Symbols.Lookup("X").Dims[0] = Extent{Lo: Int(1), Hi: Int(30)}
	if p.Symbols.Lookup("X").Dims[0].Hi.String() != "100" {
		t.Error("clone shares symbol dims")
	}
}

func TestWalkStmtsPruning(t *testing.T) {
	body := []Stmt{
		&Do{Var: "i", Lo: Int(1), Hi: Int(2), Body: []Stmt{
			&Assign{Lhs: Id("x"), Rhs: Int(1)},
		}},
		&Assign{Lhs: Id("y"), Rhs: Int(2)},
	}
	var all, pruned int
	WalkStmts(body, func(s Stmt) bool { all++; return true })
	WalkStmts(body, func(s Stmt) bool { pruned++; return false })
	if all != 3 {
		t.Errorf("all = %d", all)
	}
	if pruned != 2 {
		t.Errorf("pruned = %d (children must be skipped)", pruned)
	}
}

func TestSymbolTableOrder(t *testing.T) {
	tb := NewSymbolTable()
	tb.Define(&Symbol{Name: "b"})
	tb.Define(&Symbol{Name: "a"})
	tb.Define(&Symbol{Name: "b"}) // redefinition keeps position
	syms := tb.Symbols()
	if len(syms) != 2 || syms[0].Name != "b" || syms[1].Name != "a" {
		t.Errorf("order = %v", tb.Order)
	}
}

func TestExprStrings(t *testing.T) {
	e := &Binary{Op: OpLE, X: Id("i"), Y: &Binary{Op: OpMul, X: Id("b"), Y: Int(25)}}
	if got := e.String(); got != "(i .LE. (b * 25))" {
		t.Errorf("String = %q", got)
	}
	u := &Unary{Op: ".NOT.", X: Id("p")}
	if u.String() != ".NOT.p" {
		t.Errorf("unary = %q", u)
	}
}

func TestPrintProgramStructure(t *testing.T) {
	syms := NewSymbolTable()
	syms.Define(&Symbol{Name: "X", Kind: SymArray, Type: TypeReal, Dims: []Extent{{Lo: Int(1), Hi: Int(8)}}})
	main := &Procedure{
		Name: "P", IsMain: true, Symbols: syms,
		Body: []Stmt{
			&Send{Array: "X", Sec: []SecDim{{Lo: Int(1), Hi: Int(4)}}, Dest: Int(1)},
			&Remap{Array: "X", To: []DistSpec{{Kind: ast_DistCyclic}}},
		},
	}
	text := Print(NewProgram([]*Procedure{main}))
	for _, want := range []string{"PROGRAM P", "REAL X(8)", "send X(1:4) to 1", "remap X(CYCLIC)", "END"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

// alias to keep the composite literal readable above
const ast_DistCyclic = DistCyclic
