// Package ast defines the abstract syntax tree for the Fortran 77 /
// Fortran D subset accepted by the compiler, plus the extended output
// statements (send, recv, remap) that appear in generated SPMD node
// programs. The same tree type is used on both sides of compilation,
// mirroring the source-to-source structure of the original Fortran D
// compiler built on ParaScope.
package ast

import "fmt"

// DataType is the declared type of a variable.
type DataType int

const (
	TypeReal DataType = iota
	TypeInteger
	TypeDouble
	TypeLogical
)

func (t DataType) String() string {
	switch t {
	case TypeReal:
		return "REAL"
	case TypeInteger:
		return "INTEGER"
	case TypeDouble:
		return "DOUBLE PRECISION"
	case TypeLogical:
		return "LOGICAL"
	}
	return "UNKNOWN"
}

// DistKind is the distribution format of one decomposition dimension.
type DistKind int

const (
	DistNone DistKind = iota // ":" — dimension is not distributed
	DistBlock
	DistCyclic
	DistBlockCyclic
)

func (k DistKind) String() string {
	switch k {
	case DistNone:
		return ":"
	case DistBlock:
		return "BLOCK"
	case DistCyclic:
		return "CYCLIC"
	case DistBlockCyclic:
		return "BLOCK_CYCLIC"
	}
	return "?"
}

// DistSpec describes the distribution of a single dimension.
type DistSpec struct {
	Kind      DistKind
	BlockSize int // for DistBlockCyclic
}

func (d DistSpec) String() string {
	if d.Kind == DistBlockCyclic {
		return fmt.Sprintf("CYCLIC(%d)", d.BlockSize)
	}
	return d.Kind.String()
}

// Position locates a construct in the source text.
type Position struct {
	Line int
}

func (p Position) String() string { return fmt.Sprintf("line %d", p.Line) }

// ---------------------------------------------------------------------------
// Expressions

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	exprNode()
	String() string
}

// Ident is a reference to a scalar variable or loop index.
type Ident struct {
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Value int
}

// RealLit is a floating-point literal.
type RealLit struct {
	Value float64
}

// ArrayRef is a subscripted reference to a declared array.
type ArrayRef struct {
	Name string
	Subs []Expr
}

// FuncCall is a reference to an intrinsic or external function.
type FuncCall struct {
	Name string
	Args []Expr
}

// BinOp enumerates binary operators.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpPow
	OpEQ
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpPow: "**",
	OpEQ: ".EQ.", OpNE: ".NE.", OpLT: ".LT.", OpLE: ".LE.",
	OpGT: ".GT.", OpGE: ".GE.", OpAnd: ".AND.", OpOr: ".OR.",
}

func (op BinOp) String() string { return binOpNames[op] }

// Binary is a binary expression X op Y.
type Binary struct {
	Op   BinOp
	X, Y Expr
}

// Unary is a unary expression: negation or .NOT.
type Unary struct {
	Op string // "-" or ".NOT."
	X  Expr
}

func (*Ident) exprNode()    {}
func (*IntLit) exprNode()   {}
func (*RealLit) exprNode()  {}
func (*ArrayRef) exprNode() {}
func (*FuncCall) exprNode() {}
func (*Binary) exprNode()   {}
func (*Unary) exprNode()    {}

func (e *Ident) String() string   { return e.Name }
func (e *IntLit) String() string  { return fmt.Sprintf("%d", e.Value) }
func (e *RealLit) String() string { return fmt.Sprintf("%g", e.Value) }

func (e *ArrayRef) String() string {
	s := e.Name + "("
	for i, sub := range e.Subs {
		if i > 0 {
			s += ","
		}
		s += sub.String()
	}
	return s + ")"
}

func (e *FuncCall) String() string {
	s := e.Name + "("
	for i, a := range e.Args {
		if i > 0 {
			s += ","
		}
		s += a.String()
	}
	return s + ")"
}

func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.X.String(), e.Op.String(), e.Y.String())
}

func (e *Unary) String() string { return e.Op + e.X.String() }

// ---------------------------------------------------------------------------
// Statements

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	Pos() Position
}

type stmtBase struct {
	Position Position
}

func (s stmtBase) Pos() Position { return s.Position }

// Assign is an assignment statement. Lhs is *Ident or *ArrayRef.
type Assign struct {
	stmtBase
	Lhs Expr
	Rhs Expr
}

// Do is a DO loop with unit or explicit step.
type Do struct {
	stmtBase
	Var  string
	Lo   Expr
	Hi   Expr
	Step Expr // nil means 1
	Body []Stmt
}

// If is a block IF statement.
type If struct {
	stmtBase
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// Call invokes a subroutine. Site is a unique call-site identifier
// assigned by the parser, used by interprocedural analysis.
type Call struct {
	stmtBase
	Name string
	Args []Expr
	Site int
}

// Return exits the enclosing procedure.
type Return struct {
	stmtBase
}

// Decomposition declares an abstract index domain (Fortran D).
type Decomposition struct {
	stmtBase
	Name string
	Dims []int
}

// AlignTerm describes how one array dimension maps onto a decomposition
// dimension: array dimension ArrayDim (0-based) maps to the decomposition
// dimension in whose slot this term appears, displaced by Offset.
// ArrayDim < 0 means the decomposition dimension is unmapped (collapsed).
type AlignTerm struct {
	ArrayDim int
	Offset   int
}

// Align maps an array onto a decomposition (Fortran D). Terms has one
// entry per decomposition dimension.
type Align struct {
	stmtBase
	Array  string
	Target string
	Terms  []AlignTerm
}

// Distribute assigns distribution formats to a decomposition's dimensions
// (Fortran D). Target may also name an array directly, which distributes
// its implicit default decomposition.
type Distribute struct {
	stmtBase
	Target string
	Specs  []DistSpec
}

// ---------------------------------------------------------------------------
// Output-language statements (appear only in generated SPMD programs)

// SecDim is one dimension of an array section in the output language,
// with expression bounds so that bounds may involve my$p etc.
type SecDim struct {
	Lo, Hi Expr
}

// Send transmits the section of Array to processor Dest.
type Send struct {
	stmtBase
	Array string
	Sec   []SecDim
	Dest  Expr
}

// Recv receives the section of Array from processor Src.
type Recv struct {
	stmtBase
	Array string
	Sec   []SecDim
	Src   Expr
}

// Broadcast sends the section of Array from processor Root to all others.
type Broadcast struct {
	stmtBase
	Array string
	Sec   []SecDim
	Root  Expr
}

// AllGather makes the section of Array, distributed across processors,
// fully replicated on every processor (each owner contributes its part).
type AllGather struct {
	stmtBase
	Array string
	Sec   []SecDim
}

// GlobalReduce combines every processor's private copy of a scalar with
// the given operation and leaves the result on all processors (the
// combining step of a recognized reduction).
type GlobalReduce struct {
	stmtBase
	Var string
	Op  string // "+", "MAX", "MIN"
}

// PostRecv posts a nonblocking receive of the section of Array from
// processor Src (the post half of a blocking Recv split by the overlap
// schedule pass). Tag pairs it with the WaitRecv that completes it;
// tags are unique program-wide so posts and waits match across
// procedure boundaries.
type PostRecv struct {
	stmtBase
	Array string
	Sec   []SecDim
	Src   Expr
	Tag   int
}

// WaitRecv completes the PostRecv with the same Tag, blocking until
// the message arrives and storing it into Array's section. A WaitRecv
// whose post was skipped (its guard was false) is a no-op.
type WaitRecv struct {
	stmtBase
	Array string
	Tag   int
}

// PostBcast posts the send half of a split-phase broadcast of the
// section of Array from processor Root: the root's tree sends happen
// here, every other processor only records what to wait for.
type PostBcast struct {
	stmtBase
	Array string
	Sec   []SecDim
	Root  Expr
	Tag   int
}

// WaitBcast completes the PostBcast with the same Tag, blocking until
// the broadcast payload arrives and storing it into Array's section.
type WaitBcast struct {
	stmtBase
	Array string
	Tag   int
}

// Remap invokes the data-remapping library routine, physically moving
// Array between two distributions. InPlace marks the array-kill
// optimization (§6.3): only the descriptor is updated, no data moves.
type Remap struct {
	stmtBase
	Array   string
	From    []DistSpec
	To      []DistSpec
	InPlace bool
}

func (*Assign) stmtNode()        {}
func (*Do) stmtNode()            {}
func (*If) stmtNode()            {}
func (*Call) stmtNode()          {}
func (*Return) stmtNode()        {}
func (*Decomposition) stmtNode() {}
func (*Align) stmtNode()         {}
func (*Distribute) stmtNode()    {}
func (*Send) stmtNode()          {}
func (*Recv) stmtNode()          {}
func (*Broadcast) stmtNode()     {}
func (*AllGather) stmtNode()     {}
func (*GlobalReduce) stmtNode()  {}
func (*PostRecv) stmtNode()      {}
func (*WaitRecv) stmtNode()      {}
func (*PostBcast) stmtNode()     {}
func (*WaitBcast) stmtNode()     {}
func (*Remap) stmtNode()         {}

// ---------------------------------------------------------------------------
// Declarations, procedures, programs

// Extent is one declared dimension of an array, lo:hi. Lo defaults to 1.
type Extent struct {
	Lo, Hi Expr
}

// SymKind classifies a symbol.
type SymKind int

const (
	SymScalar SymKind = iota
	SymArray
	SymDecomposition
	SymConstant // PARAMETER constant
)

// Symbol is one entry in a procedure's symbol table.
type Symbol struct {
	Name        string
	Kind        SymKind
	Type        DataType
	Dims        []Extent // arrays and decompositions
	IsFormal    bool
	FormalIndex int    // position in the parameter list, -1 otherwise
	Common      string // common block name, "" if local
	ConstValue  int    // value for SymConstant
}

// NumDims reports the declared rank.
func (s *Symbol) NumDims() int { return len(s.Dims) }

// SymbolTable maps names to symbols, preserving declaration order.
type SymbolTable struct {
	Order []string
	table map[string]*Symbol
}

// NewSymbolTable returns an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{table: make(map[string]*Symbol)}
}

// Define inserts sym, replacing any prior definition of the same name.
func (t *SymbolTable) Define(sym *Symbol) {
	if _, ok := t.table[sym.Name]; !ok {
		t.Order = append(t.Order, sym.Name)
	}
	t.table[sym.Name] = sym
}

// Lookup returns the symbol for name, or nil.
func (t *SymbolTable) Lookup(name string) *Symbol { return t.table[name] }

// Symbols returns all symbols in declaration order.
func (t *SymbolTable) Symbols() []*Symbol {
	out := make([]*Symbol, 0, len(t.Order))
	for _, n := range t.Order {
		out = append(out, t.table[n])
	}
	return out
}

// Procedure is a PROGRAM or SUBROUTINE unit.
type Procedure struct {
	Name    string
	IsMain  bool
	Params  []string
	Symbols *SymbolTable
	Body    []Stmt
}

// Formal returns the symbol of the i-th formal parameter.
func (p *Procedure) Formal(i int) *Symbol {
	if i < 0 || i >= len(p.Params) {
		return nil
	}
	return p.Symbols.Lookup(p.Params[i])
}

// Program is a whole Fortran D program: a main program plus subroutines.
type Program struct {
	Units []*Procedure
	procs map[string]*Procedure
}

// NewProgram assembles a program from its units and indexes them by name.
func NewProgram(units []*Procedure) *Program {
	p := &Program{Units: units, procs: make(map[string]*Procedure)}
	for _, u := range units {
		p.procs[u.Name] = u
	}
	return p
}

// Proc returns the unit named name, or nil.
func (p *Program) Proc(name string) *Procedure { return p.procs[name] }

// Main returns the main program unit, or nil.
func (p *Program) Main() *Procedure {
	for _, u := range p.Units {
		if u.IsMain {
			return u
		}
	}
	return nil
}

// AddProc registers a new unit (used by procedure cloning).
func (p *Program) AddProc(u *Procedure) {
	p.Units = append(p.Units, u)
	p.procs[u.Name] = u
}

// ReplaceProc swaps the unit of the same name for u, keeping the name
// index consistent (used by the summary cache to splice cached units
// into a fresh compilation). It is a no-op if no unit has u's name.
func (p *Program) ReplaceProc(u *Procedure) {
	for i, old := range p.Units {
		if old.Name == u.Name {
			p.Units[i] = u
			p.procs[u.Name] = u
			return
		}
	}
}
