package summarycache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHashPartsAreLengthPrefixed(t *testing.T) {
	// concatenation-ambiguous inputs must hash differently
	if Hash("ab", "c") == Hash("a", "bc") {
		t.Error(`Hash("ab","c") == Hash("a","bc")`)
	}
	if Hash("a", "") == Hash("", "a") {
		t.Error(`Hash("a","") == Hash("","a")`)
	}
	if Hash("x") == Hash("x", "") {
		t.Error(`Hash("x") == Hash("x","")`)
	}
}

func TestHashDeterministic(t *testing.T) {
	h1 := NewHasher()
	h1.Add("src", "body", "p", "4")
	h2 := NewHasher()
	h2.Add("src", "body")
	h2.Add("p", "4")
	if h1.Sum() != h2.Sum() {
		t.Error("incremental Add changes the hash")
	}
	if h1.Sum() != h1.Sum() {
		t.Error("Sum is not repeatable")
	}
	if Hash("src", "body", "p", "4") != h1.Sum() {
		t.Error("Hash shorthand disagrees with Hasher")
	}
}

func TestCacheBasics(t *testing.T) {
	c := New()
	if !c.Enabled() {
		t.Fatal("New cache not enabled")
	}
	if got := c.Get("k"); got != nil {
		t.Fatalf("Get on empty cache = %v", got)
	}
	c.Put(&Entry{Key: "k", Proc: "foo"})
	e := c.Get("k")
	if e == nil || e.Proc != "foo" {
		t.Fatalf("Get after Put = %+v", e)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("Stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
	c.Reset()
	if c.Len() != 0 || c.Stats().Hits != 0 || c.Stats().Misses != 0 {
		t.Fatalf("Reset left %+v", c.Stats())
	}
}

func TestCacheNilSafety(t *testing.T) {
	var c *Cache
	if c.Enabled() {
		t.Error("nil cache reports enabled")
	}
	if c.Get("k") != nil {
		t.Error("nil cache Get != nil")
	}
	c.Put(&Entry{Key: "k"}) // must not panic
	if c.Len() != 0 {
		t.Error("nil cache Len != 0")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("nil cache Stats = %+v", st)
	}
	if st := c.Stats(); st.HitRate() != 0 {
		t.Errorf("nil cache HitRate = %v", st.HitRate())
	}
	c.Reset() // must not panic
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%17)
				if e := c.Get(key); e == nil {
					c.Put(&Entry{Key: key, Proc: fmt.Sprintf("p%d", w)})
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != 17 {
		t.Fatalf("Len = %d, want 17", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}
