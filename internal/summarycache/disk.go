// Disk tier: content-hash keyed entry files under a cache directory,
// so summaries stay warm across process restarts and are shared by
// parallel compile servers on the same machine. The in-memory map
// remains the first tier; a memory miss probes the disk, and every
// fresh store is written through. Because the key already covers the
// procedure's source, positions, options and consumed interprocedural
// inputs, a disk file is immutable once written — concurrent writers
// of the same key produce identical bytes, and the write is an atomic
// rename, so readers never observe a torn entry.
//
// The on-disk format is JSON. Every summary structure (delayed
// partition constraints, delayed communication, decomposition
// summaries, distributions, overlap actuals, remarks) is plain
// exported data and round-trips directly; the generated unit — an AST
// — is stored as printed SPMD source and reparsed on load. Entries are
// stored only when that print→parse round trip reproduces the printed
// bytes exactly (verified at store time), so a disk hit's listing is
// byte-identical to the cold compile's.
package summarycache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fortd/internal/ast"
	"fortd/internal/codegen"
	"fortd/internal/comm"
	"fortd/internal/decomp"
	"fortd/internal/explain"
	"fortd/internal/livedecomp"
	"fortd/internal/parser"
	"fortd/internal/partition"
)

// diskFormat versions the entry file schema; files with any other
// version are ignored (treated as misses) rather than misread.
const diskFormat = 1

// diskEntry is Entry with the AST unit flattened to printed source.
type diskEntry struct {
	Format      int
	Key         string
	Proc        string
	UnitSrc     string
	Result      codegen.Result
	PartDelayed map[string]*partition.Constraint
	CommDelayed []*comm.Delayed
	DecompSum   *livedecomp.Summary
	Interface   string
	InputsUsed  string
	MainDists   map[string]*decomp.Dist
	Overlaps    []OverlapActual
	Remarks     []explain.Remark
	Runtime     bool
}

// disk is one cache directory.
type disk struct {
	dir string
}

func (d *disk) path(key string) string {
	return filepath.Join(d.dir, key+".json")
}

// printUnit renders a procedure the way disk entries store it.
func printUnit(u *ast.Procedure) string {
	var b strings.Builder
	ast.PrintProcedure(&b, u)
	return b.String()
}

// store writes e's entry file via an atomic rename. Entries whose unit
// does not round-trip byte-identically through the printer and parser
// are skipped: a later process would regenerate a different listing,
// which the cache's determinism contract forbids.
func (d *disk) store(e *Entry) error {
	src := printUnit(e.Unit)
	reparsed, err := parser.ParseProcedure(src)
	if err != nil || printUnit(reparsed) != src {
		return fmt.Errorf("summarycache: %s does not round-trip through the printer; not persisted", e.Proc)
	}
	res := e.Result
	res.Body = nil
	buf, err := json.Marshal(&diskEntry{
		Format: diskFormat, Key: e.Key, Proc: e.Proc, UnitSrc: src,
		Result: res, PartDelayed: e.PartDelayed, CommDelayed: e.CommDelayed,
		DecompSum: e.DecompSum, Interface: e.Interface, InputsUsed: e.InputsUsed,
		MainDists: e.MainDists, Overlaps: e.Overlaps, Remarks: e.Remarks,
		Runtime: e.Runtime,
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, "."+e.Key+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, d.path(e.Key))
}

// load reads the entry stored under key, or nil when there is none (or
// the file is unreadable, version-mismatched, or corrupt — all of
// which are treated as plain misses).
func (d *disk) load(key string) *Entry {
	buf, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil
	}
	var de diskEntry
	if json.Unmarshal(buf, &de) != nil || de.Format != diskFormat || de.Key != key {
		return nil
	}
	unit, err := parser.ParseProcedure(de.UnitSrc)
	if err != nil {
		return nil
	}
	return &Entry{
		Key: de.Key, Proc: de.Proc, Unit: unit, Result: de.Result,
		PartDelayed: de.PartDelayed, CommDelayed: de.CommDelayed,
		DecompSum: de.DecompSum, Interface: de.Interface, InputsUsed: de.InputsUsed,
		MainDists: de.MainDists, Overlaps: de.Overlaps, Remarks: de.Remarks,
		Runtime: de.Runtime,
	}
}

// entries counts the entry files currently in the directory.
func (d *disk) entries() int {
	names, err := filepath.Glob(filepath.Join(d.dir, "*.json"))
	if err != nil {
		return 0
	}
	return len(names)
}
