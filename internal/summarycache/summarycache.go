// Package summarycache is the persistent per-procedure summary cache
// that makes recompilation incremental (§4/§8): the unit of reuse in an
// interprocedural compilation system is the per-procedure summary, and
// the ACG dictates which summaries depend on which. Each procedure's
// phase-3 artifacts — its generated unit, code-generation counters,
// delayed partition constraints, delayed communication, decomposition
// summary, interface/inputs fingerprints, overlap actuals and
// optimization remarks — are stored under a content hash of the
// procedure's own source combined with the hashes of everything its
// compilation consumed (reaching decompositions, propagated constants
// and the caller-visible summaries of its callees). A re-run after
// editing one procedure therefore re-analyzes only the invalidated
// cone of the ACG: exactly the set internal/recompile's §8 analysis
// would flag, made executable as a cache-invalidation predicate.
//
// The cache lives for the process and may be shared across any number
// of compilations (it is safe for concurrent use by the parallel
// compile pipeline's workers). A nil *Cache disables caching; every
// method is nil-safe.
package summarycache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sync"

	"fortd/internal/ast"
	"fortd/internal/codegen"
	"fortd/internal/comm"
	"fortd/internal/decomp"
	"fortd/internal/explain"
	"fortd/internal/livedecomp"
	"fortd/internal/partition"
)

// OverlapActual is one overlap extension recorded during a procedure's
// code generation, replayed into the overlap analysis on a cache hit so
// warm and cold compilations expose identical overlap state.
type OverlapActual struct {
	Array       string
	Dim, Lo, Hi int
}

// Entry holds every artifact of one procedure's phase-3 compilation.
// Entries are immutable once stored: the pipeline clones Unit before
// splicing it into a program, and treats the summary structures as
// read-only (exactly as it treats a fresh callee's summaries).
type Entry struct {
	// Key is the content hash the entry is stored under.
	Key string
	// Proc is the compiled procedure's name (clones under clone names).
	Proc string
	// Unit is the fully transformed program unit (generated body and
	// symbols). Clone it before use.
	Unit *ast.Procedure
	// Result carries the code-generation counters (Body is nil; the
	// generated statements live in Unit).
	Result codegen.Result
	// PartDelayed, CommDelayed and DecompSum are the caller-visible
	// summaries published to the summary table on a hit.
	PartDelayed map[string]*partition.Constraint
	CommDelayed []*comm.Delayed
	DecompSum   *livedecomp.Summary
	// Interface and InputsUsed are the §8 recompilation fingerprintable
	// renderings recorded on the compilation.
	Interface  string
	InputsUsed string
	// MainDists holds the main program's initial distributions (main
	// program entries only).
	MainDists map[string]*decomp.Dist
	// Overlaps lists the overlap actuals recorded during codegen.
	Overlaps []OverlapActual
	// Remarks are the optimization remarks the procedure's passes
	// emitted, replayed verbatim on a hit so a warm compile's report is
	// byte-identical to a cold one.
	Remarks []explain.Remark
	// Runtime marks a procedure compiled with run-time resolution.
	Runtime bool
}

// Stats is a point-in-time view of the cache's cumulative counters.
type Stats struct {
	Hits, Misses int64
	Entries      int
	// DiskHits counts the subset of Hits served by loading an entry
	// file from the disk tier (zero for memory-only caches). DiskEntries
	// is the number of entry files currently in the cache directory, and
	// Dir names it ("" for memory-only caches).
	DiskHits    int64
	DiskEntries int
	Dir         string
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a content-addressed store of procedure compilation entries,
// optionally backed by a disk tier (see Open). The zero value is ready
// to use; a nil *Cache disables caching. A Cache is safe for concurrent
// use: any number of goroutines (and, with a disk tier, processes) may
// Get and Put simultaneously.
type Cache struct {
	mu       sync.Mutex
	entries  map[string]*Entry
	hits     int64
	misses   int64
	diskHits int64
	disk     *disk // nil: memory-only
}

// New returns an empty enabled cache.
func New() *Cache { return &Cache{} }

// Open returns a cache backed by the entry files under dir, creating
// the directory as needed. Entries stored by earlier processes are
// served as disk hits (loaded once, then held in memory); fresh
// entries are written through, so concurrent and future compile
// servers on the same directory stay warm. The cache keys already
// cover everything a compilation consumes, so processes sharing a
// directory never need to coordinate invalidation: an edited procedure
// simply hashes to a new key (§8 run as a cache, across processes).
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("summarycache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("summarycache: %w", err)
	}
	return &Cache{disk: &disk{dir: dir}}, nil
}

// Dir returns the disk tier's directory ("" for memory-only caches).
func (c *Cache) Dir() string {
	if c == nil || c.disk == nil {
		return ""
	}
	return c.disk.dir
}

// Enabled reports whether lookups can hit.
func (c *Cache) Enabled() bool { return c != nil }

// Get returns the entry stored under key, counting a hit or miss. With
// a disk tier, a memory miss probes the entry file and promotes it into
// memory on success (counted as a hit and a disk hit).
func (c *Cache) Get(key string) *Entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		c.hits++
		c.mu.Unlock()
		return e
	}
	if c.disk == nil {
		c.misses++
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	// load outside the lock: disk I/O and reparsing must not serialize
	// the parallel compile pipeline's workers
	e := c.disk.load(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if have := c.entries[key]; have != nil {
		// another worker promoted the same key concurrently; keep the
		// first copy so every consumer shares one immutable entry
		c.hits++
		return have
	}
	if e == nil {
		c.misses++
		return nil
	}
	if c.entries == nil {
		c.entries = map[string]*Entry{}
	}
	c.entries[key] = e
	c.hits++
	c.diskHits++
	return e
}

// Put stores an entry under e.Key, overwriting any previous entry and
// writing through to the disk tier when one is attached. Entries whose
// unit cannot be persisted faithfully stay memory-only (see disk.store).
func (c *Cache) Put(e *Entry) {
	if c == nil || e == nil || e.Key == "" {
		return
	}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[string]*Entry{}
	}
	c.entries[e.Key] = e
	d := c.disk
	c.mu.Unlock()
	if d != nil {
		d.store(e) // best-effort: a failed write degrades to memory-only
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cumulative hit/miss counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	s := Stats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries), DiskHits: c.diskHits}
	d := c.disk
	c.mu.Unlock()
	if d != nil {
		s.Dir = d.dir
		s.DiskEntries = d.entries()
	}
	return s
}

// Reset drops all in-memory entries and counters (the cache stays
// enabled; entry files in the disk tier are left in place).
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = nil
	c.hits, c.misses, c.diskHits = 0, 0, 0
	c.mu.Unlock()
}

// Hasher accumulates canonical key material. Parts are length-prefix
// separated so distinct part lists can never collide by concatenation.
type Hasher struct {
	h [32]byte
	b []byte
}

// NewHasher returns an empty hasher.
func NewHasher() *Hasher { return &Hasher{} }

// Add appends parts to the key material.
func (h *Hasher) Add(parts ...string) {
	for _, p := range parts {
		var n [4]byte
		ln := len(p)
		n[0], n[1], n[2], n[3] = byte(ln>>24), byte(ln>>16), byte(ln>>8), byte(ln)
		h.b = append(h.b, n[:]...)
		h.b = append(h.b, p...)
	}
}

// Sum returns the hex digest of everything added so far.
func (h *Hasher) Sum() string {
	sum := sha256.Sum256(h.b)
	return hex.EncodeToString(sum[:])
}

// Hash is shorthand for hashing a fixed part list.
func Hash(parts ...string) string {
	h := NewHasher()
	h.Add(parts...)
	return h.Sum()
}
