// Package recompile implements the recompilation analysis of §8 (and
// §4): in an interprocedural compilation system, an edited module can
// invalidate the code generated for modules that were not edited. To
// preserve the benefits of separate compilation, ParaScope records the
// interprocedural information each procedure's compilation consumed and,
// after an edit, recompiles only the procedures whose own source or
// whose consumed information actually changed.
package recompile

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"

	"fortd/internal/ast"
	"fortd/internal/core"
)

// Database is the persistent record of one compilation: per-procedure
// fingerprints of the local source and of the interprocedural inputs
// used to compile it.
type Database struct {
	// Local maps procedure → fingerprint of its own source text.
	Local map[string]string
	// Inputs maps procedure → fingerprint of the interprocedural
	// information consumed when it was compiled (reaching
	// decompositions and callee interface summaries).
	Inputs map[string]string
	// Interface maps procedure → fingerprint of the summary it exposes
	// to callers.
	Interface map[string]string
}

// Snapshot fingerprints a completed compilation.
func Snapshot(c *core.Compilation) *Database {
	db := &Database{
		Local:     map[string]string{},
		Inputs:    map[string]string{},
		Interface: map[string]string{},
	}
	for _, u := range c.Source.Units {
		db.Local[u.Name] = hashProc(u)
	}
	// compiled units may include clones; record them under their
	// compiled names
	for name, s := range c.InputsUsed {
		db.Inputs[name] = hash(s)
	}
	for name, s := range c.Interfaces {
		db.Interface[name] = hash(s)
	}
	return db
}

// Plan compares the database of the previous compilation with a fresh
// snapshot of the new one and lists the procedures that must be
// recompiled: those whose source changed, those that are new, and
// those whose interprocedural inputs changed (edited or not). The
// result is sorted.
func Plan(old, cur *Database) []string {
	need := map[string]bool{}
	for name, h := range cur.Local {
		if old.Local[name] != h {
			need[name] = true
		}
	}
	for name, h := range cur.Inputs {
		if old.Inputs[name] != h {
			need[name] = true
		}
	}
	out := make([]string, 0, len(need))
	for name := range need {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Unchanged lists compiled procedures whose generated code is provably
// identical (source and inputs both unchanged) — the separate
// compilation the analysis preserves.
func Unchanged(old, cur *Database) []string {
	var out []string
	for name, h := range cur.Inputs {
		if old.Inputs[name] == h && old.Local[baseName(name)] == cur.Local[baseName(name)] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// baseName strips a clone suffix (F1$row → F1).
func baseName(name string) string {
	if i := strings.IndexByte(name, '$'); i > 0 {
		return name[:i]
	}
	return name
}

func hashProc(u *ast.Procedure) string {
	var b strings.Builder
	ast.PrintProcedure(&b, u)
	return hash(b.String())
}

func hash(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:8])
}
