package recompile

import (
	"testing"

	"fortd/internal/core"
)

const baseSrc = `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL A(100), B(100)
      DISTRIBUTE A(BLOCK)
      DISTRIBUTE B(BLOCK)
      call S1(A)
      call S2(B)
      END
      SUBROUTINE S1(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) + 1.0
      enddo
      END
      SUBROUTINE S2(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) * 2.0
      enddo
      END
`

func snap(t *testing.T, src string) *Database {
	t.Helper()
	c, err := core.Compile(src, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Snapshot(c)
}

// TestNoEditNoRecompilation: recompiling identical source requires no
// work at all.
func TestNoEditNoRecompilation(t *testing.T) {
	a := snap(t, baseSrc)
	b := snap(t, baseSrc)
	if plan := Plan(a, b); len(plan) != 0 {
		t.Errorf("plan = %v, want empty", plan)
	}
	unchanged := Unchanged(a, b)
	if len(unchanged) != 3 {
		t.Errorf("unchanged = %v, want all three procedures", unchanged)
	}
}

// TestInternalEditRecompilesOnlyEditedProc: changing a constant inside
// S2's body (interface unchanged) must not force S1 or P to recompile.
func TestInternalEditRecompilesOnlyEditedProc(t *testing.T) {
	edited := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL A(100), B(100)
      DISTRIBUTE A(BLOCK)
      DISTRIBUTE B(BLOCK)
      call S1(A)
      call S2(B)
      END
      SUBROUTINE S1(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) + 1.0
      enddo
      END
      SUBROUTINE S2(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) * 3.0
      enddo
      END
`
	a := snap(t, baseSrc)
	b := snap(t, edited)
	plan := Plan(a, b)
	if len(plan) != 1 || plan[0] != "S2" {
		t.Errorf("plan = %v, want [S2]", plan)
	}
}

// TestInterfaceEditPropagatesToCaller: a DISTRIBUTE added inside S2
// changes its decomposition summary sets, so the caller consuming them
// must be recompiled too.
func TestInterfaceEditPropagatesToCaller(t *testing.T) {
	edited := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL A(100), B(100)
      DISTRIBUTE A(BLOCK)
      DISTRIBUTE B(BLOCK)
      call S1(A)
      call S2(B)
      END
      SUBROUTINE S1(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) + 1.0
      enddo
      END
      SUBROUTINE S2(X)
      REAL X(100)
      DISTRIBUTE X(CYCLIC)
      do i = 1,100
        X(i) = X(i) * 2.0
      enddo
      END
`
	a := snap(t, baseSrc)
	b := snap(t, edited)
	plan := Plan(a, b)
	wantP, wantS2 := false, false
	for _, name := range plan {
		switch name {
		case "P":
			wantP = true
		case "S2":
			wantS2 = true
		case "S1":
			t.Error("S1 needlessly recompiled")
		}
	}
	if !wantP || !wantS2 {
		t.Errorf("plan = %v, want P and S2", plan)
	}
}

// TestCallerEditDoesNotRecompileCallees: changing the caller's own
// statements (same decompositions at call sites) leaves callees alone.
func TestCallerEditDoesNotRecompileCallees(t *testing.T) {
	edited := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL A(100), B(100)
      DISTRIBUTE A(BLOCK)
      DISTRIBUTE B(BLOCK)
      x = 42
      call S1(A)
      call S2(B)
      END
      SUBROUTINE S1(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) + 1.0
      enddo
      END
      SUBROUTINE S2(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) * 2.0
      enddo
      END
`
	a := snap(t, baseSrc)
	b := snap(t, edited)
	plan := Plan(a, b)
	if len(plan) != 1 || plan[0] != "P" {
		t.Errorf("plan = %v, want [P]", plan)
	}
}

// TestDistributionChangePropagatesDown: changing the caller's
// DISTRIBUTE for A changes the reaching decomposition S1 consumes, so
// S1 must be recompiled even though its source is untouched.
func TestDistributionChangePropagatesDown(t *testing.T) {
	edited := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL A(100), B(100)
      DISTRIBUTE A(CYCLIC)
      DISTRIBUTE B(BLOCK)
      call S1(A)
      call S2(B)
      END
      SUBROUTINE S1(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) + 1.0
      enddo
      END
      SUBROUTINE S2(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) * 2.0
      enddo
      END
`
	a := snap(t, baseSrc)
	b := snap(t, edited)
	plan := Plan(a, b)
	hasS1, hasS2 := false, false
	for _, name := range plan {
		if name == "S1" {
			hasS1 = true
		}
		if name == "S2" {
			hasS2 = true
		}
	}
	if !hasS1 {
		t.Errorf("plan = %v: S1 must recompile (its reaching decomposition changed)", plan)
	}
	if hasS2 {
		t.Errorf("plan = %v: S2 must not recompile", plan)
	}
}
