package reach

import (
	"sort"
	"strings"
	"testing"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/decomp"
	"fortd/internal/parser"
)

const fig4Src = `
      PROGRAM P1
      REAL X(100,100),Y(100,100)
      PARAMETER (n$proc = 4)
      ALIGN Y(i,j) with X(j,i)
      DISTRIBUTE X(BLOCK,:)
      do i = 1,100
S1      call F1(X,i)
      enddo
      do j = 1,100
S2      call F1(Y,j)
      enddo
      END
      SUBROUTINE F1(Z,i)
      REAL Z(100,100)
S3    call F2(Z,i)
      END
      SUBROUTINE F2(Z,i)
      REAL Z(100,100)
      do k = 1,100
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`

func analyzeSrc(t *testing.T, src string, opts Options) (*Result, *acg.Graph) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, res.Graph
}

// TestFigure7ReachingSets reproduces the reaching decomposition
// calculation of Figure 7 (with cloning disabled so the raw sets are
// visible): Reaching(F1) = {⟨{(BLOCK,:),(:,BLOCK)}, Z⟩} and likewise
// for F2, while Reaching(P1) = ∅.
func TestFigure7ReachingSets(t *testing.T) {
	res, _ := analyzeSrc(t, fig4Src, Options{CloneLimit: 0})
	if len(res.Reaching["P1"]) != 0 {
		t.Errorf("Reaching(P1) = %v, want empty", res.Reaching["P1"])
	}
	for _, proc := range []string{"F1", "F2"} {
		z, ok := res.Reaching[proc]["Z"]
		if !ok {
			t.Fatalf("no reaching set for Z in %s", proc)
		}
		var keys []string
		for k := range z.Ds {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		want := "(:,BLOCK)|(BLOCK,:)"
		if strings.Join(keys, "|") != want {
			t.Errorf("Reaching(%s)[Z] = %v, want %s", proc, keys, want)
		}
	}
	// with cloning off, both F1 and F2 need run-time resolution for Z
	if vars := res.RuntimeResolution["F1"]; len(vars) != 1 || vars[0] != "Z" {
		t.Errorf("RuntimeResolution[F1] = %v", vars)
	}
}

// TestFigure8Cloning reproduces §5.2's cloning outcome: two copies each
// of F1 and F2, named after the row/column distributions.
func TestFigure8Cloning(t *testing.T) {
	res, g := analyzeSrc(t, fig4Src, DefaultOptions())
	var names []string
	for name := range g.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	joined := strings.Join(names, " ")
	for _, want := range []string{"F1$row", "F1$col", "F2$row", "F2$col", "P1"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing clone %s in %s", want, joined)
		}
	}
	// no run-time resolution needed after cloning
	if len(res.RuntimeResolution) != 0 {
		t.Errorf("RuntimeResolution = %v", res.RuntimeResolution)
	}
	// each clone sees a unique decomposition for Z
	d, ok := res.Reaching["F1$row"]["Z"].Single()
	if !ok || d.Key() != "(BLOCK,:)" {
		t.Errorf("Reaching(F1$row)[Z] = %v", res.Reaching["F1$row"]["Z"])
	}
	d, ok = res.Reaching["F1$col"]["Z"].Single()
	if !ok || d.Key() != "(:,BLOCK)" {
		t.Errorf("Reaching(F1$col)[Z] = %v", res.Reaching["F1$col"]["Z"])
	}
	// clone provenance recorded
	if res.ClonedFrom["F1$row"] != "F1" || res.ClonedFrom["F2$col"] != "F2" {
		t.Errorf("ClonedFrom = %v", res.ClonedFrom)
	}
	// call sites in P1 retargeted
	counts := map[string]int{}
	ast.WalkStmts(g.Program.Main().Body, func(s ast.Stmt) bool {
		if c, ok := s.(*ast.Call); ok {
			counts[c.Name]++
		}
		return true
	})
	if counts["F1$row"] != 1 || counts["F1$col"] != 1 {
		t.Errorf("main call targets = %v", counts)
	}
}

// TestFigure1Reaching: interprocedural analysis determines X in F1 is
// distributed blockwise (§3.1).
func TestFigure1Reaching(t *testing.T) {
	src := `
      PROGRAM P1
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      call F1(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
        X(i) = F(X(i+5))
      enddo
      END
`
	res, _ := analyzeSrc(t, src, DefaultOptions())
	d, ok := res.Reaching["F1"]["X"].Single()
	if !ok || d.Key() != "(BLOCK)" {
		t.Errorf("Reaching(F1)[X] = %v", res.Reaching["F1"]["X"])
	}
	if len(res.RuntimeResolution) != 0 {
		t.Errorf("unexpected runtime resolution: %v", res.RuntimeResolution)
	}
}

// TestNoCloningWhenSameDecomp: identical decompositions at two call
// sites must share one procedure body.
func TestNoCloningWhenSameDecomp(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(100), B(100)
      DISTRIBUTE A(BLOCK)
      DISTRIBUTE B(BLOCK)
      call S(A)
      call S(B)
      END
      SUBROUTINE S(X)
      REAL X(100)
      do i = 1,100
        X(i) = 0.0
      enddo
      END
`
	_, g := analyzeSrc(t, src, DefaultOptions())
	if len(g.Nodes) != 2 {
		names := []string{}
		for n := range g.Nodes {
			names = append(names, n)
		}
		t.Errorf("unnecessary cloning: %v", names)
	}
}

// TestFilterAvoidsUselessCloning: different decompositions for a
// variable the callee never touches must not trigger cloning
// (the Filter/Appear step of Figure 8).
func TestFilterAvoidsUselessCloning(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(100), B(100), C(100)
      DISTRIBUTE A(BLOCK)
      DISTRIBUTE B(CYCLIC)
      DISTRIBUTE C(BLOCK)
      call S(A,C)
      call S(B,C)
      END
      SUBROUTINE S(U,V)
      REAL U(100), V(100)
      do i = 1,100
        V(i) = 1.0
      enddo
      END
`
	_, g := analyzeSrc(t, src, DefaultOptions())
	if _, ok := g.Nodes["S"]; !ok {
		names := []string{}
		for n := range g.Nodes {
			names = append(names, n)
		}
		t.Errorf("S was cloned although U is unreferenced: %v", names)
	}
}

// TestDynamicRedistributionScoping: a DISTRIBUTE inside a callee is
// undone on return, so the caller's state at a later call site still
// sees the original decomposition (§5.2 "the effect of data
// decomposition changes in a procedure can be ignored by its callers").
func TestDynamicRedistributionScoping(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(100)
      DISTRIBUTE X(BLOCK)
      call F1(X)
      call F2(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      DISTRIBUTE X(CYCLIC)
      do i = 1,100
        X(i) = 0.0
      enddo
      END
      SUBROUTINE F2(X)
      REAL X(100)
      do i = 1,100
        X(i) = 1.0
      enddo
      END
`
	res, _ := analyzeSrc(t, src, DefaultOptions())
	d, ok := res.Reaching["F2"]["X"].Single()
	if !ok || d.Key() != "(BLOCK)" {
		t.Errorf("Reaching(F2)[X] = %v, want (BLOCK)", res.Reaching["F2"]["X"])
	}
}

// TestConditionalDistributeMerges: a DISTRIBUTE under one branch of an
// IF yields both decompositions reaching the subsequent call.
func TestConditionalDistributeMerges(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(100)
      DISTRIBUTE X(BLOCK)
      if (n .gt. 10) then
        DISTRIBUTE X(CYCLIC)
      endif
      call S(X)
      END
      SUBROUTINE S(X)
      REAL X(100)
      do i = 1,100
        X(i) = 0.0
      enddo
      END
`
	res, _ := analyzeSrc(t, src, Options{CloneLimit: 0})
	set := res.Reaching["S"]["X"]
	if len(set.Ds) != 2 {
		t.Errorf("Reaching(S)[X] = %v, want both BLOCK and CYCLIC", set)
	}
}

// TestStateWalkFigure15: within F1 a local DISTRIBUTE kills the
// inherited decomposition.
func TestStateWalkFigure15(t *testing.T) {
	src := `
      SUBROUTINE F1(X)
      REAL X(100)
      DISTRIBUTE X(CYCLIC)
      do i = 1,100
        X(i) = 0.0
      enddo
      END
`
	u, err := parser.ParseProcedure(src)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(u, nil)
	if !st.Lookup("X").Top {
		t.Fatal("X should start at ⊤")
	}
	var atLoop DSet
	st.WalkBody(u.Body, func(s ast.Stmt, st *State) {
		if _, ok := s.(*ast.Do); ok {
			atLoop = st.Lookup("X")
		}
	})
	d, ok := atLoop.Single()
	if !ok || d.Key() != "(CYCLIC)" {
		t.Errorf("X at loop = %v", atLoop)
	}
}

func TestAlignThenDistributeOrder(t *testing.T) {
	// DISTRIBUTE may precede or follow ALIGN; both orders must work
	src := `
      PROGRAM P
      REAL A(50,50)
      DECOMPOSITION D(50,50)
      DISTRIBUTE D(:,BLOCK)
      ALIGN A(i,j) with D(i,j)
      call S(A)
      END
      SUBROUTINE S(A)
      REAL A(50,50)
      A(1,1) = 0.0
      END
`
	res, _ := analyzeSrc(t, src, DefaultOptions())
	d, ok := res.Reaching["S"]["A"].Single()
	if !ok || d.Key() != "(:,BLOCK)" {
		t.Errorf("Reaching(S)[A] = %v", res.Reaching["S"]["A"])
	}
}

func TestReplicatedDefault(t *testing.T) {
	src := `
      PROGRAM P
      REAL W(10)
      call S(W)
      END
      SUBROUTINE S(W)
      REAL W(10)
      W(1) = 0.0
      END
`
	res, _ := analyzeSrc(t, src, DefaultOptions())
	d, ok := res.Reaching["S"]["W"].Single()
	if !ok || !d.IsReplicated() {
		t.Errorf("Reaching(S)[W] = %v, want replicated", res.Reaching["S"]["W"])
	}
}

var _ = decomp.Replicated // keep import for documentation symmetry

// TestCloneLimitForcesRuntimeFallback: with a limit too small for the
// needed clones, the compiler stops cloning and flags the procedures
// for run-time resolution (the §5.2 growth threshold).
func TestCloneLimitForcesRuntimeFallback(t *testing.T) {
	// Figure 4 needs 2 clones of F1 and 2 of F2; a limit of 1 cannot
	// even split F1
	res, g := analyzeSrc(t, fig4Src, Options{CloneLimit: 1})
	if _, ok := g.Nodes["F1"]; !ok {
		t.Error("F1 should remain uncloned under the limit")
	}
	if len(res.RuntimeResolution["F1"]) == 0 {
		t.Errorf("F1 must fall back to run-time resolution: %v", res.RuntimeResolution)
	}
}

// TestDiamondCallGraph: two paths to the same callee with the same
// decomposition need no cloning and produce one reaching set.
func TestDiamondCallGraph(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(100)
      DISTRIBUTE A(BLOCK)
      call L(A)
      call R(A)
      END
      SUBROUTINE L(X)
      REAL X(100)
      call leaf(X)
      END
      SUBROUTINE R(X)
      REAL X(100)
      call leaf(X)
      END
      SUBROUTINE leaf(Z)
      REAL Z(100)
      do i = 1,100
        Z(i) = 0.0
      enddo
      END
`
	res, g := analyzeSrc(t, src, DefaultOptions())
	if len(g.Nodes) != 4 {
		names := []string{}
		for n := range g.Nodes {
			names = append(names, n)
		}
		t.Errorf("diamond wrongly cloned: %v", names)
	}
	d, ok := res.Reaching["leaf"]["Z"].Single()
	if !ok || d.Key() != "(BLOCK)" {
		t.Errorf("Reaching(leaf)[Z] = %v", res.Reaching["leaf"]["Z"])
	}
}

// TestDiamondConflictClonesBothLevels: different decompositions through
// a diamond clone the shared leaf through its parents.
func TestDiamondConflictClones(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(100), B(100)
      DISTRIBUTE A(BLOCK)
      DISTRIBUTE B(CYCLIC)
      call L(A)
      call R(B)
      END
      SUBROUTINE L(X)
      REAL X(100)
      call leaf(X)
      END
      SUBROUTINE R(X)
      REAL X(100)
      call leaf(X)
      END
      SUBROUTINE leaf(Z)
      REAL Z(100)
      do i = 1,100
        Z(i) = 0.0
      enddo
      END
`
	res, g := analyzeSrc(t, src, DefaultOptions())
	// leaf must split (block vs cyclic); L and R stay single
	found := 0
	for name := range g.Nodes {
		if strings.HasPrefix(name, "leaf$") {
			found++
		}
	}
	if found != 2 {
		names := []string{}
		for n := range g.Nodes {
			names = append(names, n)
		}
		t.Errorf("leaf clones = %d, want 2: %v", found, names)
	}
	if len(res.RuntimeResolution) != 0 {
		t.Errorf("RuntimeResolution = %v", res.RuntimeResolution)
	}
}
