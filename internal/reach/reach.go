// Package reach implements interprocedural reaching decompositions
// (§5.2, Figure 6) and procedure cloning (Figure 8).
//
// Reaching decompositions determine, for every point in the program,
// which data decomposition applies to each distributed array. Locally
// the problem is solved like reaching definitions, with each ALIGN /
// DISTRIBUTE statement acting as a definition; a ⊤ placeholder marks
// variables whose decomposition is inherited from the caller. The
// interprocedural solution is computed in one top-down pass over the
// acyclic augmented call graph: Reaching(P) is the union of the
// translated LocalReaching sets of P's call sites, and ⊤ elements are
// then expanded in place.
//
// When distinct decompositions reach the same procedure, cloning
// creates one copy per decomposition signature (filtered by Appear(P)
// to avoid cloning for unreferenced variables), falling back to
// run-time resolution once a growth threshold is exceeded.
package reach

import (
	"fmt"
	"sort"
	"strings"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/decomp"
	"fortd/internal/explain"
	"fortd/internal/sideeffect"
)

// DSet is a set of decompositions that may reach a variable, possibly
// including the ⊤ placeholder for an inherited decomposition.
type DSet struct {
	Top bool
	Ds  map[string]decomp.Decomp
}

// NewDSet builds a set from decompositions.
func NewDSet(ds ...decomp.Decomp) DSet {
	s := DSet{Ds: map[string]decomp.Decomp{}}
	for _, d := range ds {
		s.Ds[d.Key()] = d
	}
	return s
}

// TopSet returns the ⊤-only set.
func TopSet() DSet { return DSet{Top: true, Ds: map[string]decomp.Decomp{}} }

// Clone deep-copies the set.
func (s DSet) Clone() DSet {
	out := DSet{Top: s.Top, Ds: make(map[string]decomp.Decomp, len(s.Ds))}
	for k, d := range s.Ds {
		out.Ds[k] = d
	}
	return out
}

// Union merges o into a copy of s.
func (s DSet) Union(o DSet) DSet {
	out := s.Clone()
	out.Top = out.Top || o.Top
	for k, d := range o.Ds {
		out.Ds[k] = d
	}
	return out
}

// Single returns the unique decomposition and true when the set has
// exactly one element and no ⊤.
func (s DSet) Single() (decomp.Decomp, bool) {
	if s.Top || len(s.Ds) != 1 {
		return decomp.Decomp{}, false
	}
	for _, d := range s.Ds {
		return d, true
	}
	return decomp.Decomp{}, false
}

// Empty reports whether nothing reaches.
func (s DSet) Empty() bool { return !s.Top && len(s.Ds) == 0 }

// Key returns a canonical signature for partitioning call sites.
func (s DSet) Key() string {
	keys := make([]string, 0, len(s.Ds)+1)
	if s.Top {
		keys = append(keys, "⊤")
	}
	for k := range s.Ds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

func (s DSet) String() string { return "{" + s.Key() + "}" }

// ---------------------------------------------------------------------------
// Per-procedure decomposition state

// alignInfo records one ALIGN statement's effect.
type alignInfo struct {
	target string
	terms  []ast.AlignTerm
}

// State tracks the decompositions reaching each variable at a program
// point during the forward walk of one procedure.
type State struct {
	proc *ast.Procedure
	// arr maps array names to their reaching decomposition sets.
	arr map[string]DSet
	// decompSpecs maps decomposition symbols to their current formats.
	decompSpecs map[string]decomp.Decomp
	// aligns maps arrays to their alignment targets.
	aligns map[string]alignInfo
}

// NewState builds the entry state of proc: formals and common variables
// inherit ⊤ (or the supplied reaching decompositions), local arrays
// start replicated.
func NewState(proc *ast.Procedure, reaching map[string]DSet) *State {
	st := &State{
		proc:        proc,
		arr:         map[string]DSet{},
		decompSpecs: map[string]decomp.Decomp{},
		aligns:      map[string]alignInfo{},
	}
	for _, sym := range proc.Symbols.Symbols() {
		if sym.Kind != ast.SymArray {
			continue
		}
		switch {
		case (sym.IsFormal || sym.Common != "") && !proc.IsMain:
			if r, ok := reaching[sym.Name]; ok {
				st.arr[sym.Name] = r.Clone()
			} else {
				st.arr[sym.Name] = TopSet()
			}
		default:
			st.arr[sym.Name] = NewDSet(decomp.Replicated)
		}
	}
	return st
}

// clone deep-copies the state (for branch merging).
func (st *State) clone() *State {
	out := &State{
		proc:        st.proc,
		arr:         make(map[string]DSet, len(st.arr)),
		decompSpecs: make(map[string]decomp.Decomp, len(st.decompSpecs)),
		aligns:      make(map[string]alignInfo, len(st.aligns)),
	}
	for k, v := range st.arr {
		out.arr[k] = v.Clone()
	}
	for k, v := range st.decompSpecs {
		out.decompSpecs[k] = v
	}
	for k, v := range st.aligns {
		out.aligns[k] = v
	}
	return out
}

// merge unions o into st.
func (st *State) merge(o *State) {
	for k, v := range o.arr {
		if cur, ok := st.arr[k]; ok {
			st.arr[k] = cur.Union(v)
		} else {
			st.arr[k] = v.Clone()
		}
	}
	for k, v := range o.aligns {
		st.aligns[k] = v
	}
	for k, v := range o.decompSpecs {
		st.decompSpecs[k] = v
	}
}

// Lookup returns the decomposition set currently reaching array name.
func (st *State) Lookup(name string) DSet {
	if s, ok := st.arr[name]; ok {
		return s
	}
	return NewDSet(decomp.Replicated)
}

// Apply updates the state for one statement (directives change it,
// everything else leaves it alone). Nested statements are NOT walked;
// callers drive the traversal so that they can observe intermediate
// states (the paper's "repeat the calculation of LocalReaching during
// code generation").
func (st *State) Apply(s ast.Stmt) {
	switch d := s.(type) {
	case *ast.Decomposition:
		st.decompSpecs[d.Name] = decomp.Replicated
	case *ast.Align:
		st.aligns[d.Array] = alignInfo{target: d.Target, terms: d.Terms}
		st.recomputeAligned(d.Array)
	case *ast.Distribute:
		// The target may be a DECOMPOSITION symbol or an array (arrays
		// may be distributed — and serve as alignment targets —
		// directly, via their implicit default decomposition).
		st.decompSpecs[d.Target] = decomp.NewDecomp(d.Specs...)
		sym := st.proc.Symbols.Lookup(d.Target)
		if sym == nil || sym.Kind != ast.SymDecomposition {
			st.arr[d.Target] = NewDSet(decomp.NewDecomp(d.Specs...))
		}
		for arr, ai := range st.aligns {
			if ai.target == d.Target {
				st.recomputeAligned(arr)
			}
		}
	}
}

func (st *State) recomputeAligned(arr string) {
	ai := st.aligns[arr]
	target, ok := st.decompSpecs[ai.target]
	if !ok {
		return
	}
	sym := st.proc.Symbols.Lookup(arr)
	rank := 1
	if sym != nil {
		rank = sym.NumDims()
	}
	st.arr[arr] = NewDSet(decomp.ApplyAlign(ai.terms, target, rank))
}

// WalkBody drives the state through a statement list, calling visit for
// every statement with the state *before* the statement takes effect.
// Branches are merged; loop bodies are walked twice so decomposition
// changes in an iteration reach the loop top.
func (st *State) WalkBody(body []ast.Stmt, visit func(s ast.Stmt, st *State)) {
	for _, s := range body {
		if visit != nil {
			visit(s, st)
		}
		switch x := s.(type) {
		case *ast.Do:
			// two passes for fixpoint over dynamic redistribution
			snapshot := st.clone()
			st.WalkBody(x.Body, nil)
			st.merge(snapshot)
			st.WalkBody(x.Body, visit)
		case *ast.If:
			thenSt := st.clone()
			thenSt.WalkBody(x.Then, visit)
			elseSt := st.clone()
			elseSt.WalkBody(x.Else, visit)
			*st = *thenSt
			st.merge(elseSt)
		default:
			st.Apply(s)
		}
	}
}

// ---------------------------------------------------------------------------
// Interprocedural analysis

// SiteReaching is LocalReaching(C): the decomposition sets of the
// array-valued actual parameters and common arrays at call site C,
// keyed by caller-side variable name.
type SiteReaching map[string]DSet

// Result is the program-wide reaching decomposition solution after any
// cloning has been applied.
type Result struct {
	Graph *acg.Graph
	// Reaching maps procedure → variable → reaching set at entry.
	Reaching map[string]map[string]DSet
	// Sites maps call-site statements to their LocalReaching sets.
	Sites map[*ast.Call]SiteReaching
	// ClonedFrom maps clone names to their original procedure.
	ClonedFrom map[string]string
	// RuntimeResolution lists procedures left with multiple reaching
	// decompositions for some variable (cloning limit hit): the code
	// generator must fall back to run-time resolution for them.
	RuntimeResolution map[string][]string
}

// Options controls the analysis.
type Options struct {
	// CloneLimit bounds the number of clones created program-wide; 0
	// means no cloning (always run-time resolution on conflicts).
	CloneLimit int
	// Explain receives optimization remarks (nil = disabled).
	Explain *explain.Collector
}

// DefaultOptions enables cloning with a generous limit.
func DefaultOptions() Options { return Options{CloneLimit: 64} }

// Analyze runs reaching decompositions with cloning over the program
// behind g. The program is transformed in place when clones are made
// and the returned Result carries the rebuilt graph.
func Analyze(g *acg.Graph, opts Options) (*Result, error) {
	ex := opts.Explain
	clones := 0
	cloneNames := map[string]string{}
	for {
		res := propagate(g)
		victim, partitions := findCloneCandidate(g, res)
		if victim == nil {
			res.ClonedFrom = cloneNames
			res.finalize(g)
			res.explainRemarks(g, ex)
			return res, nil
		}
		if clones+len(partitions) > opts.CloneLimit {
			// growth threshold exceeded: disable cloning, flag
			// run-time resolution (§5.2 "cloning may be disabled when a
			// threshold program growth has been exceeded")
			if ex.Enabled() {
				ex.Add(explain.Remark{
					Kind: explain.Missed, Pass: "reach", Proc: victim.Name(), Name: "clone",
					Msg: fmt.Sprintf("cloning %s into %d variants would exceed the clone limit (%d used of %d) — falling back to run-time resolution",
						victim.Name(), len(partitions), clones, opts.CloneLimit),
				})
			}
			res.ClonedFrom = cloneNames
			res.finalize(g)
			res.explainRemarks(g, ex)
			return res, nil
		}
		if err := applyCloning(g, victim, partitions, cloneNames); err != nil {
			return nil, err
		}
		if ex.Enabled() {
			names := make([]string, 0, len(partitions))
			for _, site := range g.Program.Units {
				if cloneNames[site.Name] != "" && strings.HasPrefix(site.Name, victim.Name()+"$") {
					names = append(names, site.Name)
				}
			}
			sort.Strings(names)
			ex.Add(explain.Remark{
				Kind: explain.Applied, Pass: "reach", Proc: victim.Name(), Name: "clone",
				Msg: fmt.Sprintf("%d distinct decomposition signatures reach %s: cloned into %s (%d of %d clone budget used)",
					len(partitions), victim.Name(), strings.Join(names, ", "),
					clones+len(partitions)-1, opts.CloneLimit),
			})
		}
		clones += len(partitions) - 1
		if err := g.Rebuild(); err != nil {
			return nil, err
		}
	}
}

// explainRemarks emits the final solution as remarks: the reaching
// decomposition set at every call site, and a missed-remark for every
// procedure left to run-time resolution.
func (res *Result) explainRemarks(g *acg.Graph, ex *explain.Collector) {
	if !ex.Enabled() {
		return
	}
	for _, n := range g.TopoOrder() {
		for _, site := range n.Calls {
			local := res.Sites[site.Stmt]
			if len(local) == 0 {
				continue
			}
			vars := make([]string, 0, len(local))
			for v := range local {
				vars = append(vars, v)
			}
			sort.Strings(vars)
			parts := make([]string, 0, len(vars))
			for _, v := range vars {
				parts = append(parts, v+"="+local[v].String())
			}
			ex.Add(explain.Remark{
				Kind: explain.Note, Pass: "reach", Proc: n.Name(), Line: site.Stmt.Pos().Line, Name: "reaching",
				Msg: fmt.Sprintf("call %s: %s", site.Stmt.Name, strings.Join(parts, ", ")),
			})
		}
	}
	for _, n := range g.TopoOrder() {
		multi := res.RuntimeResolution[n.Name()]
		if len(multi) == 0 {
			continue
		}
		sets := make([]string, 0, len(multi))
		for _, v := range multi {
			sets = append(sets, v+"="+res.Reaching[n.Name()][v].String())
		}
		ex.Add(explain.Remark{
			Kind: explain.Missed, Pass: "reach", Proc: n.Name(), Name: "runtime-resolution",
			Msg: fmt.Sprintf("%s needs run-time resolution: multiple decompositions still reach %s after cloning",
				n.Name(), strings.Join(sets, ", ")),
		})
	}
}

// propagate performs the local-analysis and top-down propagation phases
// of Figure 6 over the current program.
func propagate(g *acg.Graph) *Result {
	res := &Result{
		Graph:             g,
		Reaching:          map[string]map[string]DSet{},
		Sites:             map[*ast.Call]SiteReaching{},
		RuntimeResolution: map[string][]string{},
	}
	for _, n := range g.TopoOrder() {
		proc := n.Proc
		// Reaching(P) = ∪ Translate(LocalReaching(C)) over processed callers
		reaching := map[string]DSet{}
		for _, site := range n.Callers {
			local := res.Sites[site.Stmt]
			if local == nil {
				continue
			}
			for formal, set := range translateSite(site, local) {
				if cur, ok := reaching[formal]; ok {
					reaching[formal] = cur.Union(set)
				} else {
					reaching[formal] = set
				}
			}
		}
		res.Reaching[proc.Name] = reaching

		// local walk: record LocalReaching at each call site, expanding
		// ⊤ with Reaching(P) (the update step of Figure 6)
		st := NewState(proc, reaching)
		st.WalkBody(proc.Body, func(s ast.Stmt, st *State) {
			call, ok := s.(*ast.Call)
			if !ok {
				return
			}
			local := SiteReaching{}
			record := func(name string) {
				set := st.Lookup(name).Clone()
				if set.Top {
					// expand ⊤ using Reaching(P); if nothing reaches
					// (e.g. entry procedure), keep ⊤ unresolved
					if r, ok := reaching[name]; ok && !r.Empty() {
						set.Top = false
						set = set.Union(r)
					}
				}
				local[name] = set
			}
			for _, a := range call.Args {
				if id, ok := a.(*ast.Ident); ok {
					if sym := proc.Symbols.Lookup(id.Name); sym != nil && sym.Kind == ast.SymArray {
						record(id.Name)
					}
				}
			}
			// commons visible in the callee inherit the caller state
			if callee := g.Nodes[call.Name]; callee != nil {
				for _, sym := range callee.Proc.Symbols.Symbols() {
					if sym.Common != "" && sym.Kind == ast.SymArray {
						record(sym.Name)
					}
				}
			}
			res.Sites[call] = local
		})
	}
	return res
}

// translateSite maps a caller-side LocalReaching set into the callee's
// name space (Translate of Figure 6).
func translateSite(site *acg.CallSite, local SiteReaching) map[string]DSet {
	out := map[string]DSet{}
	for _, b := range site.Bindings {
		if b.ActualName == "" {
			continue
		}
		if set, ok := local[b.ActualName]; ok {
			if cur, exists := out[b.Formal]; exists {
				out[b.Formal] = cur.Union(set)
			} else {
				out[b.Formal] = set.Clone()
			}
		}
	}
	// common variables are simply copied
	for _, sym := range site.Callee.Proc.Symbols.Symbols() {
		if sym.Common != "" {
			if set, ok := local[sym.Name]; ok {
				out[sym.Name] = set.Clone()
			}
		}
	}
	return out
}

// finalize flags variables that still have multiple reaching
// decompositions (run-time resolution fallback).
func (res *Result) finalize(g *acg.Graph) {
	for _, n := range g.TopoOrder() {
		var multi []string
		for v, set := range res.Reaching[n.Name()] {
			if _, ok := set.Single(); !ok && !set.Empty() {
				multi = append(multi, v)
			}
		}
		if len(multi) > 0 {
			sort.Strings(multi)
			res.RuntimeResolution[n.Name()] = multi
		}
	}
}

// ---------------------------------------------------------------------------
// Procedure cloning (Figure 8)

// partition groups the call sites of one procedure that provide the
// same (filtered) decomposition signature.
type partition struct {
	key   string
	sites []*acg.CallSite
	// reaching is the translated, filtered reaching map of the group.
	reaching map[string]DSet
}

// findCloneCandidate looks for the first procedure (in topological
// order) whose call sites partition into more than one signature under
// Filter(Translate(LocalReaching(C)), Appear(P)).
func findCloneCandidate(g *acg.Graph, res *Result) (*acg.Node, []*partition) {
	se := sideeffect.Compute(g)
	for _, n := range g.TopoOrder() {
		if len(n.Callers) < 2 {
			continue
		}
		appear := se.AppearSet(n.Name())
		groups := map[string]*partition{}
		var order []string
		for _, site := range n.Callers {
			local := res.Sites[site.Stmt]
			translated := translateSite(site, local)
			filtered := map[string]DSet{}
			for v, set := range translated {
				if appear.Has(v) {
					filtered[v] = set
				}
			}
			key := signature(filtered)
			grp, ok := groups[key]
			if !ok {
				grp = &partition{key: key, reaching: filtered}
				groups[key] = grp
				order = append(order, key)
			} else {
				for v, set := range filtered {
					if cur, ok := grp.reaching[v]; ok {
						grp.reaching[v] = cur.Union(set)
					} else {
						grp.reaching[v] = set
					}
				}
			}
			grp.sites = append(grp.sites, site)
		}
		if len(groups) > 1 {
			parts := make([]*partition, 0, len(groups))
			for _, k := range order {
				parts = append(parts, groups[k])
			}
			return n, parts
		}
	}
	return nil, nil
}

func signature(m map[string]DSet) string {
	keys := make([]string, 0, len(m))
	for v := range m {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, v := range keys {
		parts = append(parts, v+"="+m[v].Key())
	}
	return strings.Join(parts, ";")
}

// applyCloning replaces victim with one clone per partition, renaming
// the call sites of each partition to its clone.
func applyCloning(g *acg.Graph, victim *acg.Node, parts []*partition, cloneNames map[string]string) error {
	prog := g.Program
	base := victim.Proc.Name
	orig := base
	if o, ok := cloneNames[base]; ok {
		orig = o
	}
	used := map[string]bool{}
	for _, u := range prog.Units {
		used[u.Name] = true
	}
	for i, part := range parts {
		name := base + "$" + prettySuffix(part, i)
		for used[name] {
			name += "x"
		}
		used[name] = true
		clone := ast.CloneProcedure(victim.Proc, name)
		prog.AddProc(clone)
		cloneNames[name] = orig
		for _, site := range part.sites {
			site.Stmt.Name = name
		}
	}
	// remove the original unit (now uncalled); keep it if it is main
	if !victim.Proc.IsMain {
		units := prog.Units[:0]
		for _, u := range prog.Units {
			if u != victim.Proc {
				units = append(units, u)
			}
		}
		prog.Units = units
	}
	return nil
}

// prettySuffix names clones after the paper's convention where the
// signature permits (F1$row / F1$col for row- and column-distributed
// two-dimensional arrays), falling back to a numeric suffix.
func prettySuffix(part *partition, idx int) string {
	if len(part.reaching) == 1 {
		for _, set := range part.reaching {
			if d, ok := set.Single(); ok {
				switch d.Key() {
				case "(BLOCK,:)":
					return "row"
				case "(:,BLOCK)":
					return "col"
				case "(BLOCK)":
					return "blk"
				case "(CYCLIC)":
					return "cyc"
				case "(CYCLIC,:)":
					return "rowcyc"
				case "(:,CYCLIC)":
					return "colcyc"
				}
			}
		}
	}
	return fmt.Sprintf("%d", idx+1)
}
