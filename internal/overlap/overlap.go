// Package overlap implements overlap calculation (§5.6, Figure 13).
// Overlap regions extend the local bounds of a distributed array so
// nonlocal boundary data fetched from neighbors can be stored in place
// (Gerndt's overlaps). Because multidimensional arrays must be declared
// with consistent sizes across procedures, overlap extents must agree
// program-wide; the compiler therefore *estimates* overlaps from the
// constant subscript offsets collected during local analysis,
// propagates the estimates over the call graph, and during code
// generation reconciles them against the overlaps actually needed,
// falling back to buffers when the estimate was too small.
package overlap

import (
	"fmt"
	"sort"

	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/depend"
	"fortd/internal/explain"
)

// Offsets records, per array dimension, how far subscripts reach below
// and above the loop-aligned index (non-negative magnitudes).
type Offsets struct {
	Lo, Hi []int
}

// NewOffsets returns zero offsets of the given rank.
func NewOffsets(rank int) *Offsets {
	return &Offsets{Lo: make([]int, rank), Hi: make([]int, rank)}
}

// Merge widens o to cover other, reporting whether o changed.
func (o *Offsets) Merge(other *Offsets) bool {
	changed := false
	for i := range o.Lo {
		if i < len(other.Lo) && other.Lo[i] > o.Lo[i] {
			o.Lo[i] = other.Lo[i]
			changed = true
		}
		if i < len(other.Hi) && other.Hi[i] > o.Hi[i] {
			o.Hi[i] = other.Hi[i]
			changed = true
		}
	}
	return changed
}

// Covers reports whether o is at least as wide as other in every
// dimension.
func (o *Offsets) Covers(other *Offsets) bool {
	for i := range other.Lo {
		if i >= len(o.Lo) {
			return false
		}
		if other.Lo[i] > o.Lo[i] || other.Hi[i] > o.Hi[i] {
			return false
		}
	}
	return true
}

// Zero reports whether no overlap is needed.
func (o *Offsets) Zero() bool {
	for i := range o.Lo {
		if o.Lo[i] != 0 || o.Hi[i] != 0 {
			return false
		}
	}
	return true
}

func (o *Offsets) String() string {
	s := "("
	for i := range o.Lo {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("{-%d,+%d}", o.Lo[i], o.Hi[i])
	}
	return s + ")"
}

// Clone copies o.
func (o *Offsets) Clone() *Offsets {
	return &Offsets{Lo: append([]int(nil), o.Lo...), Hi: append([]int(nil), o.Hi...)}
}

// Analysis holds overlap estimates and actuals for the whole program.
type Analysis struct {
	// Estimates maps procedure → array → estimated offsets.
	Estimates map[string]map[string]*Offsets
	// actual overlaps recorded during code generation
	actual map[string]map[string]*Offsets
	// UseBuffer marks (proc, array) pairs whose actual overlap exceeded
	// the estimate: nonlocal data goes to buffers instead.
	UseBuffer map[string]map[string]bool
}

// ComputeEstimates runs the local-analysis and propagation phases of
// Figure 13: collect constant subscript offsets per procedure, merge
// them bottom-up through call sites (formal → actual), then push the
// merged estimates back down so every procedure sees uniform extents.
func ComputeEstimates(g *acg.Graph) *Analysis {
	a := &Analysis{
		Estimates: map[string]map[string]*Offsets{},
		actual:    map[string]map[string]*Offsets{},
		UseBuffer: map[string]map[string]bool{},
	}
	// local phase; the actual/UseBuffer rows are pre-created here so
	// that concurrent per-procedure code generation only ever writes a
	// row no other procedure touches
	for _, n := range g.TopoOrder() {
		a.Estimates[n.Name()] = localOffsets(n.Proc)
		a.actual[n.Name()] = map[string]*Offsets{}
		a.UseBuffer[n.Name()] = map[string]bool{}
	}
	// bottom-up merge: callee formals → caller actuals
	for _, n := range g.ReverseTopoOrder() {
		for _, site := range n.Callers {
			caller := a.Estimates[site.Caller.Name()]
			for name, offs := range a.Estimates[n.Name()] {
				target := translateName(site, name)
				if target == "" {
					continue
				}
				if cur, ok := caller[target]; ok {
					cur.Merge(offs)
				} else {
					caller[target] = offs.Clone()
				}
			}
		}
	}
	// top-down distribution of the global estimates
	for _, n := range g.TopoOrder() {
		caller := a.Estimates[n.Name()]
		for _, site := range n.Calls {
			callee := a.Estimates[site.Callee.Name()]
			for _, b := range site.Bindings {
				if b.ActualName == "" {
					continue
				}
				offs, ok := caller[b.ActualName]
				if !ok {
					continue
				}
				if cur, exists := callee[b.Formal]; exists {
					cur.Merge(offs)
				} else if isArrayFormal(site.Callee.Proc, b.Formal) {
					callee[b.Formal] = offs.Clone()
				}
			}
			// commons share by name
			for name, offs := range caller {
				if sym := site.Callee.Proc.Symbols.Lookup(name); sym != nil && sym.Common != "" {
					if cur, exists := callee[name]; exists {
						cur.Merge(offs)
					} else {
						callee[name] = offs.Clone()
					}
				}
			}
		}
	}
	return a
}

// localOffsets collects the constant offsets appearing in subscripts of
// each array of proc (the local analysis phase).
func localOffsets(proc *ast.Procedure) map[string]*Offsets {
	out := map[string]*Offsets{}
	env := ast.MapEnv{}
	for _, s := range proc.Symbols.Symbols() {
		if s.Kind == ast.SymConstant {
			env[s.Name] = s.ConstValue
		}
	}
	ast.WalkExprs(proc.Body, func(e ast.Expr) {
		ref, ok := e.(*ast.ArrayRef)
		if !ok {
			return
		}
		sym := proc.Symbols.Lookup(ref.Name)
		if sym == nil || sym.Kind != ast.SymArray {
			return
		}
		offs, exists := out[ref.Name]
		if !exists {
			offs = NewOffsets(len(ref.Subs))
			out[ref.Name] = offs
		}
		for d, sub := range ref.Subs {
			if d >= len(offs.Lo) {
				break
			}
			v, a, c, ok := depend.LinearSubscript(sub, env)
			if !ok || v == "" || a != 1 {
				continue
			}
			if c > offs.Hi[d] {
				offs.Hi[d] = c
			}
			if -c > offs.Lo[d] {
				offs.Lo[d] = -c
			}
		}
	})
	return out
}

func translateName(site *acg.CallSite, calleeName string) string {
	sym := site.Callee.Proc.Symbols.Lookup(calleeName)
	if sym == nil {
		return ""
	}
	if sym.Common != "" {
		return calleeName
	}
	if sym.IsFormal && sym.FormalIndex < len(site.Bindings) {
		return site.Bindings[sym.FormalIndex].ActualName
	}
	return ""
}

func isArrayFormal(proc *ast.Procedure, name string) bool {
	s := proc.Symbols.Lookup(name)
	return s != nil && s.IsFormal && s.Kind == ast.SymArray
}

// RecordActual registers an overlap actually required during code
// generation (dim extended by lo below / hi above). It returns true
// when the estimate covers the need (use the overlap region) and false
// when the compiler must fall back to a buffer for this array.
func (a *Analysis) RecordActual(proc, array string, dim, lo, hi int) bool {
	m := a.actual[proc]
	if m == nil {
		m = map[string]*Offsets{}
		a.actual[proc] = m
	}
	est := a.Estimates[proc][array]
	offs := m[array]
	if offs == nil {
		rank := 1
		if est != nil {
			rank = len(est.Lo)
		}
		if dim >= rank {
			rank = dim + 1
		}
		offs = NewOffsets(rank)
		m[array] = offs
	}
	if dim < len(offs.Lo) {
		if lo > offs.Lo[dim] {
			offs.Lo[dim] = lo
		}
		if hi > offs.Hi[dim] {
			offs.Hi[dim] = hi
		}
	}
	if est != nil && est.Covers(offs) {
		return true
	}
	bm := a.UseBuffer[proc]
	if bm == nil {
		bm = map[string]bool{}
		a.UseBuffer[proc] = bm
	}
	bm[array] = true
	return false
}

// Actual returns the overlaps actually used by (proc, array), nil when
// none were needed.
func (a *Analysis) Actual(proc, array string) *Offsets {
	return a.actual[proc][array]
}

// Extents reports the declared local extent of one dimension of a
// block-distributed array including its overlap region, e.g. blockSize
// 25 with offsets {-0,+5} gives [1:30] (the paper's REAL X(30)).
func (a *Analysis) Extents(proc, array string, dim, blockSize int) (lo, hi int) {
	offs := a.Estimates[proc][array]
	lo, hi = 1, blockSize
	if offs != nil && dim < len(offs.Lo) {
		lo -= offs.Lo[dim]
		hi += offs.Hi[dim]
	}
	return lo, hi
}

// Explain emits the overlap decisions for one procedure as remarks:
// the per-array overlap widths (Gerndt's overlap regions, §5.6) and
// any fallback to buffers when the actual need exceeded the
// program-wide estimate.
func (a *Analysis) Explain(ex *explain.Collector, proc string) {
	if !ex.Enabled() {
		return
	}
	names := make([]string, 0, len(a.Estimates[proc]))
	for name := range a.Estimates[proc] {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		offs := a.Estimates[proc][name]
		if offs == nil || offs.Zero() {
			continue
		}
		msg := fmt.Sprintf("overlap region for %s extends the local section by %s", name, offs)
		if used := a.actual[proc][name]; used != nil && !used.Zero() {
			msg += fmt.Sprintf("; %s used by generated communication", used)
		}
		ex.Add(explain.Remark{
			Kind: explain.Note, Pass: "overlap", Proc: proc, Name: "overlap",
			Msg: msg,
		})
	}
	bufNames := make([]string, 0, len(a.UseBuffer[proc]))
	for name, b := range a.UseBuffer[proc] {
		if b {
			bufNames = append(bufNames, name)
		}
	}
	sort.Strings(bufNames)
	for _, name := range bufNames {
		ex.Add(explain.Remark{
			Kind: explain.Missed, Pass: "overlap", Proc: proc, Name: "overlap",
			Msg: fmt.Sprintf("actual overlap for %s exceeds the program-wide estimate %s: nonlocal data falls back to buffers",
				name, a.Estimates[proc][name]),
		})
	}
}
