package overlap

import (
	"testing"

	"fortd/internal/acg"
	"fortd/internal/parser"
)

func estimates(t *testing.T, src string) *Analysis {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	return ComputeEstimates(g)
}

// TestFigure13Overlaps reproduces the §5.6 example: the reference
// Z(k+5,i) yields the overlap offset ({+5},0), propagated to the
// actual parameters X and Y of both call chains.
func TestFigure13Overlaps(t *testing.T) {
	a := estimates(t, `
      PROGRAM P1
      REAL X(100,100),Y(100,100)
      do i = 1,100
        call F1(X,i)
        call F1(Y,i)
      enddo
      END
      SUBROUTINE F1(Z,i)
      REAL Z(100,100)
      do k = 1,95
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`)
	f1 := a.Estimates["F1"]["Z"]
	if f1 == nil {
		t.Fatal("no estimate for Z in F1")
	}
	if f1.Hi[0] != 5 || f1.Lo[0] != 0 || f1.Hi[1] != 0 {
		t.Errorf("Z offsets = %v, want ({+5},0)", f1)
	}
	for _, arr := range []string{"X", "Y"} {
		e := a.Estimates["P1"][arr]
		if e == nil || e.Hi[0] != 5 {
			t.Errorf("%s estimate = %v, want +5 in dim 0", arr, e)
		}
	}
}

// TestExtentsMatchPaper: block size 25 with offset +5 declares [1:30],
// the paper's REAL X(30).
func TestExtentsMatchPaper(t *testing.T) {
	a := estimates(t, `
      PROGRAM P
      REAL X(100)
      call F1(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
        X(i) = F(X(i+5))
      enddo
      END
`)
	lo, hi := a.Extents("F1", "X", 0, 25)
	if lo != 1 || hi != 30 {
		t.Errorf("extent = [%d:%d], want [1:30]", lo, hi)
	}
}

// TestNegativeOffsets: X(i-2) extends the low side.
func TestNegativeOffsets(t *testing.T) {
	a := estimates(t, `
      PROGRAM P
      REAL X(100)
      do i = 3,100
        X(i) = X(i-2)
      enddo
      END
`)
	e := a.Estimates["P"]["X"]
	if e.Lo[0] != 2 || e.Hi[0] != 0 {
		t.Errorf("offsets = %v, want ({-2},0)", e)
	}
	lo, hi := a.Extents("P", "X", 0, 25)
	if lo != -1 || hi != 25 {
		t.Errorf("extent = [%d:%d], want [-1:25]", lo, hi)
	}
}

// TestRecordActualWithinEstimate: actual overlaps covered by the
// estimate keep the overlap strategy.
func TestRecordActualWithinEstimate(t *testing.T) {
	a := estimates(t, `
      PROGRAM P
      REAL X(100)
      do i = 1,95
        X(i) = X(i+5)
      enddo
      END
`)
	if !a.RecordActual("P", "X", 0, 0, 5) {
		t.Error("overlap within estimate rejected")
	}
	if a.UseBuffer["P"]["X"] {
		t.Error("buffer wrongly selected")
	}
	got := a.Actual("P", "X")
	if got == nil || got.Hi[0] != 5 {
		t.Errorf("actual = %v", got)
	}
}

// TestRecordActualExceedsEstimate: a larger-than-estimated overlap
// falls back to buffers (the paper's estimate-failure path).
func TestRecordActualExceedsEstimate(t *testing.T) {
	a := estimates(t, `
      PROGRAM P
      REAL X(100)
      do i = 1,95
        X(i) = X(i+5)
      enddo
      END
`)
	if a.RecordActual("P", "X", 0, 0, 9) {
		t.Error("overlap beyond estimate accepted")
	}
	if !a.UseBuffer["P"]["X"] {
		t.Error("buffer fallback not recorded")
	}
}

// TestMergeAndCovers exercises the Offsets lattice.
func TestMergeAndCovers(t *testing.T) {
	a := NewOffsets(2)
	b := NewOffsets(2)
	b.Hi[0] = 3
	b.Lo[1] = 1
	if !a.Merge(b) {
		t.Error("merge should change a")
	}
	if a.Merge(b) {
		t.Error("second merge should be a no-op")
	}
	if !a.Covers(b) {
		t.Error("a must cover b after merge")
	}
	c := NewOffsets(2)
	c.Hi[0] = 4
	if a.Covers(c) {
		t.Error("a must not cover the wider c")
	}
	if a.Zero() {
		t.Error("a is not zero")
	}
	if !NewOffsets(3).Zero() {
		t.Error("fresh offsets must be zero")
	}
}

// TestCommonBlockOverlaps: offsets flow through common blocks by name.
func TestCommonBlockOverlaps(t *testing.T) {
	a := estimates(t, `
      PROGRAM P
      COMMON /blk/ G(100)
      call S
      END
      SUBROUTINE S
      COMMON /blk/ G(100)
      do i = 1,97
        G(i) = G(i+3)
      enddo
      END
`)
	if e := a.Estimates["P"]["G"]; e == nil || e.Hi[0] != 3 {
		t.Errorf("common overlap estimate = %v, want +3", e)
	}
}

// TestTopDownDistribution: an offset discovered in one caller reaches
// a sibling callee through the shared array.
func TestTopDownDistribution(t *testing.T) {
	a := estimates(t, `
      PROGRAM P
      REAL X(100)
      call reader(X)
      call writer(X)
      END
      SUBROUTINE reader(U)
      REAL U(100)
      do i = 1,96
        y = y + U(i+4)
      enddo
      END
      SUBROUTINE writer(V)
      REAL V(100)
      do i = 1,100
        V(i) = 1.0
      enddo
      END
`)
	// writer itself needs no overlap, but program-wide consistency
	// pushes the +4 estimate down to its formal
	if e := a.Estimates["writer"]["V"]; e == nil || e.Hi[0] != 4 {
		t.Errorf("writer estimate = %v, want +4 pushed down", e)
	}
}
