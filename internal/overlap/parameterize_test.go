package overlap

import (
	"strings"
	"testing"

	"fortd/internal/ast"
	"fortd/internal/parser"
	"fortd/internal/spmd"
)

const fig14Input = `
      PROGRAM P1
      REAL X(30)
      call F1(X)
      do i = 26,30
        X(i) = 0.0
      enddo
      END
      SUBROUTINE F1(X)
      REAL X(30)
      do i = 1,25
        X(i) = F(X(i+5))
      enddo
      END
`

// TestFigure14Parameterize reproduces Figure 14: the overlap extent of
// F1's formal X becomes a pair of arguments, the declaration becomes
// adjustable, and the call site passes (1, 30).
func TestFigure14Parameterize(t *testing.T) {
	prog, err := parser.Parse(fig14Input)
	if err != nil {
		t.Fatal(err)
	}
	if err := Parameterize(prog, "F1", "X", 0, 1, 30); err != nil {
		t.Fatal(err)
	}
	text := ast.Print(prog)
	for _, want := range []string{
		"SUBROUTINE F1(X,Xlo,Xhi)",
		"REAL X(Xlo:Xhi)",
		"call F1(X,1,30)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// the transformed program still runs (adjustable bounds)
	res, err := spmd.RunSequential(prog, spmd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arrays["X"]) != 30 {
		t.Errorf("X size = %d", len(res.Arrays["X"]))
	}
}

func TestParameterizeRejectsNonFormal(t *testing.T) {
	prog, err := parser.Parse(`
      PROGRAM P
      REAL X(10)
      X(1) = 0.0
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Parameterize(prog, "P", "X", 0, 1, 12); err == nil {
		t.Error("non-formal array must be rejected (common/global overlaps stay static)")
	}
}

func TestParameterizeRejectsUnknown(t *testing.T) {
	prog, err := parser.Parse(fig14Input)
	if err != nil {
		t.Fatal(err)
	}
	if err := Parameterize(prog, "NOPE", "X", 0, 1, 30); err == nil {
		t.Error("unknown procedure accepted")
	}
	if err := Parameterize(prog, "F1", "Q", 0, 1, 30); err == nil {
		t.Error("unknown array accepted")
	}
	if err := Parameterize(prog, "F1", "X", 3, 1, 30); err == nil {
		t.Error("bad dimension accepted")
	}
}

func TestParameterizeIdempotenceGuard(t *testing.T) {
	prog, err := parser.Parse(fig14Input)
	if err != nil {
		t.Fatal(err)
	}
	if err := Parameterize(prog, "F1", "X", 0, 1, 30); err != nil {
		t.Fatal(err)
	}
	if err := Parameterize(prog, "F1", "X", 0, 1, 30); err == nil {
		t.Error("double parameterization accepted")
	}
}
