package overlap

import (
	"fmt"

	"fortd/internal/ast"
)

// Parameterize applies the Figure 14 transformation: instead of
// compiling a fixed overlap extent into a formal array's declaration,
// the extents become additional procedure arguments supplied by the
// callers as compile-time constants —
//
//	SUBROUTINE F1(X,Xlo,Xhi)
//	REAL X(Xlo:Xhi)
//
// with every call site rewritten to pass the extents (e.g.
// call F1(X,1,30)). Only formal arrays can be parameterized; overlaps
// for common-block arrays must stay static (§5.6).
//
// dim selects the distributed dimension whose extent is parameterized;
// lo and hi give the local extent including the overlap region.
func Parameterize(prog *ast.Program, procName, array string, dim, lo, hi int) error {
	proc := prog.Proc(procName)
	if proc == nil {
		return fmt.Errorf("overlap: no procedure %s", procName)
	}
	sym := proc.Symbols.Lookup(array)
	if sym == nil || sym.Kind != ast.SymArray {
		return fmt.Errorf("overlap: %s has no array %s", procName, array)
	}
	if !sym.IsFormal {
		return fmt.Errorf("overlap: %s is not a formal parameter of %s; only formal arrays can be parameterized", array, procName)
	}
	if dim < 0 || dim >= len(sym.Dims) {
		return fmt.Errorf("overlap: %s has no dimension %d", array, dim)
	}
	loName := array + "lo"
	hiName := array + "hi"
	if proc.Symbols.Lookup(loName) != nil || proc.Symbols.Lookup(hiName) != nil {
		return fmt.Errorf("overlap: %s already has %s/%s", procName, loName, hiName)
	}

	// extend the formal parameter list
	base := len(proc.Params)
	proc.Params = append(proc.Params, loName, hiName)
	proc.Symbols.Define(&ast.Symbol{
		Name: loName, Kind: ast.SymScalar, Type: ast.TypeInteger,
		IsFormal: true, FormalIndex: base,
	})
	proc.Symbols.Define(&ast.Symbol{
		Name: hiName, Kind: ast.SymScalar, Type: ast.TypeInteger,
		IsFormal: true, FormalIndex: base + 1,
	})
	// adjustable declaration
	sym.Dims[dim] = ast.Extent{Lo: ast.Id(loName), Hi: ast.Id(hiName)}

	// rewrite every call site to pass the extents
	for _, u := range prog.Units {
		ast.WalkStmts(u.Body, func(s ast.Stmt) bool {
			call, ok := s.(*ast.Call)
			if !ok || call.Name != procName {
				return true
			}
			call.Args = append(call.Args, ast.Int(lo), ast.Int(hi))
			return true
		})
	}
	return nil
}
