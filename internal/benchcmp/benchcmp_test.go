package benchcmp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snapshot() []Result {
	return []Result{
		{Name: "dgefa", WallNs: 10_000_000, Words: 5000, Msgs: 400, Jobs: 1, CacheHitRate: 1.0},
		{Name: "jacobi", WallNs: 5_000_000, Words: 2000, Msgs: 100, Jobs: 1, CacheHitRate: 1.0},
	}
}

// TestIdenticalSnapshotsPass: comparing a snapshot against itself
// finds no regressions.
func TestIdenticalSnapshotsPass(t *testing.T) {
	c := Compare(snapshot(), snapshot(), 0.10)
	if regs := c.Regressions(); len(regs) != 0 {
		t.Errorf("identical snapshots regressed: %+v", regs)
	}
	if len(c.Deltas) != 8 {
		t.Errorf("deltas = %d, want 8 (2 workloads x 4 metrics)", len(c.Deltas))
	}
}

// TestInjectedTimeRegression: an old snapshot with 20% better time
// must trip the 10% gate (the acceptance criterion's synthetic case).
func TestInjectedTimeRegression(t *testing.T) {
	old := snapshot()
	cur := snapshot()
	old[0].WallNs = int64(float64(cur[0].WallNs) / 1.25) // old is 20% faster
	c := Compare(old, cur, 0.10)
	regs := c.Regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the dgefa wall_ns delta", regs)
	}
	if regs[0].Workload != "dgefa" || regs[0].Metric != "wall_ns" {
		t.Errorf("regressed %s/%s, want dgefa/wall_ns", regs[0].Workload, regs[0].Metric)
	}
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("table does not mark the regression:\n%s", buf.String())
	}
}

// TestWithinThresholdPasses: a change smaller than the threshold is a
// delta but not a regression.
func TestWithinThresholdPasses(t *testing.T) {
	old := snapshot()
	cur := snapshot()
	cur[1].Words = old[1].Words + old[1].Words/20 // +5%
	if regs := Compare(old, cur, 0.10).Regressions(); len(regs) != 0 {
		t.Errorf("5%% drift regressed at 10%% threshold: %+v", regs)
	}
}

// TestImprovementNeverRegresses: getting faster, lighter or
// better-cached is never flagged.
func TestImprovementNeverRegresses(t *testing.T) {
	old := snapshot()
	cur := snapshot()
	cur[0].WallNs /= 2
	cur[0].Words /= 2
	cur[0].CacheHitRate = 1.0
	if regs := Compare(old, cur, 0.10).Regressions(); len(regs) != 0 {
		t.Errorf("improvement regressed: %+v", regs)
	}
}

// TestCacheHitRateDirection: the hit rate is higher-better, so a drop
// regresses and a rise does not.
func TestCacheHitRateDirection(t *testing.T) {
	old := snapshot()
	cur := snapshot()
	cur[0].CacheHitRate = 0.5 // halved
	regs := Compare(old, cur, 0.10).Regressions()
	if len(regs) != 1 || regs[0].Metric != "cache_hit_rate" {
		t.Errorf("regressions = %+v, want one cache_hit_rate delta", regs)
	}
}

// TestZeroBaseline: a zero old metric must never produce an Inf/NaN
// delta. A baseline cache_hit_rate of 0 (cold run) rising to 1.0 is an
// improvement, not a regression; a cost metric appearing from zero is
// fully worse; zero-to-zero is no change.
func TestZeroBaseline(t *testing.T) {
	old := snapshot()
	cur := snapshot()
	old[0].CacheHitRate = 0 // cold baseline
	old[1].Words, cur[1].Words = 0, 2000
	old[1].Msgs, cur[1].Msgs = 0, 0
	c := Compare(old, cur, 0.10)
	for _, d := range c.Deltas {
		if d.Pct != d.Pct || d.Pct > 1e308 || d.Pct < -1e308 {
			t.Errorf("%s/%s: Pct = %v, want finite", d.Workload, d.Metric, d.Pct)
		}
	}
	find := func(workload, metric string) Delta {
		for _, d := range c.Deltas {
			if d.Workload == workload && d.Metric == metric {
				return d
			}
		}
		t.Fatalf("no delta for %s/%s", workload, metric)
		return Delta{}
	}
	if d := find("dgefa", "cache_hit_rate"); d.Pct != -1 || d.Regressed {
		t.Errorf("hit rate 0 -> 1.0: Pct = %v regressed = %v, want -1, false", d.Pct, d.Regressed)
	}
	if d := find("jacobi", "words"); d.Pct != 1 || !d.Regressed {
		t.Errorf("words 0 -> 2000: Pct = %v regressed = %v, want 1, true", d.Pct, d.Regressed)
	}
	if d := find("jacobi", "msgs"); d.Pct != 0 || d.Regressed {
		t.Errorf("msgs 0 -> 0: Pct = %v regressed = %v, want 0, false", d.Pct, d.Regressed)
	}
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Errorf("table renders Inf/NaN:\n%s", out)
	}
}

// TestBlockedShareDelta: blocked_share and imbalance are compared
// lower-better once both snapshots carry them, and skipped (not read
// as appeared-from-zero regressions) against a snapshot predating the
// metrics.
func TestBlockedShareDelta(t *testing.T) {
	old := snapshot()
	cur := snapshot()
	for i := range old {
		old[i].BlockedShare, cur[i].BlockedShare = 0.20, 0.20
		old[i].Imbalance, cur[i].Imbalance = 1.05, 1.05
	}
	cur[0].BlockedShare = 0.25 // +25% blocked time on dgefa
	regs := Compare(old, cur, 0.10).Regressions()
	if len(regs) != 1 || regs[0].Workload != "dgefa" || regs[0].Metric != "blocked_share" {
		t.Errorf("regressions = %+v, want one dgefa/blocked_share delta", regs)
	}
	var buf bytes.Buffer
	if err := Compare(old, cur, 0.10).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "blocked_share") {
		t.Errorf("table lacks blocked_share:\n%s", buf.String())
	}

	// pre-metric old snapshot: no baseline, no delta, no regression
	legacy := snapshot() // BlockedShare/Imbalance zero
	c := Compare(legacy, cur, 0.10)
	if regs := c.Regressions(); len(regs) != 0 {
		t.Errorf("missing blocked_share baseline regressed: %+v", regs)
	}
	for _, d := range c.Deltas {
		if d.Metric == "blocked_share" || d.Metric == "imbalance" {
			t.Errorf("delta emitted without baseline: %+v", d)
		}
	}
}

// TestMissingWorkloads: new workloads have no baseline and are
// reported, not flagged; removed workloads are ignored.
func TestMissingWorkloads(t *testing.T) {
	old := snapshot()[:1] // dgefa only
	cur := snapshot()     // dgefa + jacobi
	c := Compare(old, cur, 0.10)
	if len(c.MissingOld) != 1 || c.MissingOld[0] != "jacobi" {
		t.Errorf("MissingOld = %v", c.MissingOld)
	}
	if regs := c.Regressions(); len(regs) != 0 {
		t.Errorf("missing baseline regressed: %+v", regs)
	}
	// reversed: removed workload is simply dropped
	c = Compare(snapshot(), snapshot()[:1], 0.10)
	if len(c.Deltas) != 4 {
		t.Errorf("deltas = %d, want 4", len(c.Deltas))
	}
}

// TestLoadRoundTrip writes a snapshot the way fdbench does and loads
// it back.
func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	data, err := json.MarshalIndent(snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != snapshot()[0] {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load(missing) = nil error")
	}
}
