// Package benchcmp loads and compares fdbench snapshot files
// (BENCH_<yyyymmdd>.json): per-workload deltas of wall-clock time,
// communication volume and cache hit rate between an old and a new
// snapshot, with a relative threshold that classifies each delta as a
// regression or not. cmd/fdbench uses it for `-against`, and ci.sh
// runs that comparison as a soft gate against the committed snapshot.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Result is one workload's snapshot entry — the serialized form
// cmd/fdbench writes. Field order is the JSON key order; add new
// fields at the end to keep snapshot diffs readable.
type Result struct {
	Name string `json:"name"`
	// WallNs is the best-of-N wall-clock time for one compile plus one
	// simulated run, in nanoseconds.
	WallNs int64 `json:"wall_ns"`
	// Words and Msgs are the simulated run's communication totals —
	// the figures of merit the paper compares.
	Words int64 `json:"words"`
	Msgs  int64 `json:"msgs"`
	// Jobs is the code-generation worker count the compiles ran with.
	Jobs int `json:"jobs"`
	// CacheHitRate is the summary-cache hit fraction of a warm
	// recompile (1.0 = every procedure reused).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// BlockedShare is the blocked fraction of total processor time in
	// the workload's traced run — the baseline ROADMAP item 1's overlap
	// pass must beat. Imbalance is the max-over-mean busy-time ratio
	// (1.0 = perfectly balanced). Both are 0 in snapshots predating
	// their introduction, which Compare treats as "no baseline".
	BlockedShare float64 `json:"blocked_share"`
	Imbalance    float64 `json:"imbalance"`
}

// Load reads a snapshot file.
func Load(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %w", path, err)
	}
	return rs, nil
}

// Delta is one (workload, metric) comparison. Pct is the relative
// change in the direction where positive means worse (so +0.25 on
// wall_ns means 25% slower; +0.25 on cache_hit_rate means the hit rate
// dropped by 25% of its old value).
type Delta struct {
	Workload string
	Metric   string
	Old, New float64
	Pct      float64
	// Regressed is Pct > the comparison's threshold.
	Regressed bool
}

// Comparison is the full old-vs-new delta set.
type Comparison struct {
	Threshold float64
	Deltas    []Delta
	// MissingOld lists workloads present only in the new snapshot (no
	// baseline — informational, never a regression).
	MissingOld []string
}

// metric describes how to read and judge one Result field.
type metric struct {
	name string
	get  func(Result) float64
	// lowerBetter: a higher new value is worse. Otherwise higher is
	// better (cache hit rate).
	lowerBetter bool
	// needsBaseline: a zero old value means the metric predates the old
	// snapshot, so the pair is skipped instead of read as "cost
	// appeared from zero".
	needsBaseline bool
}

var metrics = []metric{
	{name: "wall_ns", get: func(r Result) float64 { return float64(r.WallNs) }, lowerBetter: true},
	{name: "words", get: func(r Result) float64 { return float64(r.Words) }, lowerBetter: true},
	{name: "msgs", get: func(r Result) float64 { return float64(r.Msgs) }, lowerBetter: true},
	{name: "cache_hit_rate", get: func(r Result) float64 { return r.CacheHitRate }},
	{name: "blocked_share", get: func(r Result) float64 { return r.BlockedShare }, lowerBetter: true, needsBaseline: true},
	{name: "imbalance", get: func(r Result) float64 { return r.Imbalance }, lowerBetter: true, needsBaseline: true},
}

// Compare computes per-workload deltas between two snapshots. A metric
// regresses when it is worse than the old value by more than threshold
// (relative, e.g. 0.1 = 10%). Workloads missing from the old snapshot
// are reported in MissingOld; workloads missing from the new one are
// ignored (a removed workload is a repo decision, not a regression).
func Compare(old, new []Result, threshold float64) *Comparison {
	c := &Comparison{Threshold: threshold}
	byName := map[string]Result{}
	for _, r := range old {
		byName[r.Name] = r
	}
	sorted := append([]Result(nil), new...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, nr := range sorted {
		or, ok := byName[nr.Name]
		if !ok {
			c.MissingOld = append(c.MissingOld, nr.Name)
			continue
		}
		for _, m := range metrics {
			ov, nv := m.get(or), m.get(nr)
			if m.needsBaseline && ov == 0 {
				continue // metric absent from the old snapshot: no baseline
			}
			d := Delta{Workload: nr.Name, Metric: m.name, Old: ov, New: nv}
			switch {
			case ov != 0:
				if m.lowerBetter {
					d.Pct = (nv - ov) / ov
				} else {
					d.Pct = (ov - nv) / ov
				}
			case nv == 0:
				// zero to zero: no change, and never a division by zero
			case m.lowerBetter:
				d.Pct = 1 // cost appeared from zero: treat as fully worse
			default:
				d.Pct = -1 // benefit appeared from zero (e.g. a cold
				// baseline's cache_hit_rate of 0): fully better
			}
			d.Regressed = d.Pct > threshold
			c.Deltas = append(c.Deltas, d)
		}
	}
	return c
}

// Regressions returns the deltas beyond the threshold.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// WriteText renders the comparison table; regressed rows are marked.
func (c *Comparison) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-10s %-15s %14s %14s %8s\n",
		"workload", "metric", "old", "new", "delta"); err != nil {
		return err
	}
	for _, d := range c.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(w, "%-10s %-15s %14s %14s %+7.1f%%%s\n",
			d.Workload, d.Metric, fmtVal(d.Metric, d.Old), fmtVal(d.Metric, d.New),
			100*rawPct(d), mark)
	}
	for _, name := range c.MissingOld {
		fmt.Fprintf(w, "%-10s (no baseline in old snapshot)\n", name)
	}
	if regs := c.Regressions(); len(regs) > 0 {
		fmt.Fprintf(w, "%d metric(s) regressed beyond %.0f%%\n", len(regs), 100*c.Threshold)
	}
	return nil
}

// Table renders the comparison as (header, rows) for the HTML report.
func (c *Comparison) Table() ([]string, [][]string) {
	header := []string{"workload", "metric", "old", "new", "delta", ""}
	var rows [][]string
	for _, d := range c.Deltas {
		mark := ""
		if d.Regressed {
			mark = "REGRESSED"
		}
		rows = append(rows, []string{
			d.Workload, d.Metric, fmtVal(d.Metric, d.Old), fmtVal(d.Metric, d.New),
			fmt.Sprintf("%+.1f%%", 100*rawPct(d)), mark,
		})
	}
	return header, rows
}

// rawPct converts the worse-positive Pct back to the plain new-vs-old
// relative change for display. A metric appearing from a zero baseline
// has no finite relative change; it is shown as +100% rather than ±Inf.
func rawPct(d Delta) float64 {
	if d.Old == 0 {
		if d.New == 0 {
			return 0
		}
		return 1
	}
	return (d.New - d.Old) / d.Old
}

func fmtVal(metric string, v float64) string {
	switch metric {
	case "cache_hit_rate":
		return fmt.Sprintf("%.2f", v)
	case "blocked_share", "imbalance":
		return fmt.Sprintf("%.3f", v)
	}
	return fmt.Sprintf("%.0f", v)
}
