// Package sideeffect computes interprocedural scalar and array
// side-effect summaries: GMOD(P) and GREF(P), the sets of formal
// parameters, common-block variables and locally visible names that may
// be modified or referenced by P or its descendants in the call graph,
// and Appear(P) = GMOD(P) ∪ GREF(P), the set the procedure-cloning
// algorithm of Figure 8 filters reaching decompositions against.
package sideeffect

import (
	"fortd/internal/acg"
	"fortd/internal/ast"
	"fortd/internal/dataflow"
)

// Summary holds the side-effect sets for one procedure, expressed in
// terms of that procedure's own name space (formals and globals).
type Summary struct {
	Mod dataflow.Set // GMOD: may be modified by P or descendants
	Ref dataflow.Set // GREF: may be referenced by P or descendants
}

// Appear returns GMOD ∪ GREF.
func (s *Summary) Appear() dataflow.Set {
	out := s.Mod.Clone()
	out.Union(s.Ref)
	return out
}

// Analysis maps each procedure name to its summary.
type Analysis struct {
	Summaries map[string]*Summary
}

// Compute solves GMOD/GREF bottom-up over the acyclic call graph: local
// effects first, then callee summaries translated through each call
// site's formal→actual bindings.
func Compute(g *acg.Graph) *Analysis {
	a := &Analysis{Summaries: make(map[string]*Summary)}
	for _, n := range g.ReverseTopoOrder() {
		sum := &Summary{Mod: dataflow.NewSet(), Ref: dataflow.NewSet()}
		collectLocal(n.Proc, sum)
		for _, site := range n.Calls {
			calleeSum := a.Summaries[site.Callee.Name()]
			if calleeSum == nil {
				continue
			}
			translate(site, calleeSum.Mod, sum.Mod)
			translate(site, calleeSum.Ref, sum.Ref)
		}
		// restrict to names visible to callers: formals and commons;
		// purely local effects do not escape, but keep them for the
		// procedure's own use — callers translate through formals only.
		a.Summaries[n.Name()] = sum
	}
	return a
}

// collectLocal records the directly-referenced and directly-modified
// variables of proc.
func collectLocal(proc *ast.Procedure, sum *Summary) {
	var exprRefs func(e ast.Expr)
	exprRefs = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Ident:
			sum.Ref[x.Name] = struct{}{}
		case *ast.ArrayRef:
			sum.Ref[x.Name] = struct{}{}
			for _, s := range x.Subs {
				exprRefs(s)
			}
		case *ast.FuncCall:
			for _, a := range x.Args {
				exprRefs(a)
			}
		case *ast.Binary:
			exprRefs(x.X)
			exprRefs(x.Y)
		case *ast.Unary:
			exprRefs(x.X)
		}
	}
	ast.WalkStmts(proc.Body, func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.Assign:
			switch lhs := st.Lhs.(type) {
			case *ast.Ident:
				sum.Mod[lhs.Name] = struct{}{}
			case *ast.ArrayRef:
				sum.Mod[lhs.Name] = struct{}{}
				for _, sub := range lhs.Subs {
					exprRefs(sub)
				}
			}
			exprRefs(st.Rhs)
		case *ast.Do:
			sum.Mod[st.Var] = struct{}{}
			exprRefs(st.Lo)
			exprRefs(st.Hi)
			if st.Step != nil {
				exprRefs(st.Step)
			}
		case *ast.If:
			exprRefs(st.Cond)
		case *ast.Call:
			// handled interprocedurally; subscripts of array-section
			// actuals still count as local references
			for _, a := range st.Args {
				if ar, ok := a.(*ast.ArrayRef); ok {
					for _, sub := range ar.Subs {
						exprRefs(sub)
					}
				}
			}
		}
		return true
	})
}

// translate maps a callee-side effect set through a call site into the
// caller's name space: formals become the corresponding actual names;
// common variables keep their names; callee locals are dropped.
func translate(site *acg.CallSite, calleeSet, out dataflow.Set) {
	callee := site.Callee.Proc
	for name := range calleeSet {
		sym := callee.Symbols.Lookup(name)
		if sym == nil {
			continue
		}
		switch {
		case sym.IsFormal:
			if sym.FormalIndex < len(site.Bindings) {
				b := site.Bindings[sym.FormalIndex]
				if b.ActualName != "" {
					out[b.ActualName] = struct{}{}
				}
			}
		case sym.Common != "":
			out[name] = struct{}{}
		}
	}
}

// AppearSet returns Appear(P) for the named procedure ("" sets for
// unknown procedures, which arise only for external routines).
func (a *Analysis) AppearSet(name string) dataflow.Set {
	if s, ok := a.Summaries[name]; ok {
		return s.Appear()
	}
	return dataflow.NewSet()
}
