package sideeffect

import (
	"testing"

	"fortd/internal/acg"
	"fortd/internal/parser"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	return Compute(g)
}

func TestLocalModRef(t *testing.T) {
	a := analyze(t, `
      PROGRAM P
      REAL X(10), Y(10)
      do i = 1,10
        X(i) = Y(i)
      enddo
      END
`)
	s := a.Summaries["P"]
	if !s.Mod.Has("X") {
		t.Error("X not in GMOD")
	}
	if !s.Ref.Has("Y") {
		t.Error("Y not in GREF")
	}
	if s.Mod.Has("Y") {
		t.Error("Y wrongly in GMOD")
	}
}

// TestInterproceduralTranslation: modifications through a formal are
// visible to the caller under the actual's name.
func TestInterproceduralTranslation(t *testing.T) {
	a := analyze(t, `
      PROGRAM P
      REAL A(10), B(10)
      call S(A,B)
      END
      SUBROUTINE S(X,Y)
      REAL X(10), Y(10)
      do i = 1,10
        X(i) = Y(i)
      enddo
      END
`)
	p := a.Summaries["P"]
	if !p.Mod.Has("A") {
		t.Errorf("A not in GMOD(P): %v", p.Mod.Members())
	}
	if !p.Ref.Has("B") {
		t.Errorf("B not in GREF(P): %v", p.Ref.Members())
	}
	if p.Mod.Has("B") {
		t.Error("B wrongly in GMOD(P)")
	}
}

func TestTransitiveThroughChain(t *testing.T) {
	a := analyze(t, `
      PROGRAM P
      REAL A(10)
      call S1(A)
      END
      SUBROUTINE S1(X)
      REAL X(10)
      call S2(X)
      END
      SUBROUTINE S2(Z)
      REAL Z(10)
      Z(1) = 1.0
      END
`)
	if !a.Summaries["S1"].Mod.Has("X") {
		t.Error("X not in GMOD(S1)")
	}
	if !a.Summaries["P"].Mod.Has("A") {
		t.Error("A not in GMOD(P)")
	}
}

func TestCommonBlockEffects(t *testing.T) {
	a := analyze(t, `
      PROGRAM P
      COMMON /blk/ G(10)
      call S
      END
      SUBROUTINE S
      COMMON /blk/ G(10)
      G(1) = 2.0
      END
`)
	if !a.Summaries["P"].Mod.Has("G") {
		t.Errorf("common G not in GMOD(P): %v", a.Summaries["P"].Mod.Members())
	}
}

// TestAppearFigure4: Appear(F1) contains the formal Z, which is what the
// cloning algorithm filters reaching decompositions against.
func TestAppearFigure4(t *testing.T) {
	a := analyze(t, `
      PROGRAM P1
      REAL X(100,100),Y(100,100)
      do i = 1,100
        call F1(X,i)
        call F1(Y,i)
      enddo
      END
      SUBROUTINE F1(Z,i)
      REAL Z(100,100)
      call F2(Z,i)
      END
      SUBROUTINE F2(Z,i)
      REAL Z(100,100)
      do k = 1,100
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`)
	ap := a.AppearSet("F1")
	if !ap.Has("Z") {
		t.Errorf("Appear(F1) = %v, missing Z", ap.Members())
	}
	if !ap.Has("i") {
		t.Errorf("Appear(F1) = %v, missing i (passed through to F2's loop body)", ap.Members())
	}
	// locals of F2 do not leak
	if ap.Has("k") {
		t.Errorf("Appear(F1) leaks F2-local k: %v", ap.Members())
	}
}

func TestUnknownProcedureAppear(t *testing.T) {
	a := analyze(t, `
      PROGRAM P
      x = 1
      END
`)
	if got := a.AppearSet("nosuch"); len(got) != 0 {
		t.Errorf("unknown proc Appear = %v", got.Members())
	}
}
