package acg

import (
	"testing"

	"fortd/internal/parser"
)

const fig4Src = `
      PROGRAM P1
      REAL X(100,100),Y(100,100)
      PARAMETER (n$proc = 4)
      ALIGN Y(i,j) with X(j,i)
      DISTRIBUTE X(BLOCK,:)
      do i = 1,100
S1      call F1(X,i)
      enddo
      do j = 1,100
S2      call F1(Y,j)
      enddo
      END
      SUBROUTINE F1(Z,i)
      REAL Z(100,100)
S3    call F2(Z,i)
      END
      SUBROUTINE F2(Z,i)
      REAL Z(100,100)
      do k = 1,100
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
`

// TestFigure5ACG reproduces the augmented call graph of Figure 5: P1 has
// two loops i and j, both containing calls to F1; F1 calls F2, which in
// turn contains loop k. The annotation binds formal i in F1 to the index
// variable of a loop in P1 iterating from 1 to 100 with step 1.
func TestFigure5ACG(t *testing.T) {
	prog, err := parser.Parse(fig4Src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	p1 := g.Nodes["P1"]
	f1 := g.Nodes["F1"]
	f2 := g.Nodes["F2"]
	if p1 == nil || f1 == nil || f2 == nil {
		t.Fatal("missing nodes")
	}
	if len(p1.Calls) != 2 {
		t.Fatalf("P1 has %d call sites", len(p1.Calls))
	}
	if len(f1.Callers) != 2 || len(f1.Calls) != 1 {
		t.Fatalf("F1 callers/calls = %d/%d", len(f1.Callers), len(f1.Calls))
	}
	if len(f2.Callers) != 1 || len(f2.Calls) != 0 {
		t.Fatalf("F2 callers/calls = %d/%d", len(f2.Callers), len(f2.Calls))
	}
	// nesting: both calls in P1 are inside one loop
	for _, site := range p1.Calls {
		if len(site.Nest) != 1 {
			t.Errorf("call site nest depth = %d", len(site.Nest))
		}
	}
	// the Figure 5 annotation: formal i bound to loop [1:100:1]
	s1 := p1.Calls[0]
	b := s1.Bindings[1]
	if b.Formal != "i" || b.LoopIndex == nil {
		t.Fatalf("binding = %+v", b)
	}
	li := b.LoopIndex
	if !li.Constant || li.Lo != 1 || li.Hi != 100 || li.Step != 1 {
		t.Errorf("loop annotation = %+v", li)
	}
	// array binding
	if s1.Bindings[0].Formal != "Z" || s1.Bindings[0].ActualName != "X" {
		t.Errorf("array binding = %+v", s1.Bindings[0])
	}
}

func TestTopoOrders(t *testing.T) {
	prog, err := parser.Parse(fig4Src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	topo := g.TopoOrder()
	pos := map[string]int{}
	for i, n := range topo {
		pos[n.Name()] = i
	}
	if !(pos["P1"] < pos["F1"] && pos["F1"] < pos["F2"]) {
		t.Errorf("topo order wrong: %v", pos)
	}
	rev := g.ReverseTopoOrder()
	if rev[0].Name() != "F2" || rev[len(rev)-1].Name() != "P1" {
		t.Errorf("reverse topo = %v..%v", rev[0].Name(), rev[len(rev)-1].Name())
	}
}

func TestRecursionRejected(t *testing.T) {
	src := `
      PROGRAM P
      call A
      END
      SUBROUTINE A
      call B
      END
      SUBROUTINE B
      call A
      END
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(prog); err == nil {
		t.Error("recursion must be rejected")
	}
}

func TestExternalCallsIgnored(t *testing.T) {
	src := `
      PROGRAM P
      call extern(1)
      END
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sites) != 0 {
		t.Errorf("external call created %d sites", len(g.Sites))
	}
}

func TestCallOutsideLoop(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(10)
      call S(X)
      END
      SUBROUTINE S(X)
      REAL X(10)
      X(1) = 0.0
      END
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sites) != 1 || len(g.Sites[0].Nest) != 0 {
		t.Errorf("sites = %+v", g.Sites)
	}
}
