// Package acg builds the augmented call graph (ACG) of §5.1 (Figure 5):
// a call graph whose nodes are procedures, whose edges are call sites,
// augmented with loop nodes and nesting edges recording which loops
// enclose each call, and with annotations binding formal parameters to
// the loop index variables (and their ranges) passed at call sites.
package acg

import (
	"fmt"
	"sort"

	"fortd/internal/ast"
)

// LoopInfo describes one loop that encloses a call site, with constant
// bounds where they could be evaluated.
type LoopInfo struct {
	Var      string
	Lo, Hi   int
	Step     int
	Constant bool // bounds and step evaluated to constants
	Loop     *ast.Do
}

func (l LoopInfo) String() string {
	if l.Constant {
		return fmt.Sprintf("%s=[%d:%d:%d]", l.Var, l.Lo, l.Hi, l.Step)
	}
	return l.Var + "=[?]"
}

// ArgBinding relates a callee formal parameter to the actual passed at
// one call site.
type ArgBinding struct {
	Formal string
	// Actual is the actual-parameter expression.
	Actual ast.Expr
	// ActualName is the bare variable name when Actual is an identifier
	// or whole-array reference ("" otherwise).
	ActualName string
	// LoopIndex is non-nil when the actual is the index variable of a
	// loop enclosing the call — the annotation the paper stores in the
	// ACG ("formal i in F1 is actually the index variable for a loop in
	// P1 that iterates from 1 to 100").
	LoopIndex *LoopInfo
}

// CallSite is one edge of the ACG.
type CallSite struct {
	ID       int
	Caller   *Node
	Callee   *Node
	Stmt     *ast.Call
	Nest     []LoopInfo // loops enclosing the call, outermost first
	Bindings []ArgBinding
}

// Pos returns the source position of the call.
func (c *CallSite) Pos() ast.Position { return c.Stmt.Pos() }

// Node is one procedure in the ACG.
type Node struct {
	Proc    *ast.Procedure
	Callers []*CallSite
	Calls   []*CallSite
}

// Name returns the procedure name.
func (n *Node) Name() string { return n.Proc.Name }

// Graph is the augmented call graph of a whole program.
type Graph struct {
	Program *ast.Program
	Nodes   map[string]*Node
	Sites   []*CallSite
	// order caches a topological order (callers before callees).
	order []*Node
}

// Build constructs the ACG, resolving every call to a program unit.
// Calls to undefined names are treated as external library routines and
// ignored (the paper's F(...) intrinsics appear as function calls, not
// CALL statements, so this only affects genuinely external code).
func Build(prog *ast.Program) (*Graph, error) {
	g := &Graph{Program: prog, Nodes: make(map[string]*Node)}
	for _, u := range prog.Units {
		g.Nodes[u.Name] = &Node{Proc: u}
	}
	for _, u := range prog.Units {
		caller := g.Nodes[u.Name]
		env := constEnv(u)
		var nest []LoopInfo
		var walk func(body []ast.Stmt)
		walk = func(body []ast.Stmt) {
			for _, s := range body {
				switch st := s.(type) {
				case *ast.Do:
					li := LoopInfo{Var: st.Var, Step: 1, Loop: st}
					lo, okLo := ast.EvalInt(st.Lo, env)
					hi, okHi := ast.EvalInt(st.Hi, env)
					okStep := true
					step := 1
					if st.Step != nil {
						step, okStep = ast.EvalInt(st.Step, env)
					}
					if okLo && okHi && okStep {
						li.Lo, li.Hi, li.Step, li.Constant = lo, hi, step, true
					}
					nest = append(nest, li)
					walk(st.Body)
					nest = nest[:len(nest)-1]
				case *ast.If:
					walk(st.Then)
					walk(st.Else)
				case *ast.Call:
					callee, ok := g.Nodes[st.Name]
					if !ok {
						continue
					}
					site := &CallSite{
						ID: len(g.Sites), Caller: caller, Callee: callee, Stmt: st,
						Nest: append([]LoopInfo(nil), nest...),
					}
					site.Bindings = bindArgs(callee.Proc, st, nest)
					caller.Calls = append(caller.Calls, site)
					callee.Callers = append(callee.Callers, site)
					g.Sites = append(g.Sites, site)
				}
			}
		}
		walk(u.Body)
	}
	if err := g.computeOrder(); err != nil {
		return nil, err
	}
	return g, nil
}

func constEnv(u *ast.Procedure) ast.Env {
	env := ast.MapEnv{}
	for _, s := range u.Symbols.Symbols() {
		if s.Kind == ast.SymConstant {
			env[s.Name] = s.ConstValue
		}
	}
	return env
}

func bindArgs(callee *ast.Procedure, call *ast.Call, nest []LoopInfo) []ArgBinding {
	n := len(call.Args)
	if len(callee.Params) < n {
		n = len(callee.Params)
	}
	out := make([]ArgBinding, 0, n)
	for i := 0; i < n; i++ {
		b := ArgBinding{Formal: callee.Params[i], Actual: call.Args[i]}
		switch a := call.Args[i].(type) {
		case *ast.Ident:
			b.ActualName = a.Name
			for j := len(nest) - 1; j >= 0; j-- {
				if nest[j].Var == a.Name {
					li := nest[j]
					b.LoopIndex = &li
					break
				}
			}
		case *ast.ArrayRef:
			b.ActualName = a.Name
		}
		out = append(out, b)
	}
	return out
}

// computeOrder produces a topological order with callers before callees
// and rejects recursion (the paper's single-pass compilation requires a
// program without recursion).
func (g *Graph) computeOrder() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var order []*Node
	var visit func(n *Node) error
	visit = func(n *Node) error {
		color[n.Name()] = gray
		// deterministic order of callees
		callees := make([]*Node, 0, len(n.Calls))
		seen := map[string]bool{}
		for _, c := range n.Calls {
			if !seen[c.Callee.Name()] {
				seen[c.Callee.Name()] = true
				callees = append(callees, c.Callee)
			}
		}
		sort.Slice(callees, func(i, j int) bool { return callees[i].Name() < callees[j].Name() })
		for _, c := range callees {
			switch color[c.Name()] {
			case gray:
				return fmt.Errorf("acg: recursion detected through %s → %s", n.Name(), c.Name())
			case white:
				if err := visit(c); err != nil {
					return err
				}
			}
		}
		color[n.Name()] = black
		order = append(order, n)
		return nil
	}
	// roots first (main), then any unreached units
	if main := g.Program.Main(); main != nil {
		if err := visit(g.Nodes[main.Name]); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(g.Nodes))
	for name := range g.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if color[name] == white {
			if err := visit(g.Nodes[name]); err != nil {
				return err
			}
		}
	}
	// order currently lists callees before callers; reverse it
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	g.order = order
	return nil
}

// TopoOrder returns the procedures with every caller before its callees
// (the order used by top-down problems such as reaching decompositions).
func (g *Graph) TopoOrder() []*Node { return g.order }

// ReverseTopoOrder returns the procedures with every callee before its
// callers (the order used by the bottom-up code generation pass).
func (g *Graph) ReverseTopoOrder() []*Node {
	out := make([]*Node, len(g.order))
	for i, n := range g.order {
		out[len(g.order)-1-i] = n
	}
	return out
}

// Rebuild reconstructs the ACG after program transformation (cloning).
func (g *Graph) Rebuild() error {
	ng, err := Build(g.Program)
	if err != nil {
		return err
	}
	*g = *ng
	return nil
}
