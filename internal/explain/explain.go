// Package explain is the structured optimization-remark engine
// threaded through the compile pipeline, the counterpart of
// internal/trace on the compiler side. Every pass that makes an
// interprocedural decision — reaching-decomposition analysis, cloning,
// computation partitioning, message placement and vectorization,
// live-decomposition remapping, overlap sizing — emits a typed remark
// carrying the source position and a why-string, in the style of
// LLVM's optimization remarks: "applied" records a transformation that
// fired, "missed" records one that was blocked (with the blocking
// reason), and "note" records analysis facts worth surfacing.
//
// Three exporters render a remark stream: WriteText groups remarks by
// procedure for humans, WriteJSON emits one JSON object per line for
// tools, and WriteAnnotated interleaves remarks into the source
// listing at their positions.
//
// A nil *Collector is the disabled state: every method is nil-safe and
// allocation-free, so instrumented passes call unconditionally and
// default (unexplained) compiles pay only a pointer test. Call sites
// that build a message with fmt.Sprintf must guard on Enabled() so the
// formatting cost is not paid on the disabled path.
package explain

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a remark, following the LLVM remark taxonomy.
type Kind uint8

const (
	// Applied: an optimization fired (message vectorized, remap
	// eliminated, procedure cloned, ...).
	Applied Kind = iota
	// Missed: an optimization was considered and blocked; the message
	// carries the blocking reason.
	Missed
	// Note: an analysis fact (reaching decomposition set, overlap
	// width, strategy selection, ...).
	Note
)

func (k Kind) String() string {
	switch k {
	case Applied:
		return "applied"
	case Missed:
		return "missed"
	case Note:
		return "note"
	}
	return "?"
}

// Remark is one compiler decision with its provenance.
type Remark struct {
	// Kind says whether the decision fired, was blocked, or is an
	// analysis fact.
	Kind Kind
	// Pass names the emitting pass: "reach", "partition", "comm",
	// "livedecomp", "overlap", "core", "run".
	Pass string
	// Proc is the procedure the remark is attributed to ("" for
	// whole-program remarks).
	Proc string
	// Line is the source line of the decision (0 when it applies to
	// the procedure or program as a whole).
	Line int
	// Name is the short decision name ("vectorize", "clone",
	// "runtime-resolution", "remap", ...).
	Name string
	// Msg is the why-string.
	Msg string
}

func (r Remark) String() string {
	pos := ""
	if r.Line > 0 {
		pos = fmt.Sprintf(":%d", r.Line)
	}
	return fmt.Sprintf("%s%s: %s [%s] %s: %s", r.Proc, pos, r.Kind, r.Pass, r.Name, r.Msg)
}

// Collector accumulates remarks from the passes of one compilation.
// The zero value is ready to use; a nil *Collector is the disabled
// fast path.
type Collector struct {
	mu      sync.Mutex
	remarks []Remark
}

// New returns an enabled collector.
func New() *Collector { return &Collector{} }

// Enabled reports whether remarks are being collected. Call sites use
// it to guard message formatting.
func (c *Collector) Enabled() bool { return c != nil }

// Add records one remark. Safe for nil receivers; the signature is
// deliberately non-variadic so the disabled path allocates nothing.
func (c *Collector) Add(r Remark) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.remarks = append(c.remarks, r)
	c.mu.Unlock()
}

// Addf records a remark with a formatted message. The format arguments
// are only evaluated into a string when the collector is enabled, but
// note the variadic call itself may allocate — hot paths should guard
// with Enabled() and use Add.
func (c *Collector) Addf(kind Kind, pass, proc string, line int, name, format string, args ...interface{}) {
	if c == nil {
		return
	}
	c.Add(Remark{Kind: kind, Pass: pass, Proc: proc, Line: line, Name: name, Msg: fmt.Sprintf(format, args...)})
}

// AddAll records a batch of remarks under one lock acquisition — the
// deterministic-merge path used when per-worker collectors from the
// parallel compile pipeline are folded back into the main collector.
func (c *Collector) AddAll(rs []Remark) {
	if c == nil || len(rs) == 0 {
		return
	}
	c.mu.Lock()
	c.remarks = append(c.remarks, rs...)
	c.mu.Unlock()
}

// Remarks returns a snapshot of everything collected so far, sorted by
// source position then kind (then pass/name/message for a total,
// deterministic order).
func (c *Collector) Remarks() []Remark {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]Remark, len(c.remarks))
	copy(out, c.remarks)
	c.mu.Unlock()
	Sort(out)
	return out
}

// Reset discards all collected remarks (the collector stays enabled).
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.remarks = c.remarks[:0]
	c.mu.Unlock()
}

// Sort orders remarks by position then kind: line first (0 = header
// remarks sort before any statement), then kind, then pass, name and
// message to make the order total.
func Sort(rs []Remark) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		// Proc last, so the order is total: the parallel pipeline merges
		// per-worker collectors, and only a total order guarantees
		// byte-identical reports regardless of merge order.
		return a.Proc < b.Proc
	})
}

// WriteText renders the collector's remarks with the package function
// of the same name.
func (c *Collector) WriteText(w io.Writer) error { return WriteText(w, c.Remarks()) }

// WriteJSON renders the collector's remarks with the package function
// of the same name.
func (c *Collector) WriteJSON(w io.Writer) error { return WriteJSON(w, c.Remarks()) }

// WriteAnnotated renders src with the collector's remarks interleaved.
func (c *Collector) WriteAnnotated(w io.Writer, src string) error {
	return WriteAnnotated(w, src, c.Remarks())
}

// WriteText renders the remarks as a human-readable report grouped by
// procedure. Procedures appear in order of their first remark's source
// line; whole-program remarks (Proc == "") come first.
func WriteText(w io.Writer, remarks []Remark) error {
	rs := make([]Remark, len(remarks))
	copy(rs, remarks)
	Sort(rs)

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "=== optimization report (%d remarks) ===\n", len(rs))

	// group by procedure, ordered by first remark position
	type group struct {
		proc  string
		first int
		rs    []Remark
	}
	var groups []*group
	byProc := map[string]*group{}
	for _, r := range rs {
		g, ok := byProc[r.Proc]
		if !ok {
			g = &group{proc: r.Proc, first: r.Line}
			byProc[r.Proc] = g
			groups = append(groups, g)
		}
		g.rs = append(g.rs, r)
	}
	sort.SliceStable(groups, func(i, j int) bool {
		if (groups[i].proc == "") != (groups[j].proc == "") {
			return groups[i].proc == ""
		}
		return groups[i].first < groups[j].first
	})

	for _, g := range groups {
		name := g.proc
		if name == "" {
			name = "(program)"
		}
		fmt.Fprintf(bw, "\n%s:\n", name)
		for _, r := range g.rs {
			pos := "     "
			if r.Line > 0 {
				pos = fmt.Sprintf("%4d ", r.Line)
			}
			fmt.Fprintf(bw, "  %s%-7s %-10s %-18s %s\n", pos, r.Kind, r.Pass, r.Name, r.Msg)
		}
	}
	return bw.Flush()
}

// jsonRemark is the stable wire form of a remark.
type jsonRemark struct {
	Kind string `json:"kind"`
	Pass string `json:"pass"`
	Proc string `json:"proc,omitempty"`
	Line int    `json:"line,omitempty"`
	Name string `json:"name"`
	Msg  string `json:"msg"`
}

// WriteJSON emits one JSON object per remark, one per line (JSON
// lines), sorted the same way as WriteText.
func WriteJSON(w io.Writer, remarks []Remark) error {
	rs := make([]Remark, len(remarks))
	copy(rs, remarks)
	Sort(rs)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range rs {
		if err := enc.Encode(jsonRemark{
			Kind: r.Kind.String(), Pass: r.Pass, Proc: r.Proc,
			Line: r.Line, Name: r.Name, Msg: r.Msg,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteAnnotated interleaves the remarks into the source listing:
// each remark is printed as a "!<kind> ..." comment line immediately
// after the source line it is attached to; remarks with no position
// are listed in a header block.
func WriteAnnotated(w io.Writer, src string, remarks []Remark) error {
	rs := make([]Remark, len(remarks))
	copy(rs, remarks)
	Sort(rs)

	byLine := map[int][]Remark{}
	var header []Remark
	for _, r := range rs {
		if r.Line <= 0 {
			header = append(header, r)
			continue
		}
		byLine[r.Line] = append(byLine[r.Line], r)
	}

	bw := bufio.NewWriter(w)
	for _, r := range header {
		proc := r.Proc
		if proc != "" {
			proc = proc + ": "
		}
		fmt.Fprintf(bw, "!%s [%s] %s%s: %s\n", r.Kind, r.Pass, proc, r.Name, r.Msg)
	}
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	for i, line := range lines {
		fmt.Fprintf(bw, "%4d  %s\n", i+1, line)
		for _, r := range byLine[i+1] {
			fmt.Fprintf(bw, "      !%s [%s] %s: %s\n", r.Kind, r.Pass, r.Name, r.Msg)
		}
	}
	return bw.Flush()
}
