package explain

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() []Remark {
	return []Remark{
		{Kind: Missed, Pass: "comm", Proc: "F1", Line: 12, Name: "vectorize", Msg: "carried dependence at level 1"},
		{Kind: Applied, Pass: "comm", Proc: "F1", Line: 12, Name: "vectorize", Msg: "hoisted above loop i"},
		{Kind: Note, Pass: "reach", Proc: "", Line: 0, Name: "strategy", Msg: "interprocedural"},
		{Kind: Applied, Pass: "reach", Proc: "MAIN", Line: 5, Name: "clone", Msg: "F1 -> F1$row"},
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Error("nil collector reports enabled")
	}
	c.Add(Remark{Name: "x"})
	c.Addf(Note, "p", "q", 1, "n", "%d", 3)
	c.Reset()
	if got := c.Remarks(); got != nil {
		t.Errorf("nil Remarks() = %v", got)
	}
}

func TestCollectAndSort(t *testing.T) {
	c := New()
	for _, r := range sample() {
		c.Add(r)
	}
	rs := c.Remarks()
	if len(rs) != 4 {
		t.Fatalf("got %d remarks", len(rs))
	}
	// sorted by line, then kind: header note first, then MAIN:5, then
	// F1:12 applied before missed
	wantOrder := []string{"strategy", "clone", "vectorize", "vectorize"}
	for i, r := range rs {
		if r.Name != wantOrder[i] {
			t.Errorf("remark %d = %s, want %s", i, r.Name, wantOrder[i])
		}
	}
	if rs[2].Kind != Applied || rs[3].Kind != Missed {
		t.Errorf("same-line remarks not ordered by kind: %v then %v", rs[2].Kind, rs[3].Kind)
	}
	c.Reset()
	if len(c.Remarks()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestWriteTextGroupsByProcedure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"(program):", "MAIN:", "F1:", "carried dependence"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
	// program-level group first, then MAIN (line 5) before F1 (line 12)
	if p, m, f := strings.Index(out, "(program):"), strings.Index(out, "MAIN:"), strings.Index(out, "F1:"); !(p < m && m < f) {
		t.Errorf("group order wrong (program@%d MAIN@%d F1@%d):\n%s", p, m, f, out)
	}
}

func TestWriteJSONLines(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSON lines, want 4", len(lines))
	}
	for _, line := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		for _, k := range []string{"kind", "pass", "name", "msg"} {
			if _, ok := m[k]; !ok {
				t.Errorf("JSON line missing %q: %s", k, line)
			}
		}
	}
}

func TestWriteAnnotated(t *testing.T) {
	src := "      PROGRAM P\n      call F1(X)\n      END\n"
	rs := []Remark{
		{Kind: Note, Pass: "reach", Name: "strategy", Msg: "interprocedural"},
		{Kind: Applied, Pass: "comm", Proc: "P", Line: 2, Name: "vectorize", Msg: "message lifted to caller"},
	}
	var buf bytes.Buffer
	if err := WriteAnnotated(&buf, src, rs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "!note [reach]") {
		t.Errorf("header remark not first:\n%s", out)
	}
	call := strings.Index(out, "call F1(X)")
	ann := strings.Index(out, "!applied [comm] vectorize")
	if call < 0 || ann < 0 || ann < call {
		t.Errorf("annotation not after its source line:\n%s", out)
	}
}

func TestAddAllocatesNothingWhenDisabled(t *testing.T) {
	var c *Collector
	r := Remark{Kind: Applied, Pass: "comm", Proc: "F", Line: 3, Name: "vectorize", Msg: "x"}
	if n := testing.AllocsPerRun(100, func() { c.Add(r) }); n != 0 {
		t.Errorf("nil Add allocates %v per call", n)
	}
}
