package sched

import (
	"strings"
	"testing"

	"fortd/internal/ast"
	"fortd/internal/explain"
	"fortd/internal/parser"
)

// applyTo parses an SPMD-level program (the pass runs post-codegen, so
// test inputs are written in the generated dialect: send/recv/broadcast
// statements, my$p, first$), applies the overlap pass, and returns the
// rewritten listing plus the remarks.
func applyTo(t *testing.T, src string) (string, []explain.Remark, int) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ec := explain.New()
	n := Apply(prog, ec)
	return ast.Print(prog), ec.Remarks(), n
}

func hasRemark(rs []explain.Remark, kind explain.Kind, name, substr string) bool {
	for _, r := range rs {
		if r.Kind == kind && r.Name == name && strings.Contains(r.Msg, substr) {
			return true
		}
	}
	return false
}

func countRemarks(rs []explain.Remark, name string) int {
	n := 0
	for _, r := range rs {
		if r.Name == name {
			n++
		}
	}
	return n
}

// TestHaloSplitApplied: the canonical stencil shape — guarded boundary
// send, guarded halo recv, then an independent compute loop — becomes
// postrecv / interior loop / waitrecv / peeled boundary iterations.
func TestHaloSplitApplied(t *testing.T) {
	out, rs, n := applyTo(t, `
      PROGRAM P
      REAL a(0:9)
      REAL b(8)
      my$p = myproc()
      if ((my$p .GT. 0)) then
        send a(1:1) to (my$p - 1)
      endif
      if ((my$p .LT. 3)) then
        recv a(9:9) from (my$p + 1)
      endif
      do i = 1,8
        b(i) = (a(i) + a(i + 1))
      enddo
      END
`)
	if n != 1 {
		t.Errorf("applied = %d, want 1\n%s", n, out)
	}
	if !hasRemark(rs, explain.Applied, "overlap-halo", "wait sunk below interior i-loop (peel 0 low, 1 high)") {
		t.Errorf("missing Applied overlap-halo remark, got %v", rs)
	}
	for _, want := range []string{
		"postrecv a(9) from (my$p + 1) tag 1",
		"waitrecv a tag 1",
		"do i = 1,(8 - 1)", // interior shrunk by the peel
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rewritten listing lacks %q:\n%s", want, out)
		}
	}
	// the wait must come after the interior loop, the peel after the wait
	interior := strings.Index(out, "do i = 1,(8 - 1)")
	wait := strings.Index(out, "waitrecv a tag 1")
	peel := strings.Index(out, "do i = MAX(1,8),8")
	if !(interior < wait && wait < peel) || interior < 0 || peel < 0 {
		t.Errorf("post/compute/wait/peel out of order (interior=%d wait=%d peel=%d):\n%s",
			interior, wait, peel, out)
	}
}

// TestHaloSplitRecurrenceMissed: an ADI-style recurrence carries a
// dependence between iterations, so the peeled boundary rows cannot be
// deferred — the recv must stay blocking, with a remark saying why.
func TestHaloSplitRecurrenceMissed(t *testing.T) {
	out, rs, n := applyTo(t, `
      PROGRAM P
      REAL a(0:9)
      REAL b(0:9)
      my$p = myproc()
      recv a(9:9) from (my$p + 1)
      do i = 1,8
        b(i) = (b(i - 1) + a(i + 1))
      enddo
      END
`)
	if n != 0 {
		t.Errorf("applied = %d, want 0\n%s", n, out)
	}
	if !hasRemark(rs, explain.Missed, "overlap-halo", "not accessed uniformly") {
		t.Errorf("missing Missed overlap-halo remark for the recurrence, got %v", rs)
	}
	if strings.Contains(out, "postrecv") {
		t.Errorf("recurrence loop was split anyway:\n%s", out)
	}
}

// TestHaloSplitScalarMissed: a scalar accumulation pins the combining
// order, so iterations cannot be reordered around the wait.
func TestHaloSplitScalarMissed(t *testing.T) {
	out, rs, n := applyTo(t, `
      PROGRAM P
      REAL a(0:9)
      my$p = myproc()
      recv a(9:9) from (my$p + 1)
      do i = 1,8
        s = (s + a(i + 1))
      enddo
      END
`)
	if n != 0 {
		t.Errorf("applied = %d, want 0\n%s", n, out)
	}
	if !hasRemark(rs, explain.Missed, "overlap-halo", "scalar") {
		t.Errorf("missing Missed overlap-halo remark for scalar accumulation, got %v", rs)
	}
}

// TestBcastHoistApplied: the post rises above predecessors that
// provably don't write what the broadcast reads — including a call to
// a communication-free procedure that writes only its own actual.
func TestBcastHoistApplied(t *testing.T) {
	out, rs, n := applyTo(t, `
      PROGRAM P
      REAL a(4)
      REAL c(4)
      my$p = myproc()
      c(1) = 2.0
      call work(c)
      broadcast a(1:4) from 0
      END
      SUBROUTINE work(y)
      REAL y(4)
      my$p = myproc()
      y(2) = 1.0
      END
`)
	if n != 1 {
		t.Errorf("applied = %d, want 1\n%s", n, out)
	}
	if !hasRemark(rs, explain.Applied, "overlap-bcast", "posted 3 statement(s) early") {
		t.Errorf("missing Applied overlap-bcast remark, got %v", rs)
	}
	post := strings.Index(out, "postbcast a(1:4) from 0")
	callSite := strings.Index(out, "call work(c)")
	wait := strings.Index(out, "waitbcast a")
	if !(post >= 0 && post < callSite && callSite < wait) {
		t.Errorf("post not hoisted over the comm-free call (post=%d call=%d wait=%d):\n%s",
			post, callSite, wait, out)
	}
}

// TestBcastHoistMissed: a predecessor writing the broadcast array
// blocks the hoist, and the remark names the blocker.
func TestBcastHoistMissed(t *testing.T) {
	out, rs, n := applyTo(t, `
      PROGRAM P
      REAL a(4)
      my$p = myproc()
      a(1) = 0.0
      broadcast a(1:4) from 0
      END
`)
	if n != 0 {
		t.Errorf("applied = %d, want 0\n%s", n, out)
	}
	if !hasRemark(rs, explain.Missed, "overlap-bcast", "not posted early") {
		t.Errorf("missing Missed overlap-bcast remark, got %v", rs)
	}
	if strings.Contains(out, "postbcast") {
		t.Errorf("broadcast hoisted over a write to its own array:\n%s", out)
	}
}

// TestRedundantBcastEliminated: re-broadcasting a(k,k) from the same
// root right after a(1:8,k) moves data every processor already holds —
// the dgefa shape that motivated the elimination. The containment
// proof uses the declared extent of a's first dimension.
func TestRedundantBcastEliminated(t *testing.T) {
	out, rs, n := applyTo(t, `
      PROGRAM P
      REAL a(8,8)
      my$p = myproc()
      k = 1
      broadcast a(1:8,k) from MOD((k - 1),4)
      t = (1 / a(k,k))
      broadcast a(k,k) from MOD((k - 1),4)
      END
`)
	if n < 1 {
		t.Errorf("applied = %d, want >= 1\n%s", n, out)
	}
	if !hasRemark(rs, explain.Applied, "overlap-redundant", "already delivered") {
		t.Errorf("missing Applied overlap-redundant remark, got %v", rs)
	}
	if strings.Contains(out, "a(k,k) from") {
		t.Errorf("covered broadcast survived:\n%s", out)
	}
}

// TestRedundantBcastKeptOnWrite: an intervening write to the array
// invalidates the covering broadcast's copy, so both must stay.
func TestRedundantBcastKeptOnWrite(t *testing.T) {
	out, rs, _ := applyTo(t, `
      PROGRAM P
      REAL a(8,8)
      my$p = myproc()
      k = 1
      broadcast a(1:8,k) from MOD((k - 1),4)
      a(k,k) = 1.0
      broadcast a(k,k) from MOD((k - 1),4)
      END
`)
	if c := countRemarks(rs, "overlap-redundant"); c != 0 {
		t.Errorf("elimination fired %d time(s) across a write, want 0: %v", c, rs)
	}
	if !strings.Contains(out, "a(k,k) from") {
		t.Errorf("second broadcast eliminated despite the intervening write:\n%s", out)
	}
}

// TestLookaheadApplied: the minimal LU elimination shape — pivot
// column broadcast at the top of the k-loop, owner-rotated root,
// cyclic trailing-matrix j-loop — is pipelined: column k+1's broadcast
// is posted by its owner right after the peeled first update, in
// flight during the rest of the j-loop.
func TestLookaheadApplied(t *testing.T) {
	out, rs, n := applyTo(t, `
      PROGRAM P
      REAL a(8,8)
      my$p = myproc()
      n = 8
      do k = 1,(n - 1)
        broadcast a(1:8,k) from MOD((k - 1),4)
        do j = first$((my$p + 1),(k + 1),4),n,4
          do i = (k + 1),n
            a(i,j) = (a(i,j) - (a(i,k) * a(k,j)))
          enddo
        enddo
      enddo
      END
`)
	if n < 1 {
		t.Errorf("applied = %d, want >= 1\n%s", n, out)
	}
	if !hasRemark(rs, explain.Applied, "overlap-lookahead", "pipelined across k iterations") {
		t.Errorf("missing Applied overlap-lookahead remark, got %v", rs)
	}
	for _, want := range []string{
		"postbcast a(1:8,1) from MOD((1 - 1),4) tag 1",             // prologue: first column posted before the loop
		"waitbcast a tag 1",                                        // loop top: wait replaces the blocking broadcast
		"postbcast a(1:8,(k + 1)) from MOD(((k + 1) - 1),4) tag 1", // next column, posted mid-iteration
		"do j = first$((my$p + 1),((k + 1) + 1),4),n,4",            // j-loop rebased past the peeled column
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pipelined listing lacks %q:\n%s", want, out)
		}
	}
}

// TestLookaheadMissedOnRootMismatch: if the broadcast root does not
// rotate with the owner of the peeled column (congruence c1+c2 != 0
// mod s), the peel would broadcast a column its sender never updated —
// the pass must refuse and say why.
func TestLookaheadMissedOnRootMismatch(t *testing.T) {
	out, rs, _ := applyTo(t, `
      PROGRAM P
      REAL a(8,8)
      my$p = myproc()
      n = 8
      do k = 1,(n - 1)
        broadcast a(1:8,k) from MOD(k,4)
        do j = first$((my$p + 1),(k + 1),4),n,4
          do i = (k + 1),n
            a(i,j) = (a(i,j) - (a(i,k) * a(k,j)))
          enddo
        enddo
      enddo
      END
`)
	if !hasRemark(rs, explain.Missed, "overlap-lookahead", "") {
		t.Errorf("missing Missed overlap-lookahead remark, got %v", rs)
	}
	if c := countRemarks(rs, "overlap-lookahead"); c != 1 {
		t.Errorf("lookahead remarks = %d, want exactly 1 Missed: %v", c, rs)
	}
	if strings.Contains(out, "waitbcast a tag") && !strings.Contains(out, "broadcast a(1:8,k)") {
		t.Errorf("mismatched-root loop was pipelined anyway:\n%s", out)
	}
}
